// Command avfsweep runs a grid of simulations — fetch policies crossed
// with one structural parameter — and emits a CSV of performance and
// per-structure AVFs, for custom design-space studies beyond the paper's
// figures.
//
// Usage:
//
//	avfsweep -mix 4ctx-MIX-A -policies ICOUNT,STALL,FLUSH -param iq -values 48,96,192
//	avfsweep -bench gcc,mcf -policies ICOUNT -param regs -values 256,448,640
//	avfsweep -mix 4ctx-MIX-A -policies ICOUNT,FLUSH -telemetry-dir series/ -debug-addr :6060
//
// Long sweeps run unattended: -telemetry-dir records one cycle-windowed
// JSONL time-series per sweep point, -debug-addr serves live progress
// (/telemetry, /debug/metrics, /debug/progress, /debug/pprof/) for
// whichever point is currently running, and structured per-point progress
// logs go to stderr. With -obs-ledger every sweep point appends its own
// provenance manifest (kind "sweep-point") plus one "sweep" summary
// record at exit; -obs-heartbeat paces the point-completion heartbeats.
// ^C flushes the shared series/report streams and records the sweep
// manifest with status "interrupted" (docs/campaigns.md).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"sync"
	"time"

	"smtavf"
	"smtavf/internal/cliopts"
	"smtavf/internal/obs"
	"smtavf/internal/telemetry"
)

// shut coordinates graceful exit: the shared series/report streams and
// the sweep manifest append run exactly once whether the sweep finishes,
// fails, or catches ^C.
var shut cliopts.Shutdown

func main() {
	var (
		mixName  = flag.String("mix", "", "Table 2 mix name")
		benches  = flag.String("bench", "", "comma-separated benchmarks (alternative to -mix)")
		policies = flag.String("policies", "ICOUNT", "comma-separated fetch policies")
		param    = flag.String("param", "none", "structural parameter to sweep: none, iq, rob, lsq, regs, fetchq")
		values   = flag.String("values", "", "comma-separated parameter values")
		instrs   = flag.Uint64("instructions", 100_000, "instructions per run")
		warmup   = flag.Uint64("warmup", 50_000, "warmup instructions per run")
		seed     = flag.Uint64("seed", 1, "simulation seed")
		dumpSpec = flag.Bool("dumpspec", false, "print the sweep's per-point campaign specs as a JSON array and exit")

		logFlags cliopts.Log
		tel      cliopts.Telemetry
		inj      cliopts.Inject
		shards   cliopts.Shards
		prof     cliopts.Profile
		obsFlags cliopts.Obs
	)
	logFlags.Register(flag.CommandLine)
	tel.Register(flag.CommandLine)
	tel.RegisterDir(flag.CommandLine)
	inj.Register(flag.CommandLine)
	shards.Register(flag.CommandLine)
	prof.Register(flag.CommandLine)
	obsFlags.Register(flag.CommandLine)
	flag.Parse()

	logger, err := logFlags.Logger(os.Stderr)
	if err != nil {
		fatal(err)
	}
	if err := tel.Validate(); err != nil {
		fatal(err)
	}
	if err := inj.Validate(); err != nil {
		fatal(err)
	}
	if err := shards.Validate(); err != nil {
		fatal(err)
	}
	if shards.Sharded() && (tel.Enabled() || inj.On) {
		fatal(fmt.Errorf("-shards is batch-only; drop -telemetry/-debug-addr/-inject"))
	}
	if err := obsFlags.Validate(shards.Sharded()); err != nil {
		fatal(err)
	}
	if obsFlags.Timeline != "" {
		fatal(fmt.Errorf("-obs-timeline records a single run's worker timeline; use smtsim -shards"))
	}
	if err := prof.Start(); err != nil {
		fatal(err)
	}
	defer func() {
		if err := prof.Stop(); err != nil {
			fmt.Fprintln(os.Stderr, "avfsweep:", err)
		}
	}()

	var names []string
	switch {
	case *mixName != "":
		m, err := smtavf.MixByName(*mixName)
		if err != nil {
			fatal(err)
		}
		names = m.Benchmarks
	case *benches != "":
		names = strings.Split(*benches, ",")
	default:
		fatal(fmt.Errorf("need -mix or -bench"))
	}

	vals := []int{0}
	if *values != "" {
		vals = vals[:0]
		for _, v := range strings.Split(*values, ",") {
			n, err := strconv.Atoi(strings.TrimSpace(v))
			if err != nil {
				fatal(fmt.Errorf("bad value %q: %w", v, err))
			}
			vals = append(vals, n)
		}
	} else if *param != "none" {
		fatal(fmt.Errorf("-param %s needs -values", *param))
	}

	pols := strings.Split(*policies, ",")
	if *dumpSpec {
		var specs []smtavf.CampaignSpec
		for _, pol := range pols {
			for _, v := range vals {
				spec, err := pointSpec(*mixName, names, strings.TrimSpace(pol), *param, v, *seed, *warmup, *instrs, shards)
				if err != nil {
					fatal(err)
				}
				spec.V = smtavf.CampaignSpecVersion
				specs = append(specs, spec)
			}
		}
		data, err := json.MarshalIndent(specs, "", "  ")
		if err != nil {
			fatal(err)
		}
		fmt.Println(string(data))
		return
	}

	if tel.Dir != "" {
		if err := os.MkdirAll(tel.Dir, 0o755); err != nil {
			fatal(err)
		}
	}
	// A single shared series file spanning every point: each point's
	// collector closes its own exporters, so the shared one is wrapped to
	// ignore those Closes and is flushed once at the end.
	var shared *sharedExporter
	if tel.Path != "" {
		exp, err := telemetry.Create(tel.Path)
		if err != nil {
			fatal(err)
		}
		shared = &sharedExporter{exp: exp}
		shut.Defer("telemetry", shared.close)
	}
	// One combined cross-validation JSONL across every sweep point.
	var reportW io.WriteCloser
	if inj.Report != "" {
		reportW, err = telemetry.OpenWriter(inj.Report)
		if err != nil {
			fatal(err)
		}
		shut.Defer("inject-report", reportW.Close)
	}
	campSeed := inj.CampaignSeed(*seed)

	points := len(pols) * len(vals)
	telemetry.RunManifest(logger, "avfsweep", smtavf.DefaultConfig(len(names)), *seed, names,
		"policies", *policies,
		"param", *param,
		"values", *values,
		"instructions", *instrs,
		"warmup", *warmup,
		"points", points,
	)

	// Campaign observability: one registry and one progress tracker span
	// the whole sweep — the registry reflects whichever point is running,
	// the progress phase counts completed points — and the ledger gets one
	// "sweep-point" manifest per point plus a "sweep" summary at exit.
	reg := smtavf.NewMetricsRegistry()
	prog := smtavf.NewProgress(smtavf.ProgressOptions{
		Logger:    logger,
		Heartbeat: obsFlags.HeartbeatInterval(),
		Registry:  reg,
	})
	prog.Phase("sweep", uint64(points))
	ledger, err := obsFlags.OpenLedger()
	if err != nil {
		fatal(err)
	}
	sweepMan := obs.NewManifest("sweep", "avfsweep")
	sweepMan.Seed = *seed
	sweepMan.Workloads = names
	sweepMan.Shards = shards.N
	sweepMan.Extra = map[string]string{"policies": *policies, "param": *param, "values": *values}
	if inj.On {
		sweepMan.CampaignSeed = campSeed
	}
	sweepMan.AddArtifact("telemetry", tel.Path)
	sweepMan.AddArtifact("crossval", inj.Report)
	var pointsDone int
	shut.Final(func(status string) {
		sweepMan.Extra["points_done"] = strconv.Itoa(pointsDone)
		sweepMan.Finish(status, nil)
		if err := ledger.Append(sweepMan); err != nil {
			logger.Error("run ledger append", "path", ledger.Path(), "err", err)
		}
	})
	shut.Install(logger)

	// CSV header.
	fmt.Printf("policy,%s,ipc", *param)
	for _, s := range smtavf.Structs() {
		fmt.Printf(",%s_avf", strings.ToLower(s.String()))
	}
	fmt.Println()

	var dbg *telemetry.DebugServer
	defer func() {
		if dbg != nil {
			dbg.Close()
		}
	}()
	sweepStart := time.Now()
	var cyclesSum uint64
	point := 0
	for _, pol := range pols {
		pol = strings.TrimSpace(pol)
		for _, v := range vals {
			point++
			// Each point is one campaign spec: workload, policy, seed, and
			// (when sweeping a structural parameter) a machine override.
			spec, err := pointSpec(*mixName, names, pol, *param, v, *seed, *warmup, *instrs, shards)
			if err != nil {
				fatal(err)
			}
			cfg, err := smtavf.SpecConfig(spec)
			if err != nil {
				fatal(err)
			}
			opts, err := smtavf.SpecOptions(spec)
			if err != nil {
				fatal(err)
			}
			// Registry only: the sweep loop owns the progress phase
			// (points completed), so per-point runs must not reset it.
			opts = append(opts, smtavf.WithObservability(&smtavf.Observability{Registry: reg, Program: "avfsweep"}))
			pm := obs.NewManifest("sweep-point", "avfsweep")
			pm.ConfigDigest = obs.ConfigDigest(cfg)
			pm.Seed = *seed
			pm.Policy = pol
			pm.Workloads = names
			pm.Shards = shards.N
			pm.Extra = map[string]string{"param": *param, "value": strconv.Itoa(v)}
			if inj.On {
				pm.CampaignSeed = campSeed
			}

			// One fresh collector (and series file) per sweep point; the
			// debug server follows the point currently running.
			var col *smtavf.Telemetry
			if tel.Enabled() {
				col = smtavf.NewTelemetry(smtavf.TelemetryOptions{WindowCycles: tel.Window, Registry: reg})
				if shared != nil {
					col.AddExporter(shared)
				}
				if tel.Dir != "" {
					series := filepath.Join(tel.Dir, pointName(pol, *param, v))
					exp, err := telemetry.Create(series)
					if err != nil {
						fatal(err)
					}
					col.AddExporter(exp)
					pm.AddArtifact("telemetry", series)
				}
				opts = append(opts, smtavf.WithTelemetry(col))
			}
			var camp *smtavf.FaultCampaign
			if inj.On {
				camp, err = smtavf.NewFaultCampaign(cfg, inj.Every, campSeed)
				if err != nil {
					fatal(err)
				}
				camp.PublishTelemetry(col)
				opts = append(opts, smtavf.WithFaultInjection(camp))
			}
			sim, err := smtavf.New(cfg, opts...)
			if err != nil {
				fatal(err)
			}
			if tel.DebugAddr != "" && col != nil {
				if dbg == nil {
					dbg, err = telemetry.ServeDebug(tel.DebugAddr, col, logger)
					if err != nil {
						fatal(err)
					}
					dbg.SetProgress(prog)
				} else {
					dbg.SetCollector(col)
				}
			}

			start := time.Now()
			res, err := sim.Run(*instrs)
			if err != nil {
				fatal(fmt.Errorf("%s %s=%d: %w", pol, *param, v, err))
			}
			if cerr := col.Close(); cerr != nil {
				fatal(fmt.Errorf("telemetry: %w", cerr))
			}
			pm.Cycles, pm.Instructions = res.Cycles, res.Total
			if camp != nil {
				stats := camp.RunStrikes(res.Cycles, smtavf.StopWhen(inj.CI, inj.Strikes))
				pm.Strikes = stats.TotalStrikes
				rep := smtavf.CrossValidate(smtavf.CrossValMeta{
					Workload: strings.Join(names, "+"),
					Policy:   pol,
					Seed:     campSeed,
					Every:    inj.Every,
					Cycles:   res.Cycles,
				}, res, stats)
				logger.Info("inject crossval",
					"point", point,
					"policy", pol,
					"param", *param,
					"value", v,
					"strikes", stats.TotalStrikes,
					"stopped_early", stats.StoppedEarly,
					"pass", rep.Pass(),
					"failed", len(rep.Failed()),
				)
				if reportW != nil {
					if err := rep.WriteJSONL(reportW); err != nil {
						fatal(fmt.Errorf("inject-report: %w", err))
					}
				}
			}
			pm.Finish(obs.StatusOK, nil)
			if err := ledger.Append(pm); err != nil {
				fatal(fmt.Errorf("obs-ledger: %w", err))
			}
			pointsDone = point
			cyclesSum += res.Cycles
			sweepMan.Cycles += res.Cycles
			sweepMan.Instructions += res.Total
			sweepMan.Strikes += pm.Strikes
			prog.Observe(uint64(point), cyclesSum)
			logger.Info("sweep point",
				"point", point,
				"of", points,
				"policy", res.Policy,
				"param", *param,
				"value", v,
				"ipc", fmt.Sprintf("%.4f", res.IPC()),
				"cycles", res.Cycles,
				"windows", col.Windows(),
				"elapsed", time.Since(start).Round(time.Millisecond).String(),
			)
			fmt.Printf("%s,%d,%.4f", res.Policy, v, res.IPC())
			for _, s := range smtavf.Structs() {
				fmt.Printf(",%.4f", res.StructAVF(s))
			}
			fmt.Println()
		}
	}
	logger.Info("sweep complete",
		"points", point,
		"elapsed", time.Since(sweepStart).Round(time.Millisecond).String(),
	)
	shut.Finish(obs.StatusOK, logger)
}

// sharedExporter is one exporter living across every sweep point: each
// point's collector Close would close its exporters, so Close is deferred
// to the end of the sweep (close). The mutex serializes Export against
// close — the SIGINT handler flushes from its own goroutine while a
// point's collector may still be exporting windows.
type sharedExporter struct {
	mu     sync.Mutex
	exp    telemetry.Exporter
	closed bool
}

func (s *sharedExporter) Export(w telemetry.Window) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil
	}
	return s.exp.Export(w)
}

func (s *sharedExporter) Close() error { return nil }

func (s *sharedExporter) close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil
	}
	s.closed = true
	return s.exp.Close()
}

// pointSpec resolves one sweep point to a campaign spec: the workload
// and policy axes plus, for a swept structural parameter, a machine
// override carrying the applied value. The specs -dumpspec prints are
// exactly what the loop runs.
func pointSpec(mix string, names []string, pol, param string, v int, seed, warmup, instrs uint64, shards cliopts.Shards) (smtavf.CampaignSpec, error) {
	spec := smtavf.CampaignSpec{
		Policy:       pol,
		Seed:         seed,
		Instructions: instrs,
		Warmup:       warmup,
		Shards:       shards.N,
		ShardWorkers: shards.Workers,
	}
	if mix != "" {
		spec.Mix = mix
	} else {
		spec.Benchmarks = names
	}
	if param != "none" {
		machine := smtavf.DefaultConfig(len(names))
		if err := apply(&machine, param, v); err != nil {
			return spec, err
		}
		spec.Machine = &machine
	}
	return spec, nil
}

// pointName is the telemetry series filename of one sweep point.
func pointName(policy, param string, v int) string {
	if param == "none" {
		return policy + ".jsonl"
	}
	return fmt.Sprintf("%s_%s%d.jsonl", policy, param, v)
}

// apply sets the swept structural parameter.
func apply(cfg *smtavf.Config, param string, v int) error {
	switch param {
	case "none":
		return nil
	case "iq":
		cfg.IQSize = v
	case "rob":
		cfg.ROBSize = v
	case "lsq":
		cfg.LSQSize = v
	case "regs":
		cfg.IntPhysRegs, cfg.FPPhysRegs = v, v
	case "fetchq":
		cfg.FetchQueue = v
	default:
		return fmt.Errorf("unknown -param %q (want none, iq, rob, lsq, regs, fetchq)", param)
	}
	return nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "avfsweep:", err)
	shut.Finish(obs.StatusError, nil)
	os.Exit(1)
}
