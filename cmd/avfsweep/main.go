// Command avfsweep runs a grid of simulations — fetch policies crossed
// with one structural parameter — and emits a CSV of performance and
// per-structure AVFs, for custom design-space studies beyond the paper's
// figures.
//
// Usage:
//
//	avfsweep -mix 4ctx-MIX-A -policies ICOUNT,STALL,FLUSH -param iq -values 48,96,192
//	avfsweep -bench gcc,mcf -policies ICOUNT -param regs -values 256,448,640
//	avfsweep -mix 4ctx-MIX-A -policies ICOUNT,FLUSH -telemetry-dir series/ -debug-addr :6060
//
// Long sweeps run unattended: -telemetry-dir records one cycle-windowed
// JSONL time-series per sweep point, -debug-addr serves live progress
// (/telemetry, /debug/pprof/) for whichever point is currently running,
// and structured per-point progress logs go to stderr.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"time"

	"smtavf"
	"smtavf/internal/telemetry"
)

func main() {
	var (
		mixName   = flag.String("mix", "", "Table 2 mix name")
		benches   = flag.String("bench", "", "comma-separated benchmarks (alternative to -mix)")
		policies  = flag.String("policies", "ICOUNT", "comma-separated fetch policies")
		param     = flag.String("param", "none", "structural parameter to sweep: none, iq, rob, lsq, regs, fetchq")
		values    = flag.String("values", "", "comma-separated parameter values")
		instrs    = flag.Uint64("instructions", 100_000, "instructions per run")
		warmup    = flag.Uint64("warmup", 50_000, "warmup instructions per run")
		seed      = flag.Uint64("seed", 1, "simulation seed")
		telDir    = flag.String("telemetry-dir", "", "record one cycle-windowed JSONL series per sweep point into this directory")
		telWindow = flag.Uint64("telemetry-window", telemetry.DefaultWindowCycles, "telemetry sampling window in cycles")
		debugAddr = flag.String("debug-addr", "", "serve live /telemetry and /debug/pprof for the running point (e.g. :6060)")
		logLevel  = flag.String("log-level", "info", "structured log level on stderr: debug, info, warn, error")
		logJSON   = flag.Bool("log-json", false, "emit structured logs as JSON instead of text")
	)
	flag.Parse()

	level, err := telemetry.ParseLevel(*logLevel)
	if err != nil {
		fatal(err)
	}
	logger := telemetry.NewLogger(os.Stderr, level, *logJSON)

	var names []string
	switch {
	case *mixName != "":
		m, err := smtavf.MixByName(*mixName)
		if err != nil {
			fatal(err)
		}
		names = m.Benchmarks
	case *benches != "":
		names = strings.Split(*benches, ",")
	default:
		fatal(fmt.Errorf("need -mix or -bench"))
	}

	vals := []int{0}
	if *values != "" {
		vals = vals[:0]
		for _, v := range strings.Split(*values, ",") {
			n, err := strconv.Atoi(strings.TrimSpace(v))
			if err != nil {
				fatal(fmt.Errorf("bad value %q: %w", v, err))
			}
			vals = append(vals, n)
		}
	} else if *param != "none" {
		fatal(fmt.Errorf("-param %s needs -values", *param))
	}

	if *telDir != "" {
		if err := os.MkdirAll(*telDir, 0o755); err != nil {
			fatal(err)
		}
	}

	pols := strings.Split(*policies, ",")
	telemetry.RunManifest(logger, "avfsweep", smtavf.DefaultConfig(len(names)), *seed, names,
		"policies", *policies,
		"param", *param,
		"values", *values,
		"instructions", *instrs,
		"warmup", *warmup,
		"points", len(pols)*len(vals),
	)

	// CSV header.
	fmt.Printf("policy,%s,ipc", *param)
	for _, s := range smtavf.Structs() {
		fmt.Printf(",%s_avf", strings.ToLower(s.String()))
	}
	fmt.Println()

	var dbg *telemetry.DebugServer
	defer func() {
		if dbg != nil {
			dbg.Close()
		}
	}()
	sweepStart := time.Now()
	point := 0
	for _, pol := range pols {
		pol = strings.TrimSpace(pol)
		for _, v := range vals {
			point++
			cfg := smtavf.DefaultConfig(len(names))
			cfg.Seed = *seed
			cfg.Warmup = *warmup
			if err := cfg.SetPolicy(pol); err != nil {
				fatal(err)
			}
			if err := apply(&cfg, *param, v); err != nil {
				fatal(err)
			}
			sim, err := smtavf.NewSimulator(cfg, names)
			if err != nil {
				fatal(err)
			}

			// One fresh collector (and series file) per sweep point; the
			// debug server follows the point currently running.
			var col *smtavf.Telemetry
			if *telDir != "" || *debugAddr != "" {
				col = smtavf.NewTelemetry(smtavf.TelemetryOptions{WindowCycles: *telWindow})
				if *telDir != "" {
					exp, err := telemetry.Create(filepath.Join(*telDir, pointName(pol, *param, v)))
					if err != nil {
						fatal(err)
					}
					col.AddExporter(exp)
				}
				sim.SetTelemetry(col)
				if *debugAddr != "" {
					if dbg == nil {
						dbg, err = telemetry.ServeDebug(*debugAddr, col, logger)
						if err != nil {
							fatal(err)
						}
					} else {
						dbg.SetCollector(col)
					}
				}
			}

			start := time.Now()
			res, err := sim.Run(*instrs)
			if err != nil {
				fatal(fmt.Errorf("%s %s=%d: %w", pol, *param, v, err))
			}
			if cerr := col.Close(); cerr != nil {
				fatal(fmt.Errorf("telemetry: %w", cerr))
			}
			logger.Info("sweep point",
				"point", point,
				"of", len(pols)*len(vals),
				"policy", res.Policy,
				"param", *param,
				"value", v,
				"ipc", fmt.Sprintf("%.4f", res.IPC()),
				"cycles", res.Cycles,
				"windows", col.Windows(),
				"elapsed", time.Since(start).Round(time.Millisecond).String(),
			)
			fmt.Printf("%s,%d,%.4f", res.Policy, v, res.IPC())
			for _, s := range smtavf.Structs() {
				fmt.Printf(",%.4f", res.StructAVF(s))
			}
			fmt.Println()
		}
	}
	logger.Info("sweep complete",
		"points", point,
		"elapsed", time.Since(sweepStart).Round(time.Millisecond).String(),
	)
}

// pointName is the telemetry series filename of one sweep point.
func pointName(policy, param string, v int) string {
	if param == "none" {
		return policy + ".jsonl"
	}
	return fmt.Sprintf("%s_%s%d.jsonl", policy, param, v)
}

// apply sets the swept structural parameter.
func apply(cfg *smtavf.Config, param string, v int) error {
	switch param {
	case "none":
		return nil
	case "iq":
		cfg.IQSize = v
	case "rob":
		cfg.ROBSize = v
	case "lsq":
		cfg.LSQSize = v
	case "regs":
		cfg.IntPhysRegs, cfg.FPPhysRegs = v, v
	case "fetchq":
		cfg.FetchQueue = v
	default:
		return fmt.Errorf("unknown -param %q (want none, iq, rob, lsq, regs, fetchq)", param)
	}
	return nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "avfsweep:", err)
	os.Exit(1)
}
