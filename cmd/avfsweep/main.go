// Command avfsweep runs a grid of simulations — fetch policies crossed
// with one structural parameter — and emits a CSV of performance and
// per-structure AVFs, for custom design-space studies beyond the paper's
// figures.
//
// Usage:
//
//	avfsweep -mix 4ctx-MIX-A -policies ICOUNT,STALL,FLUSH -param iq -values 48,96,192
//	avfsweep -bench gcc,mcf -policies ICOUNT -param regs -values 256,448,640
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"smtavf"
)

func main() {
	var (
		mixName  = flag.String("mix", "", "Table 2 mix name")
		benches  = flag.String("bench", "", "comma-separated benchmarks (alternative to -mix)")
		policies = flag.String("policies", "ICOUNT", "comma-separated fetch policies")
		param    = flag.String("param", "none", "structural parameter to sweep: none, iq, rob, lsq, regs, fetchq")
		values   = flag.String("values", "", "comma-separated parameter values")
		instrs   = flag.Uint64("instructions", 100_000, "instructions per run")
		warmup   = flag.Uint64("warmup", 50_000, "warmup instructions per run")
		seed     = flag.Uint64("seed", 1, "simulation seed")
	)
	flag.Parse()

	var names []string
	switch {
	case *mixName != "":
		m, err := smtavf.MixByName(*mixName)
		if err != nil {
			fatal(err)
		}
		names = m.Benchmarks
	case *benches != "":
		names = strings.Split(*benches, ",")
	default:
		fatal(fmt.Errorf("need -mix or -bench"))
	}

	vals := []int{0}
	if *values != "" {
		vals = vals[:0]
		for _, v := range strings.Split(*values, ",") {
			n, err := strconv.Atoi(strings.TrimSpace(v))
			if err != nil {
				fatal(fmt.Errorf("bad value %q: %w", v, err))
			}
			vals = append(vals, n)
		}
	} else if *param != "none" {
		fatal(fmt.Errorf("-param %s needs -values", *param))
	}

	// CSV header.
	fmt.Printf("policy,%s,ipc", *param)
	for _, s := range smtavf.Structs() {
		fmt.Printf(",%s_avf", strings.ToLower(s.String()))
	}
	fmt.Println()

	for _, pol := range strings.Split(*policies, ",") {
		for _, v := range vals {
			cfg := smtavf.DefaultConfig(len(names))
			cfg.Seed = *seed
			cfg.Warmup = *warmup
			if err := cfg.SetPolicy(strings.TrimSpace(pol)); err != nil {
				fatal(err)
			}
			if err := apply(&cfg, *param, v); err != nil {
				fatal(err)
			}
			sim, err := smtavf.NewSimulator(cfg, names)
			if err != nil {
				fatal(err)
			}
			res, err := sim.Run(*instrs)
			if err != nil {
				fatal(fmt.Errorf("%s %s=%d: %w", pol, *param, v, err))
			}
			fmt.Printf("%s,%d,%.4f", res.Policy, v, res.IPC())
			for _, s := range smtavf.Structs() {
				fmt.Printf(",%.4f", res.StructAVF(s))
			}
			fmt.Println()
		}
	}
}

// apply sets the swept structural parameter.
func apply(cfg *smtavf.Config, param string, v int) error {
	switch param {
	case "none":
		return nil
	case "iq":
		cfg.IQSize = v
	case "rob":
		cfg.ROBSize = v
	case "lsq":
		cfg.LSQSize = v
	case "regs":
		cfg.IntPhysRegs, cfg.FPPhysRegs = v, v
	case "fetchq":
		cfg.FetchQueue = v
	default:
		return fmt.Errorf("unknown -param %q (want none, iq, rob, lsq, regs, fetchq)", param)
	}
	return nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "avfsweep:", err)
	os.Exit(1)
}
