// Command smtsim runs one SMT workload on the simulated machine and prints
// its performance and per-structure AVF report.
//
// Usage:
//
//	smtsim -mix 4ctx-MEM-A -policy FLUSH -instructions 100000
//	smtsim -bench mcf,twolf -policy ICOUNT -instructions 50000
//	smtsim -mix 4ctx-MIX-A -telemetry run.jsonl -telemetry-window 10000
//	smtsim -mix 4ctx-MIX-A -instructions 10000000 -debug-addr :6060
//
// With -telemetry the run emits a cycle-windowed time-series (JSONL, or
// CSV if the path ends in .csv); with -debug-addr a live HTTP server
// exposes /telemetry, /debug/vars, and /debug/pprof/ while the run is in
// flight. Structured progress logs go to stderr (-log-level, -log-json).
//
// With -pipetrace the run additionally records every uop's pipeline
// lifecycle and writes it as a Kanata log (.kanata/.kan, opens in Konata),
// a Chrome trace_event JSON (.json, opens in chrome://tracing or
// Perfetto), or compact JSONL (anything else; .gz compresses):
//
//	smtsim -bench mcf,gcc -instructions 20000 -pipetrace run.kanata
//	smtsim -mix 4ctx-MIX-A -pipetrace run.jsonl.gz -pipetrace-window 50000:70000
//	smtsim -bench mcf,gcc -pipetrace-top 10
//
// -pipetrace-top prints the AVF provenance report: the top-N static
// instructions by ACE bit-cycles in each pipeline structure, plus the
// residency-by-fate breakdown.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"smtavf"
	"smtavf/internal/pipetrace"
	"smtavf/internal/telemetry"
)

func main() {
	var (
		mixName   = flag.String("mix", "", "Table 2 mix name, e.g. 4ctx-MEM-A")
		benches   = flag.String("bench", "", "comma-separated benchmark names (alternative to -mix)")
		traces    = flag.String("trace", "", "comma-separated trace files recorded by tracegen (alternative to -mix/-bench)")
		policy    = flag.String("policy", "ICOUNT", "fetch policy: ICOUNT, STALL, FLUSH, DG, PDG, DWarn, STALLP")
		instrs    = flag.Uint64("instructions", 100_000, "total instructions to simulate")
		warmup    = flag.Uint64("warmup", 0, "instructions committed before measurement begins")
		phases    = flag.Uint64("phases", 0, "sample per-interval IPC/AVF every N cycles (0 = off)")
		seed      = flag.Uint64("seed", 1, "simulation seed")
		list      = flag.Bool("list", false, "list available mixes and benchmarks, then exit")
		cfgPath   = flag.String("config", "", "JSON machine configuration to load (overrides defaults; Threads is set from the workload)")
		dumpCfg   = flag.Bool("dumpconfig", false, "print the effective machine configuration as JSON and exit")
		asJSON    = flag.Bool("json", false, "emit the full results as JSON")
		telPath   = flag.String("telemetry", "", "write a cycle-windowed telemetry series to this file (JSONL; .csv for CSV)")
		telWindow = flag.Uint64("telemetry-window", telemetry.DefaultWindowCycles, "telemetry sampling window in cycles")
		ptPath    = flag.String("pipetrace", "", "record per-uop pipeline lifecycles to this file (.kanata/.kan Kanata, .json Chrome trace_event, else JSONL; .gz compresses)")
		ptFormat  = flag.String("pipetrace-format", "", "force the -pipetrace format: kanata, chrome, or jsonl (default: by extension)")
		ptWindow  = flag.String("pipetrace-window", "", "record only uops fetched in this cycle window, as START:END (END 0 or absent = unbounded)")
		ptTop     = flag.Int("pipetrace-top", 0, "print the top-N per-PC AVF provenance hotspots per pipeline structure (enables recording)")

		injOn      = flag.Bool("inject", false, "attach a statistical fault-injection campaign and cross-validate the AVF report against it")
		injEvery   = flag.Uint64("inject-every", 1, "campaign sample-grid pitch in cycles (1 = every cycle)")
		injSeed    = flag.Uint64("inject-seed", 0, "campaign seed (0 = use -seed)")
		injCI      = flag.Float64("inject-ci", 0.01, "target 99% confidence-interval half-width per structure; striking stops early once every structure is this tight")
		injStrikes = flag.Int("inject-strikes", 1<<20, "strike cap per structure")
		injReport  = flag.String("inject-report", "", "write the cross-validation report as JSONL to this file (.gz compresses)")

		debugAddr = flag.String("debug-addr", "", "serve /telemetry, /debug/vars and /debug/pprof on this address during the run (e.g. :6060)")
		logLevel  = flag.String("log-level", "info", "structured log level on stderr: debug, info, warn, error")
		logJSON   = flag.Bool("log-json", false, "emit structured logs as JSON instead of text")
	)
	flag.Parse()

	level, err := telemetry.ParseLevel(*logLevel)
	if err != nil {
		fatal(err)
	}
	logger := telemetry.NewLogger(os.Stderr, level, *logJSON)

	if *list {
		fmt.Println("Table 2 mixes:")
		for _, m := range smtavf.Mixes() {
			fmt.Printf("  %-12s %s\n", m.Name(), strings.Join(m.Benchmarks, ", "))
		}
		fmt.Println("benchmarks:", strings.Join(smtavf.Benchmarks(), ", "))
		return
	}

	var names, paths []string
	switch {
	case *mixName != "":
		m, err := smtavf.MixByName(*mixName)
		if err != nil {
			fatal(err)
		}
		names = m.Benchmarks
	case *benches != "":
		names = strings.Split(*benches, ",")
	case *traces != "":
		paths = strings.Split(*traces, ",")
	default:
		fatal(fmt.Errorf("need -mix, -bench, or -trace (try -list)"))
	}

	contexts := len(names)
	if contexts == 0 {
		contexts = len(paths)
	}
	cfg := smtavf.DefaultConfig(contexts)
	if *cfgPath != "" {
		data, err := os.ReadFile(*cfgPath)
		if err != nil {
			fatal(err)
		}
		if err := json.Unmarshal(data, &cfg); err != nil {
			fatal(fmt.Errorf("%s: %w", *cfgPath, err))
		}
		cfg.Threads = contexts // the workload decides the context count
		if cfg.Policy == nil {
			cfg.Policy, _ = smtavf.PolicyByName("ICOUNT")
		}
	}
	cfg.Seed = *seed
	cfg.Warmup = *warmup
	cfg.PhaseInterval = *phases
	if err := cfg.SetPolicy(*policy); err != nil {
		fatal(err)
	}
	if *dumpCfg {
		data, err := json.MarshalIndent(cfg, "", "  ")
		if err != nil {
			fatal(err)
		}
		fmt.Println(string(data))
		return
	}
	var sim *smtavf.Simulator
	if paths != nil {
		sim, err = smtavf.NewSimulatorFromTraceFiles(cfg, paths)
	} else {
		sim, err = smtavf.NewSimulator(cfg, names)
	}
	if err != nil {
		fatal(err)
	}

	// Telemetry: a collector when a series file or the debug server is
	// requested; the built-in ring buffer backs the /telemetry endpoint.
	var col *smtavf.Telemetry
	if *telPath != "" || *debugAddr != "" {
		col = smtavf.NewTelemetry(smtavf.TelemetryOptions{
			WindowCycles: *telWindow,
			Logger:       logger,
		})
		if *telPath != "" {
			exp, err := telemetry.Create(*telPath)
			if err != nil {
				fatal(err)
			}
			col.AddExporter(exp)
		}
		sim.SetTelemetry(col)
	}
	// Fault-injection campaign: samples the run on a cycle grid, then the
	// strike phase after the run cross-validates the tracker's AVF.
	var camp *smtavf.FaultCampaign
	campSeed := *injSeed
	if campSeed == 0 {
		campSeed = *seed
	}
	if *injOn {
		camp, err = smtavf.NewFaultCampaign(cfg, *injEvery, campSeed)
		if err != nil {
			fatal(err)
		}
		camp.PublishTelemetry(col)
		sim.InjectFaults(camp)
	}
	// Pipeline flight recorder, when a trace file or provenance report is
	// requested.
	var rec *smtavf.PipeTrace
	if *ptPath != "" || *ptTop > 0 {
		opt := smtavf.PipeTraceOptions{}
		if *ptWindow != "" {
			var err error
			opt.WindowStart, opt.WindowEnd, err = parseWindow(*ptWindow)
			if err != nil {
				fatal(err)
			}
		}
		rec = smtavf.NewPipeTrace(opt)
		sim.SetPipeTrace(rec)
	}
	format := pipetrace.Format(*ptFormat)
	switch format {
	case "", pipetrace.FormatKanata, pipetrace.FormatChrome, pipetrace.FormatJSONL:
	default:
		fatal(fmt.Errorf("unknown -pipetrace-format %q (kanata, chrome, or jsonl)", *ptFormat))
	}

	var dbg *telemetry.DebugServer
	if *debugAddr != "" {
		dbg, err = telemetry.ServeDebug(*debugAddr, col, logger)
		if err != nil {
			fatal(err)
		}
		defer dbg.Close()
	}

	workloads := names
	if workloads == nil {
		workloads = paths
	}
	telemetry.RunManifest(logger, "smtsim", cfg, *seed, workloads,
		"policy", *policy,
		"instructions", *instrs,
		"warmup", *warmup,
		"telemetry_window", *telWindow,
	)

	start := time.Now()
	res, err := sim.Run(*instrs)
	if err != nil {
		fatal(err)
	}
	if cerr := col.Close(); cerr != nil {
		fatal(fmt.Errorf("telemetry: %w", cerr))
	}
	if rec != nil && *ptPath != "" {
		if err := rec.WriteFile(*ptPath, format); err != nil {
			fatal(fmt.Errorf("pipetrace: %w", err))
		}
		logger.Info("pipetrace written", "path", *ptPath, "records", rec.Len(), "dropped", rec.Dropped())
	}
	var (
		injStats *smtavf.InjectStats
		injXval  *smtavf.CrossValReport
	)
	if camp != nil {
		injStats = camp.RunStrikes(res.Cycles, smtavf.StopWhen(*injCI, *injStrikes))
		workload := *mixName
		if workload == "" {
			workload = strings.Join(workloads, "+")
		}
		injXval = smtavf.CrossValidate(smtavf.CrossValMeta{
			Workload: workload,
			Policy:   *policy,
			Seed:     campSeed,
			Every:    *injEvery,
			Cycles:   res.Cycles,
		}, res, injStats)
		logger.Info("inject campaign done",
			"strikes", injStats.TotalStrikes,
			"rounds", injStats.Rounds,
			"stopped_early", injStats.StoppedEarly,
			"max_halfwidth", fmt.Sprintf("%.5f", injStats.MaxHalfWidth()),
			"pass", injXval.Pass(),
		)
		if *injReport != "" {
			if err := injXval.WriteFile(*injReport); err != nil {
				fatal(fmt.Errorf("inject-report: %w", err))
			}
			logger.Info("crossval report written", "path", *injReport, "entries", len(injXval.Entries))
		}
	}
	elapsed := time.Since(start)
	logger.Info("run complete",
		"cycles", res.Cycles,
		"instructions", res.Total,
		"ipc", fmt.Sprintf("%.4f", res.IPC()),
		"processor_avf", fmt.Sprintf("%.4f", res.ProcessorAVF()),
		"windows", col.Windows(),
		"elapsed", elapsed.Round(time.Millisecond).String(),
		"cycles_per_sec", fmt.Sprintf("%.0f", float64(res.Cycles)/elapsed.Seconds()),
	)

	if *asJSON {
		data, err := json.MarshalIndent(res, "", "  ")
		if err != nil {
			fatal(err)
		}
		fmt.Println(string(data))
		return
	}
	fmt.Print(res)
	if injStats != nil {
		fmt.Println()
		fmt.Print(injStats.Table())
		fmt.Println()
		fmt.Print(injXval.Table())
	}
	if rec != nil && *ptTop > 0 {
		prov := rec.Provenance()
		fmt.Println()
		for _, s := range pipetrace.RecordStructs {
			fmt.Print(prov.FormatHotspots(s, *ptTop))
		}
		fmt.Print(prov.FormatFates())
	}
	if *phases > 0 {
		fmt.Println("  phases (cycle / IPC / IQ AVF / ROB AVF):")
		for _, ph := range res.Phases {
			fmt.Printf("    %10d  %6.3f  %6.2f%%  %6.2f%%\n",
				ph.Cycle, ph.IPC, 100*ph.AVF[smtavf.IQ], 100*ph.AVF[smtavf.ROB])
		}
	}
}

// parseWindow parses a "START:END" cycle window; END may be omitted or 0
// for an unbounded window.
func parseWindow(s string) (start, end uint64, err error) {
	a, b, found := strings.Cut(s, ":")
	if a != "" {
		if _, err = fmt.Sscanf(a, "%d", &start); err != nil {
			return 0, 0, fmt.Errorf("bad -pipetrace-window %q: %w", s, err)
		}
	}
	if found && b != "" {
		if _, err = fmt.Sscanf(b, "%d", &end); err != nil {
			return 0, 0, fmt.Errorf("bad -pipetrace-window %q: %w", s, err)
		}
		if end != 0 && end <= start {
			return 0, 0, fmt.Errorf("bad -pipetrace-window %q: end must exceed start", s)
		}
	}
	return start, end, nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "smtsim:", err)
	os.Exit(1)
}
