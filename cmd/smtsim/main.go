// Command smtsim runs one SMT workload on the simulated machine and prints
// its performance and per-structure AVF report.
//
// Usage:
//
//	smtsim -mix 4ctx-MEM-A -policy FLUSH -instructions 100000
//	smtsim -bench mcf,twolf -policy ICOUNT -instructions 50000
//	smtsim -mix 4ctx-MIX-A -telemetry run.jsonl -telemetry-window 10000
//	smtsim -mix 4ctx-MIX-A -instructions 10000000 -debug-addr :6060
//	smtsim -mix 4ctx-MIX-A -instructions 10000000 -shards 8 -shard-workers 4
//	smtsim -spec run.json
//	smtsim -mix 4ctx-MIX-A -policy FLUSH -dumpspec > run.json
//
// The workload, policy, seed, machine override, and shard shape resolve
// into one versioned campaign spec (docs/campaign-service.md): -dumpspec
// prints it, -spec loads one instead of the per-axis flags, and the same
// JSON submits to the avfd campaign service unchanged. Observer flags
// (-telemetry, -pipetrace, -cpistack, -obs-*) layer on top of a loaded
// spec rather than living inside it.
//
// With -shards N the run is split into N deterministic intervals per
// thread and simulated in parallel; committed-instruction counts stay
// exact and per-structure AVFs agree with the monolithic run within the
// documented tolerance (docs/sharding.md). Sharded runs cannot carry the
// -telemetry series, -pipetrace, or -inject observers — those sample the
// cycle timeline — but -debug-addr and the -obs-* campaign observability
// work on both paths.
//
// With -telemetry the run emits a cycle-windowed time-series (JSONL, or
// CSV if the path ends in .csv); with -debug-addr a live HTTP server
// exposes /telemetry, /debug/vars, /debug/metrics (OpenMetrics),
// /debug/progress, and /debug/pprof/ while the run is in flight.
// Structured progress logs go to stderr (-log-level, -log-json).
//
// With -obs-ledger every run appends a provenance manifest — config
// digest, seeds, workloads, cycle/strike counts, the index of every
// artifact it wrote, exit status — to an append-only runs.jsonl; list it
// with `avfreport -runs`. -obs-heartbeat paces the progress heartbeat
// lines, and on a sharded run -obs-timeline writes the per-worker
// utilization timeline as Chrome trace_event JSON (docs/campaigns.md).
// ^C flushes and closes every exporter, then records the manifest with
// status "interrupted" instead of truncating gzip output mid-block.
//
// With -pipetrace the run additionally records every uop's pipeline
// lifecycle and writes it as a Kanata log (.kanata/.kan, opens in Konata),
// a Chrome trace_event JSON (.json, opens in chrome://tracing or
// Perfetto), or compact JSONL (anything else; .gz compresses):
//
//	smtsim -bench mcf,gcc -instructions 20000 -pipetrace run.kanata
//	smtsim -mix 4ctx-MIX-A -pipetrace run.jsonl.gz -pipetrace-window 50000:70000
//	smtsim -bench mcf,gcc -pipetrace-top 10
//
// -pipetrace-top prints the AVF provenance report: the top-N static
// instructions by ACE bit-cycles in each pipeline structure, plus the
// residency-by-fate breakdown.
//
// With -cpistack the run attributes every thread-cycle to a CPI-stack
// component and decomposes structure occupancy by ACE fate, printing both
// tables after the run; -cpistack-out writes the windowed series (.csv
// CSV, .json Chrome trace_event counters, else JSONL; docs/cpistack.md):
//
//	smtsim -bench mcf,gcc -instructions 20000 -cpistack
//	smtsim -mix 2ctx-MIX-A -policy FLUSH -cpistack-out stacks.jsonl
//
// With -inject -propagation the run additionally taint-tracks sampled
// strikes through the recorded dataflow and prints the fault-propagation
// atlas — root-cause instructions, hop histograms per edge type, and the
// cross-thread contamination matrix; -propagation-out writes the
// per-strike traces as JSONL (docs/propagation.md):
//
//	smtsim -bench mcf,gcc -instructions 20000 -inject -propagation
//	smtsim -mix 4ctx-MIX-A -inject -propagation-out atlas.jsonl.gz
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"smtavf"
	"smtavf/internal/campaign"
	"smtavf/internal/cliopts"
	"smtavf/internal/inject"
	"smtavf/internal/obs"
	"smtavf/internal/pipetrace"
	"smtavf/internal/propagation"
	"smtavf/internal/telemetry"
)

// shut coordinates graceful exit: exporter closers and the run-manifest
// append run exactly once whether the run finishes, fails, or catches ^C.
var shut cliopts.Shutdown

func main() {
	var (
		mixName  = flag.String("mix", "", "Table 2 mix name, e.g. 4ctx-MEM-A")
		benches  = flag.String("bench", "", "comma-separated benchmark names (alternative to -mix)")
		traces   = flag.String("trace", "", "comma-separated trace files recorded by tracegen (alternative to -mix/-bench)")
		policy   = flag.String("policy", "ICOUNT", "fetch policy: ICOUNT, STALL, FLUSH, DG, PDG, DWarn, STALLP")
		instrs   = flag.Uint64("instructions", 100_000, "total instructions to simulate")
		warmup   = flag.Uint64("warmup", 0, "instructions committed before measurement begins")
		phases   = flag.Uint64("phases", 0, "sample per-interval IPC/AVF every N cycles (0 = off)")
		seed     = flag.Uint64("seed", 1, "simulation seed")
		list     = flag.Bool("list", false, "list available mixes and benchmarks, then exit")
		cfgPath  = flag.String("config", "", "JSON machine configuration to load (overrides defaults; Threads is set from the workload)")
		dumpCfg  = flag.Bool("dumpconfig", false, "print the effective machine configuration as JSON and exit")
		specPath = flag.String("spec", "", "load the run from this campaign-spec JSON file instead of the workload/policy flags (observer flags still apply)")
		dumpSpec = flag.Bool("dumpspec", false, "print the effective campaign spec as JSON and exit (submit it to avfd or rerun with -spec)")
		asJSON   = flag.Bool("json", false, "emit the full results as JSON")

		logFlags cliopts.Log
		tel      cliopts.Telemetry
		inj      cliopts.Inject
		prop     cliopts.Propagation
		pt       cliopts.PipeTrace
		cpi      cliopts.CPIStack
		shards   cliopts.Shards
		prof     cliopts.Profile
		obsFlags cliopts.Obs
	)
	logFlags.Register(flag.CommandLine)
	tel.Register(flag.CommandLine)
	inj.Register(flag.CommandLine)
	prop.Register(flag.CommandLine)
	pt.Register(flag.CommandLine)
	cpi.Register(flag.CommandLine)
	shards.Register(flag.CommandLine)
	prof.Register(flag.CommandLine)
	obsFlags.Register(flag.CommandLine)
	flag.Parse()

	logger, err := logFlags.Logger(os.Stderr)
	if err != nil {
		fatal(err)
	}
	if err := tel.Validate(); err != nil {
		fatal(err)
	}
	if err := prop.Validate(); err != nil {
		fatal(err)
	}
	if err := cpi.Validate(); err != nil {
		fatal(err)
	}
	if err := shards.Validate(); err != nil {
		fatal(err)
	}
	if err := prof.Start(); err != nil {
		fatal(err)
	}
	defer func() {
		if err := prof.Stop(); err != nil {
			fmt.Fprintln(os.Stderr, "smtsim:", err)
		}
	}()

	if *list {
		fmt.Println("Table 2 mixes:")
		for _, m := range smtavf.Mixes() {
			fmt.Printf("  %-12s %s\n", m.Name(), strings.Join(m.Benchmarks, ", "))
		}
		fmt.Println("benchmarks:", strings.Join(smtavf.Benchmarks(), ", "))
		return
	}

	// Resolve the run to one versioned campaign spec: either loaded from
	// -spec, or assembled from the per-axis flags. Everything downstream —
	// machine config, workload sources, shard shape, the strike campaign —
	// derives from the spec, so a run submitted to avfd and a run typed
	// here resolve identically.
	var spec smtavf.CampaignSpec
	if *specPath != "" {
		spec, err = smtavf.ReadCampaignSpec(*specPath)
		if err != nil {
			fatal(err)
		}
		if k := spec.Kind(); k != campaign.KindRun {
			fatal(fmt.Errorf("%s: smtsim runs plain specs; submit %s specs to avfd or avfreport", *specPath, k))
		}
		// The spec's knobs replace the corresponding flags.
		shards.N, shards.Workers = spec.Shards, spec.ShardWorkers
		if shards.N < 1 {
			shards.N = 1
		}
		if spec.Inject != nil {
			inj.On = true
			if spec.Inject.Every != 0 {
				inj.Every = spec.Inject.Every
			}
			inj.Seed = spec.Inject.Seed
			if spec.Inject.Stop.HalfWidth != 0 {
				inj.CI = spec.Inject.Stop.HalfWidth
			}
			if spec.Inject.Stop.MaxStrikes != 0 {
				inj.Strikes = spec.Inject.Stop.MaxStrikes
			}
		}
		if spec.Instructions == 0 {
			spec.Instructions = *instrs
		}
	} else {
		spec = smtavf.CampaignSpec{
			Mix:           *mixName,
			Policy:        *policy,
			Seed:          *seed,
			Instructions:  *instrs,
			Warmup:        *warmup,
			PhaseInterval: *phases,
			Shards:        shards.N,
			ShardWorkers:  shards.Workers,
		}
		if *benches != "" {
			spec.Benchmarks = strings.Split(*benches, ",")
		}
		if *traces != "" {
			spec.TraceFiles = strings.Split(*traces, ",")
		}
		if spec.Mix == "" && spec.Benchmarks == nil && spec.TraceFiles == nil {
			fatal(fmt.Errorf("need -mix, -bench, -trace, or -spec (try -list)"))
		}
		if *cfgPath != "" {
			machine := smtavf.DefaultConfig(spec.Threads())
			data, err := os.ReadFile(*cfgPath)
			if err != nil {
				fatal(err)
			}
			if err := json.Unmarshal(data, &machine); err != nil {
				fatal(fmt.Errorf("%s: %w", *cfgPath, err))
			}
			spec.Machine = &machine
		}
		if inj.On {
			spec.Inject = &campaign.InjectSpec{
				Every: inj.Every,
				Seed:  inj.Seed,
				Stop:  inject.Stop{HalfWidth: inj.CI, MaxStrikes: inj.Strikes},
			}
		}
	}
	if err := inj.Validate(); err != nil {
		fatal(err)
	}
	if prop.Enabled() && !inj.On {
		fatal(fmt.Errorf("-propagation needs the strike campaign: pass -inject"))
	}
	if err := obsFlags.Validate(shards.Sharded()); err != nil {
		fatal(err)
	}

	if *dumpSpec {
		data, err := spec.MarshalIndent()
		if err != nil {
			fatal(err)
		}
		fmt.Println(string(data))
		return
	}

	cfg, err := smtavf.SpecConfig(spec)
	if err != nil {
		fatal(err)
	}
	if *dumpCfg {
		data, err := json.MarshalIndent(cfg, "", "  ")
		if err != nil {
			fatal(err)
		}
		fmt.Println(string(data))
		return
	}
	opts, err := smtavf.SpecOptions(spec)
	if err != nil {
		fatal(err)
	}

	// Campaign observability: the metrics registry behind /debug/metrics,
	// the progress tracker behind the heartbeats and /debug/progress, and
	// the run ledger. The manifest is authored here — not by the facade —
	// so it can index every artifact this command writes; the Final hook
	// appends it once, whatever way the process exits.
	reg := smtavf.NewMetricsRegistry()
	prog := smtavf.NewProgress(smtavf.ProgressOptions{
		Logger:    logger,
		Heartbeat: obsFlags.HeartbeatInterval(),
		Registry:  reg,
	})
	ledger, err := obsFlags.OpenLedger()
	if err != nil {
		fatal(err)
	}
	opts = append(opts, smtavf.WithObservability(&smtavf.Observability{
		Registry: reg,
		Progress: prog,
		Program:  "smtsim",
	}))
	workloads := spec.WorkloadIDs()
	man := obs.NewManifest("run", "smtsim")
	man.ConfigDigest = obs.ConfigDigest(cfg)
	man.Seed = cfg.Seed
	man.Policy = spec.PolicyName()
	man.Workloads = workloads
	man.Shards = shards.N
	if spec.Mix != "" {
		man.Extra = map[string]string{"mix": spec.Mix}
	}
	var (
		runRes   *smtavf.Results
		runStats *smtavf.InjectStats
	)
	shut.Final(func(status string) {
		if runRes != nil {
			man.Cycles, man.Instructions = runRes.Cycles, runRes.Total
		}
		if runStats != nil {
			man.Strikes = runStats.TotalStrikes
		}
		man.Finish(status, nil)
		if err := ledger.Append(man); err != nil {
			logger.Error("run ledger append", "path", ledger.Path(), "err", err)
		}
	})
	shut.Install(logger)

	// Telemetry: a collector when a series file or the debug server is
	// requested; the built-in ring buffer backs the /telemetry endpoint.
	// A sharded run has no cycle timeline to sample, so the collector is
	// not attached there — it still carries the registry and progress
	// tracker for the debug server, which is how a sharded -debug-addr
	// serves live pool metrics and shard completion.
	var col *smtavf.Telemetry
	if tel.Enabled() {
		if shards.Sharded() && tel.Path != "" {
			fatal(fmt.Errorf("-telemetry requires a monolithic run: a sharded run has no contiguous cycle timeline (drop -shards or -telemetry)"))
		}
		col = smtavf.NewTelemetry(smtavf.TelemetryOptions{
			WindowCycles: tel.Window,
			Logger:       logger,
			Registry:     reg,
		})
		col.SetProgress(prog)
		if tel.Path != "" {
			exp, err := telemetry.Create(tel.Path)
			if err != nil {
				fatal(err)
			}
			col.AddExporter(exp)
			man.AddArtifact("telemetry", tel.Path)
		}
		shut.Defer("telemetry", col.Close)
		if !shards.Sharded() {
			opts = append(opts, smtavf.WithTelemetry(col))
		}
	}
	// Fault-injection campaign: samples the run on a cycle grid, then the
	// strike phase after the run cross-validates the tracker's AVF.
	var camp *smtavf.FaultCampaign
	campSeed := inj.CampaignSeed(cfg.Seed)
	if inj.On {
		camp, err = smtavf.NewFaultCampaign(cfg, inj.Every, campSeed)
		if err != nil {
			fatal(err)
		}
		camp.PublishTelemetry(col)
		opts = append(opts, smtavf.WithFaultInjection(camp))
		man.CampaignSeed = campSeed
	}
	// Fault-propagation tracer: records per-uop dataflow nodes during the
	// run so sampled strikes can be taint-tracked afterwards.
	var tracer *smtavf.PropagationTracer
	if prop.Enabled() {
		tracer = smtavf.NewPropagation(smtavf.PropagationOptions{})
		tracer.PublishTelemetry(col)
		opts = append(opts, smtavf.WithPropagation(tracer))
	}
	// Explainability observer: per-thread CPI stacks plus occupancy-by-fate,
	// printed after the run and optionally exported as a windowed series.
	var stack *smtavf.CPIStack
	if cpi.Enabled() {
		stack = smtavf.NewCPIStack(cpi.Options())
		stack.PublishTelemetry(col)
		opts = append(opts, smtavf.WithCPIStack(stack))
	}
	// Pipeline flight recorder, when a trace file or provenance report is
	// requested.
	var rec *smtavf.PipeTrace
	if pt.Enabled() {
		opt, err := pt.Options()
		if err != nil {
			fatal(err)
		}
		rec = smtavf.NewPipeTrace(opt)
		opts = append(opts, smtavf.WithPipeTrace(rec))
	}
	format, err := pt.ExportFormat()
	if err != nil {
		fatal(err)
	}
	// On ^C, flush whatever the flight recorder holds so the partial trace
	// is still openable; the normal path writes it once, below.
	var ptWritten bool
	if rec != nil && pt.Path != "" {
		shut.Defer("pipetrace", func() error {
			if ptWritten {
				return nil
			}
			return rec.WriteFile(pt.Path, format)
		})
	}

	sim, err := smtavf.New(cfg, opts...)
	if err != nil {
		fatal(err)
	}

	var dbg *telemetry.DebugServer
	if tel.DebugAddr != "" {
		dbg, err = telemetry.ServeDebug(tel.DebugAddr, col, logger)
		if err != nil {
			fatal(err)
		}
		defer dbg.Close()
	}

	telemetry.RunManifest(logger, "smtsim", cfg, cfg.Seed, workloads,
		"policy", spec.PolicyName(),
		"instructions", spec.Instructions,
		"warmup", cfg.Warmup,
		"telemetry_window", tel.Window,
		"shards", shards.N,
	)

	start := time.Now()
	res, err := sim.Run(spec.Instructions)
	if err != nil {
		fatal(err)
	}
	runRes = res
	if obsFlags.Timeline != "" {
		if err := writeTimeline(obsFlags.Timeline, sim.Timeline()); err != nil {
			fatal(fmt.Errorf("obs-timeline: %w", err))
		}
		man.AddArtifact("timeline", obsFlags.Timeline)
		logger.Info("worker timeline written", "path", obsFlags.Timeline, "spans", len(sim.Timeline()))
	}
	if rec != nil && pt.Path != "" {
		if err := rec.WriteFile(pt.Path, format); err != nil {
			fatal(fmt.Errorf("pipetrace: %w", err))
		}
		ptWritten = true
		man.AddArtifact("pipetrace", pt.Path)
		logger.Info("pipetrace written", "path", pt.Path, "records", rec.Len(), "dropped", rec.Dropped())
	}
	if stack != nil && cpi.Out != "" {
		if err := stack.WriteFile(cpi.Out); err != nil {
			fatal(fmt.Errorf("cpistack-out: %w", err))
		}
		man.AddArtifact("cpistack", cpi.Out)
		logger.Info("cpistack series written", "path", cpi.Out, "windows", len(stack.Windows()))
	}
	var (
		injStats *smtavf.InjectStats
		injXval  *smtavf.CrossValReport
		atlas    *smtavf.PropagationAtlas
	)
	if camp != nil {
		injStats = camp.RunStrikes(res.Cycles, smtavf.StopWhen(inj.CI, inj.Strikes))
		runStats = injStats
		injXval = smtavf.CrossValidate(smtavf.CrossValMeta{
			Workload: spec.WorkloadName(),
			Policy:   spec.PolicyName(),
			Seed:     campSeed,
			Every:    inj.Every,
			Cycles:   res.Cycles,
		}, res, injStats)
		logger.Info("inject campaign done",
			"strikes", injStats.TotalStrikes,
			"rounds", injStats.Rounds,
			"stopped_early", injStats.StoppedEarly,
			"max_halfwidth", fmt.Sprintf("%.5f", injStats.MaxHalfWidth()),
			"pass", injXval.Pass(),
		)
		if inj.Report != "" {
			if err := injXval.WriteFile(inj.Report); err != nil {
				fatal(fmt.Errorf("inject-report: %w", err))
			}
			man.AddArtifact("crossval", inj.Report)
			logger.Info("crossval report written", "path", inj.Report, "entries", len(injXval.Entries))
		}
		// Taint-track freshly sampled strikes through the recorded dataflow.
		if tracer != nil {
			var strikes []smtavf.InjectStrike
			for _, s := range smtavf.Structs() {
				strikes = append(strikes, camp.SampleStrikes(s, res.Cycles, prop.Strikes)...)
			}
			atlas = tracer.Analyze(strikes)
			logger.Info("propagation atlas built",
				"strikes", atlas.Strikes,
				"resolved", atlas.Resolved,
				"sdc", atlas.Terminals[propagation.TerminalSDC],
				"cross_thread", atlas.CrossEdges(),
				"max_depth", atlas.MaxDepth,
			)
			if prop.Out != "" {
				if err := propagation.WriteFile(prop.Out, atlas.Traces); err != nil {
					fatal(fmt.Errorf("propagation-out: %w", err))
				}
				man.AddArtifact("propagation", prop.Out)
				logger.Info("propagation traces written", "path", prop.Out, "traces", len(atlas.Traces))
			}
		}
	}
	elapsed := time.Since(start)
	logger.Info("run complete",
		"cycles", res.Cycles,
		"instructions", res.Total,
		"ipc", fmt.Sprintf("%.4f", res.IPC()),
		"processor_avf", fmt.Sprintf("%.4f", res.ProcessorAVF()),
		"windows", col.Windows(),
		"shards", shards.N,
		"elapsed", elapsed.Round(time.Millisecond).String(),
		"cycles_per_sec", fmt.Sprintf("%.0f", float64(res.Cycles)/elapsed.Seconds()),
	)
	shut.Finish(obs.StatusOK, logger)

	if *asJSON {
		data, err := json.MarshalIndent(res, "", "  ")
		if err != nil {
			fatal(err)
		}
		fmt.Println(string(data))
		return
	}
	fmt.Print(res)
	if injStats != nil {
		fmt.Println()
		fmt.Print(injStats.Table())
		fmt.Println()
		fmt.Print(injXval.Table())
	}
	if atlas != nil && prop.On {
		fmt.Println()
		fmt.Print(atlas.Tables(prop.Top))
	}
	if stack != nil {
		fmt.Println()
		fmt.Print(stack.FormatStack())
		fmt.Println()
		fmt.Print(stack.FormatOccupancy())
	}
	if rec != nil && pt.Top > 0 {
		prov := rec.Provenance()
		fmt.Println()
		for _, s := range pipetrace.RecordStructs {
			fmt.Print(prov.FormatHotspots(s, pt.Top))
		}
		fmt.Print(prov.FormatFates())
	}
	if cfg.PhaseInterval > 0 {
		fmt.Println("  phases (cycle / IPC / IQ AVF / ROB AVF):")
		for _, ph := range res.Phases {
			fmt.Printf("    %10d  %6.3f  %6.2f%%  %6.2f%%\n",
				ph.Cycle, ph.IPC, 100*ph.AVF[smtavf.IQ], 100*ph.AVF[smtavf.ROB])
		}
	}
}

// writeTimeline exports the sharded run's worker-phase spans as Chrome
// trace_event JSON for chrome://tracing / Perfetto.
func writeTimeline(path string, spans []smtavf.Span) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := smtavf.WriteTimeline(f, spans); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "smtsim:", err)
	shut.Finish(obs.StatusError, nil)
	os.Exit(1)
}
