// Command smtsim runs one SMT workload on the simulated machine and prints
// its performance and per-structure AVF report.
//
// Usage:
//
//	smtsim -mix 4ctx-MEM-A -policy FLUSH -instructions 100000
//	smtsim -bench mcf,twolf -policy ICOUNT -instructions 50000
//	smtsim -mix 4ctx-MIX-A -telemetry run.jsonl -telemetry-window 10000
//	smtsim -mix 4ctx-MIX-A -instructions 10000000 -debug-addr :6060
//
// With -telemetry the run emits a cycle-windowed time-series (JSONL, or
// CSV if the path ends in .csv); with -debug-addr a live HTTP server
// exposes /telemetry, /debug/vars, and /debug/pprof/ while the run is in
// flight. Structured progress logs go to stderr (-log-level, -log-json).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"smtavf"
	"smtavf/internal/telemetry"
)

func main() {
	var (
		mixName   = flag.String("mix", "", "Table 2 mix name, e.g. 4ctx-MEM-A")
		benches   = flag.String("bench", "", "comma-separated benchmark names (alternative to -mix)")
		traces    = flag.String("trace", "", "comma-separated trace files recorded by tracegen (alternative to -mix/-bench)")
		policy    = flag.String("policy", "ICOUNT", "fetch policy: ICOUNT, STALL, FLUSH, DG, PDG, DWarn, STALLP")
		instrs    = flag.Uint64("instructions", 100_000, "total instructions to simulate")
		warmup    = flag.Uint64("warmup", 0, "instructions committed before measurement begins")
		phases    = flag.Uint64("phases", 0, "sample per-interval IPC/AVF every N cycles (0 = off)")
		seed      = flag.Uint64("seed", 1, "simulation seed")
		list      = flag.Bool("list", false, "list available mixes and benchmarks, then exit")
		cfgPath   = flag.String("config", "", "JSON machine configuration to load (overrides defaults; Threads is set from the workload)")
		dumpCfg   = flag.Bool("dumpconfig", false, "print the effective machine configuration as JSON and exit")
		asJSON    = flag.Bool("json", false, "emit the full results as JSON")
		telPath   = flag.String("telemetry", "", "write a cycle-windowed telemetry series to this file (JSONL; .csv for CSV)")
		telWindow = flag.Uint64("telemetry-window", telemetry.DefaultWindowCycles, "telemetry sampling window in cycles")
		debugAddr = flag.String("debug-addr", "", "serve /telemetry, /debug/vars and /debug/pprof on this address during the run (e.g. :6060)")
		logLevel  = flag.String("log-level", "info", "structured log level on stderr: debug, info, warn, error")
		logJSON   = flag.Bool("log-json", false, "emit structured logs as JSON instead of text")
	)
	flag.Parse()

	level, err := telemetry.ParseLevel(*logLevel)
	if err != nil {
		fatal(err)
	}
	logger := telemetry.NewLogger(os.Stderr, level, *logJSON)

	if *list {
		fmt.Println("Table 2 mixes:")
		for _, m := range smtavf.Mixes() {
			fmt.Printf("  %-12s %s\n", m.Name(), strings.Join(m.Benchmarks, ", "))
		}
		fmt.Println("benchmarks:", strings.Join(smtavf.Benchmarks(), ", "))
		return
	}

	var names, paths []string
	switch {
	case *mixName != "":
		m, err := smtavf.MixByName(*mixName)
		if err != nil {
			fatal(err)
		}
		names = m.Benchmarks
	case *benches != "":
		names = strings.Split(*benches, ",")
	case *traces != "":
		paths = strings.Split(*traces, ",")
	default:
		fatal(fmt.Errorf("need -mix, -bench, or -trace (try -list)"))
	}

	contexts := len(names)
	if contexts == 0 {
		contexts = len(paths)
	}
	cfg := smtavf.DefaultConfig(contexts)
	if *cfgPath != "" {
		data, err := os.ReadFile(*cfgPath)
		if err != nil {
			fatal(err)
		}
		if err := json.Unmarshal(data, &cfg); err != nil {
			fatal(fmt.Errorf("%s: %w", *cfgPath, err))
		}
		cfg.Threads = contexts // the workload decides the context count
		if cfg.Policy == nil {
			cfg.Policy, _ = smtavf.PolicyByName("ICOUNT")
		}
	}
	cfg.Seed = *seed
	cfg.Warmup = *warmup
	cfg.PhaseInterval = *phases
	if err := cfg.SetPolicy(*policy); err != nil {
		fatal(err)
	}
	if *dumpCfg {
		data, err := json.MarshalIndent(cfg, "", "  ")
		if err != nil {
			fatal(err)
		}
		fmt.Println(string(data))
		return
	}
	var sim *smtavf.Simulator
	if paths != nil {
		sim, err = smtavf.NewSimulatorFromTraceFiles(cfg, paths)
	} else {
		sim, err = smtavf.NewSimulator(cfg, names)
	}
	if err != nil {
		fatal(err)
	}

	// Telemetry: a collector when a series file or the debug server is
	// requested; the built-in ring buffer backs the /telemetry endpoint.
	var col *smtavf.Telemetry
	if *telPath != "" || *debugAddr != "" {
		col = smtavf.NewTelemetry(smtavf.TelemetryOptions{
			WindowCycles: *telWindow,
			Logger:       logger,
		})
		if *telPath != "" {
			exp, err := telemetry.Create(*telPath)
			if err != nil {
				fatal(err)
			}
			col.AddExporter(exp)
		}
		sim.SetTelemetry(col)
	}
	var dbg *telemetry.DebugServer
	if *debugAddr != "" {
		dbg, err = telemetry.ServeDebug(*debugAddr, col, logger)
		if err != nil {
			fatal(err)
		}
		defer dbg.Close()
	}

	workloads := names
	if workloads == nil {
		workloads = paths
	}
	telemetry.RunManifest(logger, "smtsim", cfg, *seed, workloads,
		"policy", *policy,
		"instructions", *instrs,
		"warmup", *warmup,
		"telemetry_window", *telWindow,
	)

	start := time.Now()
	res, err := sim.Run(*instrs)
	if err != nil {
		fatal(err)
	}
	if cerr := col.Close(); cerr != nil {
		fatal(fmt.Errorf("telemetry: %w", cerr))
	}
	elapsed := time.Since(start)
	logger.Info("run complete",
		"cycles", res.Cycles,
		"instructions", res.Total,
		"ipc", fmt.Sprintf("%.4f", res.IPC()),
		"processor_avf", fmt.Sprintf("%.4f", res.ProcessorAVF()),
		"windows", col.Windows(),
		"elapsed", elapsed.Round(time.Millisecond).String(),
		"cycles_per_sec", fmt.Sprintf("%.0f", float64(res.Cycles)/elapsed.Seconds()),
	)

	if *asJSON {
		data, err := json.MarshalIndent(res, "", "  ")
		if err != nil {
			fatal(err)
		}
		fmt.Println(string(data))
		return
	}
	fmt.Print(res)
	if *phases > 0 {
		fmt.Println("  phases (cycle / IPC / IQ AVF / ROB AVF):")
		for _, ph := range res.Phases {
			fmt.Printf("    %10d  %6.3f  %6.2f%%  %6.2f%%\n",
				ph.Cycle, ph.IPC, 100*ph.AVF[smtavf.IQ], 100*ph.AVF[smtavf.ROB])
		}
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "smtsim:", err)
	os.Exit(1)
}
