// Command tracegen records synthetic benchmark instruction traces to
// files, and inspects existing trace files. Recorded traces replay through
// smtsim -trace, decoupling workload generation from simulation (and
// letting externally produced traces drive the machine).
//
// Usage:
//
//	tracegen -bench mcf -n 100000 -o mcf.trc
//	tracegen -dump mcf.trc | head
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"smtavf/internal/telemetry"
	"smtavf/internal/trace"
	"smtavf/internal/workload"
)

func main() {
	var (
		bench    = flag.String("bench", "", "benchmark to record (see smtsim -list)")
		n        = flag.Int("n", 100_000, "instructions to record")
		out      = flag.String("o", "", "output file (default <bench>.trc)")
		seed     = flag.Uint64("seed", 1, "generator seed")
		dump     = flag.String("dump", "", "print a trace file's header and first records, then exit")
		logLevel = flag.String("log-level", "info", "structured log level on stderr: debug, info, warn, error")
	)
	flag.Parse()

	level, err := telemetry.ParseLevel(*logLevel)
	if err != nil {
		fatal(err)
	}
	logger := telemetry.NewLogger(os.Stderr, level, false)

	if *dump != "" {
		if err := dumpTrace(*dump); err != nil {
			fatal(err)
		}
		return
	}
	if *bench == "" {
		fatal(fmt.Errorf("need -bench or -dump"))
	}
	p, err := workload.Profile(*bench)
	if err != nil {
		fatal(err)
	}
	path := *out
	if path == "" {
		path = *bench + ".trc"
	}
	logger.Info("run manifest",
		"program", "tracegen",
		"bench", *bench,
		"instructions", *n,
		"seed", *seed,
		"output", path,
	)
	start := time.Now()
	gen := trace.NewSynthetic(p, *seed)
	ins := trace.Record(gen, *n)
	f, err := os.Create(path)
	if err != nil {
		fatal(err)
	}
	if err := trace.WriteTrace(f, *bench, ins); err != nil {
		f.Close()
		fatal(err)
	}
	if err := f.Close(); err != nil {
		fatal(err)
	}
	logger.Info("trace written",
		"instructions", len(ins),
		"elapsed", time.Since(start).Round(time.Millisecond).String(),
	)
	fmt.Printf("wrote %d instructions of %s to %s\n", *n, *bench, path)
}

func dumpTrace(path string) error {
	r, err := trace.LoadTraceFile(path)
	if err != nil {
		return err
	}
	fmt.Printf("trace %s: workload %q, %d instructions per lap\n", path, r.Name(), r.Len())
	for i := 0; i < 20 && i < r.Len(); i++ {
		in := r.Next()
		fmt.Printf("  %6d  pc=%#010x  %-7s", in.Seq, in.PC, in.Class)
		if in.Dest.Valid() {
			fmt.Printf(" d=r%-3d", in.Dest)
		}
		if in.Class.IsMem() {
			fmt.Printf(" addr=%#x", in.Addr)
		}
		if in.Class.IsCTI() {
			fmt.Printf(" taken=%v", in.Taken)
		}
		if in.Dead {
			fmt.Print(" dead")
		}
		fmt.Println()
	}
	return nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "tracegen:", err)
	os.Exit(1)
}
