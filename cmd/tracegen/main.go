// Command tracegen records synthetic benchmark instruction traces to
// files, and inspects existing trace files. Recorded traces replay through
// smtsim -trace, decoupling workload generation from simulation (and
// letting externally produced traces drive the machine).
//
// Usage:
//
//	tracegen -bench mcf -n 100000 -o mcf.trc
//	tracegen -dump mcf.trc | head
//
// tracegen shares the -log-level/-log-json and -cpuprofile/-memprofile
// flag groups with the other commands (internal/cliopts).
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"time"

	"smtavf/internal/cliopts"
	"smtavf/internal/trace"
	"smtavf/internal/workload"
)

func main() {
	var (
		bench = flag.String("bench", "", "benchmark to record (see smtsim -list)")
		n     = flag.Int("n", 100_000, "instructions to record")
		out   = flag.String("o", "", "output file (default <bench>.trc)")
		seed  = flag.Uint64("seed", 1, "generator seed")
		dump  = flag.String("dump", "", "print a trace file's header and first records, then exit")

		logFlags cliopts.Log
		prof     cliopts.Profile
	)
	logFlags.Register(flag.CommandLine)
	prof.Register(flag.CommandLine)
	flag.Parse()

	logger, err := logFlags.Logger(os.Stderr)
	if err != nil {
		fatal(err)
	}
	if err := prof.Start(); err != nil {
		fatal(err)
	}
	defer func() {
		if err := prof.Stop(); err != nil {
			fmt.Fprintln(os.Stderr, "tracegen:", err)
		}
	}()

	if *dump != "" {
		if err := dumpTrace(os.Stdout, *dump); err != nil {
			fatal(err)
		}
		return
	}
	if *bench == "" {
		fatal(fmt.Errorf("need -bench or -dump"))
	}
	path := *out
	if path == "" {
		path = *bench + ".trc"
	}
	logger.Info("run manifest",
		"program", "tracegen",
		"bench", *bench,
		"instructions", *n,
		"seed", *seed,
		"output", path,
	)
	start := time.Now()
	wrote, err := generate(*bench, *n, *seed, path)
	if err != nil {
		fatal(err)
	}
	logger.Info("trace written",
		"instructions", wrote,
		"elapsed", time.Since(start).Round(time.Millisecond).String(),
	)
	fmt.Printf("wrote %d instructions of %s to %s\n", wrote, *bench, path)
}

// generate records n instructions of the named synthetic benchmark to
// path and returns how many it wrote.
func generate(bench string, n int, seed uint64, path string) (int, error) {
	p, err := workload.Profile(bench)
	if err != nil {
		return 0, err
	}
	gen := trace.NewSynthetic(p, seed)
	ins := trace.Record(gen, n)
	f, err := os.Create(path)
	if err != nil {
		return 0, err
	}
	if err := trace.WriteTrace(f, bench, ins); err != nil {
		f.Close()
		return 0, err
	}
	if err := f.Close(); err != nil {
		return 0, err
	}
	return len(ins), nil
}

// dumpTrace prints a trace file's header and its first records to w.
func dumpTrace(w io.Writer, path string) error {
	r, err := trace.LoadTraceFile(path)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "trace %s: workload %q, %d instructions per lap\n", path, r.Name(), r.Len())
	for i := 0; i < 20 && i < r.Len(); i++ {
		in := r.Next()
		fmt.Fprintf(w, "  %6d  pc=%#010x  %-7s", in.Seq, in.PC, in.Class)
		if in.Dest.Valid() {
			fmt.Fprintf(w, " d=r%-3d", in.Dest)
		}
		if in.Class.IsMem() {
			fmt.Fprintf(w, " addr=%#x", in.Addr)
		}
		if in.Class.IsCTI() {
			fmt.Fprintf(w, " taken=%v", in.Taken)
		}
		if in.Dead {
			fmt.Fprint(w, " dead")
		}
		fmt.Fprintln(w)
	}
	return nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "tracegen:", err)
	os.Exit(1)
}
