package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestGenerateAndDumpRoundTrip is the tracegen smoke test: record a
// small synthetic trace, then dump it back and check the header and
// record lines look right.
func TestGenerateAndDumpRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "mcf.trc")
	wrote, err := generate("mcf", 500, 1, path)
	if err != nil {
		t.Fatal(err)
	}
	if wrote != 500 {
		t.Fatalf("wrote %d instructions, want 500", wrote)
	}
	var out strings.Builder
	if err := dumpTrace(&out, path); err != nil {
		t.Fatal(err)
	}
	dump := out.String()
	if !strings.Contains(dump, `workload "mcf", 500 instructions per lap`) {
		t.Errorf("dump header wrong:\n%s", dump)
	}
	if got := strings.Count(dump, "pc="); got != 20 {
		t.Errorf("dump shows %d records, want 20", got)
	}
}

// TestGenerateDeterministic pins that the same bench/seed produce the
// same file byte for byte — traces are provenance artifacts.
func TestGenerateDeterministic(t *testing.T) {
	dir := t.TempDir()
	a, b := filepath.Join(dir, "a.trc"), filepath.Join(dir, "b.trc")
	if _, err := generate("gcc", 300, 7, a); err != nil {
		t.Fatal(err)
	}
	if _, err := generate("gcc", 300, 7, b); err != nil {
		t.Fatal(err)
	}
	da, db := readFile(t, a), readFile(t, b)
	if da != db {
		t.Fatal("same bench/seed produced different trace bytes")
	}
	// A different seed must actually change the trace.
	c := filepath.Join(dir, "c.trc")
	if _, err := generate("gcc", 300, 8, c); err != nil {
		t.Fatal(err)
	}
	if readFile(t, c) == da {
		t.Fatal("different seed produced an identical trace")
	}
}

// TestGenerateUnknownBench pins the error path.
func TestGenerateUnknownBench(t *testing.T) {
	if _, err := generate("no-such-bench", 10, 1, filepath.Join(t.TempDir(), "x.trc")); err == nil {
		t.Fatal("unknown benchmark accepted")
	}
}

func readFile(t *testing.T, path string) string {
	t.Helper()
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}
