package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"

	"smtavf/internal/campaign"
	"smtavf/internal/experiments"
	"smtavf/internal/obs"
	"smtavf/internal/shard"
)

// TestMain re-execs the test binary as the avfd process itself when
// AVFD_CHILD is set, so the kill-and-resume e2e drives a real child
// process — real signals, real exit codes, real restart — without
// needing a prebuilt binary on the test machine.
func TestMain(m *testing.M) {
	if os.Getenv("AVFD_CHILD") == "1" {
		main()
		return
	}
	os.Exit(m.Run())
}

// startChild launches avfd against dir and returns the running command.
func startChild(t *testing.T, dir, ledger string) *exec.Cmd {
	t.Helper()
	cmd := exec.Command(os.Args[0],
		"-addr", "127.0.0.1:0",
		"-dir", dir,
		"-obs-ledger", ledger,
		"-log-level", "warn",
	)
	cmd.Env = append(os.Environ(), "AVFD_CHILD=1")
	cmd.Stdout = os.Stderr
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	return cmd
}

// waitAddr polls for the published listen address.
func waitAddr(t *testing.T, dir string) string {
	t.Helper()
	path := filepath.Join(dir, "avfd.addr")
	deadline := time.Now().Add(15 * time.Second)
	for time.Now().Before(deadline) {
		if data, err := os.ReadFile(path); err == nil && len(data) > 0 {
			return strings.TrimSpace(string(data))
		}
		time.Sleep(20 * time.Millisecond)
	}
	t.Fatalf("avfd did not publish %s", path)
	return ""
}

// readStream consumes the campaign's JSONL stream until the server ends
// it (terminal campaign) or limit results arrived.
func readStream(t *testing.T, addr, id string, limit int) []*campaign.Result {
	t.Helper()
	resp, err := http.Get(fmt.Sprintf("http://%s/v1/campaigns/%s/stream", addr, id))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("stream status %d", resp.StatusCode)
	}
	var out []*campaign.Result
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 1<<20), 64<<20)
	for sc.Scan() {
		var res campaign.Result
		if err := json.Unmarshal(sc.Bytes(), &res); err != nil {
			t.Fatalf("stream line: %v", err)
		}
		out = append(out, &res)
		if limit > 0 && len(out) >= limit {
			return out
		}
	}
	return out
}

// TestKillAndResume is the service's end-to-end contract: a campaign
// interrupted by SIGTERM mid-point resumes on restart, every point lands
// exactly once in the stream and the run ledger, the campaign's ledger
// trail reads interrupted -> ok, and the resumed results match an
// uninterrupted in-process run of the same specs within the documented
// shard tolerance.
func TestKillAndResume(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-second process-level e2e")
	}
	dir := t.TempDir()
	ledger := filepath.Join(dir, "runs.jsonl")

	// Two points of ~1-2s each: long enough that SIGTERM, sent after the
	// first result streams, reliably lands while the second point runs.
	matrix := campaign.Matrix{
		Name: "e2e",
		Base: campaign.Spec{
			V:            campaign.SpecVersion,
			Benchmarks:   []string{"gcc", "mcf"},
			Instructions: 1_200_000,
			NoWarmup:     true,
		},
		Seeds: []uint64{1, 2},
	}
	body, err := json.Marshal(matrix)
	if err != nil {
		t.Fatal(err)
	}

	child := startChild(t, dir, ledger)
	addr := waitAddr(t, dir)

	resp, err := http.Post("http://"+addr+"/v1/campaigns", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	var submitted struct {
		ID     string `json:"id"`
		Points int    `json:"points"`
	}
	err = json.NewDecoder(resp.Body).Decode(&submitted)
	resp.Body.Close()
	if err != nil || resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: status %d, err %v", resp.StatusCode, err)
	}
	if submitted.Points != 2 {
		t.Fatalf("submitted %d points, want 2", submitted.Points)
	}

	// Interrupt mid-campaign: after the first result lands, the single
	// worker is inside point two.
	first := readStream(t, addr, submitted.ID, 1)
	if len(first) != 1 || first[0].Status != obs.StatusOK {
		t.Fatalf("first streamed result = %+v", first)
	}
	if err := child.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	err = child.Wait()
	var exit *exec.ExitError
	if !errors.As(err, &exit) || exit.ExitCode() != 130 {
		t.Fatalf("child exit after SIGTERM = %v, want code 130", err)
	}

	// Restart against the same directory: the campaign resumes and only
	// the missing point re-runs.
	if err := os.Remove(filepath.Join(dir, "avfd.addr")); err != nil {
		t.Fatal(err)
	}
	child2 := startChild(t, dir, ledger)
	defer func() {
		child2.Process.Signal(syscall.SIGTERM)
		child2.Wait()
	}()
	addr2 := waitAddr(t, dir)

	results := readStream(t, addr2, submitted.ID, 0)
	if len(results) != 2 {
		t.Fatalf("resumed stream returned %d results, want 2", len(results))
	}
	seen := map[int]*campaign.Result{}
	for _, res := range results {
		if seen[res.Point] != nil {
			t.Fatalf("point %d streamed twice", res.Point)
		}
		if res.Status != obs.StatusOK {
			t.Fatalf("point %d status %q: %s", res.Point, res.Status, res.Error)
		}
		seen[res.Point] = res
	}

	// The uninterrupted control: the same specs through the same executor,
	// in-process. The deterministic engine should agree far inside the
	// documented tolerance.
	points, err := matrix.Points()
	if err != nil {
		t.Fatal(err)
	}
	runner := experiments.NewRunner(experiments.Options{})
	for i, spec := range points {
		want, err := runner.Campaign(spec)
		if err != nil {
			t.Fatal(err)
		}
		got := seen[i]
		if got == nil {
			t.Fatalf("point %d missing from stream", i)
		}
		if name, delta := campaign.MaxAVFDelta(want, got); delta > shard.DefaultTolerance {
			t.Errorf("point %d: %s AVF off by %.4f after resume (tolerance %.2f)",
				i, name, delta, shard.DefaultTolerance)
		}
		if got.Instructions != want.Instructions {
			t.Errorf("point %d committed %d instructions, control %d", i, got.Instructions, want.Instructions)
		}
	}

	// Ledger trail: each point exactly once, and the campaign transitions
	// interrupted (first process) -> ok (resume). The completion manifest
	// is appended just after the stream's terminal close, so poll briefly.
	var (
		pointRuns        map[string]int
		campaignStatuses []string
	)
	deadline := time.Now().Add(10 * time.Second)
	for {
		manifests, err := obs.ReadLedger(ledger)
		if err != nil {
			t.Fatal(err)
		}
		pointRuns = map[string]int{}
		campaignStatuses = nil
		for _, m := range manifests {
			if m.Extra["campaign"] != submitted.ID {
				continue
			}
			switch m.Kind {
			case "campaign-point":
				pointRuns[m.Extra["point"]]++
			case "campaign":
				campaignStatuses = append(campaignStatuses, m.Status)
			}
		}
		if len(campaignStatuses) >= 2 || time.Now().After(deadline) {
			break
		}
		time.Sleep(50 * time.Millisecond)
	}
	for i := range points {
		if n := pointRuns[fmt.Sprint(i)]; n != 1 {
			t.Errorf("point %d has %d ledger manifests, want exactly 1", i, n)
		}
	}
	want := []string{obs.StatusInterrupted, obs.StatusOK}
	if strings.Join(campaignStatuses, ",") != strings.Join(want, ",") {
		t.Errorf("campaign ledger statuses = %v, want %v", campaignStatuses, want)
	}
}

// TestHealthEndpoints smoke-tests liveness/readiness on a fresh child.
func TestHealthEndpoints(t *testing.T) {
	if testing.Short() {
		t.Skip("process-level e2e")
	}
	dir := t.TempDir()
	child := startChild(t, dir, filepath.Join(dir, "runs.jsonl"))
	defer func() {
		child.Process.Signal(syscall.SIGTERM)
		child.Wait()
	}()
	addr := waitAddr(t, dir)
	for _, path := range []string{"/healthz", "/readyz"} {
		resp, err := http.Get("http://" + addr + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Errorf("%s = %d", path, resp.StatusCode)
		}
	}
}
