// Command avfd is the long-running AVF campaign service: an HTTP/JSON
// job API over the same versioned campaign spec the CLIs run, backed by
// a bounded in-process worker pool and a durable per-point result store.
//
// Usage:
//
//	avfd -addr :8080 -dir campaigns/ -workers 2 -obs-ledger campaigns/runs.jsonl
//
//	curl -s localhost:8080/v1/campaigns -d '{"name":"demo","base":{"v":1,"mix":"2ctx-CPU-A","instructions":200000},"policies":["ICOUNT","FLUSH"]}'
//	curl -s localhost:8080/v1/campaigns/<id>
//	curl -N localhost:8080/v1/campaigns/<id>/stream
//	curl -s -X POST localhost:8080/v1/campaigns/<id>/cancel
//
// Endpoints (docs/campaign-service.md):
//
//	POST /v1/campaigns          submit a campaign matrix; 202 {"id","points"}
//	GET  /v1/campaigns          list campaigns
//	GET  /v1/campaigns/{id}     status + per-point results
//	GET  /v1/campaigns/{id}/stream  chunked JSONL: every result exactly once
//	POST /v1/campaigns/{id}/cancel  skip this campaign's queued points
//	GET  /healthz               liveness
//	GET  /readyz                readiness (503 while draining)
//
// Every accepted point is persisted to -dir before it is enqueued and
// its result is persisted before it is streamed, so a killed avfd loses
// at most the points that were mid-execution. On SIGTERM/SIGINT the
// service drains: it stops claiming queued points, appends an
// "interrupted" manifest per unfinished campaign to the -obs-ledger,
// closes the listener, and exits 130. On restart with the same -dir,
// unfinished campaigns resume — only the missing points re-run, and a
// re-attached stream replays the completed results first.
//
// The actual listen address (useful with -addr 127.0.0.1:0) is written
// to <dir>/avfd.addr once the listener is up.
package main

import (
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"path/filepath"

	"smtavf/internal/campaign"
	"smtavf/internal/cliopts"
	"smtavf/internal/experiments"
	"smtavf/internal/obs"
)

// shut coordinates graceful exit: drain, listener close, and the final
// log line run exactly once whether avfd exits or catches a signal.
var shut cliopts.Shutdown

func main() {
	var (
		base = flag.Uint64("base", 50_000, "default instruction budget of a 2-context point (4/8 contexts use 2x/4x); a spec's own instructions override it")
		seed = flag.Uint64("seed", 1, "default simulation seed for specs that leave theirs unset")

		svcFlags cliopts.Service
		logFlags cliopts.Log
		shards   cliopts.Shards
		prof     cliopts.Profile
		obsFlags cliopts.Obs
	)
	svcFlags.Register(flag.CommandLine)
	logFlags.Register(flag.CommandLine)
	shards.Register(flag.CommandLine)
	prof.Register(flag.CommandLine)
	obsFlags.Register(flag.CommandLine)
	flag.Parse()

	logger, err := logFlags.Logger(os.Stderr)
	if err != nil {
		fatal(err)
	}
	if err := svcFlags.Validate(); err != nil {
		fatal(err)
	}
	if err := shards.Validate(); err != nil {
		fatal(err)
	}
	if err := obsFlags.Validate(shards.Sharded()); err != nil {
		fatal(err)
	}
	if obsFlags.Timeline != "" {
		fatal(fmt.Errorf("-obs-timeline records a single run's worker timeline; use smtsim -shards"))
	}
	if err := prof.Start(); err != nil {
		fatal(err)
	}
	defer func() {
		if err := prof.Stop(); err != nil {
			fmt.Fprintln(os.Stderr, "avfd:", err)
		}
	}()

	ledger, err := obsFlags.OpenLedger()
	if err != nil {
		fatal(err)
	}

	// One experiments runner backs every point: its Campaign executor
	// resolves specs exactly as avfreport does, and the -shards flags act
	// as defaults for specs that leave their shard shape unset.
	runner := experiments.NewRunner(experiments.Options{
		Base:         *base,
		Seed:         *seed,
		Shards:       shards.N,
		ShardWorkers: shards.Workers,
	})
	svc, err := campaign.NewService(campaign.ServiceOptions{
		Dir:      svcFlags.Dir,
		Workers:  svcFlags.Workers,
		Executor: runner.Campaign,
		Ledger:   ledger,
		Logger:   logger,
		Program:  "avfd",
	})
	if err != nil {
		fatal(err)
	}

	ln, err := net.Listen("tcp", svcFlags.Addr)
	if err != nil {
		fatal(err)
	}
	srv := &http.Server{Handler: campaign.NewMux(svc)}

	// LIFO drain on exit or signal: mark the service draining and record
	// "interrupted" manifests first, then close the listener (Close, not
	// Shutdown — stream handlers hold connections open for the campaign's
	// lifetime, so a graceful Shutdown would never return).
	shut.Defer("listener", srv.Close)
	shut.Defer("drain", func() error { svc.Interrupt(); return nil })
	shut.Final(func(status string) {
		logger.Info("avfd exiting", "status", status)
	})
	shut.Install(logger)

	// Publish the bound address for clients started against -addr :0.
	addrPath := filepath.Join(svcFlags.Dir, "avfd.addr")
	if err := os.WriteFile(addrPath, []byte(ln.Addr().String()+"\n"), 0o644); err != nil {
		fatal(err)
	}
	logger.Info("avfd listening",
		"addr", ln.Addr().String(),
		"dir", svcFlags.Dir,
		"workers", svcFlags.Workers,
		"campaigns", len(svc.List()),
	)

	err = srv.Serve(ln)
	if shut.Done() {
		// The signal handler closed the listener and owns the exit code
		// (130); returning from main here would race it to exit 0.
		select {}
	}
	if err != nil && err != http.ErrServerClosed {
		fatal(err)
	}
	shut.Finish(obs.StatusOK, logger)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "avfd:", err)
	shut.Finish(obs.StatusError, nil)
	os.Exit(1)
}
