// Command avfreport regenerates every table and figure of the paper's
// evaluation section and prints them as aligned text tables (or CSV).
//
// Usage:
//
//	avfreport                      # everything, default budgets
//	avfreport -figure 6 -base 20000
//	avfreport -figure all -shards 4 -shard-workers 4
//	avfreport -csv > report.csv
//	avfreport -provenance 4ctx-MEM-A -provenance-top 10
//	avfreport -propagation 2ctx-MEM-A -propagation-out atlas.jsonl.gz
//	avfreport -explain 2ctx-MEM-A -explain-policies ICOUNT,FLUSH
//
// The -crossval stopping rule shares the -inject-ci / -inject-strikes /
// -inject-report flags with smtsim and avfsweep (they were previously
// spelled -crossval-ci and -crossval-out here).
//
// avfreport is also the run ledger's browser: -runs lists the manifests
// a runs.jsonl accumulated (filter with -runs-kind, -runs-program,
// -runs-status), and -runs-id prints one manifest in full, so any figure
// traces back to the exact run that produced it:
//
//	avfreport -runs runs.jsonl
//	avfreport -runs runs.jsonl -runs-status interrupted
//	avfreport -runs runs.jsonl -runs-id smtsim-20260808T005332
//
// With -obs-ledger the -crossval fanout appends one "crossval-seed"
// manifest per seed plus the pooled summary, and every report run
// appends a "report" record at exit (docs/campaigns.md).
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"smtavf/internal/campaign"
	"smtavf/internal/cliopts"
	"smtavf/internal/experiments"
	"smtavf/internal/inject"
	"smtavf/internal/obs"
	"smtavf/internal/propagation"
)

// shut coordinates graceful exit: the report manifest append runs exactly
// once whether the run finishes, fails, or catches ^C.
var shut cliopts.Shutdown

func main() {
	var (
		base    = flag.Uint64("base", 50_000, "instruction budget of a 2-context run (4/8 contexts use 2x/4x)")
		seed    = flag.Uint64("seed", 1, "simulation seed")
		figure  = flag.String("figure", "all", "which figure to produce: all, table1, table2, 1..8, ext, or sens (comma-separated)")
		provMix = flag.String("provenance", "", "run this Table 2 mix with the pipeline flight recorder and print its AVF provenance tables (skips the figures)")
		provPol = flag.String("provenance-policy", "ICOUNT", "fetch policy of the -provenance run")
		provTop = flag.Int("provenance-top", 10, "PC rows in the -provenance hotspot table")
		propMix = flag.String("propagation", "", "run this Table 2 mix (or comma-separated benchmarks) with the fault-propagation tracer and print the strike atlas (skips the figures)")
		propPol = flag.String("propagation-policy", "ICOUNT", "fetch policy of the -propagation run")
		propN   = flag.Int("propagation-strikes", 256, "strikes sampled into each structure for the -propagation atlas")
		propTop = flag.Int("propagation-top", 10, "root-cause instructions shown in the -propagation tables")
		propOut = flag.String("propagation-out", "", "write the -propagation per-strike traces as JSONL to this file (.gz compresses)")
		explMix = flag.String("explain", "", "run this Table 2 mix (or comma-separated benchmarks) under each -explain-policies policy with the CPI-stack observer and print the explainability tables (skips the figures)")
		explPol = flag.String("explain-policies", "ICOUNT,STALL,FLUSH", "comma-separated fetch policies compared by -explain")
		xvalMix = flag.String("crossval", "", "cross-validate this Table 2 mix (or comma-separated benchmarks) against a fault-injection seed fanout and print the pooled agreement report (skips the figures)")
		xvalPol = flag.String("crossval-policy", "ICOUNT", "fetch policy of the -crossval runs")
		xvalN   = flag.Int("crossval-seeds", 3, "seed fanout of the -crossval campaign (seeds seed..seed+N-1, run concurrently and pooled)")
		csv     = flag.Bool("csv", false, "emit CSV instead of aligned text")
		chart   = flag.Bool("chart", false, "render tables as horizontal bar charts")

		runsPath   = flag.String("runs", "", "list the run-manifest ledger at this path and exit (see -obs-ledger)")
		runsID     = flag.String("runs-id", "", "print the full manifest with this ID (or unique ID prefix) from -runs")
		runsKind   = flag.String("runs-kind", "", "filter the -runs listing by kind (run, sweep-point, crossval-seed, ...)")
		runsProg   = flag.String("runs-program", "", "filter the -runs listing by program (smtsim, avfsweep, avfreport)")
		runsStatus = flag.String("runs-status", "", "filter the -runs listing by exit status (ok, error, interrupted)")

		logFlags cliopts.Log
		inj      cliopts.Inject
		shards   cliopts.Shards
		prof     cliopts.Profile
		obsFlags cliopts.Obs
	)
	logFlags.Register(flag.CommandLine)
	inj.RegisterStop(flag.CommandLine)
	shards.Register(flag.CommandLine)
	prof.Register(flag.CommandLine)
	obsFlags.Register(flag.CommandLine)
	flag.Parse()

	logger, err := logFlags.Logger(os.Stderr)
	if err != nil {
		fatal(err)
	}
	if err := inj.Validate(); err == nil {
		err = shards.Validate()
	}
	if err != nil {
		fatal(err)
	}
	if err := obsFlags.Validate(shards.Sharded()); err != nil {
		fatal(err)
	}
	if obsFlags.Timeline != "" {
		fatal(fmt.Errorf("-obs-timeline records a single run's worker timeline; use smtsim -shards"))
	}

	// Ledger browsing: list or show manifests, no simulation.
	if *runsPath != "" {
		ms, err := obs.ReadLedger(*runsPath)
		if err != nil {
			fatal(err)
		}
		if *runsID != "" {
			m, err := obs.FindRun(ms, *runsID)
			if err != nil {
				fatal(err)
			}
			fmt.Print(obs.FormatRun(m))
			return
		}
		fmt.Print(obs.FormatRuns(ms, obs.RunFilter{
			Kind:    *runsKind,
			Program: *runsProg,
			Status:  *runsStatus,
		}))
		return
	}
	if *runsID != "" || *runsKind != "" || *runsProg != "" || *runsStatus != "" {
		fatal(fmt.Errorf("-runs-id/-runs-kind/-runs-program/-runs-status need -runs <ledger.jsonl>"))
	}

	if err := prof.Start(); err != nil {
		fatal(err)
	}
	defer func() {
		if err := prof.Stop(); err != nil {
			fmt.Fprintln(os.Stderr, "avfreport:", err)
		}
	}()

	// Campaign observability: the ledger gets one "report" record per
	// invocation (plus per-seed records from the -crossval fanout), and
	// the Final hook appends it however the process exits.
	ledger, err := obsFlags.OpenLedger()
	if err != nil {
		fatal(err)
	}
	man := obs.NewManifest("report", "avfreport")
	man.Seed = *seed
	man.Extra = map[string]string{"figures": *figure, "base": strconv.FormatUint(*base, 10)}
	shut.Final(func(status string) {
		man.Finish(status, nil)
		if err := ledger.Append(man); err != nil {
			logger.Error("run ledger append", "path", ledger.Path(), "err", err)
		}
	})
	shut.Install(logger)

	logger.Info("run manifest",
		"program", "avfreport",
		"base", *base,
		"seed", *seed,
		"figures", *figure,
		"shards", shards.N,
	)

	r := experiments.NewRunner(experiments.Options{
		Base:         *base,
		Seed:         *seed,
		Shards:       shards.N,
		ShardWorkers: shards.Workers,
	})
	want := map[string]bool{}
	for _, f := range strings.Split(*figure, ",") {
		want[strings.TrimSpace(f)] = true
	}
	all := want["all"]

	emit := func(tables ...*experiments.Table) {
		for _, t := range tables {
			switch {
			case *csv:
				fmt.Printf("# %s\n%s\n", t.Title, t.CSV())
			case *chart:
				fmt.Println(t.Chart())
			default:
				fmt.Println(t)
			}
		}
	}

	start := time.Now()
	if *xvalMix != "" {
		var seeds []uint64
		for i := 0; i < *xvalN; i++ {
			seeds = append(seeds, *seed+uint64(i))
		}
		spec := campaign.Spec{
			Policy:   *xvalPol,
			Inject:   &campaign.InjectSpec{Stop: inject.StopWhen(inj.CI, inj.Strikes)},
			CrossVal: &campaign.CrossValSpec{Seeds: seeds},
		}
		if strings.Contains(*xvalMix, ",") {
			spec.Benchmarks = strings.Split(*xvalMix, ",")
		} else {
			spec.Mix = *xvalMix
		}
		res, err := r.Campaign(spec)
		if err != nil {
			fatal(fmt.Errorf("crossval: %w", err))
		}
		pooled, perSeed := res.CrossVal, res.CrossValSeeds
		man.Kind = "crossval"
		man.Policy = *xvalPol
		if spec.Mix != "" {
			man.Workloads = []string{spec.Mix}
		} else {
			man.Workloads = spec.Benchmarks
		}
		for _, rep := range perSeed {
			logger.Info("crossval seed",
				"seed", rep.Meta.Seed,
				"cycles", rep.Meta.Cycles,
				"stopped_early", rep.StoppedEarly,
				"pass", rep.Pass(),
			)
			// One provenance record per fanout seed, so a disagreeing
			// seed is traceable on its own.
			sm := obs.NewManifest("crossval-seed", "avfreport")
			sm.CampaignSeed = rep.Meta.Seed
			sm.Policy = rep.Meta.Policy
			sm.Workloads = []string{rep.Meta.Workload}
			sm.Cycles = rep.Meta.Cycles
			for _, e := range rep.Entries {
				sm.Strikes += e.Strikes
			}
			man.Cycles += sm.Cycles
			man.Strikes += sm.Strikes
			sm.Extra = map[string]string{"pass": strconv.FormatBool(rep.Pass())}
			sm.Finish(obs.StatusOK, nil)
			if err := ledger.Append(sm); err != nil {
				fatal(fmt.Errorf("obs-ledger: %w", err))
			}
		}
		fmt.Print(pooled.Table())
		if inj.Report != "" {
			if err := pooled.WriteFile(inj.Report); err != nil {
				fatal(fmt.Errorf("inject-report: %w", err))
			}
			man.AddArtifact("crossval", inj.Report)
			logger.Info("crossval report written", "path", inj.Report, "entries", len(pooled.Entries))
		}
		logger.Info("done", "elapsed", time.Since(start).Round(time.Millisecond).String())
		shut.Finish(obs.StatusOK, logger)
		return
	}
	if *propMix != "" {
		spec := campaign.Spec{
			Policy:      *propPol,
			Propagation: &campaign.PropagationSpec{Strikes: *propN},
		}
		if strings.Contains(*propMix, ",") {
			spec.Benchmarks = strings.Split(*propMix, ",")
		} else {
			spec.Mix = *propMix
		}
		res, err := r.Campaign(spec)
		if err != nil {
			fatal(fmt.Errorf("propagation: %w", err))
		}
		atlas := res.Atlas
		fmt.Printf("fault-propagation atlas: %s\n\n", res.Title)
		fmt.Print(atlas.Tables(*propTop))
		if *propOut != "" {
			if err := propagation.WriteFile(*propOut, atlas.Traces); err != nil {
				fatal(fmt.Errorf("propagation-out: %w", err))
			}
			man.AddArtifact("propagation", *propOut)
			logger.Info("propagation traces written", "path", *propOut, "traces", len(atlas.Traces))
		}
		logger.Info("done", "elapsed", time.Since(start).Round(time.Millisecond).String())
		shut.Finish(obs.StatusOK, logger)
		return
	}
	if *explMix != "" {
		spec := campaign.Spec{Explain: &campaign.ExplainSpec{}}
		if strings.Contains(*explMix, ",") {
			spec.Benchmarks = strings.Split(*explMix, ",")
		} else {
			spec.Mix = *explMix
		}
		for _, p := range strings.Split(*explPol, ",") {
			if p = strings.TrimSpace(p); p != "" {
				spec.Explain.Policies = append(spec.Explain.Policies, p)
			}
		}
		res, err := r.Campaign(spec)
		if err != nil {
			fatal(fmt.Errorf("explain: %w", err))
		}
		man.Kind = "explain"
		if spec.Mix != "" {
			man.Workloads = []string{spec.Mix}
		} else {
			man.Workloads = spec.Benchmarks
		}
		fmt.Printf("explainability: %s\n\n", res.Title)
		emit(experiments.TablesFromCampaign(res.Tables)...)
		logger.Info("done", "elapsed", time.Since(start).Round(time.Millisecond).String())
		shut.Finish(obs.StatusOK, logger)
		return
	}
	if *provMix != "" {
		ts, err := r.Provenance(*provMix, *provPol, *provTop)
		if err != nil {
			fatal(fmt.Errorf("provenance: %w", err))
		}
		emit(ts...)
		logger.Info("done", "elapsed", time.Since(start).Round(time.Millisecond).String())
		shut.Finish(obs.StatusOK, logger)
		return
	}
	if all {
		// Fill the run cache with all cores before assembling figures.
		preStart := time.Now()
		if err := r.Preload(experiments.AllSpecs()); err != nil {
			fatal(fmt.Errorf("preload: %w", err))
		}
		if err := r.PreloadSingles(); err != nil {
			fatal(fmt.Errorf("preload singles: %w", err))
		}
		logger.Info("preload complete", "elapsed", time.Since(preStart).Round(time.Millisecond).String())
	}
	if all || want["table1"] {
		fmt.Println(experiments.Table1())
	}
	if all || want["table2"] {
		fmt.Println(experiments.Table2())
	}
	type one struct {
		name  string
		run   func() ([]*experiments.Table, error)
		extra bool // not part of the paper: only on explicit request
	}
	single := func(f func() (*experiments.Table, error)) func() ([]*experiments.Table, error) {
		return func() ([]*experiments.Table, error) {
			t, err := f()
			if err != nil {
				return nil, err
			}
			return []*experiments.Table{t}, nil
		}
	}
	figures := []one{
		{"1", single(r.Figure1), false},
		{"2", single(r.Figure2), false},
		{"3", single(r.Figure3), false},
		{"4", single(r.Figure4), false},
		{"5", r.Figure5, false},
		{"6", r.Figure6, false},
		{"7", single(r.Figure7), false},
		{"8", r.Figure8, false},
		{"ext", single(r.Extensions), true},
		{"sens", r.Sensitivity, true},
		{"stab", func() ([]*experiments.Table, error) { return r.Stability(5) }, true},
	}
	for _, f := range figures {
		if !want[f.name] && !(all && !f.extra) {
			continue
		}
		figStart := time.Now()
		ts, err := f.run()
		if err != nil {
			fatal(fmt.Errorf("figure %s: %w", f.name, err))
		}
		logger.Info("figure complete",
			"figure", f.name,
			"tables", len(ts),
			"elapsed", time.Since(figStart).Round(time.Millisecond).String(),
		)
		emit(ts...)
	}
	logger.Info("done",
		"elapsed", time.Since(start).Round(time.Millisecond).String(),
		"base", strconv.FormatUint(*base, 10),
	)
	shut.Finish(obs.StatusOK, logger)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "avfreport:", err)
	shut.Finish(obs.StatusError, nil)
	os.Exit(1)
}
