// Command avfreport regenerates every table and figure of the paper's
// evaluation section and prints them as aligned text tables (or CSV).
//
// Usage:
//
//	avfreport                      # everything, default budgets
//	avfreport -figure 6 -base 20000
//	avfreport -figure all -shards 4 -shard-workers 4
//	avfreport -csv > report.csv
//	avfreport -provenance 4ctx-MEM-A -provenance-top 10
//	avfreport -propagation 2ctx-MEM-A -propagation-out atlas.jsonl.gz
//
// The -crossval stopping rule shares the -inject-ci / -inject-strikes /
// -inject-report flags with smtsim and avfsweep (they were previously
// spelled -crossval-ci and -crossval-out here).
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"smtavf/internal/cliopts"
	"smtavf/internal/experiments"
	"smtavf/internal/inject"
	"smtavf/internal/propagation"
)

func main() {
	var (
		base    = flag.Uint64("base", 50_000, "instruction budget of a 2-context run (4/8 contexts use 2x/4x)")
		seed    = flag.Uint64("seed", 1, "simulation seed")
		figure  = flag.String("figure", "all", "which figure to produce: all, table1, table2, 1..8, ext, or sens (comma-separated)")
		provMix = flag.String("provenance", "", "run this Table 2 mix with the pipeline flight recorder and print its AVF provenance tables (skips the figures)")
		provPol = flag.String("provenance-policy", "ICOUNT", "fetch policy of the -provenance run")
		provTop = flag.Int("provenance-top", 10, "PC rows in the -provenance hotspot table")
		propMix = flag.String("propagation", "", "run this Table 2 mix (or comma-separated benchmarks) with the fault-propagation tracer and print the strike atlas (skips the figures)")
		propPol = flag.String("propagation-policy", "ICOUNT", "fetch policy of the -propagation run")
		propN   = flag.Int("propagation-strikes", 256, "strikes sampled into each structure for the -propagation atlas")
		propTop = flag.Int("propagation-top", 10, "root-cause instructions shown in the -propagation tables")
		propOut = flag.String("propagation-out", "", "write the -propagation per-strike traces as JSONL to this file (.gz compresses)")
		xvalMix = flag.String("crossval", "", "cross-validate this Table 2 mix (or comma-separated benchmarks) against a fault-injection seed fanout and print the pooled agreement report (skips the figures)")
		xvalPol = flag.String("crossval-policy", "ICOUNT", "fetch policy of the -crossval runs")
		xvalN   = flag.Int("crossval-seeds", 3, "seed fanout of the -crossval campaign (seeds seed..seed+N-1, run concurrently and pooled)")
		csv     = flag.Bool("csv", false, "emit CSV instead of aligned text")
		chart   = flag.Bool("chart", false, "render tables as horizontal bar charts")

		logFlags cliopts.Log
		inj      cliopts.Inject
		shards   cliopts.Shards
		prof     cliopts.Profile
	)
	logFlags.Register(flag.CommandLine)
	inj.RegisterStop(flag.CommandLine)
	shards.Register(flag.CommandLine)
	prof.Register(flag.CommandLine)
	flag.Parse()

	logger, err := logFlags.Logger(os.Stderr)
	if err != nil {
		fmt.Fprintln(os.Stderr, "avfreport:", err)
		os.Exit(1)
	}
	if err := inj.Validate(); err == nil {
		err = shards.Validate()
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "avfreport:", err)
		os.Exit(1)
	}
	if err := prof.Start(); err != nil {
		fmt.Fprintln(os.Stderr, "avfreport:", err)
		os.Exit(1)
	}
	defer func() {
		if err := prof.Stop(); err != nil {
			fmt.Fprintln(os.Stderr, "avfreport:", err)
		}
	}()
	logger.Info("run manifest",
		"program", "avfreport",
		"base", *base,
		"seed", *seed,
		"figures", *figure,
		"shards", shards.N,
	)

	r := experiments.NewRunner(experiments.Options{
		Base:         *base,
		Seed:         *seed,
		Shards:       shards.N,
		ShardWorkers: shards.Workers,
	})
	want := map[string]bool{}
	for _, f := range strings.Split(*figure, ",") {
		want[strings.TrimSpace(f)] = true
	}
	all := want["all"]

	emit := func(tables ...*experiments.Table) {
		for _, t := range tables {
			switch {
			case *csv:
				fmt.Printf("# %s\n%s\n", t.Title, t.CSV())
			case *chart:
				fmt.Println(t.Chart())
			default:
				fmt.Println(t)
			}
		}
	}

	start := time.Now()
	if *xvalMix != "" {
		spec := experiments.CrossValSpec{
			Policy: *xvalPol,
			Stop:   inject.StopWhen(inj.CI, inj.Strikes),
		}
		if strings.Contains(*xvalMix, ",") {
			spec.Benchmarks = strings.Split(*xvalMix, ",")
		} else {
			spec.Mix = *xvalMix
		}
		for i := 0; i < *xvalN; i++ {
			spec.Seeds = append(spec.Seeds, *seed+uint64(i))
		}
		pooled, perSeed, err := r.CrossVal(spec)
		if err != nil {
			fmt.Fprintf(os.Stderr, "avfreport: crossval: %v\n", err)
			os.Exit(1)
		}
		for _, rep := range perSeed {
			logger.Info("crossval seed",
				"seed", rep.Meta.Seed,
				"cycles", rep.Meta.Cycles,
				"stopped_early", rep.StoppedEarly,
				"pass", rep.Pass(),
			)
		}
		fmt.Print(pooled.Table())
		if inj.Report != "" {
			if err := pooled.WriteFile(inj.Report); err != nil {
				fmt.Fprintf(os.Stderr, "avfreport: inject-report: %v\n", err)
				os.Exit(1)
			}
			logger.Info("crossval report written", "path", inj.Report, "entries", len(pooled.Entries))
		}
		logger.Info("done", "elapsed", time.Since(start).Round(time.Millisecond).String())
		return
	}
	if *propMix != "" {
		spec := experiments.PropagationSpec{Policy: *propPol, Strikes: *propN}
		if strings.Contains(*propMix, ",") {
			spec.Benchmarks = strings.Split(*propMix, ",")
		} else {
			spec.Mix = *propMix
		}
		atlas, title, err := r.Propagation(spec)
		if err != nil {
			fmt.Fprintf(os.Stderr, "avfreport: propagation: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("fault-propagation atlas: %s\n\n", title)
		fmt.Print(atlas.Tables(*propTop))
		if *propOut != "" {
			if err := propagation.WriteFile(*propOut, atlas.Traces); err != nil {
				fmt.Fprintf(os.Stderr, "avfreport: propagation-out: %v\n", err)
				os.Exit(1)
			}
			logger.Info("propagation traces written", "path", *propOut, "traces", len(atlas.Traces))
		}
		logger.Info("done", "elapsed", time.Since(start).Round(time.Millisecond).String())
		return
	}
	if *provMix != "" {
		ts, err := r.Provenance(*provMix, *provPol, *provTop)
		if err != nil {
			fmt.Fprintf(os.Stderr, "avfreport: provenance: %v\n", err)
			os.Exit(1)
		}
		emit(ts...)
		logger.Info("done", "elapsed", time.Since(start).Round(time.Millisecond).String())
		return
	}
	if all {
		// Fill the run cache with all cores before assembling figures.
		preStart := time.Now()
		if err := r.Preload(experiments.AllSpecs()); err != nil {
			fmt.Fprintf(os.Stderr, "avfreport: preload: %v\n", err)
			os.Exit(1)
		}
		if err := r.PreloadSingles(); err != nil {
			fmt.Fprintf(os.Stderr, "avfreport: preload singles: %v\n", err)
			os.Exit(1)
		}
		logger.Info("preload complete", "elapsed", time.Since(preStart).Round(time.Millisecond).String())
	}
	if all || want["table1"] {
		fmt.Println(experiments.Table1())
	}
	if all || want["table2"] {
		fmt.Println(experiments.Table2())
	}
	type one struct {
		name  string
		run   func() ([]*experiments.Table, error)
		extra bool // not part of the paper: only on explicit request
	}
	single := func(f func() (*experiments.Table, error)) func() ([]*experiments.Table, error) {
		return func() ([]*experiments.Table, error) {
			t, err := f()
			if err != nil {
				return nil, err
			}
			return []*experiments.Table{t}, nil
		}
	}
	figures := []one{
		{"1", single(r.Figure1), false},
		{"2", single(r.Figure2), false},
		{"3", single(r.Figure3), false},
		{"4", single(r.Figure4), false},
		{"5", r.Figure5, false},
		{"6", r.Figure6, false},
		{"7", single(r.Figure7), false},
		{"8", r.Figure8, false},
		{"ext", single(r.Extensions), true},
		{"sens", r.Sensitivity, true},
		{"stab", func() ([]*experiments.Table, error) { return r.Stability(5) }, true},
	}
	for _, f := range figures {
		if !want[f.name] && !(all && !f.extra) {
			continue
		}
		figStart := time.Now()
		ts, err := f.run()
		if err != nil {
			fmt.Fprintf(os.Stderr, "avfreport: figure %s: %v\n", f.name, err)
			os.Exit(1)
		}
		logger.Info("figure complete",
			"figure", f.name,
			"tables", len(ts),
			"elapsed", time.Since(figStart).Round(time.Millisecond).String(),
		)
		emit(ts...)
	}
	logger.Info("done",
		"elapsed", time.Since(start).Round(time.Millisecond).String(),
		"base", strconv.FormatUint(*base, 10),
	)
}
