package smtavf_test

import (
	"strings"
	"testing"

	"smtavf"
)

func TestQuickstart(t *testing.T) {
	cfg := smtavf.DefaultConfig(2)
	sim, err := smtavf.NewSimulator(cfg, []string{"bzip2", "mcf"})
	if err != nil {
		t.Fatal(err)
	}
	res, err := sim.Run(10_000)
	if err != nil {
		t.Fatal(err)
	}
	if res.Total < 10_000 {
		t.Fatalf("committed %d", res.Total)
	}
	if res.StructAVF(smtavf.IQ) <= 0 || res.StructAVF(smtavf.IQ) > 1 {
		t.Fatalf("IQ AVF %v", res.StructAVF(smtavf.IQ))
	}
}

func TestSimulatorSingleShot(t *testing.T) {
	sim, err := smtavf.NewSimulator(smtavf.DefaultConfig(1), []string{"eon"})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sim.Run(1_000); err != nil {
		t.Fatal(err)
	}
	if _, err := sim.Run(1_000); err == nil || !strings.Contains(err.Error(), "single-shot") {
		t.Fatalf("second Run: %v", err)
	}
}

func TestNewSimulatorErrors(t *testing.T) {
	if _, err := smtavf.NewSimulator(smtavf.DefaultConfig(1), []string{"bogus"}); err == nil {
		t.Error("unknown benchmark accepted")
	}
	if _, err := smtavf.NewSimulator(smtavf.DefaultConfig(2), []string{"eon"}); err == nil {
		t.Error("benchmark/thread mismatch accepted")
	}
}

func TestRunPerThread(t *testing.T) {
	sim, err := smtavf.NewSimulator(smtavf.DefaultConfig(2), []string{"bzip2", "eon"})
	if err != nil {
		t.Fatal(err)
	}
	res, err := sim.RunPerThread([]uint64{2_000, 3_000})
	if err != nil {
		t.Fatal(err)
	}
	if res.Committed[0] != 2_000 || res.Committed[1] != 3_000 {
		t.Fatalf("committed %v", res.Committed)
	}
}

func TestMixCatalog(t *testing.T) {
	mixes := smtavf.Mixes()
	if len(mixes) != 15 {
		t.Fatalf("%d mixes, want 15", len(mixes))
	}
	m, err := smtavf.MixByName("4ctx-MEM-A")
	if err != nil {
		t.Fatal(err)
	}
	if len(m.Benchmarks) != 4 {
		t.Fatalf("mix %v", m)
	}
	if _, err := smtavf.MixByName("bogus"); err == nil {
		t.Error("unknown mix accepted")
	}
}

func TestPolicyCatalog(t *testing.T) {
	if got := len(smtavf.Policies()); got != 6 {
		t.Fatalf("%d policies", got)
	}
	p, err := smtavf.PolicyByName("DWarn")
	if err != nil || p.Name() != "DWarn" {
		t.Fatalf("PolicyByName: %v %v", p, err)
	}
	if _, err := smtavf.PolicyByName("bogus"); err == nil {
		t.Error("unknown policy accepted")
	}
}

func TestBenchmarkCatalog(t *testing.T) {
	bs := smtavf.Benchmarks()
	if len(bs) < 15 {
		t.Fatalf("only %d benchmarks", len(bs))
	}
	found := false
	for _, b := range bs {
		if b == "mcf" {
			found = true
		}
	}
	if !found {
		t.Error("mcf missing from catalog")
	}
}

func TestStructsCatalog(t *testing.T) {
	ss := smtavf.Structs()
	if len(ss) != 10 {
		t.Fatalf("%d structures", len(ss))
	}
}

func TestSimulatorFromTraceFiles(t *testing.T) {
	paths := writeTestTraces(t, t.TempDir())
	cfg := smtavf.DefaultConfig(2)
	sim, err := smtavf.NewSimulatorFromTraceFiles(cfg, paths)
	if err != nil {
		t.Fatal(err)
	}
	res, err := sim.Run(5_000)
	if err != nil {
		t.Fatal(err)
	}
	if res.Total < 5_000 {
		t.Fatalf("trace replay committed %d", res.Total)
	}
	if res.Thread[0].Workload != "bzip2" {
		t.Fatalf("workload %q", res.Thread[0].Workload)
	}
	if _, err := smtavf.NewSimulatorFromTraceFiles(cfg, []string{"missing.trc", paths[1]}); err == nil {
		t.Fatal("missing trace file accepted")
	}
}

func TestSimulatorPhased(t *testing.T) {
	cfg := smtavf.DefaultConfig(1)
	cfg.PhaseInterval = 2_000
	sim, err := smtavf.NewSimulatorPhased(cfg, [][]string{{"eon", "twolf"}}, 3_000)
	if err != nil {
		t.Fatal(err)
	}
	res, err := sim.Run(12_000)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Phases) < 2 {
		t.Fatalf("only %d phase samples", len(res.Phases))
	}
	if !strings.Contains(res.Thread[0].Workload, "phased") {
		t.Fatalf("workload %q", res.Thread[0].Workload)
	}
	if _, err := smtavf.NewSimulatorPhased(cfg, [][]string{{"bogus"}}, 100); err == nil {
		t.Fatal("unknown benchmark accepted")
	}
	if _, err := smtavf.NewSimulatorPhased(cfg, [][]string{{"eon"}}, 0); err == nil {
		t.Fatal("zero period accepted")
	}
}

func TestRunMixFromTable2(t *testing.T) {
	m, err := smtavf.MixByName("2ctx-MIX-A")
	if err != nil {
		t.Fatal(err)
	}
	cfg := smtavf.DefaultConfig(m.Contexts)
	if err := cfg.SetPolicy("STALL"); err != nil {
		t.Fatal(err)
	}
	sim, err := smtavf.NewSimulator(cfg, m.Benchmarks)
	if err != nil {
		t.Fatal(err)
	}
	res, err := sim.Run(10_000)
	if err != nil {
		t.Fatal(err)
	}
	if res.Policy != "STALL" {
		t.Fatalf("policy %q", res.Policy)
	}
}
