// CI bench-regression gate: re-measures BenchmarkSimulatorCycles and fails
// when its cycles/s falls more than 10% below the figure recorded in
// BENCH_baseline.json. Opt-in via SMTAVF_ASSERT_BENCH=1 (like the shard
// SMTAVF_ASSERT_SPEEDUP gate) because absolute speed depends on the host.
package smtavf_test

import (
	"encoding/json"
	"os"
	"testing"
)

// benchBaseline mirrors the BENCH_baseline.json schema.
type benchBaseline struct {
	Benchmarks []struct {
		Name        string             `json:"name"`
		NsPerOp     float64            `json:"ns_per_op"`
		AllocsPerOp uint64             `json:"allocs_per_op,omitempty"`
		Metrics     map[string]float64 `json:"metrics,omitempty"`
	} `json:"benchmarks"`
}

// baselineEntry reads the named benchmark's record from BENCH_baseline.json.
func baselineEntry(t *testing.T, name string) (cyclesPerSec float64, allocsPerOp uint64) {
	t.Helper()
	data, err := os.ReadFile("BENCH_baseline.json")
	if err != nil {
		t.Fatal(err)
	}
	var base benchBaseline
	if err := json.Unmarshal(data, &base); err != nil {
		t.Fatalf("BENCH_baseline.json: %v", err)
	}
	for _, b := range base.Benchmarks {
		if b.Name == name {
			cps, ok := b.Metrics["cycles/s"]
			if !ok {
				t.Fatalf("BENCH_baseline.json: %s has no cycles/s metric", name)
			}
			return cps, b.AllocsPerOp
		}
	}
	t.Fatalf("BENCH_baseline.json: no entry for %s", name)
	return 0, 0
}

// TestBenchRegression guards the hot loop on two axes: the optimized
// simulator must stay within 10% of the baseline cycle rate, and its
// allocation count must not grow more than 25% over the recorded
// allocs_per_op — allocation creep is how a "zero-allocation" steady state
// quietly erodes, and ns/op alone hides it on fast hosts. The baseline was
// recorded on the CI runner class; regenerate BENCH_baseline.json when the
// machine class or the simulated microarchitecture intentionally changes.
func TestBenchRegression(t *testing.T) {
	if os.Getenv("SMTAVF_ASSERT_BENCH") == "" {
		t.Skip("set SMTAVF_ASSERT_BENCH=1 to gate on BENCH_baseline.json (absolute speed is host-dependent)")
	}
	wantCPS, wantAllocs := baselineEntry(t, "BenchmarkSimulatorCycles")
	res := testing.Benchmark(BenchmarkSimulatorCycles)
	got, ok := res.Extra["cycles/s"]
	if !ok {
		t.Fatal("BenchmarkSimulatorCycles reported no cycles/s metric")
	}
	t.Logf("cycles/s: measured %.0f, baseline %.0f (%.2fx)", got, wantCPS, got/wantCPS)
	if got < 0.9*wantCPS {
		t.Errorf("cycles/s regressed >10%%: measured %.0f vs baseline %.0f", got, wantCPS)
	}
	gotAllocs := uint64(res.AllocsPerOp())
	t.Logf("allocs/op: measured %d, baseline %d", gotAllocs, wantAllocs)
	if wantAllocs > 0 && gotAllocs*4 > wantAllocs*5 {
		t.Errorf("allocs/op grew >25%%: measured %d vs baseline %d", gotAllocs, wantAllocs)
	}
}
