package smtavf_test

import (
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"smtavf"
)

// The deprecated constructors must be indistinguishable from the Option
// path: same machine, same streams, bit-identical Results.
func TestNewMatchesDeprecatedConstructors(t *testing.T) {
	runBoth := func(t *testing.T, old, new *smtavf.Simulator, err1, err2 error) {
		t.Helper()
		if err1 != nil || err2 != nil {
			t.Fatal(err1, err2)
		}
		a, err := old.Run(8_000)
		if err != nil {
			t.Fatal(err)
		}
		b, err := new.Run(8_000)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(a, b) {
			t.Fatal("Option path diverges from deprecated constructor")
		}
	}

	t.Run("benchmarks", func(t *testing.T) {
		cfg := smtavf.DefaultConfig(2)
		old, err1 := smtavf.NewSimulator(cfg, []string{"gcc", "mcf"})
		new, err2 := smtavf.New(cfg, smtavf.WithBenchmarks("gcc", "mcf"))
		runBoth(t, old, new, err1, err2)
	})
	t.Run("phases", func(t *testing.T) {
		cfg := smtavf.DefaultConfig(1)
		old, err1 := smtavf.NewSimulatorPhased(cfg, [][]string{{"eon", "twolf"}}, 2_000)
		new, err2 := smtavf.New(cfg, smtavf.WithPhases([][]string{{"eon", "twolf"}}, 2_000))
		runBoth(t, old, new, err1, err2)
	})
	t.Run("tracefiles", func(t *testing.T) {
		paths := writeTestTraces(t, t.TempDir())
		cfg := smtavf.DefaultConfig(2)
		old, err1 := smtavf.NewSimulatorFromTraceFiles(cfg, paths)
		new, err2 := smtavf.New(cfg, smtavf.WithTraceFiles(paths...))
		runBoth(t, old, new, err1, err2)
	})
}

func TestNewOptionErrors(t *testing.T) {
	cfg := smtavf.DefaultConfig(2)
	cases := []struct {
		name string
		opts []smtavf.Option
		want string
	}{
		{"no workload", nil, "no workload"},
		{"two workloads", []smtavf.Option{
			smtavf.WithBenchmarks("gcc", "mcf"),
			smtavf.WithPhases([][]string{{"eon"}, {"gcc"}}, 1_000),
		}, "exactly one workload source"},
		{"missing trace file", []smtavf.Option{smtavf.WithTraceFiles("x.trc", "y.trc")}, "x.trc"},
		{"unknown benchmark", []smtavf.Option{smtavf.WithBenchmarks("bogus", "mcf")}, "bogus"},
		{"thread mismatch", []smtavf.Option{smtavf.WithBenchmarks("gcc")}, "threads"},
		{"zero phase period", []smtavf.Option{smtavf.WithPhases([][]string{{"eon"}, {"gcc"}}, 0)}, "period"},
		{"zero shards", []smtavf.Option{smtavf.WithBenchmarks("gcc", "mcf"), smtavf.WithShards(0, 1)}, "shard count"},
		{"telemetry with shards", []smtavf.Option{
			smtavf.WithBenchmarks("gcc", "mcf"),
			smtavf.WithShards(2, 2),
			smtavf.WithTelemetry(smtavf.NewTelemetry(smtavf.TelemetryOptions{})),
		}, "WithTelemetry"},
		{"pipetrace with shards", []smtavf.Option{
			smtavf.WithBenchmarks("gcc", "mcf"),
			smtavf.WithShards(2, 2),
			smtavf.WithPipeTrace(smtavf.NewPipeTrace(smtavf.PipeTraceOptions{})),
		}, "WithPipeTrace"},
		{"short warmup window", []smtavf.Option{
			smtavf.WithBenchmarks("gcc", "mcf"),
			smtavf.WithShardWarmupWindow(512),
		}, "4096"},
		{"nil option", []smtavf.Option{nil}, "nil Option"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := smtavf.New(cfg, tc.opts...)
			if err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error %v, want substring %q", err, tc.want)
			}
		})
	}
}

// A sharded simulator commits exact counts, stays within the documented
// AVF tolerance of the monolithic run, and records one checkpoint per
// shard.
func TestNewSharded(t *testing.T) {
	cfg := smtavf.DefaultConfig(2)
	quotas := []uint64{12_000, 12_000}

	mono, err := smtavf.New(cfg, smtavf.WithBenchmarks("gcc", "mcf"))
	if err != nil {
		t.Fatal(err)
	}
	want, err := mono.RunPerThread(quotas)
	if err != nil {
		t.Fatal(err)
	}

	sharded, err := smtavf.New(cfg,
		smtavf.WithBenchmarks("gcc", "mcf"),
		smtavf.WithShards(3, 2))
	if err != nil {
		t.Fatal(err)
	}
	got, err := sharded.RunPerThread(quotas)
	if err != nil {
		t.Fatal(err)
	}

	if !reflect.DeepEqual(got.Committed, want.Committed) || got.Total != want.Total {
		t.Fatalf("sharded commits %v (total %d), monolithic %v (total %d)",
			got.Committed, got.Total, want.Committed, want.Total)
	}
	for _, s := range smtavf.Structs() {
		d := got.StructAVF(s) - want.StructAVF(s)
		if d < 0 {
			d = -d
		}
		if d > smtavf.ShardTolerance {
			t.Errorf("struct %v: sharded AVF %.4f vs monolithic %.4f (|Δ| %.4f > %.3f)",
				s, got.StructAVF(s), want.StructAVF(s), d, smtavf.ShardTolerance)
		}
	}
	if cps := sharded.Checkpoints(); len(cps) != 3 {
		t.Fatalf("%d checkpoints, want 3", len(cps))
	}
	if mono.Checkpoints() != nil {
		t.Fatal("monolithic simulator reports checkpoints")
	}
	if _, err := sharded.Run(1_000); err == nil || !strings.Contains(err.Error(), "single-shot") {
		t.Fatalf("second sharded Run: %v", err)
	}
}

// Run on a sharded simulator splits the total evenly.
func TestNewShardedRunSplitsEvenly(t *testing.T) {
	sim, err := smtavf.New(smtavf.DefaultConfig(2),
		smtavf.WithBenchmarks("gcc", "mcf"),
		smtavf.WithShards(2, 0))
	if err != nil {
		t.Fatal(err)
	}
	res, err := sim.Run(10_001)
	if err != nil {
		t.Fatal(err)
	}
	if res.Committed[0] != 5_001 || res.Committed[1] != 5_000 {
		t.Fatalf("committed %v, want [5001 5000]", res.Committed)
	}
}

func TestShardedAttachPanics(t *testing.T) {
	sim, err := smtavf.New(smtavf.DefaultConfig(2),
		smtavf.WithBenchmarks("gcc", "mcf"),
		smtavf.WithShards(2, 1))
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("SetTelemetry on sharded simulator did not panic")
		}
	}()
	sim.SetTelemetry(smtavf.NewTelemetry(smtavf.TelemetryOptions{}))
}

// Options attach observers on the monolithic path.
func TestNewWithObservers(t *testing.T) {
	cfg := smtavf.DefaultConfig(1)
	tel := smtavf.NewTelemetry(smtavf.TelemetryOptions{WindowCycles: 1_000})
	camp, err := smtavf.NewFaultCampaign(cfg, 64, 1)
	if err != nil {
		t.Fatal(err)
	}
	sim, err := smtavf.New(cfg,
		smtavf.WithBenchmarks("gcc"),
		smtavf.WithTelemetry(tel),
		smtavf.WithFaultInjection(camp))
	if err != nil {
		t.Fatal(err)
	}
	res, err := sim.Run(6_000)
	if err != nil {
		t.Fatal(err)
	}
	if tel.Windows() == 0 {
		t.Error("telemetry collected no windows")
	}
	if camp.Samples(res.Cycles) == 0 {
		t.Error("campaign observed no samples")
	}
}

// TestWithObservability: the campaign-observability option attaches to
// both execution paths, appends one run manifest per run, drives the
// progress tracker, and yields the sharded utilization timeline.
func TestWithObservability(t *testing.T) {
	cfg := smtavf.DefaultConfig(2)
	ledgerPath := filepath.Join(t.TempDir(), "runs.jsonl")
	ledger, err := smtavf.OpenRunLedger(ledgerPath)
	if err != nil {
		t.Fatal(err)
	}
	reg := smtavf.NewMetricsRegistry()
	prog := smtavf.NewProgress(smtavf.ProgressOptions{Heartbeat: -1, Registry: reg})
	o := &smtavf.Observability{Registry: reg, Progress: prog, Ledger: ledger, Program: "apitest"}

	// Monolithic run with telemetry: progress advances in committed
	// instructions via the collector.
	tel := smtavf.NewTelemetry(smtavf.TelemetryOptions{WindowCycles: 1000, Registry: reg})
	sim, err := smtavf.New(cfg, smtavf.WithBenchmarks("gcc", "mcf"),
		smtavf.WithTelemetry(tel), smtavf.WithObservability(o))
	if err != nil {
		t.Fatal(err)
	}
	res, err := sim.Run(8_000)
	if err != nil {
		t.Fatal(err)
	}
	if snap := prog.Snapshot(); snap.Phase != "run" || snap.Done == 0 {
		t.Fatalf("monolithic progress = %+v", snap)
	}
	if tl := sim.Timeline(); tl != nil {
		t.Fatalf("monolithic simulator has a timeline: %v", tl)
	}

	// Sharded run with the same Observability (valid, unlike the
	// pipeline observers).
	sim2, err := smtavf.New(cfg, smtavf.WithBenchmarks("gcc", "mcf"),
		smtavf.WithShards(2, 2), smtavf.WithObservability(o))
	if err != nil {
		t.Fatal(err)
	}
	res2, err := sim2.Run(8_000)
	if err != nil {
		t.Fatal(err)
	}
	if snap := prog.Snapshot(); snap.Phase != "shards" || snap.Done != 2 {
		t.Fatalf("sharded progress = %+v", snap)
	}
	if tl := sim2.Timeline(); len(tl) == 0 {
		t.Fatal("sharded simulator recorded no timeline")
	} else {
		var b strings.Builder
		if err := smtavf.WriteTimeline(&b, tl); err != nil {
			t.Fatal(err)
		}
	}

	// Two manifests in the ledger, in run order, fully attributed.
	ms, err := smtavf.ReadRunLedger(ledgerPath)
	if err != nil {
		t.Fatal(err)
	}
	if len(ms) != 2 {
		t.Fatalf("ledger has %d records, want 2", len(ms))
	}
	for i, m := range ms {
		if m.Kind != "run" || m.Program != "apitest" || m.Status != "ok" {
			t.Errorf("manifest %d header = %+v", i, m)
		}
		if m.ConfigDigest == "" || m.Policy != "ICOUNT" {
			t.Errorf("manifest %d provenance = %+v", i, m)
		}
		if len(m.Workloads) != 2 || m.Workloads[0] != "gcc" {
			t.Errorf("manifest %d workloads = %v", i, m.Workloads)
		}
	}
	if ms[0].Shards != 1 || ms[0].Cycles != res.Cycles {
		t.Errorf("monolithic manifest = %+v", ms[0])
	}
	if ms[1].Shards != 2 || ms[1].Cycles != res2.Cycles {
		t.Errorf("sharded manifest = %+v", ms[1])
	}
	if ms[0].Instructions != res.Total || ms[1].Instructions != res2.Total {
		t.Errorf("manifest instruction counts: %d/%d want %d/%d",
			ms[0].Instructions, ms[1].Instructions, res.Total, res2.Total)
	}
}

// TestObservabilityIsInert: attaching WithObservability must not change
// the simulated results on either path.
func TestObservabilityIsInert(t *testing.T) {
	cfg := smtavf.DefaultConfig(2)
	runWith := func(opts ...smtavf.Option) *smtavf.Results {
		t.Helper()
		sim, err := smtavf.New(cfg, append([]smtavf.Option{smtavf.WithBenchmarks("gcc", "mcf")}, opts...)...)
		if err != nil {
			t.Fatal(err)
		}
		res, err := sim.Run(8_000)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	o := &smtavf.Observability{
		Registry: smtavf.NewMetricsRegistry(),
		Progress: smtavf.NewProgress(smtavf.ProgressOptions{Heartbeat: -1}),
	}
	if !reflect.DeepEqual(runWith(), runWith(smtavf.WithObservability(o))) {
		t.Fatal("observability perturbed a monolithic run")
	}
	if !reflect.DeepEqual(
		runWith(smtavf.WithShards(2, 2)),
		runWith(smtavf.WithShards(2, 2), smtavf.WithObservability(o))) {
		t.Fatal("observability perturbed a sharded run")
	}
}
