// Bit-identity contract of the zero-allocation hot loop (docs/performance.md).
//
// The event-driven IQ wakeup, uop pooling, and scratch-buffer reuse are pure
// mechanical optimizations: they must not move a single reported number. This
// test pins the full result surface — cycles, committed counts, per-structure
// AVF, and per-thread AVF — of a spread of seed workloads to digests recorded
// from the pre-optimization engine (commit e68affd), covering both the
// monolithic and the sharded execution paths and every squash-heavy policy.
//
// To regenerate after an INTENTIONAL modeling change (never after a pure
// perf change), run:
//
//	SMTAVF_WRITE_GOLDEN=1 go test -run TestHotLoopBitIdentity -v .
//
// and paste the printed table over hotLoopGolden.
package smtavf_test

import (
	"fmt"
	"math"
	"os"
	"testing"

	"smtavf"
	"smtavf/internal/digest"
)

// resultDigest folds every reported figure of a run into one order-sensitive
// 64-bit hash: any bit of drift in cycles, committed counts, per-structure
// AVF, or per-thread AVF changes the digest.
func resultDigest(res *smtavf.Results) uint64 {
	h := digest.New()
	h = digest.Mix(h, res.Cycles)
	h = digest.Mix(h, res.Total)
	for _, c := range res.Committed {
		h = digest.Mix(h, c)
	}
	for _, s := range smtavf.Structs() {
		h = digest.Mix(h, math.Float64bits(res.StructAVF(s)))
		for tid := 0; tid < res.Threads; tid++ {
			h = digest.Mix(h, math.Float64bits(res.AVF.ThreadAVF(s, tid)))
		}
	}
	return h
}

// hotLoopCase is one pinned workload: a (config, workload, run) triple whose
// result digest must never move under performance work.
type hotLoopCase struct {
	name     string
	contexts int
	policy   string
	benches  []string
	warmup   uint64
	shards   int
	// run: total instructions (Run) or per-thread quotas (RunPerThread).
	total     uint64
	perThread []uint64
}

var hotLoopCases = []hotLoopCase{
	// The BenchmarkSimulatorCycles workload itself.
	{name: "icount-mix4", contexts: 4, policy: "ICOUNT",
		benches: []string{"gcc", "mcf", "vpr", "perlbmk"}, total: 8000},
	// FLUSH exercises the L2-miss squash path (IQ removal mid-wakeup).
	{name: "flush-mem4", contexts: 4, policy: "FLUSH",
		benches: []string{"mcf", "equake", "vpr", "swim"}, total: 8000},
	// STALLP exercises the miss predictors and fetch gating.
	{name: "stallp-mix2-warm", contexts: 2, policy: "STALLP",
		benches: []string{"gcc", "mcf"}, warmup: 2000, total: 6000},
	// Static IQ partition caps interact with CanInsert and the ready set.
	{name: "icount-partition", contexts: 4, policy: "ICOUNT",
		benches: []string{"gcc", "mcf", "vpr", "perlbmk"}, total: 8000,
		shards: -1 /* sentinel: monolithic with IQPartition=24 */},
	// The sharded engine must rebuild bit-identical pooled machines per
	// interval (functional warmup + detailed interval on a fresh pool).
	{name: "sharded-mix4", contexts: 4, policy: "ICOUNT",
		benches: []string{"gcc", "mcf", "vpr", "perlbmk"}, shards: 4,
		perThread: []uint64{5000, 5000, 5000, 5000}},
}

// hotLoopGolden pins the digest of every case, recorded from the
// pre-optimization engine (commit e68affd, sort-and-scan IQ, one heap uop
// per fetched instruction).
var hotLoopGolden = map[string]uint64{
	"icount-mix4":      0x57fe96783ae944f5,
	"flush-mem4":       0x7469b1c1492c8e8b,
	"stallp-mix2-warm": 0xb65251ebcade5859,
	"icount-partition": 0xa7a94460c4351695,
	"sharded-mix4":     0xe225cd8064ba2676,
}

func runHotLoopCase(t *testing.T, c hotLoopCase) *smtavf.Results {
	t.Helper()
	cfg := smtavf.DefaultConfig(c.contexts)
	cfg.Seed = 1
	cfg.Warmup = c.warmup
	if c.shards == -1 {
		cfg.IQPartition = 24
	}
	if err := cfg.SetPolicy(c.policy); err != nil {
		t.Fatal(err)
	}
	opts := []smtavf.Option{smtavf.WithBenchmarks(c.benches...)}
	if c.shards > 1 {
		opts = append(opts, smtavf.WithShards(c.shards, 2))
	}
	sim, err := smtavf.New(cfg, opts...)
	if err != nil {
		t.Fatal(err)
	}
	var res *smtavf.Results
	if c.perThread != nil {
		res, err = sim.RunPerThread(c.perThread)
	} else {
		res, err = sim.Run(c.total)
	}
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// TestHotLoopBitIdentity asserts that the optimized engine reproduces the
// pre-optimization engine's results byte for byte on the pinned workloads.
func TestHotLoopBitIdentity(t *testing.T) {
	if os.Getenv("SMTAVF_WRITE_GOLDEN") != "" {
		for _, c := range hotLoopCases {
			res := runHotLoopCase(t, c)
			fmt.Printf("\t%q: %#016x,\n", c.name, resultDigest(res))
		}
		t.Skip("golden digests printed; paste over hotLoopGolden")
	}
	for _, c := range hotLoopCases {
		c := c
		t.Run(c.name, func(t *testing.T) {
			want, ok := hotLoopGolden[c.name]
			if !ok {
				t.Fatalf("no golden digest recorded for %q", c.name)
			}
			res := runHotLoopCase(t, c)
			if got := resultDigest(res); got != want {
				t.Errorf("result digest %#016x, want %#016x — the hot-loop "+
					"optimizations changed a reported figure (cycles=%d total=%d)",
					got, want, res.Cycles, res.Total)
			}
		})
	}
}

// TestHotLoopDeterminism runs each pinned workload twice in one process and
// requires identical digests: the uop pool and waiter lists must not leak
// state between runs or depend on allocation order.
func TestHotLoopDeterminism(t *testing.T) {
	for _, c := range hotLoopCases {
		c := c
		t.Run(c.name, func(t *testing.T) {
			a := resultDigest(runHotLoopCase(t, c))
			b := resultDigest(runHotLoopCase(t, c))
			if a != b {
				t.Errorf("same-process reruns diverge: %#016x vs %#016x", a, b)
			}
		})
	}
}
