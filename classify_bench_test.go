// BenchmarkClassifyBatch isolates the per-uop AVF classification cost the
// commit and squash paths pay, in both accounting modes: detached (no
// interval sink — the batched occupancy path, Pool.ClassifyBatch →
// Tracker.AddSpan) and attached (a sink consumes every positioned interval
// through Pool.Classify → Tracker.AddInterval). The gap between the two
// sub-benchmarks is the price of interval-level observability, and the
// detached figure is the floor a bare AVF run pays per retired uop.
package smtavf_test

import (
	"testing"

	"smtavf/internal/avf"
	"smtavf/internal/core"
	"smtavf/internal/isa"
	"smtavf/internal/pipeline"
)

// countSink is the cheapest possible interval consumer: classification
// with it attached measures sink dispatch, not sink work.
type countSink struct{ intervals int }

func (c *countSink) Interval(s avf.Struct, tid int, bits, start, end uint64, ace bool) {
	c.intervals++
}

// classifyFixture builds a pool of retired-looking uops with populated
// residency logs, spread over four threads like the gate benchmark's mix.
func classifyFixture(n int) (*pipeline.Pool, []pipeline.UID, *avf.Tracker) {
	pool := pipeline.NewPool(n)
	trk := avf.NewTracker(4, core.StructBits(core.DefaultConfig(4)))
	uids := make([]pipeline.UID, n)
	for i := 0; i < n; i++ {
		in := isa.Instruction{Seq: uint64(i), PC: uint64(0x1000 + 4*i), Class: isa.IntALU}
		if i%3 == 0 {
			in.Class = isa.Load
		}
		u := pool.Alloc()
		pool.Reset(u, &in, int32(i%4), uint64(i), uint64(i), false, uint64(i))
		r := &pool.Res[u]
		r.EnterIQ, r.IQCycles = uint64(i), 3
		r.EnterROB, r.ROBCycles = uint64(i), 9
		if in.Class == isa.Load {
			r.EnterLSQ, r.LSQTagCycles = uint64(i), 9
			r.DataAt, r.LSQDataCycles = uint64(i+5), 4
		}
		r.IssuedAt, r.FUCycles = uint64(i+3), 1
		uids[i] = u
	}
	return pool, uids, trk
}

// BenchmarkClassifyBatch measures one uop classification per op.
func BenchmarkClassifyBatch(b *testing.B) {
	const n = 1024
	bits := pipeline.DefaultBits()
	b.Run("detached", func(b *testing.B) {
		pool, uids, trk := classifyFixture(n)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			pool.ClassifyBatch(trk, bits, uids[i%n], i%7 == 0)
		}
	})
	b.Run("attached", func(b *testing.B) {
		pool, uids, trk := classifyFixture(n)
		sink := &countSink{}
		trk.SetSink(sink)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			pool.Classify(trk, bits, uids[i%n], i%7 == 0)
		}
	})
}
