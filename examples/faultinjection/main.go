// Faultinjection validates the ACE-based AVF computation with statistical
// fault injection — the expensive alternative methodology the paper's §2
// and §6 discuss. The campaign strikes random state bits at random cycles;
// the fraction of strikes that would corrupt the program converges to the
// structure's AVF.
package main

import (
	"fmt"
	"log"

	"smtavf"
)

func main() {
	cfg := smtavf.DefaultConfig(2)
	camp, err := smtavf.NewFaultCampaign(cfg, 1 /* sample every cycle */, 42)
	if err != nil {
		log.Fatal(err)
	}

	sim, err := smtavf.New(cfg,
		smtavf.WithBenchmarks("gcc", "twolf"),
		smtavf.WithFaultInjection(camp))
	if err != nil {
		log.Fatal(err)
	}

	res, err := sim.Run(50_000)
	if err != nil {
		log.Fatal(err)
	}

	const strikes = 200_000
	fmt.Printf("%d simulated particle strikes per structure over %d cycles\n\n", strikes, res.Cycles)
	fmt.Printf("%-10s %12s %12s %14s\n", "structure", "ACE AVF", "inject AVF", "strike-corrupt")
	for _, s := range smtavf.Structs() {
		corrupted := camp.Outcomes(s, res.Cycles, strikes)
		fmt.Printf("%-10s %11.2f%% %11.2f%% %9d/%d\n",
			s, 100*res.StructAVF(s), 100*camp.Estimate(s, res.Cycles), corrupted, strikes)
	}
	fmt.Println("\nThe two AVF columns are computed by independent methods (residency")
	fmt.Println("accounting vs. strike sampling); their agreement validates the model.")
}
