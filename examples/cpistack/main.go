// Cpistack demonstrates the explainability layer: it runs the same
// two-thread memory-bound mix under ICOUNT and FLUSH with the
// CPI-stack/occupancy observer attached, prints each run's cycle
// attribution and occupancy-by-fate decomposition, and then shows the
// causal chain the paper argues — FLUSH squashes the pipeline behind
// every L2 miss, so IQ occupancy drops, and the IQ AVF drops with it.
//
// Usage: cpistack [out.jsonl|out.csv|out.json]
// With an argument, the ICOUNT run's windowed series is also written to
// that path (.csv for CSV, .json for Chrome trace_event counters,
// otherwise JSONL; .gz compresses).
package main

import (
	"fmt"
	"log"
	"os"

	"smtavf"
)

func main() {
	type run struct {
		policy string
		stack  *smtavf.CPIStack
		occ    float64
		avf    float64
	}
	runs := make([]run, 0, 2)
	for _, name := range []string{"ICOUNT", "FLUSH"} {
		pol, err := smtavf.PolicyByName(name)
		if err != nil {
			log.Fatal(err)
		}
		cfg := smtavf.DefaultConfig(2)
		cfg.Seed = 42
		cfg.Policy = pol

		stack := smtavf.NewCPIStack(smtavf.CPIStackOptions{WindowCycles: 5_000})
		sim, err := smtavf.New(cfg,
			smtavf.WithBenchmarks("mcf", "gcc"),
			smtavf.WithCPIStack(stack))
		if err != nil {
			log.Fatal(err)
		}
		res, err := sim.Run(40_000)
		if err != nil {
			log.Fatal(err)
		}

		fmt.Printf("=== %s ===\n", name)
		fmt.Print(stack.FormatStack())
		fmt.Println()
		fmt.Print(stack.FormatOccupancy())
		fmt.Println()

		start, end := stack.Span()
		occ := float64(stack.ResidentBitCycles(smtavf.IQ)) /
			float64(stack.Capacity(smtavf.IQ)*(end-start))
		runs = append(runs, run{name, stack, occ, res.StructAVF(smtavf.IQ)})

		if name == "ICOUNT" && len(os.Args) > 1 {
			if err := stack.WriteFile(os.Args[1]); err != nil {
				log.Fatal(err)
			}
			fmt.Printf("windowed series (%d windows) written to %s\n\n",
				len(stack.Windows()), os.Args[1])
		}
	}

	ico, fl := runs[0], runs[1]
	fmt.Println("the causal chain, quantified:")
	fmt.Printf("  IQ occupancy  ICOUNT %5.1f%%  ->  FLUSH %5.1f%%\n", 100*ico.occ, 100*fl.occ)
	fmt.Printf("  IQ AVF        ICOUNT %5.1f%%  ->  FLUSH %5.1f%%\n", 100*ico.avf, 100*fl.avf)
	fmt.Println("FLUSH drains the queues behind every L2 miss: fewer resident")
	fmt.Println("bits means fewer ACE bits, so vulnerability falls with occupancy.")
}
