// Threadscaling sweeps the number of hardware contexts (1, 2, 4, 8) over
// CPU-bound and memory-bound workloads and shows how throughput and the
// vulnerability of the shared structures scale — the experiment behind the
// paper's Figure 5.
package main

import (
	"fmt"
	"log"

	"smtavf"
)

// pools of benchmarks to draw threads from, CPU-bound and memory-bound.
var (
	cpuPool = []string{"bzip2", "eon", "gcc", "perlbmk", "gap", "crafty", "mesa", "wupwise"}
	memPool = []string{"mcf", "twolf", "equake", "vpr", "swim", "lucas", "applu", "mgrid"}
)

func main() {
	for _, pool := range []struct {
		name    string
		benches []string
	}{{"CPU-bound", cpuPool}, {"memory-bound", memPool}} {
		fmt.Printf("=== %s threads ===\n", pool.name)
		fmt.Printf("%8s %8s %8s %8s %8s %8s\n", "contexts", "IPC", "IQ AVF", "Reg AVF", "ROB AVF", "FU AVF")
		for _, n := range []int{1, 2, 4, 8} {
			cfg := smtavf.DefaultConfig(n)
			sim, err := smtavf.New(cfg, smtavf.WithBenchmarks(pool.benches[:n]...))
			if err != nil {
				log.Fatal(err)
			}
			res, err := sim.Run(uint64(25_000 * n))
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("%8d %8.3f %7.2f%% %7.2f%% %7.2f%% %7.2f%%\n",
				n, res.IPC(),
				100*res.StructAVF(smtavf.IQ),
				100*res.StructAVF(smtavf.Reg),
				100*res.StructAVF(smtavf.ROB),
				100*res.StructAVF(smtavf.FU))
		}
		fmt.Println()
	}
	fmt.Println("Shared structures (IQ, Reg) grow more vulnerable as contexts are")
	fmt.Println("added; the register pool limit caps per-thread ROB utilization.")
}
