// Stvsmt contrasts SMT execution against single-thread (superscalar)
// execution of the same work — the experiment behind the paper's Figures
// 3 and 4. Each thread of a 4-context SMT run is replayed alone for
// exactly the instructions it completed under SMT, so the two executions
// do identical work.
package main

import (
	"fmt"
	"log"

	"smtavf"
)

func main() {
	mix, err := smtavf.MixByName("4ctx-MIX-A")
	if err != nil {
		log.Fatal(err)
	}

	smtSim, err := smtavf.New(smtavf.DefaultConfig(4), smtavf.WithBenchmarks(mix.Benchmarks...))
	if err != nil {
		log.Fatal(err)
	}
	smt, err := smtSim.Run(100_000)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("mix %s under SMT: IPC %.3f in %d cycles\n\n", mix.Name(), smt.IPC(), smt.Cycles)
	fmt.Printf("%-10s %10s %10s %10s %10s\n", "thread", "IQ(ST)", "IQ(SMT)", "ROB(ST)", "ROB(SMT)")

	var seqCycles, seqInstrs uint64
	for tid, bench := range mix.Benchmarks {
		// Replay this thread alone for its SMT progress.
		sim, err := smtavf.New(smtavf.DefaultConfig(1), smtavf.WithBenchmarks(bench))
		if err != nil {
			log.Fatal(err)
		}
		st, err := sim.Run(smt.Committed[tid])
		if err != nil {
			log.Fatal(err)
		}
		seqCycles += st.Cycles
		seqInstrs += st.Total
		fmt.Printf("%-10s %9.2f%% %9.2f%% %9.2f%% %9.2f%%\n", bench,
			100*st.StructAVF(smtavf.IQ),
			100*smt.ThreadStructAVF(smtavf.IQ, tid),
			100*st.StructAVF(smtavf.ROB),
			100*smt.ThreadStructAVF(smtavf.ROB, tid))
	}

	fmt.Printf("\nsequential execution of all threads: %d instructions in %d cycles (IPC %.3f)\n",
		seqInstrs, seqCycles, float64(seqInstrs)/float64(seqCycles))
	fmt.Printf("SMT execution of the same work:      %d instructions in %d cycles (IPC %.3f)\n",
		smt.Total, smt.Cycles, smt.IPC())
	fmt.Println("\nIndividual threads are *less* vulnerable under SMT (each holds fewer")
	fmt.Println("resources), while the aggregate machine is *more* vulnerable — and")
	fmt.Println("still wins on the performance/reliability tradeoff.")
}
