// Phases watches the AVF move with program phase behaviour: a thread that
// alternates between a compute-bound phase (eon) and a memory-bound phase
// (mcf) drags the shared structures' vulnerability up and down with it —
// the time-resolved view behind the paper's phase-behaviour reference
// (Fu et al., MASCOTS 2006).
package main

import (
	"fmt"
	"log"
	"strings"

	"smtavf"
)

func main() {
	cfg := smtavf.DefaultConfig(1)
	cfg.PhaseInterval = 20_000 // sample IPC and AVF every 20k cycles

	sim, err := smtavf.New(cfg, smtavf.WithPhases([][]string{{"eon", "mcf"}}, 25_000))
	if err != nil {
		log.Fatal(err)
	}
	res, err := sim.Run(150_000)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("phase samples (each row is one 20k-cycle window):")
	fmt.Printf("%12s %8s %8s %9s   %s\n", "cycle", "IPC", "IQ AVF", "ROB AVF", "")
	maxIQ := 0.0
	for _, ph := range res.Phases {
		if ph.AVF[smtavf.IQ] > maxIQ {
			maxIQ = ph.AVF[smtavf.IQ]
		}
	}
	for _, ph := range res.Phases {
		bar := ""
		if maxIQ > 0 {
			bar = strings.Repeat("█", int(ph.AVF[smtavf.IQ]/maxIQ*30+0.5))
		}
		fmt.Printf("%12d %8.3f %7.2f%% %8.2f%%   %s\n",
			ph.Cycle, ph.IPC, 100*ph.AVF[smtavf.IQ], 100*ph.AVF[smtavf.ROB], bar)
	}
	fmt.Println("\nCompute phases run fast with a lean IQ; memory phases stall and fill")
	fmt.Println("it with long-lived ACE state. Whole-program AVF averages hide this.")
}
