// Pipetrace attaches the pipeline flight recorder to a two-thread run and
// asks it the question the end-of-run AVF report cannot answer: *which
// instructions* made the instruction queue vulnerable? The recorder
// samples a 20k-cycle window mid-run (skipping cold start), then the
// provenance pass attributes every ACE bit-cycle in the window to the
// static instruction that occupied the entry — the top-10 IQ contributors
// print below, alongside the fate breakdown and the trace exports the
// same recording feeds (Konata / chrome://tracing).
package main

import (
	"fmt"
	"log"

	"smtavf"
)

func main() {
	cfg := smtavf.DefaultConfig(2)

	// A memory-bound thread (mcf) next to a compute-bound one (gcc): the
	// classic SMT vulnerability pairing — mcf's stalled instructions sit
	// in the shared structures, accumulating ACE bit-cycles.
	// Record only uops fetched in cycles [10k, 30k): a 20k-cycle window
	// past the cold-start transient. Long sweeps sample the same way
	// instead of buffering millions of records.
	rec := smtavf.NewPipeTrace(smtavf.PipeTraceOptions{
		WindowStart: 10_000,
		WindowEnd:   30_000,
	})
	sim, err := smtavf.New(cfg,
		smtavf.WithBenchmarks("mcf", "gcc"),
		smtavf.WithPipeTrace(rec))
	if err != nil {
		log.Fatal(err)
	}

	res, err := sim.Run(120_000)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("run: %d cycles, %d instructions, IQ AVF %.2f%%\n",
		res.Cycles, res.Total, 100*res.StructAVF(smtavf.IQ))
	fmt.Printf("flight recording: %d uops fetched in cycles [10k, 30k)\n\n", rec.Len())

	// The provenance report: which static instructions the recorded IQ
	// ACE bit-cycles came from, and the fate of all recorded residency.
	prov := rec.Provenance()
	fmt.Print(prov.FormatHotspots(smtavf.IQ, 10))
	fmt.Println()
	fmt.Print(prov.FormatFates())

	// The same recording exports as pipeline-viewer traces: run.kanata
	// opens in Konata, run.json in chrome://tracing or Perfetto.
	for _, path := range []string{"run.kanata", "run.json"} {
		if err := rec.WriteFile(path, ""); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("\nwrote %s", path)
	}
	fmt.Println()
}
