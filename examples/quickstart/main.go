// Quickstart: simulate a 4-context SMT machine running the paper's
// memory-bound workload mix and print each structure's AVF and
// reliability efficiency.
package main

import (
	"fmt"
	"log"

	"smtavf"
)

func main() {
	// The machine is the paper's Table 1 configuration.
	cfg := smtavf.DefaultConfig(4)

	// Run the Table 2 "4-context MEM group A" mix: mcf, equake, vpr, swim.
	mix, err := smtavf.MixByName("4ctx-MEM-A")
	if err != nil {
		log.Fatal(err)
	}
	sim, err := smtavf.New(cfg, smtavf.WithBenchmarks(mix.Benchmarks...))
	if err != nil {
		log.Fatal(err)
	}

	res, err := sim.Run(100_000)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("workload %s: IPC = %.3f over %d cycles\n\n", mix.Name(), res.IPC(), res.Cycles)
	fmt.Printf("%-10s %8s %12s\n", "structure", "AVF", "IPC/AVF")
	for _, s := range smtavf.Structs() {
		fmt.Printf("%-10s %7.2f%% %12.2f\n", s, 100*res.StructAVF(s), res.Efficiency(s))
	}
	fmt.Println("\nPer-thread AVF contributions to the shared IQ:")
	for tid, ts := range res.Thread {
		fmt.Printf("  %-8s %6.2f%%  (IPC %.3f)\n",
			ts.Workload, 100*res.AVF.ThreadAVF(smtavf.IQ, tid), res.ThreadIPC(tid))
	}
}
