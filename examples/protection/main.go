// Protection turns the AVF analysis into the design decision the paper's
// §5 motivates: with a limited protection budget (ECC/parity costs area
// and power), which structures should be protected first? The plan ranks
// structures by their FIT contribution — AVF × size × raw error rate —
// and shows the cumulative chip-level coverage of protecting the top k.
package main

import (
	"fmt"
	"log"

	"smtavf"
)

func main() {
	const rawFITPerMbit = 1000 // illustrative circuit-level rate

	mix, err := smtavf.MixByName("4ctx-MIX-A")
	if err != nil {
		log.Fatal(err)
	}
	cfg := smtavf.DefaultConfig(mix.Contexts)
	cfg.Warmup = 50_000
	sim, err := smtavf.New(cfg, smtavf.WithBenchmarks(mix.Benchmarks...))
	if err != nil {
		log.Fatal(err)
	}
	res, err := sim.Run(100_000)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("workload %s: whole-processor AVF %.2f%%, total %.1f FIT at %g FIT/Mbit\n\n",
		mix.Name(), 100*res.ProcessorAVF(), res.TotalFIT(rawFITPerMbit), float64(rawFITPerMbit))
	fmt.Printf("%4s %-10s %10s %10s %12s\n", "rank", "structure", "bits", "FIT", "cum.coverage")
	for i, item := range res.ProtectionPlan(rawFITPerMbit) {
		fmt.Printf("%4d %-10s %10d %10.2f %11.1f%%\n",
			i+1, item.Struct, item.Bits, item.FIT, 100*item.CumulativeCoverage)
	}
	fmt.Println("\nProtecting the top two or three structures removes most of the chip's")
	fmt.Println("soft-error failure rate — the paper's 'protect the shared structures")
	fmt.Println("first' guidance, quantified.")
}
