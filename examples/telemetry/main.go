// Telemetry attaches a live cycle-windowed collector to a run with program
// phases: two threads alternate between compute-bound (eon, gcc) and
// memory-bound (mcf, swim) behaviour, and the collector's in-memory ring
// buffer records one IPC/AVF sample per 10k-cycle window — the same series
// cmd/smtsim writes with -telemetry, here consumed directly from Go.
package main

import (
	"fmt"
	"log"
	"strings"

	"smtavf"
)

func main() {
	cfg := smtavf.DefaultConfig(2)

	// Each thread cycles through two benchmark behaviours every 25k
	// instructions, so the machine's vulnerability moves with the phases.
	col := smtavf.NewTelemetry(smtavf.TelemetryOptions{WindowCycles: 10_000})
	sim, err := smtavf.New(cfg,
		smtavf.WithPhases([][]string{{"eon", "mcf"}, {"gcc", "swim"}}, 25_000),
		smtavf.WithTelemetry(col))
	if err != nil {
		log.Fatal(err)
	}

	res, err := sim.Run(300_000)
	if err != nil {
		log.Fatal(err)
	}
	if err := col.Close(); err != nil {
		log.Fatal(err)
	}

	windows := col.Ring()
	fmt.Printf("telemetry series: %d windows of %d cycles\n\n", len(windows), col.WindowCycles())
	fmt.Printf("%8s %8s %8s %9s   %s\n", "window", "IPC", "IQ AVF", "ROB AVF", "")
	maxIQ := 0.0
	for _, w := range windows {
		if w.AVF["IQ"] > maxIQ {
			maxIQ = w.AVF["IQ"]
		}
	}
	for _, w := range windows {
		bar := ""
		if maxIQ > 0 {
			bar = strings.Repeat("█", int(w.AVF["IQ"]/maxIQ*30+0.5))
		}
		fmt.Printf("%8d %8.3f %7.2f%% %8.2f%%   %s\n",
			w.Index, w.IPC, 100*w.AVF["IQ"], 100*w.AVF["ROB"], bar)
	}

	last := windows[len(windows)-1]
	fmt.Printf("\nwhole-run: IPC=%.3f IQ AVF=%.2f%% (= last window's cumulative %.2f%%)\n",
		res.IPC(), 100*res.StructAVF(smtavf.IQ), 100*last.CumAVF["IQ"])
	fmt.Println("\nCompute phases drain the IQ quickly; memory phases fill it with")
	fmt.Println("long-lived ACE state. The windowed series exposes swings that the")
	fmt.Println("whole-run cumulative AVF averages away.")
}
