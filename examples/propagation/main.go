// Propagation taint-tracks sampled soft-error strikes through a
// two-thread run's dataflow and asks the question neither the AVF report
// nor the injection campaign answers: *where does a corrupted bit go*?
// A strike campaign samples the run on its cycle grid as usual; the
// propagation tracer records every retired uop's dataflow node alongside.
// After the run, each sampled strike resolves to its victim instruction
// and expands hop by hop across register, store-forwarding, memory, and
// cross-thread (shared DL1) edges. The atlas below ranks the root-cause
// instructions, histograms hop depth per edge type, and prints the thread
// contamination matrix — whose off-diagonal entries are mcf's faults
// corrupting gcc's loads, the SMT-specific channel the paper's shared
// structures create.
package main

import (
	"fmt"
	"log"

	"smtavf"
)

func main() {
	cfg := smtavf.DefaultConfig(2)

	// The campaign samples machine state on every cycle; the tracer
	// records the dataflow nodes the strikes will be resolved against.
	camp, err := smtavf.NewFaultCampaign(cfg, 1, cfg.Seed)
	if err != nil {
		log.Fatal(err)
	}
	tracer := smtavf.NewPropagation(smtavf.PropagationOptions{})
	sim, err := smtavf.New(cfg,
		smtavf.WithBenchmarks("mcf", "gcc"),
		smtavf.WithFaultInjection(camp),
		smtavf.WithPropagation(tracer))
	if err != nil {
		log.Fatal(err)
	}

	res, err := sim.Run(60_000)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("run: %d cycles, %d instructions, processor AVF %.2f%%\n\n",
		res.Cycles, res.Total, 100*res.ProcessorAVF())

	// Sample 128 strikes into every structure and taint-track each one.
	var strikes []smtavf.InjectStrike
	for _, s := range smtavf.Structs() {
		strikes = append(strikes, camp.SampleStrikes(s, res.Cycles, 128)...)
	}
	atlas := tracer.Analyze(strikes)
	fmt.Print(atlas.Tables(10))

	// The per-strike traces serialize as versioned JSONL for offline
	// analysis; smtavf.PropagationAtlas rebuilds the tables from them.
	if err := smtavf.WritePropagationTraces("atlas.jsonl.gz", atlas.Traces); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nwrote atlas.jsonl.gz (%d traces)\n", len(atlas.Traces))
}
