// Crossval runs the fault-injection observatory end to end: a campaign
// samples occupancy snapshots while the simulator runs, then draws
// strikes in batches until every structure's Wilson confidence interval
// is tighter than the target half-width (a sequential stopping rule —
// low-AVF structures converge fast, shared high-AVF structures draw
// more). The cross-validation report then checks that the ACE-residency
// AVF sits inside each strike-based CI, with a z-score and a PASS/FAIL
// verdict per structure.
package main

import (
	"fmt"
	"log"

	"smtavf"
)

func main() {
	const seed = 42
	cfg := smtavf.DefaultConfig(2)
	cfg.Seed = seed

	camp, err := smtavf.NewFaultCampaign(cfg, 1 /* sample every cycle */, seed)
	if err != nil {
		log.Fatal(err)
	}
	// Pretend the two top-FIT structures got hardened: parity detects
	// (strike → DUE), ECC corrects. Detection reclassifies outcomes in
	// the taxonomy but never moves the AVF estimate.
	var prot smtavf.ProtectionModes
	prot[smtavf.IQ] = smtavf.ProtectParity
	prot[smtavf.Reg] = smtavf.ProtectECC
	camp.SetProtection(prot.Detections())

	sim, err := smtavf.New(cfg,
		smtavf.WithBenchmarks("gcc", "twolf"),
		smtavf.WithFaultInjection(camp))
	if err != nil {
		log.Fatal(err)
	}

	res, err := sim.Run(50_000)
	if err != nil {
		log.Fatal(err)
	}

	// Strike until every 99% CI is narrower than ±2% AVF (or the cap).
	stats := camp.RunStrikes(res.Cycles, smtavf.StopWhen(0.02, 1<<20))
	fmt.Println(stats.Table())

	rep := smtavf.CrossValidate(smtavf.CrossValMeta{
		Workload: "gcc+twolf", Policy: "ICOUNT", Seed: seed, Every: 1, Cycles: res.Cycles,
	}, res, stats)
	fmt.Println(rep.Table())

	if rep.Pass() {
		fmt.Println("ACE analysis and fault injection agree on every structure.")
	} else {
		for _, e := range rep.Failed() {
			fmt.Printf("DISAGREEMENT %s: tracker %.4f outside [%.4f, %.4f] (z=%.1f)\n",
				e.Struct, e.TrackerAVF, e.CILo, e.CIHi, e.Z)
		}
	}
}
