// Fetchpolicies compares the six SMT instruction-fetch policies of the
// paper (ICOUNT, STALL, FLUSH, DG, PDG, DWarn) on one workload mix,
// reporting throughput, IQ vulnerability, and the reliability-efficiency
// tradeoff — the experiment behind the paper's Figures 6 and 7.
//
// Usage: fetchpolicies [mix-name]   (default 4ctx-MIX-A)
package main

import (
	"fmt"
	"log"
	"os"

	"smtavf"
)

func main() {
	mixName := "4ctx-MIX-A"
	if len(os.Args) > 1 {
		mixName = os.Args[1]
	}
	mix, err := smtavf.MixByName(mixName)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("mix %s: %v\n\n", mix.Name(), mix.Benchmarks)
	fmt.Printf("%-8s %8s %8s %10s %10s %8s\n",
		"policy", "IPC", "IQ AVF", "IQ IPC/AVF", "ROB AVF", "flushes")

	for _, pol := range smtavf.Policies() {
		cfg := smtavf.DefaultConfig(mix.Contexts)
		cfg.Policy = pol
		sim, err := smtavf.New(cfg, smtavf.WithBenchmarks(mix.Benchmarks...))
		if err != nil {
			log.Fatal(err)
		}
		res, err := sim.Run(100_000)
		if err != nil {
			log.Fatal(err)
		}
		flushes := uint64(0)
		for _, ts := range res.Thread {
			flushes += ts.Flushes
		}
		fmt.Printf("%-8s %8.3f %7.2f%% %10.2f %9.2f%% %8d\n",
			pol.Name(), res.IPC(),
			100*res.StructAVF(smtavf.IQ), res.Efficiency(smtavf.IQ),
			100*res.StructAVF(smtavf.ROB), flushes)
	}
	fmt.Println("\nFLUSH squashes the pipeline behind every L2 miss: watch it trade")
	fmt.Println("raw IPC for a large drop in IQ/ROB vulnerability (higher IPC/AVF).")
}
