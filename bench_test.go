// Benchmarks regenerating every table and figure of the paper's evaluation
// (see DESIGN.md §6 for the experiment index), plus the ablations of
// DESIGN.md §8. Each benchmark reports its headline quantities via
// b.ReportMetric, so `go test -bench=. -benchmem` doubles as a compact
// reproduction of the paper's results:
//
//	go test -bench=Figure -benchtime=1x
//
// Budgets are scaled down (the synthetic workloads are stationary, so the
// figures' shapes stabilize quickly); raise benchBase or run cmd/avfreport
// for publication-scale numbers.
package smtavf_test

import (
	"runtime"
	"testing"

	"smtavf"
	"smtavf/internal/core"
	"smtavf/internal/experiments"
	"smtavf/internal/fetch"
)

// dgPolicy builds a DG fetch policy with an explicit gating threshold.
func dgPolicy(threshold int) smtavf.Policy { return fetch.DG{Threshold: threshold} }

// benchBase is the 2-context instruction budget used by the figure
// benchmarks (4- and 8-context runs use 2× and 4×).
const benchBase = 4_000

func newRunner() *experiments.Runner {
	return experiments.NewRunner(experiments.Options{Base: benchBase, Seed: 1})
}

// BenchmarkTable2 exercises building every Table 2 workload mix.
func BenchmarkTable2(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		for _, m := range smtavf.Mixes() {
			sim, err := smtavf.New(smtavf.DefaultConfig(m.Contexts), smtavf.WithBenchmarks(m.Benchmarks...))
			if err != nil {
				b.Fatal(err)
			}
			if _, err := sim.Run(500); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// BenchmarkFigure1 regenerates the 4-context AVF profile and reports the
// IQ AVF of the CPU- and memory-bound columns.
func BenchmarkFigure1(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		r := newRunner()
		t, err := r.Figure1()
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(100*t.Get(t.Row("IQ"), t.Col("CPU")), "IQ-AVF-CPU-%")
		b.ReportMetric(100*t.Get(t.Row("IQ"), t.Col("MEM")), "IQ-AVF-MEM-%")
	}
}

// BenchmarkFigure2 regenerates the reliability-efficiency profile.
func BenchmarkFigure2(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		r := newRunner()
		t, err := r.Figure2()
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(t.Get(t.Row("IQ"), t.Col("CPU")), "IQ-IPC/AVF-CPU")
	}
}

// BenchmarkFigure3 regenerates the SMT-vs-single-thread per-thread AVF
// comparison and reports the mean per-thread IQ AVF reduction under SMT.
func BenchmarkFigure3(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		r := newRunner()
		t, err := r.Figure3()
		if err != nil {
			b.Fatal(err)
		}
		st, smt := t.Col("IQ_ST"), t.Col("IQ_SMT")
		var ratio float64
		n := 0
		for row := range t.Rows {
			if v := t.Get(row, st); v > 0 {
				ratio += t.Get(row, smt) / v
				n++
			}
		}
		b.ReportMetric(ratio/float64(n), "IQ-SMT/ST-ratio")
	}
}

// BenchmarkFigure4 regenerates the SMT-vs-single-thread efficiency
// comparison.
func BenchmarkFigure4(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		r := newRunner()
		if _, err := r.Figure4(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFigure5 regenerates the context-count sweep and reports the IQ
// AVF growth from 2 to 8 contexts on memory-bound workloads.
func BenchmarkFigure5(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		r := newRunner()
		panels, err := r.Figure5()
		if err != nil {
			b.Fatal(err)
		}
		p := panels[0]
		iq := p.Row("IQ")
		b.ReportMetric(100*p.Get(iq, p.Col("MEM/2")), "IQ-AVF-MEM2-%")
		b.ReportMetric(100*p.Get(iq, p.Col("MEM/8")), "IQ-AVF-MEM8-%")
	}
}

// BenchmarkFigure6 regenerates the fetch-policy AVF panels and reports the
// FLUSH-vs-ICOUNT IQ AVF ratio on the 4-context MEM workload.
func BenchmarkFigure6(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		r := newRunner()
		tables, err := r.Figure6()
		if err != nil {
			b.Fatal(err)
		}
		for _, t := range tables {
			if t.Title == "Figure 6: AVF under fetch policies (4 contexts, MEM)" {
				iq := t.Row("IQ")
				base := t.Get(iq, t.Col("ICOUNT"))
				if base > 0 {
					b.ReportMetric(t.Get(iq, t.Col("FLUSH"))/base, "FLUSH/ICOUNT-IQ-AVF")
				}
			}
		}
	}
}

// BenchmarkFigure7 regenerates the normalized IPC/AVF comparison and
// reports FLUSH's and STALL's IQ advantage over ICOUNT.
func BenchmarkFigure7(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		r := newRunner()
		t, err := r.Figure7()
		if err != nil {
			b.Fatal(err)
		}
		iq := t.Row("IQ")
		b.ReportMetric(t.Get(iq, t.Col("FLUSH")), "FLUSH-IQ-eff-x")
		b.ReportMetric(t.Get(iq, t.Col("STALL")), "STALL-IQ-eff-x")
	}
}

// BenchmarkFigure8 regenerates the fairness-aware efficiency comparison
// and reports how FLUSH's advantage shrinks under harmonic IPC.
func BenchmarkFigure8(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		r := newRunner()
		tables, err := r.Figure8()
		if err != nil {
			b.Fatal(err)
		}
		ws, harm := tables[0], tables[1]
		iq := ws.Row("IQ")
		b.ReportMetric(ws.Get(iq, ws.Col("FLUSH")), "FLUSH-IQ-wspeedup-x")
		b.ReportMetric(harm.Get(iq, harm.Col("FLUSH")), "FLUSH-IQ-harmonic-x")
	}
}

// --- Ablations (DESIGN.md §8) ---

func runAblation(b *testing.B, threads int, benches []string, mutate func(*core.Config)) *smtavf.Results {
	b.Helper()
	cfg := smtavf.DefaultConfig(threads)
	if mutate != nil {
		mutate(&cfg)
	}
	sim, err := smtavf.New(cfg, smtavf.WithBenchmarks(benches...))
	if err != nil {
		b.Fatal(err)
	}
	res, err := sim.Run(uint64(benchBase) * uint64(threads) / 2)
	if err != nil {
		b.Fatal(err)
	}
	return res
}

var ablationMix = []string{"gcc", "mcf", "vpr", "perlbmk"}

// BenchmarkAblationRegPool sweeps the shared register-pool size: a smaller
// pool throttles per-thread ROB utilization (the paper's §4.1 ROB effect).
func BenchmarkAblationRegPool(b *testing.B) {
	b.ReportAllocs()
	for _, pool := range []int{288, 448, 640} {
		pool := pool
		b.Run(string(rune('0'+pool/100))+"xx", func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				res := runAblation(b, 4, ablationMix, func(c *core.Config) {
					c.IntPhysRegs, c.FPPhysRegs = pool, pool
				})
				b.ReportMetric(res.IPC(), "IPC")
				b.ReportMetric(100*res.StructAVF(smtavf.ROB), "ROB-AVF-%")
			}
		})
	}
}

// BenchmarkAblationIQPartition compares the fully shared IQ against static
// per-thread partitions (the paper's §5 reliability-aware resource
// allocation proposal).
func BenchmarkAblationIQPartition(b *testing.B) {
	b.ReportAllocs()
	for _, part := range []int{0, 24, 48} {
		part := part
		name := "shared"
		if part > 0 {
			name = map[int]string{24: "quarter", 48: "half"}[part]
		}
		b.Run(name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				res := runAblation(b, 4, ablationMix, func(c *core.Config) {
					c.IQPartition = part
				})
				b.ReportMetric(res.IPC(), "IPC")
				b.ReportMetric(100*res.StructAVF(smtavf.IQ), "IQ-AVF-%")
			}
		})
	}
}

// BenchmarkAblationDGThreshold sweeps the DG fetch-gating threshold.
func BenchmarkAblationDGThreshold(b *testing.B) {
	b.ReportAllocs()
	for _, th := range []int{0, 1, 2, 4} {
		th := th
		b.Run(string(rune('0'+th)), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				res := runAblation(b, 4, ablationMix, func(c *core.Config) {
					c.Policy = dgPolicy(th)
				})
				b.ReportMetric(res.IPC(), "IPC")
				b.ReportMetric(100*res.StructAVF(smtavf.IQ), "IQ-AVF-%")
			}
		})
	}
}

// BenchmarkAblationStallPredict contrasts reactive STALL with the paper's
// proposed L2-miss-predictive STALLP.
func BenchmarkAblationStallPredict(b *testing.B) {
	b.ReportAllocs()
	for _, pol := range []string{"STALL", "STALLP"} {
		pol := pol
		b.Run(pol, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				res := runAblation(b, 4, ablationMix, func(c *core.Config) {
					if err := c.SetPolicy(pol); err != nil {
						b.Fatal(err)
					}
				})
				b.ReportMetric(res.IPC(), "IPC")
				b.ReportMetric(100*res.StructAVF(smtavf.IQ), "IQ-AVF-%")
			}
		})
	}
}

// BenchmarkSensitivity regenerates the §5 structure-size sweeps and
// reports how much absolute ACE exposure a 6x larger IQ buys.
func BenchmarkSensitivity(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		r := newRunner()
		tables, err := r.Sensitivity()
		if err != nil {
			b.Fatal(err)
		}
		iq := tables[0]
		exp := iq.Row("ACE entries")
		b.ReportMetric(iq.Get(exp, len(iq.Cols)-1)/iq.Get(exp, 0), "IQ-exposure-growth-x")
	}
}

// BenchmarkExtensions regenerates the §5 proposal comparison (STALLP,
// VAware) and reports STALLP's IQ-AVF advantage over STALL on MIX.
func BenchmarkExtensions(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		r := newRunner()
		tb, err := r.Extensions()
		if err != nil {
			b.Fatal(err)
		}
		iq := tb.Row("IQ AVF")
		stall := tb.Get(iq, tb.Col("MIX/STALL"))
		if stall > 0 {
			b.ReportMetric(tb.Get(iq, tb.Col("MIX/STALLP"))/stall, "STALLP/STALL-IQ-AVF")
		}
	}
}

// BenchmarkSimulatorCycles measures raw simulation speed: simulated cycles
// per wall-clock second on a 4-context mixed workload.
func BenchmarkSimulatorCycles(b *testing.B) {
	b.ReportAllocs()
	var cycles uint64
	for i := 0; i < b.N; i++ {
		res := runAblation(b, 4, ablationMix, nil)
		cycles += res.Cycles
	}
	b.ReportMetric(float64(cycles)/b.Elapsed().Seconds(), "cycles/s")
}

// BenchmarkShardSpeedup measures the parallel speedup of the sharded
// engine: the same 4-shard, 4-thread plan executed by a single worker vs
// one worker per core (GOMAXPROCS). Compare the two cycles/s metrics —
// their ratio is the speedup, which approaches min(shards, cores) on
// multi-core machines and sits near 1.0 on a single core (functional
// warmup re-runs each shard's prefix, so the serialized sharded run does
// strictly more work than the monolith; docs/sharding.md quantifies it).
func BenchmarkShardSpeedup(b *testing.B) {
	b.ReportAllocs()
	const perThread = 20_000
	run := func(b *testing.B, workers int) {
		b.ReportAllocs()
		var cycles uint64
		for i := 0; i < b.N; i++ {
			sim, err := smtavf.New(smtavf.DefaultConfig(4),
				smtavf.WithBenchmarks(ablationMix...),
				smtavf.WithShards(4, workers))
			if err != nil {
				b.Fatal(err)
			}
			res, err := sim.RunPerThread([]uint64{perThread, perThread, perThread, perThread})
			if err != nil {
				b.Fatal(err)
			}
			cycles += res.Cycles
		}
		b.ReportMetric(float64(cycles)/b.Elapsed().Seconds(), "cycles/s")
	}
	b.Run("workers-1", func(b *testing.B) { run(b, 1) })
	b.Run("workers-max", func(b *testing.B) { run(b, runtime.GOMAXPROCS(0)) })
}

// BenchmarkTelemetryOverhead measures the cost of the telemetry subsystem
// on the simulator hot path. "off" runs with no collector attached — the
// nil-receiver fast path, whose per-cycle cost is a handful of nil checks
// and must stay within 5% of BenchmarkSimulatorCycles. "on" attaches a
// collector with default 10k-cycle windows feeding the in-memory ring,
// showing what a live -telemetry/-debug-addr run pays.
func BenchmarkTelemetryOverhead(b *testing.B) {
	b.ReportAllocs()
	run := func(b *testing.B, attach bool) {
		b.ReportAllocs()
		var cycles uint64
		for i := 0; i < b.N; i++ {
			opts := []smtavf.Option{smtavf.WithBenchmarks(ablationMix...)}
			if attach {
				opts = append(opts, smtavf.WithTelemetry(smtavf.NewTelemetry(smtavf.TelemetryOptions{})))
			}
			sim, err := smtavf.New(smtavf.DefaultConfig(4), opts...)
			if err != nil {
				b.Fatal(err)
			}
			res, err := sim.Run(uint64(benchBase) * 2)
			if err != nil {
				b.Fatal(err)
			}
			cycles += res.Cycles
		}
		b.ReportMetric(float64(cycles)/b.Elapsed().Seconds(), "cycles/s")
	}
	b.Run("off", func(b *testing.B) { run(b, false) })
	b.Run("on", func(b *testing.B) { run(b, true) })
}

// BenchmarkInjectOverhead measures the cost of a fault-injection
// campaign. "off" runs with no sink attached — the tracker's sink==nil
// fast path — and "nil" attaches a typed-nil *Campaign, exercising the
// nil-receiver no-op on the hot path (the pipetrace convention); both
// must stay within 5% of BenchmarkSimulatorCycles. "on" attaches a
// dense every-cycle campaign and also runs the post-run strike phase,
// showing what a full -inject run pays.
func BenchmarkInjectOverhead(b *testing.B) {
	b.ReportAllocs()
	run := func(b *testing.B, mode string) {
		b.ReportAllocs()
		var cycles uint64
		for i := 0; i < b.N; i++ {
			cfg := smtavf.DefaultConfig(4)
			opts := []smtavf.Option{smtavf.WithBenchmarks(ablationMix...)}
			var camp *smtavf.FaultCampaign
			if mode == "on" {
				var err error
				camp, err = smtavf.NewFaultCampaign(cfg, 1, 1)
				if err != nil {
					b.Fatal(err)
				}
				opts = append(opts, smtavf.WithFaultInjection(camp))
			}
			sim, err := smtavf.New(cfg, opts...)
			if err != nil {
				b.Fatal(err)
			}
			if mode == "nil" {
				// The typed-nil sink exercises the nil-receiver no-op on
				// the hot path; only the deprecated setter can install it
				// (WithFaultInjection treats a nil campaign as absent).
				sim.InjectFaults(camp)
			}
			res, err := sim.Run(uint64(benchBase) * 2)
			if err != nil {
				b.Fatal(err)
			}
			if mode == "on" {
				camp.RunStrikes(res.Cycles, smtavf.StopWhen(0.02, 1<<20))
			}
			cycles += res.Cycles
		}
		b.ReportMetric(float64(cycles)/b.Elapsed().Seconds(), "cycles/s")
	}
	b.Run("off", func(b *testing.B) { run(b, "off") })
	b.Run("nil", func(b *testing.B) { run(b, "nil") })
	b.Run("on", func(b *testing.B) { run(b, "on") })
}

// BenchmarkPipetraceOverhead measures the cost of the pipeline flight
// recorder. "off" runs with no recorder attached — the nil-receiver fast
// path at the commit/squash hooks, which must stay within 5% of
// BenchmarkSimulatorCycles. "on" attaches an unbounded recorder, showing
// what a full -pipetrace run pays (one Record per retired uop plus the
// provenance aggregation).
func BenchmarkPipetraceOverhead(b *testing.B) {
	b.ReportAllocs()
	run := func(b *testing.B, attach bool) {
		b.ReportAllocs()
		var cycles uint64
		for i := 0; i < b.N; i++ {
			opts := []smtavf.Option{smtavf.WithBenchmarks(ablationMix...)}
			if attach {
				opts = append(opts, smtavf.WithPipeTrace(smtavf.NewPipeTrace(smtavf.PipeTraceOptions{})))
			}
			sim, err := smtavf.New(smtavf.DefaultConfig(4), opts...)
			if err != nil {
				b.Fatal(err)
			}
			res, err := sim.Run(uint64(benchBase) * 2)
			if err != nil {
				b.Fatal(err)
			}
			cycles += res.Cycles
		}
		b.ReportMetric(float64(cycles)/b.Elapsed().Seconds(), "cycles/s")
	}
	b.Run("off", func(b *testing.B) { run(b, false) })
	b.Run("on", func(b *testing.B) { run(b, true) })
}

// BenchmarkPropagationOverhead measures the cost of the fault-propagation
// tracer. "off" runs with no tracer — the prop==nil fast path at the
// commit/squash hooks — and "nil" attaches a typed-nil *PropagationTracer,
// exercising the nil-receiver no-op; both must stay within noise of
// BenchmarkSimulatorCycles. "on" attaches a tracer, samples strikes into
// every structure, and runs the Analyze pass, showing what a full
// -propagation run pays.
func BenchmarkPropagationOverhead(b *testing.B) {
	b.ReportAllocs()
	run := func(b *testing.B, mode string) {
		b.ReportAllocs()
		var cycles uint64
		for i := 0; i < b.N; i++ {
			cfg := smtavf.DefaultConfig(4)
			opts := []smtavf.Option{smtavf.WithBenchmarks(ablationMix...)}
			var (
				camp   *smtavf.FaultCampaign
				tracer *smtavf.PropagationTracer
			)
			if mode == "on" {
				var err error
				camp, err = smtavf.NewFaultCampaign(cfg, 1, 1)
				if err != nil {
					b.Fatal(err)
				}
				tracer = smtavf.NewPropagation(smtavf.PropagationOptions{})
				opts = append(opts, smtavf.WithFaultInjection(camp),
					smtavf.WithPropagation(tracer))
			}
			sim, err := smtavf.New(cfg, opts...)
			if err != nil {
				b.Fatal(err)
			}
			if mode == "nil" {
				// The typed-nil tracer exercises the nil-receiver no-op on
				// the hot path.
				sim.SetPropagation(tracer)
			}
			res, err := sim.Run(uint64(benchBase) * 2)
			if err != nil {
				b.Fatal(err)
			}
			if mode == "on" {
				var strikes []smtavf.InjectStrike
				for _, s := range smtavf.Structs() {
					strikes = append(strikes, camp.SampleStrikes(s, res.Cycles, 64)...)
				}
				if atlas := tracer.Analyze(strikes); atlas.Strikes != len(strikes) {
					b.Fatalf("atlas covers %d strikes, sampled %d", atlas.Strikes, len(strikes))
				}
			}
			cycles += res.Cycles
		}
		b.ReportMetric(float64(cycles)/b.Elapsed().Seconds(), "cycles/s")
	}
	b.Run("off", func(b *testing.B) { run(b, "off") })
	b.Run("nil", func(b *testing.B) { run(b, "nil") })
	b.Run("on", func(b *testing.B) { run(b, "on") })
}

// BenchmarkCPIStackOverhead measures the cost of the explainability
// observer. "off" runs fully detached — SetCPIStack is never called, so
// the per-cycle attribution pass is skipped behind a single nil check
// and must stay within noise of BenchmarkSimulatorCycles. "on" attaches
// an observer with default 10k-cycle windows, showing what a full
// -cpistack run pays (one attribution pass per cycle plus windowed
// occupancy accounting per retired uop).
func BenchmarkCPIStackOverhead(b *testing.B) {
	b.ReportAllocs()
	run := func(b *testing.B, attach bool) {
		b.ReportAllocs()
		var cycles uint64
		for i := 0; i < b.N; i++ {
			opts := []smtavf.Option{smtavf.WithBenchmarks(ablationMix...)}
			if attach {
				opts = append(opts, smtavf.WithCPIStack(smtavf.NewCPIStack(smtavf.CPIStackOptions{})))
			}
			sim, err := smtavf.New(smtavf.DefaultConfig(4), opts...)
			if err != nil {
				b.Fatal(err)
			}
			res, err := sim.Run(uint64(benchBase) * 2)
			if err != nil {
				b.Fatal(err)
			}
			cycles += res.Cycles
		}
		b.ReportMetric(float64(cycles)/b.Elapsed().Seconds(), "cycles/s")
	}
	b.Run("off", func(b *testing.B) { run(b, false) })
	b.Run("on", func(b *testing.B) { run(b, true) })
}

// BenchmarkObsOverhead measures the cost of the campaign-observability
// layer on the simulator hot path. "off" runs fully detached — the
// nil-receiver fast path every hot-loop handle pays. "on" attaches a
// full Observability (registry, progress tracker with heartbeats
// disabled) on both the monolithic and sharded paths; obs instruments
// are fed at campaign rate (windows, shards, phases), never per cycle,
// so both must stay within noise of the detached run.
func BenchmarkObsOverhead(b *testing.B) {
	b.ReportAllocs()
	run := func(b *testing.B, shards int, attach bool) {
		b.ReportAllocs()
		var cycles uint64
		for i := 0; i < b.N; i++ {
			opts := []smtavf.Option{
				smtavf.WithBenchmarks(ablationMix...),
				smtavf.WithShards(shards, 0),
			}
			if attach {
				reg := smtavf.NewMetricsRegistry()
				opts = append(opts, smtavf.WithObservability(&smtavf.Observability{
					Registry: reg,
					Progress: smtavf.NewProgress(smtavf.ProgressOptions{Heartbeat: -1, Registry: reg}),
					Program:  "bench",
				}))
			}
			sim, err := smtavf.New(smtavf.DefaultConfig(4), opts...)
			if err != nil {
				b.Fatal(err)
			}
			res, err := sim.Run(uint64(benchBase) * 2)
			if err != nil {
				b.Fatal(err)
			}
			cycles += res.Cycles
		}
		b.ReportMetric(float64(cycles)/b.Elapsed().Seconds(), "cycles/s")
	}
	b.Run("mono-off", func(b *testing.B) { run(b, 1, false) })
	b.Run("mono-on", func(b *testing.B) { run(b, 1, true) })
	b.Run("sharded-off", func(b *testing.B) { run(b, 4, false) })
	b.Run("sharded-on", func(b *testing.B) { run(b, 4, true) })
}
