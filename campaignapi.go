package smtavf

import (
	"smtavf/internal/campaign"
)

// CampaignSpec is the one versioned, JSON-(de)serializable campaign
// specification every driver consumes — the experiments runner, the
// smtsim/avfsweep/avfreport CLIs, and the cmd/avfd job service all run
// the same spec, so a campaign submitted over HTTP is byte-for-byte the
// campaign a CLI would run. See docs/campaign-service.md for the schema
// and docs/api.md for the migration from the per-kind experiments specs.
type CampaignSpec = campaign.Spec

// CampaignMatrix fans one base CampaignSpec out over policy/mix/seed axes
// — the POST /v1/campaigns submission body.
type CampaignMatrix = campaign.Matrix

// CampaignResult is one executed campaign point as the service streams
// and persists it.
type CampaignResult = campaign.Result

// CampaignSpecVersion is the current spec schema version.
const CampaignSpecVersion = campaign.SpecVersion

// ReadCampaignSpec loads and validates a CampaignSpec from a JSON file
// (the smtsim -spec input).
func ReadCampaignSpec(path string) (CampaignSpec, error) {
	return campaign.ReadSpecFile(path)
}

// SpecConfig resolves a campaign spec into the concrete machine
// configuration it runs — workload-derived thread count, policy, seed,
// warmup, and any Machine override applied, exactly as the experiments
// runner resolves it (with the library defaults: seed 1, no budget rule).
func SpecConfig(spec CampaignSpec) (Config, error) {
	rv, err := spec.Resolve(campaign.Defaults{})
	if err != nil {
		return Config{}, err
	}
	return rv.Config, nil
}

// SpecOptions converts a campaign spec's workload source and shard shape
// into facade options for New, so a CLI can layer its own observers on
// top of a spec-defined run:
//
//	cfg, _ := smtavf.SpecConfig(spec)
//	opts, _ := smtavf.SpecOptions(spec)
//	sim, _ := smtavf.New(cfg, append(opts, smtavf.WithTelemetry(col))...)
func SpecOptions(spec CampaignSpec) ([]Option, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	shards := spec.Shards
	if shards < 1 {
		shards = 1
	}
	opts := []Option{WithShards(shards, spec.ShardWorkers)}
	if spec.ShardWarmupWindow != 0 {
		opts = append(opts, WithShardWarmupWindow(spec.ShardWarmupWindow))
	}
	if len(spec.TraceFiles) > 0 {
		opts = append(opts, WithTraceFiles(spec.TraceFiles...))
		return opts, nil
	}
	names, err := spec.ResolveBenchmarks()
	if err != nil {
		return nil, err
	}
	opts = append(opts, WithBenchmarks(names...))
	return opts, nil
}

// SpecProtection resolves a spec's protection map into the per-structure
// modes the strike campaign classifies against.
func SpecProtection(spec CampaignSpec) (ProtectionModes, error) {
	return campaign.ParseProtection(spec.Protection)
}

// ProtectionMap inverts SpecProtection for writing specs: unprotected
// structures are omitted, an all-silent assignment maps to nil.
func ProtectionMap(p ProtectionModes) map[string]string {
	return campaign.ProtectionMap(p)
}
