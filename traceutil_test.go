package smtavf_test

import (
	"os"
	"path/filepath"
	"testing"

	"smtavf/internal/trace"
	"smtavf/internal/workload"
)

// writeTestTraces records two short benchmark traces into dir and returns
// their paths.
func writeTestTraces(t *testing.T, dir string) []string {
	t.Helper()
	paths := make([]string, 0, 2)
	for _, bench := range []string{"bzip2", "eon"} {
		p, err := workload.Profile(bench)
		if err != nil {
			t.Fatal(err)
		}
		gen := trace.NewSynthetic(p, 1)
		path := filepath.Join(dir, bench+".trc")
		f, err := os.Create(path)
		if err != nil {
			t.Fatal(err)
		}
		if err := trace.WriteTrace(f, bench, trace.Record(gen, 4_000)); err != nil {
			t.Fatal(err)
		}
		if err := f.Close(); err != nil {
			t.Fatal(err)
		}
		paths = append(paths, path)
	}
	return paths
}
