// Package smtavf is a microarchitecture-level soft-error vulnerability
// analysis framework for simultaneous multithreaded (SMT) processors — a
// from-scratch reproduction of Zhang, Fu, Li & Fortes, "An Analysis of
// Microarchitecture Vulnerability to Soft Errors on Simultaneous
// Multithreaded Architectures" (ISPASS 2007).
//
// The package simulates a parameterizable out-of-order SMT machine
// (8-wide, shared IQ / register pool / function units / caches, per-thread
// ROB / LSQ / branch state) running synthetic SPEC CPU 2000 workloads, and
// reports per-structure, per-thread Architectural Vulnerability Factors
// alongside performance, under six instruction fetch policies.
//
// Quick start:
//
//	cfg := smtavf.DefaultConfig(4)
//	sim, err := smtavf.New(cfg, smtavf.WithBenchmarks("mcf", "equake", "vpr", "swim"))
//	if err != nil { ... }
//	res, err := sim.Run(100_000)
//	fmt.Printf("IQ AVF = %.1f%%\n", 100*res.StructAVF(smtavf.IQ))
//
// Long runs can be split into deterministic intervals and simulated in
// parallel with WithShards; see docs/sharding.md for the accuracy
// contract. docs/api.md maps the deprecated NewSimulator* constructors
// onto New.
package smtavf

import (
	"fmt"
	"io"
	"strings"

	"smtavf/internal/avf"
	"smtavf/internal/core"
	"smtavf/internal/cpistack"
	"smtavf/internal/crossval"
	"smtavf/internal/fetch"
	"smtavf/internal/inject"
	"smtavf/internal/obs"
	"smtavf/internal/pipetrace"
	"smtavf/internal/propagation"
	"smtavf/internal/shard"
	"smtavf/internal/telemetry"
	"smtavf/internal/trace"
	"smtavf/internal/workload"
)

// Config parameterizes the simulated machine; DefaultConfig reproduces the
// paper's Table 1.
type Config = core.Config

// Results is the outcome of a run: cycles, per-thread commit counts, the
// AVF report, and machine statistics.
type Results = core.Results

// Struct identifies an AVF-instrumented microarchitecture structure.
type Struct = avf.Struct

// Instrumented structures (Figures 1–8).
const (
	IQ      = avf.IQ
	ROB     = avf.ROB
	FU      = avf.FU
	Reg     = avf.Reg
	LSQData = avf.LSQData
	LSQTag  = avf.LSQTag
	DL1Data = avf.DL1Data
	DL1Tag  = avf.DL1Tag
	DTLB    = avf.DTLB
	ITLB    = avf.ITLB
)

// Structs lists the instrumented structures in presentation order.
func Structs() []Struct { return avf.Structs() }

// Mix is one multithreaded workload of the paper's Table 2.
type Mix = workload.Mix

// Policy is an SMT instruction fetch policy.
type Policy = fetch.Policy

// DefaultConfig returns the paper's Table 1 machine with the given number
// of hardware contexts and the ICOUNT fetch policy.
func DefaultConfig(threads int) Config { return core.DefaultConfig(threads) }

// Policies returns the paper's six fetch policies in presentation order.
func Policies() []Policy { return fetch.All() }

// PolicyByName returns the named fetch policy (ICOUNT, STALL, FLUSH, DG,
// PDG, DWarn, or STALLP).
func PolicyByName(name string) (Policy, error) {
	p := fetch.ByName(name)
	if p == nil {
		return nil, fmt.Errorf("smtavf: unknown fetch policy %q", name)
	}
	return p, nil
}

// Benchmarks lists the available synthetic SPEC CPU 2000 benchmark names.
func Benchmarks() []string { return workload.Names() }

// Mixes lists every Table 2 workload mix.
func Mixes() []Mix { return workload.Mixes() }

// MixByName finds a Table 2 mix by its name, e.g. "4ctx-MEM-A".
func MixByName(name string) (Mix, error) {
	for _, m := range workload.Mixes() {
		if m.Name() == name {
			return m, nil
		}
	}
	return Mix{}, fmt.Errorf("smtavf: unknown mix %q (see Mixes)", name)
}

// Simulator runs one workload on one machine configuration. A Simulator is
// single-shot: build a fresh one for each run.
type Simulator struct {
	proc   *core.Processor // monolithic path (shards <= 1)
	engine *shard.Engine   // sharded path (WithShards(n > 1, ...))
	used   bool

	// Campaign observability (WithObservability): progress phases begin
	// at Run, and a run manifest is appended to the ledger when the run
	// finishes — on both the monolithic and the sharded path.
	obsv      *obs.Observability
	cfg       Config
	kind      string
	workloads []string
	shards    int
}

// Checkpoint is the lightweight architectural checkpoint a sharded run
// records at each interval boundary: stream positions plus digests of the
// rename maps, branch-predictor state, and cache/TLB tags. Equal
// checkpoints identify equal architectural state.
type Checkpoint = core.Checkpoint

// ShardTolerance is the documented per-structure |ΔAVF| bound between a
// sharded run and the equivalent monolithic run, for interval lengths of at
// least 5k instructions per thread. See docs/sharding.md for the contract
// and the measurements behind it.
const ShardTolerance = shard.DefaultTolerance

// settings accumulates the effect of the Options passed to New.
type settings struct {
	cfg       Config
	factory   shard.SourceFactory // builds one fresh set of per-thread sources
	kind      string              // which workload option supplied the factory
	workloads []string            // workload identifiers for the run manifest
	tel       *telemetry.Collector
	rec       *pipetrace.Recorder
	camp      *inject.Campaign
	prop      *propagation.Tracer
	cpi       *cpistack.Observer
	obsv      *obs.Observability
	shards    int
	workers   int
	window    uint64
}

func (s *settings) setSource(kind string, workloads []string, f shard.SourceFactory) error {
	if s.factory != nil {
		return fmt.Errorf("smtavf: both %s and %s given; a simulator takes exactly one workload source", s.kind, kind)
	}
	s.kind, s.workloads, s.factory = kind, workloads, f
	return nil
}

// Option configures a Simulator built by New. Exactly one of
// WithBenchmarks, WithPhases, or WithTraceFiles must be given.
type Option func(*settings) error

// WithBenchmarks runs the named synthetic SPEC CPU 2000 benchmarks, one
// per hardware context (len(benchmarks) must equal cfg.Threads).
func WithBenchmarks(benchmarks ...string) Option {
	return func(s *settings) error {
		profiles := make([]trace.Profile, 0, len(benchmarks))
		for _, b := range benchmarks {
			p, err := workload.Profile(b)
			if err != nil {
				return err
			}
			profiles = append(profiles, p)
		}
		cfg := s.cfg
		return s.setSource("WithBenchmarks", benchmarks, func() ([]core.Source, error) {
			return core.Sources(cfg, profiles)
		})
	}
}

// WithPhases makes each context alternate among several benchmark
// behaviours every period instructions — a workload with program phases.
// phases[i] lists the benchmarks thread i cycles through; len(phases) must
// equal cfg.Threads. Combine with Config.PhaseInterval to watch the AVF
// move with the phases.
func WithPhases(phases [][]string, period uint64) Option {
	return func(s *settings) error {
		resolved := make([][]trace.Profile, len(phases))
		for i, names := range phases {
			for _, n := range names {
				p, err := workload.Profile(n)
				if err != nil {
					return err
				}
				resolved[i] = append(resolved[i], p)
			}
		}
		if period == 0 {
			return fmt.Errorf("smtavf: phase period must be positive")
		}
		ids := make([]string, len(phases))
		for i, names := range phases {
			ids[i] = strings.Join(names, "+")
		}
		cfg := s.cfg
		return s.setSource("WithPhases", ids, func() ([]core.Source, error) {
			srcs := make([]core.Source, 0, len(resolved))
			for i, profiles := range resolved {
				gen, err := trace.NewPhased(profiles, period, cfg.Seed+uint64(i)*0x9e37)
				if err != nil {
					return nil, err
				}
				srcs = append(srcs, core.Source{Gen: gen})
			}
			return srcs, nil
		})
	}
}

// WithTraceFiles replays recorded instruction traces (cmd/tracegen)
// instead of generating synthetic streams; finite recordings loop.
// len(paths) must equal cfg.Threads. Files are loaded once; sharded runs
// share the recording across shards.
func WithTraceFiles(paths ...string) Option {
	return func(s *settings) error {
		masters := make([]*trace.Replay, 0, len(paths))
		for _, p := range paths {
			r, err := trace.LoadTraceFile(p)
			if err != nil {
				return err
			}
			masters = append(masters, r)
		}
		return s.setSource("WithTraceFiles", paths, func() ([]core.Source, error) {
			srcs := make([]core.Source, 0, len(masters))
			for _, m := range masters {
				srcs = append(srcs, core.Source{Gen: m.Clone()})
			}
			return srcs, nil
		})
	}
}

// WithTelemetry attaches a cycle-windowed live-metrics collector to the
// run (see Telemetry). Incompatible with WithShards(n > 1): a sharded run
// has no single contiguous cycle timeline to sample.
func WithTelemetry(c *Telemetry) Option {
	return func(s *settings) error {
		s.tel = c
		return nil
	}
}

// WithPipeTrace attaches a pipeline flight recorder to the run (see
// PipeTrace). Incompatible with WithShards(n > 1).
func WithPipeTrace(r *PipeTrace) Option {
	return func(s *settings) error {
		s.rec = r
		return nil
	}
}

// WithFaultInjection attaches a statistical fault-injection campaign to
// the run (see FaultCampaign). Incompatible with WithShards(n > 1).
func WithFaultInjection(c *FaultCampaign) Option {
	return func(s *settings) error {
		s.camp = c
		return nil
	}
}

// WithPropagation attaches a fault-propagation tracer to the run (see
// PropagationTracer): after the run, feed it the strikes of a
// FaultCampaign (SampleStrikes) and Analyze taint-tracks each corruption
// through the recorded dataflow. Incompatible with WithShards(n > 1): a
// sharded run has no single dataflow timeline to trace over.
func WithPropagation(t *PropagationTracer) Option {
	return func(s *settings) error {
		s.prop = t
		return nil
	}
}

// WithCPIStack attaches the explainability observer to the run (see
// CPIStack): every thread-cycle is attributed to a CPI-stack component
// and structure occupancy is decomposed by ACE fate in cycle windows, so
// the run's AVF numbers come with their why. Incompatible with
// WithShards(n > 1): a sharded run has no single cycle timeline to
// attribute. A nil observer leaves the layer detached at zero per-cycle
// cost (BenchmarkCPIStackOverhead pins this).
func WithCPIStack(o *CPIStack) Option {
	return func(s *settings) error {
		s.cpi = o
		return nil
	}
}

// WithObservability attaches the campaign-observability layer to the run
// (see Observability): live metrics land on its Registry, the run's
// phases drive its Progress tracker, and a RunManifest is appended to its
// Ledger when the run finishes. Unlike the pipeline observers, this
// option is valid on BOTH monolithic and sharded runs — it watches the
// campaign, not the simulated cycle timeline. See docs/campaigns.md.
func WithObservability(o *Observability) Option {
	return func(s *settings) error {
		s.obsv = o
		return nil
	}
}

// WithShards splits the run into n deterministic intervals per thread and
// simulates them concurrently on at most workers goroutines (workers <= 0
// means GOMAXPROCS). Each shard starts from a per-shard functional warmup
// of the long-lived structures (caches, TLBs, branch predictors) and the
// merged report sums the shards' raw counters, so committed-instruction
// counts are exact and per-structure AVFs agree with the monolithic run
// within ShardTolerance — docs/sharding.md documents the contract and its
// interval-length requirements. n <= 1 runs monolithically.
//
// Sharded results are deterministic: the same cfg and workload produce
// bit-identical Results for any worker count.
func WithShards(n, workers int) Option {
	return func(s *settings) error {
		if n < 1 {
			return fmt.Errorf("smtavf: shard count must be at least 1, got %d", n)
		}
		s.shards, s.workers = n, workers
		return nil
	}
}

// WithShardWarmupWindow bounds each shard's functional warmup to the last
// window instructions per thread before its interval instead of the full
// prefix — faster for deep shards, with a documented accuracy floor
// (window must be at least 4096; see docs/sharding.md). Zero (the
// default) warms through the full prefix.
func WithShardWarmupWindow(window uint64) Option {
	return func(s *settings) error {
		if window != 0 && window < 4096 {
			return fmt.Errorf("smtavf: shard warmup window %d below the documented floor of 4096", window)
		}
		s.window = window
		return nil
	}
}

// New builds a simulator for cfg. Exactly one workload option
// (WithBenchmarks, WithPhases, WithTraceFiles) selects what runs;
// the remaining options attach observers or split the run into parallel
// shards. New replaces the NewSimulator* constructors — docs/api.md has
// the migration table.
func New(cfg Config, opts ...Option) (*Simulator, error) {
	s := settings{cfg: cfg, shards: 1}
	for _, o := range opts {
		if o == nil {
			return nil, fmt.Errorf("smtavf: nil Option")
		}
		if err := o(&s); err != nil {
			return nil, err
		}
	}
	if s.factory == nil {
		return nil, fmt.Errorf("smtavf: no workload given; pass WithBenchmarks, WithPhases, or WithTraceFiles")
	}
	if s.shards > 1 {
		switch {
		case s.tel != nil:
			return nil, fmt.Errorf("smtavf: WithTelemetry requires a monolithic run (WithShards(1, ...))")
		case s.rec != nil:
			return nil, fmt.Errorf("smtavf: WithPipeTrace requires a monolithic run (WithShards(1, ...))")
		case s.camp != nil:
			return nil, fmt.Errorf("smtavf: WithFaultInjection requires a monolithic run (WithShards(1, ...))")
		case s.prop != nil:
			return nil, fmt.Errorf("smtavf: WithPropagation requires a monolithic run (WithShards(1, ...))")
		case s.cpi != nil:
			return nil, fmt.Errorf("smtavf: WithCPIStack requires a monolithic run (WithShards(1, ...))")
		}
		// Fail construction-time errors here rather than from a worker
		// goroutine mid-run: one throwaway set of sources validates the
		// factory (source construction is cheap and deterministic).
		if _, err := s.factory(); err != nil {
			return nil, err
		}
		eng, err := shard.New(cfg, s.factory, shard.Options{
			Shards:       s.shards,
			Workers:      s.workers,
			WarmupWindow: s.window,
			Obs:          s.obsv,
		})
		if err != nil {
			return nil, err
		}
		return &Simulator{engine: eng, obsv: s.obsv, cfg: cfg, kind: s.kind,
			workloads: s.workloads, shards: s.shards}, nil
	}
	srcs, err := s.factory()
	if err != nil {
		return nil, err
	}
	proc, err := core.NewFromSources(cfg, srcs)
	if err != nil {
		return nil, err
	}
	sim := &Simulator{proc: proc, obsv: s.obsv, cfg: cfg, kind: s.kind,
		workloads: s.workloads, shards: 1}
	if s.tel != nil {
		proc.SetTelemetry(s.tel)
		if s.obsv != nil && s.obsv.Progress != nil {
			s.tel.SetProgress(s.obsv.Progress)
		}
	}
	if s.rec != nil {
		proc.SetPipeTrace(s.rec)
	}
	if s.camp != nil {
		proc.AttachSink(s.camp)
	}
	if s.prop != nil {
		proc.SetPropagation(s.prop)
	}
	if s.cpi != nil {
		// After the campaign attach: SetCPIStack joins the tracker's sink
		// via AddSink, so the campaign and the observer share the stream.
		proc.SetCPIStack(s.cpi)
	}
	return sim, nil
}

// NewSimulator builds a simulator for cfg running the named benchmarks,
// one per hardware context (len(benchmarks) must equal cfg.Threads).
//
// Deprecated: Use New with WithBenchmarks; results are bit-identical.
func NewSimulator(cfg Config, benchmarks []string) (*Simulator, error) {
	return New(cfg, WithBenchmarks(benchmarks...))
}

// NewSimulatorPhased builds a simulator whose contexts alternate among
// several benchmark behaviours every period instructions.
//
// Deprecated: Use New with WithPhases; results are bit-identical.
func NewSimulatorPhased(cfg Config, phases [][]string, period uint64) (*Simulator, error) {
	return New(cfg, WithPhases(phases, period))
}

// NewSimulatorFromTraceFiles builds a simulator whose contexts replay
// recorded instruction traces (cmd/tracegen); len(paths) must equal
// cfg.Threads.
//
// Deprecated: Use New with WithTraceFiles; results are bit-identical.
func NewSimulatorFromTraceFiles(cfg Config, paths []string) (*Simulator, error) {
	return New(cfg, WithTraceFiles(paths...))
}

// Run simulates until total instructions have committed across all threads
// (the paper's stop rule) and returns the results.
//
// On a sharded simulator the total is split evenly across threads
// (remainder to the low-numbered contexts) and each thread runs to its
// exact quota — the per-thread commit counts are deterministic, where the
// monolithic stop rule lets the faster threads commit more. Use
// RunPerThread for identical commit counts across both paths.
func (s *Simulator) Run(total uint64) (*Results, error) {
	if err := s.markUsed(); err != nil {
		return nil, err
	}
	var res *Results
	var err error
	if s.engine != nil {
		res, err = s.engine.Run(total)
	} else {
		s.beginProgress(total)
		res, err = s.proc.Run(core.Limits{TotalInstructions: total})
	}
	s.appendManifest(res, err)
	return res, err
}

// RunPerThread simulates until every thread has committed its quota — used
// to replay each thread's SMT progress in single-thread mode (Figures 3–4).
func (s *Simulator) RunPerThread(quotas []uint64) (*Results, error) {
	if err := s.markUsed(); err != nil {
		return nil, err
	}
	var res *Results
	var err error
	if s.engine != nil {
		res, err = s.engine.RunPerThread(quotas)
	} else {
		var total uint64
		for _, q := range quotas {
			total += q
		}
		s.beginProgress(total)
		res, err = s.proc.Run(core.Limits{PerThread: quotas})
	}
	s.appendManifest(res, err)
	return res, err
}

// beginProgress opens the monolithic run phase on the attached progress
// tracker: the target is committed instructions, which is what the
// telemetry collector feeds back window by window.
func (s *Simulator) beginProgress(total uint64) {
	if s.obsv == nil {
		return
	}
	s.obsv.Progress.Phase("run", total)
}

// appendManifest writes the run's provenance record to the attached
// ledger — on success, on error, and regardless of execution path.
func (s *Simulator) appendManifest(res *Results, runErr error) {
	if s.obsv == nil || s.obsv.Ledger == nil {
		return
	}
	program := s.obsv.Program
	if program == "" {
		program = "smtavf"
	}
	m := obs.NewManifest("run", program)
	m.ConfigDigest = obs.ConfigDigest(s.cfg)
	m.Seed = s.cfg.Seed
	if s.cfg.Policy != nil {
		m.Policy = s.cfg.Policy.Name()
	}
	m.Workloads = append([]string(nil), s.workloads...)
	m.Shards = s.shards
	if s.kind != "" {
		m.Extra = map[string]string{"source": s.kind}
	}
	if res != nil {
		m.Cycles = res.Cycles
		m.Instructions = res.Total
	}
	m.Finish(obs.StatusOK, runErr)
	s.obsv.Ledger.Append(m)
}

// Timeline returns the per-worker phase spans of the last sharded run —
// export them with WriteTimeline for chrome://tracing. Nil unless the
// simulator was built with both WithShards(n > 1) and WithObservability.
func (s *Simulator) Timeline() []Span {
	if s.engine == nil {
		return nil
	}
	return s.engine.Timeline()
}

// Checkpoints returns the interval-boundary checkpoints recorded by the
// last sharded run, in shard order; nil for monolithic simulators.
func (s *Simulator) Checkpoints() []Checkpoint {
	if s.engine == nil {
		return nil
	}
	return s.engine.Checkpoints()
}

func (s *Simulator) markUsed() error {
	if s.used {
		return fmt.Errorf("smtavf: Simulator is single-shot; build a new one per run")
	}
	s.used = true
	return nil
}

// Telemetry is a cycle-windowed live-metrics collector: attach one with
// Simulator.SetTelemetry and the run emits a per-window time-series of
// IPC, per-structure AVF, occupancy, and event counters — to JSONL/CSV
// exporters, an in-memory ring buffer, and the optional debug HTTP
// server. See docs/telemetry.md.
type Telemetry = telemetry.Collector

// TelemetryOptions parameterizes a Telemetry collector (window length in
// cycles, ring size, progress logger).
type TelemetryOptions = telemetry.Options

// TelemetryWindow is one completed sampling interval of the series.
type TelemetryWindow = telemetry.Window

// NewTelemetry builds a telemetry collector (default 10k-cycle windows).
func NewTelemetry(o TelemetryOptions) *Telemetry { return telemetry.New(o) }

// SetTelemetry attaches a telemetry collector to the simulator. Must be
// called before Run; a nil collector leaves telemetry disabled. Panics on
// a sharded simulator — pass WithTelemetry to New instead, which reports
// the incompatibility as an error.
func (s *Simulator) SetTelemetry(c *Telemetry) { s.mono("SetTelemetry").SetTelemetry(c) }

// PipeTrace is a pipeline flight recorder: attach one with
// Simulator.SetPipeTrace and the run records one lifecycle record per uop
// (fetch/dispatch/issue/writeback/retire cycles, per-structure residency,
// ACE fate), exportable as a Kanata log, a Chrome trace_event JSON, or
// compact JSONL, and foldable into an AVF provenance report attributing
// each structure's ACE bit-cycles to static instructions. See
// docs/pipetrace.md.
type PipeTrace = pipetrace.Recorder

// PipeTraceOptions parameterizes a flight recorder (sampling window,
// record cap).
type PipeTraceOptions = pipetrace.Options

// PipeTraceRecord is one recorded uop lifecycle.
type PipeTraceRecord = pipetrace.Record

// PipeTraceProvenance is the folded AVF provenance report.
type PipeTraceProvenance = pipetrace.Provenance

// Pipetrace export formats (Simulator traces load in Konata and
// chrome://tracing / Perfetto respectively).
const (
	PipeTraceKanata = pipetrace.FormatKanata
	PipeTraceChrome = pipetrace.FormatChrome
	PipeTraceJSONL  = pipetrace.FormatJSONL
)

// NewPipeTrace builds a pipeline flight recorder.
func NewPipeTrace(o PipeTraceOptions) *PipeTrace { return pipetrace.New(o) }

// SetPipeTrace attaches a flight recorder to the simulator. Must be called
// before Run; a nil recorder leaves tracing disabled. Panics on a sharded
// simulator — pass WithPipeTrace to New instead.
func (s *Simulator) SetPipeTrace(r *PipeTrace) { s.mono("SetPipeTrace").SetPipeTrace(r) }

// FaultCampaign is a statistical fault-injection campaign: it samples the
// machine's state on a regular cycle grid and estimates, per structure,
// the probability that a random particle strike corrupts the program —
// an AVF estimate computed independently of the residency accumulators.
type FaultCampaign = inject.Campaign

// NewFaultCampaign builds a campaign for machines configured like cfg,
// sampling every sampleEvery cycles. Attach it with
// Simulator.InjectFaults before Run; afterwards compare
// campaign.Estimate(s, res.Cycles) with res.StructAVF(s).
func NewFaultCampaign(cfg Config, sampleEvery, seed uint64) (*FaultCampaign, error) {
	return inject.NewCampaign(core.StructBits(cfg), sampleEvery, seed)
}

// InjectFaults attaches a fault-injection campaign to the simulator. Must
// be called before Run. Panics on a sharded simulator — pass
// WithFaultInjection to New instead.
func (s *Simulator) InjectFaults(c *FaultCampaign) { s.mono("InjectFaults").AttachSink(c) }

// PropagationTracer records the per-uop dataflow nodes a strike-propagation
// analysis runs over: after the run, Analyze taint-tracks each of a
// campaign's strikes from its victim instruction through register,
// store-forwarding, memory, and shared-cache edges to its terminal
// (SDC, DUE, corrected, or masked). See docs/propagation.md.
type PropagationTracer = propagation.Tracer

// PropagationOptions parameterizes a tracer (node cap, expansion bounds).
type PropagationOptions = propagation.Options

// PropagationAtlas is the aggregate of a propagation analysis: per-strike
// traces plus root-cause ranking, hop histograms, the thread contamination
// matrix, and per-structure escape routes.
type PropagationAtlas = propagation.Atlas

// PropagationTrace is one strike's propagation record (one JSONL line).
type PropagationTrace = propagation.Trace

// InjectStrike is one sampled fault injection: the struck structure, cycle,
// bit, and owning thread. Draw them with FaultCampaign.SampleStrikes.
type InjectStrike = inject.Strike

// NewPropagation builds a fault-propagation tracer.
func NewPropagation(o PropagationOptions) *PropagationTracer { return propagation.New(o) }

// SetPropagation attaches a propagation tracer to the simulator. Must be
// called before Run; a nil tracer leaves propagation tracing disabled.
// Panics on a sharded simulator — pass WithPropagation to New instead.
func (s *Simulator) SetPropagation(t *PropagationTracer) {
	s.mono("SetPropagation").SetPropagation(t)
}

// WritePropagationTraces writes per-strike propagation traces as versioned
// JSONL to path (.gz compresses); ReadPropagationTraces inverts it.
func WritePropagationTraces(path string, traces []PropagationTrace) error {
	return propagation.WriteFile(path, traces)
}

// ReadPropagationTraces reads traces written by WritePropagationTraces;
// fold them through PropagationAtlas.Add to rebuild the atlas tables.
func ReadPropagationTraces(path string) ([]PropagationTrace, error) {
	return propagation.ReadFile(path)
}

// CPIStack is the explainability observer: per-thread cycle accounting
// (every cycle attributed to one stack component — committing, memory
// stalls, branch recovery, structural stalls, fetch gating) joined with a
// windowed occupancy-by-fate decomposition of the AVF-tracked structures.
// Per-thread components sum exactly to the simulated cycles and the
// occupancy sums match the AVF tracker bit for bit. See docs/cpistack.md.
type CPIStack = cpistack.Observer

// CPIStackOptions parameterizes a CPIStack observer (window length).
type CPIStackOptions = cpistack.Options

// CPIStackWindow is one exported accounting window (one JSONL line).
type CPIStackWindow = cpistack.Window

// NewCPIStack builds an explainability observer.
func NewCPIStack(o CPIStackOptions) *CPIStack { return cpistack.New(o) }

// SetCPIStack attaches an explainability observer to the simulator. Must
// be called before Run, and after InjectFaults when a campaign is also
// attached; a nil observer leaves the layer detached. Panics on a sharded
// simulator — pass WithCPIStack to New instead.
func (s *Simulator) SetCPIStack(o *CPIStack) { s.mono("SetCPIStack").SetCPIStack(o) }

// ReadCPIStackWindows reads a windowed CPI-stack/occupancy series written
// by CPIStack.WriteFile as JSONL.
func ReadCPIStackWindows(path string) ([]CPIStackWindow, error) { return cpistack.ReadFile(path) }

// mono returns the monolithic processor or panics with a pointer at the
// Option-based alternative; the attach methods predate sharding and have
// no error return.
func (s *Simulator) mono(method string) *core.Processor {
	if s.proc == nil {
		panic(fmt.Sprintf("smtavf: %s is not supported on a sharded Simulator; use the matching With* Option", method))
	}
	return s.proc
}

// InjectStats is the result of a sequential strike experiment: the
// per-structure / per-thread strike-outcome taxonomy (masked, SDC, DUE,
// corrected) with Wilson-score confidence intervals on each AVF estimate.
// Produce one with FaultCampaign.RunStrikes after the run.
type InjectStats = inject.Stats

// InjectStop is the sequential stopping rule of a strike experiment.
type InjectStop = inject.Stop

// StopWhen builds the standard stopping rule: strike until every
// structure's confidence-interval half-width drops below halfWidth,
// spending at most maxStrikes strikes per structure.
func StopWhen(halfWidth float64, maxStrikes int) InjectStop {
	return inject.StopWhen(halfWidth, maxStrikes)
}

// ProtectionMode declares a structure's assumed error protection when
// classifying strike outcomes (none / parity / ECC).
type ProtectionMode = core.ProtectionMode

// Protection schemes for strike-outcome classification.
const (
	ProtectNone   = core.ProtectNone
	ProtectParity = core.ProtectParity
	ProtectECC    = core.ProtectECC
)

// ProtectionModes assigns a protection scheme to every structure; pass
// mods.Detections() to FaultCampaign.SetProtection.
type ProtectionModes = core.ProtectionModes

// CrossValReport is the per-structure agreement report between the
// tracker's ACE-residency AVF and a campaign's strike estimate: delta,
// z-score, and a pass/fail verdict against the Wilson CI. See
// docs/injection.md.
type CrossValReport = crossval.Report

// CrossValMeta identifies the run a cross-validation report covers.
type CrossValMeta = crossval.Meta

// CrossValidate builds the agreement report between a finished run's
// tracker AVFs and a completed strike experiment on the campaign that
// observed the same run.
func CrossValidate(meta CrossValMeta, res *Results, stats *InjectStats) *CrossValReport {
	var tracker [avf.NumStructs]float64
	for s := range tracker {
		tracker[s] = res.StructAVF(avf.Struct(s))
	}
	return crossval.Build(meta, tracker, stats)
}

// Observability bundles the campaign-observability handles a run carries:
// a metrics Registry (OpenMetrics at /debug/metrics), a Progress tracker
// (heartbeats and /debug/progress), and a run Ledger (runs.jsonl). Any
// field may be nil. Attach with WithObservability; see docs/campaigns.md.
type Observability = obs.Observability

// MetricsRegistry is the typed metrics registry of the observability
// layer: counters, gauges, and fixed-bucket histograms, exposed as
// OpenMetrics text. Registration takes a short lock; the returned handles
// update with plain atomics.
type MetricsRegistry = obs.Registry

// NewMetricsRegistry builds a registry pre-populated with the process
// runtime family (smtavf_runtime_* in the exposition).
func NewMetricsRegistry() *MetricsRegistry { return obs.NewRegistry() }

// Progress tracks phase-by-phase campaign completion and emits periodic
// heartbeats (fraction, cycles/s, ETA) to slog and /debug/progress.
type Progress = obs.Progress

// ProgressOptions parameterizes a Progress tracker.
type ProgressOptions = obs.ProgressOptions

// NewProgress builds a progress tracker.
func NewProgress(o ProgressOptions) *Progress { return obs.NewProgress(o) }

// RunLedger is the append-only runs.jsonl ledger of RunManifest records.
type RunLedger = obs.Ledger

// RunManifest is one ledger record: the full provenance of one run —
// config digest, seeds, workloads, counts, artifacts, exit status.
type RunManifest = obs.RunManifest

// OpenRunLedger validates path (uncompressed .jsonl only — the ledger is
// appended to) and returns a ledger handle.
func OpenRunLedger(path string) (*RunLedger, error) { return obs.OpenLedger(path) }

// ReadRunLedger reads every manifest in a runs.jsonl, oldest first.
func ReadRunLedger(path string) ([]RunManifest, error) { return obs.ReadLedger(path) }

// Span is one worker-phase interval of a sharded run's utilization
// timeline (Simulator.Timeline).
type Span = obs.Span

// WriteTimeline writes spans as Chrome trace_event JSON for
// chrome://tracing / Perfetto — one row per worker, one slice per phase.
func WriteTimeline(w io.Writer, spans []Span) error { return obs.WriteChromeSpans(w, spans) }
