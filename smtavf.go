// Package smtavf is a microarchitecture-level soft-error vulnerability
// analysis framework for simultaneous multithreaded (SMT) processors — a
// from-scratch reproduction of Zhang, Fu, Li & Fortes, "An Analysis of
// Microarchitecture Vulnerability to Soft Errors on Simultaneous
// Multithreaded Architectures" (ISPASS 2007).
//
// The package simulates a parameterizable out-of-order SMT machine
// (8-wide, shared IQ / register pool / function units / caches, per-thread
// ROB / LSQ / branch state) running synthetic SPEC CPU 2000 workloads, and
// reports per-structure, per-thread Architectural Vulnerability Factors
// alongside performance, under six instruction fetch policies.
//
// Quick start:
//
//	cfg := smtavf.DefaultConfig(4)
//	sim, err := smtavf.NewSimulator(cfg, []string{"mcf", "equake", "vpr", "swim"})
//	if err != nil { ... }
//	res, err := sim.Run(100_000)
//	fmt.Printf("IQ AVF = %.1f%%\n", 100*res.StructAVF(smtavf.IQ))
package smtavf

import (
	"fmt"

	"smtavf/internal/avf"
	"smtavf/internal/core"
	"smtavf/internal/crossval"
	"smtavf/internal/fetch"
	"smtavf/internal/inject"
	"smtavf/internal/pipetrace"
	"smtavf/internal/telemetry"
	"smtavf/internal/trace"
	"smtavf/internal/workload"
)

// Config parameterizes the simulated machine; DefaultConfig reproduces the
// paper's Table 1.
type Config = core.Config

// Results is the outcome of a run: cycles, per-thread commit counts, the
// AVF report, and machine statistics.
type Results = core.Results

// Struct identifies an AVF-instrumented microarchitecture structure.
type Struct = avf.Struct

// Instrumented structures (Figures 1–8).
const (
	IQ      = avf.IQ
	ROB     = avf.ROB
	FU      = avf.FU
	Reg     = avf.Reg
	LSQData = avf.LSQData
	LSQTag  = avf.LSQTag
	DL1Data = avf.DL1Data
	DL1Tag  = avf.DL1Tag
	DTLB    = avf.DTLB
	ITLB    = avf.ITLB
)

// Structs lists the instrumented structures in presentation order.
func Structs() []Struct { return avf.Structs() }

// Mix is one multithreaded workload of the paper's Table 2.
type Mix = workload.Mix

// Policy is an SMT instruction fetch policy.
type Policy = fetch.Policy

// DefaultConfig returns the paper's Table 1 machine with the given number
// of hardware contexts and the ICOUNT fetch policy.
func DefaultConfig(threads int) Config { return core.DefaultConfig(threads) }

// Policies returns the paper's six fetch policies in presentation order.
func Policies() []Policy { return fetch.All() }

// PolicyByName returns the named fetch policy (ICOUNT, STALL, FLUSH, DG,
// PDG, DWarn, or STALLP).
func PolicyByName(name string) (Policy, error) {
	p := fetch.ByName(name)
	if p == nil {
		return nil, fmt.Errorf("smtavf: unknown fetch policy %q", name)
	}
	return p, nil
}

// Benchmarks lists the available synthetic SPEC CPU 2000 benchmark names.
func Benchmarks() []string { return workload.Names() }

// Mixes lists every Table 2 workload mix.
func Mixes() []Mix { return workload.Mixes() }

// MixByName finds a Table 2 mix by its name, e.g. "4ctx-MEM-A".
func MixByName(name string) (Mix, error) {
	for _, m := range workload.Mixes() {
		if m.Name() == name {
			return m, nil
		}
	}
	return Mix{}, fmt.Errorf("smtavf: unknown mix %q (see Mixes)", name)
}

// Simulator runs one workload on one machine configuration. A Simulator is
// single-shot: build a fresh one for each run.
type Simulator struct {
	proc *core.Processor
	used bool
}

// NewSimulator builds a simulator for cfg running the named benchmarks,
// one per hardware context (len(benchmarks) must equal cfg.Threads).
func NewSimulator(cfg Config, benchmarks []string) (*Simulator, error) {
	profiles := make([]trace.Profile, 0, len(benchmarks))
	for _, b := range benchmarks {
		p, err := workload.Profile(b)
		if err != nil {
			return nil, err
		}
		profiles = append(profiles, p)
	}
	proc, err := core.New(cfg, profiles)
	if err != nil {
		return nil, err
	}
	return &Simulator{proc: proc}, nil
}

// NewSimulatorPhased builds a simulator whose contexts alternate among
// several benchmark behaviours every period instructions — a workload
// with program phases. phases[i] lists the benchmarks thread i cycles
// through; len(phases) must equal cfg.Threads. Combine with
// Config.PhaseInterval to watch the AVF move with the phases.
func NewSimulatorPhased(cfg Config, phases [][]string, period uint64) (*Simulator, error) {
	srcs := make([]core.Source, 0, len(phases))
	for i, names := range phases {
		profiles := make([]trace.Profile, 0, len(names))
		for _, n := range names {
			p, err := workload.Profile(n)
			if err != nil {
				return nil, err
			}
			profiles = append(profiles, p)
		}
		gen, err := trace.NewPhased(profiles, period, cfg.Seed+uint64(i)*0x9e37)
		if err != nil {
			return nil, err
		}
		srcs = append(srcs, core.Source{Gen: gen})
	}
	proc, err := core.NewFromSources(cfg, srcs)
	if err != nil {
		return nil, err
	}
	return &Simulator{proc: proc}, nil
}

// NewSimulatorFromTraceFiles builds a simulator whose contexts replay
// recorded instruction traces (cmd/tracegen) instead of generating
// synthetic streams; finite recordings loop. len(paths) must equal
// cfg.Threads.
func NewSimulatorFromTraceFiles(cfg Config, paths []string) (*Simulator, error) {
	srcs := make([]core.Source, 0, len(paths))
	for _, p := range paths {
		r, err := trace.LoadTraceFile(p)
		if err != nil {
			return nil, err
		}
		srcs = append(srcs, core.Source{Gen: r})
	}
	proc, err := core.NewFromSources(cfg, srcs)
	if err != nil {
		return nil, err
	}
	return &Simulator{proc: proc}, nil
}

// Run simulates until total instructions have committed across all threads
// (the paper's stop rule) and returns the results.
func (s *Simulator) Run(total uint64) (*Results, error) {
	return s.run(core.Limits{TotalInstructions: total})
}

// RunPerThread simulates until every thread has committed its quota — used
// to replay each thread's SMT progress in single-thread mode (Figures 3–4).
func (s *Simulator) RunPerThread(quotas []uint64) (*Results, error) {
	return s.run(core.Limits{PerThread: quotas})
}

func (s *Simulator) run(lim core.Limits) (*Results, error) {
	if s.used {
		return nil, fmt.Errorf("smtavf: Simulator is single-shot; build a new one per run")
	}
	s.used = true
	return s.proc.Run(lim)
}

// Telemetry is a cycle-windowed live-metrics collector: attach one with
// Simulator.SetTelemetry and the run emits a per-window time-series of
// IPC, per-structure AVF, occupancy, and event counters — to JSONL/CSV
// exporters, an in-memory ring buffer, and the optional debug HTTP
// server. See docs/telemetry.md.
type Telemetry = telemetry.Collector

// TelemetryOptions parameterizes a Telemetry collector (window length in
// cycles, ring size, progress logger).
type TelemetryOptions = telemetry.Options

// TelemetryWindow is one completed sampling interval of the series.
type TelemetryWindow = telemetry.Window

// NewTelemetry builds a telemetry collector (default 10k-cycle windows).
func NewTelemetry(o TelemetryOptions) *Telemetry { return telemetry.New(o) }

// SetTelemetry attaches a telemetry collector to the simulator. Must be
// called before Run; a nil collector leaves telemetry disabled.
func (s *Simulator) SetTelemetry(c *Telemetry) { s.proc.SetTelemetry(c) }

// PipeTrace is a pipeline flight recorder: attach one with
// Simulator.SetPipeTrace and the run records one lifecycle record per uop
// (fetch/dispatch/issue/writeback/retire cycles, per-structure residency,
// ACE fate), exportable as a Kanata log, a Chrome trace_event JSON, or
// compact JSONL, and foldable into an AVF provenance report attributing
// each structure's ACE bit-cycles to static instructions. See
// docs/pipetrace.md.
type PipeTrace = pipetrace.Recorder

// PipeTraceOptions parameterizes a flight recorder (sampling window,
// record cap).
type PipeTraceOptions = pipetrace.Options

// PipeTraceRecord is one recorded uop lifecycle.
type PipeTraceRecord = pipetrace.Record

// PipeTraceProvenance is the folded AVF provenance report.
type PipeTraceProvenance = pipetrace.Provenance

// Pipetrace export formats (Simulator traces load in Konata and
// chrome://tracing / Perfetto respectively).
const (
	PipeTraceKanata = pipetrace.FormatKanata
	PipeTraceChrome = pipetrace.FormatChrome
	PipeTraceJSONL  = pipetrace.FormatJSONL
)

// NewPipeTrace builds a pipeline flight recorder.
func NewPipeTrace(o PipeTraceOptions) *PipeTrace { return pipetrace.New(o) }

// SetPipeTrace attaches a flight recorder to the simulator. Must be called
// before Run; a nil recorder leaves tracing disabled.
func (s *Simulator) SetPipeTrace(r *PipeTrace) { s.proc.SetPipeTrace(r) }

// FaultCampaign is a statistical fault-injection campaign: it samples the
// machine's state on a regular cycle grid and estimates, per structure,
// the probability that a random particle strike corrupts the program —
// an AVF estimate computed independently of the residency accumulators.
type FaultCampaign = inject.Campaign

// NewFaultCampaign builds a campaign for machines configured like cfg,
// sampling every sampleEvery cycles. Attach it with
// Simulator.InjectFaults before Run; afterwards compare
// campaign.Estimate(s, res.Cycles) with res.StructAVF(s).
func NewFaultCampaign(cfg Config, sampleEvery, seed uint64) (*FaultCampaign, error) {
	return inject.NewCampaign(core.StructBits(cfg), sampleEvery, seed)
}

// InjectFaults attaches a fault-injection campaign to the simulator. Must
// be called before Run.
func (s *Simulator) InjectFaults(c *FaultCampaign) { s.proc.AttachSink(c) }

// InjectStats is the result of a sequential strike experiment: the
// per-structure / per-thread strike-outcome taxonomy (masked, SDC, DUE,
// corrected) with Wilson-score confidence intervals on each AVF estimate.
// Produce one with FaultCampaign.RunStrikes after the run.
type InjectStats = inject.Stats

// InjectStop is the sequential stopping rule of a strike experiment.
type InjectStop = inject.Stop

// StopWhen builds the standard stopping rule: strike until every
// structure's confidence-interval half-width drops below halfWidth,
// spending at most maxStrikes strikes per structure.
func StopWhen(halfWidth float64, maxStrikes int) InjectStop {
	return inject.StopWhen(halfWidth, maxStrikes)
}

// ProtectionMode declares a structure's assumed error protection when
// classifying strike outcomes (none / parity / ECC).
type ProtectionMode = core.ProtectionMode

// Protection schemes for strike-outcome classification.
const (
	ProtectNone   = core.ProtectNone
	ProtectParity = core.ProtectParity
	ProtectECC    = core.ProtectECC
)

// ProtectionModes assigns a protection scheme to every structure; pass
// mods.Detections() to FaultCampaign.SetProtection.
type ProtectionModes = core.ProtectionModes

// CrossValReport is the per-structure agreement report between the
// tracker's ACE-residency AVF and a campaign's strike estimate: delta,
// z-score, and a pass/fail verdict against the Wilson CI. See
// docs/injection.md.
type CrossValReport = crossval.Report

// CrossValMeta identifies the run a cross-validation report covers.
type CrossValMeta = crossval.Meta

// CrossValidate builds the agreement report between a finished run's
// tracker AVFs and a completed strike experiment on the campaign that
// observed the same run.
func CrossValidate(meta CrossValMeta, res *Results, stats *InjectStats) *CrossValReport {
	var tracker [avf.NumStructs]float64
	for s := range tracker {
		tracker[s] = res.StructAVF(avf.Struct(s))
	}
	return crossval.Build(meta, tracker, stats)
}
