module smtavf

go 1.22
