package smtavf_test

import (
	"fmt"
	"log"

	"smtavf"
)

// ExampleNew runs the paper's baseline machine on a two-thread workload
// and prints the vulnerability of the shared instruction queue.
func ExampleNew() {
	cfg := smtavf.DefaultConfig(2)
	sim, err := smtavf.New(cfg, smtavf.WithBenchmarks("bzip2", "mcf"))
	if err != nil {
		log.Fatal(err)
	}
	res, err := sim.Run(10_000)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(res.Total >= 10_000)
	fmt.Println(res.StructAVF(smtavf.IQ) > 0 && res.StructAVF(smtavf.IQ) < 1)
	// Output:
	// true
	// true
}

// ExamplePolicyByName selects a fetch policy for a configuration.
func ExamplePolicyByName() {
	p, err := smtavf.PolicyByName("FLUSH")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(p.Name())
	// Output:
	// FLUSH
}

// ExampleMixByName looks up a workload mix from the paper's Table 2.
func ExampleMixByName() {
	m, err := smtavf.MixByName("4ctx-MEM-A")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(m.Contexts, m.Benchmarks)
	// Output:
	// 4 [mcf equake vpr swim]
}

// ExampleNewFaultCampaign cross-validates the ACE-based AVF with
// statistical fault injection.
func ExampleNewFaultCampaign() {
	cfg := smtavf.DefaultConfig(1)
	camp, err := smtavf.NewFaultCampaign(cfg, 1, 7)
	if err != nil {
		log.Fatal(err)
	}
	sim, err := smtavf.New(cfg,
		smtavf.WithBenchmarks("gcc"),
		smtavf.WithFaultInjection(camp))
	if err != nil {
		log.Fatal(err)
	}
	res, err := sim.Run(10_000)
	if err != nil {
		log.Fatal(err)
	}
	computed := res.StructAVF(smtavf.ROB)
	estimated := camp.Estimate(smtavf.ROB, res.Cycles)
	diff := computed - estimated
	if diff < 0 {
		diff = -diff
	}
	fmt.Println(diff < 0.01)
	// Output:
	// true
}

// ExampleNew_sharded splits a run into parallel deterministic intervals:
// commit counts stay exact and per-structure AVFs agree with the
// monolithic run within smtavf.ShardTolerance (see docs/sharding.md).
func ExampleNew_sharded() {
	cfg := smtavf.DefaultConfig(2)
	sim, err := smtavf.New(cfg,
		smtavf.WithBenchmarks("gcc", "mcf"),
		smtavf.WithShards(4, 2))
	if err != nil {
		log.Fatal(err)
	}
	res, err := sim.RunPerThread([]uint64{20_000, 20_000})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(res.Committed[0], res.Committed[1])
	// Output:
	// 20000 20000
}
