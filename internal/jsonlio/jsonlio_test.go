package jsonlio

import (
	"bytes"
	"fmt"
	"path/filepath"
	"testing"
)

type rec struct {
	V    int    `json:"v"`
	Name string `json:"name"`
	N    uint64 `json:"n"`
}

func sample() []rec {
	return []rec{
		{V: 1, Name: "alpha", N: 7},
		{V: 1, Name: "beta", N: 0},
		{V: 1, Name: "gamma", N: 1 << 40},
	}
}

func TestRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteLines(&buf, sample()); err != nil {
		t.Fatal(err)
	}
	got, err := ReadLines[rec](&buf, nil)
	if err != nil {
		t.Fatal(err)
	}
	want := sample()
	if len(got) != len(want) {
		t.Fatalf("read %d records, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("record %d = %+v, want %+v", i, got[i], want[i])
		}
	}
}

func TestFileRoundTripGzipAndPlain(t *testing.T) {
	dir := t.TempDir()
	for _, name := range []string{"out.jsonl", "out.jsonl.gz", "OUT.JSONL.GZ"} {
		path := filepath.Join(dir, name)
		if err := WriteFile(path, sample()); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		got, err := ReadFile[rec](path, nil)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if len(got) != len(sample()) {
			t.Errorf("%s: read %d records, want %d", name, len(got), len(sample()))
		}
	}
}

func TestIsGzipPath(t *testing.T) {
	cases := map[string]bool{
		"a.jsonl":    false,
		"a.jsonl.gz": true,
		"a.CSV.GZ":   true,
		"a.gz.jsonl": false,
	}
	for path, want := range cases {
		if got := IsGzipPath(path); got != want {
			t.Errorf("IsGzipPath(%q) = %v, want %v", path, got, want)
		}
	}
}

func TestCheckRejects(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteLines(&buf, []rec{{V: 1}, {V: 99}}); err != nil {
		t.Fatal(err)
	}
	_, err := ReadLines(&buf, func(r *rec) error {
		if r.V != 1 {
			return fmt.Errorf("schema v%d, want v1", r.V)
		}
		return nil
	})
	if err == nil {
		t.Fatal("version check did not reject a v99 record")
	}
}

func TestReadFileMissing(t *testing.T) {
	if _, err := ReadFile[rec](filepath.Join(t.TempDir(), "absent.jsonl"), nil); err == nil {
		t.Fatal("reading a missing file succeeded")
	}
}
