// Package jsonlio centralizes the versioned-JSONL file plumbing shared by
// every serialized record stream in the simulator: telemetry windows,
// pipetrace flight recordings, crossval agreement reports, and propagation
// traces. Each stream writes one JSON object per line, stamps a schema
// version into every line's "v" field, and is gzip-aware on both ends
// (paths ending in ".gz" compress transparently).
//
// The package exists because three packages grew three private copies of
// the same gzip writer, scanner loop, and version check; a fourth consumer
// (internal/propagation) made the extraction worthwhile. The helpers are
// deliberately small: open a possibly-compressed stream, encode/decode a
// record slice, and let the caller validate each record's version with a
// closure (packages differ on whether they reject any mismatch or only
// newer-than-supported versions).
package jsonlio

import (
	"compress/gzip"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"strings"
)

// IsGzipPath reports whether path names a gzip-compressed stream (a ".gz"
// suffix, case-insensitive).
func IsGzipPath(path string) bool {
	return strings.HasSuffix(strings.ToLower(path), ".gz")
}

// OpenWriter creates path for writing, transparently wrapping the stream
// in gzip compression when the name ends in ".gz". Close flushes the
// compressor before closing the file.
func OpenWriter(path string) (io.WriteCloser, error) {
	f, err := os.Create(path)
	if err != nil {
		return nil, err
	}
	if IsGzipPath(path) {
		return &gzipWriteCloser{gz: gzip.NewWriter(f), f: f}, nil
	}
	return f, nil
}

// AppendLine appends rec to path as one JSONL line, opening the file in
// append mode so concurrent writers interleave at line granularity — the
// run-ledger idiom. Gzip paths are rejected: a gzip stream cannot be
// appended to without corrupting the member that precedes it.
func AppendLine(path string, rec any) error {
	if IsGzipPath(path) {
		return fmt.Errorf("jsonlio: cannot append to gzip stream %q", path)
	}
	data, err := json.Marshal(rec)
	if err != nil {
		return err
	}
	f, err := os.OpenFile(path, os.O_APPEND|os.O_CREATE|os.O_WRONLY, 0o644)
	if err != nil {
		return err
	}
	_, werr := f.Write(append(data, '\n'))
	if cerr := f.Close(); werr == nil {
		werr = cerr
	}
	return werr
}

// OpenReader opens path for reading, transparently decompressing when the
// name ends in ".gz". Close releases both the decompressor and the file.
func OpenReader(path string) (io.ReadCloser, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	if !IsGzipPath(path) {
		return f, nil
	}
	gz, err := gzip.NewReader(f)
	if err != nil {
		f.Close()
		return nil, err
	}
	return &gzipReadCloser{gz: gz, f: f}, nil
}

// gzipWriteCloser couples a gzip compressor to its backing file so a
// single Close finishes both.
type gzipWriteCloser struct {
	gz *gzip.Writer
	f  *os.File
}

func (g *gzipWriteCloser) Write(p []byte) (int, error) { return g.gz.Write(p) }

func (g *gzipWriteCloser) Close() error {
	err := g.gz.Close()
	if cerr := g.f.Close(); err == nil {
		err = cerr
	}
	return err
}

// gzipReadCloser couples a gzip decompressor to its backing file so a
// single Close releases both.
type gzipReadCloser struct {
	gz *gzip.Reader
	f  *os.File
}

func (g *gzipReadCloser) Read(p []byte) (int, error) { return g.gz.Read(p) }

func (g *gzipReadCloser) Close() error {
	err := g.gz.Close()
	if cerr := g.f.Close(); err == nil {
		err = cerr
	}
	return err
}

// WriteLines encodes recs as one JSON object per line.
func WriteLines[T any](w io.Writer, recs []T) error {
	enc := json.NewEncoder(w)
	for i := range recs {
		if err := enc.Encode(&recs[i]); err != nil {
			return err
		}
	}
	return nil
}

// WriteFile writes recs as JSONL to path (".gz" compresses).
func WriteFile[T any](path string, recs []T) error {
	w, err := OpenWriter(path)
	if err != nil {
		return err
	}
	if err := WriteLines(w, recs); err != nil {
		w.Close()
		return err
	}
	return w.Close()
}

// ReadLines decodes a JSONL stream produced by WriteLines. check, when
// non-nil, validates each decoded record (typically its schema version)
// before it is appended; a check error aborts the read.
func ReadLines[T any](r io.Reader, check func(*T) error) ([]T, error) {
	dec := json.NewDecoder(r)
	var out []T
	for dec.More() {
		var rec T
		if err := dec.Decode(&rec); err != nil {
			return nil, err
		}
		if check != nil {
			if err := check(&rec); err != nil {
				return nil, err
			}
		}
		out = append(out, rec)
	}
	return out, nil
}

// ReadFile reads a JSONL file written by WriteFile, transparently
// decompressing ".gz" paths; check validates each record as in ReadLines.
func ReadFile[T any](path string, check func(*T) error) ([]T, error) {
	r, err := OpenReader(path)
	if err != nil {
		return nil, err
	}
	defer r.Close()
	return ReadLines(r, check)
}
