package obs

import (
	"fmt"
	"io"
	"strconv"
	"strings"
)

// ContentTypeOpenMetrics is the media type /debug/metrics serves; the
// text is also valid Prometheus exposition format, so any scraper works.
const ContentTypeOpenMetrics = "application/openmetrics-text; version=1.0.0; charset=utf-8"

// MetricPrefix namespaces every exposed family: the registry's internal
// dotted names (inject.strikes) become smtavf_inject_strikes on the wire.
const MetricPrefix = "smtavf_"

// ExpositionName maps a registry name onto its OpenMetrics family name:
// the smtavf_ prefix plus the name with every character outside
// [a-zA-Z0-9_:] replaced by '_'. Dotted legacy names (inject.halfwidth.IQ)
// stay one family each — the /debug/vars compatibility contract keeps
// their identity flat rather than re-encoding suffixes as labels.
func ExpositionName(name string) string {
	var b strings.Builder
	b.Grow(len(MetricPrefix) + len(name))
	b.WriteString(MetricPrefix)
	for i := 0; i < len(name); i++ {
		c := name[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '_', c == ':':
			b.WriteByte(c)
		case c >= '0' && c <= '9':
			if i == 0 {
				b.WriteByte('_')
			}
			b.WriteByte(c)
		default:
			b.WriteByte('_')
		}
	}
	return b.String()
}

// escapeLabel escapes a label value per the exposition format.
func escapeLabel(v string) string {
	v = strings.ReplaceAll(v, `\`, `\\`)
	v = strings.ReplaceAll(v, "\n", `\n`)
	return strings.ReplaceAll(v, `"`, `\"`)
}

// labelString renders a label set as {a="x",b="y"} ("" when empty).
func labelString(labels []Label, extra ...Label) string {
	all := append(append([]Label(nil), labels...), extra...)
	if len(all) == 0 {
		return ""
	}
	parts := make([]string, len(all))
	for i, l := range all {
		parts[i] = fmt.Sprintf("%s=%q", l.Name, escapeLabel(l.Value))
	}
	return "{" + strings.Join(parts, ",") + "}"
}

func formatValue(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }

// WriteOpenMetrics writes the registry's current state in OpenMetrics
// text format: one # HELP/# TYPE header per family, every labeled series
// under it, histograms expanded to _bucket/_sum/_count, terminated by
// # EOF. Families appear in registration order; series within a family
// in registration order too, so successive scrapes of the same process
// are line-stable.
func (r *Registry) WriteOpenMetrics(w io.Writer) error {
	if r == nil {
		_, err := io.WriteString(w, "# EOF\n")
		return err
	}
	metrics := r.snapshot()

	// Group series into families by exposition name, preserving first-seen
	// order (a family's TYPE/HELP must precede all of its samples).
	type family struct {
		name   string
		help   string
		kind   metricKind
		series []*metric
	}
	var order []string
	fams := map[string]*family{}
	for _, m := range metrics {
		en := ExpositionName(m.name)
		f, ok := fams[en]
		if !ok {
			f = &family{name: en, help: m.help, kind: m.kind}
			fams[en] = f
			order = append(order, en)
		}
		if f.help == "" {
			f.help = m.help
		}
		f.series = append(f.series, m)
	}

	var b strings.Builder
	for _, en := range order {
		f := fams[en]
		if f.help != "" {
			fmt.Fprintf(&b, "# HELP %s %s\n", f.name, strings.ReplaceAll(f.help, "\n", " "))
		}
		typ := "gauge"
		switch f.kind {
		case kindCounter:
			typ = "counter"
		case kindHistogram:
			typ = "histogram"
		}
		fmt.Fprintf(&b, "# TYPE %s %s\n", f.name, typ)
		for _, m := range f.series {
			switch m.kind {
			case kindCounter:
				fmt.Fprintf(&b, "%s%s %d\n", f.name, labelString(m.labels), m.counter.Value())
			case kindGauge:
				fmt.Fprintf(&b, "%s%s %s\n", f.name, labelString(m.labels), formatValue(m.gauge.Value()))
			case kindGaugeFunc:
				fmt.Fprintf(&b, "%s%s %s\n", f.name, labelString(m.labels), formatValue(m.fn()))
			case kindHistogram:
				cum := m.hist.cumulative()
				for i, bound := range m.hist.bounds {
					le := Label{Name: "le", Value: formatValue(bound)}
					fmt.Fprintf(&b, "%s_bucket%s %d\n", f.name, labelString(m.labels, le), cum[i])
				}
				inf := Label{Name: "le", Value: "+Inf"}
				fmt.Fprintf(&b, "%s_bucket%s %d\n", f.name, labelString(m.labels, inf), cum[len(cum)-1])
				fmt.Fprintf(&b, "%s_sum%s %s\n", f.name, labelString(m.labels), formatValue(m.hist.Sum()))
				fmt.Fprintf(&b, "%s_count%s %d\n", f.name, labelString(m.labels), m.hist.Count())
			}
		}
	}
	b.WriteString("# EOF\n")
	_, err := io.WriteString(w, b.String())
	return err
}
