package obs

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// fixedManifests builds a deterministic ledger for the golden tests —
// NewManifest stamps wall times and pids, so the round-trip fixtures are
// built by hand.
func fixedManifests() []RunManifest {
	return []RunManifest{
		{
			V: 1, ID: "smtsim-20260801T120000-1-1", Kind: "run",
			Program: "smtsim", ConfigDigest: "a1b2c3d4e5f6", Seed: 1, Policy: "ICOUNT",
			Workloads: []string{"mcf", "gcc"},
			Start:     "2026-08-01T12:00:00Z", End: "2026-08-01T12:00:09Z", WallSeconds: 9,
			Cycles: 123456, Instructions: 100000, Shards: 1,
			Status: StatusOK,
			Artifacts: []Artifact{
				{Kind: "telemetry", Path: "run.jsonl.gz"},
				{Kind: "crossval", Path: "xval.jsonl"},
			},
		},
		{
			V: 1, ID: "avfsweep-20260801T130000-2-1", Kind: "sweep-point",
			Program: "avfsweep", ConfigDigest: "ffeeddccbbaa", Seed: 7, CampaignSeed: 9,
			Policy: "FLUSH", Workloads: []string{"mcf", "equake", "vpr", "swim"},
			Start: "2026-08-01T13:00:00Z", End: "2026-08-01T13:01:40Z", WallSeconds: 100,
			Cycles: 777777, Strikes: 4096,
			Status: StatusInterrupted, Error: "signal: interrupt",
		},
	}
}

func TestLedgerAppendReadRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "runs.jsonl")
	l, err := OpenLedger(path)
	if err != nil {
		t.Fatal(err)
	}
	want := fixedManifests()
	for i := range want {
		if err := l.Append(&want[i]); err != nil {
			t.Fatal(err)
		}
	}
	got, err := ReadLedger(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("read %d records, want %d", len(got), len(want))
	}
	for i := range want {
		a, _ := json.Marshal(want[i])
		b, _ := json.Marshal(got[i])
		if string(a) != string(b) {
			t.Errorf("record %d round-trip mismatch:\n  wrote %s\n  read  %s", i, a, b)
		}
	}
}

func TestLedgerAppendIsAppendOnly(t *testing.T) {
	path := filepath.Join(t.TempDir(), "runs.jsonl")
	l, _ := OpenLedger(path)
	ms := fixedManifests()
	if err := l.Append(&ms[0]); err != nil {
		t.Fatal(err)
	}
	// A second handle on the same path (another process in real life)
	// must append, not truncate.
	l2, _ := OpenLedger(path)
	if err := l2.Append(&ms[1]); err != nil {
		t.Fatal(err)
	}
	got, err := ReadLedger(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 {
		t.Fatalf("ledger has %d records, want 2 (append truncated?)", len(got))
	}
}

func TestLedgerRejectsGzipAndEmpty(t *testing.T) {
	if _, err := OpenLedger("runs.jsonl.gz"); err == nil {
		t.Fatalf("gzip ledger path accepted")
	}
	if _, err := OpenLedger(""); err == nil {
		t.Fatalf("empty ledger path accepted")
	}
}

func TestLedgerRejectsNewerSchema(t *testing.T) {
	path := filepath.Join(t.TempDir(), "runs.jsonl")
	if err := os.WriteFile(path, []byte(`{"v":99,"id":"x","kind":"run","status":"ok"}`+"\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadLedger(path); err == nil {
		t.Fatalf("newer-schema record accepted")
	}
}

func TestLedgerNilSafety(t *testing.T) {
	var l *Ledger
	if err := l.Append(&RunManifest{}); err != nil {
		t.Fatalf("nil ledger append: %v", err)
	}
	if l.Path() != "" {
		t.Fatalf("nil ledger path = %q", l.Path())
	}
	var m *RunManifest
	m.AddArtifact("x", "y")
	m.Finish(StatusOK, nil)
}

// TestFormatRunsGolden pins the -runs listing byte for byte.
func TestFormatRunsGolden(t *testing.T) {
	got := FormatRuns(fixedManifests(), RunFilter{})
	golden := filepath.Join("testdata", "runs_list.golden")
	if os.Getenv("UPDATE_GOLDEN") != "" {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("missing golden (run with UPDATE_GOLDEN=1): %v", err)
	}
	if got != string(want) {
		t.Errorf("-runs listing drifted from golden:\n got:\n%s\nwant:\n%s", got, want)
	}
}

func TestFormatRunsFilter(t *testing.T) {
	ms := fixedManifests()
	out := FormatRuns(ms, RunFilter{Status: StatusInterrupted})
	if !strings.Contains(out, "1 runs") || !strings.Contains(out, "avfsweep-") {
		t.Fatalf("status filter failed:\n%s", out)
	}
	out = FormatRuns(ms, RunFilter{Program: "smtsim", Kind: "run"})
	if !strings.Contains(out, "1 runs") || !strings.Contains(out, "smtsim-") {
		t.Fatalf("program+kind filter failed:\n%s", out)
	}
}

func TestFindRun(t *testing.T) {
	ms := fixedManifests()
	m, err := FindRun(ms, "smtsim-20260801T120000-1-1")
	if err != nil || m.Program != "smtsim" {
		t.Fatalf("exact find: %v %+v", err, m)
	}
	if m, err = FindRun(ms, "avfsweep-"); err != nil || m.Kind != "sweep-point" {
		t.Fatalf("prefix find: %v", err)
	}
	if _, err = FindRun(ms, "nope"); err == nil {
		t.Fatalf("missing id found")
	}
	two := append(append([]RunManifest(nil), ms...), ms[0]) // duplicate prefix
	if _, err = FindRun(two, "smtsim-"); err == nil {
		t.Fatalf("ambiguous prefix resolved")
	}
}

func TestNewManifestFillsProvenance(t *testing.T) {
	m := NewManifest("run", "smtsim")
	if m.V != LedgerSchemaVersion || m.Kind != "run" || m.Program != "smtsim" {
		t.Fatalf("manifest header: %+v", m)
	}
	if m.ID == "" || m.Start == "" {
		t.Fatalf("manifest missing id/start: %+v", m)
	}
	m2 := NewManifest("run", "smtsim")
	if m.ID == m2.ID {
		t.Fatalf("two manifests share an id: %s", m.ID)
	}
	m.AddArtifact("telemetry", "a.jsonl")
	m.AddArtifact("telemetry", "") // empty path is dropped
	if len(m.Artifacts) != 1 {
		t.Fatalf("artifacts = %+v", m.Artifacts)
	}
	m.Finish(StatusOK, os.ErrClosed)
	if m.Status != StatusError || m.Error == "" || m.End == "" {
		t.Fatalf("finish with error: %+v", m)
	}
}
