package obs

import (
	"fmt"
	"math"
	"runtime"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing metric. The zero value is ready
// to use; a nil *Counter is a no-op, so hot paths holding a detached
// handle pay one predictable branch. Updates are atomic: scrapes read
// mid-run.
type Counter struct{ v atomic.Uint64 }

// Add increments the counter by n.
func (c *Counter) Add(n uint64) {
	if c != nil {
		c.v.Add(n)
	}
}

// Inc increments the counter by one.
func (c *Counter) Inc() { c.Add(1) }

// Value returns the current count (0 for a nil counter).
func (c *Counter) Value() uint64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a point-in-time metric; nil-safety matches Counter.
type Gauge struct{ bits atomic.Uint64 }

// Set stores v.
func (g *Gauge) Set(v float64) {
	if g != nil {
		g.bits.Store(math.Float64bits(v))
	}
}

// SetUint stores an integer-valued gauge (cycle counts).
func (g *Gauge) SetUint(v uint64) { g.Set(float64(v)) }

// Value returns the last stored value (0 for a nil gauge).
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

// Histogram is a fixed-bucket cumulative histogram. Buckets are upper
// bounds in ascending order; an implicit +Inf bucket catches the rest.
// Observe is lock-free (one atomic add per bucket walk plus a CAS loop
// for the sum), so recording a duration costs nanoseconds.
type Histogram struct {
	bounds  []float64
	buckets []atomic.Uint64 // counts per bound, same index
	inf     atomic.Uint64   // +Inf bucket
	count   atomic.Uint64
	sumBits atomic.Uint64 // float64 sum, CAS-updated
}

func newHistogram(bounds []float64) *Histogram {
	h := &Histogram{
		bounds:  append([]float64(nil), bounds...),
		buckets: make([]atomic.Uint64, len(bounds)),
	}
	if !sort.Float64sAreSorted(h.bounds) {
		panic("obs: histogram bucket bounds must be ascending")
	}
	return h
}

// Observe records one sample (no-op on a nil histogram).
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	placed := false
	for i, b := range h.bounds {
		if v <= b {
			h.buckets[i].Add(1)
			placed = true
			break
		}
	}
	if !placed {
		h.inf.Add(1)
	}
	h.count.Add(1)
	for {
		old := h.sumBits.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sumBits.CompareAndSwap(old, next) {
			return
		}
	}
}

// ObserveSince records the seconds elapsed since t — the idiom for phase
// timing spans.
func (h *Histogram) ObserveSince(t time.Time) { h.Observe(time.Since(t).Seconds()) }

// Count returns the total number of samples.
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the sum of all samples.
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return math.Float64frombits(h.sumBits.Load())
}

// cumulative returns the cumulative per-bound counts (ending with the
// +Inf total). The snapshot is not atomic across buckets, which
// OpenMetrics tolerates: scrapes of a live process are always slightly
// torn and monotone counters make the tear harmless.
func (h *Histogram) cumulative() []uint64 {
	out := make([]uint64, len(h.bounds)+1)
	var cum uint64
	for i := range h.bounds {
		cum += h.buckets[i].Load()
		out[i] = cum
	}
	out[len(h.bounds)] = cum + h.inf.Load()
	return out
}

// Label is one metric dimension ({phase="warmup"}).
type Label struct{ Name, Value string }

// metricKind discriminates the typed registry entries.
type metricKind int

const (
	kindCounter metricKind = iota
	kindGauge
	kindHistogram
	kindGaugeFunc
)

func (k metricKind) String() string {
	switch k {
	case kindCounter:
		return "counter"
	case kindHistogram:
		return "histogram"
	default:
		return "gauge"
	}
}

// metric is one registered instrument: a family name (possibly dotted —
// the exposition sanitizes), an optional label set, and exactly one of
// the typed values.
type metric struct {
	name   string
	help   string
	labels []Label
	kind   metricKind

	counter *Counter
	gauge   *Gauge
	hist    *Histogram
	fn      func() float64
}

// Registry is a typed metrics registry: registration takes a short
// mutex, after which updates on the returned handles are plain atomics —
// lock-cheap by construction, cheap enough for campaign-rate events
// (windows, strikes, shards), and deliberately not wired into the
// per-cycle hot loop. Registering the same name+labels again returns the
// existing instrument; registering it as a different type panics (a
// programming error, caught loudly like expvar does).
type Registry struct {
	start time.Time

	mu      sync.Mutex
	metrics map[string]*metric
	order   []string // registration order, for stable exposition
}

// NewRegistry builds a registry pre-populated with the process runtime
// family (runtime.goroutines, runtime.heap_alloc_bytes, runtime.gc_runs,
// runtime.uptime_seconds), sampled lazily at scrape time.
func NewRegistry() *Registry {
	r := &Registry{start: time.Now(), metrics: make(map[string]*metric)}
	r.GaugeFunc("runtime.goroutines", "live goroutines in the process",
		func() float64 { return float64(runtime.NumGoroutine()) })
	r.GaugeFunc("runtime.heap_alloc_bytes", "bytes of allocated heap objects",
		func() float64 {
			var ms runtime.MemStats
			runtime.ReadMemStats(&ms)
			return float64(ms.HeapAlloc)
		})
	r.GaugeFunc("runtime.gc_runs", "completed GC cycles",
		func() float64 {
			var ms runtime.MemStats
			runtime.ReadMemStats(&ms)
			return float64(ms.NumGC)
		})
	r.GaugeFunc("runtime.uptime_seconds", "seconds since the registry was built",
		func() float64 { return time.Since(r.start).Seconds() })
	return r
}

// key is the metric identity: family name plus the sorted label set.
func key(name string, labels []Label) string {
	if len(labels) == 0 {
		return name
	}
	ls := append([]Label(nil), labels...)
	sort.Slice(ls, func(i, j int) bool { return ls[i].Name < ls[j].Name })
	var b strings.Builder
	b.WriteString(name)
	for _, l := range ls {
		b.WriteByte('{')
		b.WriteString(l.Name)
		b.WriteByte('=')
		b.WriteString(l.Value)
		b.WriteByte('}')
	}
	return b.String()
}

// register returns the existing metric under k or installs m.
func (r *Registry) register(k string, m *metric) *metric {
	r.mu.Lock()
	defer r.mu.Unlock()
	if prev, ok := r.metrics[k]; ok {
		if prev.kind != m.kind {
			panic(fmt.Sprintf("obs: metric %q re-registered as %s (was %s)", k, m.kind, prev.kind))
		}
		if prev.help == "" {
			prev.help = m.help
		}
		return prev
	}
	r.metrics[k] = m
	r.order = append(r.order, k)
	return m
}

// Counter registers (or finds) a counter. A nil registry returns a nil
// handle, whose methods are no-ops.
func (r *Registry) Counter(name, help string, labels ...Label) *Counter {
	if r == nil {
		return nil
	}
	m := r.register(key(name, labels), &metric{
		name: name, help: help, labels: labels, kind: kindCounter, counter: new(Counter),
	})
	return m.counter
}

// Gauge registers (or finds) a gauge; nil-registry semantics match Counter.
func (r *Registry) Gauge(name, help string, labels ...Label) *Gauge {
	if r == nil {
		return nil
	}
	m := r.register(key(name, labels), &metric{
		name: name, help: help, labels: labels, kind: kindGauge, gauge: new(Gauge),
	})
	return m.gauge
}

// GaugeFunc registers a gauge computed at scrape time (runtime stats).
func (r *Registry) GaugeFunc(name, help string, fn func() float64, labels ...Label) {
	if r == nil || fn == nil {
		return
	}
	r.register(key(name, labels), &metric{
		name: name, help: help, labels: labels, kind: kindGaugeFunc, fn: fn,
	})
}

// Histogram registers (or finds) a fixed-bucket histogram. bounds are
// ascending upper bounds; an implicit +Inf bucket is always present.
func (r *Registry) Histogram(name, help string, bounds []float64, labels ...Label) *Histogram {
	if r == nil {
		return nil
	}
	m := r.register(key(name, labels), &metric{
		name: name, help: help, labels: labels, kind: kindHistogram, hist: newHistogram(bounds),
	})
	return m.hist
}

// Names returns every registered metric key in registration order.
func (r *Registry) Names() []string {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]string(nil), r.order...)
}

// Has reports whether a metric with the given name (any label set) is
// registered — the name-parity tests use it.
func (r *Registry) Has(name string) bool {
	if r == nil {
		return false
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, m := range r.metrics {
		if m.name == name {
			return true
		}
	}
	return false
}

// snapshot returns the metrics in registration order for exposition.
func (r *Registry) snapshot() []*metric {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]*metric, 0, len(r.order))
	for _, k := range r.order {
		out = append(out, r.metrics[k])
	}
	return out
}

// DefaultDurationBuckets are the seconds buckets the phase-duration
// histograms use: sub-millisecond warmups through minute-scale shards.
var DefaultDurationBuckets = []float64{
	0.001, 0.005, 0.01, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10, 30, 60,
}
