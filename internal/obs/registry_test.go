package obs

import (
	"strings"
	"sync"
	"testing"
)

func TestCounterGaugeNilSafety(t *testing.T) {
	var c *Counter
	c.Add(3)
	c.Inc()
	if c.Value() != 0 {
		t.Fatalf("nil counter value = %d", c.Value())
	}
	var g *Gauge
	g.Set(1.5)
	g.SetUint(7)
	if g.Value() != 0 {
		t.Fatalf("nil gauge value = %v", g.Value())
	}
	var h *Histogram
	h.Observe(1)
	if h.Count() != 0 || h.Sum() != 0 {
		t.Fatalf("nil histogram observed something")
	}
	var r *Registry
	if r.Counter("x", "") != nil || r.Gauge("x", "") != nil || r.Histogram("x", "", nil) != nil {
		t.Fatalf("nil registry handed out live instruments")
	}
	if err := r.WriteOpenMetrics(&strings.Builder{}); err != nil {
		t.Fatalf("nil registry exposition: %v", err)
	}
}

func TestRegistryReuseAndIdentity(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("inject.events", "strike-grid events")
	b := r.Counter("inject.events", "")
	if a != b {
		t.Fatalf("same name returned distinct counters")
	}
	a.Add(5)
	if b.Value() != 5 {
		t.Fatalf("aliased counter diverged: %d", b.Value())
	}

	l1 := r.Gauge("shard.phase", "", Label{"phase", "warmup"})
	l2 := r.Gauge("shard.phase", "", Label{"phase", "run"})
	l1again := r.Gauge("shard.phase", "", Label{"phase", "warmup"})
	if l1 == l2 {
		t.Fatalf("distinct label sets shared a gauge")
	}
	if l1 != l1again {
		t.Fatalf("same label set returned distinct gauges")
	}
}

func TestRegistryTypeMismatchPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("x", "")
	defer func() {
		if recover() == nil {
			t.Fatalf("re-registering a counter as a gauge did not panic")
		}
	}()
	r.Gauge("x", "")
}

func TestHistogramBuckets(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("dur", "", []float64{0.1, 1, 10})
	for _, v := range []float64{0.05, 0.5, 0.5, 5, 50} {
		h.Observe(v)
	}
	if h.Count() != 5 {
		t.Fatalf("count = %d, want 5", h.Count())
	}
	if got, want := h.Sum(), 0.05+0.5+0.5+5+50; got != want {
		t.Fatalf("sum = %v, want %v", got, want)
	}
	cum := h.cumulative()
	want := []uint64{1, 3, 4, 5}
	for i := range want {
		if cum[i] != want[i] {
			t.Fatalf("cumulative[%d] = %d, want %d (%v)", i, cum[i], want[i], cum)
		}
	}
}

func TestRegistryConcurrentUse(t *testing.T) {
	r := NewRegistry()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			c := r.Counter("concurrent.events", "")
			h := r.Histogram("concurrent.dur", "", DefaultDurationBuckets)
			for j := 0; j < 1000; j++ {
				c.Inc()
				h.Observe(0.01)
			}
		}()
	}
	wg.Wait()
	if got := r.Counter("concurrent.events", "").Value(); got != 8000 {
		t.Fatalf("counter = %d, want 8000", got)
	}
	if got := r.Histogram("concurrent.dur", "", DefaultDurationBuckets).Count(); got != 8000 {
		t.Fatalf("histogram count = %d, want 8000", got)
	}
}

func TestRuntimeFamilyRegistered(t *testing.T) {
	r := NewRegistry()
	for _, name := range []string{
		"runtime.goroutines", "runtime.heap_alloc_bytes", "runtime.gc_runs", "runtime.uptime_seconds",
	} {
		if !r.Has(name) {
			t.Fatalf("runtime metric %q not pre-registered", name)
		}
	}
}
