package obs

import (
	"strings"
	"testing"
)

func TestExpositionName(t *testing.T) {
	cases := map[string]string{
		"inject.strikes":      "smtavf_inject_strikes",
		"inject.halfwidth.IQ": "smtavf_inject_halfwidth_IQ",
		"sim.cycle":           "smtavf_sim_cycle",
		"already_clean":       "smtavf_already_clean",
		"weird-name/x":        "smtavf_weird_name_x",
	}
	for in, want := range cases {
		if got := ExpositionName(in); got != want {
			t.Errorf("ExpositionName(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestWriteOpenMetricsAndLint(t *testing.T) {
	r := NewRegistry()
	r.Counter("inject.events", "events seen").Add(42)
	r.Gauge("inject.halfwidth.IQ", "CI half-width").Set(0.0125)
	h := r.Histogram("shard.phase_seconds", "phase durations",
		[]float64{0.1, 1}, Label{"phase", "run"})
	h.Observe(0.05)
	h.Observe(0.5)
	h.Observe(5)

	var b strings.Builder
	if err := r.WriteOpenMetrics(&b); err != nil {
		t.Fatal(err)
	}
	text := b.String()
	if err := Lint(text); err != nil {
		t.Fatalf("exposition fails its own linter: %v\n%s", err, text)
	}

	for _, want := range []string{
		"# TYPE smtavf_inject_events counter",
		"smtavf_inject_events 42",
		"# HELP smtavf_inject_events events seen",
		"# TYPE smtavf_inject_halfwidth_IQ gauge",
		"smtavf_inject_halfwidth_IQ 0.0125",
		"# TYPE smtavf_shard_phase_seconds histogram",
		`smtavf_shard_phase_seconds_bucket{phase="run",le="0.1"} 1`,
		`smtavf_shard_phase_seconds_bucket{phase="run",le="1"} 2`,
		`smtavf_shard_phase_seconds_bucket{phase="run",le="+Inf"} 3`,
		`smtavf_shard_phase_seconds_sum{phase="run"} 5.55`,
		`smtavf_shard_phase_seconds_count{phase="run"} 3`,
		"# TYPE smtavf_runtime_goroutines gauge",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("exposition missing %q:\n%s", want, text)
		}
	}
	if !strings.HasSuffix(text, "# EOF\n") {
		t.Errorf("exposition does not end with # EOF")
	}
}

func TestLintRejectsBadInput(t *testing.T) {
	cases := map[string]string{
		"missing EOF":          "# TYPE x counter\nx 1\n",
		"sample without TYPE":  "y 1\n# EOF\n",
		"bad value":            "# TYPE x counter\nx notanumber\n# EOF\n",
		"bad name":             "# TYPE 1bad counter\n# EOF\n",
		"bad type":             "# TYPE x sandwich\n# EOF\n",
		"duplicate TYPE":       "# TYPE x counter\n# TYPE x counter\n# EOF\n",
		"content after EOF":    "# EOF\nx 1\n",
		"bucket without le":    "# TYPE h histogram\nh_bucket{phase=\"x\"} 1\n# EOF\n",
		"malformed label pair": "# TYPE x counter\nx{phase=run} 1\n# EOF\n",
	}
	for name, text := range cases {
		if err := Lint(text); err == nil {
			t.Errorf("%s: linter accepted invalid exposition:\n%s", name, text)
		}
	}
	if err := Lint("# HELP x help text\n# TYPE x counter\nx 1\nx_total 2\n# EOF\n"); err != nil {
		t.Errorf("linter rejected valid exposition: %v", err)
	}
}
