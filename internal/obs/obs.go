// Package obs is the campaign-observability layer: it observes the
// simulator and its campaigns, where the other five layers (telemetry,
// pipetrace, injection, crossval, propagation — docs/observability.md)
// observe the simulated pipeline. It answers the operational questions a
// long multi-configuration campaign raises: what is running right now,
// how fast, how far along, which run produced this artifact.
//
// Four pieces:
//
//   - Registry (registry.go): a lock-cheap typed metrics registry —
//     counters, gauges, histograms with fixed buckets — exposed as
//     OpenMetrics/Prometheus text (openmetrics.go) at /debug/metrics on
//     the telemetry debug server. The telemetry.Collector's live
//     counters/gauges are backed by it, so the inject.* and inject.prop.*
//     campaign gauges surface on both /debug/vars (legacy dotted names)
//     and /debug/metrics (sanitized smtavf_* families) without the
//     publishing code changing.
//
//   - Ledger (ledger.go): an append-only runs.jsonl of versioned
//     RunManifest records — config digest, seeds, workloads, cycle and
//     strike counts, artifact index, exit status — one per run, sweep
//     point, inject campaign, and crossval seed, surfaced as
//     `avfreport -runs`.
//
//   - Progress (progress.go): phase-aware progress tracking with
//     periodic heartbeats (cycles/s, completion fraction, ETA) emitted
//     to slog and served as JSON at /debug/progress.
//
//   - Spans (spans.go): shard/worker utilization timelines — per-worker
//     phase spans from internal/shard's pool, exported as Chrome
//     trace_event JSON so scheduling bubbles are visible in
//     chrome://tracing.
//
// The package depends only on the standard library and internal/jsonlio,
// so every subsystem (telemetry, shard, inject) can attach to it without
// import cycles. docs/campaigns.md documents the ledger schema, the
// OpenMetrics name table, and the scrape recipes.
package obs

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
)

// Observability bundles the campaign-observability handles one run (or
// one whole campaign) carries: the metrics registry, the progress
// tracker, and the run ledger. Any field may be nil — each consumer
// nil-checks the piece it feeds. Unlike the pipeline observers, an
// Observability attaches to sharded runs too: it watches the campaign,
// not the cycle timeline.
type Observability struct {
	// Registry receives live metrics (nil: no metrics surface).
	Registry *Registry
	// Progress receives phase/heartbeat updates (nil: no progress surface).
	Progress *Progress
	// Ledger receives one RunManifest per run (nil: no provenance record).
	Ledger *Ledger
	// Program names the driving command in auto-appended run records.
	Program string
}

// ConfigDigest returns a short stable fingerprint of a configuration —
// sha256 over its JSON encoding — so a ledger record can be matched to
// the exact machine configuration that produced it.
func ConfigDigest(cfg any) string {
	data, err := json.Marshal(cfg)
	if err != nil {
		return "unhashable"
	}
	sum := sha256.Sum256(data)
	return hex.EncodeToString(sum[:6])
}
