package obs

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"time"
)

// Span is one phase of one worker's life during a sharded run: which
// worker, which shard it was serving, which phase (sources, warmup, run,
// merge), and the wall-clock interval relative to the run's start. The
// gap between one span's End and the worker's next Start is a scheduling
// bubble — exactly what the Chrome trace view makes visible.
type Span struct {
	Worker int           `json:"worker"` // -1: the merge phase, outside the pool
	Shard  int           `json:"shard"`  // -1: not shard-specific (merge)
	Phase  string        `json:"phase"`
	Start  time.Duration `json:"start"`
	End    time.Duration `json:"end"`
}

// Seconds returns the span's duration in seconds.
func (s Span) Seconds() float64 { return (s.End - s.Start).Seconds() }

// spanEvent mirrors the pipetrace chromeEvent shape: field order is the
// JSON output order, which keeps traces diff-stable.
type spanEvent struct {
	Name string `json:"name"`
	Cat  string `json:"cat,omitempty"`
	Ph   string `json:"ph"`
	Ts   uint64 `json:"ts"`
	Dur  uint64 `json:"dur"`
	Pid  int    `json:"pid"`
	Tid  int    `json:"tid"`
	Args any    `json:"args,omitempty"`
}

type spanMeta struct {
	Name string `json:"name"`
	Ph   string `json:"ph"`
	Pid  int    `json:"pid"`
	Args any    `json:"args"`
}

// WriteChromeSpans writes worker spans in the Chrome trace_event JSON
// object format, loadable by chrome://tracing and Perfetto: one process
// track per pool worker (plus a "merge" track), one complete ("X") slice
// per span, microsecond timestamps. The layout follows the pipetrace
// Chrome exporter so both trace families open in the same viewer.
func WriteChromeSpans(w io.Writer, spans []Span) error {
	ordered := append([]Span(nil), spans...)
	sort.SliceStable(ordered, func(i, j int) bool {
		if ordered[i].Worker != ordered[j].Worker {
			return ordered[i].Worker < ordered[j].Worker
		}
		return ordered[i].Start < ordered[j].Start
	})

	bw := bufio.NewWriter(w)
	bw.WriteString("{\"displayTimeUnit\": \"ms\",\n\"traceEvents\": [\n")
	first := true
	emit := func(v any) error {
		data, err := json.Marshal(v)
		if err != nil {
			return err
		}
		if !first {
			bw.WriteString(",\n")
		}
		first = false
		_, err = bw.Write(data)
		return err
	}

	seen := map[int]bool{}
	for _, s := range ordered {
		if seen[s.Worker] {
			continue
		}
		seen[s.Worker] = true
		name := fmt.Sprintf("worker %d", s.Worker)
		if s.Worker < 0 {
			name = "merge"
		}
		if err := emit(spanMeta{
			Name: "process_name", Ph: "M", Pid: chromePid(s.Worker),
			Args: map[string]string{"name": name},
		}); err != nil {
			return err
		}
	}
	for _, s := range ordered {
		ts := uint64(s.Start / time.Microsecond)
		dur := uint64((s.End - s.Start) / time.Microsecond)
		args := map[string]any{"shard": s.Shard}
		if err := emit(spanEvent{
			Name: s.Phase, Cat: "shard", Ph: "X",
			Ts: ts, Dur: dur, Pid: chromePid(s.Worker), Tid: 0, Args: args,
		}); err != nil {
			return err
		}
	}
	bw.WriteString("\n]}\n")
	return bw.Flush()
}

// chromePid maps a worker id to a trace pid: workers keep their index,
// the merge track (-1) lands after every worker.
func chromePid(worker int) int {
	if worker < 0 {
		return 1 << 20
	}
	return worker
}
