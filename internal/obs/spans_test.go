package obs

import (
	"encoding/json"
	"strings"
	"testing"
	"time"
)

func TestWriteChromeSpans(t *testing.T) {
	spans := []Span{
		{Worker: 1, Shard: 2, Phase: "run", Start: 3 * time.Millisecond, End: 9 * time.Millisecond},
		{Worker: 0, Shard: 0, Phase: "warmup", Start: 0, End: 2 * time.Millisecond},
		{Worker: 0, Shard: 0, Phase: "run", Start: 2 * time.Millisecond, End: 8 * time.Millisecond},
		{Worker: -1, Shard: -1, Phase: "merge", Start: 9 * time.Millisecond, End: 10 * time.Millisecond},
	}
	var b strings.Builder
	if err := WriteChromeSpans(&b, spans); err != nil {
		t.Fatal(err)
	}
	text := b.String()

	// The trace must be one valid JSON object with a traceEvents array.
	var doc struct {
		DisplayTimeUnit string            `json:"displayTimeUnit"`
		TraceEvents     []json.RawMessage `json:"traceEvents"`
	}
	if err := json.Unmarshal([]byte(text), &doc); err != nil {
		t.Fatalf("trace is not valid JSON: %v\n%s", err, text)
	}
	// 3 process_name metas (workers 0, 1, merge) + 4 slices.
	if len(doc.TraceEvents) != 7 {
		t.Fatalf("trace has %d events, want 7:\n%s", len(doc.TraceEvents), text)
	}
	for _, want := range []string{
		`"name":"worker 0"`, `"name":"worker 1"`, `"name":"merge"`,
		`"name":"warmup"`, `"ph":"X"`, `"shard":2`,
	} {
		if !strings.Contains(text, want) {
			t.Errorf("trace missing %s:\n%s", want, text)
		}
	}

	// The worker-0 run slice: ts 2000us, dur 6000us.
	if !strings.Contains(text, `"ts":2000,"dur":6000`) {
		t.Errorf("microsecond conversion wrong:\n%s", text)
	}
}

func TestWriteChromeSpansEmpty(t *testing.T) {
	var b strings.Builder
	if err := WriteChromeSpans(&b, nil); err != nil {
		t.Fatal(err)
	}
	var doc map[string]any
	if err := json.Unmarshal([]byte(b.String()), &doc); err != nil {
		t.Fatalf("empty trace is not valid JSON: %v", err)
	}
}

func TestSpanSeconds(t *testing.T) {
	s := Span{Start: time.Second, End: 3 * time.Second}
	if s.Seconds() != 2 {
		t.Fatalf("Seconds = %v", s.Seconds())
	}
}
