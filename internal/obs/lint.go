package obs

import (
	"fmt"
	"regexp"
	"strconv"
	"strings"
)

// The exposition grammar the linter enforces — deliberately the subset
// WriteOpenMetrics emits, strict enough that a truncated or interleaved
// scrape fails loudly in CI.
var (
	lintNameRe   = regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*$`)
	lintSampleRe = regexp.MustCompile(`^([a-zA-Z_:][a-zA-Z0-9_:]*)(\{[^}]*\})? (\S+)$`)
	lintLabelRe  = regexp.MustCompile(`^[a-zA-Z_][a-zA-Z0-9_]*="(\\.|[^"\\])*"$`)
)

// Lint validates an OpenMetrics text exposition: every sample belongs to
// a family whose # TYPE line precedes it, names and label pairs match the
// grammar, values parse as floats, histogram families carry _bucket/_sum/
// _count series with le labels, and the stream terminates with # EOF.
// It returns the first violation found, or nil for a valid exposition.
func Lint(text string) error {
	types := map[string]string{}
	sawEOF := false
	lines := strings.Split(text, "\n")
	for i, line := range lines {
		lineNo := i + 1
		if line == "" {
			continue
		}
		if sawEOF {
			return fmt.Errorf("openmetrics: line %d: content after # EOF", lineNo)
		}
		if strings.HasPrefix(line, "#") {
			fields := strings.SplitN(line, " ", 4)
			switch {
			case line == "# EOF":
				sawEOF = true
			case len(fields) >= 3 && fields[1] == "TYPE":
				name, typ := fields[2], ""
				if len(fields) == 4 {
					typ = fields[3]
				}
				if !lintNameRe.MatchString(name) {
					return fmt.Errorf("openmetrics: line %d: bad family name %q", lineNo, name)
				}
				switch typ {
				case "counter", "gauge", "histogram", "summary", "untyped", "info", "stateset", "unknown":
				default:
					return fmt.Errorf("openmetrics: line %d: bad metric type %q", lineNo, typ)
				}
				if _, dup := types[name]; dup {
					return fmt.Errorf("openmetrics: line %d: duplicate # TYPE for %q", lineNo, name)
				}
				types[name] = typ
			case len(fields) >= 3 && fields[1] == "HELP":
				if !lintNameRe.MatchString(fields[2]) {
					return fmt.Errorf("openmetrics: line %d: bad family name %q", lineNo, fields[2])
				}
			default:
				return fmt.Errorf("openmetrics: line %d: bad comment line %q", lineNo, line)
			}
			continue
		}
		m := lintSampleRe.FindStringSubmatch(line)
		if m == nil {
			return fmt.Errorf("openmetrics: line %d: bad sample line %q", lineNo, line)
		}
		name, labels, value := m[1], m[2], m[3]
		fam, ok := lintFamily(types, name)
		if !ok {
			return fmt.Errorf("openmetrics: line %d: sample %q has no preceding # TYPE", lineNo, name)
		}
		if labels != "" {
			if err := lintLabels(labels); err != nil {
				return fmt.Errorf("openmetrics: line %d: %w", lineNo, err)
			}
		}
		if value != "+Inf" && value != "-Inf" && value != "NaN" {
			if _, err := strconv.ParseFloat(value, 64); err != nil {
				return fmt.Errorf("openmetrics: line %d: bad value %q", lineNo, value)
			}
		}
		if types[fam] == "histogram" && strings.HasSuffix(name, "_bucket") &&
			!strings.Contains(labels, `le="`) {
			return fmt.Errorf("openmetrics: line %d: histogram bucket without le label", lineNo)
		}
	}
	if !sawEOF {
		return fmt.Errorf("openmetrics: missing # EOF terminator")
	}
	return nil
}

// lintFamily resolves a sample name to its declared family: exact for
// counters/gauges, the _bucket/_sum/_count suffixes for histograms.
func lintFamily(types map[string]string, name string) (string, bool) {
	if _, ok := types[name]; ok {
		return name, true
	}
	for _, suffix := range []string{"_bucket", "_sum", "_count", "_total"} {
		base := strings.TrimSuffix(name, suffix)
		if base != name {
			if _, ok := types[base]; ok {
				return base, true
			}
		}
	}
	return "", false
}

// lintLabels validates one {a="x",b="y"} label block.
func lintLabels(block string) error {
	inner := strings.TrimSuffix(strings.TrimPrefix(block, "{"), "}")
	if inner == "" {
		return fmt.Errorf("empty label block")
	}
	for _, pair := range splitLabelPairs(inner) {
		if !lintLabelRe.MatchString(pair) {
			return fmt.Errorf("bad label pair %q", pair)
		}
	}
	return nil
}

// splitLabelPairs splits on commas outside quoted values.
func splitLabelPairs(s string) []string {
	var out []string
	depth := false // inside quotes
	start := 0
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case '\\':
			i++
		case '"':
			depth = !depth
		case ',':
			if !depth {
				out = append(out, s[start:i])
				start = i + 1
			}
		}
	}
	return append(out, s[start:])
}
