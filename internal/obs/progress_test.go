package obs

import (
	"bytes"
	"log/slog"
	"strings"
	"testing"
	"time"
)

func TestProgressNil(t *testing.T) {
	var p *Progress
	p.Phase("run", 10)
	p.Observe(5, 100)
	p.SetTotal(20)
	if s := p.Snapshot(); s.Phase != "" || s.Done != 0 {
		t.Fatalf("nil progress snapshot = %+v", s)
	}
}

func TestProgressPhasesAndFraction(t *testing.T) {
	r := NewRegistry()
	p := NewProgress(ProgressOptions{Registry: r, Heartbeat: -1})
	p.Phase("run", 1000)
	p.Observe(250, 5000)
	s := p.Snapshot()
	if s.Phase != "run" || s.Done != 250 || s.Total != 1000 {
		t.Fatalf("snapshot = %+v", s)
	}
	if s.Fraction != 0.25 {
		t.Fatalf("fraction = %v, want 0.25", s.Fraction)
	}
	if s.Cycle != 5000 {
		t.Fatalf("cycle = %d", s.Cycle)
	}
	if got := r.Gauge("progress.fraction", "").Value(); got != 0.25 {
		t.Fatalf("registry fraction gauge = %v", got)
	}

	// Re-entering the same phase keeps done; a new phase resets it.
	p.Phase("run", 2000)
	if s := p.Snapshot(); s.Done != 250 || s.Total != 2000 {
		t.Fatalf("re-entered phase: %+v", s)
	}
	p.Phase("strikes", 0)
	if s := p.Snapshot(); s.Phase != "strikes" || s.Done != 0 {
		t.Fatalf("new phase: %+v", s)
	}
	p.SetTotal(512)
	p.Observe(512, 0)
	if s := p.Snapshot(); s.Fraction != 1 || s.Cycle != 5000 {
		t.Fatalf("strike phase end: %+v (cycle should persist)", s)
	}
}

func TestProgressFractionClamped(t *testing.T) {
	p := NewProgress(ProgressOptions{Heartbeat: -1})
	p.Phase("run", 100)
	p.Observe(250, 0) // overshoot: stop rules can exceed their estimate
	if s := p.Snapshot(); s.Fraction != 1 {
		t.Fatalf("fraction = %v, want clamped to 1", s.Fraction)
	}
}

func TestProgressHeartbeatLogsAndCounts(t *testing.T) {
	var buf bytes.Buffer
	logger := slog.New(slog.NewTextHandler(&buf, nil))
	r := NewRegistry()
	p := NewProgress(ProgressOptions{Logger: logger, Heartbeat: time.Nanosecond, Registry: r})
	p.Phase("run", 10)
	p.Observe(1, 100)
	time.Sleep(time.Millisecond)
	p.Observe(2, 200)
	if got := r.Counter("progress.heartbeats", "").Value(); got < 1 {
		t.Fatalf("heartbeats = %d, want >= 1", got)
	}
	if !strings.Contains(buf.String(), "phase=run") {
		t.Fatalf("no heartbeat log line:\n%s", buf.String())
	}
	if s := p.Snapshot(); s.Heartbeats < 1 {
		t.Fatalf("snapshot heartbeats = %d", s.Heartbeats)
	}
}

func TestProgressRateSmoothing(t *testing.T) {
	p := NewProgress(ProgressOptions{Heartbeat: -1})
	p.Phase("run", 0)
	p.Observe(0, 1)
	time.Sleep(2 * time.Millisecond)
	p.Observe(0, 1_000_001)
	if s := p.Snapshot(); s.CyclesPerSec <= 0 {
		t.Fatalf("cycles/s = %v, want positive after cycle advance", s.CyclesPerSec)
	}
}
