package obs

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime/debug"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"smtavf/internal/jsonlio"
)

// LedgerSchemaVersion is stamped into every RunManifest ("v"); readers
// reject records written by a newer schema.
const LedgerSchemaVersion = 1

// Run statuses.
const (
	StatusOK          = "ok"
	StatusError       = "error"
	StatusInterrupted = "interrupted"
)

// Artifact is one file a run produced, indexed in its manifest so every
// figure traces back to the exact run that made it.
type Artifact struct {
	Kind string `json:"kind"` // telemetry | pipetrace | crossval | propagation | timeline | csv | ...
	Path string `json:"path"`
}

// RunManifest is one ledger record: the full provenance of a single run,
// sweep point, inject campaign, or crossval seed. One manifest marshals
// to one JSONL line of runs.jsonl (docs/campaigns.md documents the
// schema).
type RunManifest struct {
	V    int    `json:"v"`
	ID   string `json:"id"`
	Kind string `json:"kind"` // run | sweep-point | inject | crossval-seed | ...

	Program      string   `json:"program,omitempty"`
	ConfigDigest string   `json:"config_digest,omitempty"`
	Seed         uint64   `json:"seed,omitempty"`
	CampaignSeed uint64   `json:"campaign_seed,omitempty"`
	Policy       string   `json:"policy,omitempty"`
	Workloads    []string `json:"workloads,omitempty"`

	GoVersion     string `json:"go_version,omitempty"`
	ModuleVersion string `json:"module_version,omitempty"`

	Start       string  `json:"start,omitempty"` // RFC3339Nano
	End         string  `json:"end,omitempty"`
	WallSeconds float64 `json:"wall_seconds,omitempty"`

	Cycles       uint64 `json:"cycles,omitempty"`
	Instructions uint64 `json:"instructions,omitempty"`
	Shards       int    `json:"shards,omitempty"`
	Strikes      uint64 `json:"strikes,omitempty"`

	Status string `json:"status"`
	Error  string `json:"error,omitempty"`

	Artifacts []Artifact        `json:"artifacts,omitempty"`
	Extra     map[string]string `json:"extra,omitempty"`
}

// manifestSeq disambiguates manifests created in the same millisecond of
// the same process (a sweep appends one per point).
var manifestSeq atomic.Uint64

// NewManifest starts a manifest of the given kind for the named program:
// ID, start time, schema version, and toolchain provenance are filled
// in; the caller sets the rest and finishes with Finish.
func NewManifest(kind, program string) *RunManifest {
	now := time.Now()
	m := &RunManifest{
		V:       LedgerSchemaVersion,
		ID:      fmt.Sprintf("%s-%s-%d-%d", program, now.UTC().Format("20060102T150405"), os.Getpid(), manifestSeq.Add(1)),
		Kind:    kind,
		Program: program,
		Start:   now.UTC().Format(time.RFC3339Nano),
	}
	if bi, ok := debug.ReadBuildInfo(); ok {
		m.GoVersion = bi.GoVersion
		if bi.Main.Version != "" && bi.Main.Version != "(devel)" {
			m.ModuleVersion = bi.Main.Version
		}
		for _, s := range bi.Settings {
			if s.Key == "vcs.revision" && len(s.Value) >= 12 {
				m.ModuleVersion = s.Value[:12]
			}
		}
	}
	return m
}

// AddArtifact indexes one output file on the manifest.
func (m *RunManifest) AddArtifact(kind, path string) {
	if m == nil || path == "" {
		return
	}
	m.Artifacts = append(m.Artifacts, Artifact{Kind: kind, Path: path})
}

// Finish stamps the end time, wall duration, and exit status; a non-nil
// err forces StatusError and records the message.
func (m *RunManifest) Finish(status string, err error) {
	if m == nil {
		return
	}
	now := time.Now()
	m.End = now.UTC().Format(time.RFC3339Nano)
	if start, perr := time.Parse(time.RFC3339Nano, m.Start); perr == nil {
		m.WallSeconds = now.Sub(start).Seconds()
	}
	m.Status = status
	if err != nil {
		m.Status = StatusError
		m.Error = err.Error()
	}
}

// checkManifest is the jsonlio version guard on read.
func checkManifest(m *RunManifest) error {
	if m.V > LedgerSchemaVersion {
		return fmt.Errorf("obs: ledger record schema v%d is newer than supported v%d", m.V, LedgerSchemaVersion)
	}
	return nil
}

// Ledger is an append-only JSONL run ledger. Appends reopen the file in
// append mode per record (runs are minutes long; one open per run is
// noise) so concurrent processes interleave at line granularity, and an
// interrupted process loses at most the record being written. Gzip paths
// are rejected — gzip streams cannot be appended to.
type Ledger struct {
	path string
	mu   sync.Mutex
}

// OpenLedger validates path and returns a ledger handle; the file itself
// is created on first Append.
func OpenLedger(path string) (*Ledger, error) {
	if path == "" {
		return nil, fmt.Errorf("obs: empty ledger path")
	}
	if jsonlio.IsGzipPath(path) {
		return nil, fmt.Errorf("obs: ledger %q: gzip streams cannot be appended to; use an uncompressed .jsonl path", path)
	}
	return &Ledger{path: path}, nil
}

// Path returns the ledger file path.
func (l *Ledger) Path() string {
	if l == nil {
		return ""
	}
	return l.path
}

// Append writes one manifest as a single JSONL line. Nil-safe: a nil
// ledger drops the record, so call sites need no branching.
func (l *Ledger) Append(m *RunManifest) error {
	if l == nil || m == nil {
		return nil
	}
	if m.V == 0 {
		m.V = LedgerSchemaVersion
	}
	if m.Status == "" {
		m.Status = StatusOK
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	return jsonlio.AppendLine(l.path, m)
}

// ReadLedger reads every manifest in a runs.jsonl, oldest first.
func ReadLedger(path string) ([]RunManifest, error) {
	return jsonlio.ReadFile[RunManifest](path, checkManifest)
}

// RunFilter selects ledger records for listing; zero fields match
// everything.
type RunFilter struct {
	Kind    string
	Program string
	Status  string
}

// Match reports whether the manifest passes the filter.
func (f RunFilter) Match(m *RunManifest) bool {
	return (f.Kind == "" || f.Kind == m.Kind) &&
		(f.Program == "" || f.Program == m.Program) &&
		(f.Status == "" || f.Status == m.Status)
}

// FormatRuns renders the filtered ledger as the aligned table
// `avfreport -runs` prints, newest first.
func FormatRuns(ms []RunManifest, f RunFilter) string {
	var rows []RunManifest
	for i := range ms {
		if f.Match(&ms[i]) {
			rows = append(rows, ms[i])
		}
	}
	sort.SliceStable(rows, func(i, j int) bool { return rows[i].Start > rows[j].Start })
	var b strings.Builder
	fmt.Fprintf(&b, "%d runs\n", len(rows))
	fmt.Fprintf(&b, "  %-44s %-13s %-11s %-8s %12s %10s %8s %5s\n",
		"id", "kind", "status", "policy", "cycles", "strikes", "wall", "files")
	for i := range rows {
		m := &rows[i]
		fmt.Fprintf(&b, "  %-44s %-13s %-11s %-8s %12d %10d %7.1fs %5d\n",
			m.ID, m.Kind, m.Status, m.Policy, m.Cycles, m.Strikes, m.WallSeconds, len(m.Artifacts))
	}
	return b.String()
}

// FindRun returns the manifest with the given ID, or an ID-prefix match
// when exactly one record matches.
func FindRun(ms []RunManifest, id string) (*RunManifest, error) {
	var prefix []*RunManifest
	for i := range ms {
		if ms[i].ID == id {
			return &ms[i], nil
		}
		if strings.HasPrefix(ms[i].ID, id) {
			prefix = append(prefix, &ms[i])
		}
	}
	switch len(prefix) {
	case 1:
		return prefix[0], nil
	case 0:
		return nil, fmt.Errorf("obs: no run %q in ledger", id)
	default:
		return nil, fmt.Errorf("obs: run id %q is ambiguous (%d matches)", id, len(prefix))
	}
}

// FormatRun renders one manifest as indented JSON (`avfreport -runs-id`).
func FormatRun(m *RunManifest) string {
	data, err := json.MarshalIndent(m, "", "  ")
	if err != nil {
		return fmt.Sprintf("unprintable manifest: %v", err)
	}
	return string(data) + "\n"
}
