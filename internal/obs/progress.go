package obs

import (
	"log/slog"
	"sync"
	"time"
)

// DefaultHeartbeat is the minimum wall-clock gap between heartbeat log
// lines when ProgressOptions.Heartbeat is zero.
const DefaultHeartbeat = 5 * time.Second

// ProgressOptions parameterizes a Progress tracker.
type ProgressOptions struct {
	// Logger receives one heartbeat line per Heartbeat interval (nil:
	// heartbeats only surface on /debug/progress and the registry).
	Logger *slog.Logger
	// Heartbeat is the minimum wall gap between heartbeats (default
	// DefaultHeartbeat; negative disables the log lines entirely).
	Heartbeat time.Duration
	// Registry, when non-nil, receives the live progress gauges
	// (progress.fraction, progress.cycle, progress.cycles_per_sec,
	// progress.eta_seconds) and the progress.heartbeats counter.
	Registry *Registry
}

// Progress tracks one campaign's phase-by-phase completion and emits
// periodic heartbeats: the phase name, a done/total fraction, the
// smoothed cycle rate, and an ETA extrapolated from the phase's own
// rate. It is fed from whatever drives the phase — telemetry windows in
// a monolithic run, shard completions in a sharded one, stopping-rule
// rounds in a strike campaign — and read from slog, the /debug/progress
// endpoint, and the metrics registry. All methods are safe for
// concurrent use and no-ops on a nil receiver.
type Progress struct {
	logger *slog.Logger
	every  time.Duration

	gFraction *Gauge
	gCycle    *Gauge
	gRate     *Gauge
	gETA      *Gauge
	cBeats    *Counter

	mu         sync.Mutex
	start      time.Time
	phase      string
	phaseStart time.Time
	done       uint64
	total      uint64
	cycle      uint64
	lastBeat   time.Time
	beats      uint64

	// rate window: cycle and wall position of the previous Observe.
	lastCycle uint64
	lastWall  time.Time
	rate      float64 // cycles per second, smoothed
}

// NewProgress builds a progress tracker.
func NewProgress(o ProgressOptions) *Progress {
	if o.Heartbeat == 0 {
		o.Heartbeat = DefaultHeartbeat
	}
	now := time.Now()
	p := &Progress{
		logger:     o.Logger,
		every:      o.Heartbeat,
		start:      now,
		phaseStart: now,
		lastWall:   now,
	}
	if r := o.Registry; r != nil {
		p.gFraction = r.Gauge("progress.fraction", "completion fraction of the current phase")
		p.gCycle = r.Gauge("progress.cycle", "current simulation cycle")
		p.gRate = r.Gauge("progress.cycles_per_sec", "smoothed simulation rate")
		p.gETA = r.Gauge("progress.eta_seconds", "estimated seconds to phase completion")
		p.cBeats = r.Counter("progress.heartbeats", "heartbeat events emitted")
	}
	return p
}

// Phase begins a new phase with the given completion target (0: the
// total is unknown or set later with SetTotal). Re-entering the current
// phase only updates the total.
func (p *Progress) Phase(name string, total uint64) {
	if p == nil {
		return
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.phase != name {
		p.phase = name
		p.phaseStart = time.Now()
		p.done = 0
	}
	p.total = total
}

// SetTotal revises the current phase's completion target — the inject
// stopping rule's ETA moves as the confidence intervals tighten.
func (p *Progress) SetTotal(total uint64) {
	if p == nil {
		return
	}
	p.mu.Lock()
	p.total = total
	p.mu.Unlock()
}

// Observe advances the current phase to done completed units at the
// given simulation cycle (cycle 0: unchanged — phases without a cycle
// axis, like the strike phase, keep the run's final cycle). Heartbeats
// fire from here when the configured wall interval has elapsed.
func (p *Progress) Observe(done, cycle uint64) {
	if p == nil {
		return
	}
	p.mu.Lock()
	now := time.Now()
	p.done = done
	if cycle > 0 {
		if dt := now.Sub(p.lastWall).Seconds(); dt > 0 && cycle > p.lastCycle {
			inst := float64(cycle-p.lastCycle) / dt
			if p.rate == 0 {
				p.rate = inst
			} else {
				p.rate = 0.7*p.rate + 0.3*inst // smooth scrape-to-scrape jitter
			}
			p.lastCycle, p.lastWall = cycle, now
		}
		p.cycle = cycle
	}
	snap := p.snapshotLocked(now)
	beat := p.every > 0 && now.Sub(p.lastBeat) >= p.every
	if beat {
		p.lastBeat = now
		p.beats++
	}
	p.mu.Unlock()

	p.gFraction.Set(snap.Fraction)
	p.gCycle.SetUint(snap.Cycle)
	p.gRate.Set(snap.CyclesPerSec)
	p.gETA.Set(snap.ETASeconds)
	if beat {
		p.cBeats.Inc()
		if p.logger != nil {
			p.logger.Info("progress",
				"phase", snap.Phase,
				"done", snap.Done,
				"total", snap.Total,
				"fraction", round2(snap.Fraction),
				"cycle", snap.Cycle,
				"cycles_per_sec", uint64(snap.CyclesPerSec),
				"eta_seconds", round2(snap.ETASeconds),
			)
		}
	}
}

// ProgressSnapshot is the live progress state /debug/progress serves.
type ProgressSnapshot struct {
	Phase          string  `json:"phase"`
	Done           uint64  `json:"done"`
	Total          uint64  `json:"total,omitempty"`
	Fraction       float64 `json:"fraction"`
	Cycle          uint64  `json:"cycle,omitempty"`
	CyclesPerSec   float64 `json:"cycles_per_sec,omitempty"`
	ETASeconds     float64 `json:"eta_seconds,omitempty"`
	PhaseSeconds   float64 `json:"phase_seconds"`
	ElapsedSeconds float64 `json:"elapsed_seconds"`
	Heartbeats     uint64  `json:"heartbeats"`
}

// Snapshot returns the current progress state (zero value for nil).
func (p *Progress) Snapshot() ProgressSnapshot {
	if p == nil {
		return ProgressSnapshot{}
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.snapshotLocked(time.Now())
}

func (p *Progress) snapshotLocked(now time.Time) ProgressSnapshot {
	s := ProgressSnapshot{
		Phase:          p.phase,
		Done:           p.done,
		Total:          p.total,
		Cycle:          p.cycle,
		CyclesPerSec:   p.rate,
		PhaseSeconds:   now.Sub(p.phaseStart).Seconds(),
		ElapsedSeconds: now.Sub(p.start).Seconds(),
		Heartbeats:     p.beats,
	}
	if p.total > 0 {
		s.Fraction = float64(p.done) / float64(p.total)
		if s.Fraction > 1 {
			s.Fraction = 1
		}
		// ETA from the phase's own average rate: units observed per
		// wall second since the phase began.
		if el := now.Sub(p.phaseStart).Seconds(); el > 0 && p.done > 0 && p.done < p.total {
			unitRate := float64(p.done) / el
			s.ETASeconds = float64(p.total-p.done) / unitRate
		}
	}
	return s
}

func round2(v float64) float64 { return float64(int64(v*100)) / 100 }
