package crossval

import (
	"bytes"
	"math"
	"path/filepath"
	"strings"
	"testing"

	"smtavf/internal/avf"
	"smtavf/internal/inject"
)

// stats builds an inject.Stats by hand: structure s with k ACE strikes
// out of n, classified as SDC.
func stats(pairs map[avf.Struct][2]uint64) *inject.Stats {
	st := &inject.Stats{Confidence: 0.99, StoppedEarly: true}
	for s := avf.Struct(0); s < avf.NumStructs; s++ {
		st.PerStruct[s] = inject.StructStats{Struct: s}
	}
	for s, kn := range pairs {
		r := &st.PerStruct[s]
		r.Strikes = kn[1]
		r.Outcomes[inject.SDC] = kn[0]
		r.Outcomes[inject.Masked] = kn[1] - kn[0]
		r.AVF = float64(kn[0]) / float64(kn[1])
		r.Lo, r.Hi = inject.Wilson(kn[0], kn[1], 0.99)
		r.HalfWidth = (r.Hi - r.Lo) / 2
		st.TotalStrikes += kn[1]
	}
	return st
}

func TestBuildVerdicts(t *testing.T) {
	var tracker [avf.NumStructs]float64
	tracker[avf.IQ] = 0.20  // inside the CI of 2000/10000
	tracker[avf.ROB] = 0.50 // far outside the CI of 1000/10000
	st := stats(map[avf.Struct][2]uint64{
		avf.IQ:  {2000, 10000},
		avf.ROB: {1000, 10000},
	})
	rep := Build(Meta{Workload: "w", Policy: "ICOUNT", Seed: 3, Every: 1}, tracker, st)

	if len(rep.Entries) != 2 {
		t.Fatalf("entries = %d, want 2 (strike-free structures omitted)", len(rep.Entries))
	}
	if rep.Pass() {
		t.Error("report with an out-of-CI structure must fail")
	}
	failed := rep.Failed()
	if len(failed) != 1 || failed[0].Struct != avf.ROB.String() {
		t.Fatalf("failed = %+v, want exactly ROB", failed)
	}
	iq := rep.Entries[0]
	if iq.Struct != avf.IQ.String() || !iq.Pass {
		t.Fatalf("IQ entry = %+v, want pass", iq)
	}
	if iq.V != SchemaVersion || iq.Seeds != 1 || iq.Seed != 3 {
		t.Errorf("entry metadata wrong: %+v", iq)
	}
	if math.Abs(iq.Delta-(iq.InjectAVF-iq.TrackerAVF)) > 1e-12 {
		t.Errorf("delta %v inconsistent with %v - %v", iq.Delta, iq.InjectAVF, iq.TrackerAVF)
	}
	// z sanity: IQ tracker sits on the point estimate, ROB is many SEs out.
	if math.Abs(iq.Z) > 1 {
		t.Errorf("IQ z = %v, want small", iq.Z)
	}
	rob := failed[0]
	if math.Abs(rob.Z) < 10 {
		t.Errorf("ROB z = %v, want large (0.50 vs 0.10 at n=10000)", rob.Z)
	}
	table := rep.Table()
	if !strings.Contains(table, "FAIL") || !strings.Contains(table, "PASS") {
		t.Errorf("table should carry both verdicts:\n%s", table)
	}
}

func TestJSONLRoundTrip(t *testing.T) {
	var tracker [avf.NumStructs]float64
	tracker[avf.IQ] = 0.2
	st := stats(map[avf.Struct][2]uint64{avf.IQ: {2000, 10000}})
	rep := Build(Meta{Workload: "w", Policy: "P"}, tracker, st)

	var buf bytes.Buffer
	if err := rep.WriteJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadJSONL(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(rep.Entries) || got[0] != rep.Entries[0] {
		t.Fatalf("roundtrip mismatch:\n%+v\n%+v", got, rep.Entries)
	}

	// Future schema versions are refused, not silently misread.
	if _, err := ReadJSONL(strings.NewReader(`{"v":99}`)); err == nil {
		t.Error("expected an error on a newer schema version")
	}
}

func TestFileRoundTripGzip(t *testing.T) {
	var tracker [avf.NumStructs]float64
	tracker[avf.IQ] = 0.2
	tracker[avf.ROB] = 0.1
	st := stats(map[avf.Struct][2]uint64{avf.IQ: {2000, 10000}, avf.ROB: {1000, 10000}})
	rep := Build(Meta{Workload: "w"}, tracker, st)

	for _, name := range []string{"r.jsonl", "r.jsonl.gz"} {
		path := filepath.Join(t.TempDir(), name)
		if err := rep.WriteFile(path); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		got, err := ReadFile(path)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if len(got) != len(rep.Entries) {
			t.Fatalf("%s: %d entries, want %d", name, len(got), len(rep.Entries))
		}
		for i := range got {
			if got[i] != rep.Entries[i] {
				t.Errorf("%s entry %d: %+v != %+v", name, i, got[i], rep.Entries[i])
			}
		}
	}
}

func TestPool(t *testing.T) {
	var tracker [avf.NumStructs]float64
	tracker[avf.IQ] = 0.2
	a := Build(Meta{Workload: "w", Seed: 1}, tracker, stats(map[avf.Struct][2]uint64{avf.IQ: {210, 1000}}))
	tracker[avf.IQ] = 0.22
	b := Build(Meta{Workload: "w", Seed: 2}, tracker, stats(map[avf.Struct][2]uint64{avf.IQ: {190, 1000}}))

	pooled, err := Pool([]*Report{a, b})
	if err != nil {
		t.Fatal(err)
	}
	if pooled.Meta.Seeds != 2 || pooled.Meta.Seed != 0 {
		t.Errorf("pooled meta = %+v, want 2 seeds, no single seed", pooled.Meta)
	}
	e := pooled.Entries[0]
	if e.Strikes != 2000 || e.ACEStrikes != 400 {
		t.Errorf("pooled counts = %d/%d, want 400/2000", e.ACEStrikes, e.Strikes)
	}
	if math.Abs(e.TrackerAVF-0.21) > 1e-12 {
		t.Errorf("pooled tracker AVF = %v, want the mean 0.21", e.TrackerAVF)
	}
	if math.Abs(e.InjectAVF-0.2) > 1e-12 {
		t.Errorf("pooled inject AVF = %v, want 400/2000", e.InjectAVF)
	}
	// Pooling must tighten the interval.
	if e.HalfWidth >= a.Entries[0].HalfWidth {
		t.Errorf("pooled half-width %v not tighter than single-seed %v", e.HalfWidth, a.Entries[0].HalfWidth)
	}
	if !e.Pass {
		t.Errorf("pooled entry should pass: %+v", e)
	}

	// Unequal strike counts: the tracker pools strike-weighted, matching
	// the proportion's inherent weighting (seeds that drew more strikes
	// dominate both sides identically). 0.2 × 3000 + 0.22 × 1000 over
	// 4000 strikes → 0.205, not the unweighted mean 0.21.
	tracker[avf.IQ] = 0.2
	c := Build(Meta{Workload: "w", Seed: 3}, tracker, stats(map[avf.Struct][2]uint64{avf.IQ: {600, 3000}}))
	tracker[avf.IQ] = 0.22
	d := Build(Meta{Workload: "w", Seed: 4}, tracker, stats(map[avf.Struct][2]uint64{avf.IQ: {220, 1000}}))
	wp, err := Pool([]*Report{c, d})
	if err != nil {
		t.Fatal(err)
	}
	if got := wp.Entries[0].TrackerAVF; math.Abs(got-0.205) > 1e-12 {
		t.Errorf("weighted pooled tracker AVF = %v, want 0.205", got)
	}
	if got := wp.Entries[0].InjectAVF; math.Abs(got-0.205) > 1e-12 {
		t.Errorf("pooled inject AVF = %v, want 820/4000", got)
	}

	// Degenerate pools.
	if _, err := Pool(nil); err == nil {
		t.Error("pooling nothing should error")
	}
	if single, err := Pool([]*Report{a}); err != nil || single != a {
		t.Error("pooling one report should return it unchanged")
	}
	b.Confidence = 0.95
	if _, err := Pool([]*Report{a, b}); err == nil {
		t.Error("pooling mixed confidence levels should error")
	}
}
