// Package crossval compares the two independent AVF estimators the
// simulator carries — the avf.Tracker's ACE-residency accounting and the
// inject.Campaign's statistical strike sampling — and renders their
// agreement as a per-structure report: absolute delta, z-score of the
// tracker estimate against the strike distribution, and a pass/fail
// verdict against the campaign's Wilson confidence interval.
//
// The paper (§2, §6) frames statistical fault injection as the expensive
// ground truth that ACE analysis approximates; this package is the
// referee that keeps the approximation honest. A report that fails —
// a tracker AVF outside the injection CI — means the interval accounting
// and the strike sampling disagree about the same machine state, which
// localizes a bug in one of them.
//
// Reports serialize as versioned JSONL (the same `v` schema convention
// telemetry windows and pipetrace records use) and are gzip-aware on both
// ends (paths ending in .gz).
package crossval

import (
	"fmt"
	"io"
	"math"
	"strings"

	"smtavf/internal/avf"
	"smtavf/internal/inject"
	"smtavf/internal/jsonlio"
)

// SchemaVersion identifies the Entry JSON schema; bump when renaming or
// removing fields.
const SchemaVersion = 1

// passEps absorbs float noise at the CI edges: a tracker AVF within
// passEps of the interval boundary still passes.
const passEps = 1e-9

// Meta identifies the run a report was produced from.
type Meta struct {
	Workload string `json:"workload"`
	Policy   string `json:"policy"`
	// Seed is the campaign seed (0 in a pooled report).
	Seed uint64 `json:"seed"`
	// Seeds is the number of campaigns pooled into the report (1 for a
	// single-seed report).
	Seeds int `json:"seeds"`
	// Every is the campaign's sample-grid pitch in cycles.
	Every uint64 `json:"every"`
	// Cycles is the measured cycle count the estimates cover.
	Cycles uint64 `json:"cycles"`
}

// Entry is the agreement record of one structure — one JSONL line.
type Entry struct {
	V          int     `json:"v"`
	Workload   string  `json:"workload"`
	Policy     string  `json:"policy"`
	Seed       uint64  `json:"seed"`
	Seeds      int     `json:"seeds"`
	Struct     string  `json:"struct"`
	Protection string  `json:"protection"`
	TrackerAVF float64 `json:"tracker_avf"`
	InjectAVF  float64 `json:"inject_avf"`
	Strikes    uint64  `json:"strikes"`
	ACEStrikes uint64  `json:"ace_strikes"`
	CILo       float64 `json:"ci_lo"`
	CIHi       float64 `json:"ci_hi"`
	HalfWidth  float64 `json:"half_width"`
	// Delta is inject_avf - tracker_avf.
	Delta float64 `json:"delta"`
	// Z is the tracker estimate's distance from the strike proportion in
	// standard errors of the strike estimate.
	Z float64 `json:"z"`
	// Pass reports the tracker AVF inside the strike CI.
	Pass bool `json:"pass"`
}

// Report is the per-structure agreement between the tracker and one (or a
// pool of) injection campaign(s).
type Report struct {
	Confidence   float64
	StoppedEarly bool
	Meta         Meta
	Entries      []Entry
}

// Build computes the agreement report between the tracker's per-structure
// AVF (tracker, indexed by avf.Struct) and a completed strike experiment.
// Structures that drew no strikes (zero capacity or an empty grid) are
// omitted.
func Build(meta Meta, tracker [avf.NumStructs]float64, stats *inject.Stats) *Report {
	if meta.Seeds == 0 {
		meta.Seeds = 1
	}
	r := &Report{Confidence: stats.Confidence, StoppedEarly: stats.StoppedEarly, Meta: meta}
	for _, s := range avf.Structs() {
		st := stats.PerStruct[s]
		if st.Strikes == 0 {
			continue
		}
		r.Entries = append(r.Entries, makeEntry(meta, s, st.Protection.String(),
			tracker[s], st.ACEStrikes(), st.Strikes, stats.Confidence))
	}
	return r
}

// makeEntry derives every statistic of one structure's agreement record
// from the strike counts — shared by Build and Pool so pooled entries are
// recomputed, not averaged.
func makeEntry(meta Meta, s avf.Struct, prot string, trackerAVF float64, k, n uint64, confidence float64) Entry {
	p := float64(k) / float64(n)
	lo, hi := inject.Wilson(k, n, confidence)
	se := math.Sqrt(p * (1 - p) / float64(n))
	z := 0.0
	if se > 0 {
		z = (trackerAVF - p) / se
	}
	return Entry{
		V:          SchemaVersion,
		Workload:   meta.Workload,
		Policy:     meta.Policy,
		Seed:       meta.Seed,
		Seeds:      meta.Seeds,
		Struct:     s.String(),
		Protection: prot,
		TrackerAVF: trackerAVF,
		InjectAVF:  p,
		Strikes:    n,
		ACEStrikes: k,
		CILo:       lo,
		CIHi:       hi,
		HalfWidth:  (hi - lo) / 2,
		Delta:      p - trackerAVF,
		Z:          z,
		Pass:       trackerAVF >= lo-passEps && trackerAVF <= hi+passEps,
	}
}

// structByName inverts avf.Struct.String — entries carry the structure as
// its display name so the JSONL is self-describing.
func structByName(name string) (avf.Struct, bool) {
	for _, s := range avf.Structs() {
		if s.String() == name {
			return s, true
		}
	}
	return 0, false
}

// Pass reports whether every structure's tracker AVF sits inside its
// strike confidence interval.
func (r *Report) Pass() bool { return len(r.Failed()) == 0 }

// Failed returns the entries whose tracker AVF falls outside the CI.
func (r *Report) Failed() []Entry {
	var out []Entry
	for _, e := range r.Entries {
		if !e.Pass {
			out = append(out, e)
		}
	}
	return out
}

// Table renders the report as an aligned text table.
func (r *Report) Table() string {
	var b strings.Builder
	fmt.Fprintf(&b, "ACE-vs-injection cross-validation: %s / %s (%d seed", r.Meta.Workload, r.Meta.Policy, r.Meta.Seeds)
	if r.Meta.Seeds != 1 {
		b.WriteString("s")
	}
	fmt.Fprintf(&b, ", every=%d, %.0f%% CI", r.Meta.Every, 100*r.Confidence)
	if r.StoppedEarly {
		b.WriteString(", stopped early")
	}
	b.WriteString(")\n")
	fmt.Fprintf(&b, "  %-9s %-7s %9s %8s %8s %19s %8s %7s %s\n",
		"structure", "prot", "strikes", "tracker", "inject", "CI", "delta", "z", "verdict")
	for _, e := range r.Entries {
		verdict := "PASS"
		if !e.Pass {
			verdict = "FAIL"
		}
		fmt.Fprintf(&b, "  %-9s %-7s %9d %7.2f%% %7.2f%%  [%6.2f%%,%6.2f%%] %+7.3f %+7.2f %s\n",
			e.Struct, e.Protection, e.Strikes, 100*e.TrackerAVF, 100*e.InjectAVF,
			100*e.CILo, 100*e.CIHi, 100*e.Delta, e.Z, verdict)
	}
	if r.Pass() {
		fmt.Fprintf(&b, "  verdict: PASS (%d/%d structures inside the CI)\n", len(r.Entries), len(r.Entries))
	} else {
		fmt.Fprintf(&b, "  verdict: FAIL (%d/%d structures outside the CI)\n", len(r.Failed()), len(r.Entries))
	}
	return b.String()
}

// WriteJSONL writes the report as one JSON object per line (schema
// version in every line's "v" field).
func (r *Report) WriteJSONL(w io.Writer) error {
	return jsonlio.WriteLines(w, r.Entries)
}

// WriteFile writes the report as JSONL to path, gzip-compressing when the
// name ends in .gz (the shared jsonlio writer convention).
func (r *Report) WriteFile(path string) error {
	w, err := jsonlio.OpenWriter(path)
	if err != nil {
		return err
	}
	if err := r.WriteJSONL(w); err != nil {
		w.Close()
		return err
	}
	return w.Close()
}

// checkEntry rejects entries with a schema version newer than this package
// understands (older versions still parse).
func checkEntry(e *Entry) error {
	if e.V > SchemaVersion {
		return fmt.Errorf("crossval: entry schema v%d is newer than supported v%d", e.V, SchemaVersion)
	}
	return nil
}

// ReadJSONL parses entries written by WriteJSONL. Lines with a schema
// version newer than this package understands are an error.
func ReadJSONL(rd io.Reader) ([]Entry, error) {
	return jsonlio.ReadLines(rd, checkEntry)
}

// ReadFile reads entries from a JSONL file, transparently decompressing
// when the name ends in .gz.
func ReadFile(path string) ([]Entry, error) {
	return jsonlio.ReadFile(path, checkEntry)
}

// Pool aggregates per-seed reports of the same workload into one: strike
// and ACE-strike counts are summed per structure, the tracker AVF is
// averaged weighted by each seed's strike count, and the interval,
// delta, z, and verdict are recomputed from the pooled counts. Pooling N
// seeds tightens the CI by roughly sqrt(N) without rerunning any single
// campaign longer.
//
// The strike weighting matters: the pooled proportion k/n is inherently
// a strike-weighted mean of the per-seed estimates, and seeds whose AVF
// sits closer to 50% draw more strikes before their CI converges, so
// strike counts correlate with the per-seed AVF. An unweighted tracker
// mean would then sit systematically below the pooled proportion on
// high-AVF structures — a bias the tightened CI would flag as
// disagreement. Weighting both sides identically keeps the pooled
// tracker the exact expectation of the pooled proportion.
func Pool(reports []*Report) (*Report, error) {
	if len(reports) == 0 {
		return nil, fmt.Errorf("crossval: nothing to pool")
	}
	if len(reports) == 1 {
		return reports[0], nil
	}
	type acc struct {
		prot    string
		tracker float64 // strike-weighted sum of per-seed tracker AVFs
		k, n    uint64
	}
	var accs [avf.NumStructs]acc
	meta := reports[0].Meta
	meta.Seed = 0
	meta.Seeds = 0
	pooled := &Report{Confidence: reports[0].Confidence, StoppedEarly: true, Meta: meta}
	for _, r := range reports {
		if r.Confidence != pooled.Confidence {
			return nil, fmt.Errorf("crossval: cannot pool reports at different confidence levels (%.3f vs %.3f)",
				r.Confidence, pooled.Confidence)
		}
		pooled.Meta.Seeds += r.Meta.Seeds
		pooled.StoppedEarly = pooled.StoppedEarly && r.StoppedEarly
		for _, e := range r.Entries {
			s, ok := structByName(e.Struct)
			if !ok {
				return nil, fmt.Errorf("crossval: unknown structure %q", e.Struct)
			}
			a := &accs[s]
			a.prot = e.Protection
			a.tracker += e.TrackerAVF * float64(e.Strikes)
			a.k += e.ACEStrikes
			a.n += e.Strikes
		}
	}
	for _, s := range avf.Structs() {
		a := accs[s]
		if a.n == 0 {
			continue
		}
		pooled.Entries = append(pooled.Entries, makeEntry(pooled.Meta, s, a.prot,
			a.tracker/float64(a.n), a.k, a.n, pooled.Confidence))
	}
	return pooled, nil
}
