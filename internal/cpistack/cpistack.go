// Package cpistack is the explainability observer: per-thread cycle
// accounting joined with a windowed occupancy-by-fate decomposition of the
// AVF-tracked structures.
//
// The AVF report says *how vulnerable* each structure was; this package
// says *why*. Every thread-cycle is attributed to exactly one stack
// component (committing, icache miss, dcache/L2 miss, branch-mispredict
// recovery, a full IQ/ROB/LSQ, register starvation, fetch-policy gating,
// or idle), so per-thread components sum to the measured cycles — a CPI
// stack in the cycle-accounting tradition. Alongside, every classified
// residency interval of the occupancy-tracked structures (IQ, ROB, LSQ
// tag/data, FU, Reg) is split across the same cycle windows by its
// avf.Fate, using the tracker's exact clipped-interval arithmetic, so the
// windowed occupancy-by-fate bit-cycles sum to the tracker's ACE/un-ACE
// totals bit for bit. A window then reads "the IQ was 78% occupied, 61%
// of that ACE, while thread 1 spent 70% of its cycles L2-miss-stalled" —
// the causal chain (fetch policy → occupancy → ACE composition → AVF) the
// paper argues, observable per interval.
//
// Like every observer (docs/observability.md), the hot-path hooks are
// nil-receiver no-ops: a detached observer costs one predictable branch
// per cycle, pinned by BenchmarkCPIStackOverhead.
package cpistack

import (
	"fmt"
	"strings"

	"smtavf/internal/avf"
	"smtavf/internal/pipeline"
	"smtavf/internal/telemetry"
)

// Component is one CPI-stack cycle class. Each thread-cycle is attributed
// to exactly one component, so a thread's components sum to its cycles.
type Component uint8

// Stack components, in stack order (work first, back-end stalls, front-end
// stalls, idle last).
const (
	// CompBase covers productive cycles: the thread committed this cycle,
	// or its ROB head is executing without an outstanding data miss (the
	// classic "base + execution latency" component).
	CompBase Component = iota
	// CompICacheMiss: the front end is stalled on an IL1/ITLB miss with
	// nothing left in flight to hide it.
	CompICacheMiss
	// CompDCacheMiss: the oldest instruction is blocked behind a DL1 miss.
	CompDCacheMiss
	// CompL2Miss: the oldest instruction is blocked behind an L2 miss —
	// the long-latency stall the STALL/FLUSH/DG policies act on.
	CompL2Miss
	// CompBranchMispredict covers wrong-path mode and the squash-recovery
	// redirect bubble.
	CompBranchMispredict
	// CompIQFull: dispatch stalled this cycle because the shared issue
	// queue had no slot for the thread.
	CompIQFull
	// CompROBFull: dispatch stalled on a full reorder buffer.
	CompROBFull
	// CompLSQFull: dispatch stalled on a full load/store queue.
	CompLSQFull
	// CompRegStarved: dispatch stalled because renaming found no free
	// physical register.
	CompRegStarved
	// CompFetchGated: the thread was runnable but fetched nothing — the
	// fetch policy gave the bandwidth elsewhere or gated the thread
	// (STALL/DG/PDG predicted-miss gating, ICOUNT priority loss).
	CompFetchGated
	// CompIdle: the thread has finished its quota.
	CompIdle

	// NumComponents is the component count; every per-component array is
	// indexed [0, NumComponents).
	NumComponents = 11
)

var componentNames = [NumComponents]string{
	"base", "icache_miss", "dcache_miss", "l2_miss", "branch_mispredict",
	"iq_full", "rob_full", "lsq_full", "reg_starved", "fetch_gated", "idle",
}

func (c Component) String() string {
	if int(c) < len(componentNames) {
		return componentNames[c]
	}
	return fmt.Sprintf("component(%d)", int(c))
}

// Components lists every stack component in stack order.
func Components() []Component {
	out := make([]Component, NumComponents)
	for i := range out {
		out[i] = Component(i)
	}
	return out
}

// OccupancyStructs lists the structures whose occupancy the observer
// decomposes by fate: the uop-tracked pipeline structures plus the
// register file (whose intervals arrive through the tracker's sink).
func OccupancyStructs() []avf.Struct {
	return []avf.Struct{avf.IQ, avf.ROB, avf.LSQTag, avf.LSQData, avf.FU, avf.Reg}
}

// DefaultWindowCycles is the default sampling window, matching telemetry.
const DefaultWindowCycles = 10_000

// Options parameterizes an Observer.
type Options struct {
	// WindowCycles is the accounting window length (default 10k cycles).
	WindowCycles uint64
}

// Observer accumulates the per-thread CPI stack and the occupancy-by-fate
// series. Attach with core.Processor.SetCPIStack (or the facade's
// WithCPIStack); all methods are nil-receiver no-ops so a detached
// observer costs nothing.
//
// Ownership: Record copies everything it keeps out of the pooled uop
// before returning (docs/performance.md).
type Observer struct {
	window  uint64
	bits    pipeline.Bits
	caps    [avf.NumStructs]uint64 // structure capacities (AVF denominators)
	threads int

	base uint64 // measurement origin: windows index from here, spans clip here
	max  uint64 // one past the last accounted cycle

	wins []windowAcc

	// Cumulative accounts (equal to the window sums; kept for O(1) totals).
	stack [][NumComponents]uint64              // [tid][comp] cycles
	occ   [avf.NumStructs][avf.NumFates]uint64 // bit-cycles by fate

	// Live gauges (PublishTelemetry); nil-receiver no-ops when detached.
	gComp [NumComponents]*telemetry.Gauge
	gOcc  [avf.NumStructs]*telemetry.Gauge
	gACE  [avf.NumStructs]*telemetry.Gauge
	gWins *telemetry.Gauge
}

// windowAcc is one in-memory accounting window. Residency classification
// lags residency by the pipeline depth, so closed windows keep receiving
// occupancy back-fill until the run ends; export happens after the run.
type windowAcc struct {
	stack [][NumComponents]uint64
	occ   [avf.NumStructs][avf.NumFates]uint64
}

// New builds an observer. A zero WindowCycles selects DefaultWindowCycles.
func New(o Options) *Observer {
	if o.WindowCycles == 0 {
		o.WindowCycles = DefaultWindowCycles
	}
	return &Observer{window: o.WindowCycles}
}

// Configure binds the observer to a machine: per-entry bit widths for the
// residency split, structure capacities for the occupancy denominators,
// the thread count, and the cycle accounting starts at. The processor
// calls it from SetCPIStack.
func (o *Observer) Configure(bits pipeline.Bits, caps [avf.NumStructs]uint64, threads int, start uint64) {
	if o == nil {
		return
	}
	o.bits = bits
	o.caps = caps
	o.threads = threads
	o.base = start
	o.max = start
	o.wins = o.wins[:0]
	o.stack = make([][NumComponents]uint64, threads)
	o.occ = [avf.NumStructs][avf.NumFates]uint64{}
}

// WindowCycles returns the configured window length.
func (o *Observer) WindowCycles() uint64 {
	if o == nil {
		return 0
	}
	return o.window
}

// Threads returns the configured thread count.
func (o *Observer) Threads() int {
	if o == nil {
		return 0
	}
	return o.threads
}

// Tick accounts one cycle: comps[tid] is the component thread tid's cycle
// `now` was attributed to. The processor calls it once per simulated cycle
// with a reused scratch slice; Tick copies what it keeps.
func (o *Observer) Tick(now uint64, comps []Component) {
	if o == nil {
		return
	}
	idx := int((now - o.base) / o.window)
	if idx >= len(o.wins) {
		o.grow(idx)
	}
	w := &o.wins[idx]
	for tid, c := range comps {
		w.stack[tid][c]++
		o.stack[tid][c]++
	}
	if now+1 > o.max {
		o.max = now + 1
	}
}

// Record accounts a classified uop's structure residencies, split across
// windows by fate. It is fed at the same commit/squash/end-of-run sites as
// the AVF tracker and uses the tracker's clipped-interval arithmetic, so
// the per-fate sums reconcile with the tracker bit for bit.
func (o *Observer) Record(u *pipeline.Uop, squashed bool) {
	if o == nil {
		return
	}
	fate := u.Fate(squashed)
	for _, r := range u.Residencies(o.bits) {
		o.addSpan(r.Struct, fate, r.Bits, r.Start, r.End)
	}
}

// Interval implements avf.Sink for the register file: the tracker forwards
// every positioned interval here, and the observer keeps the Reg ones (the
// uop-tracked structures already arrive through Record — accepting them
// twice would double-count). Register state has no per-uop fate, so ACE
// residency maps to the committed fate and un-ACE residency to dead (a
// register's un-ACE time is exactly its dead-value time).
func (o *Observer) Interval(s avf.Struct, tid int, bits, start, end uint64, ace bool) {
	if o == nil || s != avf.Reg {
		return
	}
	_ = tid
	fate := avf.FateDead
	if ace {
		fate = avf.FateCommitted
	}
	o.addSpan(s, fate, bits, start, end)
}

// Rebase drops all warmup-era accounting and restarts the windows at
// cycle, mirroring the tracker's rebase (avf.RebaseObserver). The
// processor calls it at the end of warmup; the tracker's sink notification
// arrives too, and a second call with the same cycle is a no-op by
// construction.
func (o *Observer) Rebase(cycle uint64) {
	if o == nil {
		return
	}
	o.base = cycle
	o.max = cycle
	o.wins = o.wins[:0]
	for tid := range o.stack {
		o.stack[tid] = [NumComponents]uint64{}
	}
	o.occ = [avf.NumStructs][avf.NumFates]uint64{}
}

// addSpan distributes bits×cycles of structure s's fate-f residency over
// the windows the interval [start, end) overlaps, clipping at the
// measurement origin exactly as avf.Tracker.AddInterval clips at its
// rebase point.
func (o *Observer) addSpan(s avf.Struct, f avf.Fate, bits, start, end uint64) {
	if start < o.base {
		start = o.base
	}
	if end <= start || bits == 0 {
		return
	}
	if end > o.max {
		o.max = end
	}
	o.occ[s][f] += bits * (end - start)
	for start < end {
		idx := int((start - o.base) / o.window)
		if idx >= len(o.wins) {
			o.grow(idx)
		}
		stop := o.base + uint64(idx+1)*o.window
		if stop > end {
			stop = end
		}
		o.wins[idx].occ[s][f] += bits * (stop - start)
		start = stop
	}
}

// grow appends windows through index idx and refreshes the live gauges
// from the newly closed window — the only allocation the steady-state
// hooks ever make, once per window.
func (o *Observer) grow(idx int) {
	for len(o.wins) <= idx {
		o.wins = append(o.wins, windowAcc{stack: make([][NumComponents]uint64, o.threads)})
	}
	o.publish()
}

// CycleCount returns thread tid's accounted cycles — the sum of its stack
// components, which the reconciliation contract pins to the simulated
// measurement-window cycles.
func (o *Observer) CycleCount(tid int) uint64 {
	if o == nil || tid >= len(o.stack) {
		return 0
	}
	var sum uint64
	for _, v := range o.stack[tid] {
		sum += v
	}
	return sum
}

// ComponentCycles returns thread tid's cycles attributed to component c.
func (o *Observer) ComponentCycles(tid int, c Component) uint64 {
	if o == nil || tid >= len(o.stack) {
		return 0
	}
	return o.stack[tid][c]
}

// FateBitCycles returns the accumulated bit-cycles of structure s resident
// with fate f.
func (o *Observer) FateBitCycles(s avf.Struct, f avf.Fate) uint64 {
	if o == nil {
		return 0
	}
	return o.occ[s][f]
}

// ACEBitCycles returns structure s's ACE bit-cycles — residency with the
// committed fate, the only ACE fate. Equals avf.Tracker.ACEBitCycles(s)
// for the occupancy-tracked structures.
func (o *Observer) ACEBitCycles(s avf.Struct) uint64 {
	return o.FateBitCycles(s, avf.FateCommitted)
}

// ResidentBitCycles returns structure s's total occupied bit-cycles over
// all fates. Equals avf.Tracker.OccupiedBitCycles(s) for the
// occupancy-tracked structures.
func (o *Observer) ResidentBitCycles(s avf.Struct) uint64 {
	if o == nil {
		return 0
	}
	var sum uint64
	for _, v := range o.occ[s] {
		sum += v
	}
	return sum
}

// Capacity returns the configured bit capacity of structure s.
func (o *Observer) Capacity(s avf.Struct) uint64 {
	if o == nil {
		return 0
	}
	return o.caps[s]
}

// Span returns the accounted cycle range [start, end).
func (o *Observer) Span() (start, end uint64) {
	if o == nil {
		return 0, 0
	}
	return o.base, o.max
}

// PublishTelemetry registers the observer's live gauges on the collector:
// smtavf_cpistack_<component> (share of the last closed window's
// thread-cycles, refreshed as windows close) and smtavf_occupancy_<S> /
// smtavf_occupancy_<S>_ace (cumulative occupied fraction of structure S
// and the ACE share of that occupancy, classified-so-far). A nil collector
// leaves the gauges detached.
func (o *Observer) PublishTelemetry(col *telemetry.Collector) {
	if o == nil {
		return
	}
	for c := Component(0); c < NumComponents; c++ {
		o.gComp[c] = col.Gauge("cpistack." + c.String())
	}
	o.gWins = col.Gauge("cpistack.windows")
	for _, s := range OccupancyStructs() {
		o.gOcc[s] = col.Gauge("occupancy." + s.String())
		o.gACE[s] = col.Gauge("occupancy." + s.String() + ".ace")
	}
}

// publish refreshes the live gauges: component shares from the last closed
// window, occupancy fractions from the cumulative accounts. Runs at
// window-roll rate, never per cycle.
func (o *Observer) publish() {
	if o.gWins == nil {
		return
	}
	o.gWins.SetUint(uint64(len(o.wins)))
	if n := len(o.wins); n >= 2 {
		w := &o.wins[n-2]
		var comp [NumComponents]uint64
		var total uint64
		for tid := range w.stack {
			for c, v := range w.stack[tid] {
				comp[c] += v
				total += v
			}
		}
		if total > 0 {
			for c := Component(0); c < NumComponents; c++ {
				o.gComp[c].Set(float64(comp[c]) / float64(total))
			}
		}
	}
	span := o.max - o.base
	if span == 0 {
		return
	}
	for _, s := range OccupancyStructs() {
		den := float64(o.caps[s]) * float64(span)
		if den == 0 {
			continue
		}
		resident := o.ResidentBitCycles(s)
		o.gOcc[s].Set(float64(resident) / den)
		if resident > 0 {
			o.gACE[s].Set(float64(o.occ[s][avf.FateCommitted]) / float64(resident))
		}
	}
}

// FormatStack renders the per-thread CPI stack as an aligned percent
// table: one column per thread plus the all-thread aggregate, components
// summing to 100% of the accounted cycles.
func (o *Observer) FormatStack() string {
	if o == nil {
		return ""
	}
	var b strings.Builder
	start, end := o.Span()
	fmt.Fprintf(&b, "CPI stack (%% of thread-cycles, cycles %d..%d):\n", start, end)
	fmt.Fprintf(&b, "  %-18s", "component")
	for tid := 0; tid < o.threads; tid++ {
		fmt.Fprintf(&b, "%9s", fmt.Sprintf("t%d", tid))
	}
	fmt.Fprintf(&b, "%9s\n", "all")
	var totals []uint64
	var grand uint64
	for tid := 0; tid < o.threads; tid++ {
		c := o.CycleCount(tid)
		totals = append(totals, c)
		grand += c
	}
	for c := Component(0); c < NumComponents; c++ {
		fmt.Fprintf(&b, "  %-18s", c)
		var all uint64
		for tid := 0; tid < o.threads; tid++ {
			all += o.stack[tid][c]
			b.WriteString(pct(o.stack[tid][c], totals[tid]))
		}
		b.WriteString(pct(all, grand))
		b.WriteByte('\n')
	}
	return b.String()
}

// FormatOccupancy renders the occupancy-by-fate decomposition: per
// structure, the occupied fraction of its bit-cycles and how that
// occupancy splits across fates (only the committed fate is ACE).
func (o *Observer) FormatOccupancy() string {
	if o == nil {
		return ""
	}
	var b strings.Builder
	span := o.max - o.base
	b.WriteString("occupancy x fate (occupied % of capacity; fate columns % of occupied):\n")
	fmt.Fprintf(&b, "  %-10s%9s", "struct", "occupied")
	for _, f := range avf.Fates() {
		fmt.Fprintf(&b, "%11s", f)
	}
	b.WriteByte('\n')
	for _, s := range OccupancyStructs() {
		fmt.Fprintf(&b, "  %-10s", s)
		resident := o.ResidentBitCycles(s)
		b.WriteString(pct(resident, o.caps[s]*span))
		for _, f := range avf.Fates() {
			fmt.Fprintf(&b, "%10.2f%%", 100*ratio(o.occ[s][f], resident))
		}
		b.WriteByte('\n')
	}
	return b.String()
}

func pct(num, den uint64) string {
	return fmt.Sprintf("%8.2f%%", 100*ratio(num, den))
}

func ratio(num, den uint64) float64 {
	if den == 0 {
		return 0
	}
	return float64(num) / float64(den)
}
