package cpistack

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"

	"smtavf/internal/avf"
)

// chromeEvent is one trace_event object; field order is the JSON output
// order, matching internal/pipetrace's exporter so the two traces merge
// cleanly in a viewer.
type chromeEvent struct {
	Name string      `json:"name"`
	Cat  string      `json:"cat,omitempty"`
	Ph   string      `json:"ph"`
	Ts   uint64      `json:"ts"`
	Pid  int         `json:"pid"`
	Tid  int         `json:"tid"`
	Args interface{} `json:"args,omitempty"`
}

// WriteChrome writes the windows as Chrome trace_event counter ("C")
// tracks, loadable by chrome://tracing and Perfetto: one "cpi/t<tid>"
// counter per thread whose series are the stack components (stacked by
// the viewer, so the track is the thread's CPI stack over time), and one
// "occupancy/<struct>" counter per tracked structure whose series are the
// fate bit-cycle splits. One simulated cycle maps to one microsecond,
// matching the pipetrace exporter, so a cpistack overlay lines up with a
// flight recording of the same run.
func (o *Observer) WriteChrome(w io.Writer) error {
	if o == nil {
		return nil
	}
	bw := bufio.NewWriter(w)
	bw.WriteString("{\"displayTimeUnit\": \"ms\",\n\"traceEvents\": [\n")
	first := true
	emit := func(e chromeEvent) error {
		data, err := json.Marshal(e)
		if err != nil {
			return err
		}
		if !first {
			bw.WriteString(",\n")
		}
		first = false
		_, err = bw.Write(data)
		return err
	}

	for tid := 0; tid < o.threads; tid++ {
		if err := emit(chromeEvent{
			Name: "process_name", Ph: "M", Pid: tid,
			Args: map[string]string{"name": fmt.Sprintf("hw thread %d", tid)},
		}); err != nil {
			return err
		}
	}

	for i := range o.wins {
		win := &o.wins[i]
		ts := o.base + uint64(i)*o.window
		for tid := 0; tid < o.threads; tid++ {
			args := make(map[string]uint64, NumComponents)
			for c := Component(0); c < NumComponents; c++ {
				args[c.String()] = win.stack[tid][c]
			}
			if err := emit(chromeEvent{
				Name: fmt.Sprintf("cpi/t%d", tid), Cat: "cpistack", Ph: "C",
				Ts: ts, Pid: tid, Args: args,
			}); err != nil {
				return err
			}
		}
		for _, s := range OccupancyStructs() {
			args := make(map[string]uint64, avf.NumFates)
			for _, f := range avf.Fates() {
				args[f.String()] = win.occ[s][f]
			}
			if err := emit(chromeEvent{
				Name: "occupancy/" + s.String(), Cat: "occupancy", Ph: "C",
				Ts: ts, Args: args,
			}); err != nil {
				return err
			}
		}
	}
	bw.WriteString("\n]}\n")
	return bw.Flush()
}
