package cpistack

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"smtavf/internal/avf"
	"smtavf/internal/isa"
	"smtavf/internal/pipeline"
)

// testObserver builds a configured 2-thread observer with a small window.
func testObserver(window uint64) *Observer {
	o := New(Options{WindowCycles: window})
	var caps [avf.NumStructs]uint64
	for _, s := range OccupancyStructs() {
		caps[s] = 1000
	}
	o.Configure(pipeline.DefaultBits(), caps, 2, 0)
	return o
}

func TestNilObserverIsNoOp(t *testing.T) {
	var o *Observer
	o.Configure(pipeline.DefaultBits(), [avf.NumStructs]uint64{}, 2, 0)
	o.Tick(0, []Component{CompBase, CompIdle})
	o.Record(&pipeline.Uop{}, false)
	o.Interval(avf.Reg, 0, 64, 0, 10, true)
	o.Rebase(5)
	o.PublishTelemetry(nil)
	if o.CycleCount(0) != 0 || o.Windows() != nil || o.FormatStack() != "" {
		t.Fatal("nil observer accumulated state")
	}
	if err := o.WriteFile("/nonexistent/should-not-be-written"); err != nil {
		t.Fatal("nil observer tried to write")
	}
}

func TestComponentNames(t *testing.T) {
	seen := map[string]bool{}
	for _, c := range Components() {
		n := c.String()
		if n == "" || strings.Contains(n, "component(") {
			t.Fatalf("component %d has no name", c)
		}
		if seen[n] {
			t.Fatalf("duplicate component name %q", n)
		}
		seen[n] = true
	}
	if got := Component(NumComponents).String(); got != "component(11)" {
		t.Fatalf("out-of-range String() = %q", got)
	}
}

// TestSpanSplitsAcrossWindows pins the window arithmetic: an interval
// spanning window boundaries lands in each window pro rata and the window
// sum equals the cumulative total.
func TestSpanSplitsAcrossWindows(t *testing.T) {
	o := testObserver(10)
	// 64 bits resident [5, 25): 5 cycles in window 0, 10 in window 1, 5 in
	// window 2.
	o.Interval(avf.Reg, 0, 64, 5, 25, true)
	o.Tick(29, []Component{CompBase, CompIdle}) // materialize 3 windows
	wins := o.Windows()
	if len(wins) != 3 {
		t.Fatalf("got %d windows, want 3", len(wins))
	}
	wantPerWin := []uint64{64 * 5, 64 * 10, 64 * 5}
	for i, w := range wins {
		if got := w.Occupancy["Reg"]["committed"]; got != wantPerWin[i] {
			t.Errorf("window %d: Reg committed bit-cycles %d, want %d", i, got, wantPerWin[i])
		}
	}
	if got := o.ACEBitCycles(avf.Reg); got != 64*20 {
		t.Errorf("cumulative ACE bit-cycles %d, want %d", got, 64*20)
	}
	// Un-ACE register residency is dead-value time.
	o.Interval(avf.Reg, 1, 64, 0, 10, false)
	if got := o.FateBitCycles(avf.Reg, avf.FateDead); got != 64*10 {
		t.Errorf("dead bit-cycles %d, want %d", got, 64*10)
	}
	// Non-Reg structures arrive via Record, not the sink: dropped here.
	o.Interval(avf.IQ, 0, 80, 0, 10, true)
	if got := o.ACEBitCycles(avf.IQ); got != 0 {
		t.Errorf("sink IQ interval accepted: %d bit-cycles", got)
	}
}

// TestRecordUsesFateAndClipsAtRebase checks Record's residency split and
// that Rebase drops prior accounting and clips later spans, mirroring the
// tracker.
func TestRecordUsesFateAndClipsAtRebase(t *testing.T) {
	o := testObserver(10)
	u := &pipeline.Uop{Instruction: isa.Instruction{Class: isa.IntALU}, EnterIQ: 2, IQCycles: 6}
	o.Record(u, false) // committed fate
	if got := o.ACEBitCycles(avf.IQ); got != 80*6 {
		t.Fatalf("IQ ACE bit-cycles %d, want %d", got, 80*6)
	}
	o.Rebase(10)
	if o.ACEBitCycles(avf.IQ) != 0 || o.CycleCount(0) != 0 {
		t.Fatal("rebase kept prior accounting")
	}
	// An interval straddling the rebase point is clipped to the measured
	// side, exactly like avf.Tracker.AddInterval.
	u2 := &pipeline.Uop{Instruction: isa.Instruction{Class: isa.IntALU}, EnterIQ: 6, IQCycles: 8} // [6, 14) -> [10, 14)
	o.Record(u2, true)                                                                            // squashed fate, un-ACE
	if got := o.FateBitCycles(avf.IQ, avf.FateSquashed); got != 80*4 {
		t.Fatalf("clipped squashed bit-cycles %d, want %d", got, 80*4)
	}
	if got := o.ACEBitCycles(avf.IQ); got != 0 {
		t.Fatalf("squashed uop classified ACE: %d", got)
	}
}

func fillObserver(t *testing.T) *Observer {
	t.Helper()
	o := testObserver(10)
	comps := []Component{CompBase, CompL2Miss}
	for cyc := uint64(0); cyc < 25; cyc++ {
		o.Tick(cyc, comps)
	}
	o.Interval(avf.Reg, 0, 64, 0, 25, true)
	o.Record(&pipeline.Uop{Instruction: isa.Instruction{Class: isa.IntALU}, EnterIQ: 3, IQCycles: 12, EnterROB: 3, ROBCycles: 14}, false)
	return o
}

func TestJSONLRoundTripAndSchema(t *testing.T) {
	o := fillObserver(t)
	path := filepath.Join(t.TempDir(), "cpistack.jsonl")
	if err := o.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	back, err := ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	wins := o.Windows()
	if len(back) != len(wins) {
		t.Fatalf("round trip lost windows: %d != %d", len(back), len(wins))
	}
	for i := range back {
		if back[i].V != SchemaVersion {
			t.Fatalf("window %d schema v%d, want v%d", i, back[i].V, SchemaVersion)
		}
		if back[i].Stack["base"][0] != wins[i].Stack["base"][0] {
			t.Fatalf("window %d base cycles drifted through the round trip", i)
		}
	}
	// A future schema version must be rejected.
	newer := wins
	newer[0].V = SchemaVersion + 1
	if err := writeRaw(path, newer); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadFile(path); err == nil {
		t.Fatal("reader accepted a newer schema version")
	}
}

func writeRaw(path string, wins []Window) error {
	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	for i := range wins {
		if err := enc.Encode(&wins[i]); err != nil {
			return err
		}
	}
	return os.WriteFile(path, buf.Bytes(), 0o644)
}

func TestCSVExport(t *testing.T) {
	o := fillObserver(t)
	var buf bytes.Buffer
	if err := o.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimRight(buf.String(), "\n"), "\n")
	if len(lines) != 1+len(o.Windows()) {
		t.Fatalf("%d CSV lines for %d windows", len(lines), len(o.Windows()))
	}
	header := strings.Split(lines[0], ",")
	wantCols := 3 + o.Threads()*NumComponents + len(OccupancyStructs())*int(avf.NumFates)
	if len(header) != wantCols {
		t.Fatalf("%d header columns, want %d", len(header), wantCols)
	}
	for _, ln := range lines[1:] {
		if got := len(strings.Split(ln, ",")); got != wantCols {
			t.Fatalf("row has %d columns, header has %d", got, wantCols)
		}
	}
	if header[3] != "t0.base" || header[len(header)-1] != "Reg.squashed" {
		t.Fatalf("unexpected header shape: first data col %q, last %q", header[3], header[len(header)-1])
	}
}

func TestChromeExport(t *testing.T) {
	o := fillObserver(t)
	var buf bytes.Buffer
	if err := o.WriteChrome(&buf); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []struct {
			Name string `json:"name"`
			Ph   string `json:"ph"`
			Ts   uint64 `json:"ts"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("chrome trace is not valid JSON: %v", err)
	}
	var counters, meta int
	names := map[string]bool{}
	for _, e := range doc.TraceEvents {
		switch e.Ph {
		case "C":
			counters++
			names[e.Name] = true
		case "M":
			meta++
		default:
			t.Fatalf("unexpected phase %q", e.Ph)
		}
	}
	wantCounters := len(o.Windows()) * (o.Threads() + len(OccupancyStructs()))
	if counters != wantCounters {
		t.Fatalf("%d counter events, want %d", counters, wantCounters)
	}
	for _, n := range []string{"cpi/t0", "cpi/t1", "occupancy/IQ", "occupancy/Reg"} {
		if !names[n] {
			t.Fatalf("missing counter track %q", n)
		}
	}
}

// TestWriteFileDispatch checks the extension-driven format choice.
func TestWriteFileDispatch(t *testing.T) {
	o := fillObserver(t)
	dir := t.TempDir()
	for _, tc := range []struct {
		name   string
		prefix string // expected first byte(s)
	}{
		{"w.jsonl", `{"v":`},
		{"w.csv", "window,"},
		{"w.json", `{"displayTimeUnit"`},
	} {
		path := filepath.Join(dir, tc.name)
		if err := o.WriteFile(path); err != nil {
			t.Fatal(err)
		}
		data, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.HasPrefix(data, []byte(tc.prefix)) {
			t.Errorf("%s starts %q, want prefix %q", tc.name, data[:20], tc.prefix)
		}
	}
}
