package cpistack

import (
	"fmt"
	"io"
	"path/filepath"
	"strings"

	"smtavf/internal/avf"
	"smtavf/internal/jsonlio"
)

// SchemaVersion is stamped into every exported Window's "v" field.
// Readers reject records newer than they understand.
const SchemaVersion = 1

// Window is one exported accounting window: the per-thread CPI stack for
// the window's cycles and the occupancy-by-fate bit-cycles of every
// tracked structure. Map keys are component/structure/fate names, so the
// JSON encoding is self-describing and (encoding/json sorts map keys)
// byte-deterministic.
type Window struct {
	V     int    `json:"v"`
	Index int    `json:"window"`
	Start uint64 `json:"start_cycle"`
	End   uint64 `json:"end_cycle"`
	// Stack maps component name -> per-thread cycles ([tid]).
	Stack map[string][]uint64 `json:"stack"`
	// Occupancy maps structure name -> fate name -> bit-cycles.
	Occupancy map[string]map[string]uint64 `json:"occupancy"`
}

// Windows snapshots every accounting window in order. The final window is
// clipped to the accounted span, so window sums equal the cumulative
// accessors exactly.
func (o *Observer) Windows() []Window {
	if o == nil {
		return nil
	}
	out := make([]Window, len(o.wins))
	for i := range o.wins {
		w := &o.wins[i]
		rec := Window{
			V:         SchemaVersion,
			Index:     i,
			Start:     o.base + uint64(i)*o.window,
			End:       o.base + uint64(i+1)*o.window,
			Stack:     make(map[string][]uint64, NumComponents),
			Occupancy: make(map[string]map[string]uint64, len(OccupancyStructs())),
		}
		if rec.End > o.max {
			rec.End = o.max
		}
		for c := Component(0); c < NumComponents; c++ {
			col := make([]uint64, o.threads)
			for tid := range w.stack {
				col[tid] = w.stack[tid][c]
			}
			rec.Stack[c.String()] = col
		}
		for _, s := range OccupancyStructs() {
			byFate := make(map[string]uint64, avf.NumFates)
			for _, f := range avf.Fates() {
				byFate[f.String()] = w.occ[s][f]
			}
			rec.Occupancy[s.String()] = byFate
		}
		out[i] = rec
	}
	return out
}

// WriteFile exports the windows to path, choosing the format from the
// extension: ".csv" writes the flat CSV table, ".json" writes Chrome
// trace_event counter tracks (load in chrome://tracing or Perfetto), and
// anything else writes versioned JSONL (".gz" compresses, JSONL only).
func (o *Observer) WriteFile(path string) error {
	if o == nil {
		return nil
	}
	switch strings.ToLower(filepath.Ext(path)) {
	case ".csv":
		w, err := jsonlio.OpenWriter(path)
		if err != nil {
			return err
		}
		if err := o.WriteCSV(w); err != nil {
			w.Close()
			return err
		}
		return w.Close()
	case ".json":
		w, err := jsonlio.OpenWriter(path)
		if err != nil {
			return err
		}
		if err := o.WriteChrome(w); err != nil {
			w.Close()
			return err
		}
		return w.Close()
	default:
		return jsonlio.WriteFile(path, o.Windows())
	}
}

// ReadFile loads windows written as JSONL by WriteFile, rejecting records
// with a schema version newer than SchemaVersion.
func ReadFile(path string) ([]Window, error) {
	return jsonlio.ReadFile(path, func(w *Window) error {
		if w.V > SchemaVersion {
			return fmt.Errorf("cpistack: window schema v%d newer than supported v%d", w.V, SchemaVersion)
		}
		return nil
	})
}

// WriteCSV writes the windows as a flat table: one row per window, a
// cycles column per (thread, component), and a bit-cycles column per
// (structure, fate).
func (o *Observer) WriteCSV(w io.Writer) error {
	if o == nil {
		return nil
	}
	var b strings.Builder
	b.WriteString("window,start_cycle,end_cycle")
	for tid := 0; tid < o.threads; tid++ {
		for c := Component(0); c < NumComponents; c++ {
			fmt.Fprintf(&b, ",t%d.%s", tid, c)
		}
	}
	for _, s := range OccupancyStructs() {
		for _, f := range avf.Fates() {
			fmt.Fprintf(&b, ",%s.%s", s, f)
		}
	}
	b.WriteByte('\n')
	if _, err := io.WriteString(w, b.String()); err != nil {
		return err
	}
	for i := range o.wins {
		b.Reset()
		win := &o.wins[i]
		start := o.base + uint64(i)*o.window
		end := start + o.window
		if end > o.max {
			end = o.max
		}
		fmt.Fprintf(&b, "%d,%d,%d", i, start, end)
		for tid := 0; tid < o.threads; tid++ {
			for c := Component(0); c < NumComponents; c++ {
				fmt.Fprintf(&b, ",%d", win.stack[tid][c])
			}
		}
		for _, s := range OccupancyStructs() {
			for _, f := range avf.Fates() {
				fmt.Fprintf(&b, ",%d", win.occ[s][f])
			}
		}
		b.WriteByte('\n')
		if _, err := io.WriteString(w, b.String()); err != nil {
			return err
		}
	}
	return nil
}
