// Package workload defines the synthetic SPEC CPU 2000 benchmark profiles
// and the multithreaded workload mixes of the paper's Table 2.
//
// Each profile substitutes for the real benchmark binary (see DESIGN.md §4):
// the knobs are calibrated so that CPU-intensive benchmarks fit their data
// in the L1/L2 caches and sustain high ILP, while memory-intensive
// benchmarks exceed the 2MB L2 and stall on long-latency misses — the axis
// along which the paper's AVF results move.
package workload

import (
	"fmt"
	"sort"

	"smtavf/internal/trace"
)

const (
	kib = 1 << 10
	mib = 1 << 20
)

// profiles maps benchmark name to its synthetic profile. Working sets are
// sized against the paper's hierarchy: DL1 64KB, L2 2MB.
var profiles = map[string]trace.Profile{
	// --- CPU-intensive (integer) ---
	"bzip2": {
		Name: "bzip2", LoadFrac: 0.24, StoreFrac: 0.10, BranchFrac: 0.12,
		NopFrac: 0.02, FPFrac: 0, MulFrac: 0.02, DeadFrac: 0.08,
		WorkingSet: 16 * kib, StrideFrac: 0.85, BranchPredictability: 0.93,
		DepDist: 5, CodeBlocks: 192,
	},
	"eon": {
		Name: "eon", LoadFrac: 0.26, StoreFrac: 0.14, BranchFrac: 0.10,
		NopFrac: 0.02, FPFrac: 0.25, MulFrac: 0.05, DeadFrac: 0.07,
		WorkingSet: 8 * kib, StrideFrac: 0.8, BranchPredictability: 0.95,
		DepDist: 5, CallFrac: 0.10, CodeBlocks: 384,
	},
	"gcc": {
		Name: "gcc", LoadFrac: 0.25, StoreFrac: 0.13, BranchFrac: 0.16,
		NopFrac: 0.03, FPFrac: 0, MulFrac: 0.01, DeadFrac: 0.12,
		WorkingSet: 20 * kib, StrideFrac: 0.6, BranchPredictability: 0.9,
		DepDist: 4, CallFrac: 0.06, CodeBlocks: 384,
	},
	"perlbmk": {
		Name: "perlbmk", LoadFrac: 0.27, StoreFrac: 0.15, BranchFrac: 0.14,
		NopFrac: 0.02, FPFrac: 0, MulFrac: 0.02, DeadFrac: 0.09,
		WorkingSet: 12 * kib, StrideFrac: 0.7, BranchPredictability: 0.94,
		DepDist: 4, CallFrac: 0.08, CodeBlocks: 320,
	},
	"crafty": {
		Name: "crafty", LoadFrac: 0.28, StoreFrac: 0.08, BranchFrac: 0.11,
		NopFrac: 0.02, FPFrac: 0, MulFrac: 0.03, DeadFrac: 0.06,
		WorkingSet: 12 * kib, StrideFrac: 0.65, BranchPredictability: 0.92,
		DepDist: 6, CodeBlocks: 256,
	},
	"parser": {
		Name: "parser", LoadFrac: 0.24, StoreFrac: 0.09, BranchFrac: 0.13,
		NopFrac: 0.02, FPFrac: 0, MulFrac: 0.01, DeadFrac: 0.08,
		WorkingSet: 16 * kib, StrideFrac: 0.55, BranchPredictability: 0.91,
		DepDist: 4, CallFrac: 0.05, CodeBlocks: 320,
	},
	"gap": {
		Name: "gap", LoadFrac: 0.25, StoreFrac: 0.10, BranchFrac: 0.10,
		NopFrac: 0.02, FPFrac: 0, MulFrac: 0.06, DeadFrac: 0.07,
		WorkingSet: 12 * kib, StrideFrac: 0.75, BranchPredictability: 0.94,
		DepDist: 5, CodeBlocks: 256,
	},
	// --- CPU-intensive (floating point) ---
	"mesa": {
		Name: "mesa", LoadFrac: 0.23, StoreFrac: 0.12, BranchFrac: 0.08,
		NopFrac: 0.02, FPFrac: 0.5, MulFrac: 0.10, DivFrac: 0.01,
		DeadFrac: 0.06, WorkingSet: 12 * kib, StrideFrac: 0.85,
		BranchPredictability: 0.96, DepDist: 6, CodeBlocks: 256,
	},
	"facerec": {
		Name: "facerec", LoadFrac: 0.26, StoreFrac: 0.08, BranchFrac: 0.06,
		NopFrac: 0.02, FPFrac: 0.55, MulFrac: 0.12, DivFrac: 0.01,
		DeadFrac: 0.05, WorkingSet: 16 * kib, StrideFrac: 0.9,
		BranchPredictability: 0.97, DepDist: 7, CodeBlocks: 128,
	},
	"wupwise": {
		Name: "wupwise", LoadFrac: 0.24, StoreFrac: 0.10, BranchFrac: 0.05,
		NopFrac: 0.02, FPFrac: 0.6, MulFrac: 0.15, DivFrac: 0.005,
		DeadFrac: 0.04, WorkingSet: 16 * kib, StrideFrac: 0.92,
		BranchPredictability: 0.98, DepDist: 8, CodeBlocks: 96,
	},
	"fma3d": {
		Name: "fma3d", LoadFrac: 0.26, StoreFrac: 0.12, BranchFrac: 0.07,
		NopFrac: 0.02, FPFrac: 0.55, MulFrac: 0.12, DivFrac: 0.01,
		DeadFrac: 0.06, WorkingSet: 16 * kib, StrideFrac: 0.8,
		BranchPredictability: 0.95, DepDist: 6, CodeBlocks: 256,
	},
	// --- Memory-intensive (integer) ---
	"mcf": {
		Name: "mcf", MemBound: true, LoadFrac: 0.34, StoreFrac: 0.09,
		BranchFrac: 0.12, NopFrac: 0.02, FPFrac: 0, MulFrac: 0.01,
		DeadFrac: 0.05, WorkingSet: 64 * mib, HotFrac: 0.55, HotSet: 24 * kib,
		StrideFrac: 0.1, PageLocal: 0.6,
		BranchPredictability: 0.88, DepDist: 3, CodeBlocks: 96,
	},
	"twolf": {
		Name: "twolf", MemBound: true, LoadFrac: 0.28, StoreFrac: 0.08,
		BranchFrac: 0.13, NopFrac: 0.02, FPFrac: 0.05, MulFrac: 0.03,
		DeadFrac: 0.06, WorkingSet: 4 * mib, HotFrac: 0.6, HotSet: 24 * kib,
		StrideFrac:           0.25,
		BranchPredictability: 0.87, DepDist: 4, CodeBlocks: 192,
	},
	"vpr": {
		Name: "vpr", MemBound: true, LoadFrac: 0.29, StoreFrac: 0.09,
		BranchFrac: 0.12, NopFrac: 0.02, FPFrac: 0.1, MulFrac: 0.03,
		DeadFrac: 0.06, WorkingSet: 6 * mib, HotFrac: 0.6, HotSet: 24 * kib,
		StrideFrac:           0.3,
		BranchPredictability: 0.89, DepDist: 4, CodeBlocks: 192,
	},
	// --- Memory-intensive (floating point) ---
	"equake": {
		Name: "equake", MemBound: true, LoadFrac: 0.31, StoreFrac: 0.08,
		BranchFrac: 0.06, NopFrac: 0.02, FPFrac: 0.5, MulFrac: 0.12,
		DivFrac: 0.01, DeadFrac: 0.04, WorkingSet: 16 * mib, HotFrac: 0.5,
		HotSet: 16 * kib, StrideFrac: 0.55, BranchPredictability: 0.96, DepDist: 4,
		CodeBlocks: 96,
	},
	"swim": {
		Name: "swim", MemBound: true, LoadFrac: 0.30, StoreFrac: 0.12,
		BranchFrac: 0.03, NopFrac: 0.02, FPFrac: 0.6, MulFrac: 0.15,
		DeadFrac: 0.03, WorkingSet: 48 * mib, HotFrac: 0.3, HotSet: 16 * kib,
		StrideFrac: 0.9, Stride: 16,
		BranchPredictability: 0.99, DepDist: 8, CodeBlocks: 48,
	},
	"lucas": {
		Name: "lucas", MemBound: true, LoadFrac: 0.27, StoreFrac: 0.11,
		BranchFrac: 0.03, NopFrac: 0.02, FPFrac: 0.65, MulFrac: 0.2,
		DeadFrac: 0.03, WorkingSet: 32 * mib, HotFrac: 0.35, HotSet: 16 * kib,
		StrideFrac: 0.85, Stride: 32,
		BranchPredictability: 0.99, DepDist: 7, CodeBlocks: 48,
	},
	"applu": {
		Name: "applu", MemBound: true, LoadFrac: 0.29, StoreFrac: 0.11,
		BranchFrac: 0.04, NopFrac: 0.02, FPFrac: 0.6, MulFrac: 0.15,
		DivFrac: 0.01, DeadFrac: 0.04, WorkingSet: 40 * mib, HotFrac: 0.35,
		HotSet: 16 * kib, StrideFrac: 0.85, Stride: 16, BranchPredictability: 0.98,
		DepDist: 6, CodeBlocks: 64,
	},
	"mgrid": {
		Name: "mgrid", MemBound: true, LoadFrac: 0.32, StoreFrac: 0.07,
		BranchFrac: 0.02, NopFrac: 0.02, FPFrac: 0.6, MulFrac: 0.18,
		DeadFrac: 0.03, WorkingSet: 24 * mib, HotFrac: 0.35, HotSet: 16 * kib,
		StrideFrac: 0.9, Stride: 16,
		BranchPredictability: 0.99, DepDist: 7, CodeBlocks: 48,
	},
	"galgel": {
		Name: "galgel", MemBound: true, LoadFrac: 0.28, StoreFrac: 0.09,
		BranchFrac: 0.05, NopFrac: 0.02, FPFrac: 0.6, MulFrac: 0.18,
		DivFrac: 0.005, DeadFrac: 0.04, WorkingSet: 8 * mib, HotFrac: 0.45,
		HotSet: 16 * kib, StrideFrac: 0.7, Stride: 8, BranchPredictability: 0.97,
		DepDist: 6, CodeBlocks: 64,
	},
}

// Profile returns the synthetic profile for benchmark name.
func Profile(name string) (trace.Profile, error) {
	p, ok := profiles[name]
	if !ok {
		return trace.Profile{}, fmt.Errorf("workload: unknown benchmark %q", name)
	}
	return p, nil
}

// Names returns all benchmark names in sorted order.
func Names() []string {
	out := make([]string, 0, len(profiles))
	for n := range profiles {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// MemBound reports the paper's CPU/MEM classification of benchmark name.
func MemBound(name string) (bool, error) {
	p, err := Profile(name)
	if err != nil {
		return false, err
	}
	return p.MemBound, nil
}
