package workload

import (
	"testing"

	"smtavf/internal/trace"
)

func TestEveryMixBenchmarkHasProfile(t *testing.T) {
	for _, m := range Mixes() {
		for _, b := range m.Benchmarks {
			if _, err := Profile(b); err != nil {
				t.Errorf("mix %s references unknown benchmark %q", m.Name(), b)
			}
		}
	}
}

func TestMixSizes(t *testing.T) {
	for _, m := range Mixes() {
		if len(m.Benchmarks) != m.Contexts {
			t.Errorf("mix %s has %d benchmarks for %d contexts", m.Name(), len(m.Benchmarks), m.Contexts)
		}
	}
}

func TestMixComposition(t *testing.T) {
	// CPU mixes hold only CPU-bound threads, MEM only memory-bound, and
	// MIX exactly half and half (paper Table 2 construction).
	for _, m := range Mixes() {
		memCount := 0
		for _, b := range m.Benchmarks {
			mb, err := MemBound(b)
			if err != nil {
				t.Fatal(err)
			}
			if mb {
				memCount++
			}
		}
		switch m.Kind {
		case CPU:
			if memCount != 0 {
				t.Errorf("mix %s (CPU) contains %d memory-bound threads", m.Name(), memCount)
			}
		case MEM:
			if memCount != m.Contexts {
				t.Errorf("mix %s (MEM) contains %d/%d memory-bound threads", m.Name(), memCount, m.Contexts)
			}
		case MIX:
			if memCount != m.Contexts/2 {
				t.Errorf("mix %s (MIX) contains %d/%d memory-bound threads", m.Name(), memCount, m.Contexts)
			}
		}
	}
}

func TestTable2Coverage(t *testing.T) {
	// 2 and 4 contexts have groups A and B for each kind; 8 contexts has
	// a single group (paper §3).
	for _, contexts := range []int{2, 4} {
		for _, k := range Kinds() {
			for _, g := range []Group{GroupA, GroupB} {
				if _, err := Lookup(contexts, k, g); err != nil {
					t.Errorf("missing %d-context %s group %s", contexts, k, g)
				}
			}
		}
	}
	for _, k := range Kinds() {
		if _, err := Lookup(8, k, GroupA); err != nil {
			t.Errorf("missing 8-context %s", k)
		}
		if _, err := Lookup(8, k, GroupB); err == nil {
			t.Errorf("unexpected 8-context %s group B", k)
		}
	}
}

func TestLookupUnknown(t *testing.T) {
	if _, err := Lookup(3, CPU, GroupA); err == nil {
		t.Error("lookup of 3-context mix should fail")
	}
}

func TestGroups(t *testing.T) {
	if got := Groups(2); len(got) != 2 {
		t.Errorf("Groups(2) = %v", got)
	}
	if got := Groups(8); len(got) != 1 || got[0] != GroupA {
		t.Errorf("Groups(8) = %v", got)
	}
}

func TestProfileErrors(t *testing.T) {
	if _, err := Profile("nonexistent"); err == nil {
		t.Error("unknown benchmark should error")
	}
	if _, err := MemBound("nonexistent"); err == nil {
		t.Error("unknown benchmark should error")
	}
}

func TestNamesSortedAndComplete(t *testing.T) {
	names := Names()
	if len(names) != len(profiles) {
		t.Fatalf("Names() returned %d of %d", len(names), len(profiles))
	}
	for i := 1; i < len(names); i++ {
		if names[i-1] >= names[i] {
			t.Fatal("Names() not sorted")
		}
	}
}

func TestProfilesInternallyConsistent(t *testing.T) {
	for name, p := range profiles {
		if p.Name != name {
			t.Errorf("profile %q has Name %q", name, p.Name)
		}
		if s := p.LoadFrac + p.StoreFrac + p.BranchFrac + p.NopFrac; s >= 1 {
			t.Errorf("%s: mix fractions sum to %.2f", name, s)
		}
		if p.WorkingSet == 0 {
			t.Errorf("%s: zero working set", name)
		}
		if p.BranchPredictability <= 0.5 || p.BranchPredictability > 1 {
			t.Errorf("%s: implausible predictability %v", name, p.BranchPredictability)
		}
	}
}

func TestWorkingSetsSeparateCPUFromMEM(t *testing.T) {
	// The CPU/MEM classification must be backed by the working sets: a
	// memory-bound benchmark's cold region must exceed the 2MB L2.
	const l2 = 2 << 20
	for name, p := range profiles {
		if p.MemBound && p.WorkingSet <= l2 {
			t.Errorf("%s is memory-bound but its working set (%d) fits the L2", name, p.WorkingSet)
		}
		if !p.MemBound && p.WorkingSet > 64<<10 {
			t.Errorf("%s is CPU-bound but its working set (%d) exceeds the DL1", name, p.WorkingSet)
		}
	}
}

func TestMixName(t *testing.T) {
	m := Mix{Contexts: 4, Kind: MEM, Group: GroupA}
	if m.Name() != "4ctx-MEM-A" {
		t.Errorf("Name() = %q", m.Name())
	}
}

func TestKindStrings(t *testing.T) {
	if CPU.String() != "CPU" || MIX.String() != "MIX" || MEM.String() != "MEM" {
		t.Error("kind names wrong")
	}
	if GroupA.String() != "A" || GroupB.String() != "B" {
		t.Error("group names wrong")
	}
}

func TestMixesReturnsCopy(t *testing.T) {
	a := Mixes()
	a[0].Contexts = 99
	if Mixes()[0].Contexts == 99 {
		t.Error("Mixes() exposes internal state")
	}
}

func TestGeneratorsBuildFromProfiles(t *testing.T) {
	for _, name := range Names() {
		p, err := Profile(name)
		if err != nil {
			t.Fatal(err)
		}
		g := trace.NewSynthetic(p, 1)
		for i := 0; i < 100; i++ {
			g.Next()
		}
	}
}
