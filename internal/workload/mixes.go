package workload

import "fmt"

// Kind classifies a multithreaded mix by the behaviour of its threads
// (paper Table 2): all CPU-intensive, all memory-intensive, or half/half.
type Kind int

// Mix kinds.
const (
	CPU Kind = iota
	MIX
	MEM
)

func (k Kind) String() string {
	switch k {
	case CPU:
		return "CPU"
	case MIX:
		return "MIX"
	case MEM:
		return "MEM"
	}
	return fmt.Sprintf("kind(%d)", int(k))
}

// Kinds lists all mix kinds in presentation order.
func Kinds() []Kind { return []Kind{CPU, MIX, MEM} }

// Group distinguishes the paper's two workload groups per kind.
type Group int

// Workload groups. The paper builds groups A and B for 2- and 4-context
// workloads; 8-context workloads have a single group (A) because too few
// diverse benchmarks remain.
const (
	GroupA Group = iota
	GroupB
)

func (g Group) String() string {
	if g == GroupA {
		return "A"
	}
	return "B"
}

// Mix is one multithreaded workload of Table 2.
type Mix struct {
	Contexts   int
	Kind       Kind
	Group      Group
	Benchmarks []string
}

// Name renders the mix identity, e.g. "4ctx-MEM-A".
func (m Mix) Name() string {
	return fmt.Sprintf("%dctx-%s-%s", m.Contexts, m.Kind, m.Group)
}

// table2 reproduces the paper's Table 2. The 4-context group-A mixes are
// cross-checked against the per-thread breakdowns of Figures 3 and 4
// (bzip2/eon/gcc/perlbmk, gcc/mcf/vpr/perlbmk, mcf/equake/vpr/swim); the
// OCR of Table 2 itself is partially garbled, so where the two disagree the
// figures win.
var table2 = []Mix{
	// 2-context
	{2, CPU, GroupA, []string{"bzip2", "eon"}},
	{2, CPU, GroupB, []string{"facerec", "wupwise"}},
	{2, MIX, GroupA, []string{"eon", "twolf"}},
	{2, MIX, GroupB, []string{"wupwise", "equake"}},
	{2, MEM, GroupA, []string{"mcf", "twolf"}},
	{2, MEM, GroupB, []string{"equake", "vpr"}},
	// 4-context
	{4, CPU, GroupA, []string{"bzip2", "eon", "gcc", "perlbmk"}},
	{4, CPU, GroupB, []string{"mesa", "facerec", "wupwise", "perlbmk"}},
	{4, MIX, GroupA, []string{"gcc", "mcf", "vpr", "perlbmk"}},
	{4, MIX, GroupB, []string{"mesa", "twolf", "applu", "perlbmk"}},
	{4, MEM, GroupA, []string{"mcf", "equake", "vpr", "swim"}},
	{4, MEM, GroupB, []string{"galgel", "twolf", "applu", "lucas"}},
	// 8-context (single group)
	{8, CPU, GroupA, []string{"gap", "bzip2", "facerec", "eon", "mesa", "perlbmk", "parser", "wupwise"}},
	{8, MIX, GroupA, []string{"perlbmk", "mcf", "bzip2", "vpr", "mesa", "swim", "eon", "lucas"}},
	{8, MEM, GroupA, []string{"mcf", "twolf", "swim", "lucas", "equake", "applu", "vpr", "mgrid"}},
}

// Mixes returns every workload mix of Table 2.
func Mixes() []Mix {
	out := make([]Mix, len(table2))
	copy(out, table2)
	return out
}

// Lookup finds the mix for a context count, kind, and group.
func Lookup(contexts int, kind Kind, group Group) (Mix, error) {
	for _, m := range table2 {
		if m.Contexts == contexts && m.Kind == kind && m.Group == group {
			return m, nil
		}
	}
	return Mix{}, fmt.Errorf("workload: no %dctx %s group %s mix in Table 2", contexts, kind, group)
}

// Groups returns the groups available at a context count (A and B for 2 and
// 4 contexts, A only for 8).
func Groups(contexts int) []Group {
	if contexts >= 8 {
		return []Group{GroupA}
	}
	return []Group{GroupA, GroupB}
}
