package workload_test

import (
	"testing"

	"smtavf/internal/core"
	"smtavf/internal/trace"
	"smtavf/internal/workload"
)

// TestCalibration runs every benchmark standalone and pins its behaviour
// to its paper classification: CPU-intensive benchmarks must sustain high
// IPC with few DL1 load misses, memory-intensive ones must stall on
// frequent misses that reach past the L2. This is the regression guard for
// the synthetic-workload substitution (DESIGN.md §4) — if a profile tweak
// moves a benchmark across the boundary, the paper's figures lose their
// meaning.
func TestCalibration(t *testing.T) {
	if testing.Short() {
		t.Skip("calibration sweep is slow; skipped with -short")
	}
	for _, name := range workload.Names() {
		name := name
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			p, err := workload.Profile(name)
			if err != nil {
				t.Fatal(err)
			}
			cfg := core.DefaultConfig(1)
			cfg.Warmup = 80_000 // predictors and caches reach steady state
			proc, err := core.New(cfg, []trace.Profile{p})
			if err != nil {
				t.Fatal(err)
			}
			res, err := proc.Run(core.Limits{TotalInstructions: 60_000})
			if err != nil {
				t.Fatal(err)
			}
			ts := res.Thread[0]
			ipc := res.IPC()
			miss := ts.DL1LoadMissRate()
			if p.MemBound {
				if ipc > 0.6 {
					t.Errorf("memory-bound %s runs at IPC %.2f (> 0.6)", name, ipc)
				}
				if miss < 0.10 {
					t.Errorf("memory-bound %s misses DL1 only %.1f%% of loads", name, 100*miss)
				}
				if ts.L2LoadMisses == 0 {
					t.Errorf("memory-bound %s never missed the L2", name)
				}
			} else {
				if ipc < 1.0 {
					t.Errorf("CPU-bound %s runs at IPC %.2f (< 1.0)", name, ipc)
				}
				if miss > 0.06 {
					t.Errorf("CPU-bound %s misses DL1 on %.1f%% of loads", name, 100*miss)
				}
			}
			// All benchmarks: sane branch behaviour.
			if mr := ts.MispredictRate(); mr > 0.20 {
				t.Errorf("%s mispredicts %.1f%% of branches", name, 100*mr)
			}
			if ts.Branches == 0 {
				t.Errorf("%s executed no branches", name)
			}
		})
	}
}
