package branch

// MissPredictor predicts whether a load will miss the L1 data cache. The
// PDG fetch policy (El-Moursy & Albonesi, HPCA 2003) gates a thread's fetch
// on *predicted* misses to react before the miss is discovered; this is the
// predictor that enables it. It is a PC-indexed table of 2-bit saturating
// counters trained on resolved hit/miss outcomes.
type MissPredictor struct {
	ctr  []uint8
	mask uint64
}

// NewMissPredictor builds a predictor with 'entries' counters (rounded up
// to a power of two), shared across threads (load PCs are thread-disjoint
// in practice because each thread runs its own code region).
func NewMissPredictor(entries int) *MissPredictor {
	n := 1
	for n < entries {
		n <<= 1
	}
	return &MissPredictor{ctr: make([]uint8, n), mask: uint64(n - 1)}
}

func (m *MissPredictor) index(pc uint64) uint64 { return (pc >> 2) & m.mask }

// Predict returns true when the load at pc is predicted to miss.
func (m *MissPredictor) Predict(pc uint64) bool {
	return m.ctr[m.index(pc)] >= 2
}

// Update trains the counter with the load's resolved outcome.
func (m *MissPredictor) Update(pc uint64, miss bool) {
	i := m.index(pc)
	c := m.ctr[i]
	if miss {
		if c < 3 {
			m.ctr[i] = c + 1
		}
	} else if c > 0 {
		m.ctr[i] = c - 1
	}
}
