// Package branch implements the front-end predictors of the simulated
// machine: a gshare direction predictor with per-thread global history, a
// set-associative branch target buffer, a return address stack, and the
// PC-indexed L1D-miss predictor used by the PDG fetch policy.
package branch

// Gshare is a global-history direction predictor (paper Table 1: 2K-entry
// table of 2-bit counters, 10-bit global history per thread). The pattern
// history table is shared; histories are private per thread, which is how
// SMT front ends are built.
type Gshare struct {
	pht      []uint8 // 2-bit saturating counters
	mask     uint64
	histBits uint
	hist     []uint64 // per-thread global history registers
}

// NewGshare builds a predictor with 'entries' counters (rounded up to a
// power of two), histBits of global history, and one history register per
// thread.
func NewGshare(entries int, histBits uint, threads int) *Gshare {
	n := 1
	for n < entries {
		n <<= 1
	}
	pht := make([]uint8, n)
	for i := range pht {
		pht[i] = 1 // weakly not-taken
	}
	return &Gshare{
		pht:      pht,
		mask:     uint64(n - 1),
		histBits: histBits,
		hist:     make([]uint64, threads),
	}
}

func (g *Gshare) index(tid int, pc uint64) uint64 {
	return ((pc >> 2) ^ g.hist[tid]) & g.mask
}

// Predict returns the predicted direction for the branch at pc in thread
// tid, without updating any state.
func (g *Gshare) Predict(tid int, pc uint64) bool {
	return g.pht[g.index(tid, pc)] >= 2
}

// Update trains the counter for (tid, pc) with the resolved direction and
// shifts the thread's history. The simulator calls it at fetch using the
// trace's oracle outcome, which models the usual update-at-retire training
// without needing a separate recovery path for the history register.
func (g *Gshare) Update(tid int, pc uint64, taken bool) {
	i := g.index(tid, pc)
	c := g.pht[i]
	if taken {
		if c < 3 {
			g.pht[i] = c + 1
		}
	} else if c > 0 {
		g.pht[i] = c - 1
	}
	g.hist[tid] = ((g.hist[tid] << 1) | b2u(taken)) & ((1 << g.histBits) - 1)
}

func b2u(b bool) uint64 {
	if b {
		return 1
	}
	return 0
}
