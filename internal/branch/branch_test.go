package branch

import "testing"

func TestGshareLearnsBias(t *testing.T) {
	g := NewGshare(2048, 10, 1)
	pc := uint64(0x400100)
	// Train an always-taken branch.
	for i := 0; i < 20; i++ {
		g.Update(0, pc, true)
	}
	if !g.Predict(0, pc) {
		t.Error("gshare failed to learn an always-taken branch")
	}
	// Retrain to not-taken.
	for i := 0; i < 20; i++ {
		g.Update(0, pc, false)
	}
	if g.Predict(0, pc) {
		t.Error("gshare failed to relearn a not-taken branch")
	}
}

func TestGshareLearnsLoopExit(t *testing.T) {
	// A loop of period 4 (TTTN) is learnable with 10 bits of history.
	g := NewGshare(2048, 10, 1)
	pc := uint64(0x400200)
	pattern := []bool{true, true, true, false}
	// Warm up.
	for round := 0; round < 200; round++ {
		g.Update(0, pc, pattern[round%4])
	}
	correct := 0
	for round := 0; round < 400; round++ {
		want := pattern[round%4]
		if g.Predict(0, pc) == want {
			correct++
		}
		g.Update(0, pc, want)
	}
	if rate := float64(correct) / 400; rate < 0.95 {
		t.Errorf("loop pattern accuracy %.2f, want >= 0.95", rate)
	}
}

func TestGsharePerThreadHistory(t *testing.T) {
	g := NewGshare(2048, 10, 2)
	pc := uint64(0x400300)
	g.Update(0, pc, true)
	g.Update(1, pc, false)
	if g.hist[0] == g.hist[1] {
		t.Error("thread histories must diverge")
	}
}

func TestGshareRoundsEntries(t *testing.T) {
	g := NewGshare(1000, 10, 1)
	if len(g.pht) != 1024 {
		t.Errorf("PHT size %d, want 1024", len(g.pht))
	}
}

func TestBTBInsertLookup(t *testing.T) {
	b := NewBTB(2048, 4)
	if _, ok := b.Lookup(0x1000); ok {
		t.Error("empty BTB hit")
	}
	b.Insert(0x1000, 0x2000)
	if tgt, ok := b.Lookup(0x1000); !ok || tgt != 0x2000 {
		t.Errorf("lookup = %#x,%v", tgt, ok)
	}
	// Update in place.
	b.Insert(0x1000, 0x3000)
	if tgt, _ := b.Lookup(0x1000); tgt != 0x3000 {
		t.Errorf("update failed: %#x", tgt)
	}
}

func TestBTBLRUEviction(t *testing.T) {
	b := NewBTB(16, 4) // 4 sets
	sets := b.sets
	// Five branches mapping to the same set: the first inserted (and
	// never re-touched) must be the one evicted.
	base := uint64(0x1000)
	stride := uint64(sets * 4) // same set index
	for i := uint64(0); i < 5; i++ {
		b.Insert(base+i*stride, 0x9000+i)
	}
	if _, ok := b.Lookup(base); ok {
		t.Error("LRU entry survived eviction")
	}
	for i := uint64(1); i < 5; i++ {
		if _, ok := b.Lookup(base + i*stride); !ok {
			t.Errorf("entry %d evicted unexpectedly", i)
		}
	}
}

func TestBTBLRUTouchOnLookup(t *testing.T) {
	b := NewBTB(16, 2) // 8 sets, 2 ways
	stride := uint64(b.sets * 4)
	b.Insert(0x1000, 1)
	b.Insert(0x1000+stride, 2)
	b.Lookup(0x1000) // make the older entry MRU
	b.Insert(0x1000+2*stride, 3)
	if _, ok := b.Lookup(0x1000); !ok {
		t.Error("MRU entry evicted")
	}
	if _, ok := b.Lookup(0x1000 + stride); ok {
		t.Error("LRU entry survived")
	}
}

func TestRASPushPop(t *testing.T) {
	r := NewRAS(4)
	if _, ok := r.Pop(); ok {
		t.Error("empty RAS popped")
	}
	r.Push(1)
	r.Push(2)
	r.Push(3)
	if r.Depth() != 3 {
		t.Errorf("depth %d", r.Depth())
	}
	for want := uint64(3); want >= 1; want-- {
		got, ok := r.Pop()
		if !ok || got != want {
			t.Fatalf("pop = %d,%v want %d", got, ok, want)
		}
	}
	if r.Depth() != 0 {
		t.Error("RAS not empty after pops")
	}
}

func TestRASOverflowWraps(t *testing.T) {
	r := NewRAS(3)
	for i := uint64(1); i <= 5; i++ {
		r.Push(i)
	}
	// Capacity 3: the newest three (5,4,3) survive.
	for _, want := range []uint64{5, 4, 3} {
		got, ok := r.Pop()
		if !ok || got != want {
			t.Fatalf("pop = %d,%v want %d", got, ok, want)
		}
	}
	if _, ok := r.Pop(); ok {
		t.Error("RAS returned an overwritten entry")
	}
}

func TestMissPredictorLearns(t *testing.T) {
	m := NewMissPredictor(1024)
	pc := uint64(0x400400)
	if m.Predict(pc) {
		t.Error("cold predictor predicts miss")
	}
	for i := 0; i < 4; i++ {
		m.Update(pc, true)
	}
	if !m.Predict(pc) {
		t.Error("predictor failed to learn misses")
	}
	for i := 0; i < 4; i++ {
		m.Update(pc, false)
	}
	if m.Predict(pc) {
		t.Error("predictor failed to unlearn")
	}
}

func TestMissPredictorHysteresis(t *testing.T) {
	m := NewMissPredictor(1024)
	pc := uint64(0x400500)
	for i := 0; i < 4; i++ {
		m.Update(pc, true)
	}
	m.Update(pc, false) // one hit must not flip a saturated predictor
	if !m.Predict(pc) {
		t.Error("single hit flipped a saturated miss predictor")
	}
}
