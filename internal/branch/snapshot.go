package branch

import "smtavf/internal/digest"

// Snapshot digests the predictor's pattern history table and per-thread
// history registers. Checkpoints compare these digests to verify that two
// deterministic warmups reconstructed the same front-end state.
func (g *Gshare) Snapshot() uint64 {
	h := digest.New()
	for _, c := range g.pht {
		h = digest.Mix(h, uint64(c))
	}
	for _, v := range g.hist {
		h = digest.Mix(h, v)
	}
	return h
}

// Snapshot digests the BTB's tag and target arrays (LRU order included:
// it determines future evictions and is reconstructed deterministically).
func (b *BTB) Snapshot() uint64 {
	h := digest.New()
	for i := range b.tags {
		if b.tags[i] == 0 {
			continue
		}
		h = digest.Mix(h, uint64(i))
		h = digest.Mix(h, b.tags[i])
		h = digest.Mix(h, b.tgt[i])
		h = digest.Mix(h, uint64(b.order[i]))
	}
	return h
}

// Snapshot digests the miss predictor's counter table.
func (m *MissPredictor) Snapshot() uint64 {
	h := digest.New()
	for _, c := range m.ctr {
		h = digest.Mix(h, uint64(c))
	}
	return h
}

// Snapshot digests the live entries of the return address stack.
func (r *RAS) Snapshot() uint64 {
	h := digest.Mix(digest.New(), uint64(r.n))
	for i := 0; i < r.n; i++ {
		h = digest.Mix(h, r.buf[(r.top-1-i+len(r.buf)*2)%len(r.buf)])
	}
	return h
}
