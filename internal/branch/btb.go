package branch

// BTB is a set-associative branch target buffer with true-LRU replacement
// (paper Table 1: 2K entries, 4-way, per thread). A BTB miss on a
// predicted-taken branch means the front end cannot redirect and the fetch
// is treated as a misprediction.
type BTB struct {
	sets  int
	ways  int
	tags  []uint64 // sets*ways; 0 = invalid (PCs are never 0)
	tgt   []uint64
	order []uint8 // LRU rank per way; 0 = MRU
}

// NewBTB builds a BTB with the given entry count and associativity.
func NewBTB(entries, ways int) *BTB {
	sets := entries / ways
	if sets < 1 {
		sets = 1
	}
	// Round sets to a power of two for cheap indexing.
	n := 1
	for n < sets {
		n <<= 1
	}
	b := &BTB{
		sets:  n,
		ways:  ways,
		tags:  make([]uint64, n*ways),
		tgt:   make([]uint64, n*ways),
		order: make([]uint8, n*ways),
	}
	for s := 0; s < n; s++ {
		for w := 0; w < ways; w++ {
			b.order[s*ways+w] = uint8(w)
		}
	}
	return b
}

func (b *BTB) set(pc uint64) int { return int((pc >> 2) & uint64(b.sets-1)) }

// Lookup returns the stored target for the branch at pc, if present.
func (b *BTB) Lookup(pc uint64) (uint64, bool) {
	s := b.set(pc)
	base := s * b.ways
	for w := 0; w < b.ways; w++ {
		if b.tags[base+w] == pc {
			b.touch(base, w)
			return b.tgt[base+w], true
		}
	}
	return 0, false
}

// Insert records the target for the branch at pc, evicting the LRU way.
func (b *BTB) Insert(pc, target uint64) {
	s := b.set(pc)
	base := s * b.ways
	victim := 0
	for w := 0; w < b.ways; w++ {
		if b.tags[base+w] == pc {
			b.tgt[base+w] = target
			b.touch(base, w)
			return
		}
		if b.order[base+w] == uint8(b.ways-1) {
			victim = w
		}
	}
	b.tags[base+victim] = pc
	b.tgt[base+victim] = target
	b.touch(base, victim)
}

// touch marks way w MRU within the set at base.
func (b *BTB) touch(base, w int) {
	old := b.order[base+w]
	for i := 0; i < b.ways; i++ {
		if b.order[base+i] < old {
			b.order[base+i]++
		}
	}
	b.order[base+w] = 0
}
