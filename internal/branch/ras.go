package branch

// RAS is a return address stack (paper Table 1: 32 entries per thread). It
// wraps on overflow, overwriting the oldest entry, as hardware stacks do.
type RAS struct {
	buf []uint64
	top int // index of the next push slot
	n   int // live entries, capped at len(buf)
}

// NewRAS builds a stack with the given capacity.
func NewRAS(entries int) *RAS {
	if entries < 1 {
		entries = 1
	}
	return &RAS{buf: make([]uint64, entries)}
}

// Push records a return address.
func (r *RAS) Push(addr uint64) {
	r.buf[r.top] = addr
	r.top = (r.top + 1) % len(r.buf)
	if r.n < len(r.buf) {
		r.n++
	}
}

// Pop predicts the return target. ok is false when the stack is empty.
func (r *RAS) Pop() (addr uint64, ok bool) {
	if r.n == 0 {
		return 0, false
	}
	r.top = (r.top - 1 + len(r.buf)) % len(r.buf)
	r.n--
	return r.buf[r.top], true
}

// Depth returns the number of live entries.
func (r *RAS) Depth() int { return r.n }
