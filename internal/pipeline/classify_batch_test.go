package pipeline

import (
	"testing"

	"smtavf/internal/avf"
	"smtavf/internal/isa"
)

// intervalLog captures the positioned interval stream so tests can assert
// the attached-sink path's emission order alongside its totals.
type intervalLog struct {
	structs []avf.Struct
}

func (l *intervalLog) Interval(s avf.Struct, tid int, bits, start, end uint64, ace bool) {
	l.structs = append(l.structs, s)
}

func testTrackerPair() (*avf.Tracker, *avf.Tracker) {
	var bits [avf.NumStructs]uint64
	for s := 0; s < avf.NumStructs; s++ {
		bits[s] = 1 << 16
	}
	return avf.NewTracker(2, bits), avf.NewTracker(2, bits)
}

// classifyBoth runs the same slot through the interval path on ti and the
// batched path on tb, then checks every accumulator agrees bit-for-bit.
func classifyBoth(t *testing.T, p *Pool, u UID, squashed bool, ti, tb *avf.Tracker) {
	t.Helper()
	bits := DefaultBits()
	p.Classify(ti, bits, u, squashed)
	p.ClassifyBatch(tb, bits, u, squashed)
	for _, s := range avf.PipelineStructs() {
		for tid := 0; tid < 2; tid++ {
			if got, want := tb.ThreadACEBitCycles(s, tid), ti.ThreadACEBitCycles(s, tid); got != want {
				t.Errorf("%s tid %d: batched ACE %d, interval %d", s, tid, got, want)
			}
		}
		if got, want := tb.OccupiedBitCycles(s), ti.OccupiedBitCycles(s); got != want {
			t.Errorf("%s: batched occupancy %d, interval %d", s, got, want)
		}
	}
}

// TestClassifyBatchZeroLengthResidency: a uop squashed in the front end
// never entered any structure; every residency interval is zero-length and
// both accounting paths must agree on exactly zero.
func TestClassifyBatchZeroLengthResidency(t *testing.T) {
	p := NewPool(4)
	in := isa.Instruction{Seq: 1, PC: 0x100, Class: isa.IntALU}
	u := p.Alloc()
	p.Reset(u, &in, 0, 1, 10, false, 12)
	ti, tb := testTrackerPair()
	classifyBoth(t, p, u, true, ti, tb)
	for _, s := range avf.PipelineStructs() {
		if got := tb.OccupiedBitCycles(s); got != 0 {
			t.Errorf("%s: zero-length residency accumulated %d bit-cycles", s, got)
		}
	}
}

// TestClassifyBatchSquashBeforeIssue: a dispatched-but-never-issued uop has
// IQ and ROB residency but no FU interval (IssuedAt and FUCycles both
// zero); the batch must not conjure an FU span from the zero record.
func TestClassifyBatchSquashBeforeIssue(t *testing.T) {
	p := NewPool(4)
	in := isa.Instruction{Seq: 2, PC: 0x104, Class: isa.IntALU, Dest: 3}
	u := p.Alloc()
	p.Reset(u, &in, 1, 2, 20, false, 22)
	r := &p.Res[u]
	r.EnterIQ, r.IQCycles = 22, 6
	r.EnterROB, r.ROBCycles = 22, 6
	ti, tb := testTrackerPair()
	classifyBoth(t, p, u, true, ti, tb)
	if got := tb.OccupiedBitCycles(avf.FU); got != 0 {
		t.Errorf("unissued uop accumulated %d FU bit-cycles", got)
	}
	if got, want := tb.OccupiedBitCycles(avf.IQ), 6*DefaultBits().IQEntry; got != want {
		t.Errorf("IQ occupancy %d, want %d", got, want)
	}
	if got := tb.ThreadACEBitCycles(avf.IQ, 1); got != 0 {
		t.Errorf("squashed uop accumulated %d ACE bit-cycles", got)
	}
}

// TestClassifyBatchMatchesIntervalPath covers a committed memory uop with
// every residency populated: totals agree bit-for-bit, and the interval
// path still emits the canonical structure order for its sink.
func TestClassifyBatchMatchesIntervalPath(t *testing.T) {
	p := NewPool(4)
	in := isa.Instruction{Seq: 3, PC: 0x108, Class: isa.Load, Dest: 4, Addr: 0x4000, Size: 8}
	u := p.Alloc()
	p.Reset(u, &in, 0, 3, 30, false, 32)
	r := &p.Res[u]
	r.EnterIQ, r.IQCycles = 32, 4
	r.EnterROB, r.ROBCycles = 32, 12
	r.EnterLSQ, r.LSQTagCycles = 32, 12
	r.DataAt, r.LSQDataCycles = 39, 5
	r.IssuedAt, r.FUCycles = 36, 3
	ti, tb := testTrackerPair()
	log := &intervalLog{}
	ti.SetSink(log)
	classifyBoth(t, p, u, false, ti, tb)
	want := []avf.Struct{avf.IQ, avf.ROB, avf.LSQTag, avf.LSQData, avf.FU}
	if len(log.structs) != len(want) {
		t.Fatalf("sink saw %d intervals, want %d", len(log.structs), len(want))
	}
	for i, s := range want {
		if log.structs[i] != s {
			t.Errorf("interval %d went to %s, want %s", i, log.structs[i], s)
		}
	}
	if got := tb.ThreadACEBitCycles(avf.IQ, 0); got != 4*DefaultBits().IQEntry {
		t.Errorf("committed IQ ACE bit-cycles %d, want %d", got, 4*DefaultBits().IQEntry)
	}
}
