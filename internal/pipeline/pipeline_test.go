package pipeline

import (
	"testing"

	"smtavf/internal/avf"
	"smtavf/internal/isa"
)

// newUop allocates a pool slot with the given identity, the test analogue
// of the fetch stage's acquire+Reset.
func newUop(p *Pool, tid int, gseq uint64, class isa.Class) UID {
	u := p.Alloc()
	in := isa.Instruction{Class: class, Src1: isa.RegNone, Src2: isa.RegNone, Dest: isa.RegNone}
	p.Reset(u, &in, int32(tid), gseq, 0, false, 0)
	return u
}

func trackerFor(threads int) *avf.Tracker {
	var bits [avf.NumStructs]uint64
	for i := range bits {
		bits[i] = 1 << 20
	}
	return avf.NewTracker(threads, bits)
}

// --- IQ ---

func TestIQInsertRemoveResidency(t *testing.T) {
	p := NewPool(8)
	q := NewIQ(p, 4, 1, 0)
	u := newUop(p, 0, 1, isa.IntALU)
	q.Insert(u, 10)
	if !p.Has(u, FInIQ) || q.Len() != 1 || q.ThreadCount(0) != 1 {
		t.Fatal("insert bookkeeping wrong")
	}
	q.Remove(u, 25)
	if p.Has(u, FInIQ) || q.Len() != 0 || q.ThreadCount(0) != 0 {
		t.Fatal("remove bookkeeping wrong")
	}
	if p.Res[u].IQCycles != 15 {
		t.Fatalf("IQ residency %d, want 15", p.Res[u].IQCycles)
	}
}

func TestIQCapacity(t *testing.T) {
	p := NewPool(8)
	q := NewIQ(p, 2, 1, 0)
	q.Insert(newUop(p, 0, 1, isa.IntALU), 0)
	q.Insert(newUop(p, 0, 2, isa.IntALU), 0)
	if q.CanInsert(0) {
		t.Fatal("full IQ accepts inserts")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("over-insert did not panic")
		}
	}()
	q.Insert(newUop(p, 0, 3, isa.IntALU), 0)
}

func TestIQPartition(t *testing.T) {
	p := NewPool(8)
	q := NewIQ(p, 8, 2, 2)
	q.Insert(newUop(p, 0, 1, isa.IntALU), 0)
	q.Insert(newUop(p, 0, 2, isa.IntALU), 0)
	if q.CanInsert(0) {
		t.Fatal("partition cap not enforced")
	}
	if !q.CanInsert(1) {
		t.Fatal("partition must be per thread")
	}
}

func TestIQReadyOldestFirst(t *testing.T) {
	p := NewPool(8)
	q := NewIQ(p, 8, 1, 0)
	u3 := newUop(p, 0, 3, isa.IntALU)
	u1 := newUop(p, 0, 1, isa.IntALU)
	u2 := newUop(p, 0, 2, isa.IntALU)
	q.Insert(u3, 0)
	q.Insert(u1, 0)
	q.Insert(u2, 0)
	// Wakeup order must not matter: the ready set sorts by GSeq.
	q.MarkReady(u3)
	q.MarkReady(u1)
	cand := q.AppendReady(nil)
	if len(cand) != 2 || cand[0] != u1 || cand[1] != u3 {
		t.Fatalf("ready set wrong: %v", cand)
	}
}

func TestIQReadyTieAcrossThreads(t *testing.T) {
	// Oldest-first selection is global: with equal per-thread ages the
	// unique GSeq (global fetch order) breaks the tie, so thread 1's
	// earlier-fetched uop outranks thread 0's later one.
	p := NewPool(8)
	q := NewIQ(p, 8, 2, 0)
	t1a := newUop(p, 1, 4, isa.IntALU)
	t0a := newUop(p, 0, 5, isa.IntALU)
	t1b := newUop(p, 1, 6, isa.IntALU)
	t0b := newUop(p, 0, 7, isa.IntALU)
	for _, u := range []UID{t0b, t1b, t0a, t1a} {
		q.Insert(u, 0)
		q.MarkReady(u)
	}
	cand := q.AppendReady(nil)
	want := []UID{t1a, t0a, t1b, t0b}
	for i, u := range want {
		if cand[i] != u {
			t.Fatalf("ready[%d] = GSeq %d (tid %d), want GSeq %d (tid %d)",
				i, p.GSeq[cand[i]], p.TID[cand[i]], p.GSeq[u], p.TID[u])
		}
	}
}

func TestIQMarkReadyMisusePanics(t *testing.T) {
	p := NewPool(8)
	q := NewIQ(p, 4, 1, 0)
	u := newUop(p, 0, 1, isa.IntALU)
	mustPanic(t, func() { q.MarkReady(u) }) // not resident
	q.Insert(u, 0)
	q.MarkReady(u)
	mustPanic(t, func() { q.MarkReady(u) }) // already ready
}

func TestIQRemoveDropsReady(t *testing.T) {
	p := NewPool(8)
	q := NewIQ(p, 8, 1, 0)
	u1 := newUop(p, 0, 1, isa.IntALU)
	u2 := newUop(p, 0, 2, isa.IntALU)
	q.Insert(u1, 0)
	q.Insert(u2, 0)
	q.MarkReady(u1)
	q.MarkReady(u2)
	q.Remove(u1, 5)
	if p.Has(u1, FInReady) || q.ReadyLen() != 1 {
		t.Fatal("Remove left the entry in the ready set")
	}
	if cand := q.AppendReady(nil); len(cand) != 1 || cand[0] != u2 {
		t.Fatalf("ready set after remove: %v", cand)
	}
	// The slot swap must keep IQIdx coherent for the survivor.
	q.Remove(u2, 6)
	if q.Len() != 0 || q.ReadyLen() != 0 {
		t.Fatal("queue not empty after removing both entries")
	}
}

func TestIQPartitionReleasedOnRemove(t *testing.T) {
	p := NewPool(8)
	q := NewIQ(p, 8, 2, 1)
	u := newUop(p, 0, 1, isa.IntALU)
	q.Insert(u, 0)
	if q.CanInsert(0) {
		t.Fatal("partition cap of 1 not enforced")
	}
	q.Remove(u, 3)
	if !q.CanInsert(0) {
		t.Fatal("partition slot not released by Remove")
	}
}

func TestIQSquashThread(t *testing.T) {
	p := NewPool(8)
	q := NewIQ(p, 8, 2, 0)
	keep := newUop(p, 0, 1, isa.IntALU)
	gone := newUop(p, 0, 5, isa.IntALU)
	other := newUop(p, 1, 9, isa.IntALU)
	q.Insert(keep, 0)
	q.Insert(gone, 0)
	q.Insert(other, 0)
	// Mid-wakeup squash: one victim already woken, survivors woken too.
	q.MarkReady(gone)
	q.MarkReady(other)
	removed := q.SquashThread(0, 1, 10, nil)
	if len(removed) != 1 || removed[0] != gone {
		t.Fatalf("squash removed %v", removed)
	}
	if q.Len() != 2 || q.ThreadCount(0) != 1 || q.ThreadCount(1) != 1 {
		t.Fatal("squash bookkeeping wrong")
	}
	if p.Has(gone, FInReady) || p.Has(gone, FInIQ) {
		t.Fatal("squashed entry still marked resident/ready")
	}
	if cand := q.AppendReady(nil); len(cand) != 1 || cand[0] != other {
		t.Fatalf("ready set after squash: %v", cand)
	}
	// The survivor that had not yet woken must still be wakeable.
	q.MarkReady(keep)
	if cand := q.AppendReady(nil); len(cand) != 2 || cand[0] != keep {
		t.Fatalf("post-squash wakeup wrong: %v", cand)
	}
}

func TestIQRemoveAbsentPanics(t *testing.T) {
	p := NewPool(8)
	q := NewIQ(p, 4, 1, 0)
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	q.Remove(newUop(p, 0, 1, isa.IntALU), 0)
}

// --- ROB ---

func TestROBFIFO(t *testing.T) {
	p := NewPool(8)
	r := NewROB(p, 3)
	u1, u2, u3 := newUop(p, 0, 1, isa.IntALU), newUop(p, 0, 2, isa.IntALU), newUop(p, 0, 3, isa.IntALU)
	r.Push(u1, 0)
	r.Push(u2, 0)
	r.Push(u3, 0)
	if !r.Full() {
		t.Fatal("ROB should be full")
	}
	if r.Head() != u1 || r.Tail() != u3 || r.At(1) != u2 {
		t.Fatal("ordering wrong")
	}
	if got := r.PopHead(10); got != u1 || p.Res[u1].ROBCycles != 10 {
		t.Fatal("pop head wrong")
	}
	if got := r.PopTail(20); got != u3 || p.Res[u3].ROBCycles != 20 {
		t.Fatal("pop tail wrong")
	}
	if r.Len() != 1 {
		t.Fatal("length wrong")
	}
}

func TestROBWrapAround(t *testing.T) {
	p := NewPool(16)
	r := NewROB(p, 2)
	for i := uint64(0); i < 10; i++ {
		u := newUop(p, 0, i, isa.IntALU)
		r.Push(u, 0)
		if got := r.PopHead(1); got != u {
			t.Fatalf("wrap iteration %d broken", i)
		}
	}
}

func TestROBPanics(t *testing.T) {
	p := NewPool(8)
	r := NewROB(p, 1)
	mustPanic(t, func() { r.PopHead(0) })
	mustPanic(t, func() { r.PopTail(0) })
	r.Push(newUop(p, 0, 1, isa.IntALU), 0)
	mustPanic(t, func() { r.Push(newUop(p, 0, 2, isa.IntALU), 0) })
	mustPanic(t, func() { r.At(1) })
}

func mustPanic(t *testing.T, f func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	f()
}

// --- LSQ ---

func TestLSQResidencyAccounting(t *testing.T) {
	p := NewPool(8)
	q := NewLSQ(p, 4)
	ld := newUop(p, 0, 1, isa.Load)
	q.Push(ld, 10)
	p.Res[ld].DataAt = 30 // datum arrives
	q.PopHead(ld, 50)
	if p.Res[ld].LSQTagCycles != 40 {
		t.Fatalf("tag residency %d, want 40", p.Res[ld].LSQTagCycles)
	}
	if p.Res[ld].LSQDataCycles != 20 {
		t.Fatalf("data residency %d, want 20", p.Res[ld].LSQDataCycles)
	}
}

func TestLSQPopOrderEnforced(t *testing.T) {
	p := NewPool(8)
	q := NewLSQ(p, 4)
	a, b := newUop(p, 0, 1, isa.Load), newUop(p, 0, 2, isa.Store)
	q.Push(a, 0)
	q.Push(b, 0)
	mustPanic(t, func() { q.PopHead(b, 10) })
}

func TestLSQForwarding(t *testing.T) {
	p := NewPool(8)
	q := NewLSQ(p, 8)
	st := newUop(p, 0, 1, isa.Store)
	p.Ins[st].Addr = 0x1000
	ld := newUop(p, 0, 2, isa.Load)
	p.Ins[ld].Addr = 0x1000
	q.Push(st, 0)
	q.Push(ld, 0)
	// Store not yet executed: the load must wait.
	if _, wait := q.ForwardCheck(ld); !wait {
		t.Fatal("load did not wait for an unresolved older store")
	}
	p.Set(st, FExecuted)
	fwd, wait := q.ForwardCheck(ld)
	if wait || !fwd {
		t.Fatalf("forward=%v wait=%v, want forwarding", fwd, wait)
	}
	// A different address: no forwarding, no wait.
	ld2 := newUop(p, 0, 3, isa.Load)
	p.Ins[ld2].Addr = 0x2000
	q.Push(ld2, 0)
	fwd, wait = q.ForwardCheck(ld2)
	if fwd || wait {
		t.Fatal("unrelated load affected by store")
	}
}

func TestLSQForwardOnlyOlderStores(t *testing.T) {
	p := NewPool(8)
	q := NewLSQ(p, 8)
	ld := newUop(p, 0, 1, isa.Load)
	p.Ins[ld].Addr = 0x1000
	st := newUop(p, 0, 2, isa.Store) // younger than the load
	p.Ins[st].Addr = 0x1000
	p.Set(st, FExecuted)
	q.Push(ld, 0)
	q.Push(st, 0)
	if fwd, wait := q.ForwardCheck(ld); fwd || wait {
		t.Fatal("younger store affected an older load")
	}
}

func TestLSQPopTail(t *testing.T) {
	p := NewPool(8)
	q := NewLSQ(p, 4)
	a, b := newUop(p, 0, 1, isa.Load), newUop(p, 0, 2, isa.Store)
	q.Push(a, 0)
	q.Push(b, 5)
	if got := q.PopTail(15); got != b || p.Res[b].LSQTagCycles != 10 {
		t.Fatal("pop tail wrong")
	}
	if q.Tail() != a {
		t.Fatal("tail after pop wrong")
	}
}

// --- RegFile ---

// renameUop builds a pool slot with the given architectural operands and
// renames it.
func renameUop(p *Pool, rf *RegFile, gseq uint64, class isa.Class, src1, src2, dest isa.RegID, now uint64) UID {
	u := p.Alloc()
	in := isa.Instruction{Class: class, Src1: src1, Src2: src2, Dest: dest}
	p.Reset(u, &in, 0, gseq, now, false, now)
	rf.Rename(u, now)
	return u
}

func TestRenameAndReadiness(t *testing.T) {
	p := NewPool(8)
	rf := NewRegFile(p, 64, 64, 1, nil, DefaultBits())
	u := renameUop(p, rf, 1, isa.IntALU, 1, 2, 3, 0)
	if p.Meta[u].PhysSrc1 < 0 || p.Meta[u].PhysSrc2 < 0 || p.Meta[u].PhysDest < 0 {
		t.Fatal("rename incomplete")
	}
	// Initial architectural registers are ready; the new dest is not.
	if !rf.Ready(int(p.Meta[u].PhysSrc1)) || rf.Ready(int(p.Meta[u].PhysDest)) {
		t.Fatal("readiness wrong after rename")
	}
	rf.Write(int(p.Meta[u].PhysDest), 5)
	if !rf.Ready(int(p.Meta[u].PhysDest)) {
		t.Fatal("writeback did not set ready")
	}
	// A consumer renamed later must see the new mapping.
	v := renameUop(p, rf, 2, isa.IntALU, 3, isa.RegNone, 4, 6)
	if p.Meta[v].PhysSrc1 != p.Meta[u].PhysDest {
		t.Fatal("consumer not mapped to producer's register")
	}
}

func TestRegFileWakeup(t *testing.T) {
	p := NewPool(8)
	rf := NewRegFile(p, 64, 64, 1, nil, DefaultBits())
	var woken []UID
	rf.SetWake(func(u UID) { woken = append(woken, u) })

	prod := renameUop(p, rf, 1, isa.IntALU, isa.RegNone, isa.RegNone, 3, 0)

	// Both sources name the producer's unready register: two waiter-list
	// slots, one wake when the single write drains both.
	cons := renameUop(p, rf, 2, isa.IntALU, 3, 3, isa.RegNone, 0)
	if n := rf.WatchSources(cons); n != 2 {
		t.Fatalf("WatchSources = %d, want 2", n)
	}
	rf.Write(int(p.Meta[prod].PhysDest), 5)
	if len(woken) != 1 || woken[0] != cons {
		t.Fatalf("woken = %v, want exactly [cons]", woken)
	}
	if p.Meta[cons].WaitCount != 0 || p.Has(cons, FSrc1Wait) || p.Has(cons, FSrc2Wait) {
		t.Fatal("wait state not cleared by wakeup")
	}

	// Ready operands need no watch: the caller marks the uop ready itself.
	imm := renameUop(p, rf, 3, isa.IntALU, 1, isa.RegNone, isa.RegNone, 6)
	if n := rf.WatchSources(imm); n != 0 {
		t.Fatalf("WatchSources of ready operands = %d, want 0", n)
	}
}

func TestRegFileUnwatch(t *testing.T) {
	p := NewPool(8)
	rf := NewRegFile(p, 64, 64, 1, nil, DefaultBits())
	woken := 0
	rf.SetWake(func(UID) { woken++ })

	prod := renameUop(p, rf, 1, isa.IntALU, isa.RegNone, isa.RegNone, 3, 0)
	stay := renameUop(p, rf, 2, isa.IntALU, 3, isa.RegNone, isa.RegNone, 0)
	gone := renameUop(p, rf, 3, isa.IntALU, 3, isa.RegNone, isa.RegNone, 0)
	rf.WatchSources(stay)
	rf.WatchSources(gone)

	// A squash drops gone from the list; the write must wake only stay.
	rf.Unwatch(gone)
	if p.Meta[gone].WaitCount != 0 || p.Has(gone, FSrc1Wait) {
		t.Fatal("Unwatch left wait state set")
	}
	rf.Unwatch(gone) // idempotent on a non-watching uop
	rf.Write(int(p.Meta[prod].PhysDest), 5)
	if woken != 1 {
		t.Fatalf("woken %d uops, want 1", woken)
	}
}

func TestRenameExhaustionAndCommitFree(t *testing.T) {
	p := NewPool(8)
	rf := NewRegFile(p, 33, 32, 1, nil, DefaultBits()) // one spare int reg
	if !rf.CanRename(isa.RegID(5)) {
		t.Fatal("one spare register should allow a rename")
	}
	u := renameUop(p, rf, 1, isa.IntALU, isa.RegNone, isa.RegNone, 5, 0)
	if rf.CanRename(isa.RegID(6)) {
		t.Fatal("pool exhausted but rename allowed")
	}
	// Committing u frees the old mapping of r5.
	rf.CommitFree(int(p.Meta[u].OldPhysDest), 10)
	if !rf.CanRename(isa.RegID(6)) {
		t.Fatal("commit did not free a register")
	}
}

func TestRollbackRestoresMapping(t *testing.T) {
	p := NewPool(8)
	rf := NewRegFile(p, 64, 64, 1, nil, DefaultBits())
	before := rf.Mapping(0, 7)
	u := renameUop(p, rf, 1, isa.IntALU, isa.RegNone, isa.RegNone, 7, 0)
	if rf.Mapping(0, 7) == before {
		t.Fatal("rename did not change mapping")
	}
	rf.Rollback(u, 5)
	if rf.Mapping(0, 7) != before {
		t.Fatal("rollback did not restore mapping")
	}
	if rf.FreeCount(false) != 64-32 {
		t.Fatal("rollback did not free the register")
	}
}

func TestRegisterAVFLifetime(t *testing.T) {
	trk := trackerFor(1)
	bits := DefaultBits()
	p := NewPool(8)
	rf := NewRegFile(p, 64, 64, 1, trk, bits)
	u := renameUop(p, rf, 1, isa.IntALU, isa.RegNone, isa.RegNone, 3, 100) // alloc at 100
	rf.Write(int(p.Meta[u].PhysDest), 150)
	rf.Read(int(p.Meta[u].PhysDest), 180)
	rf.Read(int(p.Meta[u].PhysDest), 220) // last read
	// Free it by committing an overwriting instruction.
	v := renameUop(p, rf, 2, isa.IntALU, isa.RegNone, isa.RegNone, 3, 230)
	rf.CommitFree(int(p.Meta[v].OldPhysDest), 300) // frees u's register
	// ACE interval: write(150) → last read(220) = 70 cycles.
	if got := trk.ACEBitCycles(avf.Reg); got != 70*bits.RegEntry {
		t.Fatalf("register ACE bit-cycles = %d, want %d", got, 70*bits.RegEntry)
	}
}

func TestSquashedRegisterEntirelyUnACE(t *testing.T) {
	trk := trackerFor(1)
	p := NewPool(8)
	rf := NewRegFile(p, 64, 64, 1, trk, DefaultBits())
	u := renameUop(p, rf, 1, isa.IntALU, isa.RegNone, isa.RegNone, 3, 100)
	rf.Write(int(p.Meta[u].PhysDest), 150)
	rf.Read(int(p.Meta[u].PhysDest), 180)
	rf.Rollback(u, 200)
	if got := trk.ACEBitCycles(avf.Reg); got != 0 {
		t.Fatalf("squashed register counted ACE: %d", got)
	}
}

func TestNeverReadRegisterUnACEAfterWrite(t *testing.T) {
	trk := trackerFor(1)
	p := NewPool(8)
	rf := NewRegFile(p, 64, 64, 1, trk, DefaultBits())
	u := renameUop(p, rf, 1, isa.IntALU, isa.RegNone, isa.RegNone, 3, 100)
	rf.Write(int(p.Meta[u].PhysDest), 150)
	v := renameUop(p, rf, 2, isa.IntALU, isa.RegNone, isa.RegNone, 3, 160)
	rf.CommitFree(int(p.Meta[v].OldPhysDest), 300)
	if got := trk.ACEBitCycles(avf.Reg); got != 0 {
		t.Fatalf("never-read register counted ACE: %d", got)
	}
}

func TestRegFileTooSmallPanics(t *testing.T) {
	p := NewPool(8)
	mustPanic(t, func() { NewRegFile(p, 63, 64, 2, nil, DefaultBits()) })
}

func TestFPBankSeparate(t *testing.T) {
	p := NewPool(8)
	rf := NewRegFile(p, 64, 64, 1, nil, DefaultBits())
	u := renameUop(p, rf, 1, isa.FPALU, isa.RegNone, isa.RegNone, isa.FirstFPReg+3, 0)
	if p.Meta[u].PhysDest < 64 {
		t.Fatal("FP destination allocated from the integer bank")
	}
	if rf.FreeCount(true) != 31 || rf.FreeCount(false) != 32 {
		t.Fatalf("free counts %d/%d", rf.FreeCount(false), rf.FreeCount(true))
	}
}

func TestCloseAccountingCoversLiveRegisters(t *testing.T) {
	trk := trackerFor(1)
	bits := DefaultBits()
	p := NewPool(8)
	rf := NewRegFile(p, 64, 64, 1, trk, bits)
	// Architectural register read late in the run: ACE from 0 to the read.
	pr := rf.Mapping(0, 9)
	rf.Read(pr, 500)
	rf.CloseAccounting(1000)
	if got := trk.ACEBitCycles(avf.Reg); got != 500*bits.RegEntry {
		t.Fatalf("live register ACE = %d, want %d", got, 500*bits.RegEntry)
	}
}

// --- FUPool ---

func TestFUPoolPipelined(t *testing.T) {
	p := NewFUPool(DefaultFUCounts())
	// Eight IALUs: eight issues in one cycle, the ninth fails.
	for i := 0; i < 8; i++ {
		if !p.TryIssue(isa.IntALU, 10) {
			t.Fatalf("issue %d failed", i)
		}
	}
	if p.TryIssue(isa.IntALU, 10) {
		t.Fatal("ninth IALU issue granted")
	}
	if !p.TryIssue(isa.IntALU, 11) {
		t.Fatal("pipelined unit not free next cycle")
	}
}

func TestFUPoolUnpipelinedDivide(t *testing.T) {
	p := NewFUPool(DefaultFUCounts())
	for i := 0; i < 4; i++ {
		if !p.TryIssue(isa.IntDiv, 0) {
			t.Fatalf("divide issue %d failed", i)
		}
	}
	// All four divide units busy for the full latency.
	if p.TryIssue(isa.IntDiv, 5) {
		t.Fatal("busy divider granted")
	}
	if !p.TryIssue(isa.IntDiv, uint64(isa.IntDiv.Latency())) {
		t.Fatal("divider not free after latency")
	}
}

func TestFUPoolSharedMulDiv(t *testing.T) {
	p := NewFUPool(DefaultFUCounts())
	// Divides occupy the IMULDIV units multiplies need.
	for i := 0; i < 4; i++ {
		p.TryIssue(isa.IntDiv, 0)
	}
	if p.TryIssue(isa.IntMul, 1) {
		t.Fatal("multiply granted while dividers hold the pool")
	}
}

func TestFUUtilization(t *testing.T) {
	p := NewFUPool(DefaultFUCounts())
	p.TryIssue(isa.IntALU, 0)
	if got := p.Utilization(28); got <= 0 || got > 1 {
		t.Fatalf("utilization %v out of range", got)
	}
	if p.Utilization(0) != 0 {
		t.Fatal("zero-cycle utilization")
	}
}

// --- Classification ---

func TestClassifyACE(t *testing.T) {
	trk := trackerFor(1)
	bits := DefaultBits()
	p := NewPool(8)
	u := newUop(p, 0, 1, isa.IntALU)
	p.Res[u].IQCycles, p.Res[u].ROBCycles, p.Res[u].FUCycles = 10, 20, 1
	p.Classify(trk, bits, u, false)
	if trk.ACEBitCycles(avf.IQ) != 10*bits.IQEntry {
		t.Fatal("IQ classification wrong")
	}
	if trk.ACEBitCycles(avf.ROB) != 20*bits.ROBEntry {
		t.Fatal("ROB classification wrong")
	}
	if trk.ACEBitCycles(avf.FU) != 1*bits.FUUnit {
		t.Fatal("FU classification wrong")
	}
}

func TestClassifyUnACECases(t *testing.T) {
	for _, tc := range []struct {
		name string
		mod  func(p *Pool, u UID)
		sq   bool
	}{
		{"nop", func(p *Pool, u UID) { p.Ins[u].Class = isa.NOP }, false},
		{"dead", func(p *Pool, u UID) { p.Ins[u].Dead = true }, false},
		{"wrongpath", func(p *Pool, u UID) { p.Set(u, FWrongPath) }, false},
		{"squashed", func(p *Pool, u UID) {}, true},
	} {
		trk := trackerFor(1)
		p := NewPool(8)
		u := newUop(p, 0, 1, isa.IntALU)
		p.Res[u].IQCycles = 10
		tc.mod(p, u)
		p.Classify(trk, DefaultBits(), u, tc.sq)
		if trk.ACEBitCycles(avf.IQ) != 0 {
			t.Errorf("%s counted ACE", tc.name)
		}
		if trk.Occupancy(avf.IQ, 100) == 0 {
			t.Errorf("%s residency lost entirely", tc.name)
		}
	}
}

func TestClassifyMemResidencies(t *testing.T) {
	trk := trackerFor(1)
	bits := DefaultBits()
	p := NewPool(8)
	u := newUop(p, 0, 1, isa.Load)
	p.Res[u].LSQTagCycles, p.Res[u].LSQDataCycles = 30, 12
	p.Classify(trk, bits, u, false)
	if trk.ACEBitCycles(avf.LSQTag) != 30*bits.LSQTagEntry {
		t.Fatal("LSQ tag classification wrong")
	}
	if trk.ACEBitCycles(avf.LSQData) != 12*bits.LSQDataEntry {
		t.Fatal("LSQ data classification wrong")
	}
}

// --- Materialize / observer view ---

func TestMaterializeRoundTrip(t *testing.T) {
	p := NewPool(8)
	u := newUop(p, 2, 7, isa.Load)
	p.Ins[u].Addr = 0x1234
	p.Set(u, FIssued|FExecuted|FCountedL1)
	p.Res[u].EnterIQ, p.Res[u].IQCycles = 100, 5
	p.Res[u].EnterROB, p.Res[u].ROBCycles = 100, 9
	p.Res[u].IssuedAt, p.Res[u].FUCycles = 105, 1
	var view Uop
	p.Materialize(u, &view)
	if view.TID != 2 || view.GSeq != 7 || view.Addr != 0x1234 {
		t.Fatal("identity fields wrong")
	}
	if !view.Issued || !view.Executed || !view.CountedL1 || view.Squashed {
		t.Fatal("flag fields wrong")
	}
	res := view.Residencies(DefaultBits())
	if res[0].End-res[0].Start != 5 || res[1].End-res[1].Start != 9 || res[4].End-res[4].Start != 1 {
		t.Fatalf("residencies wrong: %+v", res)
	}
}
