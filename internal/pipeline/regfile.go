package pipeline

import (
	"smtavf/internal/avf"
	"smtavf/internal/digest"
	"smtavf/internal/isa"
)

type physReg struct {
	ready    bool
	written  bool
	allocAt  uint64
	writeAt  uint64
	lastRead uint64
	owner    int
}

// RegFile is the shared physical register pool with per-thread rename
// tables. Both the integer and floating-point banks live here; physical
// indices 0..NInt-1 are integer, NInt..NInt+NFP-1 floating point.
//
// AVF lifetime rule (paper §4.2): a register is un-ACE from allocation
// (rename) until writeback — it holds no valid data and will be overwritten
// — ACE from writeback to its last read, and un-ACE from the last read
// until it is freed.
type RegFile struct {
	pool      *Pool
	nInt, nFP int
	regs      []physReg
	freeInt   []int
	freeFP    []int
	rename    [][]int // [thread][arch] -> phys

	trk  *avf.Tracker
	bits Bits

	// Event-driven wakeup (docs/performance.md): waiters[p] holds the IQ
	// entries blocked on physical register p. Write drains the list and
	// calls wake on every entry whose WaitCount reaches zero, so the issue
	// stage never polls operand readiness. The lists hold pool ids.
	waiters [][]UID
	wake    func(UID)
}

// NewRegFile builds a pool of nInt+nFP physical registers shared by
// 'threads' contexts and maps every architectural register to an initial
// physical register holding architectural state (ready at cycle 0).
// The pool must hold at least threads×64 registers.
func NewRegFile(pool *Pool, nInt, nFP, threads int, trk *avf.Tracker, bits Bits) *RegFile {
	if nInt < threads*isa.NumIntRegs || nFP < threads*isa.NumFPRegs {
		panic("pipeline: physical register pool smaller than architectural state")
	}
	rf := &RegFile{
		pool:    pool,
		nInt:    nInt,
		nFP:     nFP,
		regs:    make([]physReg, nInt+nFP),
		trk:     trk,
		bits:    bits,
		waiters: make([][]UID, nInt+nFP),
	}
	next := 0
	nextFP := nInt
	for t := 0; t < threads; t++ {
		m := make([]int, isa.NumRegs)
		for a := 0; a < isa.NumIntRegs; a++ {
			m[a] = next
			rf.regs[next] = physReg{ready: true, written: true, owner: t}
			next++
		}
		for a := isa.NumIntRegs; a < isa.NumRegs; a++ {
			m[a] = nextFP
			rf.regs[nextFP] = physReg{ready: true, written: true, owner: t}
			nextFP++
		}
		rf.rename = append(rf.rename, m)
	}
	for p := next; p < nInt; p++ {
		rf.freeInt = append(rf.freeInt, p)
	}
	for p := nextFP; p < nInt+nFP; p++ {
		rf.freeFP = append(rf.freeFP, p)
	}
	return rf
}

// FreeCount returns the number of free registers in the selected bank.
func (rf *RegFile) FreeCount(fp bool) int {
	if fp {
		return len(rf.freeFP)
	}
	return len(rf.freeInt)
}

// TotalBits returns the register-array capacity in bits.
func (rf *RegFile) TotalBits() uint64 {
	return uint64(rf.nInt+rf.nFP) * rf.bits.RegEntry
}

// CanRename reports whether a destination register of the given bank can be
// allocated now.
func (rf *RegFile) CanRename(dest isa.RegID) bool {
	if !dest.Valid() {
		return true
	}
	return rf.FreeCount(dest.IsFP()) > 0
}

// Rename maps u's sources through the thread's rename table and allocates a
// physical destination. The caller must have checked CanRename.
func (rf *RegFile) Rename(u UID, now uint64) {
	pl := rf.pool
	in := &pl.Ins[u]
	m := rf.rename[pl.TID[u]]
	pl.Meta[u].PhysSrc1, pl.Meta[u].PhysSrc2 = -1, -1
	if in.Src1.Valid() {
		pl.Meta[u].PhysSrc1 = int32(m[in.Src1])
	}
	if in.Src2.Valid() {
		pl.Meta[u].PhysSrc2 = int32(m[in.Src2])
	}
	pl.Meta[u].PhysDest, pl.Meta[u].OldPhysDest = -1, -1
	if !in.Dest.Valid() {
		return
	}
	var p int
	if in.Dest.IsFP() {
		p = rf.freeFP[len(rf.freeFP)-1]
		rf.freeFP = rf.freeFP[:len(rf.freeFP)-1]
	} else {
		p = rf.freeInt[len(rf.freeInt)-1]
		rf.freeInt = rf.freeInt[:len(rf.freeInt)-1]
	}
	pl.Meta[u].PhysDest = int32(p)
	pl.Meta[u].OldPhysDest = int32(m[in.Dest])
	m[in.Dest] = p
	rf.regs[p] = physReg{allocAt: now, owner: int(pl.TID[u])}
}

// Ready reports whether physical register p holds its value (p < 0 counts
// as an absent operand, always ready).
func (rf *RegFile) Ready(p int) bool {
	return p < 0 || rf.regs[p].ready
}

// SetWake installs the callback invoked when a waiting uop's last
// outstanding source operand is written (normally IQ.MarkReady).
func (rf *RegFile) SetWake(fn func(UID)) { rf.wake = fn }

// WatchSources registers u on the waiter list of each source operand that
// is not yet ready and returns the number of operands u now waits on. A
// return of 0 means u is register-ready immediately and the caller must
// mark it ready itself; otherwise the wake callback fires once the last
// watched register is written. A uop whose two sources name the same
// unready register takes two list slots and both drain on the same Write.
func (rf *RegFile) WatchSources(u UID) int {
	pl := rf.pool
	pl.Meta[u].WaitCount = 0
	pl.Flags[u] &^= FSrc1Wait | FSrc2Wait
	if p := pl.Meta[u].PhysSrc1; p >= 0 && !rf.regs[p].ready {
		rf.waiters[p] = append(rf.waiters[p], u)
		pl.Flags[u] |= FSrc1Wait
		pl.Meta[u].WaitCount++
	}
	if p := pl.Meta[u].PhysSrc2; p >= 0 && !rf.regs[p].ready {
		rf.waiters[p] = append(rf.waiters[p], u)
		pl.Flags[u] |= FSrc2Wait
		pl.Meta[u].WaitCount++
	}
	return int(pl.Meta[u].WaitCount)
}

// Unwatch drops u from any waiter lists it still sits on (a squash removed
// it from the IQ before its operands arrived).
func (rf *RegFile) Unwatch(u UID) {
	pl := rf.pool
	if pl.Meta[u].WaitCount == 0 {
		return
	}
	if pl.Flags[u]&FSrc1Wait != 0 {
		rf.dropWaiter(int(pl.Meta[u].PhysSrc1), u)
		pl.Flags[u] &^= FSrc1Wait
	}
	if pl.Flags[u]&FSrc2Wait != 0 {
		rf.dropWaiter(int(pl.Meta[u].PhysSrc2), u)
		pl.Flags[u] &^= FSrc2Wait
	}
	pl.Meta[u].WaitCount = 0
}

func (rf *RegFile) dropWaiter(p int, u UID) {
	ws := rf.waiters[p]
	for i, w := range ws {
		if w == u {
			last := len(ws) - 1
			ws[i] = ws[last]
			rf.waiters[p] = ws[:last]
			return
		}
	}
	panic("pipeline: Unwatch of a uop not on the waiter list")
}

// Write records writeback of physical register p at cycle now and wakes
// any uops whose last outstanding operand this write satisfies.
func (rf *RegFile) Write(p int, now uint64) {
	if p < 0 {
		return
	}
	r := &rf.regs[p]
	r.ready = true
	r.written = true
	r.writeAt = now
	if r.lastRead < now {
		r.lastRead = now
	}
	ws := rf.waiters[p]
	if len(ws) == 0 {
		return
	}
	pl := rf.pool
	rf.waiters[p] = ws[:0]
	for _, u := range ws {
		if pl.Flags[u]&FSrc1Wait != 0 && int(pl.Meta[u].PhysSrc1) == p {
			pl.Flags[u] &^= FSrc1Wait
		} else {
			pl.Flags[u] &^= FSrc2Wait
		}
		pl.Meta[u].WaitCount--
		if pl.Meta[u].WaitCount == 0 && rf.wake != nil {
			rf.wake(u)
		}
	}
}

// Read records an operand read of physical register p at cycle now. Only
// correct-path consumers should be recorded (wrong-path reads do not extend
// an ACE lifetime).
func (rf *RegFile) Read(p int, now uint64) {
	if p < 0 {
		return
	}
	if r := &rf.regs[p]; now > r.lastRead {
		r.lastRead = now
	}
}

// CommitFree releases the previous mapping of a committed uop's
// architectural destination and closes its AVF lifetime.
func (rf *RegFile) CommitFree(oldPhys int, now uint64) {
	if oldPhys < 0 {
		return
	}
	rf.closeLifetime(oldPhys, now, false)
	rf.pushFree(oldPhys)
}

// Rollback undoes u's rename during a squash at cycle now: the thread's
// table is restored and the allocated register is freed with an entirely
// un-ACE lifetime.
func (rf *RegFile) Rollback(u UID, now uint64) {
	pl := rf.pool
	d := int(pl.Meta[u].PhysDest)
	if d < 0 {
		return
	}
	rf.rename[pl.TID[u]][pl.Ins[u].Dest] = int(pl.Meta[u].OldPhysDest)
	rf.closeLifetime(d, now, true)
	rf.pushFree(d)
	pl.Meta[u].PhysDest = -1
}

func (rf *RegFile) pushFree(p int) {
	if p >= rf.nInt {
		rf.freeFP = append(rf.freeFP, p)
	} else {
		rf.freeInt = append(rf.freeInt, p)
	}
}

// closeLifetime books the AVF intervals of register p ending at cycle now.
func (rf *RegFile) closeLifetime(p int, now uint64, squashed bool) {
	if rf.trk == nil {
		return
	}
	r := &rf.regs[p]
	b := rf.bits.RegEntry
	if squashed || !r.written {
		// Never held committed data: the whole residency is un-ACE.
		rf.trk.AddInterval(avf.Reg, r.owner, b, r.allocAt, now, false)
		return
	}
	rf.trk.AddInterval(avf.Reg, r.owner, b, r.allocAt, r.writeAt, false)
	rf.trk.AddInterval(avf.Reg, r.owner, b, r.writeAt, r.lastRead, true)
	rf.trk.AddInterval(avf.Reg, r.owner, b, r.lastRead, now, false)
}

// CloseAccounting finalizes lifetimes of registers still allocated at the
// end of a run (architectural state and in-flight renames).
func (rf *RegFile) CloseAccounting(now uint64) {
	if rf.trk == nil {
		return
	}
	free := make(map[int]bool, len(rf.freeInt)+len(rf.freeFP))
	for _, p := range rf.freeInt {
		free[p] = true
	}
	for _, p := range rf.freeFP {
		free[p] = true
	}
	for p := range rf.regs {
		if !free[p] {
			rf.closeLifetime(p, now, false)
		}
	}
}

// Mapping returns thread tid's current physical mapping of arch (tests).
func (rf *RegFile) Mapping(tid int, arch isa.RegID) int { return rf.rename[tid][arch] }

// RenameDigest digests every thread's architectural→physical rename table
// for checkpoint identification.
func (rf *RegFile) RenameDigest() uint64 {
	h := digest.New()
	for tid := range rf.rename {
		for arch, phys := range rf.rename[tid] {
			h = digest.Mix(h, uint64(tid)<<32|uint64(arch))
			h = digest.Mix(h, uint64(phys))
		}
	}
	return h
}
