package pipeline

// ROB is one thread's reorder buffer (paper Table 1: 96 entries per
// thread): a FIFO of in-flight uops in program order, dequeued at commit
// from the head and rolled back from the tail on a squash.
type ROB struct {
	buf  []*Uop
	head int
	n    int
}

// NewROB builds a reorder buffer with the given capacity.
func NewROB(capacity int) *ROB {
	return &ROB{buf: make([]*Uop, capacity)}
}

// Len returns the number of occupied entries.
func (r *ROB) Len() int { return r.n }

// Capacity returns the entry count.
func (r *ROB) Capacity() int { return len(r.buf) }

// Full reports whether no entries remain.
func (r *ROB) Full() bool { return r.n == len(r.buf) }

// Push appends u at the tail at cycle now.
func (r *ROB) Push(u *Uop, now uint64) {
	if r.Full() {
		panic("pipeline: ROB push when full")
	}
	u.EnterROB = now
	u.ROBIdx = (r.head + r.n) % len(r.buf)
	r.buf[u.ROBIdx] = u
	r.n++
}

// Head returns the oldest uop without removing it, or nil when empty.
func (r *ROB) Head() *Uop {
	if r.n == 0 {
		return nil
	}
	return r.buf[r.head]
}

// PopHead removes and returns the oldest uop, closing its ROB residency at
// cycle now.
func (r *ROB) PopHead(now uint64) *Uop {
	u := r.Head()
	if u == nil {
		panic("pipeline: ROB pop when empty")
	}
	u.ROBCycles += now - u.EnterROB
	r.buf[r.head] = nil
	r.head = (r.head + 1) % len(r.buf)
	r.n--
	return u
}

// Tail returns the youngest uop, or nil when empty.
func (r *ROB) Tail() *Uop {
	if r.n == 0 {
		return nil
	}
	return r.buf[(r.head+r.n-1)%len(r.buf)]
}

// PopTail removes and returns the youngest uop (squash rollback), closing
// its ROB residency at cycle now.
func (r *ROB) PopTail(now uint64) *Uop {
	u := r.Tail()
	if u == nil {
		panic("pipeline: ROB tail pop when empty")
	}
	u.ROBCycles += now - u.EnterROB
	r.buf[(r.head+r.n-1)%len(r.buf)] = nil
	r.n--
	return u
}

// At returns the i-th oldest uop (0 = head).
func (r *ROB) At(i int) *Uop {
	if i < 0 || i >= r.n {
		panic("pipeline: ROB index out of range")
	}
	return r.buf[(r.head+i)%len(r.buf)]
}
