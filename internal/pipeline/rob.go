package pipeline

// ROB is one thread's reorder buffer (paper Table 1: 96 entries per
// thread): a FIFO of in-flight uops in program order, dequeued at commit
// from the head and rolled back from the tail on a squash. The ring holds
// pool ids, so the buffer carries no GC-visible pointers.
type ROB struct {
	pool *Pool
	buf  []UID
	head int
	n    int
}

// NewROB builds a reorder buffer over pool with the given capacity.
func NewROB(pool *Pool, capacity int) *ROB {
	return &ROB{pool: pool, buf: make([]UID, capacity)}
}

// Len returns the number of occupied entries.
func (r *ROB) Len() int { return r.n }

// Capacity returns the entry count.
func (r *ROB) Capacity() int { return len(r.buf) }

// Full reports whether no entries remain.
func (r *ROB) Full() bool { return r.n == len(r.buf) }

// Push appends u at the tail at cycle now.
func (r *ROB) Push(u UID, now uint64) {
	if r.Full() {
		panic("pipeline: ROB push when full")
	}
	r.pool.Res[u].EnterROB = now
	r.buf[(r.head+r.n)%len(r.buf)] = u
	r.n++
}

// Head returns the oldest uop without removing it, or NoUID when empty.
func (r *ROB) Head() UID {
	if r.n == 0 {
		return NoUID
	}
	return r.buf[r.head]
}

// PopHead removes and returns the oldest uop, closing its ROB residency at
// cycle now.
func (r *ROB) PopHead(now uint64) UID {
	u := r.Head()
	if u == NoUID {
		panic("pipeline: ROB pop when empty")
	}
	r.pool.Res[u].ROBCycles += now - r.pool.Res[u].EnterROB
	r.head = (r.head + 1) % len(r.buf)
	r.n--
	return u
}

// Tail returns the youngest uop, or NoUID when empty.
func (r *ROB) Tail() UID {
	if r.n == 0 {
		return NoUID
	}
	return r.buf[(r.head+r.n-1)%len(r.buf)]
}

// PopTail removes and returns the youngest uop (squash rollback), closing
// its ROB residency at cycle now.
func (r *ROB) PopTail(now uint64) UID {
	u := r.Tail()
	if u == NoUID {
		panic("pipeline: ROB tail pop when empty")
	}
	r.pool.Res[u].ROBCycles += now - r.pool.Res[u].EnterROB
	r.n--
	return u
}

// At returns the i-th oldest uop (0 = head).
func (r *ROB) At(i int) UID {
	if i < 0 || i >= r.n {
		panic("pipeline: ROB index out of range")
	}
	return r.buf[(r.head+i)%len(r.buf)]
}
