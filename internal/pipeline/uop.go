// Package pipeline implements the microarchitecture structures of the
// simulated SMT machine — instruction queue, per-thread reorder buffers and
// load/store queues, the shared physical register file with renaming, and
// the function-unit pools — each instrumented for ACE/un-ACE residency
// accounting.
package pipeline

import (
	"smtavf/internal/avf"
	"smtavf/internal/isa"
)

// Uop is one in-flight dynamic instruction. Residency entry cycles are
// logged as the uop moves through structures; when its fate is known
// (commit or squash) the accumulated intervals are classified and added to
// the AVF tracker.
type Uop struct {
	isa.Instruction
	TID  int
	GSeq uint64 // global fetch order, for age-based selection

	// Speculation state.
	WrongPath  bool // fetched down a mispredicted path; will be squashed
	PredTaken  bool
	PredTarget uint64
	Mispred    bool // fetch-time prediction disagreed with the oracle outcome

	// FetchedAt is the cycle the uop entered the machine; the pipeline
	// flight recorder keys its sampling window on it.
	FetchedAt uint64

	// Rename state.
	PhysSrc1, PhysSrc2 int
	PhysDest           int // -1 when the uop writes no register
	OldPhysDest        int // previous mapping of the architectural dest

	// Pipeline state.
	InIQ       bool
	IQIdx      int  // slot in the IQ entry array; -1 when not resident
	InReady    bool // member of the IQ's ready set
	Issued     bool
	Executed   bool   // finished execution / memory access; result available
	FrontReady uint64 // cycle the uop clears the front-end pipe (dispatchable)
	ReadyAt    uint64
	ROBIdx     int
	LSQIdx     int  // -1 for non-memory uops
	FlushLoad  bool // the L2-missing load that triggered a FLUSH squash
	Squashed   bool // removed by a pipeline squash; never commits

	// Register-wakeup state (RegFile.WatchSources): how many source
	// operands are still unwritten, and which of the two slots wait. The
	// uop sits on the register file's waiter lists while WaitCount > 0.
	WaitCount          int
	Src1Wait, Src2Wait bool

	// Outstanding-miss bookkeeping for fetch policies: set when this load
	// incremented the thread's counters, so squash can decrement them.
	CountedL1, CountedL2 bool
	PredL1, PredL2       bool // predicted to miss at fetch (PDG / STALLP)

	// Memory state.
	DL1Kind   int  // 0 hit, 1 L1 miss, 2 L2 miss (valid once executed)
	Forwarded bool // load satisfied by store-to-load forwarding

	// Residency log: cycle of entry into each structure, and accumulated
	// cycles once the uop leaves it.
	EnterIQ, IQCycles      uint64
	EnterROB, ROBCycles    uint64
	EnterLSQ, LSQTagCycles uint64
	DataAt, LSQDataCycles  uint64 // LSQ data array: value arrival → dequeue
	IssuedAt, FUCycles     uint64 // function-unit occupancy window
}

// ACE reports whether the uop's state was Architecturally required for
// Correct Execution: it committed (not squashed), it is not a NOP, and its
// result is consumed (not dynamically dead). Squash fate is passed by the
// caller because the uop itself cannot know it.
func (u *Uop) ACE(squashed bool) bool {
	return !squashed && !u.WrongPath && u.Class != isa.NOP && !u.Dead
}

// Bits is the per-entry bit widths used for AVF numerators and
// denominators. The absolute values scale both numerator and denominator
// of a structure's AVF identically, so AVF is insensitive to them; they
// matter only when structures are compared bit-for-bit.
type Bits struct {
	IQEntry      uint64 // opcode, two source tags, dest tag, immediate, flags
	ROBEntry     uint64 // PC, dest, exception/complete state
	LSQTagEntry  uint64 // address + control
	LSQDataEntry uint64 // 64-bit datum
	RegEntry     uint64 // 64-bit register
	FUUnit       uint64 // datapath latches of one function unit
}

// DefaultBits returns the bit widths used throughout the paper
// reproduction.
func DefaultBits() Bits {
	return Bits{
		IQEntry:      80,
		ROBEntry:     76,
		LSQTagEntry:  52,
		LSQDataEntry: 64,
		RegEntry:     64,
		FUUnit:       256,
	}
}

// Fate returns the classification reason behind ACE for the given squash
// outcome: Fate(squashed).ACE() == ACE(squashed) always.
func (u *Uop) Fate(squashed bool) avf.Fate {
	switch {
	case u.WrongPath:
		return avf.FateWrongPath
	case squashed:
		return avf.FateSquashed
	case u.Class == isa.NOP:
		return avf.FateNOP
	case u.Dead:
		return avf.FateDead
	}
	return avf.FateCommitted
}

// Residency is one structure-occupancy interval [Start, End) of a uop,
// carrying the per-entry bit width the interval is weighted with.
type Residency struct {
	Struct avf.Struct
	Bits   uint64
	Start  uint64
	End    uint64
}

// Residencies returns the uop's accumulated per-structure residency
// intervals. Classify and the pipeline flight recorder both consume this,
// so their accounting can never diverge. Intervals with End <= Start are
// empty (the structure was never occupied).
func (u *Uop) Residencies(bits Bits) [5]Residency {
	return [5]Residency{
		{avf.IQ, bits.IQEntry, u.EnterIQ, u.EnterIQ + u.IQCycles},
		{avf.ROB, bits.ROBEntry, u.EnterROB, u.EnterROB + u.ROBCycles},
		{avf.LSQTag, bits.LSQTagEntry, u.EnterLSQ, u.EnterLSQ + u.LSQTagCycles},
		{avf.LSQData, bits.LSQDataEntry, u.DataAt, u.DataAt + u.LSQDataCycles},
		{avf.FU, bits.FUUnit, u.IssuedAt, u.IssuedAt + u.FUCycles},
	}
}

// Classify adds the uop's accumulated residencies to the tracker with the
// given fate. It must be called exactly once per uop, at commit or squash
// time.
func (u *Uop) Classify(trk *avf.Tracker, bits Bits, squashed bool) {
	ace := u.ACE(squashed)
	for _, r := range u.Residencies(bits) {
		trk.AddInterval(r.Struct, u.TID, r.Bits, r.Start, r.End, ace)
	}
}
