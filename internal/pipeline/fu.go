package pipeline

import "smtavf/internal/isa"

// FUPool models the function units (paper Table 1: 8 I-ALU, 4 I-MUL/DIV,
// 4 load/store, 8 FP-ALU, 4 FP-MUL/DIV/SQRT). Pipelined units accept one
// operation per cycle; divide units are iterative and stay busy for the
// whole operation.
type FUPool struct {
	counts [isa.NumFUKinds]int
	busy   [isa.NumFUKinds][]uint64 // per-unit busy-until cycle

	// BusyACE/BusyAll accumulate unit-occupancy cycles for utilization
	// statistics (AVF is charged through Uop.FUCycles).
	BusyAll uint64
}

// DefaultFUCounts returns the paper's Table 1 pool sizes.
func DefaultFUCounts() [isa.NumFUKinds]int {
	return [isa.NumFUKinds]int{
		isa.FUIntALU:    8,
		isa.FUIntMulDiv: 4,
		isa.FULoadStore: 4,
		isa.FUFPALU:     8,
		isa.FUFPMulDiv:  4,
	}
}

// NewFUPool builds a pool with the given unit counts.
func NewFUPool(counts [isa.NumFUKinds]int) *FUPool {
	p := &FUPool{counts: counts}
	for k := 0; k < isa.NumFUKinds; k++ {
		p.busy[k] = make([]uint64, counts[k])
	}
	return p
}

// Count returns the number of units of kind k.
func (p *FUPool) Count(k isa.FUKind) int { return p.counts[k] }

// TotalUnits returns the number of units across all kinds.
func (p *FUPool) TotalUnits() int {
	n := 0
	for _, c := range p.counts {
		n += c
	}
	return n
}

// TryIssue reserves a unit for an instruction of class c at cycle now,
// reporting success. On success the unit is occupied for the class's issue
// interval (1 cycle when pipelined, the full latency otherwise) and the
// uop should charge Latency() cycles of FU residency.
func (p *FUPool) TryIssue(c isa.Class, now uint64) bool {
	k := c.FU()
	units := p.busy[k]
	for i := range units {
		if units[i] <= now {
			if c.Pipelined() {
				units[i] = now + 1
			} else {
				units[i] = now + uint64(c.Latency())
			}
			p.BusyAll += uint64(c.Latency())
			return true
		}
	}
	return false
}

// Utilization returns mean unit occupancy over cycles.
func (p *FUPool) Utilization(cycles uint64) float64 {
	tot := uint64(p.TotalUnits()) * cycles
	if tot == 0 {
		return 0
	}
	return float64(p.BusyAll) / float64(tot)
}
