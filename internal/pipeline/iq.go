package pipeline

import "sort"

// IQ is the shared issue queue (paper Table 1: 96 entries). Entries wait
// for their source operands; ready entries are selected oldest-first up to
// the issue width each cycle.
type IQ struct {
	capacity int
	entries  []*Uop
	// perThread counts occupied entries per thread, for the ICOUNT fetch
	// policy and for static-partition ablations.
	perThread []int
	partition int // per-thread entry cap; 0 = fully shared
}

// NewIQ builds an issue queue with the given capacity for the given number
// of threads. partition, if nonzero, statically caps each thread's share
// (the reliability-aware IQ-partition ablation of DESIGN.md §8).
func NewIQ(capacity, threads, partition int) *IQ {
	return &IQ{
		capacity:  capacity,
		entries:   make([]*Uop, 0, capacity),
		perThread: make([]int, threads),
		partition: partition,
	}
}

// Len returns the number of occupied entries.
func (q *IQ) Len() int { return len(q.entries) }

// Capacity returns the total entry count.
func (q *IQ) Capacity() int { return q.capacity }

// ThreadCount returns the number of entries occupied by thread tid.
func (q *IQ) ThreadCount(tid int) int { return q.perThread[tid] }

// CanInsert reports whether thread tid may insert another entry.
func (q *IQ) CanInsert(tid int) bool {
	if len(q.entries) >= q.capacity {
		return false
	}
	if q.partition > 0 && q.perThread[tid] >= q.partition {
		return false
	}
	return true
}

// Insert places u in the queue at cycle now. The caller must have checked
// CanInsert.
func (q *IQ) Insert(u *Uop, now uint64) {
	if !q.CanInsert(u.TID) {
		panic("pipeline: IQ insert without capacity")
	}
	u.InIQ = true
	u.EnterIQ = now
	q.entries = append(q.entries, u)
	q.perThread[u.TID]++
}

// remove deletes entry i, closing its residency at cycle now.
func (q *IQ) remove(i int, now uint64) {
	u := q.entries[i]
	u.InIQ = false
	u.IQCycles += now - u.EnterIQ
	q.perThread[u.TID]--
	q.entries[i] = q.entries[len(q.entries)-1]
	q.entries = q.entries[:len(q.entries)-1]
}

// Candidates returns the entries satisfying ready, oldest first, without
// removing them. The core picks from the front, subject to function-unit
// and port availability, and removes issued entries with Remove.
func (q *IQ) Candidates(ready func(*Uop) bool) []*Uop {
	var cand []*Uop
	for _, u := range q.entries {
		if ready(u) {
			cand = append(cand, u)
		}
	}
	sort.Slice(cand, func(i, j int) bool { return cand[i].GSeq < cand[j].GSeq })
	return cand
}

// Remove deletes u from the queue, closing its residency at cycle now.
func (q *IQ) Remove(u *Uop, now uint64) {
	for i, e := range q.entries {
		if e == u {
			q.remove(i, now)
			return
		}
	}
	panic("pipeline: IQ remove of absent entry")
}

// SquashThread removes every entry of thread tid with GSeq > after,
// closing residencies at cycle now, and returns the removed uops.
func (q *IQ) SquashThread(tid int, after uint64, now uint64) []*Uop {
	var out []*Uop
	for i := 0; i < len(q.entries); {
		u := q.entries[i]
		if u.TID == tid && u.GSeq > after {
			q.remove(i, now)
			out = append(out, u)
			continue
		}
		i++
	}
	return out
}

// Occupied returns the entries currently in the queue (unsorted); callers
// must not mutate queue membership through it.
func (q *IQ) Occupied() []*Uop { return q.entries }
