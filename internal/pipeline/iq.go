package pipeline

// IQ is the shared issue queue (paper Table 1: 96 entries). Entries wait
// for their source operands; ready entries are selected oldest-first up to
// the issue width each cycle.
//
// Selection is event-driven (docs/performance.md): instead of scanning and
// sorting every entry each cycle, the queue maintains a ready set — the
// entries whose register operands are all available — in ascending GSeq
// order. The core marks an entry ready at dispatch when its operands are
// already available, or later through the register file's writeback wakeup
// (RegFile.WatchSources / RegFile.Write); both paths land in MarkReady.
// Pool.IQIdx tracks each entry's slot so Remove is O(1), and membership in
// the ready set is O(log n) maintenance instead of an O(n log n) rebuild.
// Both arrays hold pool ids, so the queue carries no GC-visible pointers.
type IQ struct {
	pool     *Pool
	capacity int
	entries  []UID
	ready    []UID // register-ready entries in ascending GSeq (issue order)
	// perThread counts occupied entries per thread, for the ICOUNT fetch
	// policy and for static-partition ablations.
	perThread []int
	partition int // per-thread entry cap; 0 = fully shared
}

// NewIQ builds an issue queue over pool with the given capacity for the
// given number of threads. partition, if nonzero, statically caps each
// thread's share (the reliability-aware IQ-partition ablation of
// DESIGN.md §8).
func NewIQ(pool *Pool, capacity, threads, partition int) *IQ {
	return &IQ{
		pool:      pool,
		capacity:  capacity,
		entries:   make([]UID, 0, capacity),
		ready:     make([]UID, 0, capacity),
		perThread: make([]int, threads),
		partition: partition,
	}
}

// Len returns the number of occupied entries.
func (q *IQ) Len() int { return len(q.entries) }

// Capacity returns the total entry count.
func (q *IQ) Capacity() int { return q.capacity }

// ThreadCount returns the number of entries occupied by thread tid.
func (q *IQ) ThreadCount(tid int) int { return q.perThread[tid] }

// CanInsert reports whether thread tid may insert another entry.
func (q *IQ) CanInsert(tid int) bool {
	if len(q.entries) >= q.capacity {
		return false
	}
	if q.partition > 0 && q.perThread[tid] >= q.partition {
		return false
	}
	return true
}

// Insert places u in the queue at cycle now. The caller must have checked
// CanInsert, and must follow up with MarkReady once u's register operands
// are all available (immediately, or via the register file's wakeup).
func (q *IQ) Insert(u UID, now uint64) {
	p := q.pool
	if !q.CanInsert(int(p.TID[u])) {
		panic("pipeline: IQ insert without capacity")
	}
	p.Flags[u] = p.Flags[u]&^FInReady | FInIQ
	p.Res[u].EnterIQ = now
	p.Meta[u].IQIdx = int32(len(q.entries))
	q.entries = append(q.entries, u)
	q.perThread[p.TID[u]]++
}

// MarkReady adds the resident entry u to the ready set. Idempotence is the
// caller's problem: u must not already be in the set.
func (q *IQ) MarkReady(u UID) {
	p := q.pool
	if p.Flags[u]&FInIQ == 0 || p.Flags[u]&FInReady != 0 {
		panic("pipeline: MarkReady of a non-resident or already-ready entry")
	}
	i := q.readySearch(p.GSeq[u])
	q.ready = append(q.ready, 0)
	copy(q.ready[i+1:], q.ready[i:])
	q.ready[i] = u
	p.Flags[u] |= FInReady
}

// readySearch returns the insertion index of gseq in the ready set (the
// count of ready entries with a smaller GSeq). GSeqs are unique, so this
// also locates an existing member exactly.
func (q *IQ) readySearch(gseq uint64) int {
	gs := q.pool.GSeq
	lo, hi := 0, len(q.ready)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if gs[q.ready[mid]] < gseq {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// AppendReady appends the ready entries to dst, oldest first, and returns
// the extended slice. The core copies the set into its own scratch buffer
// because issuing removes entries from the set mid-iteration.
func (q *IQ) AppendReady(dst []UID) []UID {
	return append(dst, q.ready...)
}

// ReadyLen returns the size of the ready set.
func (q *IQ) ReadyLen() int { return len(q.ready) }

// Unready takes resident entry u back out of the ready set without removing
// it from the queue — the load-sleep path (docs/performance.md): a load
// blocked on an older store's unknown address parks until a store of its
// thread executes, instead of being re-scanned every cycle. The caller
// re-wakes it with MarkReady.
func (q *IQ) Unready(u UID) {
	q.dropReady(u)
	q.pool.Flags[u] &^= FInReady
}

// remove deletes entry i, closing its residency at cycle now.
func (q *IQ) remove(i int, now uint64) {
	p := q.pool
	u := q.entries[i]
	inReady := p.Flags[u]&FInReady != 0
	p.Flags[u] &^= FInIQ | FInReady
	p.Meta[u].IQIdx = -1
	p.Res[u].IQCycles += now - p.Res[u].EnterIQ
	q.perThread[p.TID[u]]--
	last := len(q.entries) - 1
	q.entries[i] = q.entries[last]
	p.Meta[q.entries[i]].IQIdx = int32(i)
	q.entries = q.entries[:last]
	if inReady {
		q.dropReady(u)
	}
}

// dropReady removes u from the ready set. The FInReady flag is already
// cleared by the caller.
func (q *IQ) dropReady(u UID) {
	i := q.readySearch(q.pool.GSeq[u])
	if i >= len(q.ready) || q.ready[i] != u {
		panic("pipeline: ready set out of sync")
	}
	copy(q.ready[i:], q.ready[i+1:])
	q.ready = q.ready[:len(q.ready)-1]
}

// Remove deletes u from the queue, closing its residency at cycle now. If
// u is still watching register operands (it was removed by a squash rather
// than issued), the caller must also drop it from the register file's
// waiter lists with RegFile.Unwatch.
func (q *IQ) Remove(u UID, now uint64) {
	i := int(q.pool.Meta[u].IQIdx)
	if i < 0 || i >= len(q.entries) || q.entries[i] != u {
		panic("pipeline: IQ remove of absent entry")
	}
	q.remove(i, now)
}

// SquashThread removes every entry of thread tid with GSeq > after,
// closing residencies at cycle now, and appends the removed uops to dst.
// As with Remove, entries still watching operands must be unwatched by the
// caller.
func (q *IQ) SquashThread(tid int, after uint64, now uint64, dst []UID) []UID {
	p := q.pool
	for i := 0; i < len(q.entries); {
		u := q.entries[i]
		if int(p.TID[u]) == tid && p.GSeq[u] > after {
			q.remove(i, now)
			dst = append(dst, u)
			continue
		}
		i++
	}
	return dst
}

// Occupied returns the entries currently in the queue (unsorted); callers
// must not mutate queue membership through it.
func (q *IQ) Occupied() []UID { return q.entries }
