package pipeline

// IQ is the shared issue queue (paper Table 1: 96 entries). Entries wait
// for their source operands; ready entries are selected oldest-first up to
// the issue width each cycle.
//
// Selection is event-driven (docs/performance.md): instead of scanning and
// sorting every entry each cycle, the queue maintains a ready set — the
// entries whose register operands are all available — in ascending GSeq
// order. The core marks an entry ready at dispatch when its operands are
// already available, or later through the register file's writeback wakeup
// (RegFile.WatchSources / RegFile.Write); both paths land in MarkReady.
// Uop.IQIdx tracks each entry's slot so Remove is O(1), and membership in
// the ready set is O(log n) maintenance instead of an O(n log n) rebuild.
type IQ struct {
	capacity int
	entries  []*Uop
	ready    []*Uop // register-ready entries in ascending GSeq (issue order)
	// perThread counts occupied entries per thread, for the ICOUNT fetch
	// policy and for static-partition ablations.
	perThread []int
	partition int // per-thread entry cap; 0 = fully shared
}

// NewIQ builds an issue queue with the given capacity for the given number
// of threads. partition, if nonzero, statically caps each thread's share
// (the reliability-aware IQ-partition ablation of DESIGN.md §8).
func NewIQ(capacity, threads, partition int) *IQ {
	return &IQ{
		capacity:  capacity,
		entries:   make([]*Uop, 0, capacity),
		ready:     make([]*Uop, 0, capacity),
		perThread: make([]int, threads),
		partition: partition,
	}
}

// Len returns the number of occupied entries.
func (q *IQ) Len() int { return len(q.entries) }

// Capacity returns the total entry count.
func (q *IQ) Capacity() int { return q.capacity }

// ThreadCount returns the number of entries occupied by thread tid.
func (q *IQ) ThreadCount(tid int) int { return q.perThread[tid] }

// CanInsert reports whether thread tid may insert another entry.
func (q *IQ) CanInsert(tid int) bool {
	if len(q.entries) >= q.capacity {
		return false
	}
	if q.partition > 0 && q.perThread[tid] >= q.partition {
		return false
	}
	return true
}

// Insert places u in the queue at cycle now. The caller must have checked
// CanInsert, and must follow up with MarkReady once u's register operands
// are all available (immediately, or via the register file's wakeup).
func (q *IQ) Insert(u *Uop, now uint64) {
	if !q.CanInsert(u.TID) {
		panic("pipeline: IQ insert without capacity")
	}
	u.InIQ = true
	u.InReady = false
	u.EnterIQ = now
	u.IQIdx = len(q.entries)
	q.entries = append(q.entries, u)
	q.perThread[u.TID]++
}

// MarkReady adds the resident entry u to the ready set. Idempotence is the
// caller's problem: u must not already be in the set.
func (q *IQ) MarkReady(u *Uop) {
	if !u.InIQ || u.InReady {
		panic("pipeline: MarkReady of a non-resident or already-ready entry")
	}
	i := q.readySearch(u.GSeq)
	q.ready = append(q.ready, nil)
	copy(q.ready[i+1:], q.ready[i:])
	q.ready[i] = u
	u.InReady = true
}

// readySearch returns the insertion index of gseq in the ready set (the
// count of ready entries with a smaller GSeq). GSeqs are unique, so this
// also locates an existing member exactly.
func (q *IQ) readySearch(gseq uint64) int {
	lo, hi := 0, len(q.ready)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if q.ready[mid].GSeq < gseq {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// AppendReady appends the ready entries to dst, oldest first, and returns
// the extended slice. The core copies the set into its own scratch buffer
// because issuing removes entries from the set mid-iteration.
func (q *IQ) AppendReady(dst []*Uop) []*Uop {
	return append(dst, q.ready...)
}

// ReadyLen returns the size of the ready set (tests).
func (q *IQ) ReadyLen() int { return len(q.ready) }

// remove deletes entry i, closing its residency at cycle now.
func (q *IQ) remove(i int, now uint64) {
	u := q.entries[i]
	u.InIQ = false
	u.IQIdx = -1
	u.IQCycles += now - u.EnterIQ
	q.perThread[u.TID]--
	last := len(q.entries) - 1
	q.entries[i] = q.entries[last]
	q.entries[i].IQIdx = i
	q.entries[last] = nil
	q.entries = q.entries[:last]
	if u.InReady {
		q.dropReady(u)
	}
}

// dropReady removes u from the ready set.
func (q *IQ) dropReady(u *Uop) {
	i := q.readySearch(u.GSeq)
	if i >= len(q.ready) || q.ready[i] != u {
		panic("pipeline: ready set out of sync")
	}
	copy(q.ready[i:], q.ready[i+1:])
	q.ready[len(q.ready)-1] = nil
	q.ready = q.ready[:len(q.ready)-1]
	u.InReady = false
}

// Remove deletes u from the queue, closing its residency at cycle now. If
// u is still watching register operands (it was removed by a squash rather
// than issued), the caller must also drop it from the register file's
// waiter lists with RegFile.Unwatch.
func (q *IQ) Remove(u *Uop, now uint64) {
	i := u.IQIdx
	if i < 0 || i >= len(q.entries) || q.entries[i] != u {
		panic("pipeline: IQ remove of absent entry")
	}
	q.remove(i, now)
}

// SquashThread removes every entry of thread tid with GSeq > after,
// closing residencies at cycle now, and returns the removed uops. As with
// Remove, entries still watching operands must be unwatched by the caller.
func (q *IQ) SquashThread(tid int, after uint64, now uint64) []*Uop {
	var out []*Uop
	for i := 0; i < len(q.entries); {
		u := q.entries[i]
		if u.TID == tid && u.GSeq > after {
			q.remove(i, now)
			out = append(out, u)
			continue
		}
		i++
	}
	return out
}

// Occupied returns the entries currently in the queue (unsorted); callers
// must not mutate queue membership through it.
func (q *IQ) Occupied() []*Uop { return q.entries }
