package pipeline

import (
	"smtavf/internal/avf"
	"smtavf/internal/isa"
)

// UID indexes a uop slot in a Pool. The pipeline containers (IQ, ROB,
// LSQ, register-file waiter lists) and the core's scan state hold UIDs
// instead of *Uop pointers, so the per-cycle hot loop walks pointer-free
// parallel slices: the garbage collector never scans or write-barriers
// them, and each field sweep touches one densely packed array.
type UID int32

// NoUID marks an absent uop reference.
const NoUID UID = -1

// Uop flag bits (Pool.Flags). They pack the booleans of the classic Uop
// struct into one word per slot so a squash or reset touches one store.
const (
	FWrongPath uint32 = 1 << iota // fetched down a mispredicted path
	FPredTaken
	FMispred
	FInIQ
	FInReady
	FIssued
	FExecuted
	FFlushLoad
	FSquashed
	FSrc1Wait
	FSrc2Wait
	FCountedL1
	FCountedL2
	FPredL1
	FPredL2
	FForwarded
	FSleeping // parked out of the ready set awaiting a store execution
)

// Meta packs a uop's rename, container-index, and timing fields into one
// 64-byte record — exactly a cache line. A single uop touch (dispatch,
// issue, commit) reads one Meta line instead of a dozen scattered arrays;
// see docs/performance.md for the layout rationale.
type Meta struct {
	PhysSrc1, PhysSrc2    int32
	PhysDest, OldPhysDest int32
	IQIdx, LSQIdx         int32
	WaitCount, DL1Kind    int32
	FetchedAt, PredTarget uint64
	FrontReady, ReadyAt   uint64
}

// ResLog is a uop's residency record: the cycle it entered each tracked
// structure and the cycles it accumulated there. These feed the AVF
// classification itself, so they are hot state, packed into two cache
// lines per uop.
type ResLog struct {
	EnterIQ, IQCycles      uint64
	EnterROB, ROBCycles    uint64
	EnterLSQ, LSQTagCycles uint64
	DataAt, LSQDataCycles  uint64
	IssuedAt, FUCycles     uint64
}

// Pool is the structure-of-arrays uop store (docs/performance.md): hot
// per-uop state lives in parallel slices indexed by UID — scan-critical
// scalars (GSeq for age ordering, Flags for state tests, TID) in their own
// dense arrays, and the remaining per-uop fields grouped by access pattern
// into the cache-line-sized Meta and ResLog records. Slots are recycled by
// the core's per-thread free lists; Alloc only grows the arrays when a
// thread's free list is empty.
//
// The classic Uop struct remains as the observer-facing view: Materialize
// copies a slot into one, and is called only at classification sites and
// only when a pipetrace/propagation/cpistack observer is attached — the
// side-table rule that keeps the no-observer path free of per-uop struct
// traffic.
type Pool struct {
	// Instruction identity, written once at fetch. isa.Instruction is
	// pointer-free, so this slice costs the collector nothing.
	Ins []isa.Instruction

	TID   []int32
	GSeq  []uint64 // global fetch order, for age-based selection
	Flags []uint32

	Meta []Meta
	Res  []ResLog
}

// NewPool builds a pool with room reserved for capacity slots (it still
// grows on demand past that).
func NewPool(capacity int) *Pool {
	return &Pool{
		Ins:   make([]isa.Instruction, 0, capacity),
		TID:   make([]int32, 0, capacity),
		GSeq:  make([]uint64, 0, capacity),
		Flags: make([]uint32, 0, capacity),
		Meta:  make([]Meta, 0, capacity),
		Res:   make([]ResLog, 0, capacity),
	}
}

// Len returns the number of allocated slots.
func (p *Pool) Len() int { return len(p.GSeq) }

// Alloc returns a fresh slot. Its fields are unspecified until Reset.
func (p *Pool) Alloc() UID {
	id := UID(len(p.GSeq))
	p.Ins = append(p.Ins, isa.Instruction{})
	p.TID = append(p.TID, 0)
	p.GSeq = append(p.GSeq, 0)
	p.Flags = append(p.Flags, 0)
	p.Meta = append(p.Meta, Meta{PhysSrc1: -1, PhysSrc2: -1, PhysDest: -1, OldPhysDest: -1, IQIdx: -1, LSQIdx: -1})
	p.Res = append(p.Res, ResLog{})
	return id
}

// Reset gives slot id a new identity: instruction in, owning thread tid,
// global sequence gseq, fetched at cycle now with the given wrong-path
// mode and front-end-ready cycle. Every other field returns to its zero
// state, exactly like the classic full-struct assignment at fetch.
func (p *Pool) Reset(id UID, in *isa.Instruction, tid int32, gseq, now uint64, wrongPath bool, frontReady uint64) {
	p.Ins[id] = *in
	p.ResetState(id, tid, gseq, now, wrongPath, frontReady)
}

// ResetState is Reset without the instruction write: the fetch hot path
// materializes the instruction directly into Ins[id] (trace NextInto) and
// then re-initializes the remaining fields here, avoiding a second struct
// copy per fetched instruction.
func (p *Pool) ResetState(id UID, tid int32, gseq, now uint64, wrongPath bool, frontReady uint64) {
	p.TID[id] = tid
	p.GSeq[id] = gseq
	if wrongPath {
		p.Flags[id] = FWrongPath
	} else {
		p.Flags[id] = 0
	}
	p.Meta[id] = Meta{
		PhysSrc1: -1, PhysSrc2: -1, PhysDest: -1, OldPhysDest: -1,
		IQIdx: -1, LSQIdx: -1,
		FetchedAt: now, FrontReady: frontReady,
	}
	p.Res[id] = ResLog{}
}

// Has reports whether slot id carries flag f.
func (p *Pool) Has(id UID, f uint32) bool { return p.Flags[id]&f != 0 }

// Set sets flag f on slot id.
func (p *Pool) Set(id UID, f uint32) { p.Flags[id] |= f }

// Clear clears flag f on slot id.
func (p *Pool) Clear(id UID, f uint32) { p.Flags[id] &^= f }

// ACE reports whether slot id's state was Architecturally required for
// Correct Execution — the SoA equivalent of Uop.ACE.
func (p *Pool) ACE(id UID, squashed bool) bool {
	return !squashed && p.Flags[id]&FWrongPath == 0 &&
		p.Ins[id].Class != isa.NOP && !p.Ins[id].Dead
}

// Classify adds slot id's accumulated residencies to the tracker with the
// given fate, in the exact structure order of Uop.Classify. It must be
// called exactly once per uop, at commit or squash time.
func (p *Pool) Classify(trk *avf.Tracker, bits Bits, id UID, squashed bool) {
	ace := p.ACE(id, squashed)
	tid := int(p.TID[id])
	r := &p.Res[id]
	trk.AddInterval(avf.IQ, tid, bits.IQEntry, r.EnterIQ, r.EnterIQ+r.IQCycles, ace)
	trk.AddInterval(avf.ROB, tid, bits.ROBEntry, r.EnterROB, r.EnterROB+r.ROBCycles, ace)
	trk.AddInterval(avf.LSQTag, tid, bits.LSQTagEntry, r.EnterLSQ, r.EnterLSQ+r.LSQTagCycles, ace)
	trk.AddInterval(avf.LSQData, tid, bits.LSQDataEntry, r.DataAt, r.DataAt+r.LSQDataCycles, ace)
	trk.AddInterval(avf.FU, tid, bits.FUUnit, r.IssuedAt, r.IssuedAt+r.FUCycles, ace)
}

// ClassifyBatch is the batched form of Classify: it accumulates slot id's
// residencies into the tracker's pending occupancy batch (Tracker.AddSpan)
// instead of emitting positioned intervals. The totals are identical —
// bit-cycle additions commute — but the no-sink hot path skips the
// per-interval sink dispatch entirely. Callers must use Classify whenever
// Tracker.HasSink reports an attached interval consumer.
func (p *Pool) ClassifyBatch(trk *avf.Tracker, bits Bits, id UID, squashed bool) {
	ace := p.ACE(id, squashed)
	tid := int(p.TID[id])
	r := &p.Res[id]
	trk.AddSpan(avf.IQ, tid, bits.IQEntry, r.EnterIQ, r.EnterIQ+r.IQCycles, ace)
	trk.AddSpan(avf.ROB, tid, bits.ROBEntry, r.EnterROB, r.EnterROB+r.ROBCycles, ace)
	trk.AddSpan(avf.LSQTag, tid, bits.LSQTagEntry, r.EnterLSQ, r.EnterLSQ+r.LSQTagCycles, ace)
	trk.AddSpan(avf.LSQData, tid, bits.LSQDataEntry, r.DataAt, r.DataAt+r.LSQDataCycles, ace)
	trk.AddSpan(avf.FU, tid, bits.FUUnit, r.IssuedAt, r.IssuedAt+r.FUCycles, ace)
}

// Materialize copies slot id into the observer-facing Uop view. The
// flight recorder, propagation tracer, and CPI-stack observer all consume
// the classic struct; the core fills one scratch Uop per Record call, and
// only while such an observer is attached.
func (p *Pool) Materialize(id UID, u *Uop) {
	fl := p.Flags[id]
	m := &p.Meta[id]
	r := &p.Res[id]
	*u = Uop{
		Instruction:   p.Ins[id],
		TID:           int(p.TID[id]),
		GSeq:          p.GSeq[id],
		WrongPath:     fl&FWrongPath != 0,
		PredTaken:     fl&FPredTaken != 0,
		PredTarget:    m.PredTarget,
		Mispred:       fl&FMispred != 0,
		FetchedAt:     m.FetchedAt,
		PhysSrc1:      int(m.PhysSrc1),
		PhysSrc2:      int(m.PhysSrc2),
		PhysDest:      int(m.PhysDest),
		OldPhysDest:   int(m.OldPhysDest),
		InIQ:          fl&FInIQ != 0,
		IQIdx:         int(m.IQIdx),
		InReady:       fl&FInReady != 0,
		Issued:        fl&FIssued != 0,
		Executed:      fl&FExecuted != 0,
		FrontReady:    m.FrontReady,
		ReadyAt:       m.ReadyAt,
		LSQIdx:        int(m.LSQIdx),
		FlushLoad:     fl&FFlushLoad != 0,
		Squashed:      fl&FSquashed != 0,
		WaitCount:     int(m.WaitCount),
		Src1Wait:      fl&FSrc1Wait != 0,
		Src2Wait:      fl&FSrc2Wait != 0,
		CountedL1:     fl&FCountedL1 != 0,
		CountedL2:     fl&FCountedL2 != 0,
		PredL1:        fl&FPredL1 != 0,
		PredL2:        fl&FPredL2 != 0,
		DL1Kind:       int(m.DL1Kind),
		Forwarded:     fl&FForwarded != 0,
		EnterIQ:       r.EnterIQ,
		IQCycles:      r.IQCycles,
		EnterROB:      r.EnterROB,
		ROBCycles:     r.ROBCycles,
		EnterLSQ:      r.EnterLSQ,
		LSQTagCycles:  r.LSQTagCycles,
		DataAt:        r.DataAt,
		LSQDataCycles: r.LSQDataCycles,
		IssuedAt:      r.IssuedAt,
		FUCycles:      r.FUCycles,
	}
}
