package pipeline

import "smtavf/internal/isa"

// uidRing is a fixed-capacity FIFO of pool ids in age order, used by the
// LSQ's disambiguation index. Entries enter at the back (dispatch) and
// leave from either end (commit from the front, squash from the back).
type uidRing struct {
	buf  []UID
	head int
	n    int
}

func (r *uidRing) front() UID { return r.buf[r.head] }
func (r *uidRing) back() UID  { return r.buf[(r.head+r.n-1)%len(r.buf)] }
func (r *uidRing) at(i int) UID {
	return r.buf[(r.head+i)%len(r.buf)]
}

func (r *uidRing) pushBack(u UID) {
	r.buf[(r.head+r.n)%len(r.buf)] = u
	r.n++
}

func (r *uidRing) popFront() {
	r.head = (r.head + 1) % len(r.buf)
	r.n--
}

func (r *uidRing) popBack() {
	r.n--
}

// LSQ is one thread's load/store queue (paper Table 1: 48 entries per
// thread): memory uops in program order. Its tag array (addresses) and
// data array (store data and returned load data) are AVF tracked
// separately, matching the paper's LSQ_tag and LSQ_data series.
type LSQ struct {
	pool *Pool
	buf  []UID
	head int
	n    int

	// Disambiguation index (docs/performance.md): stores resident in the
	// queue in age order, and the subset not yet known executed. The wait
	// test is O(1) — the front of unexec, after lazily dropping executed
	// stores, is the oldest store whose address/data is still unknown —
	// and the forward scan walks only the stores older than the load
	// instead of every entry.
	stores uidRing
	unexec uidRing

	// sleepers holds loads parked by the core because ForwardCheck said
	// wait. Entries may be stale (squashed, recycled slots) — the core
	// validates flags before re-waking, so staleness only costs a spurious
	// recheck, never a wrong issue.
	sleepers []UID
}

// NewLSQ builds a load/store queue over pool with the given capacity.
func NewLSQ(pool *Pool, capacity int) *LSQ {
	return &LSQ{
		pool:   pool,
		buf:    make([]UID, capacity),
		stores: uidRing{buf: make([]UID, capacity)},
		unexec: uidRing{buf: make([]UID, capacity)},
	}
}

// Len returns the number of occupied entries.
func (q *LSQ) Len() int { return q.n }

// Capacity returns the entry count.
func (q *LSQ) Capacity() int { return len(q.buf) }

// Full reports whether no entries remain.
func (q *LSQ) Full() bool { return q.n == len(q.buf) }

// Push appends the memory uop u at the tail at cycle now.
func (q *LSQ) Push(u UID, now uint64) {
	if q.Full() {
		panic("pipeline: LSQ push when full")
	}
	p := q.pool
	p.Res[u].EnterLSQ = now
	idx := (q.head + q.n) % len(q.buf)
	p.Meta[u].LSQIdx = int32(idx)
	q.buf[idx] = u
	q.n++
	if p.Ins[u].Class == isa.Store {
		q.stores.pushBack(u)
		q.unexec.pushBack(u)
	}
}

// PopHead removes the oldest entry, which must be u, closing its tag and
// data residencies at cycle now.
func (q *LSQ) PopHead(u UID, now uint64) {
	if q.n == 0 || q.buf[q.head] != u {
		panic("pipeline: LSQ pop out of order")
	}
	q.closeEntry(u, now)
	q.head = (q.head + 1) % len(q.buf)
	q.n--
	if q.pool.Ins[u].Class == isa.Store {
		q.stores.popFront()
		// The oldest entry is the oldest store, so if it still sits on the
		// unexecuted index it can only be at the front.
		if q.unexec.n > 0 && q.unexec.front() == u {
			q.unexec.popFront()
		}
	}
}

// PopTail removes the youngest entry (squash rollback), closing residency.
func (q *LSQ) PopTail(now uint64) UID {
	if q.n == 0 {
		panic("pipeline: LSQ tail pop when empty")
	}
	u := q.buf[(q.head+q.n-1)%len(q.buf)]
	q.closeEntry(u, now)
	q.n--
	if q.pool.Ins[u].Class == isa.Store {
		q.stores.popBack()
		if q.unexec.n > 0 && q.unexec.back() == u {
			q.unexec.popBack()
		}
	}
	return u
}

func (q *LSQ) closeEntry(u UID, now uint64) {
	p := q.pool
	p.Res[u].LSQTagCycles += now - p.Res[u].EnterLSQ
	if d := p.Res[u].DataAt; d > 0 && now > d {
		p.Res[u].LSQDataCycles += now - d
	}
}

// AddSleeper parks load u until a store of this thread executes.
func (q *LSQ) AddSleeper(u UID) { q.sleepers = append(q.sleepers, u) }

// Sleepers returns the parked loads; the caller wakes the valid ones and
// must follow with ClearSleepers.
func (q *LSQ) Sleepers() []UID { return q.sleepers }

// ClearSleepers empties the parked-load list.
func (q *LSQ) ClearSleepers() { q.sleepers = q.sleepers[:0] }

// Tail returns the youngest entry, or NoUID when empty.
func (q *LSQ) Tail() UID {
	if q.n == 0 {
		return NoUID
	}
	return q.buf[(q.head+q.n-1)%len(q.buf)]
}

// ForwardCheck inspects the stores older than the load ld. It returns:
//
//   - forward=true when an older store to the same address has its data
//     ready — the load is satisfied in the queue;
//   - wait=true when some older store's address or data is still unknown,
//     so the load cannot safely access the cache yet (conservative memory
//     disambiguation, which needs no misspeculation recovery).
func (q *LSQ) ForwardCheck(ld UID) (forward, wait bool) {
	p := q.pool
	// Drop executed stores from the front of the unexecuted index
	// (amortized O(1): each store is popped once). The surviving front is
	// the oldest store whose address/data is still unknown.
	for q.unexec.n > 0 && p.Flags[q.unexec.front()]&FExecuted != 0 {
		q.unexec.popFront()
	}
	gseq := p.GSeq[ld]
	if q.unexec.n > 0 && p.GSeq[q.unexec.front()] < gseq {
		return false, true
	}
	// Every store older than ld has executed: scan them for an address
	// match. Any match forwards — the original full scan kept the
	// youngest, but the result is a plain bool either way.
	addr := p.Ins[ld].Addr
	for i := 0; i < q.stores.n; i++ {
		s := q.stores.at(i)
		if p.GSeq[s] >= gseq {
			break
		}
		if p.Ins[s].Addr == addr {
			return true, false
		}
	}
	return false, false
}
