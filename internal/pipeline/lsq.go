package pipeline

import "smtavf/internal/isa"

// LSQ is one thread's load/store queue (paper Table 1: 48 entries per
// thread): memory uops in program order. Its tag array (addresses) and
// data array (store data and returned load data) are AVF tracked
// separately, matching the paper's LSQ_tag and LSQ_data series.
type LSQ struct {
	buf  []*Uop
	head int
	n    int
}

// NewLSQ builds a load/store queue with the given capacity.
func NewLSQ(capacity int) *LSQ {
	return &LSQ{buf: make([]*Uop, capacity)}
}

// Len returns the number of occupied entries.
func (q *LSQ) Len() int { return q.n }

// Capacity returns the entry count.
func (q *LSQ) Capacity() int { return len(q.buf) }

// Full reports whether no entries remain.
func (q *LSQ) Full() bool { return q.n == len(q.buf) }

// Push appends the memory uop u at the tail at cycle now.
func (q *LSQ) Push(u *Uop, now uint64) {
	if q.Full() {
		panic("pipeline: LSQ push when full")
	}
	u.EnterLSQ = now
	u.LSQIdx = (q.head + q.n) % len(q.buf)
	q.buf[u.LSQIdx] = u
	q.n++
}

// PopHead removes the oldest entry, which must be u, closing its tag and
// data residencies at cycle now.
func (q *LSQ) PopHead(u *Uop, now uint64) {
	if q.n == 0 || q.buf[q.head] != u {
		panic("pipeline: LSQ pop out of order")
	}
	q.closeEntry(u, now)
	q.buf[q.head] = nil
	q.head = (q.head + 1) % len(q.buf)
	q.n--
}

// PopTail removes the youngest entry (squash rollback), closing residency.
func (q *LSQ) PopTail(now uint64) *Uop {
	if q.n == 0 {
		panic("pipeline: LSQ tail pop when empty")
	}
	i := (q.head + q.n - 1) % len(q.buf)
	u := q.buf[i]
	q.closeEntry(u, now)
	q.buf[i] = nil
	q.n--
	return u
}

func (q *LSQ) closeEntry(u *Uop, now uint64) {
	u.LSQTagCycles += now - u.EnterLSQ
	if u.DataAt > 0 && now > u.DataAt {
		u.LSQDataCycles += now - u.DataAt
	}
}

// Tail returns the youngest entry, or nil when empty.
func (q *LSQ) Tail() *Uop {
	if q.n == 0 {
		return nil
	}
	return q.buf[(q.head+q.n-1)%len(q.buf)]
}

// ForwardCheck inspects the stores older than the load ld. It returns:
//
//   - forward=true when an older store to the same address has its data
//     ready — the load is satisfied in the queue;
//   - wait=true when some older store's address or data is still unknown,
//     so the load cannot safely access the cache yet (conservative memory
//     disambiguation, which needs no misspeculation recovery).
func (q *LSQ) ForwardCheck(ld *Uop) (forward, wait bool) {
	for i := 0; i < q.n; i++ {
		u := q.buf[(q.head+i)%len(q.buf)]
		if u == ld {
			break
		}
		if u.Class != isa.Store {
			continue
		}
		if !u.Executed {
			// Address/data not yet computed: possible conflict.
			return false, true
		}
		if u.Addr == ld.Addr {
			forward = true // youngest prior match wins; keep scanning
		}
	}
	return forward, false
}
