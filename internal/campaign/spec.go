// Package campaign defines the one versioned, JSON-(de)serializable
// campaign specification every smtavf driver consumes — smtsim, avfsweep,
// avfreport, the experiments runner, and the cmd/avfd job service all run
// the same Spec, so a campaign submitted over HTTP is byte-for-byte the
// campaign a CLI would run.
//
// A Spec names a workload source (a Table 2 mix, explicit benchmarks, or
// recorded trace files), the machine (fetch policy, seed, an optional full
// core.Config override), the execution shape (instruction budget, warmup,
// shards), and at most one experiment kind beyond the plain run:
// fault-injection cross-validation, a fault-propagation atlas, or the
// CPI-stack explainability study. The per-kind experiments.*Spec types it
// replaces remain as deprecated adapters; docs/api.md maps their fields
// onto Spec.
//
// The package also carries the campaign job service behind cmd/avfd: a
// Matrix fans one base Spec out into points, a Service executes points on
// a bounded worker pool with per-point results persisted for resume, and
// NewMux exposes the HTTP/JSON API. See docs/campaign-service.md.
package campaign

import (
	"encoding/json"
	"fmt"
	"os"

	"smtavf/internal/avf"
	"smtavf/internal/core"
	"smtavf/internal/inject"
	"smtavf/internal/propagation"
	"smtavf/internal/trace"
	"smtavf/internal/workload"
)

// SpecVersion identifies the Spec JSON schema; bump when renaming or
// removing fields.
const SpecVersion = 1

// Kind classifies what a Spec runs.
type Kind string

// Campaign kinds. A Spec with none of the experiment sections is a plain
// KindRun: one simulation, optionally with an attached strike campaign.
const (
	KindRun         Kind = "run"
	KindCrossVal    Kind = "crossval"
	KindPropagation Kind = "propagation"
	KindExplain     Kind = "explain"
)

// Spec is one campaign point: everything needed to reproduce a run, in
// one JSON document.
type Spec struct {
	// V is the schema version (SpecVersion; 0 is normalized to it).
	V int `json:"v"`
	// Name labels the point in service results and logs (optional; the
	// Matrix expansion fills it for fanned-out points).
	Name string `json:"name,omitempty"`

	// Exactly one workload source: a Table 2 mix name, explicit
	// benchmark names, or trace files recorded by cmd/tracegen.
	Mix        string   `json:"mix,omitempty"`
	Benchmarks []string `json:"benchmarks,omitempty"`
	TraceFiles []string `json:"trace_files,omitempty"`

	// Policy is the fetch policy name (default ICOUNT).
	Policy string `json:"policy,omitempty"`
	// Seed seeds the simulation (0: the runner's default, then 1).
	Seed uint64 `json:"seed,omitempty"`
	// Instructions is the total committed-instruction budget (0: the
	// runner's context-scaled budget).
	Instructions uint64 `json:"instructions,omitempty"`
	// Warmup is the instructions committed before measurement; 0 with
	// NoWarmup false inherits the runner's default, NoWarmup true forces
	// a cold start (the distinction keeps 0 round-trippable).
	Warmup   uint64 `json:"warmup,omitempty"`
	NoWarmup bool   `json:"no_warmup,omitempty"`
	// PhaseInterval samples per-interval IPC/AVF every N cycles (0: off).
	PhaseInterval uint64 `json:"phase_interval,omitempty"`

	// Shards splits the run into deterministic per-thread intervals
	// simulated in parallel (0 or 1: monolithic); incompatible with the
	// experiment kinds, which sample the cycle timeline.
	Shards            int    `json:"shards,omitempty"`
	ShardWorkers      int    `json:"shard_workers,omitempty"`
	ShardWarmupWindow uint64 `json:"shard_warmup_window,omitempty"`

	// Machine overrides the default Table 1 configuration wholesale
	// (Threads is still forced from the workload, and Policy/Seed/Warmup
	// from the fields above — the workload decides the context count).
	Machine *core.Config `json:"machine,omitempty"`
	// Protection maps structure names (avf.Struct.String) to "none",
	// "parity", or "ecc" for strike-outcome classification.
	Protection map[string]string `json:"protection,omitempty"`

	// Inject attaches a statistical fault-injection campaign to a run
	// (and parameterizes the crossval/propagation kinds' campaigns).
	Inject *InjectSpec `json:"inject,omitempty"`
	// At most one experiment kind:
	CrossVal    *CrossValSpec    `json:"crossval,omitempty"`
	Propagation *PropagationSpec `json:"propagation,omitempty"`
	Explain     *ExplainSpec     `json:"explain,omitempty"`
}

// InjectSpec parameterizes the strike campaign of a run or experiment.
type InjectSpec struct {
	// Every is the sample-grid pitch in cycles (default 1: exact).
	Every uint64 `json:"every,omitempty"`
	// Seed seeds the campaign (0: the simulation seed). Ignored by the
	// crossval kind, whose fanout seeds both per seed.
	Seed uint64 `json:"seed,omitempty"`
	// Stop is the sequential stopping rule (zero value: defaults).
	Stop inject.Stop `json:"stop,omitempty"`
}

// CrossValSpec selects the ACE-vs-injection cross-validation kind: one
// simulation plus strike campaign per seed, pooled into one report.
type CrossValSpec struct {
	// Seeds fan out the campaign (each also seeds its simulation);
	// empty defaults to {1}.
	Seeds []uint64 `json:"seeds,omitempty"`
}

// PropagationSpec selects the fault-propagation atlas kind.
type PropagationSpec struct {
	// Strikes sampled into each structure for taint tracking
	// (default 256).
	Strikes int `json:"strikes,omitempty"`
	// Options tunes the tracer's capture and expansion bounds.
	Options propagation.Options `json:"options,omitempty"`
}

// ExplainSpec selects the CPI-stack explainability kind: the workload
// runs once per policy with the occupancy-by-fate observer attached.
type ExplainSpec struct {
	// Policies compared (default ICOUNT/STALL/FLUSH).
	Policies []string `json:"policies,omitempty"`
	// Window is the observer's accounting window in cycles (default
	// cpistack.DefaultWindowCycles).
	Window uint64 `json:"window,omitempty"`
}

// Kind returns what the spec runs.
func (s Spec) Kind() Kind {
	switch {
	case s.CrossVal != nil:
		return KindCrossVal
	case s.Propagation != nil:
		return KindPropagation
	case s.Explain != nil:
		return KindExplain
	default:
		return KindRun
	}
}

// PolicyName returns the fetch policy, defaulted.
func (s Spec) PolicyName() string {
	if s.Policy == "" {
		return "ICOUNT"
	}
	return s.Policy
}

// ResolveBenchmarks resolves the benchmark names of a mix- or
// benchmark-sourced spec; trace-file specs have none.
func (s Spec) ResolveBenchmarks() ([]string, error) {
	if s.Mix != "" {
		for _, m := range workload.Mixes() {
			if m.Name() == s.Mix {
				return m.Benchmarks, nil
			}
		}
		return nil, fmt.Errorf("campaign: unknown mix %q", s.Mix)
	}
	if len(s.Benchmarks) > 0 {
		return s.Benchmarks, nil
	}
	return nil, fmt.Errorf("campaign: spec needs a mix, benchmarks, or trace_files")
}

// WorkloadIDs returns the identifiers a run manifest carries: benchmark
// names, or trace paths for a replay spec.
func (s Spec) WorkloadIDs() []string {
	if len(s.TraceFiles) > 0 {
		return s.TraceFiles
	}
	names, _ := s.ResolveBenchmarks()
	return names
}

// WorkloadName is the label reports carry: the mix name, or the
// "+"-joined benchmark names / trace paths.
func (s Spec) WorkloadName() string {
	if s.Mix != "" {
		return s.Mix
	}
	name := ""
	for i, b := range s.WorkloadIDs() {
		if i > 0 {
			name += "+"
		}
		name += b
	}
	return name
}

// Threads is the hardware context count the workload implies.
func (s Spec) Threads() int {
	if len(s.TraceFiles) > 0 {
		return len(s.TraceFiles)
	}
	names, _ := s.ResolveBenchmarks()
	return len(names)
}

// Validate checks the structural rules: a supported version, exactly one
// workload source, at most one experiment kind, experiment kinds
// monolithic and benchmark-sourced, and a parseable protection map.
func (s Spec) Validate() error {
	if s.V != 0 && s.V != SpecVersion {
		return fmt.Errorf("campaign: spec schema v%d is not supported (want v%d)", s.V, SpecVersion)
	}
	sources := 0
	if s.Mix != "" {
		sources++
	}
	if len(s.Benchmarks) > 0 {
		sources++
	}
	if len(s.TraceFiles) > 0 {
		sources++
	}
	if sources == 0 {
		return fmt.Errorf("campaign: spec needs a mix, benchmarks, or trace_files")
	}
	if sources > 1 {
		return fmt.Errorf("campaign: mix, benchmarks, and trace_files are mutually exclusive; give exactly one")
	}
	kinds := 0
	for _, on := range []bool{s.CrossVal != nil, s.Propagation != nil, s.Explain != nil} {
		if on {
			kinds++
		}
	}
	if kinds > 1 {
		return fmt.Errorf("campaign: crossval, propagation, and explain are mutually exclusive; give at most one")
	}
	if s.Shards < 0 {
		return fmt.Errorf("campaign: shards must be non-negative, got %d", s.Shards)
	}
	if s.ShardWorkers < 0 {
		return fmt.Errorf("campaign: shard_workers must be non-negative, got %d", s.ShardWorkers)
	}
	if s.Shards > 1 {
		if s.Kind() != KindRun {
			return fmt.Errorf("campaign: the %s kind samples the cycle timeline and needs a monolithic run (shards <= 1)", s.Kind())
		}
		if s.Inject != nil {
			return fmt.Errorf("campaign: inject samples the cycle timeline and needs a monolithic run (shards <= 1)")
		}
		if s.ShardWarmupWindow != 0 && s.ShardWarmupWindow < 4096 {
			return fmt.Errorf("campaign: shard_warmup_window %d below the documented floor of 4096", s.ShardWarmupWindow)
		}
	}
	if s.Kind() != KindRun && len(s.TraceFiles) > 0 {
		return fmt.Errorf("campaign: the %s kind needs benchmark profiles; trace_files only run the plain run kind", s.Kind())
	}
	if s.Propagation != nil && s.Propagation.Strikes < 0 {
		return fmt.Errorf("campaign: propagation strikes must be non-negative, got %d", s.Propagation.Strikes)
	}
	if _, err := ParseProtection(s.Protection); err != nil {
		return err
	}
	return nil
}

// ParseProtection maps structure names onto core.ProtectionModes; nil and
// empty maps mean all silent.
func ParseProtection(m map[string]string) (core.ProtectionModes, error) {
	var p core.ProtectionModes
	for name, mode := range m {
		s, err := avf.ParseStruct(name)
		if err != nil {
			return p, fmt.Errorf("campaign: protection: %w", err)
		}
		switch mode {
		case "none":
			p[s] = core.ProtectNone
		case "parity":
			p[s] = core.ProtectParity
		case "ecc":
			p[s] = core.ProtectECC
		default:
			return p, fmt.Errorf("campaign: protection %s=%q (want none, parity, or ecc)", name, mode)
		}
	}
	return p, nil
}

// ProtectionMap inverts ParseProtection, omitting unprotected structures;
// an all-silent assignment maps to nil, so the spec JSON stays minimal.
func ProtectionMap(p core.ProtectionModes) map[string]string {
	var m map[string]string
	for s, mode := range p {
		if mode == core.ProtectNone {
			continue
		}
		if m == nil {
			m = make(map[string]string)
		}
		m[avf.Struct(s).String()] = mode.String()
	}
	return m
}

// Defaults supplies the caller-level fallbacks a Spec resolves against —
// the experiments runner passes its Options-derived seed, warmup, budget
// rule, and Configure hook here, so a spec run through the runner behaves
// exactly like the per-kind methods it replaced.
type Defaults struct {
	// Seed backs Spec.Seed when 0 (then 1).
	Seed uint64
	// Warmup backs Spec.Warmup when 0 and NoWarmup is false.
	Warmup uint64
	// Budget backs Spec.Instructions when 0 (nil leaves the quota 0).
	Budget func(contexts int) uint64
	// Configure, if non-nil, may adjust the machine configuration last.
	Configure func(*core.Config)
}

// Resolved is a Spec joined with its Defaults: the concrete machine
// configuration, workload profiles, quotas, and campaign parameters an
// executor runs.
type Resolved struct {
	Spec       Spec
	Names      []string // benchmark names; nil for trace replay
	Title      string   // WorkloadName
	Threads    int
	Config     core.Config
	Profiles   []trace.Profile // nil for trace replay
	Protection core.ProtectionModes
	// Quota is the committed-instruction budget (0 when neither the spec
	// nor the defaults supplied one — executors must reject that).
	Quota uint64
	// Every/Stop/CampaignSeed parameterize the strike campaign.
	Every        uint64
	Stop         inject.Stop
	CampaignSeed uint64
	// Seeds is the crossval fanout (default {1}).
	Seeds []uint64
}

// Resolve validates the spec and joins it with the defaults.
func (s Spec) Resolve(d Defaults) (*Resolved, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	rv := &Resolved{Spec: s, Title: s.WorkloadName()}
	if len(s.TraceFiles) > 0 {
		rv.Threads = len(s.TraceFiles)
	} else {
		names, err := s.ResolveBenchmarks()
		if err != nil {
			return nil, err
		}
		rv.Names = names
		rv.Threads = len(names)
		rv.Profiles = make([]trace.Profile, 0, len(names))
		for _, b := range names {
			p, err := workload.Profile(b)
			if err != nil {
				return nil, err
			}
			rv.Profiles = append(rv.Profiles, p)
		}
	}

	cfg := core.DefaultConfig(rv.Threads)
	if s.Machine != nil {
		cfg = *s.Machine
		cfg.Threads = rv.Threads // the workload decides the context count
	}
	seed := s.Seed
	if seed == 0 {
		seed = d.Seed
	}
	if seed == 0 {
		seed = 1
	}
	cfg.Seed = seed
	switch {
	case s.NoWarmup:
		cfg.Warmup = 0
	case s.Warmup != 0:
		cfg.Warmup = s.Warmup
	default:
		cfg.Warmup = d.Warmup
	}
	cfg.PhaseInterval = s.PhaseInterval
	if err := cfg.SetPolicy(s.PolicyName()); err != nil {
		return nil, err
	}
	if d.Configure != nil {
		d.Configure(&cfg)
	}
	rv.Config = cfg

	rv.Protection, _ = ParseProtection(s.Protection) // Validate vetted it
	rv.Quota = s.Instructions
	if rv.Quota == 0 && d.Budget != nil {
		rv.Quota = d.Budget(rv.Threads)
	}

	rv.Every = 1
	if s.Inject != nil {
		if s.Inject.Every != 0 {
			rv.Every = s.Inject.Every
		}
		rv.Stop = s.Inject.Stop
		rv.CampaignSeed = s.Inject.Seed
	}
	if rv.CampaignSeed == 0 {
		rv.CampaignSeed = cfg.Seed
	}
	if s.CrossVal != nil {
		rv.Seeds = s.CrossVal.Seeds
	}
	if len(rv.Seeds) == 0 {
		rv.Seeds = []uint64{1}
	}
	return rv, nil
}

// SourceFactory builds the per-thread instruction sources: fresh
// deterministic generators for benchmark specs, clones of once-loaded
// recordings for trace-file specs. The factory is safe to invoke once per
// shard, concurrently.
func (rv *Resolved) SourceFactory() (func() ([]core.Source, error), error) {
	if rv.Profiles != nil {
		cfg, profiles := rv.Config, rv.Profiles
		return func() ([]core.Source, error) {
			return core.Sources(cfg, profiles)
		}, nil
	}
	masters := make([]*trace.Replay, 0, len(rv.Spec.TraceFiles))
	for _, p := range rv.Spec.TraceFiles {
		r, err := trace.LoadTraceFile(p)
		if err != nil {
			return nil, err
		}
		masters = append(masters, r)
	}
	return func() ([]core.Source, error) {
		srcs := make([]core.Source, 0, len(masters))
		for _, m := range masters {
			srcs = append(srcs, core.Source{Gen: m.Clone()})
		}
		return srcs, nil
	}, nil
}

// ReadSpecFile loads and validates a Spec from a JSON file.
func ReadSpecFile(path string) (Spec, error) {
	var s Spec
	data, err := os.ReadFile(path)
	if err != nil {
		return s, err
	}
	if err := json.Unmarshal(data, &s); err != nil {
		return s, fmt.Errorf("%s: %w", path, err)
	}
	if err := s.Validate(); err != nil {
		return s, fmt.Errorf("%s: %w", path, err)
	}
	s.V = SpecVersion
	return s, nil
}

// MarshalIndent renders the spec as stable, human-diffable JSON (the
// smtsim -dumpspec output and the stored service points).
func (s Spec) MarshalIndent() ([]byte, error) {
	s.V = SpecVersion
	return json.MarshalIndent(s, "", "  ")
}
