package campaign

import (
	"reflect"
	"testing"
)

func TestMatrixPoints(t *testing.T) {
	m := Matrix{
		Base:     Spec{Benchmarks: []string{"gcc", "mcf"}, Instructions: 1000},
		Policies: []string{"ICOUNT", "STALL"},
		Seeds:    []uint64{1, 2, 3},
	}
	points, err := m.Points()
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 6 {
		t.Fatalf("got %d points, want 6", len(points))
	}
	// Deterministic: a second expansion is identical.
	again, err := m.Points()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(points, again) {
		t.Fatal("expansion is not deterministic")
	}
	// Policies outermost-but-one, seeds innermost.
	if points[0].Policy != "ICOUNT" || points[0].Seed != 1 {
		t.Errorf("point 0 = %s/%d", points[0].Policy, points[0].Seed)
	}
	if points[2].Policy != "ICOUNT" || points[2].Seed != 3 {
		t.Errorf("point 2 = %s/%d", points[2].Policy, points[2].Seed)
	}
	if points[3].Policy != "STALL" || points[3].Seed != 1 {
		t.Errorf("point 3 = %s/%d", points[3].Policy, points[3].Seed)
	}
	// Every point inherits the base and is labelled by the varying axes.
	for i, p := range points {
		if p.Instructions != 1000 {
			t.Errorf("point %d lost the base budget", i)
		}
		want := p.PolicyName() + "/seed" + string(rune('0'+p.Seed))
		if p.Name != want {
			t.Errorf("point %d name = %q, want %q", i, p.Name, want)
		}
	}
}

func TestMatrixSinglePoint(t *testing.T) {
	points, err := Matrix{Base: Spec{Mix: "2ctx-CPU-A"}}.Points()
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 1 {
		t.Fatalf("got %d points, want 1", len(points))
	}
	if points[0].Name != "2ctx-CPU-A" {
		t.Errorf("singleton name = %q", points[0].Name)
	}
}

func TestMatrixMixAxisReplacesSource(t *testing.T) {
	m := Matrix{
		Base:  Spec{Benchmarks: []string{"gcc"}},
		Mixes: []string{"2ctx-CPU-A", "2ctx-MEM-A"},
	}
	points, err := m.Points()
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range points {
		if len(p.Benchmarks) != 0 {
			t.Errorf("mix axis left base benchmarks on %q", p.Name)
		}
	}
	if points[0].Mix != "2ctx-CPU-A" || points[1].Mix != "2ctx-MEM-A" {
		t.Errorf("mix order: %q, %q", points[0].Mix, points[1].Mix)
	}
}

func TestMatrixRejectsInvalidPoint(t *testing.T) {
	if _, err := (Matrix{Base: Spec{}}).Points(); err == nil {
		t.Fatal("sourceless base expanded without error")
	}
	if _, err := (Matrix{V: 2, Base: Spec{Mix: "2ctx-CPU-A"}}).Points(); err == nil {
		t.Fatal("unsupported version expanded without error")
	}
}

func TestMatrixPointCap(t *testing.T) {
	seeds := make([]uint64, MaxPoints+1)
	for i := range seeds {
		seeds[i] = uint64(i + 1)
	}
	if _, err := (Matrix{Base: Spec{Mix: "2ctx-CPU-A"}, Seeds: seeds}).Points(); err == nil {
		t.Fatal("oversized matrix expanded without error")
	}
}
