package campaign

import (
	"errors"
	"fmt"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"smtavf/internal/obs"
)

// fakeExecutor records executed specs and fabricates results; an optional
// gate blocks execution so tests can observe in-flight state.
type fakeExecutor struct {
	mu    sync.Mutex
	runs  []Spec
	gate  chan struct{} // when non-nil, each execution waits for a tick
	fail  map[uint64]bool
	delay time.Duration
}

func (f *fakeExecutor) exec(spec Spec) (*Result, error) {
	if f.gate != nil {
		<-f.gate
	}
	if f.delay > 0 {
		time.Sleep(f.delay)
	}
	f.mu.Lock()
	f.runs = append(f.runs, spec)
	f.mu.Unlock()
	if f.fail[spec.Seed] {
		return nil, errors.New("boom")
	}
	res := &Result{
		Kind:     spec.Kind(),
		Name:     spec.Name,
		Workload: spec.WorkloadName(),
		Policy:   spec.PolicyName(),
		Seed:     spec.Seed,
		Status:   "ok",
		Cycles:   1000 + spec.Seed,
		AVF:      map[string]float64{"IQ": 0.25},
	}
	return res, nil
}

func (f *fakeExecutor) count() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return len(f.runs)
}

func newTestService(t *testing.T, dir string, exec Executor, ledger *obs.Ledger) *Service {
	t.Helper()
	s, err := NewService(ServiceOptions{Dir: dir, Workers: 2, Executor: exec, Ledger: ledger})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(s.Close)
	return s
}

func waitDone(t *testing.T, s *Service, id string) {
	t.Helper()
	_, _, done, cancel, err := s.Subscribe(id)
	if err != nil {
		t.Fatal(err)
	}
	defer cancel()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("campaign did not finish")
	}
}

func TestServiceSubmitAndComplete(t *testing.T) {
	fe := &fakeExecutor{}
	s := newTestService(t, t.TempDir(), fe.exec, nil)
	id, points, err := s.Submit(Matrix{Base: Spec{Mix: "2ctx-CPU-A"}, Seeds: []uint64{1, 2, 3}}, time.Now())
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 3 {
		t.Fatalf("submitted %d points", len(points))
	}
	waitDone(t, s, id)
	st, err := s.Status(id)
	if err != nil {
		t.Fatal(err)
	}
	if st.State != "ok" || st.Done != 3 || len(st.Results) != 3 {
		t.Fatalf("status = %+v", st)
	}
	for i, res := range st.Results {
		if res.Point != i || res.Campaign != id || res.Status != "ok" {
			t.Errorf("result %d = %+v", i, res)
		}
	}
	if fe.count() != 3 {
		t.Errorf("executor ran %d times", fe.count())
	}
}

func TestServiceExecutorErrorRecorded(t *testing.T) {
	fe := &fakeExecutor{fail: map[uint64]bool{2: true}}
	s := newTestService(t, t.TempDir(), fe.exec, nil)
	id, _, err := s.Submit(Matrix{Base: Spec{Mix: "2ctx-CPU-A"}, Seeds: []uint64{1, 2}}, time.Now())
	if err != nil {
		t.Fatal(err)
	}
	waitDone(t, s, id)
	st, _ := s.Status(id)
	var failed *Result
	for _, res := range st.Results {
		if res.Status == "error" {
			failed = res
		}
	}
	if failed == nil || failed.Error != "boom" {
		t.Fatalf("error point not recorded: %+v", st.Results)
	}
	if st.State != "ok" {
		t.Fatalf("state = %s; an error point still completes the campaign", st.State)
	}
}

func TestServiceStreamExactlyOnce(t *testing.T) {
	fe := &fakeExecutor{gate: make(chan struct{})}
	s := newTestService(t, t.TempDir(), fe.exec, nil)
	id, _, err := s.Submit(Matrix{Base: Spec{Mix: "2ctx-CPU-A"}, Seeds: []uint64{1, 2, 3, 4}}, time.Now())
	if err != nil {
		t.Fatal(err)
	}
	fe.gate <- struct{}{} // let one point land before subscribing
	past, live, done, cancel, err := s.Subscribe(id)
	if err != nil {
		t.Fatal(err)
	}
	defer cancel()
	go func() {
		for i := 0; i < 3; i++ {
			fe.gate <- struct{}{}
		}
	}()
	seen := make(map[int]int)
	for _, res := range past {
		seen[res.Point]++
	}
	deadline := time.After(10 * time.Second)
	for len(seen) < 4 {
		select {
		case res := <-live:
			seen[res.Point]++
		case <-deadline:
			t.Fatalf("saw %d/4 points", len(seen))
		case <-done:
			for {
				select {
				case res := <-live:
					seen[res.Point]++
					continue
				default:
				}
				break
			}
			if len(seen) < 4 {
				t.Fatalf("done with %d/4 points", len(seen))
			}
		}
	}
	for p, n := range seen {
		if n != 1 {
			t.Errorf("point %d streamed %d times", p, n)
		}
	}
}

func TestServiceCancelSkipsQueued(t *testing.T) {
	fe := &fakeExecutor{gate: make(chan struct{}, 64)}
	// One worker so points run strictly in order.
	st, err := NewService(ServiceOptions{Dir: t.TempDir(), Workers: 1, Executor: fe.exec})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	id, _, err := st.Submit(Matrix{Base: Spec{Mix: "2ctx-CPU-A"}, Seeds: []uint64{1, 2, 3, 4}}, time.Now())
	if err != nil {
		t.Fatal(err)
	}
	fe.gate <- struct{}{}
	if err := st.Cancel(id); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 8; i++ {
		select {
		case fe.gate <- struct{}{}:
		default:
		}
	}
	waitDone(t, st, id)
	status, _ := st.Status(id)
	if status.State != "cancelled" {
		t.Fatalf("state = %s", status.State)
	}
	if status.Done >= status.Points {
		t.Fatalf("cancel did not skip queued points: %d/%d done", status.Done, status.Points)
	}
	if err := st.Cancel("no-such-campaign"); !errors.Is(err, ErrUnknownCampaign) {
		t.Fatalf("cancel of unknown campaign: %v", err)
	}
}

func TestServiceResume(t *testing.T) {
	dir := t.TempDir()
	ledgerPath := filepath.Join(dir, "runs.jsonl")
	ledger, err := obs.OpenLedger(ledgerPath)
	if err != nil {
		t.Fatal(err)
	}

	// First life: run half the campaign, then "crash" (Interrupt + Close).
	fe := &fakeExecutor{gate: make(chan struct{})}
	s1, err := NewService(ServiceOptions{Dir: dir, Workers: 1, Executor: fe.exec, Ledger: ledger})
	if err != nil {
		t.Fatal(err)
	}
	id, _, err := s1.Submit(Matrix{Base: Spec{Mix: "2ctx-CPU-A"}, Seeds: []uint64{1, 2, 3, 4}}, time.Now())
	if err != nil {
		t.Fatal(err)
	}
	fe.gate <- struct{}{}
	fe.gate <- struct{}{}
	// Wait until both results are durable before interrupting.
	waitFor(t, func() bool {
		st, err := s1.Status(id)
		return err == nil && st.Done >= 2
	})
	s1.Interrupt()
	if _, _, err := s1.Submit(Matrix{Base: Spec{Mix: "2ctx-CPU-A"}}, time.Now()); !errors.Is(err, ErrDraining) {
		t.Fatalf("submit while draining: %v", err)
	}
	close(fe.gate) // unblock any in-flight execution so Close returns
	s1.Close()

	// An in-flight point may have finished during the drain; whatever was
	// durable at shutdown must not re-run.
	durable, err := (&Store{dir: dir}).Load(id)
	if err != nil {
		t.Fatal(err)
	}
	doneAtRestart := len(durable.Results)
	if doneAtRestart < 2 {
		t.Fatalf("only %d durable results before restart", doneAtRestart)
	}

	// Second life: exactly the missing points run.
	fe2 := &fakeExecutor{}
	s2 := newTestService(t, dir, fe2.exec, ledger)
	waitDone(t, s2, id)
	st2, err := s2.Status(id)
	if err != nil {
		t.Fatal(err)
	}
	if st2.State != "ok" || st2.Done != 4 {
		t.Fatalf("resumed status = %+v", st2)
	}
	if !st2.Resumed {
		t.Fatal("status does not mark the campaign resumed")
	}
	if n := fe2.count(); n != 4-doneAtRestart {
		t.Fatalf("resume re-ran %d points, want %d", n, 4-doneAtRestart)
	}

	// Ledger: every point exactly once, campaign interrupted then ok.
	manifests, err := obs.ReadLedger(ledgerPath)
	if err != nil {
		t.Fatal(err)
	}
	pointSeen := make(map[string]int)
	var campaignStatuses []string
	for _, m := range manifests {
		switch m.Kind {
		case "campaign-point":
			pointSeen[m.Extra["point"]]++
		case "campaign":
			campaignStatuses = append(campaignStatuses, m.Status)
		}
	}
	if len(pointSeen) != 4 {
		t.Fatalf("ledger has %d distinct points, want 4", len(pointSeen))
	}
	for p, n := range pointSeen {
		if n != 1 {
			t.Errorf("point %s appears %d times in the ledger", p, n)
		}
	}
	wantStatuses := []string{obs.StatusInterrupted, obs.StatusOK}
	if fmt.Sprint(campaignStatuses) != fmt.Sprint(wantStatuses) {
		t.Fatalf("campaign manifests = %v, want %v", campaignStatuses, wantStatuses)
	}
}

func waitFor(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatal("condition never became true")
}
