package campaign

import (
	"os"
	"path/filepath"
	"testing"
	"time"
)

func testPoints(n int) []Spec {
	points := make([]Spec, n)
	for i := range points {
		points[i] = Spec{V: SpecVersion, Mix: "2ctx-CPU-A", Seed: uint64(i + 1)}
	}
	return points
}

func TestStoreRoundTrip(t *testing.T) {
	st, err := NewStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	id := NewID(time.Now())
	if err := st.Create(id, "trip", time.Now(), testPoints(3)); err != nil {
		t.Fatal(err)
	}
	if err := st.AppendResult(id, &Result{V: ResultVersion, Point: 1, Status: "ok"}); err != nil {
		t.Fatal(err)
	}
	lc, err := st.Load(id)
	if err != nil {
		t.Fatal(err)
	}
	if lc.Name != "trip" || len(lc.Points) != 3 {
		t.Fatalf("loaded %q with %d points", lc.Name, len(lc.Points))
	}
	if len(lc.Results) != 1 || lc.Results[1] == nil {
		t.Fatalf("results = %v", lc.Results)
	}
	if lc.Cancelled {
		t.Fatal("campaign is not cancelled")
	}
	ids, err := st.List()
	if err != nil {
		t.Fatal(err)
	}
	if len(ids) != 1 || ids[0] != id {
		t.Fatalf("list = %v", ids)
	}
}

// TestStoreTruncatedResult simulates a SIGKILL mid-append: the trailing
// partial line must be skipped, losing only that point.
func TestStoreTruncatedResult(t *testing.T) {
	dir := t.TempDir()
	st, err := NewStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	id := NewID(time.Now())
	if err := st.Create(id, "", time.Now(), testPoints(3)); err != nil {
		t.Fatal(err)
	}
	if err := st.AppendResult(id, &Result{V: ResultVersion, Point: 0, Status: "ok"}); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, id, "results.jsonl")
	f, err := os.OpenFile(path, os.O_APPEND|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString(`{"v":1,"point":2,"sta`); err != nil {
		t.Fatal(err)
	}
	f.Close()
	lc, err := st.Load(id)
	if err != nil {
		t.Fatal(err)
	}
	if len(lc.Results) != 1 || lc.Results[0] == nil {
		t.Fatalf("tolerant load kept %v, want only point 0", lc.Results)
	}
}

// TestStoreDuplicateResult: keep-first, so a point re-run after an
// untimely kill cannot double-count.
func TestStoreDuplicateResult(t *testing.T) {
	st, err := NewStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	id := NewID(time.Now())
	if err := st.Create(id, "", time.Now(), testPoints(2)); err != nil {
		t.Fatal(err)
	}
	first := &Result{V: ResultVersion, Point: 0, Status: "ok", Cycles: 111}
	second := &Result{V: ResultVersion, Point: 0, Status: "ok", Cycles: 222}
	if err := st.AppendResult(id, first); err != nil {
		t.Fatal(err)
	}
	if err := st.AppendResult(id, second); err != nil {
		t.Fatal(err)
	}
	lc, err := st.Load(id)
	if err != nil {
		t.Fatal(err)
	}
	if len(lc.Results) != 1 || lc.Results[0].Cycles != 111 {
		t.Fatalf("keep-first violated: %+v", lc.Results[0])
	}
}

func TestStoreCancelMarker(t *testing.T) {
	st, err := NewStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	id := NewID(time.Now())
	if err := st.Create(id, "", time.Now(), testPoints(1)); err != nil {
		t.Fatal(err)
	}
	if err := st.MarkCancelled(id); err != nil {
		t.Fatal(err)
	}
	lc, err := st.Load(id)
	if err != nil {
		t.Fatal(err)
	}
	if !lc.Cancelled {
		t.Fatal("cancel marker did not survive the round trip")
	}
}

func TestNewIDUnique(t *testing.T) {
	now := time.Now()
	seen := make(map[string]bool)
	for i := 0; i < 100; i++ {
		id := NewID(now)
		if seen[id] {
			t.Fatalf("duplicate ID %s", id)
		}
		seen[id] = true
	}
}
