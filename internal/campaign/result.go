package campaign

import (
	"fmt"

	"smtavf/internal/avf"
	"smtavf/internal/core"
	"smtavf/internal/crossval"
	"smtavf/internal/propagation"
)

// ResultVersion identifies the Result JSON schema.
const ResultVersion = 1

// Result is one executed campaign point, rendered for the wire and the
// per-campaign results.jsonl: the headline simulation numbers plus
// whatever the spec's kind produced. Executors fill the sections their
// kind owns and leave the rest nil.
type Result struct {
	V int `json:"v"`
	// Point is the index of this point within its campaign's expansion;
	// Campaign is the owning campaign ID. Both are zero outside the
	// service.
	Point    int    `json:"point"`
	Campaign string `json:"campaign,omitempty"`

	Kind     Kind   `json:"kind"`
	Name     string `json:"name,omitempty"`
	Title    string `json:"title,omitempty"` // report headline (workload, maybe policy)
	Workload string `json:"workload,omitempty"`
	Policy   string `json:"policy,omitempty"`
	Seed     uint64 `json:"seed,omitempty"`

	// Status is "ok" or "error"; Error carries the message.
	Status string `json:"status"`
	Error  string `json:"error,omitempty"`

	// Headline simulation numbers (the first — or only — run of the
	// point; zero for table-only kinds that ran several).
	Cycles       uint64  `json:"cycles,omitempty"`
	Instructions uint64  `json:"instructions,omitempty"`
	IPC          float64 `json:"ipc,omitempty"`
	ProcessorAVF float64 `json:"processor_avf,omitempty"`
	// AVF maps structure names onto whole-structure AVFs.
	AVF map[string]float64 `json:"avf,omitempty"`

	// Strikes counts injected faults (run-with-inject and crossval).
	Strikes uint64 `json:"strikes,omitempty"`
	// CrossVal is the pooled ACE-vs-injection agreement report;
	// CrossValSeeds keeps the per-seed reports behind it.
	CrossVal      *crossval.Report   `json:"crossval,omitempty"`
	CrossValSeeds []*crossval.Report `json:"crossval_seeds,omitempty"`

	// Propagation summarizes the fault-propagation atlas; the full Atlas
	// rides along in memory for local renderers (avfreport's chart
	// output) but is too large for the wire.
	Propagation *PropagationSummary `json:"propagation,omitempty"`
	Atlas       *propagation.Atlas  `json:"-"`

	// Tables carries the rendered figure family of table-producing kinds
	// (explain; also the propagation atlas tables).
	Tables []Table `json:"tables,omitempty"`
}

// Table is the wire form of an experiments table: a labelled matrix.
type Table struct {
	Title   string      `json:"title"`
	Note    string      `json:"note,omitempty"`
	Rows    []string    `json:"rows"`
	Cols    []string    `json:"cols"`
	Cells   [][]float64 `json:"cells"`
	Percent bool        `json:"percent,omitempty"`
}

// PropagationSummary is the wire-sized digest of a propagation.Atlas.
type PropagationSummary struct {
	Strikes   int            `json:"strikes"`
	Resolved  int            `json:"resolved"`
	Truncated int            `json:"truncated"`
	Terminals map[string]int `json:"terminals,omitempty"`
	// CrossEdges counts propagation steps that crossed a thread boundary.
	CrossEdges int `json:"cross_edges,omitempty"`
	MaxDepth   int `json:"max_depth,omitempty"`
}

// SummarizeAtlas digests an atlas for the wire.
func SummarizeAtlas(a *propagation.Atlas) *PropagationSummary {
	if a == nil {
		return nil
	}
	s := &PropagationSummary{
		Strikes:   a.Strikes,
		Resolved:  a.Resolved,
		Truncated: a.Truncated,
		MaxDepth:  a.MaxDepth,
	}
	if len(a.Terminals) > 0 {
		s.Terminals = make(map[string]int, len(a.Terminals))
		for k, v := range a.Terminals {
			s.Terminals[k] = v
		}
	}
	s.CrossEdges = int(a.CrossEdges())
	return s
}

// FillRun populates the headline numbers from a simulation result.
func (r *Result) FillRun(res *core.Results) {
	r.Cycles = res.Cycles
	r.Instructions = res.Total
	r.IPC = res.IPC()
	r.ProcessorAVF = res.ProcessorAVF()
	r.AVF = make(map[string]float64, avf.NumStructs)
	for _, s := range avf.Structs() {
		r.AVF[s.String()] = res.StructAVF(s)
	}
}

// MaxAVFDelta returns the structure with the largest absolute
// whole-structure AVF difference between two results — the metric the
// resume e2e test checks against shard.DefaultTolerance.
func MaxAVFDelta(a, b *Result) (string, float64) {
	name, max := "", 0.0
	for _, s := range avf.Structs() {
		d := a.AVF[s.String()] - b.AVF[s.String()]
		if d < 0 {
			d = -d
		}
		if d >= max {
			name, max = s.String(), d
		}
	}
	return name, max
}

// Err is a convenience constructor for a failed point.
func Err(spec Spec, err error) *Result {
	return &Result{
		V:        ResultVersion,
		Kind:     spec.Kind(),
		Name:     spec.Name,
		Workload: spec.WorkloadName(),
		Policy:   spec.PolicyName(),
		Status:   "error",
		Error:    fmt.Sprint(err),
	}
}
