package campaign

import (
	"fmt"
)

// MaxPoints bounds a single submission's expansion — a guard against a
// typo'd axis turning into a week of simulation.
const MaxPoints = 4096

// Matrix is the submission form of a campaign: one base Spec fanned out
// over optional axes. Empty axes contribute a single "inherit the base"
// element, so the expansion is the cross product of whatever is listed.
type Matrix struct {
	V int `json:"v"`
	// Name labels the campaign in the service.
	Name string `json:"name,omitempty"`
	// Base is the spec every point starts from.
	Base Spec `json:"base"`
	// Axes: each listed value overrides the corresponding Base field.
	Policies []string `json:"policies,omitempty"`
	Mixes    []string `json:"mixes,omitempty"`
	Seeds    []uint64 `json:"seeds,omitempty"`
}

// Points expands the matrix into its campaign points, deterministically:
// mixes outermost, then policies, then seeds — the iteration order a
// sweep table reads naturally. Every point is validated.
func (m Matrix) Points() ([]Spec, error) {
	if m.V != 0 && m.V != SpecVersion {
		return nil, fmt.Errorf("campaign: matrix schema v%d is not supported (want v%d)", m.V, SpecVersion)
	}
	mixes := m.Mixes
	if len(mixes) == 0 {
		mixes = []string{""}
	}
	policies := m.Policies
	if len(policies) == 0 {
		policies = []string{""}
	}
	seeds := m.Seeds
	if len(seeds) == 0 {
		seeds = []uint64{0}
	}
	n := len(mixes) * len(policies) * len(seeds)
	if n > MaxPoints {
		return nil, fmt.Errorf("campaign: matrix expands to %d points (max %d)", n, MaxPoints)
	}
	points := make([]Spec, 0, n)
	for _, mix := range mixes {
		for _, policy := range policies {
			for _, seed := range seeds {
				p := m.Base
				p.V = SpecVersion
				if mix != "" {
					p.Mix = mix
					p.Benchmarks = nil
					p.TraceFiles = nil
				}
				if policy != "" {
					p.Policy = policy
				}
				if seed != 0 {
					p.Seed = seed
				}
				p.Name = pointName(m.Base.Name, p, len(mixes) > 1, len(policies) > 1, len(seeds) > 1)
				if err := p.Validate(); err != nil {
					return nil, fmt.Errorf("point %d (%s): %w", len(points), p.Name, err)
				}
				points = append(points, p)
			}
		}
	}
	return points, nil
}

// pointName labels an expanded point with the axes that vary, so streams
// and status payloads read without cross-referencing indices.
func pointName(base string, p Spec, byMix, byPolicy, bySeed bool) string {
	name := base
	add := func(part string) {
		if name == "" {
			name = part
			return
		}
		name += "/" + part
	}
	if byMix {
		add(p.WorkloadName())
	}
	if byPolicy {
		add(p.PolicyName())
	}
	if bySeed {
		add(fmt.Sprintf("seed%d", p.Seed))
	}
	if name == "" {
		name = p.WorkloadName()
	}
	return name
}
