package campaign

import (
	"encoding/json"
	"errors"
	"net/http"
	"time"
)

// NewMux builds the campaign service's HTTP API (docs/campaign-service.md
// is the reference):
//
//	POST /v1/campaigns            submit a Matrix; 202 + {id, points}
//	GET  /v1/campaigns            list campaign summaries
//	GET  /v1/campaigns/{id}       status + per-point results
//	GET  /v1/campaigns/{id}/stream  results as JSONL as they land
//	POST /v1/campaigns/{id}/cancel  cancel queued points
//	GET  /healthz                 liveness (always 200 once serving)
//	GET  /readyz                  readiness (503 while draining)
func NewMux(s *Service) *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
	})
	mux.HandleFunc("GET /readyz", func(w http.ResponseWriter, r *http.Request) {
		if s.Draining() {
			writeError(w, http.StatusServiceUnavailable, errors.New("draining"))
			return
		}
		writeJSON(w, http.StatusOK, map[string]string{"status": "ready"})
	})
	mux.HandleFunc("POST /v1/campaigns", func(w http.ResponseWriter, r *http.Request) {
		var m Matrix
		dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 16<<20))
		dec.DisallowUnknownFields()
		if err := dec.Decode(&m); err != nil {
			writeError(w, http.StatusBadRequest, err)
			return
		}
		id, points, err := s.Submit(m, time.Now())
		switch {
		case errors.Is(err, ErrDraining):
			writeError(w, http.StatusServiceUnavailable, err)
			return
		case err != nil:
			writeError(w, http.StatusBadRequest, err)
			return
		}
		writeJSON(w, http.StatusAccepted, map[string]any{"id": id, "points": len(points)})
	})
	mux.HandleFunc("GET /v1/campaigns", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, map[string]any{"campaigns": s.List()})
	})
	mux.HandleFunc("GET /v1/campaigns/{id}", func(w http.ResponseWriter, r *http.Request) {
		st, err := s.Status(r.PathValue("id"))
		if err != nil {
			writeError(w, http.StatusNotFound, err)
			return
		}
		writeJSON(w, http.StatusOK, st)
	})
	mux.HandleFunc("POST /v1/campaigns/{id}/cancel", func(w http.ResponseWriter, r *http.Request) {
		id := r.PathValue("id")
		if err := s.Cancel(id); err != nil {
			code := http.StatusInternalServerError
			if errors.Is(err, ErrUnknownCampaign) {
				code = http.StatusNotFound
			}
			writeError(w, code, err)
			return
		}
		writeJSON(w, http.StatusOK, map[string]string{"id": id, "state": "cancelled"})
	})
	mux.HandleFunc("GET /v1/campaigns/{id}/stream", func(w http.ResponseWriter, r *http.Request) {
		streamCampaign(s, w, r)
	})
	return mux
}

// streamCampaign writes results as newline-delimited JSON: first the
// snapshot of points already done, then each new result as it lands,
// until the campaign reaches a terminal state or the client goes away.
// The Subscribe snapshot+registration is atomic, so every point appears
// exactly once.
func streamCampaign(s *Service, w http.ResponseWriter, r *http.Request) {
	past, live, done, cancel, err := s.Subscribe(r.PathValue("id"))
	if err != nil {
		writeError(w, http.StatusNotFound, err)
		return
	}
	defer cancel()
	flusher, _ := w.(http.Flusher)
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.Header().Set("Cache-Control", "no-store")
	w.WriteHeader(http.StatusOK)
	enc := json.NewEncoder(w)
	seen := make(map[int]bool, len(past))
	emit := func(res *Result) bool {
		if seen[res.Point] {
			return true
		}
		seen[res.Point] = true
		if err := enc.Encode(res); err != nil {
			return false
		}
		if flusher != nil {
			flusher.Flush()
		}
		return true
	}
	for _, res := range past {
		if !emit(res) {
			return
		}
	}
	for {
		select {
		case <-r.Context().Done():
			return
		case res := <-live:
			if !emit(res) {
				return
			}
		case <-done:
			// Drain results that raced the terminal transition, then stop.
			for {
				select {
				case res := <-live:
					if !emit(res) {
						return
					}
				default:
					return
				}
			}
		}
	}
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

func writeError(w http.ResponseWriter, code int, err error) {
	writeJSON(w, code, map[string]string{"error": err.Error()})
}
