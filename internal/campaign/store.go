package campaign

import (
	"bufio"
	"crypto/rand"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"time"

	"smtavf/internal/jsonlio"
)

// Store persists campaigns for the service: one directory per campaign
// holding the expanded points (campaign.json), the appended per-point
// results (results.jsonl), and a cancellation marker. The layout is the
// resume substrate — a restarted server reloads every campaign and
// re-enqueues exactly the points with no persisted result.
type Store struct {
	dir string
}

// storedCampaign is the on-disk campaign header. Points are stored
// pre-expanded so a resume re-runs exactly what was submitted, even if a
// later version changes Matrix expansion order.
type storedCampaign struct {
	V      int       `json:"v"`
	ID     string    `json:"id"`
	Name   string    `json:"name,omitempty"`
	Issued time.Time `json:"issued"`
	Points []Spec    `json:"points"`
}

// NewStore opens (creating if needed) a campaign store rooted at dir.
func NewStore(dir string) (*Store, error) {
	if dir == "" {
		return nil, errors.New("campaign: store needs a directory")
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	return &Store{dir: dir}, nil
}

// Dir returns the store root.
func (st *Store) Dir() string { return st.dir }

func (st *Store) campaignDir(id string) string { return filepath.Join(st.dir, id) }

// NewID mints a campaign ID: sortable timestamp plus a random suffix so
// concurrent submissions never collide.
func NewID(now time.Time) string {
	var b [4]byte
	if _, err := rand.Read(b[:]); err != nil {
		// Fall back to the nanosecond clock; IDs stay unique enough for
		// one store because the timestamp prefix differs.
		return now.UTC().Format("20060102T150405") + "-" + fmt.Sprintf("%08x", now.UnixNano()&0xffffffff)
	}
	return now.UTC().Format("20060102T150405") + "-" + hex.EncodeToString(b[:])
}

// Create persists a new campaign with its expanded points and returns
// its ID.
func (st *Store) Create(id, name string, now time.Time, points []Spec) error {
	dir := st.campaignDir(id)
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	sc := storedCampaign{V: SpecVersion, ID: id, Name: name, Issued: now.UTC(), Points: points}
	data, err := json.MarshalIndent(sc, "", "  ")
	if err != nil {
		return err
	}
	tmp := filepath.Join(dir, "campaign.json.tmp")
	if err := os.WriteFile(tmp, append(data, '\n'), 0o644); err != nil {
		return err
	}
	return os.Rename(tmp, filepath.Join(dir, "campaign.json"))
}

// AppendResult durably records one executed point.
func (st *Store) AppendResult(id string, res *Result) error {
	return jsonlio.AppendLine(filepath.Join(st.campaignDir(id), "results.jsonl"), res)
}

// MarkCancelled drops the cancellation marker; it survives restarts, so
// a cancelled campaign is not resumed.
func (st *Store) MarkCancelled(id string) error {
	return os.WriteFile(filepath.Join(st.campaignDir(id), "cancel"), []byte("cancelled\n"), 0o644)
}

// Cancelled reports whether the campaign carries a cancellation marker.
func (st *Store) Cancelled(id string) bool {
	_, err := os.Stat(filepath.Join(st.campaignDir(id), "cancel"))
	return err == nil
}

// LoadedCampaign is a campaign read back from the store.
type LoadedCampaign struct {
	ID        string
	Name      string
	Issued    time.Time
	Points    []Spec
	Results   map[int]*Result // by point index; completed points only
	Cancelled bool
}

// Load reads one campaign back, tolerantly: a results.jsonl whose final
// line was truncated by a kill mid-append loses only that line — the
// point simply re-runs on resume.
func (st *Store) Load(id string) (*LoadedCampaign, error) {
	dir := st.campaignDir(id)
	data, err := os.ReadFile(filepath.Join(dir, "campaign.json"))
	if err != nil {
		return nil, err
	}
	var sc storedCampaign
	if err := json.Unmarshal(data, &sc); err != nil {
		return nil, fmt.Errorf("campaign %s: %w", id, err)
	}
	if sc.V != 0 && sc.V != SpecVersion {
		return nil, fmt.Errorf("campaign %s: schema v%d is not supported (want v%d)", id, sc.V, SpecVersion)
	}
	lc := &LoadedCampaign{
		ID:        id,
		Name:      sc.Name,
		Issued:    sc.Issued,
		Points:    sc.Points,
		Results:   make(map[int]*Result),
		Cancelled: st.Cancelled(id),
	}
	f, err := os.Open(filepath.Join(dir, "results.jsonl"))
	if errors.Is(err, fs.ErrNotExist) {
		return lc, nil
	}
	if err != nil {
		return nil, err
	}
	defer f.Close()
	sc2 := bufio.NewScanner(f)
	sc2.Buffer(make([]byte, 0, 1<<20), 1<<26)
	for sc2.Scan() {
		line := sc2.Bytes()
		if len(line) == 0 {
			continue
		}
		var res Result
		if err := json.Unmarshal(line, &res); err != nil {
			continue // truncated or corrupt line: the point re-runs
		}
		if res.Point < 0 || res.Point >= len(lc.Points) {
			continue
		}
		if _, dup := lc.Results[res.Point]; dup {
			continue // keep-first: the first durable result wins
		}
		r := res
		lc.Results[res.Point] = &r
	}
	if err := sc2.Err(); err != nil {
		return nil, err
	}
	return lc, nil
}

// List returns every stored campaign ID, oldest first (IDs sort by their
// timestamp prefix).
func (st *Store) List() ([]string, error) {
	entries, err := os.ReadDir(st.dir)
	if err != nil {
		return nil, err
	}
	var ids []string
	for _, e := range entries {
		if !e.IsDir() {
			continue
		}
		if _, err := os.Stat(filepath.Join(st.dir, e.Name(), "campaign.json")); err == nil {
			ids = append(ids, e.Name())
		}
	}
	sort.Strings(ids)
	return ids, nil
}
