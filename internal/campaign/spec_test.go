package campaign

import (
	"encoding/json"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"smtavf/internal/avf"
	"smtavf/internal/core"
	"smtavf/internal/inject"
)

func TestSpecValidate(t *testing.T) {
	cases := []struct {
		name string
		spec Spec
		ok   bool
	}{
		{"mix", Spec{Mix: "2ctx-CPU-A"}, true},
		{"benchmarks", Spec{Benchmarks: []string{"gcc", "mcf"}}, true},
		{"no source", Spec{}, false},
		{"two sources", Spec{Mix: "2ctx-CPU-A", Benchmarks: []string{"gcc"}}, false},
		{"bad version", Spec{V: 99, Mix: "2ctx-CPU-A"}, false},
		{"two kinds", Spec{Mix: "2ctx-CPU-A", CrossVal: &CrossValSpec{}, Explain: &ExplainSpec{}}, false},
		{"sharded run", Spec{Mix: "2ctx-CPU-A", Shards: 4}, true},
		{"sharded inject", Spec{Mix: "2ctx-CPU-A", Shards: 4, Inject: &InjectSpec{}}, false},
		{"sharded crossval", Spec{Mix: "2ctx-CPU-A", Shards: 4, CrossVal: &CrossValSpec{}}, false},
		{"negative shards", Spec{Mix: "2ctx-CPU-A", Shards: -1}, false},
		{"trace explain", Spec{TraceFiles: []string{"a.trace"}, Explain: &ExplainSpec{}}, false},
		{"bad protection struct", Spec{Mix: "2ctx-CPU-A", Protection: map[string]string{"Bogus": "ecc"}}, false},
		{"bad protection mode", Spec{Mix: "2ctx-CPU-A", Protection: map[string]string{"IQ": "raid"}}, false},
		{"good protection", Spec{Mix: "2ctx-CPU-A", Protection: map[string]string{"IQ": "ecc", "ROB": "parity"}}, true},
	}
	for _, tc := range cases {
		err := tc.spec.Validate()
		if tc.ok && err != nil {
			t.Errorf("%s: unexpected error: %v", tc.name, err)
		}
		if !tc.ok && err == nil {
			t.Errorf("%s: validation passed, want error", tc.name)
		}
	}
}

func TestSpecKind(t *testing.T) {
	if k := (Spec{Mix: "2ctx-CPU-A"}).Kind(); k != KindRun {
		t.Fatalf("plain spec kind = %s", k)
	}
	if k := (Spec{Mix: "2ctx-CPU-A", CrossVal: &CrossValSpec{}}).Kind(); k != KindCrossVal {
		t.Fatalf("crossval spec kind = %s", k)
	}
	if k := (Spec{Mix: "2ctx-CPU-A", Propagation: &PropagationSpec{}}).Kind(); k != KindPropagation {
		t.Fatalf("propagation spec kind = %s", k)
	}
	if k := (Spec{Mix: "2ctx-CPU-A", Explain: &ExplainSpec{}}).Kind(); k != KindExplain {
		t.Fatalf("explain spec kind = %s", k)
	}
}

func TestSpecResolveDefaults(t *testing.T) {
	spec := Spec{Mix: "2ctx-CPU-A"}
	rv, err := spec.Resolve(Defaults{Seed: 7, Warmup: 1000, Budget: func(n int) uint64 { return uint64(n) * 10 }})
	if err != nil {
		t.Fatal(err)
	}
	if rv.Config.Seed != 7 {
		t.Errorf("seed = %d, want the default 7", rv.Config.Seed)
	}
	if rv.Config.Warmup != 1000 {
		t.Errorf("warmup = %d, want the default 1000", rv.Config.Warmup)
	}
	if rv.Quota != uint64(rv.Threads)*10 {
		t.Errorf("quota = %d, want the budget rule's %d", rv.Quota, rv.Threads*10)
	}
	if rv.Every != 1 || rv.CampaignSeed != 7 {
		t.Errorf("campaign knobs = (%d, %d), want (1, 7)", rv.Every, rv.CampaignSeed)
	}
	if !reflect.DeepEqual(rv.Seeds, []uint64{1}) {
		t.Errorf("seeds = %v, want [1]", rv.Seeds)
	}
	if len(rv.Profiles) != rv.Threads || rv.Threads != rv.Config.Threads {
		t.Errorf("profiles/threads mismatch: %d profiles, %d threads, cfg %d",
			len(rv.Profiles), rv.Threads, rv.Config.Threads)
	}
}

func TestSpecResolveOverrides(t *testing.T) {
	spec := Spec{
		Mix:           "2ctx-CPU-A",
		Policy:        "STALL",
		Seed:          11,
		Instructions:  5000,
		NoWarmup:      true,
		PhaseInterval: 256,
		Protection:    map[string]string{"IQ": "ecc"},
		Inject:        &InjectSpec{Every: 16, Seed: 99, Stop: inject.Stop{MaxStrikes: 5}},
		CrossVal:      &CrossValSpec{Seeds: []uint64{3, 4}},
	}
	rv, err := spec.Resolve(Defaults{Seed: 7, Warmup: 1000, Budget: func(int) uint64 { return 1 }})
	if err != nil {
		t.Fatal(err)
	}
	if rv.Config.Seed != 11 || rv.Config.Warmup != 0 || rv.Config.PhaseInterval != 256 {
		t.Errorf("cfg (seed, warmup, phase) = (%d, %d, %d), want (11, 0, 256)",
			rv.Config.Seed, rv.Config.Warmup, rv.Config.PhaseInterval)
	}
	if rv.Config.Policy == nil || rv.Config.Policy.Name() != "STALL" {
		t.Errorf("policy = %v, want STALL", rv.Config.Policy)
	}
	if rv.Quota != 5000 || rv.Every != 16 || rv.CampaignSeed != 99 || rv.Stop.MaxStrikes != 5 {
		t.Errorf("quota/every/seed/stop = %d/%d/%d/%d", rv.Quota, rv.Every, rv.CampaignSeed, rv.Stop.MaxStrikes)
	}
	if !reflect.DeepEqual(rv.Seeds, []uint64{3, 4}) {
		t.Errorf("seeds = %v", rv.Seeds)
	}
	if rv.Protection[avf.IQ] != core.ProtectECC || rv.Protection[avf.ROB] != core.ProtectNone {
		t.Errorf("protection = %v", rv.Protection)
	}
}

func TestSpecResolveMachineOverride(t *testing.T) {
	machine := core.DefaultConfig(2)
	machine.IQSize = 16
	machine.Threads = 99 // must be forced back to the workload's count
	spec := Spec{Benchmarks: []string{"gcc", "mcf"}, Machine: &machine}
	rv, err := spec.Resolve(Defaults{})
	if err != nil {
		t.Fatal(err)
	}
	if rv.Config.IQSize != 16 {
		t.Errorf("machine override lost: IQSize = %d", rv.Config.IQSize)
	}
	if rv.Config.Threads != 2 {
		t.Errorf("threads = %d, want the workload's 2", rv.Config.Threads)
	}
	if rv.Config.Seed != 1 {
		t.Errorf("seed = %d, want the final fallback 1", rv.Config.Seed)
	}
}

func TestProtectionRoundTrip(t *testing.T) {
	var p core.ProtectionModes
	p[avf.IQ] = core.ProtectECC
	p[avf.DL1Data] = core.ProtectParity
	m := ProtectionMap(p)
	back, err := ParseProtection(m)
	if err != nil {
		t.Fatal(err)
	}
	if back != p {
		t.Fatalf("round trip: %v != %v", back, p)
	}
	if ProtectionMap(core.ProtectionModes{}) != nil {
		t.Fatal("all-silent protection should map to nil")
	}
}

func TestSpecJSONRoundTrip(t *testing.T) {
	spec := Spec{
		Mix:        "2ctx-CPU-A",
		Policy:     "FLUSH",
		Seed:       3,
		Protection: map[string]string{"IQ": "ecc"},
		Inject:     &InjectSpec{Every: 8, Stop: inject.Stop{MaxStrikes: 100}},
	}
	data, err := spec.MarshalIndent()
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "spec.json")
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	back, err := ReadSpecFile(path)
	if err != nil {
		t.Fatal(err)
	}
	spec.V = SpecVersion
	if !reflect.DeepEqual(back, spec) {
		t.Fatalf("round trip changed the spec:\n got %+v\nwant %+v", back, spec)
	}
}

func TestReadSpecFileRejectsInvalid(t *testing.T) {
	path := filepath.Join(t.TempDir(), "spec.json")
	if err := os.WriteFile(path, []byte(`{"v":1}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadSpecFile(path); err == nil {
		t.Fatal("sourceless spec loaded without error")
	}
}

func TestSpecOmitsZeroFields(t *testing.T) {
	data, err := json.Marshal(Spec{V: SpecVersion, Mix: "2ctx-CPU-A"})
	if err != nil {
		t.Fatal(err)
	}
	want := `{"v":1,"mix":"2ctx-CPU-A"}`
	if string(data) != want {
		t.Fatalf("minimal spec marshals to %s, want %s", data, want)
	}
}
