package campaign

import (
	"errors"
	"fmt"
	"log/slog"
	"sort"
	"sync"
	"time"

	"smtavf/internal/obs"
)

// Executor runs one campaign point to completion. The service treats it
// as a black box; cmd/avfd plugs in an experiments.Runner-backed one and
// tests plug in fakes.
type Executor func(Spec) (*Result, error)

// ErrDraining rejects submissions while the service shuts down.
var ErrDraining = errors.New("campaign: service is draining")

// ErrUnknownCampaign reports a lookup of an ID the store has never seen.
var ErrUnknownCampaign = errors.New("campaign: unknown campaign")

// ServiceOptions configures NewService.
type ServiceOptions struct {
	// Dir is the store root (required).
	Dir string
	// Workers bounds concurrent point executions (default 1 — simulator
	// points are already internally parallel for sharded specs).
	Workers int
	// Executor runs points (required).
	Executor Executor
	// Ledger, when non-nil, receives one "campaign-point" manifest per
	// executed point and one campaign-level manifest per terminal
	// transition (ok / cancelled / interrupted).
	Ledger *obs.Ledger
	// Logger defaults to slog.Default().
	Logger *slog.Logger
	// Program names the service in manifests (default "avfd").
	Program string
}

// Service owns the campaign lifecycle: submission, a bounded worker pool,
// durable per-point results, streaming subscribers, cancellation, drain,
// and restart resume. All state transitions are re-derived from the Store
// on startup, so the in-memory view is a cache, never the truth.
type Service struct {
	opts  ServiceOptions
	store *Store
	log   *slog.Logger

	mu        sync.Mutex
	campaigns map[string]*campaignState
	draining  bool

	jobs chan job
	quit chan struct{}
	wg   sync.WaitGroup
}

type job struct {
	id    string
	point int
	spec  Spec
}

// campaignState is the in-memory view of one campaign.
type campaignState struct {
	id        string
	name      string
	issued    time.Time
	points    []Spec
	results   map[int]*Result
	cancelled bool
	resumed   bool
	finished  bool // terminal manifest written
	subs      map[chan *Result]struct{}
	done      chan struct{} // closed when every point has a result
}

func (c *campaignState) complete() bool {
	return len(c.results) >= len(c.points)
}

// NewService opens the store, resumes every incomplete campaign, and
// starts the worker pool.
func NewService(opts ServiceOptions) (*Service, error) {
	if opts.Executor == nil {
		return nil, errors.New("campaign: service needs an executor")
	}
	store, err := NewStore(opts.Dir)
	if err != nil {
		return nil, err
	}
	if opts.Workers <= 0 {
		opts.Workers = 1
	}
	if opts.Program == "" {
		opts.Program = "avfd"
	}
	log := opts.Logger
	if log == nil {
		log = slog.Default()
	}
	s := &Service{
		opts:      opts,
		store:     store,
		log:       log,
		campaigns: make(map[string]*campaignState),
		jobs:      make(chan job, 16384),
		quit:      make(chan struct{}),
	}
	if err := s.resume(); err != nil {
		return nil, err
	}
	for i := 0; i < opts.Workers; i++ {
		s.wg.Add(1)
		go s.worker()
	}
	return s, nil
}

// resume reloads every stored campaign and re-enqueues the points with no
// durable result. Completed points are never re-executed, so each point
// lands in the results stream and the run ledger exactly once across any
// number of restarts.
func (s *Service) resume() error {
	ids, err := s.store.List()
	if err != nil {
		return err
	}
	for _, id := range ids {
		lc, err := s.store.Load(id)
		if err != nil {
			s.log.Warn("campaign: skipping unloadable campaign", "id", id, "err", err)
			continue
		}
		c := &campaignState{
			id:        lc.ID,
			name:      lc.Name,
			issued:    lc.Issued,
			points:    lc.Points,
			results:   lc.Results,
			cancelled: lc.Cancelled,
			subs:      make(map[chan *Result]struct{}),
			done:      make(chan struct{}),
		}
		s.campaigns[id] = c
		if c.complete() || c.cancelled {
			close(c.done)
			c.finished = true // terminal manifest was this campaign's previous life's job
			continue
		}
		c.resumed = true
		pending := 0
		for i, p := range c.points {
			if _, done := c.results[i]; done {
				continue
			}
			s.jobs <- job{id: id, point: i, spec: p}
			pending++
		}
		s.log.Info("campaign: resuming", "id", id, "pending", pending, "done", len(c.results))
	}
	return nil
}

// Submit expands a matrix, persists it, and enqueues its points.
func (s *Service) Submit(m Matrix, now time.Time) (string, []Spec, error) {
	points, err := m.Points()
	if err != nil {
		return "", nil, err
	}
	s.mu.Lock()
	if s.draining {
		s.mu.Unlock()
		return "", nil, ErrDraining
	}
	id := NewID(now)
	c := &campaignState{
		id:      id,
		name:    m.Name,
		issued:  now.UTC(),
		points:  points,
		results: make(map[int]*Result),
		subs:    make(map[chan *Result]struct{}),
		done:    make(chan struct{}),
	}
	s.campaigns[id] = c
	s.mu.Unlock()

	if err := s.store.Create(id, m.Name, now, points); err != nil {
		s.mu.Lock()
		delete(s.campaigns, id)
		s.mu.Unlock()
		return "", nil, err
	}
	for i, p := range points {
		s.jobs <- job{id: id, point: i, spec: p}
	}
	s.log.Info("campaign: submitted", "id", id, "points", len(points))
	return id, points, nil
}

// worker drains the job queue until Close.
func (s *Service) worker() {
	defer s.wg.Done()
	for {
		select {
		case <-s.quit:
			return
		case j := <-s.jobs:
			s.execute(j)
		}
	}
}

// execute runs one point unless its campaign is cancelled, already has a
// durable result for the point, or the service is draining.
func (s *Service) execute(j job) {
	s.mu.Lock()
	c := s.campaigns[j.id]
	skip := c == nil || c.cancelled || s.draining
	if !skip {
		_, skip = c.results[j.point]
	}
	s.mu.Unlock()
	if skip {
		return
	}

	start := time.Now()
	res, err := s.opts.Executor(j.spec)
	if err != nil || res == nil {
		if err == nil {
			err = errors.New("campaign: executor returned no result")
		}
		res = Err(j.spec, err)
	}
	res.V = ResultVersion
	res.Point = j.point
	res.Campaign = j.id
	if res.Status == "" {
		res.Status = obs.StatusOK
	}

	if perr := s.store.AppendResult(j.id, res); perr != nil {
		s.log.Error("campaign: persisting result", "id", j.id, "point", j.point, "err", perr)
	}
	s.appendPointManifest(j, res, start)

	s.mu.Lock()
	c.results[j.point] = res
	for sub := range c.subs {
		select {
		case sub <- res:
		default: // the subscriber's buffer covers every point; a full one is gone
		}
	}
	finished := c.complete() && !c.finished
	if finished {
		c.finished = true
		close(c.done)
	}
	resumed := c.resumed
	s.mu.Unlock()

	if finished {
		s.appendCampaignManifest(c, obs.StatusOK, resumed)
		s.log.Info("campaign: complete", "id", j.id, "points", len(c.points), "resumed", resumed)
	}
}

// appendPointManifest records one executed point in the run ledger.
func (s *Service) appendPointManifest(j job, res *Result, start time.Time) {
	if s.opts.Ledger == nil {
		return
	}
	m := obs.NewManifest("campaign-point", s.opts.Program)
	m.Start = start.UTC().Format(time.RFC3339Nano)
	m.Policy = res.Policy
	m.Seed = j.spec.Seed
	m.Workloads = j.spec.WorkloadIDs()
	m.Cycles = res.Cycles
	m.Instructions = res.Instructions
	m.Shards = j.spec.Shards
	m.Strikes = res.Strikes
	m.Extra = map[string]string{
		"campaign": j.id,
		"point":    fmt.Sprint(j.point),
		"kind":     string(res.Kind),
	}
	var err error
	if res.Status != obs.StatusOK {
		err = errors.New(res.Error)
	}
	m.Finish(obs.StatusOK, err)
	if aerr := s.opts.Ledger.Append(m); aerr != nil {
		s.log.Error("campaign: ledger append", "id", j.id, "point", j.point, "err", aerr)
	}
}

// appendCampaignManifest records a campaign-level terminal transition.
func (s *Service) appendCampaignManifest(c *campaignState, status string, resumed bool) {
	if s.opts.Ledger == nil {
		return
	}
	m := obs.NewManifest("campaign", s.opts.Program)
	m.Extra = map[string]string{
		"campaign": c.id,
		"points":   fmt.Sprint(len(c.points)),
		"done":     fmt.Sprint(len(c.results)),
	}
	if resumed {
		m.Extra["resumed"] = "true"
	}
	m.Finish(status, nil)
	if err := s.opts.Ledger.Append(m); err != nil {
		s.log.Error("campaign: ledger append", "id", c.id, "err", err)
	}
}

// Cancel marks a campaign cancelled: queued points are skipped, in-flight
// points finish and are recorded.
func (s *Service) Cancel(id string) error {
	s.mu.Lock()
	c := s.campaigns[id]
	if c == nil {
		s.mu.Unlock()
		return ErrUnknownCampaign
	}
	already := c.cancelled
	c.cancelled = true
	finished := !c.finished
	if finished {
		c.finished = true
		close(c.done)
	}
	resumed := c.resumed
	s.mu.Unlock()
	if already {
		return nil
	}
	if err := s.store.MarkCancelled(id); err != nil {
		return err
	}
	if finished {
		s.appendCampaignManifest(c, "cancelled", resumed)
	}
	s.log.Info("campaign: cancelled", "id", id)
	return nil
}

// Status is the wire view of a campaign.
type Status struct {
	ID        string    `json:"id"`
	Name      string    `json:"name,omitempty"`
	Issued    time.Time `json:"issued"`
	Points    int       `json:"points"`
	Done      int       `json:"done"`
	Cancelled bool      `json:"cancelled,omitempty"`
	Resumed   bool      `json:"resumed,omitempty"`
	State     string    `json:"state"` // running | ok | cancelled
	Results   []*Result `json:"results,omitempty"`
}

func (c *campaignState) statusLocked(withResults bool) *Status {
	st := &Status{
		ID:        c.id,
		Name:      c.name,
		Issued:    c.issued,
		Points:    len(c.points),
		Done:      len(c.results),
		Cancelled: c.cancelled,
		Resumed:   c.resumed,
	}
	switch {
	case c.cancelled:
		st.State = "cancelled"
	case c.complete():
		st.State = obs.StatusOK
	default:
		st.State = "running"
	}
	if withResults {
		idx := make([]int, 0, len(c.results))
		for i := range c.results {
			idx = append(idx, i)
		}
		sort.Ints(idx)
		for _, i := range idx {
			st.Results = append(st.Results, c.results[i])
		}
	}
	return st
}

// Status returns one campaign's status, with per-point results.
func (s *Service) Status(id string) (*Status, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	c := s.campaigns[id]
	if c == nil {
		return nil, ErrUnknownCampaign
	}
	return c.statusLocked(true), nil
}

// List returns every campaign's summary status, oldest first.
func (s *Service) List() []*Status {
	s.mu.Lock()
	defer s.mu.Unlock()
	ids := make([]string, 0, len(s.campaigns))
	for id := range s.campaigns {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	out := make([]*Status, 0, len(ids))
	for _, id := range ids {
		out = append(out, s.campaigns[id].statusLocked(false))
	}
	return out
}

// Subscribe snapshots the results so far and registers a live channel,
// atomically — no result can land between the snapshot and the
// registration, so a streaming client sees every point exactly once. The
// channel's buffer covers every remaining point, so the service never
// blocks on a slow subscriber. Done is closed when the campaign reaches a
// terminal state; call the returned cancel to unsubscribe.
func (s *Service) Subscribe(id string) (past []*Result, live <-chan *Result, done <-chan struct{}, cancel func(), err error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	c := s.campaigns[id]
	if c == nil {
		return nil, nil, nil, nil, ErrUnknownCampaign
	}
	st := c.statusLocked(true)
	past = st.Results
	ch := make(chan *Result, len(c.points)+1)
	c.subs[ch] = struct{}{}
	cancel = func() {
		s.mu.Lock()
		delete(c.subs, ch)
		s.mu.Unlock()
	}
	return past, ch, c.done, cancel, nil
}

// Draining reports whether Interrupt has been called (readyz turns 503).
func (s *Service) Draining() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.draining
}

// Interrupt starts the SIGTERM drain: no new submissions, no new point
// executions, and one "interrupted" campaign manifest per incomplete
// campaign — the ledger record a restarted server's resume closes out
// with a later "ok". In-flight points are not awaited; their results are
// durable if they finish in time, and re-run otherwise.
func (s *Service) Interrupt() {
	s.mu.Lock()
	if s.draining {
		s.mu.Unlock()
		return
	}
	s.draining = true
	var open []*campaignState
	for _, c := range s.campaigns {
		if !c.finished {
			open = append(open, c)
		}
	}
	sort.Slice(open, func(i, j int) bool { return open[i].id < open[j].id })
	s.mu.Unlock()
	for _, c := range open {
		s.appendCampaignManifest(c, obs.StatusInterrupted, c.resumed)
	}
	s.log.Info("campaign: draining", "open", len(open))
}

// Close stops the workers and waits for in-flight points (test teardown;
// production exits through Interrupt + os.Exit).
func (s *Service) Close() {
	s.mu.Lock()
	s.draining = true
	s.mu.Unlock()
	close(s.quit)
	s.wg.Wait()
}
