package campaign

import (
	"bufio"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

func TestHTTPSubmitStatusCancel(t *testing.T) {
	fe := &fakeExecutor{}
	s := newTestService(t, t.TempDir(), fe.exec, nil)
	srv := httptest.NewServer(NewMux(s))
	defer srv.Close()

	// Health endpoints.
	for _, path := range []string{"/healthz", "/readyz"} {
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("%s = %d", path, resp.StatusCode)
		}
	}

	// Submit.
	body := `{"name":"t","base":{"mix":"2ctx-CPU-A"},"seeds":[1,2]}`
	resp, err := http.Post(srv.URL+"/v1/campaigns", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	var sub struct {
		ID     string `json:"id"`
		Points int    `json:"points"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&sub); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted || sub.Points != 2 || sub.ID == "" {
		t.Fatalf("submit: %d %+v", resp.StatusCode, sub)
	}
	waitDone(t, s, sub.ID)

	// Status.
	resp, err = http.Get(srv.URL + "/v1/campaigns/" + sub.ID)
	if err != nil {
		t.Fatal(err)
	}
	var st Status
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if st.State != "ok" || len(st.Results) != 2 {
		t.Fatalf("status = %+v", st)
	}

	// List.
	resp, err = http.Get(srv.URL + "/v1/campaigns")
	if err != nil {
		t.Fatal(err)
	}
	var list struct {
		Campaigns []Status `json:"campaigns"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&list); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if len(list.Campaigns) != 1 {
		t.Fatalf("list = %+v", list)
	}

	// Cancel a finished campaign is a no-op 200; unknown is 404.
	resp, err = http.Post(srv.URL+"/v1/campaigns/"+sub.ID+"/cancel", "", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("cancel = %d", resp.StatusCode)
	}
	resp, err = http.Post(srv.URL+"/v1/campaigns/nope/cancel", "", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("cancel unknown = %d", resp.StatusCode)
	}

	// Bad submissions.
	for _, bad := range []string{`{"base":{}}`, `{"unknown_field":1,"base":{"mix":"2ctx-CPU-A"}}`, `not json`} {
		resp, err := http.Post(srv.URL+"/v1/campaigns", "application/json", strings.NewReader(bad))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("bad submit %q = %d", bad, resp.StatusCode)
		}
	}
}

func TestHTTPStream(t *testing.T) {
	fe := &fakeExecutor{delay: 5 * time.Millisecond}
	s := newTestService(t, t.TempDir(), fe.exec, nil)
	srv := httptest.NewServer(NewMux(s))
	defer srv.Close()

	id, _, err := s.Submit(Matrix{Base: Spec{Mix: "2ctx-CPU-A"}, Seeds: []uint64{1, 2, 3}}, time.Now())
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Get(srv.URL + "/v1/campaigns/" + id + "/stream")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Fatalf("content type = %s", ct)
	}
	seen := make(map[int]int)
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		var res Result
		if err := json.Unmarshal(sc.Bytes(), &res); err != nil {
			t.Fatalf("bad stream line %q: %v", sc.Text(), err)
		}
		seen[res.Point]++
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if len(seen) != 3 {
		t.Fatalf("streamed %d points, want 3", len(seen))
	}
	for p, n := range seen {
		if n != 1 {
			t.Errorf("point %d streamed %d times", p, n)
		}
	}

	// Unknown campaign: 404 before any stream bytes.
	resp, err = http.Get(srv.URL + "/v1/campaigns/nope/stream")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("stream unknown = %d", resp.StatusCode)
	}
}

func TestHTTPReadyzDraining(t *testing.T) {
	fe := &fakeExecutor{}
	s := newTestService(t, t.TempDir(), fe.exec, nil)
	srv := httptest.NewServer(NewMux(s))
	defer srv.Close()
	s.Interrupt()
	resp, err := http.Get(srv.URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("readyz while draining = %d", resp.StatusCode)
	}
	resp, err = http.Post(srv.URL+"/v1/campaigns", "application/json",
		strings.NewReader(`{"base":{"mix":"2ctx-CPU-A"}}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("submit while draining = %d", resp.StatusCode)
	}
}
