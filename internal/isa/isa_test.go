package isa

import "testing"

func TestClassString(t *testing.T) {
	cases := map[Class]string{
		NOP: "nop", IntALU: "ialu", IntMul: "imul", IntDiv: "idiv",
		Load: "load", Store: "store", Branch: "branch", Call: "call",
		Return: "return", FPALU: "fpalu", FPMul: "fpmul", FPDiv: "fpdiv",
	}
	for c, want := range cases {
		if got := c.String(); got != want {
			t.Errorf("%d.String() = %q, want %q", c, got, want)
		}
	}
	if got := Class(200).String(); got != "class(200)" {
		t.Errorf("unknown class string = %q", got)
	}
}

func TestClassPredicates(t *testing.T) {
	for c := Class(0); c < Class(NumClasses); c++ {
		wantMem := c == Load || c == Store
		if c.IsMem() != wantMem {
			t.Errorf("%v.IsMem() = %v", c, c.IsMem())
		}
		wantCTI := c == Branch || c == Call || c == Return
		if c.IsCTI() != wantCTI {
			t.Errorf("%v.IsCTI() = %v", c, c.IsCTI())
		}
		wantFP := c == FPALU || c == FPMul || c == FPDiv
		if c.IsFP() != wantFP {
			t.Errorf("%v.IsFP() = %v", c, c.IsFP())
		}
	}
}

func TestLatencies(t *testing.T) {
	// Latencies must be positive and ordered sensibly: divide is the
	// longest op of its bank; multiplies beat divides; ALU is fastest.
	for c := Class(0); c < Class(NumClasses); c++ {
		if c.Latency() < 1 {
			t.Errorf("%v latency %d < 1", c, c.Latency())
		}
	}
	if !(IntALU.Latency() < IntMul.Latency() && IntMul.Latency() < IntDiv.Latency()) {
		t.Error("integer latency ordering broken")
	}
	if !(FPALU.Latency() < FPMul.Latency() && FPMul.Latency() < FPDiv.Latency()) {
		t.Error("FP latency ordering broken")
	}
}

func TestPipelined(t *testing.T) {
	if IntDiv.Pipelined() || FPDiv.Pipelined() {
		t.Error("divides must be unpipelined")
	}
	for _, c := range []Class{NOP, IntALU, IntMul, Load, Store, Branch, FPALU, FPMul} {
		if !c.Pipelined() {
			t.Errorf("%v should be pipelined", c)
		}
	}
}

func TestFUMapping(t *testing.T) {
	cases := map[Class]FUKind{
		NOP: FUIntALU, IntALU: FUIntALU, Branch: FUIntALU, Call: FUIntALU,
		Return: FUIntALU, IntMul: FUIntMulDiv, IntDiv: FUIntMulDiv,
		Load: FULoadStore, Store: FULoadStore,
		FPALU: FUFPALU, FPMul: FUFPMulDiv, FPDiv: FUFPMulDiv,
	}
	for c, want := range cases {
		if got := c.FU(); got != want {
			t.Errorf("%v.FU() = %v, want %v", c, got, want)
		}
	}
}

func TestFUKindString(t *testing.T) {
	if FUIntALU.String() != "IALU" || FUFPMulDiv.String() != "FPMULDIV" {
		t.Error("FU kind names wrong")
	}
	if got := FUKind(99).String(); got != "fu(99)" {
		t.Errorf("unknown FU kind string = %q", got)
	}
}

func TestRegID(t *testing.T) {
	if RegNone.Valid() {
		t.Error("RegNone must be invalid")
	}
	if !RegID(0).Valid() || !RegID(NumRegs-1).Valid() {
		t.Error("in-range registers must be valid")
	}
	if RegID(NumRegs).Valid() {
		t.Error("out-of-range register valid")
	}
	if RegID(0).IsFP() {
		t.Error("r0 is not FP")
	}
	if !FirstFPReg.IsFP() || !FPScratch.IsFP() {
		t.Error("FP registers misclassified")
	}
	if IntScratch.IsFP() {
		t.Error("IntScratch misclassified as FP")
	}
}

func TestNextPC(t *testing.T) {
	in := Instruction{PC: 100, Class: IntALU}
	if in.NextPC() != 104 || in.FallThrough() != 104 {
		t.Error("sequential NextPC wrong")
	}
	br := Instruction{PC: 100, Class: Branch, Taken: true, Target: 400}
	if br.NextPC() != 400 {
		t.Error("taken branch NextPC wrong")
	}
	nt := Instruction{PC: 100, Class: Branch, Taken: false, Target: 400}
	if nt.NextPC() != 104 {
		t.Error("not-taken branch NextPC wrong")
	}
	// A taken target only applies to CTIs.
	ld := Instruction{PC: 100, Class: Load, Taken: true, Target: 400}
	if ld.NextPC() != 104 {
		t.Error("non-CTI must fall through")
	}
}
