// Package isa defines the micro instruction set executed by the simulator.
//
// The simulator is trace driven: workload generators emit a stream of
// Instruction values carrying everything the timing and AVF models need —
// instruction class, architectural register def/use, effective memory
// address, and branch outcome. No functional semantics (actual arithmetic)
// are modeled, because AVF analysis depends only on where bits reside and
// for how long, not on their values.
package isa

import "fmt"

// Class identifies the functional class of an instruction. It selects the
// function-unit pool and the execution latency.
type Class uint8

// Instruction classes.
const (
	NOP Class = iota
	IntALU
	IntMul
	IntDiv
	Load
	Store
	Branch // conditional branch
	Call   // pushes return address on the RAS
	Return // pops the RAS
	FPALU
	FPMul
	FPDiv
	numClasses
)

// NumClasses is the number of distinct instruction classes.
const NumClasses = int(numClasses)

var classNames = [NumClasses]string{
	"nop", "ialu", "imul", "idiv", "load", "store",
	"branch", "call", "return", "fpalu", "fpmul", "fpdiv",
}

func (c Class) String() string {
	if int(c) < len(classNames) {
		return classNames[c]
	}
	return fmt.Sprintf("class(%d)", uint8(c))
}

// IsMem reports whether the class accesses data memory.
func (c Class) IsMem() bool { return c == Load || c == Store }

// IsCTI reports whether the class is a control-transfer instruction.
func (c Class) IsCTI() bool { return c == Branch || c == Call || c == Return }

// IsFP reports whether the class uses the floating-point register file.
func (c Class) IsFP() bool { return c == FPALU || c == FPMul || c == FPDiv }

// RegID names an architectural register. Integer registers are 0..31 and
// floating-point registers are 32..63. RegNone marks an absent operand.
type RegID int16

// Register-file layout constants.
const (
	RegNone    RegID = -1
	NumIntRegs       = 32
	NumFPRegs        = 32
	NumRegs          = NumIntRegs + NumFPRegs

	// FirstFPReg is the architectural index of floating-point register 0.
	FirstFPReg RegID = NumIntRegs

	// IntScratch and FPScratch are the registers used by generators for
	// dynamically dead results: values written there are never sourced.
	IntScratch RegID = NumIntRegs - 1
	FPScratch  RegID = NumRegs - 1
)

// Valid reports whether r names an actual architectural register.
func (r RegID) Valid() bool { return r >= 0 && r < NumRegs }

// IsFP reports whether r belongs to the floating-point file.
func (r RegID) IsFP() bool { return r >= FirstFPReg && r < NumRegs }

// Instruction is one dynamic instruction of a workload trace.
type Instruction struct {
	Seq    uint64 // per-thread dynamic sequence number, starting at 0
	PC     uint64 // instruction address (4-byte granularity)
	Class  Class
	Src1   RegID  // first source operand, RegNone if absent
	Src2   RegID  // second source operand, RegNone if absent
	Dest   RegID  // destination, RegNone if absent
	Addr   uint64 // effective address for Load/Store
	Size   uint8  // access size in bytes for Load/Store (1..8)
	Taken  bool   // resolved direction for CTIs
	Target uint64 // resolved target for taken CTIs
	Dead   bool   // result is never consumed (dynamically dead)
}

// FallThrough returns the address of the next sequential instruction.
func (in *Instruction) FallThrough() uint64 { return in.PC + 4 }

// NextPC returns the address of the dynamically next instruction.
func (in *Instruction) NextPC() uint64 {
	if in.Class.IsCTI() && in.Taken {
		return in.Target
	}
	return in.FallThrough()
}

// Latency is the execution latency in cycles of each class, excluding any
// memory-hierarchy time (Load latency is the address-generation cycle; cache
// access time is added by the memory model).
func (c Class) Latency() int {
	switch c {
	case NOP:
		return 1
	case IntALU:
		return 1
	case IntMul:
		return 3
	case IntDiv:
		return 12
	case Load, Store:
		return 1
	case Branch, Call, Return:
		return 1
	case FPALU:
		return 2
	case FPMul:
		return 4
	case FPDiv:
		return 12
	default:
		return 1
	}
}

// Pipelined reports whether the function unit for the class can accept a new
// operation each cycle. Divide units are iterative and unpipelined.
func (c Class) Pipelined() bool { return c != IntDiv && c != FPDiv }

// FUKind identifies a function-unit pool (paper Table 1).
type FUKind uint8

// Function-unit pools.
const (
	FUIntALU FUKind = iota // 8 units: IntALU, Branch, Call, Return, NOP
	FUIntMulDiv
	FULoadStore
	FUFPALU
	FUFPMulDiv
	NumFUKinds = 5
)

var fuNames = [NumFUKinds]string{"IALU", "IMULDIV", "LSU", "FPALU", "FPMULDIV"}

func (k FUKind) String() string {
	if int(k) < len(fuNames) {
		return fuNames[k]
	}
	return fmt.Sprintf("fu(%d)", uint8(k))
}

// FU returns the function-unit pool that executes class c.
func (c Class) FU() FUKind {
	switch c {
	case IntMul, IntDiv:
		return FUIntMulDiv
	case Load, Store:
		return FULoadStore
	case FPALU:
		return FUFPALU
	case FPMul, FPDiv:
		return FUFPMulDiv
	default: // NOP, IntALU, CTIs
		return FUIntALU
	}
}
