// Package metrics implements the performance and reliability-efficiency
// metrics of the paper's §3 and §4.3: IPC, weighted speedup and harmonic
// mean IPC (the fairness-aware metrics of Luo et al. and Raasch &
// Reinhardt, used in Figure 8), and the MITF-proportional IPC/AVF ratios.
package metrics

import (
	"fmt"
	"math"
)

// WeightedSpeedup is Σ_i IPC_smt(i) / IPC_st(i): the effective throughput
// of the multithreaded run relative to the same threads run alone.
func WeightedSpeedup(smtIPC, stIPC []float64) (float64, error) {
	if len(smtIPC) != len(stIPC) {
		return 0, fmt.Errorf("metrics: %d SMT IPCs vs %d single-thread IPCs", len(smtIPC), len(stIPC))
	}
	sum := 0.0
	for i := range smtIPC {
		if stIPC[i] <= 0 {
			return 0, fmt.Errorf("metrics: non-positive single-thread IPC for thread %d", i)
		}
		sum += smtIPC[i] / stIPC[i]
	}
	return sum, nil
}

// HarmonicIPC is the harmonic mean of the per-thread weighted IPCs,
// N / Σ_i (IPC_st(i) / IPC_smt(i)) — it rewards both throughput and
// fairness: starving any one thread collapses the mean.
func HarmonicIPC(smtIPC, stIPC []float64) (float64, error) {
	if len(smtIPC) != len(stIPC) {
		return 0, fmt.Errorf("metrics: %d SMT IPCs vs %d single-thread IPCs", len(smtIPC), len(stIPC))
	}
	sum := 0.0
	for i := range smtIPC {
		if smtIPC[i] <= 0 {
			return 0, fmt.Errorf("metrics: non-positive SMT IPC for thread %d", i)
		}
		if stIPC[i] <= 0 {
			return 0, fmt.Errorf("metrics: non-positive single-thread IPC for thread %d", i)
		}
		sum += stIPC[i] / smtIPC[i]
	}
	if sum == 0 {
		// Zero threads: 0/0 would be NaN; an empty harmonic mean is 0.
		return 0, nil
	}
	return float64(len(smtIPC)) / sum, nil
}

// Efficiency returns perf/avf, the reliability-efficiency ratio
// (proportional to mean instructions to failure at fixed frequency and raw
// error rate). A zero, negative, or NaN AVF yields 0 rather than ±Inf or
// NaN so that bars for untouched structures plot sanely.
func Efficiency(perf, avf float64) float64 {
	if avf <= 0 || math.IsNaN(avf) {
		return 0
	}
	return perf / avf
}

// Normalize divides each value by base, returning zeros when base is 0
// or non-finite — a broken baseline must not turn a whole figure into
// NaN bars. Figures 7 and 8 plot efficiencies normalized to the ICOUNT
// baseline.
func Normalize(values []float64, base float64) []float64 {
	out := make([]float64, len(values))
	if base == 0 || math.IsNaN(base) || math.IsInf(base, 0) {
		return out
	}
	for i, v := range values {
		out[i] = v / base
	}
	return out
}

// Mean returns the arithmetic mean of xs (0 for an empty slice).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}
