package metrics

import (
	"math"
	"testing"
)

func TestWeightedSpeedup(t *testing.T) {
	ws, err := WeightedSpeedup([]float64{1, 1}, []float64{2, 4})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(ws-0.75) > 1e-12 {
		t.Fatalf("weighted speedup = %v, want 0.75", ws)
	}
}

func TestWeightedSpeedupErrors(t *testing.T) {
	if _, err := WeightedSpeedup([]float64{1}, []float64{1, 2}); err == nil {
		t.Error("length mismatch accepted")
	}
	if _, err := WeightedSpeedup([]float64{1}, []float64{0}); err == nil {
		t.Error("zero single-thread IPC accepted")
	}
}

func TestHarmonicIPC(t *testing.T) {
	// Equal speedups of 0.5 each: harmonic mean is 0.5.
	h, err := HarmonicIPC([]float64{1, 2}, []float64{2, 4})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(h-0.5) > 1e-12 {
		t.Fatalf("harmonic = %v, want 0.5", h)
	}
}

func TestHarmonicPenalizesUnfairness(t *testing.T) {
	// Same total speedup, distributed unevenly: harmonic must be lower.
	fair, _ := HarmonicIPC([]float64{1, 1}, []float64{2, 2})
	unfair, _ := HarmonicIPC([]float64{1.8, 0.2}, []float64{2, 2})
	if unfair >= fair {
		t.Fatalf("harmonic did not penalize unfairness: %v >= %v", unfair, fair)
	}
	// Whereas weighted speedup is indifferent.
	a, _ := WeightedSpeedup([]float64{1, 1}, []float64{2, 2})
	b, _ := WeightedSpeedup([]float64{1.8, 0.2}, []float64{2, 2})
	if math.Abs(a-b) > 1e-12 {
		t.Fatal("weighted speedup should not change")
	}
}

func TestHarmonicErrors(t *testing.T) {
	if _, err := HarmonicIPC([]float64{0}, []float64{1}); err == nil {
		t.Error("zero SMT IPC accepted")
	}
	if _, err := HarmonicIPC([]float64{1}, []float64{0}); err == nil {
		t.Error("zero ST IPC accepted")
	}
	if _, err := HarmonicIPC([]float64{1, 1}, []float64{1}); err == nil {
		t.Error("length mismatch accepted")
	}
}

func TestEfficiency(t *testing.T) {
	if Efficiency(2, 0.5) != 4 {
		t.Error("efficiency math wrong")
	}
	if Efficiency(2, 0) != 0 {
		t.Error("zero AVF must yield 0, not Inf")
	}
}

func TestNormalize(t *testing.T) {
	out := Normalize([]float64{2, 4, 6}, 2)
	want := []float64{1, 2, 3}
	for i := range want {
		if out[i] != want[i] {
			t.Fatalf("Normalize = %v", out)
		}
	}
	for _, v := range Normalize([]float64{1, 2}, 0) {
		if v != 0 {
			t.Fatal("zero base must normalize to zeros")
		}
	}
}

func TestMean(t *testing.T) {
	if Mean(nil) != 0 {
		t.Error("empty mean")
	}
	if Mean([]float64{1, 2, 3}) != 2 {
		t.Error("mean math wrong")
	}
}

// --- Edge cases: degenerate thread sets and non-finite inputs ---

// TestHarmonicZeroInstructionThread pins the zero-instruction-thread
// contract: a thread that committed nothing has IPC 0, which would put a
// division by zero inside the harmonic sum — the function must refuse it
// rather than return Inf/NaN into a figure.
func TestHarmonicZeroInstructionThread(t *testing.T) {
	if h, err := HarmonicIPC([]float64{1.2, 0}, []float64{2, 2}); err == nil {
		t.Fatalf("zero-IPC thread accepted, harmonic = %v", h)
	}
	// The same thread is fine for weighted speedup (it contributes 0).
	ws, err := WeightedSpeedup([]float64{1.2, 0}, []float64{2, 2})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(ws-0.6) > 1e-12 {
		t.Fatalf("weighted speedup = %v, want 0.6", ws)
	}
}

// TestSingleThreadDegenerate pins the single-thread case: with one
// thread both fairness metrics collapse to the plain relative IPC.
func TestSingleThreadDegenerate(t *testing.T) {
	ws, err := WeightedSpeedup([]float64{1.5}, []float64{2})
	if err != nil {
		t.Fatal(err)
	}
	h, err := HarmonicIPC([]float64{1.5}, []float64{2})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(ws-0.75) > 1e-12 || math.Abs(h-0.75) > 1e-12 {
		t.Fatalf("single thread: weighted %v, harmonic %v, want 0.75 both", ws, h)
	}
}

// TestEmptyThreadSets pins the zero-thread case: an empty weighted
// speedup is 0 (an empty sum), and an empty harmonic is 0/0 — it must
// not come back NaN.
func TestEmptyThreadSets(t *testing.T) {
	ws, err := WeightedSpeedup(nil, nil)
	if err != nil || ws != 0 {
		t.Fatalf("empty weighted speedup = %v, %v", ws, err)
	}
	h, err := HarmonicIPC(nil, nil)
	if err == nil && math.IsNaN(h) {
		t.Fatalf("empty harmonic IPC returned NaN")
	}
}

// TestEfficiencyNonFinite pins the NaN/Inf guards on the IPC/AVF
// ratios: a negative or NaN AVF must not produce a plottable-looking
// garbage bar, and Normalize must zero out rather than propagate a
// non-finite baseline.
func TestEfficiencyNonFinite(t *testing.T) {
	if got := Efficiency(2, -0.1); got != 0 {
		t.Errorf("negative AVF: efficiency = %v, want 0", got)
	}
	if got := Efficiency(2, math.NaN()); got != 0 {
		t.Errorf("NaN AVF: efficiency = %v, want 0", got)
	}
	if got := Efficiency(math.Inf(1), 0); got != 0 {
		t.Errorf("Inf perf at zero AVF: efficiency = %v, want 0", got)
	}
	for _, v := range Normalize([]float64{1, 2}, math.NaN()) {
		if !math.IsNaN(v) {
			continue
		}
		t.Fatalf("NaN baseline propagated into normalized values")
	}
}
