// Package pipetrace is the pipeline flight recorder: an opt-in per-uop
// lifecycle event recorder for the SMT simulator. Where internal/telemetry
// answers *when* a structure's AVF moved (cycle-windowed aggregates), this
// package answers *which instructions and why*: every uop that retires —
// by commit or by squash — leaves one Record carrying its thread, PC,
// opcode, stage-transition cycles, per-structure residency intervals, and
// its ACE fate (committed-live, dynamically dead, NOP, wrong-path, or
// squashed correct-path work).
//
// Records feed three exporters — Kanata (the Konata pipeline-viewer
// format, kanata.go), Chrome trace_event JSON (chrome.go), and compact
// JSONL (jsonl.go) — plus an aggregation pass (provenance.go) that folds
// them into an AVF provenance report: per-PC hotspot tables of ACE
// bit-cycles per structure, and a per-fate residency breakdown. The
// aggregation reproduces the avf.Tracker arithmetic exactly (same
// intervals, same rebase clipping), so per-PC ACE bit-cycles sum to the
// tracker's per-structure totals bit for bit.
//
// Like the telemetry collector, a detached recorder is free: the hot-path
// hooks are nil-receiver no-ops, enforced by BenchmarkPipetraceOverhead.
package pipetrace

import (
	"smtavf/internal/avf"
	"smtavf/internal/pipeline"
)

// SchemaVersion is stamped into every Record ("v" in JSONL) so downstream
// tooling can detect format drift. Bump it on any incompatible change to
// the Record schema.
const SchemaVersion = 1

// RecordStructs lists the structures a Record carries residency spans for,
// in Record field order.
var RecordStructs = [5]avf.Struct{avf.IQ, avf.ROB, avf.LSQTag, avf.LSQData, avf.FU}

// Span is one structure-residency interval: Start is the entry cycle,
// Cycles the accumulated occupancy. A zero Span means the uop never
// occupied the structure.
type Span struct {
	Start  uint64 `json:"start"`
	Cycles uint64 `json:"cycles"`
}

// End returns the cycle the residency closed.
func (s Span) End() uint64 { return s.Start + s.Cycles }

// Record is one uop's complete lifecycle, emitted when its fate is known
// (commit or squash). Stage cycles that were never reached are -1; cycle
// values are absolute simulation cycles.
type Record struct {
	V         int      `json:"v"` // SchemaVersion
	TID       int      `json:"tid"`
	GSeq      uint64   `json:"gseq"` // global fetch order
	Seq       uint64   `json:"seq"`  // per-thread trace sequence
	PC        uint64   `json:"pc"`
	Op        string   `json:"op"`
	WrongPath bool     `json:"wrong_path,omitempty"`
	Mispred   bool     `json:"mispred,omitempty"`
	Fate      avf.Fate `json:"fate"`
	ACE       bool     `json:"ace"`

	// Lifecycle timeline.
	Fetch     uint64 `json:"fetch"`
	Dispatch  int64  `json:"dispatch"`  // rename + IQ/ROB insertion (-1: dropped in the front end)
	Issue     int64  `json:"issue"`     // left the IQ for a function unit
	Writeback int64  `json:"writeback"` // result became visible
	Retire    uint64 `json:"retire"`    // commit or squash cycle

	// Per-structure residency.
	IQ      Span `json:"iq"`
	ROB     Span `json:"rob"`
	LSQTag  Span `json:"lsq_tag"`
	LSQData Span `json:"lsq_data"`
	FU      Span `json:"fu"`
}

// Span returns the residency span of structure s (zero Span for structures
// a Record does not track).
func (r *Record) Span(s avf.Struct) Span {
	switch s {
	case avf.IQ:
		return r.IQ
	case avf.ROB:
		return r.ROB
	case avf.LSQTag:
		return r.LSQTag
	case avf.LSQData:
		return r.LSQData
	case avf.FU:
		return r.FU
	}
	return Span{}
}

// Committed reports whether the uop retired by commit (any fate but
// wrong-path and squashed).
func (r *Record) Committed() bool {
	return r.Fate != avf.FateWrongPath && r.Fate != avf.FateSquashed
}

// Options parameterizes a Recorder.
type Options struct {
	// WindowStart and WindowEnd bound the recorded region in absolute
	// simulation cycles: only uops *fetched* in [WindowStart, WindowEnd)
	// are recorded, so a long sweep can sample a region instead of
	// recording everything. WindowEnd 0 means unbounded.
	WindowStart, WindowEnd uint64
	// Cap bounds the in-memory record buffer. Once reached, further uops
	// still feed the provenance aggregation (which stays exact) but their
	// Records are dropped and counted. 0 means unlimited.
	Cap int
}

// Recorder receives one lifecycle record per retired uop from the
// processor's commit and squash paths. A nil *Recorder is a valid
// "disabled" recorder: Record and Rebase are no-ops, so the simulator hot
// path pays one predictable branch when no flight recording is wanted.
//
// A Recorder is driven from the simulator's goroutine and is not safe for
// concurrent use during a run; read it after Run returns.
type Recorder struct {
	opt    Options
	bits   pipeline.Bits
	rebase uint64

	records []Record
	dropped uint64

	// Provenance aggregation, exact regardless of Cap.
	agg       map[avf.ProvKey]uint64 // bit-cycles per (struct, tid, pc, fate)
	pcs       map[pcID]*pcMeta
	fateCount [avf.NumFates]uint64
}

type pcID struct {
	tid int
	pc  uint64
}

type pcMeta struct {
	op    string
	count uint64
}

// New builds a recorder.
func New(opt Options) *Recorder {
	return &Recorder{
		opt:  opt,
		bits: pipeline.DefaultBits(),
		agg:  make(map[avf.ProvKey]uint64),
		pcs:  make(map[pcID]*pcMeta),
	}
}

// SetBits tells the recorder the per-entry bit widths of the machine it is
// attached to; the processor calls it at attach time so provenance
// bit-cycles use the same weights as the AVF tracker.
func (r *Recorder) SetBits(bits pipeline.Bits) {
	if r != nil {
		r.bits = bits
	}
}

// Record captures the lifecycle of u, retiring at cycle retire with the
// given squash outcome. It must be called exactly once per uop, alongside
// Uop.Classify — from commit, squash, and end-of-run accounting — so the
// recorder sees exactly the population the tracker accounted.
//
// Ownership contract (docs/performance.md): the core recycles u through a
// per-thread pool the moment Record returns, so everything the recorder
// keeps must be copied out of u inside this call. Neither u nor anything
// reachable from it may be retained — a stored pointer would silently
// mutate into a different instruction on the next fetch.
func (r *Recorder) Record(u *pipeline.Uop, retire uint64, squashed bool) {
	if r == nil {
		return
	}
	if u.FetchedAt < r.opt.WindowStart ||
		(r.opt.WindowEnd > 0 && u.FetchedAt >= r.opt.WindowEnd) {
		return
	}
	fate := u.Fate(squashed)
	r.fateCount[fate]++

	// Provenance: identical interval arithmetic to avf.Tracker.AddInterval,
	// including the warmup rebase clip, so sums match the tracker exactly.
	for _, res := range u.Residencies(r.bits) {
		start, end := res.Start, res.End
		if start < r.rebase {
			start = r.rebase
		}
		if end <= start {
			continue
		}
		r.agg[avf.ProvKey{Struct: res.Struct, TID: u.TID, PC: u.PC, Fate: fate}] +=
			res.Bits * (end - start)
	}
	id := pcID{u.TID, u.PC}
	meta := r.pcs[id]
	if meta == nil {
		meta = &pcMeta{op: u.Class.String()}
		r.pcs[id] = meta
	} else if meta.op != u.Class.String() {
		// The synthetic generators may place different instruction classes
		// at one PC across dynamic visits; don't let the first-seen class
		// mislabel the aggregate.
		meta.op = "mixed"
	}
	meta.count++

	if r.opt.Cap > 0 && len(r.records) >= r.opt.Cap {
		r.dropped++
		return
	}
	r.records = append(r.records, makeRecord(u, retire, fate))
}

// makeRecord snapshots the uop's lifecycle into an immutable Record.
func makeRecord(u *pipeline.Uop, retire uint64, fate avf.Fate) Record {
	rec := Record{
		V:         SchemaVersion,
		TID:       u.TID,
		GSeq:      u.GSeq,
		Seq:       u.Seq,
		PC:        u.PC,
		Op:        u.Class.String(),
		WrongPath: u.WrongPath,
		Mispred:   u.Mispred,
		Fate:      fate,
		ACE:       fate.ACE(),
		Fetch:     u.FetchedAt,
		Dispatch:  -1,
		Issue:     -1,
		Writeback: -1,
		Retire:    retire,
		IQ:        Span{u.EnterIQ, u.IQCycles},
		ROB:       Span{u.EnterROB, u.ROBCycles},
		LSQTag:    Span{u.EnterLSQ, u.LSQTagCycles},
		LSQData:   Span{u.DataAt, u.LSQDataCycles},
		FU:        Span{u.IssuedAt, u.FUCycles},
	}
	// Dispatch happens no earlier than cycle FrontEndDepth >= 1, so an
	// EnterROB of zero means the uop never left the front end.
	if u.EnterROB > 0 {
		rec.Dispatch = int64(u.EnterROB)
	}
	if u.Issued {
		rec.Issue = int64(u.IssuedAt)
	}
	if u.Executed {
		rec.Writeback = int64(u.ReadyAt)
	}
	return rec
}

// Rebase drops everything recorded so far and clips all future residency
// intervals at cycle: the processor calls it at the end of warmup, exactly
// when the AVF tracker rebases, so provenance covers only the measurement
// window.
func (r *Recorder) Rebase(cycle uint64) {
	if r == nil {
		return
	}
	r.rebase = cycle
	r.records = r.records[:0]
	r.dropped = 0
	clear(r.agg)
	clear(r.pcs)
	r.fateCount = [avf.NumFates]uint64{}
}

// Len returns the number of retained records.
func (r *Recorder) Len() int {
	if r == nil {
		return 0
	}
	return len(r.records)
}

// Dropped returns the number of records discarded by the Cap (their
// provenance contribution was still aggregated).
func (r *Recorder) Dropped() uint64 {
	if r == nil {
		return 0
	}
	return r.dropped
}

// Records returns the retained records in retirement order. The slice is
// the recorder's own backing store; callers must not mutate it.
func (r *Recorder) Records() []Record {
	if r == nil {
		return nil
	}
	return r.records
}

// ACEBitCycles returns the aggregated ACE bit-cycles of structure s across
// every recorded uop — with no sampling window this equals the tracker's
// avf.Tracker.ACEBitCycles for the five uop-tracked pipeline structures.
func (r *Recorder) ACEBitCycles(s avf.Struct) uint64 {
	if r == nil {
		return 0
	}
	var sum uint64
	for k, bc := range r.agg {
		if k.Struct == s && k.Fate.ACE() {
			sum += bc
		}
	}
	return sum
}

// ResidentBitCycles returns the aggregated occupancy (ACE plus un-ACE)
// bit-cycles of structure s across every recorded uop.
func (r *Recorder) ResidentBitCycles(s avf.Struct) uint64 {
	if r == nil {
		return 0
	}
	var sum uint64
	for k, bc := range r.agg {
		if k.Struct == s {
			sum += bc
		}
	}
	return sum
}
