package pipetrace

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
)

// chromeEvent is one trace_event object. Field order is the JSON output
// order (encoding/json emits struct fields in declaration order), which
// the golden tests rely on.
type chromeEvent struct {
	Name string      `json:"name"`
	Cat  string      `json:"cat,omitempty"`
	Ph   string      `json:"ph"`
	Ts   uint64      `json:"ts"`
	Dur  *uint64     `json:"dur,omitempty"`
	Pid  int         `json:"pid"`
	Tid  int         `json:"tid"`
	Args interface{} `json:"args,omitempty"`
}

// chromeArgs annotates every slice of one uop.
type chromeArgs struct {
	PC   string `json:"pc"`
	Op   string `json:"op"`
	GSeq uint64 `json:"gseq"`
	Seq  uint64 `json:"seq"`
	Fate string `json:"fate"`
	ACE  bool   `json:"ace"`
}

// WriteChrome writes records in the Chrome trace_event JSON object format,
// loadable by chrome://tracing and Perfetto. Each hardware thread is one
// process track (pid = TID); within it, concurrently in-flight uops are
// laid out on lanes (tid) by a greedy interval assignment, and each
// pipeline stage of a uop is one complete ("X") slice: F (front end), Ds
// (IQ wait), Ex (execute), Cm (completed, awaiting retirement). One
// simulated cycle maps to one microsecond of trace time.
func WriteChrome(w io.Writer, recs []Record) error {
	order := fetchOrder(recs)

	bw := bufio.NewWriter(w)
	bw.WriteString("{\"displayTimeUnit\": \"ms\",\n\"traceEvents\": [\n")
	first := true
	emit := func(e chromeEvent) error {
		data, err := json.Marshal(e)
		if err != nil {
			return err
		}
		if !first {
			bw.WriteString(",\n")
		}
		first = false
		_, err = bw.Write(data)
		return err
	}

	// Process-name metadata, one per hardware thread present.
	seen := map[int]bool{}
	for _, j := range order {
		tid := recs[j].TID
		if seen[tid] {
			continue
		}
		seen[tid] = true
		if err := emit(chromeEvent{
			Name: "process_name", Ph: "M", Pid: tid,
			Args: map[string]string{"name": fmt.Sprintf("hw thread %d", tid)},
		}); err != nil {
			return err
		}
	}

	// Greedy lane assignment per thread: a uop takes the first lane whose
	// previous occupant retired at or before its fetch cycle. Records are
	// visited in fetch order, so this is the classic interval coloring.
	lanes := map[int][]uint64{} // tid -> per-lane last retire cycle
	for _, j := range order {
		r := &recs[j]
		lane := -1
		ends := lanes[r.TID]
		for i, end := range ends {
			if end <= r.Fetch {
				lane = i
				break
			}
		}
		if lane < 0 {
			lane = len(ends)
			ends = append(ends, 0)
		}
		ends[lane] = r.Retire
		lanes[r.TID] = ends

		args := chromeArgs{
			PC:   fmt.Sprintf("0x%x", r.PC),
			Op:   r.Op,
			GSeq: r.GSeq,
			Seq:  r.Seq,
			Fate: r.Fate.String(),
			ACE:  r.ACE,
		}
		for _, st := range chromeStages(r) {
			dur := st.end - st.start
			if err := emit(chromeEvent{
				Name: st.name, Cat: "uop", Ph: "X",
				Ts: st.start, Dur: &dur, Pid: r.TID, Tid: lane, Args: args,
			}); err != nil {
				return err
			}
		}
	}
	bw.WriteString("\n]}\n")
	return bw.Flush()
}

type chromeStage struct {
	name       string
	start, end uint64
}

// chromeStages slices a record's timeline into stage intervals; stages the
// uop never reached are absent, and the last stage always closes at the
// retire cycle.
func chromeStages(r *Record) []chromeStage {
	bounds := []int64{int64(r.Fetch), r.Dispatch, r.Issue, r.Writeback, int64(r.Retire)}
	names := [4]string{stageFetch, stageDispatch, stageExecute, stageComplete}
	var out []chromeStage
	start := bounds[0]
	name := names[0]
	for i := 1; i < 4; i++ {
		if bounds[i] < 0 {
			continue
		}
		out = append(out, chromeStage{name, uint64(start), uint64(bounds[i])})
		start, name = bounds[i], names[i]
	}
	out = append(out, chromeStage{name, uint64(start), r.Retire})
	return out
}
