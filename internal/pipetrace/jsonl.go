package pipetrace

import (
	"fmt"
	"io"
	"strings"

	"smtavf/internal/jsonlio"
)

// WriteJSONL writes one Record as one JSON object per line, in retirement
// order — the compact machine-readable export, ready for jq. Every line
// carries the schema version ("v").
func WriteJSONL(w io.Writer, recs []Record) error {
	return jsonlio.WriteLines(w, recs)
}

// ReadJSONL decodes a JSONL recording produced by WriteJSONL; it rejects
// records from a different schema version.
func ReadJSONL(r io.Reader) ([]Record, error) {
	return jsonlio.ReadLines(r, func(rec *Record) error {
		if rec.V != SchemaVersion {
			return fmt.Errorf("pipetrace: record schema v%d, this build reads v%d", rec.V, SchemaVersion)
		}
		return nil
	})
}

// Format names a flight-recording export format.
type Format string

// Export formats.
const (
	FormatKanata Format = "kanata"
	FormatChrome Format = "chrome"
	FormatJSONL  Format = "jsonl"
)

// FormatForPath picks the export format from a file name: ".kanata" (or
// ".kan") selects Kanata, ".json" Chrome trace_event, anything else JSONL.
// A trailing ".gz" is ignored (the file is written gzip-compressed).
func FormatForPath(path string) Format {
	name := strings.TrimSuffix(strings.ToLower(path), ".gz")
	switch {
	case strings.HasSuffix(name, ".kanata") || strings.HasSuffix(name, ".kan"):
		return FormatKanata
	case strings.HasSuffix(name, ".json"):
		return FormatChrome
	default:
		return FormatJSONL
	}
}

// Write writes the records in the given format.
func Write(w io.Writer, f Format, recs []Record) error {
	switch f {
	case FormatKanata:
		return WriteKanata(w, recs)
	case FormatChrome:
		return WriteChrome(w, recs)
	case FormatJSONL:
		return WriteJSONL(w, recs)
	}
	return fmt.Errorf("pipetrace: unknown format %q", f)
}

// WriteFile exports the retained records to path. An empty format picks
// one from the extension (FormatForPath); a ".gz" suffix gzip-compresses
// the output (jsonlio.OpenWriter, shared with the telemetry exporters —
// flight recordings are large).
func (r *Recorder) WriteFile(path string, f Format) error {
	if f == "" {
		f = FormatForPath(path)
	}
	w, err := jsonlio.OpenWriter(path)
	if err != nil {
		return err
	}
	if err := Write(w, f, r.Records()); err != nil {
		w.Close()
		return err
	}
	return w.Close()
}
