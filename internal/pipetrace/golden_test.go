package pipetrace

import (
	"bytes"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"testing"

	"smtavf/internal/isa"
)

var update = flag.Bool("update", false, "rewrite golden files")

// goldenRecords is a small hand-checked two-thread recording: a committed
// ALU op, a committed load, a wrong-path uop flushed before issue, and a
// second-thread store — covering every exporter branch (missing stages,
// squash retirement, multiple threads, lane overlap).
func goldenRecords() []Record {
	r := New(Options{})
	r.Record(uop(0, 0, 0, 0x1000, isa.IntALU, 10), 18, false)
	r.Record(uop(0, 1, 1, 0x1004, isa.Load, 10), 19, false)

	flushed := uop(0, 2, 2, 0x1008, isa.IntALU, 11)
	flushed.WrongPath = true
	flushed.Issued, flushed.Executed = false, false
	flushed.IssuedAt, flushed.FUCycles = 0, 0
	flushed.IQCycles, flushed.ROBCycles = 2, 2
	r.Record(flushed, 17, true)

	r.Record(uop(1, 3, 0, 0x2000, isa.Store, 12), 21, false)
	return r.Records()
}

func checkGolden(t *testing.T, name string, got []byte) {
	t.Helper()
	path := filepath.Join("testdata", name)
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("%v (run go test -run Golden -update to create)", err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("%s drifted from golden file:\n--- got ---\n%s\n--- want ---\n%s", name, got, want)
	}
}

func TestGoldenKanata(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteKanata(&buf, goldenRecords()); err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "golden.kanata", buf.Bytes())

	// Structural validation independent of the golden bytes: header, every
	// uid introduced before use, retirement ids dense and in retire order.
	lines := strings.Split(strings.TrimRight(buf.String(), "\n"), "\n")
	if lines[0] != "Kanata\t0004" {
		t.Fatalf("header = %q", lines[0])
	}
	if !strings.HasPrefix(lines[1], "C=\t") {
		t.Fatalf("missing start-cycle line, got %q", lines[1])
	}
	introduced := map[string]bool{}
	retired := map[string]bool{}
	var rids []int
	for _, ln := range lines[2:] {
		f := strings.Split(ln, "\t")
		switch f[0] {
		case "C":
			if _, err := strconv.Atoi(f[1]); err != nil {
				t.Fatalf("bad cycle delta %q", ln)
			}
		case "I":
			introduced[f[1]] = true
		case "L", "S":
			if !introduced[f[1]] {
				t.Fatalf("uid %s used before I line: %q", f[1], ln)
			}
		case "R":
			if !introduced[f[1]] {
				t.Fatalf("uid %s retired before I line: %q", f[1], ln)
			}
			retired[f[1]] = true
			rid, err := strconv.Atoi(f[2])
			if err != nil {
				t.Fatalf("bad rid in %q", ln)
			}
			rids = append(rids, rid)
			if f[3] != "0" && f[3] != "1" {
				t.Fatalf("bad retire type in %q", ln)
			}
		default:
			t.Fatalf("unknown Kanata line %q", ln)
		}
	}
	if len(retired) != len(introduced) || len(introduced) != len(goldenRecords()) {
		t.Fatalf("introduced %d, retired %d, want %d each",
			len(introduced), len(retired), len(goldenRecords()))
	}
	seen := map[int]bool{}
	for _, rid := range rids {
		if rid < 0 || rid >= len(rids) || seen[rid] {
			t.Fatalf("retire ids %v are not a permutation of 0..%d", rids, len(rids)-1)
		}
		seen[rid] = true
	}
}

func TestGoldenChrome(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteChrome(&buf, goldenRecords()); err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "golden.json", buf.Bytes())

	// The output must be valid trace_event JSON regardless of the golden
	// bytes: object format, every event carrying the required keys.
	var doc struct {
		DisplayTimeUnit string `json:"displayTimeUnit"`
		TraceEvents     []struct {
			Name string          `json:"name"`
			Ph   string          `json:"ph"`
			Ts   *uint64         `json:"ts"`
			Dur  *uint64         `json:"dur"`
			Pid  *int            `json:"pid"`
			Tid  *int            `json:"tid"`
			Args json.RawMessage `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("chrome output is not valid JSON: %v", err)
	}
	slices, metas := 0, 0
	for _, e := range doc.TraceEvents {
		switch e.Ph {
		case "M":
			metas++
		case "X":
			slices++
			if e.Ts == nil || e.Dur == nil || e.Pid == nil || e.Tid == nil {
				t.Fatalf("slice %q missing ts/dur/pid/tid", e.Name)
			}
			switch e.Name {
			case stageFetch, stageDispatch, stageExecute, stageComplete:
			default:
				t.Fatalf("unknown stage slice %q", e.Name)
			}
		default:
			t.Fatalf("unexpected event phase %q", e.Ph)
		}
	}
	if metas != 2 { // one process_name per hardware thread
		t.Fatalf("got %d metadata events, want 2", metas)
	}
	if slices == 0 {
		t.Fatal("no stage slices emitted")
	}
}
