package pipetrace

import (
	"fmt"
	"sort"
	"strings"

	"smtavf/internal/avf"
)

// PCProfile is the provenance of one static instruction: how many dynamic
// instances the recorder saw, and how many bit-cycles they contributed to
// each structure, split into ACE (fate committed) and total residency.
type PCProfile struct {
	TID   int
	PC    uint64
	Op    string
	Count uint64 // dynamic instances recorded

	ACE      [avf.NumStructs]uint64 // ACE bit-cycles by structure
	Resident [avf.NumStructs]uint64 // ACE + un-ACE bit-cycles by structure
}

// Label renders the profile's identity for tables: "T0 0x12ab0 load".
func (p *PCProfile) Label() string {
	return fmt.Sprintf("T%d 0x%x %s", p.TID, p.PC, p.Op)
}

// FateProfile is the residency of one fate class across all PCs.
type FateProfile struct {
	Fate     avf.Fate
	Count    uint64 // dynamic uops with this fate
	Resident [avf.NumStructs]uint64
}

// Provenance is the folded flight recording: where the ACE bit-cycles of
// each structure came from (per-PC hotspots) and what fate the resident
// state met (per-fate breakdown). Bit-cycle sums over PCs equal the AVF
// tracker's per-structure numerators exactly when no sampling window
// truncated the recording.
type Provenance struct {
	Records int
	Dropped uint64

	// PCs, sorted by total ACE bit-cycles (descending; ties by TID then
	// PC so output is deterministic).
	PCs []PCProfile

	// Fates in avf.Fates order.
	Fates []FateProfile

	TotalACE      [avf.NumStructs]uint64
	TotalResident [avf.NumStructs]uint64
}

// Provenance folds the aggregation into a report. Call after Run.
func (r *Recorder) Provenance() *Provenance {
	p := &Provenance{Records: r.Len(), Dropped: r.Dropped()}
	if r == nil {
		return p
	}
	byPC := make(map[pcID]*PCProfile, len(r.pcs))
	fates := make(map[avf.Fate]*FateProfile, avf.NumFates)
	for _, f := range avf.Fates() {
		fates[f] = &FateProfile{Fate: f, Count: r.fateCount[f]}
	}
	for k, bc := range r.agg {
		id := pcID{k.TID, k.PC}
		prof := byPC[id]
		if prof == nil {
			prof = &PCProfile{TID: k.TID, PC: k.PC}
			if meta := r.pcs[id]; meta != nil {
				prof.Op, prof.Count = meta.op, meta.count
			}
			byPC[id] = prof
		}
		prof.Resident[k.Struct] += bc
		fates[k.Fate].Resident[k.Struct] += bc
		p.TotalResident[k.Struct] += bc
		if k.Fate.ACE() {
			prof.ACE[k.Struct] += bc
			p.TotalACE[k.Struct] += bc
		}
	}
	// PCs that only ever occupied zero-width intervals (e.g. dropped in
	// the front end) have no aggregation entries; surface them anyway so
	// counts reconcile with the record stream.
	for id, meta := range r.pcs {
		if _, ok := byPC[id]; !ok {
			byPC[id] = &PCProfile{TID: id.tid, PC: id.pc, Op: meta.op, Count: meta.count}
		}
	}
	p.PCs = make([]PCProfile, 0, len(byPC))
	for _, prof := range byPC {
		p.PCs = append(p.PCs, *prof)
	}
	sort.Slice(p.PCs, func(i, j int) bool {
		a, b := &p.PCs[i], &p.PCs[j]
		ta, tb := a.totalACE(), b.totalACE()
		if ta != tb {
			return ta > tb
		}
		if a.TID != b.TID {
			return a.TID < b.TID
		}
		return a.PC < b.PC
	})
	for _, f := range avf.Fates() {
		p.Fates = append(p.Fates, *fates[f])
	}
	return p
}

func (p *PCProfile) totalACE() uint64 {
	var sum uint64
	for _, v := range p.ACE {
		sum += v
	}
	return sum
}

// Hotspots returns the top-n PCs by ACE bit-cycles in structure s,
// descending (fewer if the recording holds fewer distinct PCs with any
// ACE residency there).
func (p *Provenance) Hotspots(s avf.Struct, n int) []PCProfile {
	idx := make([]int, 0, len(p.PCs))
	for i := range p.PCs {
		if p.PCs[i].ACE[s] > 0 {
			idx = append(idx, i)
		}
	}
	sort.SliceStable(idx, func(a, b int) bool {
		return p.PCs[idx[a]].ACE[s] > p.PCs[idx[b]].ACE[s]
	})
	if len(idx) > n {
		idx = idx[:n]
	}
	out := make([]PCProfile, len(idx))
	for i, j := range idx {
		out[i] = p.PCs[j]
	}
	return out
}

// FormatHotspots renders the top-n table for structure s as aligned text:
// each row one static instruction with its dynamic count, ACE bit-cycles
// in s, and its share of the structure's total ACE bit-cycles.
func (p *Provenance) FormatHotspots(s avf.Struct, n int) string {
	hs := p.Hotspots(s, n)
	var b strings.Builder
	fmt.Fprintf(&b, "top %d PCs by %s ACE bit-cycles (%d records", len(hs), s, p.Records)
	if p.Dropped > 0 {
		fmt.Fprintf(&b, ", %d dropped by cap", p.Dropped)
	}
	b.WriteString("):\n")
	fmt.Fprintf(&b, "  %-28s %10s %14s %7s\n", "pc", "count", "ace-bitcycles", "share")
	total := p.TotalACE[s]
	for i := range hs {
		h := &hs[i]
		share := 0.0
		if total > 0 {
			share = float64(h.ACE[s]) / float64(total)
		}
		fmt.Fprintf(&b, "  %-28s %10d %14d %6.2f%%\n", h.Label(), h.Count, h.ACE[s], 100*share)
	}
	return b.String()
}

// FormatFates renders the per-fate residency breakdown across the
// uop-tracked pipeline structures as aligned text: the share of each
// structure's recorded occupancy that met each fate.
func (p *Provenance) FormatFates() string {
	structs := RecordStructs
	var b strings.Builder
	b.WriteString("residency by fate (share of recorded occupancy):\n")
	fmt.Fprintf(&b, "  %-12s %10s", "fate", "uops")
	for _, s := range structs {
		fmt.Fprintf(&b, "%10s", s)
	}
	b.WriteByte('\n')
	for i := range p.Fates {
		f := &p.Fates[i]
		fmt.Fprintf(&b, "  %-12s %10d", f.Fate, f.Count)
		for _, s := range structs {
			share := 0.0
			if p.TotalResident[s] > 0 {
				share = float64(f.Resident[s]) / float64(p.TotalResident[s])
			}
			fmt.Fprintf(&b, "%9.2f%%", 100*share)
		}
		b.WriteByte('\n')
	}
	return b.String()
}
