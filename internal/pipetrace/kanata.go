package pipetrace

import (
	"bufio"
	"fmt"
	"io"
	"sort"

	"smtavf/internal/avf"
)

// Kanata stage labels, lane 0. The mapping from the simulator's lifecycle:
// F covers fetch through the front-end pipe, Ds the IQ wait after
// dispatch, Ex issue through writeback, Cm the ROB wait until retirement.
const (
	stageFetch    = "F"
	stageDispatch = "Ds"
	stageExecute  = "Ex"
	stageComplete = "Cm"
)

// kanataEvent is one line of the trace body, scheduled at an absolute
// cycle. Events at equal cycles keep emission order (stable sort), so each
// uop's I/L/S lines stay in sequence.
type kanataEvent struct {
	cycle uint64
	line  string
}

// WriteKanata writes records in the Kanata log format (version 0004), the
// pipeline-viewer format of Konata and the gem5/Onikiri2 ecosystem: one
// instruction lane per uop with stage transitions F → Ds → Ex → Cm and a
// retire line marking commit (type 0) or squash/flush (type 1). Hovering
// an instruction in Konata shows the uop's fate and residency detail.
func WriteKanata(w io.Writer, recs []Record) error {
	order := fetchOrder(recs)

	// Retire ids must be assigned in retirement order.
	retireOrder := make([]int, len(order))
	copy(retireOrder, order)
	sort.SliceStable(retireOrder, func(a, b int) bool {
		ra, rb := &recs[retireOrder[a]], &recs[retireOrder[b]]
		if ra.Retire != rb.Retire {
			return ra.Retire < rb.Retire
		}
		return ra.GSeq < rb.GSeq
	})
	rid := make(map[int]int, len(recs))
	for i, j := range retireOrder {
		rid[j] = i
	}

	events := make([]kanataEvent, 0, 6*len(recs))
	iids := map[int]int{} // per-thread instruction counter
	for uid, j := range order {
		r := &recs[j]
		iid := iids[r.TID]
		iids[r.TID]++
		events = append(events,
			kanataEvent{r.Fetch, fmt.Sprintf("I\t%d\t%d\t%d", uid, iid, r.TID)},
			kanataEvent{r.Fetch, fmt.Sprintf("L\t%d\t0\t0x%x %s", uid, r.PC, r.Op)},
			kanataEvent{r.Fetch, fmt.Sprintf("L\t%d\t1\t%s", uid, kanataDetail(r))},
			kanataEvent{r.Fetch, fmt.Sprintf("S\t%d\t0\t%s", uid, stageFetch)},
		)
		if r.Dispatch >= 0 {
			events = append(events, kanataEvent{uint64(r.Dispatch),
				fmt.Sprintf("S\t%d\t0\t%s", uid, stageDispatch)})
		}
		if r.Issue >= 0 {
			events = append(events, kanataEvent{uint64(r.Issue),
				fmt.Sprintf("S\t%d\t0\t%s", uid, stageExecute)})
		}
		if r.Writeback >= 0 && uint64(r.Writeback) < r.Retire {
			events = append(events, kanataEvent{uint64(r.Writeback),
				fmt.Sprintf("S\t%d\t0\t%s", uid, stageComplete)})
		}
		kind := 0 // commit
		if !r.Committed() {
			kind = 1 // flush
		}
		events = append(events, kanataEvent{r.Retire,
			fmt.Sprintf("R\t%d\t%d\t%d", uid, rid[j], kind)})
	}
	sort.SliceStable(events, func(a, b int) bool { return events[a].cycle < events[b].cycle })

	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "Kanata\t0004\n")
	cur := uint64(0)
	if len(events) > 0 {
		cur = events[0].cycle
	}
	fmt.Fprintf(bw, "C=\t%d\n", cur)
	for _, e := range events {
		if e.cycle != cur {
			fmt.Fprintf(bw, "C\t%d\n", e.cycle-cur)
			cur = e.cycle
		}
		bw.WriteString(e.line)
		bw.WriteByte('\n')
	}
	return bw.Flush()
}

// kanataDetail is the hover text of one uop: identity, fate, and every
// non-empty residency interval.
func kanataDetail(r *Record) string {
	s := fmt.Sprintf("tid=%d gseq=%d seq=%d fate=%s", r.TID, r.GSeq, r.Seq, r.Fate)
	names := [5]string{"iq", "rob", "lsq_tag", "lsq_data", "fu"}
	for i, st := range RecordStructs {
		if sp := r.Span(st); sp.Cycles > 0 {
			s += fmt.Sprintf(" %s=[%d,%d)", names[i], sp.Start, sp.End())
		}
	}
	return s
}

// fetchOrder returns record indices sorted by fetch cycle (GSeq breaks
// ties), the canonical display order of both viewers.
func fetchOrder(recs []Record) []int {
	order := make([]int, len(recs))
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool {
		ra, rb := &recs[order[a]], &recs[order[b]]
		if ra.Fetch != rb.Fetch {
			return ra.Fetch < rb.Fetch
		}
		return ra.GSeq < rb.GSeq
	})
	return order
}

// assertStructsCovered ties RecordStructs to avf.PipelineStructs at
// compile review time: both must enumerate the same five structures.
var _ = func() struct{} {
	want := map[avf.Struct]bool{}
	for _, s := range avf.PipelineStructs() {
		want[s] = true
	}
	for _, s := range RecordStructs {
		if !want[s] {
			panic("pipetrace: RecordStructs diverged from avf.PipelineStructs")
		}
	}
	return struct{}{}
}()
