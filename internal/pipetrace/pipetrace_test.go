package pipetrace

import (
	"bytes"
	"strings"
	"testing"

	"smtavf/internal/avf"
	"smtavf/internal/isa"
	"smtavf/internal/pipeline"
)

// uop builds an in-flight uop with a full lifecycle: fetched at fetch,
// dispatched 4 cycles later, issued after one IQ cycle, one-cycle
// execution, residencies closed as the pipeline would leave them.
func uop(tid int, gseq, seq, pc uint64, class isa.Class, fetch uint64) *pipeline.Uop {
	u := &pipeline.Uop{
		Instruction: isa.Instruction{PC: pc, Class: class},
		TID:         tid,
		GSeq:        gseq,
		FetchedAt:   fetch,
		PhysDest:    -1,
		OldPhysDest: -1,
		LSQIdx:      -1,
	}
	u.Seq = seq
	dispatch := fetch + 4
	u.EnterIQ, u.IQCycles = dispatch, 1
	u.EnterROB, u.ROBCycles = dispatch, 4
	u.Issued, u.IssuedAt, u.FUCycles = true, dispatch+1, 1
	u.Executed, u.ReadyAt = true, dispatch+2
	if class.IsMem() {
		u.LSQIdx = 0
		u.EnterLSQ, u.LSQTagCycles = dispatch, 4
		u.DataAt, u.LSQDataCycles = dispatch+2, 2
	}
	return u
}

func TestNilRecorderIsNoOp(t *testing.T) {
	var r *Recorder
	r.Record(uop(0, 0, 0, 0x100, isa.IntALU, 5), 20, false)
	r.Rebase(10)
	r.SetBits(pipeline.DefaultBits())
	if r.Len() != 0 || r.Dropped() != 0 || r.Records() != nil {
		t.Fatal("nil recorder retained state")
	}
	if r.ACEBitCycles(avf.IQ) != 0 || r.ResidentBitCycles(avf.ROB) != 0 {
		t.Fatal("nil recorder reported bit-cycles")
	}
	p := r.Provenance()
	if p.Records != 0 || len(p.PCs) != 0 {
		t.Fatalf("nil recorder produced provenance: %+v", p)
	}
}

func TestWindowGating(t *testing.T) {
	r := New(Options{WindowStart: 100, WindowEnd: 200})
	for i, fetch := range []uint64{50, 100, 199, 200, 1000} {
		r.Record(uop(0, uint64(i), uint64(i), 0x100, isa.IntALU, fetch), fetch+20, false)
	}
	if r.Len() != 2 {
		t.Fatalf("window [100,200) retained %d records, want 2", r.Len())
	}
	for _, rec := range r.Records() {
		if rec.Fetch < 100 || rec.Fetch >= 200 {
			t.Fatalf("record fetched at %d escaped the window", rec.Fetch)
		}
	}
	// WindowEnd 0 means unbounded.
	r = New(Options{WindowStart: 100})
	r.Record(uop(0, 0, 0, 0x100, isa.IntALU, 1_000_000), 1_000_020, false)
	if r.Len() != 1 {
		t.Fatal("unbounded window dropped a record")
	}
}

// TestWindowBoundaryResidencySplit pins how sampling windows partition
// provenance: gating is by fetch cycle only, so two complementary windows
// split the uop population exactly — counts, fate totals, and per-struct
// bit-cycles all reconcile with an unwindowed recorder — and a uop fetched
// inside a window keeps its *entire* residency even when the spans run
// past WindowEnd (residency is attributed to the fetch window, never
// split at the boundary).
func TestWindowBoundaryResidencySplit(t *testing.T) {
	const boundary = 100
	full := New(Options{})
	lo := New(Options{WindowEnd: boundary})
	hi := New(Options{WindowStart: boundary})

	// Fetches straddling the boundary; the uop fetched at 99 dispatches at
	// 103 so all of its residency lies beyond WindowEnd.
	fetches := []uint64{90, 95, 99, 100, 101, 110}
	for i, fetch := range fetches {
		for _, r := range []*Recorder{full, lo, hi} {
			class := isa.IntALU
			if i%2 == 1 {
				class = isa.Load
			}
			r.Record(uop(0, uint64(i), uint64(i), 0x100+16*fetch, class, fetch), fetch+20, false)
		}
	}

	if lo.Len()+hi.Len() != full.Len() {
		t.Fatalf("windows retain %d+%d records, full recorder %d",
			lo.Len(), hi.Len(), full.Len())
	}
	if lo.Len() != 3 || hi.Len() != 3 {
		t.Fatalf("boundary fetch landed wrong: lo=%d hi=%d, want 3+3", lo.Len(), hi.Len())
	}
	for _, rec := range lo.Records() {
		if rec.Fetch >= boundary {
			t.Fatalf("record fetched at %d leaked into [0,%d)", rec.Fetch, boundary)
		}
	}
	for _, rec := range hi.Records() {
		if rec.Fetch < boundary {
			t.Fatalf("record fetched at %d leaked into [%d,inf)", rec.Fetch, boundary)
		}
	}

	// The 99-fetch uop's residency ([103, ...) entirely past the boundary)
	// must still be aggregated by the low window, in full.
	var pastEnd bool
	for _, rec := range lo.Records() {
		if rec.Fetch == 99 && rec.ROB.Start >= boundary && rec.ROB.Cycles > 0 {
			pastEnd = true
		}
	}
	if !pastEnd {
		t.Fatal("boundary-straddling uop lost its past-WindowEnd residency")
	}

	// Bit-cycles and fate counts partition exactly across the windows.
	for _, s := range RecordStructs {
		if got, want := lo.ACEBitCycles(s)+hi.ACEBitCycles(s), full.ACEBitCycles(s); got != want {
			t.Errorf("%s: windowed ACE bit-cycles sum to %d, full recorder %d", s, got, want)
		}
		if got, want := lo.ResidentBitCycles(s)+hi.ResidentBitCycles(s), full.ResidentBitCycles(s); got != want {
			t.Errorf("%s: windowed resident bit-cycles sum to %d, full recorder %d", s, got, want)
		}
	}
	pf, pl, ph := full.Provenance(), lo.Provenance(), hi.Provenance()
	for i := range pf.Fates {
		if got, want := pl.Fates[i].Count+ph.Fates[i].Count, pf.Fates[i].Count; got != want {
			t.Errorf("%s: windowed fate counts sum to %d, full recorder %d",
				pf.Fates[i].Fate, got, want)
		}
	}
	if got, want := len(pl.PCs)+len(ph.PCs), len(pf.PCs); got != want {
		t.Errorf("windowed PC profiles sum to %d, full recorder %d", got, want)
	}
}

func TestCapKeepsAggregationExact(t *testing.T) {
	r := New(Options{Cap: 1})
	r.Record(uop(0, 0, 0, 0x100, isa.IntALU, 10), 30, false)
	before := r.ACEBitCycles(avf.ROB)
	r.Record(uop(0, 1, 1, 0x104, isa.IntALU, 11), 31, false)
	if r.Len() != 1 {
		t.Fatalf("cap 1 retained %d records", r.Len())
	}
	if r.Dropped() != 1 {
		t.Fatalf("dropped = %d, want 1", r.Dropped())
	}
	if after := r.ACEBitCycles(avf.ROB); after <= before {
		t.Fatalf("dropped record did not aggregate: %d -> %d", before, after)
	}
	prov := r.Provenance()
	if prov.Dropped != 1 || len(prov.PCs) != 2 {
		t.Fatalf("provenance lost the dropped uop: dropped=%d pcs=%d", prov.Dropped, len(prov.PCs))
	}
}

func TestFateMatchesACE(t *testing.T) {
	cases := []struct {
		name     string
		mutate   func(*pipeline.Uop)
		squashed bool
		want     avf.Fate
	}{
		{"committed", func(u *pipeline.Uop) {}, false, avf.FateCommitted},
		{"dead", func(u *pipeline.Uop) { u.Dead = true }, false, avf.FateDead},
		{"nop", func(u *pipeline.Uop) { u.Class = isa.NOP }, false, avf.FateNOP},
		{"wrong-path", func(u *pipeline.Uop) { u.WrongPath = true }, true, avf.FateWrongPath},
		{"squashed", func(u *pipeline.Uop) {}, true, avf.FateSquashed},
		// Precedence: a wrong-path NOP is wrong-path, not NOP.
		{"wrong-path-nop", func(u *pipeline.Uop) { u.WrongPath = true; u.Class = isa.NOP }, true, avf.FateWrongPath},
	}
	for _, tc := range cases {
		u := uop(0, 0, 0, 0x100, isa.IntALU, 10)
		tc.mutate(u)
		fate := u.Fate(tc.squashed)
		if fate != tc.want {
			t.Errorf("%s: fate = %s, want %s", tc.name, fate, tc.want)
		}
		if fate.ACE() != u.ACE(tc.squashed) {
			t.Errorf("%s: Fate.ACE()=%v disagrees with Uop.ACE()=%v",
				tc.name, fate.ACE(), u.ACE(tc.squashed))
		}
		r := New(Options{})
		r.Record(u, 30, tc.squashed)
		if got := r.Records()[0].Fate; got != tc.want {
			t.Errorf("%s: recorded fate = %s, want %s", tc.name, got, tc.want)
		}
		if got := r.Records()[0].ACE; got != fate.ACE() {
			t.Errorf("%s: recorded ACE = %v, want %v", tc.name, got, fate.ACE())
		}
	}
}

func TestRebaseClipsIntervals(t *testing.T) {
	r := New(Options{})
	r.Record(uop(0, 0, 0, 0x100, isa.IntALU, 10), 30, false)
	if r.Len() != 1 {
		t.Fatal("no record before rebase")
	}
	r.Rebase(16)
	if r.Len() != 0 || r.ACEBitCycles(avf.ROB) != 0 {
		t.Fatal("rebase did not clear the recorder")
	}
	// ROB residency [14, 18) clipped at 16 leaves 2 cycles.
	r.Record(uop(0, 1, 1, 0x100, isa.IntALU, 10), 30, false)
	bits := pipeline.DefaultBits()
	if got, want := r.ACEBitCycles(avf.ROB), 2*bits.ROBEntry; got != want {
		t.Fatalf("clipped ROB bit-cycles = %d, want %d", got, want)
	}
	// IQ residency [14, 15) lies entirely before the rebase: dropped.
	if got := r.ACEBitCycles(avf.IQ); got != 0 {
		t.Fatalf("pre-rebase IQ interval contributed %d bit-cycles", got)
	}
}

func TestJSONLRoundTrip(t *testing.T) {
	r := New(Options{})
	r.Record(uop(0, 0, 0, 0x100, isa.IntALU, 10), 18, false)
	r.Record(uop(1, 1, 0, 0x200, isa.Load, 11), 19, false)
	var buf bytes.Buffer
	if err := WriteJSONL(&buf, r.Records()); err != nil {
		t.Fatal(err)
	}
	got, err := ReadJSONL(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 {
		t.Fatalf("read %d records, want 2", len(got))
	}
	for i := range got {
		if got[i] != r.Records()[i] {
			t.Fatalf("record %d: %+v != %+v", i, got[i], r.Records()[i])
		}
	}
	// A foreign schema version is rejected.
	bad := `{"v":99,"tid":0,"fate":"committed"}` + "\n"
	if _, err := ReadJSONL(strings.NewReader(bad)); err == nil {
		t.Fatal("schema v99 accepted")
	}
}

func TestFormatForPath(t *testing.T) {
	cases := map[string]Format{
		"run.kanata":    FormatKanata,
		"run.kan":       FormatKanata,
		"RUN.KANATA.GZ": FormatKanata,
		"run.json":      FormatChrome,
		"run.json.gz":   FormatChrome,
		"run.jsonl":     FormatJSONL,
		"run.jsonl.gz":  FormatJSONL,
		"run":           FormatJSONL,
	}
	for path, want := range cases {
		if got := FormatForPath(path); got != want {
			t.Errorf("FormatForPath(%q) = %s, want %s", path, got, want)
		}
	}
	var buf bytes.Buffer
	if err := Write(&buf, "nope", nil); err == nil {
		t.Fatal("unknown format accepted")
	}
}

func TestProvenanceOrderingAndTotals(t *testing.T) {
	r := New(Options{})
	// Two instances of the hot PC, one of a cold one, one wrong-path uop.
	r.Record(uop(0, 0, 0, 0x100, isa.IntALU, 10), 18, false)
	r.Record(uop(0, 1, 1, 0x100, isa.IntALU, 20), 28, false)
	r.Record(uop(0, 2, 2, 0x104, isa.IntALU, 30), 38, false)
	wp := uop(1, 3, 0, 0x200, isa.Load, 40)
	wp.WrongPath = true
	r.Record(wp, 48, true)

	p := r.Provenance()
	if p.Records != 4 {
		t.Fatalf("records = %d, want 4", p.Records)
	}
	if len(p.PCs) != 3 {
		t.Fatalf("distinct PCs = %d, want 3", len(p.PCs))
	}
	if p.PCs[0].PC != 0x100 || p.PCs[0].Count != 2 {
		t.Fatalf("hottest PC = %+v, want 0x100 with count 2", p.PCs[0])
	}
	for _, s := range RecordStructs {
		var aceSum, resSum uint64
		for i := range p.PCs {
			aceSum += p.PCs[i].ACE[s]
			resSum += p.PCs[i].Resident[s]
		}
		if aceSum != p.TotalACE[s] || aceSum != r.ACEBitCycles(s) {
			t.Errorf("%s: per-PC ACE sum %d, total %d, recorder %d",
				s, aceSum, p.TotalACE[s], r.ACEBitCycles(s))
		}
		if resSum != p.TotalResident[s] || resSum != r.ResidentBitCycles(s) {
			t.Errorf("%s: per-PC resident sum %d, total %d, recorder %d",
				s, resSum, p.TotalResident[s], r.ResidentBitCycles(s))
		}
		var fateSum uint64
		for i := range p.Fates {
			fateSum += p.Fates[i].Resident[s]
		}
		if fateSum != p.TotalResident[s] {
			t.Errorf("%s: per-fate resident sum %d, total %d", s, fateSum, p.TotalResident[s])
		}
	}
	// Only the wrong-path load occupied the LSQ: residency but no ACE.
	if p.TotalACE[avf.LSQTag] != 0 || p.TotalResident[avf.LSQTag] == 0 {
		t.Errorf("wrong-path LSQ accounting: ACE=%d resident=%d",
			p.TotalACE[avf.LSQTag], p.TotalResident[avf.LSQTag])
	}

	hs := p.Hotspots(avf.ROB, 2)
	if len(hs) != 2 || hs[0].ACE[avf.ROB] < hs[1].ACE[avf.ROB] {
		t.Fatalf("Hotspots(ROB, 2) = %+v", hs)
	}
	out := p.FormatHotspots(avf.ROB, 2)
	if !strings.Contains(out, "T0 0x100 ialu") {
		t.Fatalf("hotspot table missing hot PC:\n%s", out)
	}
	fates := p.FormatFates()
	if !strings.Contains(fates, "wrong_path") || !strings.Contains(fates, "committed") {
		t.Fatalf("fate table incomplete:\n%s", fates)
	}
}

func TestProvenanceMixedClassPC(t *testing.T) {
	r := New(Options{})
	r.Record(uop(0, 0, 0, 0x100, isa.Branch, 10), 18, false)
	r.Record(uop(0, 1, 1, 0x100, isa.Load, 20), 28, false)
	p := r.Provenance()
	if len(p.PCs) != 1 || p.PCs[0].Op != "mixed" || p.PCs[0].Count != 2 {
		t.Fatalf("PC hosting two classes = %+v, want op \"mixed\", count 2", p.PCs[0])
	}
}

func TestRecordSpanConsistency(t *testing.T) {
	u := uop(0, 0, 0, 0x100, isa.Store, 10)
	r := New(Options{})
	r.Record(u, 30, false)
	rec := r.Records()[0]
	bits := pipeline.DefaultBits()
	for i, res := range u.Residencies(bits) {
		sp := rec.Span(RecordStructs[i])
		if res.Struct != RecordStructs[i] {
			t.Fatalf("RecordStructs[%d]=%s but Residencies yields %s", i, RecordStructs[i], res.Struct)
		}
		if sp.Start != res.Start || sp.End() != res.End {
			t.Errorf("%s: record span [%d,%d), residency [%d,%d)",
				res.Struct, sp.Start, sp.End(), res.Start, res.End)
		}
	}
	if rec.Dispatch != int64(u.EnterROB) || rec.Issue != int64(u.IssuedAt) || rec.Writeback != int64(u.ReadyAt) {
		t.Fatalf("stage cycles %d/%d/%d do not match uop", rec.Dispatch, rec.Issue, rec.Writeback)
	}
	// A uop dropped in the front end never reached any stage.
	fe := &pipeline.Uop{
		Instruction: isa.Instruction{PC: 0x300, Class: isa.IntALU},
		TID:         0, GSeq: 9, FetchedAt: 50,
		WrongPath: true, PhysDest: -1, OldPhysDest: -1, LSQIdx: -1,
	}
	r.Record(fe, 55, true)
	rec = r.Records()[1]
	if rec.Dispatch != -1 || rec.Issue != -1 || rec.Writeback != -1 {
		t.Fatalf("front-end drop has stage cycles %d/%d/%d, want -1", rec.Dispatch, rec.Issue, rec.Writeback)
	}
}
