// Package digest provides the order-sensitive 64-bit hash used for
// lightweight architectural checkpoints. Shards don't serialize machine
// state at interval boundaries — they reconstruct it deterministically by
// functional warmup — so a checkpoint only needs to *identify* state
// (rename maps, predictor tables, cache/TLB tag arrays) well enough to
// compare two reconstructions. FNV-1a over the state words is cheap,
// allocation-free, and stable across runs.
package digest

const (
	offset64 = 14695981039346656037
	prime64  = 1099511628211
)

// New returns the initial hash value.
func New() uint64 { return offset64 }

// Mix folds one 64-bit word into the hash, byte by byte, FNV-1a style.
func Mix(h, v uint64) uint64 {
	for i := 0; i < 8; i++ {
		h ^= v & 0xff
		h *= prime64
		v >>= 8
	}
	return h
}

// MixBool folds a boolean into the hash.
func MixBool(h uint64, b bool) uint64 {
	if b {
		return Mix(h, 1)
	}
	return Mix(h, 0)
}
