package avf

// Sink observes positioned residency intervals as they are classified.
// The accumulators in Tracker only need (bits × cycles) totals, but
// consumers like statistical fault injection (internal/inject) need to
// know *when* state was resident; call sites that know interval positions
// use AddInterval, which both accumulates and forwards to the sink.
type Sink interface {
	// Interval reports that 'bits' bits of structure s, owned by thread
	// tid, were resident from cycle start (inclusive) to end (exclusive),
	// and whether a particle strike in that window would have corrupted
	// the program (ace).
	Interval(s Struct, tid int, bits, start, end uint64, ace bool)
}

// SetSink attaches a Sink receiving every positioned interval; nil
// detaches. Intervals recorded through the position-less Add are not
// forwarded (no call sites mix the two for the same structure).
func (t *Tracker) SetSink(s Sink) { t.sink = s }

// AddSink attaches an additional Sink alongside any already installed:
// with none it behaves like SetSink; otherwise the existing sink and the
// new one both receive every interval (and, for those implementing
// RebaseObserver, every rebase). Fault injection installs its campaign
// via SetSink and the CPI-stack observer joins via AddSink, so the two
// observe the identical interval stream.
func (t *Tracker) AddSink(s Sink) {
	if t.sink == nil {
		t.sink = s
		return
	}
	t.sink = &teeSink{a: t.sink, b: s}
}

// teeSink fans one interval stream out to two sinks, forwarding rebase
// notifications to whichever children observe them.
type teeSink struct {
	a, b Sink
}

func (t *teeSink) Interval(s Struct, tid int, bits, start, end uint64, ace bool) {
	t.a.Interval(s, tid, bits, start, end, ace)
	t.b.Interval(s, tid, bits, start, end, ace)
}

func (t *teeSink) Rebase(cycle uint64) {
	if o, ok := t.a.(RebaseObserver); ok {
		o.Rebase(cycle)
	}
	if o, ok := t.b.(RebaseObserver); ok {
		o.Rebase(cycle)
	}
}

// AddInterval records a residency interval [start, end) and forwards it to
// the sink, if any. Intervals are clipped against the rebase point (see
// Rebase), so warmup-era residency never pollutes measured statistics.
func (t *Tracker) AddInterval(s Struct, tid int, bits, start, end uint64, ace bool) {
	if start < t.rebase {
		start = t.rebase
	}
	if end <= start {
		return
	}
	t.Add(s, tid, bits, end-start, ace)
	if t.sink != nil {
		t.sink.Interval(s, tid, bits, start, end, ace)
	}
}

// RebaseObserver is the optional half of the sink contract: a Sink that
// also implements it is told when the tracker rebases, so interval
// consumers (fault-injection campaigns, telemetry windows) can drop their
// warmup-era state instead of silently mixing it with measured intervals.
// Sinks that never see a rebase (no warmup configured) need not implement
// it.
type RebaseObserver interface {
	// Rebase reports that accumulation restarted at cycle: intervals
	// observed before it belong to warmup and must not contribute to
	// measured estimates.
	Rebase(cycle uint64)
}

// Rebase zeroes the accumulators and clips all future intervals at cycle:
// the simulator calls it at the end of a warmup period, so that AVFs cover
// only the measurement window. Callers must thereafter compute AVFs over
// cycles-since-rebase. An attached Sink that implements RebaseObserver is
// notified after the accumulators reset.
func (t *Tracker) Rebase(cycle uint64) {
	t.drain() // pre-rebase spans must be zeroed with everything else
	t.rebase = cycle
	for s := 0; s < NumStructs; s++ {
		for tid := range t.ace[s] {
			t.ace[s][tid] = 0
			t.unace[s][tid] = 0
		}
	}
	if o, ok := t.sink.(RebaseObserver); ok {
		o.Rebase(cycle)
	}
}
