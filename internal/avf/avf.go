// Package avf implements the Architectural Vulnerability Factor accounting
// of Mukherjee et al. (MICRO 2003) and Biswas et al. (ISCA 2005), extended
// for SMT as in the paper: every residency interval of processor state is
// classified ACE (a soft-error strike would corrupt the program result) or
// un-ACE, and attributed to the thread that owns it.
//
// The simulator logs bit-cycle products: when state leaves a structure (an
// instruction issues from the IQ, a register is freed, a cache word is
// evicted), its residency interval is added to the ACE or un-ACE
// accumulator of that structure. At the end of a run,
//
//	AVF(s) = ACE-bit-cycles(s) / (bits(s) × total-cycles)
//
// and the per-thread AVF contributions partition the numerator.
package avf

import "fmt"

// Struct identifies an instrumented microarchitecture structure. The set
// matches the paper's Figures 1–8, plus the TLBs the paper's framework
// covers (§3).
type Struct int

// Instrumented structures.
const (
	IQ Struct = iota
	ROB
	FU
	Reg
	LSQData
	LSQTag
	DL1Data
	DL1Tag
	DTLB
	ITLB
	NumStructs = 10
)

var structNames = [NumStructs]string{
	"IQ", "ROB", "FU", "Reg", "LSQ_data", "LSQ_tag",
	"DL1_data", "DL1_tag", "DTLB", "ITLB",
}

func (s Struct) String() string {
	if int(s) < len(structNames) {
		return structNames[s]
	}
	return fmt.Sprintf("struct(%d)", int(s))
}

// ParseStruct inverts Struct.String: it returns the structure with the
// given name, e.g. "IQ" or "LSQ_data" — the name a serialized campaign
// spec or protection map carries.
func ParseStruct(name string) (Struct, error) {
	for s, n := range structNames {
		if n == name {
			return Struct(s), nil
		}
	}
	return 0, fmt.Errorf("avf: unknown structure %q", name)
}

// Structs lists every instrumented structure in presentation order
// (shared pipeline, shared memory, non-shared — the grouping of Figure 1).
func Structs() []Struct {
	return []Struct{IQ, FU, Reg, DL1Data, DL1Tag, ROB, LSQData, LSQTag, DTLB, ITLB}
}

// PipelineStructs lists the structures whose residency is tracked per
// in-flight instruction.
func PipelineStructs() []Struct { return []Struct{IQ, ROB, FU, LSQData, LSQTag} }

// Tracker accumulates ACE and un-ACE bit-cycles per structure and thread.
type Tracker struct {
	threads int
	bits    [NumStructs]uint64 // capacity in bits of each structure
	ace     [NumStructs][]uint64
	unace   [NumStructs][]uint64
	sink    Sink
	rebase  uint64 // intervals are clipped to start no earlier than this

	// pend holds batched occupancy deltas not yet folded into ace/unace:
	// bit-cycle products indexed (s×threads+tid)×2, +1 for ACE. AddSpan
	// accumulates here with no accumulator dispatch and no sink check;
	// every reader drains first, so totals stay exact — uint64 additions
	// commute, making the deferral invisible (docs/performance.md).
	pend []uint64
}

// NewTracker builds a tracker for the given thread count; bits[s] is the
// total bit capacity of structure s (entries × bits per entry).
func NewTracker(threads int, bits [NumStructs]uint64) *Tracker {
	t := &Tracker{threads: threads, bits: bits, pend: make([]uint64, NumStructs*threads*2)}
	for s := 0; s < NumStructs; s++ {
		t.ace[s] = make([]uint64, threads)
		t.unace[s] = make([]uint64, threads)
	}
	return t
}

// AddSpan records 'bits' bits of structure s resident over [start, end)
// into the pending batch: the fast path of the no-sink classification. It
// clips against the rebase point and forms the same bits×cycles product as
// AddInterval, but defers the accumulator dispatch to the next drain.
// Callers must route spans through AddInterval instead whenever a sink is
// attached (HasSink) — the batch carries totals only, never interval
// positions.
func (t *Tracker) AddSpan(s Struct, tid int, bits, start, end uint64, ace bool) {
	if start < t.rebase {
		start = t.rebase
	}
	if end <= start {
		return
	}
	i := (int(s)*t.threads + tid) * 2
	if ace {
		i++
	}
	t.pend[i] += bits * (end - start)
}

// HasSink reports whether a positioned-interval sink is attached. Batched
// call sites check it to fall back to AddInterval, which forwards interval
// positions the batch cannot carry.
func (t *Tracker) HasSink() bool { return t.sink != nil }

// drain folds the pending batched bit-cycles into the accumulators.
// Every reader calls it first, so the batch is never observable.
func (t *Tracker) drain() {
	for s := 0; s < NumStructs; s++ {
		base := s * t.threads * 2
		for tid := 0; tid < t.threads; tid++ {
			i := base + tid*2
			if c := t.pend[i]; c != 0 {
				t.unace[s][tid] += c
				t.pend[i] = 0
			}
			if c := t.pend[i+1]; c != 0 {
				t.ace[s][tid] += c
				t.pend[i+1] = 0
			}
		}
	}
}

// Threads returns the number of thread contexts tracked.
func (t *Tracker) Threads() int { return t.threads }

// Bits returns the bit capacity configured for structure s.
func (t *Tracker) Bits(s Struct) uint64 { return t.bits[s] }

// Add records bits×cycles of residency in structure s owned by thread tid,
// classified as ACE or un-ACE. Residency by state not owned by any thread
// (e.g. idle entries, which are un-ACE by definition) need not be recorded:
// the denominator already covers every bit of every cycle.
func (t *Tracker) Add(s Struct, tid int, bits, cycles uint64, ace bool) {
	if cycles == 0 || bits == 0 {
		return
	}
	bc := bits * cycles
	if ace {
		t.ace[s][tid] += bc
	} else {
		t.unace[s][tid] += bc
	}
}

// AVF returns the architectural vulnerability factor of structure s over a
// run of totalCycles cycles.
func (t *Tracker) AVF(s Struct, totalCycles uint64) float64 {
	t.drain()
	den := float64(t.bits[s]) * float64(totalCycles)
	if den == 0 {
		return 0
	}
	var num uint64
	for _, v := range t.ace[s] {
		num += v
	}
	return float64(num) / den
}

// ThreadAVF returns the AVF contribution of thread tid to structure s; the
// contributions over all threads sum to AVF(s).
func (t *Tracker) ThreadAVF(s Struct, tid int, totalCycles uint64) float64 {
	t.drain()
	den := float64(t.bits[s]) * float64(totalCycles)
	if den == 0 {
		return 0
	}
	return float64(t.ace[s][tid]) / den
}

// Occupancy returns the fraction of (bits × cycles) of structure s holding
// any tracked state, ACE or not — a utilization diagnostic.
func (t *Tracker) Occupancy(s Struct, totalCycles uint64) float64 {
	t.drain()
	den := float64(t.bits[s]) * float64(totalCycles)
	if den == 0 {
		return 0
	}
	var num uint64
	for tid := 0; tid < t.threads; tid++ {
		num += t.ace[s][tid] + t.unace[s][tid]
	}
	return float64(num) / den
}

// ThreadACEBitCycles returns the raw ACE numerator of structure s
// contributed by thread tid (vulnerability feedback for the VAware fetch
// policy).
func (t *Tracker) ThreadACEBitCycles(s Struct, tid int) uint64 {
	t.drain()
	return t.ace[s][tid]
}

// ACEBitCycles returns the raw ACE numerator of structure s (all threads).
func (t *Tracker) ACEBitCycles(s Struct) uint64 {
	t.drain()
	var num uint64
	for _, v := range t.ace[s] {
		num += v
	}
	return num
}

// OccupiedBitCycles returns the raw occupancy numerator of structure s —
// ACE plus un-ACE bit-cycles over all threads. Telemetry windows diff it
// between samples to report per-interval occupancy.
func (t *Tracker) OccupiedBitCycles(s Struct) uint64 {
	t.drain()
	var num uint64
	for tid := 0; tid < t.threads; tid++ {
		num += t.ace[s][tid] + t.unace[s][tid]
	}
	return num
}
