package avf

// Report is an immutable per-structure AVF snapshot extracted from a
// Tracker at the end of a run.
type Report struct {
	Cycles    uint64
	Threads   int
	Total     [NumStructs]float64   // AVF per structure
	PerThread [][NumStructs]float64 // AVF contribution per thread
	Occ       [NumStructs]float64   // occupancy diagnostic
}

// Snapshot extracts a Report covering totalCycles cycles.
func (t *Tracker) Snapshot(totalCycles uint64) Report {
	r := Report{
		Cycles:    totalCycles,
		Threads:   t.threads,
		PerThread: make([][NumStructs]float64, t.threads),
	}
	for s := Struct(0); s < NumStructs; s++ {
		r.Total[s] = t.AVF(s, totalCycles)
		r.Occ[s] = t.Occupancy(s, totalCycles)
		for tid := 0; tid < t.threads; tid++ {
			r.PerThread[tid][s] = t.ThreadAVF(s, tid, totalCycles)
		}
	}
	return r
}

// AVF returns the whole-structure AVF of s.
func (r *Report) AVF(s Struct) float64 { return r.Total[s] }

// ThreadAVF returns thread tid's contribution to the AVF of s.
func (r *Report) ThreadAVF(s Struct, tid int) float64 { return r.PerThread[tid][s] }
