package avf

// Report is an immutable per-structure AVF snapshot extracted from a
// Tracker at the end of a run. Alongside the derived rates it carries the
// raw integer bit-cycle numerators, so reports covering disjoint intervals
// of the same run can be merged exactly (integer addition, rates
// recomputed) rather than approximately (averaging floats).
type Report struct {
	Cycles    uint64
	Threads   int
	Total     [NumStructs]float64   // AVF per structure
	PerThread [][NumStructs]float64 // AVF contribution per thread
	Occ       [NumStructs]float64   // occupancy diagnostic

	// Raw residency numerators behind the rates above. ACE[tid][s] and
	// UnACE[tid][s] are the bit-cycles thread tid held in structure s,
	// classified; their per-structure sums over threads divided by
	// bits(s)×Cycles reproduce Total and Occ exactly.
	ACE   [][NumStructs]uint64
	UnACE [][NumStructs]uint64
}

// Snapshot extracts a Report covering totalCycles cycles.
func (t *Tracker) Snapshot(totalCycles uint64) Report {
	t.drain()
	r := Report{
		Cycles:    totalCycles,
		Threads:   t.threads,
		PerThread: make([][NumStructs]float64, t.threads),
		ACE:       make([][NumStructs]uint64, t.threads),
		UnACE:     make([][NumStructs]uint64, t.threads),
	}
	for s := Struct(0); s < NumStructs; s++ {
		r.Total[s] = t.AVF(s, totalCycles)
		r.Occ[s] = t.Occupancy(s, totalCycles)
		for tid := 0; tid < t.threads; tid++ {
			r.PerThread[tid][s] = t.ThreadAVF(s, tid, totalCycles)
			r.ACE[tid][s] = t.ace[s][tid]
			r.UnACE[tid][s] = t.unace[s][tid]
		}
	}
	return r
}

// AVF returns the whole-structure AVF of s.
func (r *Report) AVF(s Struct) float64 { return r.Total[s] }

// ThreadAVF returns thread tid's contribution to the AVF of s.
func (r *Report) ThreadAVF(s Struct, tid int) float64 { return r.PerThread[tid][s] }

// Merge combines reports covering disjoint, consecutive intervals of one
// logical run into a single report over the concatenated window. The merge
// is exact: raw ACE/un-ACE bit-cycle numerators are summed as integers and
// every rate is recomputed over the summed cycle count, so merging the
// reports of a sharded run introduces no arithmetic error beyond what the
// shards themselves measured. bits[s] must be the structure capacities the
// parts were tracked with (core.StructBits of the shared Config).
//
// Parts recorded without raw numerators (a Report from an older snapshot,
// or one round-tripped through an encoding that dropped them) cannot be
// merged exactly; Merge treats absent numerators as zero.
func Merge(bits [NumStructs]uint64, parts ...Report) Report {
	if len(parts) == 0 {
		return Report{}
	}
	m := Report{
		Threads:   parts[0].Threads,
		PerThread: make([][NumStructs]float64, parts[0].Threads),
		ACE:       make([][NumStructs]uint64, parts[0].Threads),
		UnACE:     make([][NumStructs]uint64, parts[0].Threads),
	}
	for _, p := range parts {
		m.Cycles += p.Cycles
		for tid := 0; tid < m.Threads && tid < len(p.ACE); tid++ {
			for s := Struct(0); s < NumStructs; s++ {
				m.ACE[tid][s] += p.ACE[tid][s]
			}
		}
		for tid := 0; tid < m.Threads && tid < len(p.UnACE); tid++ {
			for s := Struct(0); s < NumStructs; s++ {
				m.UnACE[tid][s] += p.UnACE[tid][s]
			}
		}
	}
	for s := Struct(0); s < NumStructs; s++ {
		den := float64(bits[s]) * float64(m.Cycles)
		if den == 0 {
			continue
		}
		var ace, occ uint64
		for tid := 0; tid < m.Threads; tid++ {
			ace += m.ACE[tid][s]
			occ += m.ACE[tid][s] + m.UnACE[tid][s]
			m.PerThread[tid][s] = float64(m.ACE[tid][s]) / den
		}
		m.Total[s] = float64(ace) / den
		m.Occ[s] = float64(occ) / den
	}
	return m
}
