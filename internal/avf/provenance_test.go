package avf

import "testing"

// TestFatesExhaustive pins the fate table's edges: Fates() enumerates
// exactly NumFates distinct values in declaration order, every one has a
// unique name, and the name table covers the enum exactly — so adding a
// fate without growing fateNames (or vice versa) fails here rather than
// rendering "fate(5)" in a report.
func TestFatesExhaustive(t *testing.T) {
	fates := Fates()
	if len(fates) != int(NumFates) {
		t.Fatalf("Fates() lists %d fates, NumFates = %d", len(fates), NumFates)
	}
	seen := map[string]bool{}
	for i, f := range fates {
		if f != Fate(i) {
			t.Errorf("Fates()[%d] = %v, want declaration order", i, f)
		}
		name := f.String()
		if name == "" || seen[name] {
			t.Errorf("fate %d has duplicate or empty name %q", i, name)
		}
		seen[name] = true
	}
}

// TestFateStringOutOfRange checks values past the table render as a
// diagnostic rather than panicking or aliasing a real fate.
func TestFateStringOutOfRange(t *testing.T) {
	if got, want := NumFates.String(), "fate(5)"; got != want {
		t.Errorf("NumFates.String() = %q, want %q", got, want)
	}
	if got, want := Fate(200).String(), "fate(200)"; got != want {
		t.Errorf("Fate(200).String() = %q, want %q", got, want)
	}
}

// TestFateACE pins the single-ACE-fate invariant the provenance split
// relies on: committed residency is architecturally required, every other
// fate is masked.
func TestFateACE(t *testing.T) {
	for _, f := range Fates() {
		if got, want := f.ACE(), f == FateCommitted; got != want {
			t.Errorf("%s.ACE() = %v, want %v", f, got, want)
		}
	}
}

// TestFateTextRoundTrip checks MarshalText/UnmarshalText invert each
// other for every fate, and that unknown names are rejected.
func TestFateTextRoundTrip(t *testing.T) {
	for _, f := range Fates() {
		b, err := f.MarshalText()
		if err != nil {
			t.Fatalf("%s: MarshalText: %v", f, err)
		}
		var back Fate
		if err := back.UnmarshalText(b); err != nil {
			t.Fatalf("%s: UnmarshalText(%q): %v", f, b, err)
		}
		if back != f {
			t.Errorf("round trip changed %s into %s", f, back)
		}
	}
	var f Fate
	if err := f.UnmarshalText([]byte("transcended")); err == nil {
		t.Error("unknown fate name accepted")
	}
}
