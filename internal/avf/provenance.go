package avf

import "fmt"

// Fate is the retrospective reason behind a residency interval's ACE/un-ACE
// classification. The tracker itself only needs the boolean, but provenance
// consumers (the pipeline flight recorder of internal/pipetrace) attribute
// every bit-cycle to the reason it was — or was not — architecturally
// required, which is what turns an AVF number into an actionable signal.
type Fate uint8

// Uop fates, in presentation order. Exactly one fate is ACE.
const (
	// FateCommitted: the uop committed and its result is consumed — every
	// residency bit-cycle is ACE.
	FateCommitted Fate = iota
	// FateDead: the uop committed but its result is never sourced
	// (dynamically dead) — un-ACE.
	FateDead
	// FateNOP: a committed NOP carries no architectural state — un-ACE.
	FateNOP
	// FateWrongPath: fetched down a mispredicted path and squashed — un-ACE.
	FateWrongPath
	// FateSquashed: correct-path work undone by a pipeline squash (e.g. the
	// FLUSH policy) and later refetched — un-ACE.
	FateSquashed
	// NumFates is the number of distinct fates.
	NumFates
)

var fateNames = [NumFates]string{
	"committed", "dead", "nop", "wrong_path", "squashed",
}

func (f Fate) String() string {
	if int(f) < len(fateNames) {
		return fateNames[f]
	}
	return fmt.Sprintf("fate(%d)", uint8(f))
}

// ACE reports whether residency under this fate is architecturally required
// for correct execution.
func (f Fate) ACE() bool { return f == FateCommitted }

// Fates lists every fate in presentation order.
func Fates() []Fate {
	return []Fate{FateCommitted, FateDead, FateNOP, FateWrongPath, FateSquashed}
}

// MarshalText renders the fate name, so JSON records carry "committed"
// rather than an enum ordinal that drifts silently.
func (f Fate) MarshalText() ([]byte, error) { return []byte(f.String()), nil }

// UnmarshalText parses a fate name produced by MarshalText.
func (f *Fate) UnmarshalText(b []byte) error {
	for i, n := range fateNames {
		if n == string(b) {
			*f = Fate(i)
			return nil
		}
	}
	return fmt.Errorf("avf: unknown fate %q", b)
}

// ProvKey attributes bit-cycles of one structure to the static instruction
// and fate that produced them — the aggregation key of the AVF provenance
// report. TID disambiguates workloads whose threads share an address space
// (replayed trace files); synthetic workloads already separate PCs per
// thread.
type ProvKey struct {
	Struct Struct
	TID    int
	PC     uint64
	Fate   Fate
}
