package avf

import (
	"math"
	"testing"
	"testing/quick"
)

func bits(iq uint64) [NumStructs]uint64 {
	var b [NumStructs]uint64
	for i := range b {
		b[i] = 1000
	}
	b[IQ] = iq
	return b
}

func TestAVFBasic(t *testing.T) {
	trk := NewTracker(2, bits(1000))
	// 100 bits resident for 50 of 100 cycles, ACE: AVF = 5000/100000 = 5%.
	trk.Add(IQ, 0, 100, 50, true)
	if got := trk.AVF(IQ, 100); math.Abs(got-0.05) > 1e-12 {
		t.Fatalf("AVF = %v, want 0.05", got)
	}
}

func TestUnACEDoesNotCountTowardAVF(t *testing.T) {
	trk := NewTracker(1, bits(1000))
	trk.Add(IQ, 0, 100, 50, false)
	if got := trk.AVF(IQ, 100); got != 0 {
		t.Fatalf("un-ACE residency leaked into AVF: %v", got)
	}
	if got := trk.Occupancy(IQ, 100); math.Abs(got-0.05) > 1e-12 {
		t.Fatalf("occupancy = %v, want 0.05", got)
	}
}

func TestThreadAVFPartitionsTotal(t *testing.T) {
	f := func(adds []struct {
		TID    uint8
		Bits   uint16
		Cycles uint16
		ACE    bool
	}) bool {
		trk := NewTracker(4, bits(1<<20))
		for _, a := range adds {
			trk.Add(IQ, int(a.TID)%4, uint64(a.Bits), uint64(a.Cycles), a.ACE)
		}
		total := trk.AVF(IQ, 1000)
		sum := 0.0
		for tid := 0; tid < 4; tid++ {
			sum += trk.ThreadAVF(IQ, tid, 1000)
		}
		return math.Abs(total-sum) < 1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestZeroCyclesOrBitsIgnored(t *testing.T) {
	trk := NewTracker(1, bits(1000))
	trk.Add(IQ, 0, 0, 100, true)
	trk.Add(IQ, 0, 100, 0, true)
	if trk.ACEBitCycles(IQ) != 0 {
		t.Fatal("zero-sized residency recorded")
	}
}

func TestAVFZeroDenominator(t *testing.T) {
	trk := NewTracker(1, [NumStructs]uint64{})
	trk.Add(IQ, 0, 10, 10, true)
	if trk.AVF(IQ, 0) != 0 || trk.AVF(IQ, 100) != 0 {
		t.Fatal("zero denominator must yield AVF 0")
	}
}

func TestSnapshot(t *testing.T) {
	trk := NewTracker(2, bits(1000))
	trk.Add(IQ, 0, 100, 30, true)
	trk.Add(IQ, 1, 100, 20, true)
	trk.Add(IQ, 1, 100, 50, false)
	r := trk.Snapshot(100)
	if r.Cycles != 100 || r.Threads != 2 {
		t.Fatal("snapshot metadata wrong")
	}
	if math.Abs(r.AVF(IQ)-0.05) > 1e-12 {
		t.Fatalf("snapshot AVF = %v", r.AVF(IQ))
	}
	if math.Abs(r.ThreadAVF(IQ, 0)-0.03) > 1e-12 {
		t.Fatalf("thread 0 AVF = %v", r.ThreadAVF(IQ, 0))
	}
	if math.Abs(r.ThreadAVF(IQ, 1)-0.02) > 1e-12 {
		t.Fatalf("thread 1 AVF = %v", r.ThreadAVF(IQ, 1))
	}
	if math.Abs(r.Occ[IQ]-0.10) > 1e-12 {
		t.Fatalf("occupancy = %v", r.Occ[IQ])
	}
}

func TestStructNames(t *testing.T) {
	want := map[Struct]string{
		IQ: "IQ", ROB: "ROB", FU: "FU", Reg: "Reg",
		LSQData: "LSQ_data", LSQTag: "LSQ_tag",
		DL1Data: "DL1_data", DL1Tag: "DL1_tag",
		DTLB: "DTLB", ITLB: "ITLB",
	}
	for s, n := range want {
		if s.String() != n {
			t.Errorf("%d.String() = %q, want %q", s, s.String(), n)
		}
	}
	if Struct(99).String() != "struct(99)" {
		t.Error("unknown struct name wrong")
	}
}

func TestStructsOrderComplete(t *testing.T) {
	ss := Structs()
	if len(ss) != NumStructs {
		t.Fatalf("Structs() returned %d of %d", len(ss), NumStructs)
	}
	seen := map[Struct]bool{}
	for _, s := range ss {
		if seen[s] {
			t.Fatalf("duplicate %v", s)
		}
		seen[s] = true
	}
}

func TestOccupancyBoundsAVF(t *testing.T) {
	trk := NewTracker(1, bits(1000))
	trk.Add(IQ, 0, 100, 30, true)
	trk.Add(IQ, 0, 100, 20, false)
	if trk.AVF(IQ, 100) > trk.Occupancy(IQ, 100) {
		t.Fatal("AVF exceeds occupancy")
	}
}

// rebaseRecorder is a Sink that also observes rebases.
type rebaseRecorder struct {
	intervals int
	rebases   []uint64
}

func (r *rebaseRecorder) Interval(s Struct, tid int, bits, start, end uint64, ace bool) {
	r.intervals++
}
func (r *rebaseRecorder) Rebase(cycle uint64) { r.rebases = append(r.rebases, cycle) }

func TestRebaseNotifiesObserverSink(t *testing.T) {
	trk := NewTracker(1, bits(64))
	rec := &rebaseRecorder{}
	trk.SetSink(rec)
	trk.AddInterval(IQ, 0, 4, 0, 10, true)
	trk.Rebase(10)
	trk.AddInterval(IQ, 0, 4, 10, 20, true)
	if rec.intervals != 2 {
		t.Fatalf("sink saw %d intervals, want 2", rec.intervals)
	}
	if len(rec.rebases) != 1 || rec.rebases[0] != 10 {
		t.Fatalf("sink saw rebases %v, want [10]", rec.rebases)
	}
	// Accumulators only hold the post-rebase interval.
	if got := trk.ACEBitCycles(IQ); got != 4*10 {
		t.Fatalf("post-rebase ACE bit-cycles = %d, want 40", got)
	}
}

type plainSink struct{ intervals int }

func (p *plainSink) Interval(s Struct, tid int, bits, start, end uint64, ace bool) {
	p.intervals++
}

func TestRebaseToleratesPlainSink(t *testing.T) {
	trk := NewTracker(1, bits(64))
	trk.SetSink(&plainSink{})
	trk.AddInterval(IQ, 0, 4, 0, 10, true)
	trk.Rebase(10) // must not panic on a Sink without Rebase
	if got := trk.ACEBitCycles(IQ); got != 0 {
		t.Fatalf("accumulators not zeroed: %d", got)
	}
}

func TestOccupiedBitCycles(t *testing.T) {
	trk := NewTracker(2, bits(64))
	trk.Add(IQ, 0, 4, 10, true)
	trk.Add(IQ, 1, 4, 5, false)
	if got := trk.OccupiedBitCycles(IQ); got != 4*10+4*5 {
		t.Fatalf("occupied bit-cycles = %d, want 60", got)
	}
	if got := trk.ACEBitCycles(IQ); got != 4*10 {
		t.Fatalf("ACE bit-cycles = %d, want 40", got)
	}
}
