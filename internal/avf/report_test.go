package avf

import (
	"math"
	"testing"
)

func TestSnapshotReport(t *testing.T) {
	var bits [NumStructs]uint64
	bits[IQ] = 100
	bits[ROB] = 200
	trk := NewTracker(2, bits)
	const cycles = 50
	// Thread 0: 20 ACE bits for the whole run on the IQ; thread 1 half
	// that. ROB holds un-ACE state only.
	trk.Add(IQ, 0, 20, cycles, true)
	trk.Add(IQ, 1, 10, cycles, true)
	trk.Add(IQ, 1, 30, cycles, false)
	trk.Add(ROB, 0, 40, cycles, false)

	r := trk.Snapshot(cycles)
	if r.Cycles != cycles || r.Threads != 2 {
		t.Fatalf("snapshot meta = %d cycles / %d threads", r.Cycles, r.Threads)
	}
	if got, want := r.AVF(IQ), 0.30; math.Abs(got-want) > 1e-12 {
		t.Errorf("IQ AVF = %v, want %v", got, want)
	}
	if got := r.AVF(ROB); got != 0 {
		t.Errorf("ROB AVF = %v, want 0 (un-ACE residency only)", got)
	}
	if got, want := r.Occ[IQ], 0.60; math.Abs(got-want) > 1e-12 {
		t.Errorf("IQ occupancy = %v, want %v", got, want)
	}
	if got, want := r.Occ[ROB], 0.20; math.Abs(got-want) > 1e-12 {
		t.Errorf("ROB occupancy = %v, want %v", got, want)
	}
	if got, want := r.ThreadAVF(IQ, 0), 0.20; math.Abs(got-want) > 1e-12 {
		t.Errorf("thread 0 IQ AVF = %v, want %v", got, want)
	}
	if got, want := r.ThreadAVF(IQ, 1), 0.10; math.Abs(got-want) > 1e-12 {
		t.Errorf("thread 1 IQ AVF = %v, want %v", got, want)
	}
	// Per-thread contributions reconstruct the total.
	for s := Struct(0); s < NumStructs; s++ {
		sum := 0.0
		for tid := 0; tid < r.Threads; tid++ {
			sum += r.ThreadAVF(s, tid)
		}
		if math.Abs(sum-r.AVF(s)) > 1e-12 {
			t.Errorf("%v: thread contributions sum to %v, total is %v", s, sum, r.AVF(s))
		}
	}
	// The snapshot is a copy: later tracker activity must not leak in.
	trk.Add(IQ, 0, 50, cycles, true)
	if got := r.AVF(IQ); math.Abs(got-0.30) > 1e-12 {
		t.Errorf("snapshot mutated after tracker update: %v", got)
	}
}

func TestSnapshotZeroCycles(t *testing.T) {
	var bits [NumStructs]uint64
	bits[IQ] = 10
	trk := NewTracker(1, bits)
	trk.Add(IQ, 0, 5, 10, true)
	r := trk.Snapshot(0)
	for s := Struct(0); s < NumStructs; s++ {
		if r.AVF(s) != 0 || r.Occ[s] != 0 {
			t.Errorf("%v: zero-cycle snapshot should be all zeros", s)
		}
	}
}
