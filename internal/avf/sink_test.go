package avf

import "testing"

// recSink records every interval and rebase it observes.
type recSink struct {
	intervals int
	bitCycles uint64
	rebases   []uint64
}

func (r *recSink) Interval(s Struct, tid int, bits, start, end uint64, ace bool) {
	r.intervals++
	r.bitCycles += bits * (end - start)
}

func (r *recSink) Rebase(cycle uint64) { r.rebases = append(r.rebases, cycle) }

// rebaseBlindSink implements only Sink, not RebaseObserver.
type rebaseBlindSink struct{ intervals int }

func (p *rebaseBlindSink) Interval(Struct, int, uint64, uint64, uint64, bool) { p.intervals++ }

// TestAddSinkTees pins the fan-out contract the CPI-stack observer
// relies on: AddSink alone behaves like SetSink, AddSink on top of an
// existing sink delivers every interval and rebase to both, and a child
// without RebaseObserver is skipped rather than crashed into.
func TestAddSinkTees(t *testing.T) {
	var bits [NumStructs]uint64
	bits[IQ] = 100
	trk := NewTracker(1, bits)

	first := &recSink{}
	trk.AddSink(first) // no existing sink: plain attach
	trk.AddInterval(IQ, 0, 10, 0, 5, true)
	if first.intervals != 1 || first.bitCycles != 50 {
		t.Fatalf("single sink saw %d intervals / %d bit-cycles", first.intervals, first.bitCycles)
	}

	second := &recSink{}
	trk.AddSink(second) // tee on top
	trk.AddInterval(IQ, 0, 10, 5, 10, false)
	if first.intervals != 2 || second.intervals != 1 {
		t.Fatalf("tee delivery: first saw %d, second saw %d", first.intervals, second.intervals)
	}
	if second.bitCycles != 50 {
		t.Fatalf("second sink bit-cycles %d, want 50", second.bitCycles)
	}

	// Rebase reaches both children, and the tracker clips later
	// intervals identically for both.
	trk.Rebase(20)
	for _, s := range []*recSink{first, second} {
		if len(s.rebases) != 1 || s.rebases[0] != 20 {
			t.Fatalf("rebase notification missing: %v", s.rebases)
		}
	}
	trk.AddInterval(IQ, 0, 10, 15, 25, true) // clipped to [20, 25)
	if first.bitCycles != 100+50 || second.bitCycles != 50+50 {
		t.Fatalf("clipped interval delivery: %d / %d", first.bitCycles, second.bitCycles)
	}

	// A third, rebase-blind sink joins; rebasing must not panic and the
	// observers still hear it.
	blind := &rebaseBlindSink{}
	trk.AddSink(blind)
	trk.Rebase(30)
	if len(first.rebases) != 2 || len(second.rebases) != 2 {
		t.Fatalf("nested tee dropped a rebase: %v / %v", first.rebases, second.rebases)
	}
	trk.AddInterval(IQ, 0, 1, 30, 31, true)
	if blind.intervals != 1 || first.intervals != 4 || second.intervals != 3 {
		t.Fatalf("nested tee delivery: %d / %d / %d", first.intervals, second.intervals, blind.intervals)
	}
}
