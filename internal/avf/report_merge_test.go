package avf

import (
	"math"
	"math/rand"
	"testing"
)

// mergeBits is a small capacity vector for the merge tests; structures
// past ROB are left at 0 to exercise the zero-denominator skip.
func mergeBits() [NumStructs]uint64 {
	var bits [NumStructs]uint64
	bits[IQ] = 100
	bits[ROB] = 200
	return bits
}

// partReport builds a Report with the given numerators spread across
// threads, as a shard snapshot would carry them.
func partReport(cycles uint64, ace, unace [][NumStructs]uint64) Report {
	return Report{
		Cycles:    cycles,
		Threads:   len(ace),
		PerThread: make([][NumStructs]float64, len(ace)),
		ACE:       ace,
		UnACE:     unace,
	}
}

func TestMergeNoParts(t *testing.T) {
	m := Merge(mergeBits())
	if m.Cycles != 0 || m.Threads != 0 || m.ACE != nil {
		t.Fatalf("empty merge not zero: %+v", m)
	}
}

// TestMergeEmptyParts pins that all-zero parts merge into an all-zero
// report without dividing by the zero cycle count.
func TestMergeEmptyParts(t *testing.T) {
	empty := partReport(0, make([][NumStructs]uint64, 2), make([][NumStructs]uint64, 2))
	m := Merge(mergeBits(), empty, empty)
	if m.Cycles != 0 || m.Threads != 2 {
		t.Fatalf("merge meta = %d cycles / %d threads", m.Cycles, m.Threads)
	}
	for s := Struct(0); s < NumStructs; s++ {
		if m.AVF(s) != 0 || math.IsNaN(m.AVF(s)) || m.Occ[s] != 0 {
			t.Fatalf("%v: zero-cycle merge produced %v / %v", s, m.AVF(s), m.Occ[s])
		}
	}
}

// TestMergeMismatchedThreadCounts pins the clamp: the first part fixes
// the thread count, later parts with more threads lose the excess and
// parts with fewer contribute zero — neither panics.
func TestMergeMismatchedThreadCounts(t *testing.T) {
	two := make([][NumStructs]uint64, 2)
	two[0][IQ] = 100
	two[1][IQ] = 300
	three := make([][NumStructs]uint64, 3)
	three[0][IQ] = 50
	three[2][IQ] = 999 // dropped: merged report has 2 threads
	m := Merge(mergeBits(),
		partReport(10, two, make([][NumStructs]uint64, 2)),
		partReport(10, three, make([][NumStructs]uint64, 3)),
	)
	if m.Threads != 2 || len(m.PerThread) != 2 {
		t.Fatalf("merged thread count %d, want 2", m.Threads)
	}
	if m.ACE[0][IQ] != 150 || m.ACE[1][IQ] != 300 {
		t.Fatalf("merged ACE = %d/%d, want 150/300", m.ACE[0][IQ], m.ACE[1][IQ])
	}
	// The other direction: a short part contributes zero to thread 1.
	one := make([][NumStructs]uint64, 1)
	one[0][IQ] = 40
	m = Merge(mergeBits(),
		partReport(10, two, make([][NumStructs]uint64, 2)),
		partReport(10, one, make([][NumStructs]uint64, 1)),
	)
	if m.ACE[0][IQ] != 140 || m.ACE[1][IQ] != 300 {
		t.Fatalf("short part merged wrong: %d/%d, want 140/300", m.ACE[0][IQ], m.ACE[1][IQ])
	}
}

// TestMergeMissingNumerators pins the documented fallback: a part
// without raw numerators (nil ACE/UnACE) merges as zero contribution
// but still extends the cycle window, diluting the rates.
func TestMergeMissingNumerators(t *testing.T) {
	full := make([][NumStructs]uint64, 1)
	full[0][IQ] = 1000 // 100 bits x 10 cycles fully ACE
	m := Merge(mergeBits(),
		partReport(10, full, make([][NumStructs]uint64, 1)),
		Report{Cycles: 10, Threads: 1},
	)
	if got, want := m.AVF(IQ), 0.5; math.Abs(got-want) > 1e-12 {
		t.Fatalf("diluted AVF = %v, want %v", got, want)
	}
}

// FuzzMergeInvariants drives Merge with random shard shapes and checks
// the structural invariants the sharded runner relies on: no panic, no
// NaN, cycles additive, per-thread contributions summing to the total,
// occupancy bounding AVF, and order independence.
func FuzzMergeInvariants(f *testing.F) {
	f.Add(uint64(1), uint8(2), uint8(2), uint32(100), uint32(50))
	f.Add(uint64(7), uint8(1), uint8(4), uint32(0), uint32(9))
	f.Add(uint64(42), uint8(3), uint8(0), uint32(1), uint32(1))
	f.Fuzz(func(t *testing.T, seed uint64, threadsA, threadsB uint8, cyclesA, cyclesB uint32) {
		nA, nB := int(threadsA%5), int(threadsB%5)
		rng := rand.New(rand.NewSource(int64(seed)))
		bits := mergeBits()
		part := func(n int, cycles uint32) Report {
			ace := make([][NumStructs]uint64, n)
			unace := make([][NumStructs]uint64, n)
			for tid := 0; tid < n; tid++ {
				for s := Struct(0); s < NumStructs; s++ {
					if bits[s] == 0 {
						continue
					}
					// Keep ace+unace within bits*cycles so occupancy stays <= 1.
					budget := bits[s] * uint64(cycles)
					a := uint64(rng.Int63n(int64(budget + 1)))
					ace[tid][s] = a / uint64(n+1)
					unace[tid][s] = (budget - a) / uint64(n+1)
				}
			}
			return partReport(uint64(cycles), ace, unace)
		}
		a, b := part(nA, cyclesA), part(nB, cyclesB)
		m := Merge(bits, a, b)
		if m.Cycles != uint64(cyclesA)+uint64(cyclesB) {
			t.Fatalf("cycles %d, want %d", m.Cycles, uint64(cyclesA)+uint64(cyclesB))
		}
		if m.Threads != nA || len(m.PerThread) != nA {
			t.Fatalf("threads %d, want first part's %d", m.Threads, nA)
		}
		for s := Struct(0); s < NumStructs; s++ {
			total, occ := m.AVF(s), m.Occ[s]
			if math.IsNaN(total) || math.IsNaN(occ) {
				t.Fatalf("%v: NaN in merged report", s)
			}
			if total < 0 || occ < 0 || total > occ+1e-12 || occ > 1+1e-9 {
				t.Fatalf("%v: AVF %v / occupancy %v out of bounds", s, total, occ)
			}
			sum := 0.0
			for tid := 0; tid < m.Threads; tid++ {
				sum += m.ThreadAVF(s, tid)
			}
			if math.Abs(sum-total) > 1e-12 {
				t.Fatalf("%v: thread contributions %v != total %v", s, sum, total)
			}
		}
		// Merging in the other order must agree wherever both orders
		// track the thread (the clamp is set by the first part).
		rev := Merge(bits, b, a)
		if rev.Cycles != m.Cycles {
			t.Fatalf("order changed cycles: %d vs %d", rev.Cycles, m.Cycles)
		}
		for tid := 0; tid < min(nA, nB); tid++ {
			for s := Struct(0); s < NumStructs; s++ {
				if rev.ACE[tid][s] != m.ACE[tid][s] {
					t.Fatalf("thread %d %v: order changed ACE %d vs %d",
						tid, s, rev.ACE[tid][s], m.ACE[tid][s])
				}
			}
		}
	})
}
