package cliopts

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"testing"
)

var updateGolden = flag.Bool("update", false, "rewrite testdata golden files")

// registerAll binds every flag group this package exports into one
// FlagSet — the superset a command could expose. The golden test renders
// it, so a help-string edit, rename, or new flag shows up as a reviewed
// diff in testdata/flags.golden instead of silently drifting between
// smtsim, avfsweep, avfreport, and avfd.
func registerAll(fs *flag.FlagSet) {
	var (
		l   Log
		tel Telemetry
		inj Inject
		pr  Propagation
		cs  CPIStack
		pt  PipeTrace
		pf  Profile
		o   Obs
		sh  Shards
		svc Service
	)
	l.Register(fs)
	tel.Register(fs)
	tel.RegisterDir(fs)
	inj.Register(fs)
	pr.Register(fs)
	cs.Register(fs)
	pt.Register(fs)
	pf.Register(fs)
	o.Register(fs)
	sh.Register(fs)
	svc.Register(fs)
}

func TestFlagHelpGolden(t *testing.T) {
	fs := flag.NewFlagSet("smtavf", flag.ContinueOnError)
	registerAll(fs)
	var buf bytes.Buffer
	fs.SetOutput(&buf)
	fs.PrintDefaults()

	golden := filepath.Join("testdata", "flags.golden")
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Errorf("rendered flag help drifted from %s (re-bless with go test -run TestFlagHelpGolden -update):\ngot:\n%s\nwant:\n%s",
			golden, buf.Bytes(), want)
	}
}

// TestHelpTableComplete fails when a help-table entry goes stale: every
// key in helpText must correspond to a registered flag, so renaming a
// flag cannot leave its old string behind.
func TestHelpTableComplete(t *testing.T) {
	fs := flag.NewFlagSet("smtavf", flag.ContinueOnError)
	registerAll(fs)
	registered := map[string]bool{}
	fs.VisitAll(func(f *flag.Flag) {
		registered[f.Name] = true
		if f.Usage != helpText[f.Name] {
			t.Errorf("flag -%s bypasses the help table", f.Name)
		}
	})
	for name := range helpText {
		if !registered[name] {
			t.Errorf("helpText[%q] matches no registered flag", name)
		}
	}
}

// TestHelpPanicsOnUnknownFlag pins the fail-fast contract for new flags.
func TestHelpPanicsOnUnknownFlag(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("help() returned for an unregistered flag name")
		}
	}()
	help("no-such-flag")
}

func TestService(t *testing.T) {
	var svc Service
	parse(t, svc.Register, "-addr", "127.0.0.1:0", "-dir", "state", "-workers", "2")
	if svc.Addr != "127.0.0.1:0" || svc.Dir != "state" || svc.Workers != 2 {
		t.Fatalf("parsed %+v", svc)
	}
	if err := svc.Validate(); err != nil {
		t.Fatal(err)
	}
	var def Service
	parse(t, def.Register)
	if err := def.Validate(); err != nil {
		t.Fatalf("defaults invalid: %v", err)
	}
	for _, bad := range []Service{
		{Addr: "", Dir: "d", Workers: 1},
		{Addr: ":0", Dir: "", Workers: 1},
		{Addr: ":0", Dir: "d", Workers: 0},
	} {
		if err := bad.Validate(); err == nil {
			t.Errorf("Validate accepted %+v", bad)
		}
	}
}
