package cliopts

import (
	"log/slog"
	"os"
	"os/signal"
	"sync"
	"syscall"
)

// Shutdown coordinates graceful exit for the commands: exporters and
// other closers registered with Defer run exactly once — LIFO, like
// defer — whether the process finishes normally (Finish) or catches
// SIGINT/SIGTERM (Install's handler). The interrupt path exists so a ^C
// during a long campaign flushes the telemetry/pipetrace/propagation
// streams (instead of truncating a gzip member mid-block) and writes the
// run ledger's manifest with status "interrupted" before exiting.
type Shutdown struct {
	mu      sync.Mutex
	closers []namedCloser
	final   func(status string)
	done    bool
}

type namedCloser struct {
	name string
	fn   func() error
}

// Defer registers a named closer to run at shutdown, after every closer
// registered later (LIFO). Errors are logged, not fatal: shutdown keeps
// draining the remaining closers.
func (s *Shutdown) Defer(name string, fn func() error) {
	if s == nil || fn == nil {
		return
	}
	s.mu.Lock()
	s.closers = append(s.closers, namedCloser{name, fn})
	s.mu.Unlock()
}

// Final registers the last rites: a function receiving the exit status
// ("ok" or "interrupted") after every closer has run — the run-manifest
// append, which must see the artifact files already flushed.
func (s *Shutdown) Final(fn func(status string)) {
	if s == nil {
		return
	}
	s.mu.Lock()
	s.final = fn
	s.mu.Unlock()
}

// run drains the closers (LIFO) and the final hook, exactly once.
func (s *Shutdown) run(status string, logger *slog.Logger) {
	s.mu.Lock()
	if s.done {
		s.mu.Unlock()
		return
	}
	s.done = true
	closers := s.closers
	s.closers = nil
	final := s.final
	s.mu.Unlock()

	for i := len(closers) - 1; i >= 0; i-- {
		if err := closers[i].fn(); err != nil && logger != nil {
			logger.Error("shutdown close", "what", closers[i].name, "err", err)
		}
	}
	if final != nil {
		final(status)
	}
}

// Done reports whether shutdown has already run — via Finish or the
// signal handler. A server's main goroutine checks it when its listener
// closes: if the signal path is mid-exit, returning from main would race
// it to the process exit code.
func (s *Shutdown) Done() bool {
	if s == nil {
		return false
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.done
}

// Install starts the signal handler: on SIGINT or SIGTERM the registered
// closers are flushed, the final hook runs with status "interrupted", and
// the process exits 130 (the shell convention for death-by-SIGINT). Call
// once, before the long-running work begins.
func (s *Shutdown) Install(logger *slog.Logger) {
	if s == nil {
		return
	}
	ch := make(chan os.Signal, 1)
	signal.Notify(ch, syscall.SIGINT, syscall.SIGTERM)
	go func() {
		sig := <-ch
		if logger != nil {
			logger.Warn("interrupted, flushing exporters", "signal", sig.String())
		}
		s.run("interrupted", logger)
		os.Exit(130)
	}()
}

// Finish runs the closers and the final hook with the given status
// ("ok", or "error" when the run failed) on the normal exit path. Calling
// it after the signal handler already ran is a no-op, and vice versa.
func (s *Shutdown) Finish(status string, logger *slog.Logger) {
	if s == nil {
		return
	}
	s.run(status, logger)
}
