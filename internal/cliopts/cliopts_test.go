package cliopts

import (
	"bytes"
	"flag"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"smtavf/internal/obs"
)

func parse(t *testing.T, register func(*flag.FlagSet), args ...string) {
	t.Helper()
	fs := flag.NewFlagSet("test", flag.ContinueOnError)
	register(fs)
	if err := fs.Parse(args); err != nil {
		t.Fatal(err)
	}
}

func TestLog(t *testing.T) {
	var l Log
	parse(t, l.Register, "-log-level", "debug", "-log-json")
	var buf bytes.Buffer
	logger, err := l.Logger(&buf)
	if err != nil {
		t.Fatal(err)
	}
	logger.Debug("hello")
	if out := buf.String(); !strings.Contains(out, `"msg":"hello"`) {
		t.Fatalf("JSON debug log missing: %q", out)
	}

	l = Log{}
	parse(t, l.Register)
	if _, err := (&Log{Level: "loud"}).Logger(&buf); err == nil {
		t.Fatal("bad level accepted")
	}
}

func TestTelemetry(t *testing.T) {
	var tel Telemetry
	parse(t, func(fs *flag.FlagSet) {
		tel.Register(fs)
		tel.RegisterDir(fs)
	}, "-telemetry-dir", "series/", "-telemetry-window", "5000")
	if !tel.Enabled() {
		t.Fatal("telemetry-dir did not enable telemetry")
	}
	if err := tel.Validate(); err != nil {
		t.Fatal(err)
	}
	if (&Telemetry{}).Enabled() {
		t.Fatal("empty group reports enabled")
	}
	if err := (&Telemetry{Path: "x.jsonl", Window: 0}).Validate(); err == nil {
		t.Fatal("zero window accepted")
	}
}

func TestInject(t *testing.T) {
	var inj Inject
	parse(t, inj.Register, "-inject", "-inject-every", "4", "-inject-ci", "0.02")
	if !inj.On || inj.Every != 4 || inj.CI != 0.02 {
		t.Fatalf("parsed %+v", inj)
	}
	if err := inj.Validate(); err != nil {
		t.Fatal(err)
	}
	if got := inj.CampaignSeed(7); got != 7 {
		t.Fatalf("unset seed resolved to %d, want run seed 7", got)
	}
	inj.Seed = 9
	if got := inj.CampaignSeed(7); got != 9 {
		t.Fatalf("explicit seed resolved to %d, want 9", got)
	}
	for _, bad := range []Inject{
		{On: true, Every: 0, CI: 0.01},
		{Every: 1, CI: 0},
		{Every: 1, CI: 2},
		{Every: 1, CI: 0.01, Strikes: -1},
	} {
		if err := bad.Validate(); err == nil {
			t.Errorf("Validate accepted %+v", bad)
		}
	}

	// RegisterStop exposes only the stopping rule.
	fs := flag.NewFlagSet("stop", flag.ContinueOnError)
	var stop Inject
	stop.RegisterStop(fs)
	if fs.Lookup("inject") != nil || fs.Lookup("inject-ci") == nil {
		t.Fatal("RegisterStop registered the wrong flags")
	}
}

func TestPipeTrace(t *testing.T) {
	var pt PipeTrace
	parse(t, pt.Register, "-pipetrace", "run.kanata", "-pipetrace-window", "100:200")
	if !pt.Enabled() {
		t.Fatal("path did not enable recording")
	}
	opt, err := pt.Options()
	if err != nil {
		t.Fatal(err)
	}
	if opt.WindowStart != 100 || opt.WindowEnd != 200 {
		t.Fatalf("window %d:%d", opt.WindowStart, opt.WindowEnd)
	}
	if _, err := (&PipeTrace{Format: "bogus"}).Options(); err == nil {
		t.Fatal("unknown format accepted")
	}
	if _, _, err := ParseWindow("200:100"); err == nil {
		t.Fatal("inverted window accepted")
	}
	if start, end, err := ParseWindow("5000:"); err != nil || start != 5000 || end != 0 {
		t.Fatalf("open window parsed as %d:%d (%v)", start, end, err)
	}
}

func TestShards(t *testing.T) {
	var sh Shards
	parse(t, sh.Register, "-shards", "4", "-shard-workers", "2")
	if !sh.Sharded() || sh.N != 4 || sh.Workers != 2 {
		t.Fatalf("parsed %+v", sh)
	}
	if err := sh.Validate(); err != nil {
		t.Fatal(err)
	}
	var def Shards
	parse(t, def.Register)
	if def.Sharded() {
		t.Fatal("default is sharded")
	}
	if err := (&Shards{N: 0}).Validate(); err == nil {
		t.Fatal("zero shards accepted")
	}
	if err := (&Shards{N: 2, Workers: -1}).Validate(); err == nil {
		t.Fatal("negative workers accepted")
	}
}

func TestObs(t *testing.T) {
	var o Obs
	parse(t, o.Register, "-obs-ledger", "runs.jsonl", "-obs-heartbeat", "2s", "-obs-timeline", "tl.json")
	if !o.Enabled() {
		t.Fatal("ledger+timeline did not enable observability")
	}
	if o.HeartbeatInterval() != 2*time.Second {
		t.Fatalf("heartbeat = %v", o.HeartbeatInterval())
	}
	if err := o.Validate(true); err != nil {
		t.Fatal(err)
	}
	// The timeline needs a sharded run.
	if err := o.Validate(false); err == nil {
		t.Fatal("-obs-timeline accepted on a monolithic run")
	}

	// Defaults: heartbeats on at the default interval, nothing else.
	o = Obs{}
	parse(t, o.Register)
	if o.Enabled() {
		t.Fatal("default group reports enabled")
	}
	if o.Heartbeat != obs.DefaultHeartbeat {
		t.Fatalf("default heartbeat = %v", o.Heartbeat)
	}
	if l, err := o.OpenLedger(); err != nil || l != nil {
		t.Fatalf("no -obs-ledger: got %v, %v", l, err)
	}

	// -obs-heartbeat 0 disables heartbeat logging (negative option value).
	o = Obs{}
	parse(t, o.Register, "-obs-heartbeat", "0")
	if o.HeartbeatInterval() >= 0 {
		t.Fatalf("0 heartbeat maps to %v, want negative", o.HeartbeatInterval())
	}
	if err := o.Validate(false); err != nil {
		t.Fatal(err)
	}

	// Gzip ledgers are append-hostile and rejected up front.
	if err := (&Obs{Ledger: "runs.jsonl.gz"}).Validate(false); err == nil {
		t.Fatal("gzip ledger accepted")
	}
	if _, err := (&Obs{Ledger: ""}).OpenLedger(); err != nil {
		t.Fatal(err)
	}
	l, err := (&Obs{Ledger: filepath.Join(t.TempDir(), "runs.jsonl")}).OpenLedger()
	if err != nil || l == nil {
		t.Fatalf("OpenLedger: %v, %v", l, err)
	}
}

func TestShutdown(t *testing.T) {
	var s Shutdown
	var order []string
	s.Defer("first", func() error { order = append(order, "first"); return nil })
	s.Defer("second", func() error { order = append(order, "second"); return nil })
	var status string
	s.Final(func(st string) { status = st; order = append(order, "final") })
	s.Finish("ok", nil)
	if strings.Join(order, ",") != "second,first,final" {
		t.Fatalf("shutdown order = %v, want LIFO then final", order)
	}
	if status != "ok" {
		t.Fatalf("final status = %q", status)
	}

	// Running again is a no-op: the signal path and the normal path race,
	// exactly one wins.
	order = nil
	s.Finish("interrupted", nil)
	if len(order) != 0 {
		t.Fatalf("second Finish re-ran closers: %v", order)
	}

	// Done flips exactly when shutdown runs.
	if !s.Done() {
		t.Fatal("Done false after Finish")
	}
	if (&Shutdown{}).Done() {
		t.Fatal("fresh Shutdown reports Done")
	}

	// Nil receivers and nil closers are safe.
	var nilS *Shutdown
	nilS.Defer("x", func() error { return nil })
	nilS.Final(func(string) {})
	nilS.Finish("ok", nil)
	(&Shutdown{}).Defer("nil fn", nil)
	if nilS.Done() {
		t.Fatal("nil Shutdown reports Done")
	}
}
