// Package cliopts centralizes the flag groups shared by the smtavf
// commands (smtsim, avfsweep, avfreport): structured logging, telemetry,
// fault injection, pipeline tracing, and sharded execution. Each group is
// a struct with one Register method binding its flags to a FlagSet and one
// validation path, so every command spells the same option the same way
// (the flags drifted apart when each command owned its own copies:
// avfreport said -crossval-ci for what smtsim called -inject-ci).
package cliopts

import (
	"flag"
	"fmt"
	"io"
	"log/slog"
	"os"
	"runtime"
	"runtime/pprof"
	"strings"
	"time"

	"smtavf/internal/cpistack"
	"smtavf/internal/jsonlio"
	"smtavf/internal/obs"
	"smtavf/internal/pipetrace"
	"smtavf/internal/telemetry"
)

// Log is the structured-logging flag group (-log-level, -log-json).
type Log struct {
	Level string
	JSON  bool
}

// Register binds the logging flags.
func (l *Log) Register(fs *flag.FlagSet) {
	fs.StringVar(&l.Level, "log-level", "info", help("log-level"))
	fs.BoolVar(&l.JSON, "log-json", false, help("log-json"))
}

// Logger validates the level and builds the logger writing to w.
func (l *Log) Logger(w io.Writer) (*slog.Logger, error) {
	level, err := telemetry.ParseLevel(l.Level)
	if err != nil {
		return nil, err
	}
	return telemetry.NewLogger(w, level, l.JSON), nil
}

// Telemetry is the live-metrics flag group (-telemetry,
// -telemetry-window, -debug-addr, and optionally -telemetry-dir).
type Telemetry struct {
	Path      string
	Dir       string
	Window    uint64
	DebugAddr string
}

// Register binds the telemetry flags every command shares.
func (t *Telemetry) Register(fs *flag.FlagSet) {
	fs.StringVar(&t.Path, "telemetry", "", help("telemetry"))
	fs.Uint64Var(&t.Window, "telemetry-window", telemetry.DefaultWindowCycles, help("telemetry-window"))
	fs.StringVar(&t.DebugAddr, "debug-addr", "", help("debug-addr"))
}

// RegisterDir additionally binds -telemetry-dir (one series file per run),
// for commands that execute many runs.
func (t *Telemetry) RegisterDir(fs *flag.FlagSet) {
	fs.StringVar(&t.Dir, "telemetry-dir", "", help("telemetry-dir"))
}

// Enabled reports whether any telemetry sink was requested.
func (t *Telemetry) Enabled() bool {
	return t.Path != "" || t.Dir != "" || t.DebugAddr != ""
}

// Validate rejects meaningless settings.
func (t *Telemetry) Validate() error {
	if t.Enabled() && t.Window == 0 {
		return fmt.Errorf("-telemetry-window must be positive")
	}
	return nil
}

// Inject is the fault-injection flag group (-inject, -inject-every,
// -inject-seed, -inject-ci, -inject-strikes, -inject-report).
type Inject struct {
	On      bool
	Every   uint64
	Seed    uint64
	CI      float64
	Strikes int
	Report  string
}

// Register binds the full group, for commands that own the campaign.
func (i *Inject) Register(fs *flag.FlagSet) {
	fs.BoolVar(&i.On, "inject", false, help("inject"))
	fs.Uint64Var(&i.Every, "inject-every", 1, help("inject-every"))
	fs.Uint64Var(&i.Seed, "inject-seed", 0, help("inject-seed"))
	i.RegisterStop(fs)
}

// RegisterStop binds only the stopping-rule and report flags, for
// commands whose campaigns are implied by another flag (avfreport's
// -crossval fanout).
func (i *Inject) RegisterStop(fs *flag.FlagSet) {
	fs.Float64Var(&i.CI, "inject-ci", 0.01, help("inject-ci"))
	fs.IntVar(&i.Strikes, "inject-strikes", 1<<20, help("inject-strikes"))
	fs.StringVar(&i.Report, "inject-report", "", help("inject-report"))
}

// CampaignSeed resolves the campaign seed: -inject-seed, or the run seed
// when unset.
func (i *Inject) CampaignSeed(runSeed uint64) uint64 {
	if i.Seed != 0 {
		return i.Seed
	}
	return runSeed
}

// Validate rejects meaningless settings.
func (i *Inject) Validate() error {
	if i.On && i.Every == 0 {
		return fmt.Errorf("-inject-every must be positive")
	}
	if i.CI <= 0 || i.CI >= 1 {
		return fmt.Errorf("-inject-ci must be in (0, 1), got %v", i.CI)
	}
	if i.Strikes < 0 {
		return fmt.Errorf("-inject-strikes must be non-negative, got %d", i.Strikes)
	}
	return nil
}

// Propagation is the fault-propagation atlas flag group (-propagation,
// -propagation-out, -propagation-strikes, -propagation-top).
type Propagation struct {
	On      bool
	Out     string
	Strikes int
	Top     int
}

// Register binds the propagation flags.
func (p *Propagation) Register(fs *flag.FlagSet) {
	fs.BoolVar(&p.On, "propagation", false, help("propagation"))
	fs.StringVar(&p.Out, "propagation-out", "", help("propagation-out"))
	fs.IntVar(&p.Strikes, "propagation-strikes", 256, help("propagation-strikes"))
	fs.IntVar(&p.Top, "propagation-top", 10, help("propagation-top"))
}

// Enabled reports whether the atlas was requested.
func (p *Propagation) Enabled() bool { return p.On || p.Out != "" }

// Validate rejects meaningless settings.
func (p *Propagation) Validate() error {
	if p.Enabled() && p.Strikes <= 0 {
		return fmt.Errorf("-propagation-strikes must be positive, got %d", p.Strikes)
	}
	return nil
}

// CPIStack is the explainability flag group (-cpistack, -cpistack-out,
// -cpistack-window).
type CPIStack struct {
	On     bool
	Out    string
	Window uint64
}

// Register binds the CPI-stack flags.
func (c *CPIStack) Register(fs *flag.FlagSet) {
	fs.BoolVar(&c.On, "cpistack", false, help("cpistack"))
	fs.StringVar(&c.Out, "cpistack-out", "", help("cpistack-out"))
	fs.Uint64Var(&c.Window, "cpistack-window", cpistack.DefaultWindowCycles, help("cpistack-window"))
}

// Enabled reports whether CPI-stack accounting was requested.
func (c *CPIStack) Enabled() bool { return c.On || c.Out != "" }

// Validate rejects meaningless settings.
func (c *CPIStack) Validate() error {
	if c.Enabled() && c.Window == 0 {
		return fmt.Errorf("-cpistack-window must be positive")
	}
	return nil
}

// Options builds the observer options from the flags.
func (c *CPIStack) Options() cpistack.Options {
	return cpistack.Options{WindowCycles: c.Window}
}

// PipeTrace is the pipeline flight-recorder flag group (-pipetrace,
// -pipetrace-format, -pipetrace-window, -pipetrace-top).
type PipeTrace struct {
	Path   string
	Format string
	Window string
	Top    int
}

// Register binds the pipetrace flags.
func (p *PipeTrace) Register(fs *flag.FlagSet) {
	fs.StringVar(&p.Path, "pipetrace", "", help("pipetrace"))
	fs.StringVar(&p.Format, "pipetrace-format", "", help("pipetrace-format"))
	fs.StringVar(&p.Window, "pipetrace-window", "", help("pipetrace-window"))
	fs.IntVar(&p.Top, "pipetrace-top", 0, help("pipetrace-top"))
}

// Enabled reports whether recording was requested.
func (p *PipeTrace) Enabled() bool { return p.Path != "" || p.Top > 0 }

// Options validates the group and builds the recorder options.
func (p *PipeTrace) Options() (pipetrace.Options, error) {
	var opt pipetrace.Options
	if p.Window != "" {
		var err error
		opt.WindowStart, opt.WindowEnd, err = ParseWindow(p.Window)
		if err != nil {
			return opt, err
		}
	}
	if _, err := p.ExportFormat(); err != nil {
		return opt, err
	}
	return opt, nil
}

// ExportFormat validates -pipetrace-format; empty means choose by file
// extension.
func (p *PipeTrace) ExportFormat() (pipetrace.Format, error) {
	f := pipetrace.Format(p.Format)
	switch f {
	case "", pipetrace.FormatKanata, pipetrace.FormatChrome, pipetrace.FormatJSONL:
		return f, nil
	}
	return "", fmt.Errorf("unknown -pipetrace-format %q (kanata, chrome, or jsonl)", p.Format)
}

// ParseWindow parses a "START:END" cycle window; END may be omitted or 0
// for an unbounded window.
func ParseWindow(s string) (start, end uint64, err error) {
	a, b, found := strings.Cut(s, ":")
	if a != "" {
		if _, err = fmt.Sscanf(a, "%d", &start); err != nil {
			return 0, 0, fmt.Errorf("bad -pipetrace-window %q: %w", s, err)
		}
	}
	if found && b != "" {
		if _, err = fmt.Sscanf(b, "%d", &end); err != nil {
			return 0, 0, fmt.Errorf("bad -pipetrace-window %q: %w", s, err)
		}
		if end != 0 && end <= start {
			return 0, 0, fmt.Errorf("bad -pipetrace-window %q: end must exceed start", s)
		}
	}
	return start, end, nil
}

// Profile is the profiling flag group (-cpuprofile, -memprofile), shared
// by every command so a hot-loop regression can be profiled in the field
// without editing code (docs/performance.md).
type Profile struct {
	CPUPath string
	MemPath string
	cpuFile *os.File
}

// Register binds the profiling flags.
func (p *Profile) Register(fs *flag.FlagSet) {
	fs.StringVar(&p.CPUPath, "cpuprofile", "", help("cpuprofile"))
	fs.StringVar(&p.MemPath, "memprofile", "", help("memprofile"))
}

// Start begins CPU profiling when -cpuprofile was given. Pair it with a
// deferred Stop, which flushes both profiles.
func (p *Profile) Start() error {
	if p.CPUPath == "" {
		return nil
	}
	f, err := os.Create(p.CPUPath)
	if err != nil {
		return fmt.Errorf("-cpuprofile: %w", err)
	}
	if err := pprof.StartCPUProfile(f); err != nil {
		f.Close()
		return fmt.Errorf("-cpuprofile: %w", err)
	}
	p.cpuFile = f
	return nil
}

// Stop ends CPU profiling and writes the allocation profile, if either was
// requested. Safe to call when Start did nothing.
func (p *Profile) Stop() error {
	var first error
	if p.cpuFile != nil {
		pprof.StopCPUProfile()
		if err := p.cpuFile.Close(); err != nil {
			first = fmt.Errorf("-cpuprofile: %w", err)
		}
		p.cpuFile = nil
	}
	if p.MemPath != "" {
		f, err := os.Create(p.MemPath)
		if err == nil {
			runtime.GC() // settle live-heap numbers before the snapshot
			err = pprof.Lookup("allocs").WriteTo(f, 0)
			if cerr := f.Close(); err == nil {
				err = cerr
			}
		}
		if err != nil && first == nil {
			first = fmt.Errorf("-memprofile: %w", err)
		}
	}
	return first
}

// Obs is the campaign-observability flag group (-obs-ledger,
// -obs-heartbeat, -obs-timeline).
type Obs struct {
	Ledger    string
	Heartbeat time.Duration
	Timeline  string
}

// Register binds the observability flags.
func (o *Obs) Register(fs *flag.FlagSet) {
	fs.StringVar(&o.Ledger, "obs-ledger", "", help("obs-ledger"))
	fs.DurationVar(&o.Heartbeat, "obs-heartbeat", obs.DefaultHeartbeat, help("obs-heartbeat"))
	fs.StringVar(&o.Timeline, "obs-timeline", "", help("obs-timeline"))
}

// Enabled reports whether any observability sink beyond the default
// heartbeats was requested.
func (o *Obs) Enabled() bool { return o.Ledger != "" || o.Timeline != "" }

// HeartbeatInterval maps the flag onto obs.ProgressOptions.Heartbeat:
// the flag's 0 means "disable", which the option spells as negative.
func (o *Obs) HeartbeatInterval() time.Duration {
	if o.Heartbeat == 0 {
		return -1
	}
	return o.Heartbeat
}

// Validate rejects meaningless settings; sharded reports whether the
// command resolved to a sharded run.
func (o *Obs) Validate(sharded bool) error {
	if o.Heartbeat < 0 {
		return fmt.Errorf("-obs-heartbeat must be non-negative, got %v", o.Heartbeat)
	}
	if o.Ledger != "" && jsonlio.IsGzipPath(o.Ledger) {
		return fmt.Errorf("-obs-ledger %q: gzip ledgers cannot be appended to; use an uncompressed .jsonl path", o.Ledger)
	}
	if o.Timeline != "" && !sharded {
		return fmt.Errorf("-obs-timeline requires a sharded run (-shards > 1)")
	}
	return nil
}

// OpenLedger opens the run ledger, or returns nil when -obs-ledger was
// not given (a nil ledger drops appends, so call sites need no branch).
func (o *Obs) OpenLedger() (*obs.Ledger, error) {
	if o.Ledger == "" {
		return nil, nil
	}
	return obs.OpenLedger(o.Ledger)
}

// Service is the campaign-service flag group (-addr, -dir, -workers),
// used by avfd. Dir doubles as the resume root: campaigns checkpointed
// there by a previous process are picked up on start.
type Service struct {
	Addr    string
	Dir     string
	Workers int
}

// Register binds the service flags.
func (s *Service) Register(fs *flag.FlagSet) {
	fs.StringVar(&s.Addr, "addr", ":8080", help("addr"))
	fs.StringVar(&s.Dir, "dir", "avfd-data", help("dir"))
	fs.IntVar(&s.Workers, "workers", 1, help("workers"))
}

// Validate rejects meaningless settings.
func (s *Service) Validate() error {
	if s.Addr == "" {
		return fmt.Errorf("-addr must not be empty")
	}
	if s.Dir == "" {
		return fmt.Errorf("-dir must not be empty")
	}
	if s.Workers < 1 {
		return fmt.Errorf("-workers must be at least 1, got %d", s.Workers)
	}
	return nil
}

// Shards is the parallel-execution flag group (-shards, -shard-workers).
type Shards struct {
	N       int
	Workers int
}

// Register binds the sharding flags.
func (s *Shards) Register(fs *flag.FlagSet) {
	fs.IntVar(&s.N, "shards", 1, help("shards"))
	fs.IntVar(&s.Workers, "shard-workers", 0, help("shard-workers"))
}

// Sharded reports whether a parallel run was requested.
func (s *Shards) Sharded() bool { return s.N > 1 }

// Validate rejects meaningless settings.
func (s *Shards) Validate() error {
	if s.N < 1 {
		return fmt.Errorf("-shards must be at least 1, got %d", s.N)
	}
	if s.Workers < 0 {
		return fmt.Errorf("-shard-workers must be non-negative, got %d", s.Workers)
	}
	return nil
}
