package cliopts

// helpText is the single source of truth for every flag's help string.
// Each Register method looks its strings up here rather than inlining
// them, so two commands registering the same group render identical
// usage text — TestFlagHelpGolden pins the rendered output and fails
// when a flag is added without a table entry or renamed in only one
// place (the drift this package exists to prevent).
var helpText = map[string]string{
	// Log
	"log-level": "structured log level on stderr: debug, info, warn, error",
	"log-json":  "emit structured logs as JSON instead of text",

	// Telemetry
	"telemetry":        "write a cycle-windowed telemetry series to this file (JSONL; .csv for CSV, .gz compresses)",
	"telemetry-window": "telemetry sampling window in cycles",
	"telemetry-dir":    "record one cycle-windowed JSONL series per run into this directory",
	"debug-addr":       "serve /telemetry, /debug/vars and /debug/pprof on this address during the run (e.g. :6060)",

	// Inject
	"inject":         "attach a statistical fault-injection campaign and cross-validate the AVF report against it",
	"inject-every":   "campaign sample-grid pitch in cycles (1 = every cycle)",
	"inject-seed":    "campaign seed (0 = use -seed)",
	"inject-ci":      "target 99% confidence-interval half-width per structure; striking stops early once every structure is this tight",
	"inject-strikes": "strike cap per structure (0 = CI-only stopping)",
	"inject-report":  "write the cross-validation report as JSONL to this file (.gz compresses)",

	// Propagation
	"propagation":         "taint-track sampled strikes through the recorded dataflow and print the fault-propagation atlas (requires -inject)",
	"propagation-out":     "write the per-strike propagation traces as JSONL to this file (.gz compresses; enables -propagation)",
	"propagation-strikes": "strikes sampled into each structure for taint tracking",
	"propagation-top":     "root-cause instructions shown in the atlas tables",

	// CPIStack
	"cpistack":        "attribute every thread-cycle to a CPI-stack component and decompose structure occupancy by ACE fate; prints the stack and occupancy tables",
	"cpistack-out":    "write the windowed CPI-stack/occupancy series to this file (.csv for CSV, .json for Chrome trace_event counters, else JSONL, .gz compresses; enables -cpistack)",
	"cpistack-window": "CPI-stack accounting window in cycles",

	// PipeTrace
	"pipetrace":        "record per-uop pipeline lifecycles to this file (.kanata/.kan Kanata, .json Chrome trace_event, else JSONL; .gz compresses)",
	"pipetrace-format": "force the -pipetrace format: kanata, chrome, or jsonl (default: by extension)",
	"pipetrace-window": "record only uops fetched in this cycle window, as START:END (END 0 or absent = unbounded)",
	"pipetrace-top":    "print the top-N per-PC AVF provenance hotspots per pipeline structure (enables recording)",

	// Profile
	"cpuprofile": "write a CPU profile to this file (inspect with go tool pprof)",
	"memprofile": "write an allocation profile to this file at exit (inspect with go tool pprof)",

	// Obs
	"obs-ledger":    "append one run-manifest record per run to this JSONL ledger (list with avfreport -runs)",
	"obs-heartbeat": "minimum wall-clock gap between progress heartbeat log lines (0 disables them)",
	"obs-timeline":  "write the sharded run's worker-utilization timeline as Chrome trace_event JSON to this file (requires -shards > 1)",

	// Shards
	"shards":        "split the run into this many deterministic intervals per thread and simulate them in parallel (1 = monolithic; see docs/sharding.md)",
	"shard-workers": "worker goroutines for -shards (0 = GOMAXPROCS)",

	// Service (avfd)
	"addr":    "HTTP listen address for the campaign-service API (e.g. :8080 or 127.0.0.1:0)",
	"dir":     "campaign state directory: submitted specs, per-point result checkpoints, cancel markers; interrupted campaigns found here resume on start",
	"workers": "campaign points executed concurrently (each point may parallelize internally via its spec's shards)",
}

// help returns the canonical help string for a flag, panicking on a
// missing entry so a new flag cannot ship without one (the panic fires
// in every command's TestMain-adjacent flag registration, and in this
// package's golden test).
func help(name string) string {
	s, ok := helpText[name]
	if !ok {
		panic("cliopts: no help text registered for flag -" + name)
	}
	return s
}
