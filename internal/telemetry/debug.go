package telemetry

import (
	"encoding/json"
	"expvar"
	"fmt"
	"log/slog"
	"net"
	"net/http"
	"net/http/pprof"
	"sync"
	"sync/atomic"

	"smtavf/internal/obs"
)

// debugCollector is the collector the process-wide expvar export reads.
// expvar.Publish is global and panics on duplicate names, so the variable
// is published once and indirects through this pointer; starting a new
// debug server (a second run in the same process, or tests) just swaps
// the target.
var debugCollector atomic.Pointer[Collector]

var publishOnce sync.Once

func publishExpvars() {
	publishOnce.Do(func() {
		expvar.Publish("smtavf", expvar.Func(func() any {
			return debugCollector.Load().Snapshot()
		}))
	})
}

// DebugServer is the optional live-inspection HTTP server for long
// unattended runs (-debug-addr). It serves:
//
//	/debug/pprof/    the standard Go profiler endpoints
//	/debug/vars      expvar, including the "smtavf" live snapshot
//	/debug/metrics   the obs registry as OpenMetrics/Prometheus text
//	/debug/progress  the live campaign progress as JSON
//	/telemetry       the Collector's JSON Snapshot
//	/telemetry/ring  the retained window series as a JSON array
//
// The server outlives individual runs: a sweep driver starts it once and
// retargets it at each point's fresh collector with SetCollector.
type DebugServer struct {
	srv  *http.Server
	lis  net.Listener
	col  atomic.Pointer[Collector]
	reg  atomic.Pointer[obs.Registry]
	prog atomic.Pointer[obs.Progress]
}

func (d *DebugServer) collector() *Collector { return d.col.Load() }

// SetCollector points the server (and the process-wide expvar snapshot)
// at a new collector — one sweep point ended and the next began. The
// scraped registry follows the collector's unless SetRegistry overrode it.
func (d *DebugServer) SetCollector(c *Collector) {
	d.col.Store(c)
	debugCollector.Store(c)
	if r := c.Registry(); r != nil {
		d.reg.Store(r)
	}
	if p := c.Progress(); p != nil {
		d.prog.Store(p)
	}
}

// SetRegistry points /debug/metrics at a specific registry — sharded runs
// have no collector-owned registry, so the driver attaches the
// Observability's directly.
func (d *DebugServer) SetRegistry(r *obs.Registry) {
	if r != nil {
		d.reg.Store(r)
	}
}

// SetProgress points /debug/progress at a specific progress tracker.
func (d *DebugServer) SetProgress(p *obs.Progress) {
	if p != nil {
		d.prog.Store(p)
	}
}

// ServeDebug starts the debug server on addr (e.g. ":6060") reading live
// state from c, and returns once the listener is bound. The server runs
// until Close; serve errors after Close are swallowed.
func ServeDebug(addr string, c *Collector, logger *slog.Logger) (*DebugServer, error) {
	if c == nil {
		return nil, fmt.Errorf("telemetry: debug server needs a collector")
	}
	publishExpvars()
	d := &DebugServer{}
	d.SetCollector(c)

	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/telemetry", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, d.collector().Snapshot())
	})
	mux.HandleFunc("/telemetry/ring", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, d.collector().Ring())
	})
	mux.HandleFunc("/debug/metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", obs.ContentTypeOpenMetrics)
		if err := d.reg.Load().WriteOpenMetrics(w); err != nil && logger != nil {
			logger.Error("metrics scrape", "err", err)
		}
	})
	mux.HandleFunc("/debug/progress", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, d.prog.Load().Snapshot())
	})
	mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/" {
			http.NotFound(w, r)
			return
		}
		fmt.Fprint(w, "smtavf debug server\n\n"+
			"/telemetry       live snapshot (last window, cumulative AVF, counters)\n"+
			"/telemetry/ring  retained window series\n"+
			"/debug/metrics   OpenMetrics exposition of the campaign registry\n"+
			"/debug/progress  live campaign progress (phase, fraction, ETA)\n"+
			"/debug/vars      expvar\n"+
			"/debug/pprof/    profiler\n")
	})

	lis, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("telemetry: debug server: %w", err)
	}
	d.srv = &http.Server{Handler: mux}
	d.lis = lis
	go func() {
		err := d.srv.Serve(lis)
		if err != nil && err != http.ErrServerClosed && logger != nil {
			logger.Error("debug server", "err", err)
		}
	}()
	if logger != nil {
		logger.Info("debug server listening", "addr", d.Addr())
	}
	return d, nil
}

// Addr returns the bound listen address (useful with ":0").
func (d *DebugServer) Addr() string { return d.lis.Addr().String() }

// Close stops the server immediately.
func (d *DebugServer) Close() error { return d.srv.Close() }

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(v); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
	}
}
