// Package telemetry turns the simulator from a black box into an
// observable service: a cycle-windowed sampling layer that emits
// per-window time-series of the quantities the paper reports only as
// end-of-run aggregates — per-structure AVF, occupancy, per-thread IPC,
// fetch/flush/stall counters.
//
// The design follows the collector/exporter split of production metrics
// agents: a Collector owns a registry of live counters and gauges that
// hot-path code updates (nil-safe, so a disabled collector costs one
// predictable branch), and a set of pluggable Exporters — JSONL and CSV
// file writers plus an in-memory ring buffer — that each completed Window
// fans out to. An optional debug HTTP server (debug.go) exposes
// net/http/pprof, expvar, and a /telemetry JSON snapshot for live
// inspection of long unattended sweeps.
//
// AVF is strongly phase-dependent (Fu et al., MASCOTS 2006; Jaulmes et
// al.), so the per-window series is not a convenience but a measurement:
// the final window's cumulative AVF equals the end-of-run avf.Report
// exactly, while the per-window values expose the phase structure the
// aggregate hides.
package telemetry

import (
	"fmt"
	"log/slog"
	"sort"
	"sync"

	"smtavf/internal/avf"
	"smtavf/internal/obs"
)

// SchemaVersion is stamped into every exported Window ("v") so offline
// consumers can detect field-set changes; bump it whenever the JSONL/CSV
// schema changes shape.
const SchemaVersion = 1

// DefaultWindowCycles is the sampling window used when Options.WindowCycles
// is zero: fine enough to resolve program phases, coarse enough that the
// rollover work is invisible next to the per-cycle simulation cost.
const DefaultWindowCycles = 10_000

// DefaultRingSize is the number of windows the built-in ring buffer
// retains when Options.RingSize is zero.
const DefaultRingSize = 1024

// Window is one completed sampling interval: every value describes the
// interval [StartCycle, EndCycle) alone, except the Cum* fields, which
// cover the whole measurement so far. One Window marshals to one JSONL
// object (docs/telemetry.md documents the schema).
type Window struct {
	V      int  `json:"v"` // schema version (SchemaVersion)
	Index  int  `json:"window"`
	Warmup bool `json:"warmup,omitempty"` // interval lies in the warmup period
	Final  bool `json:"final,omitempty"`  // last window of the run (may be short)

	StartCycle uint64 `json:"start_cycle"` // absolute simulation cycles
	EndCycle   uint64 `json:"end_cycle"`

	Committed uint64    `json:"committed"` // instructions committed in the window
	IPC       float64   `json:"ipc"`
	ThreadIPC []float64 `json:"thread_ipc,omitempty"`

	// AVF and Occupancy are per-structure values of this window alone;
	// CumAVF is the AVF over the measurement window so far (the final
	// window's CumAVF equals the end-of-run report). Keys are the
	// avf.Struct names.
	AVF       map[string]float64 `json:"avf"`
	CumAVF    map[string]float64 `json:"cum_avf"`
	Occupancy map[string]float64 `json:"occupancy,omitempty"`

	// Event counters for the window, aggregated over threads.
	Fetched        uint64 `json:"fetched"`
	WrongPathFetch uint64 `json:"wrong_path_fetch"`
	Mispredicts    uint64 `json:"mispredicts"`
	Flushes        uint64 `json:"flushes"`
	SquashedUops   uint64 `json:"squashed_uops"`
	DispatchStalls uint64 `json:"dispatch_stalls"` // rename+IQ+ROB+LSQ full
}

// Cycles returns the window's length in cycles.
func (w Window) Cycles() uint64 { return w.EndCycle - w.StartCycle }

// StructNames returns the AVF map keys in presentation order — exporters
// and tests iterate structures deterministically through it.
func StructNames() []string {
	ss := avf.Structs()
	names := make([]string, len(ss))
	for i, s := range ss {
		names[i] = s.String()
	}
	return names
}

// Options parameterizes a Collector.
type Options struct {
	// WindowCycles is the sampling period (default DefaultWindowCycles).
	WindowCycles uint64
	// RingSize bounds the built-in in-memory ring buffer (default
	// DefaultRingSize).
	RingSize int
	// Logger, when non-nil, receives one progress line per window and one
	// line per rebase.
	Logger *slog.Logger
	// Registry backs the collector's live counters and gauges, surfacing
	// them on /debug/metrics as OpenMetrics families alongside the legacy
	// dotted names on /debug/vars. Nil builds a private registry, so
	// existing call sites change nothing.
	Registry *obs.Registry
}

// Collector receives completed windows from the simulator and fans them
// out to exporters, the ring buffer, and the live registry the debug
// server reads. A nil *Collector is a valid "disabled" collector: every
// method is a cheap no-op, so call sites need no branching.
type Collector struct {
	window uint64
	logger *slog.Logger
	ring   *Ring
	reg    *obs.Registry

	mu        sync.Mutex
	exporters []Exporter
	counters  map[string]*Counter
	gauges    map[string]*Gauge
	prog      *obs.Progress
	cumCommit uint64 // committed instructions across all windows
	last      Window
	windows   int
	rebased   uint64 // cycle of the last rebase (measurement start)
	err       error  // first exporter error, sticky
}

// New builds a collector. The built-in ring buffer is always attached;
// file exporters are added with AddExporter.
func New(o Options) *Collector {
	if o.WindowCycles == 0 {
		o.WindowCycles = DefaultWindowCycles
	}
	if o.RingSize == 0 {
		o.RingSize = DefaultRingSize
	}
	if o.Registry == nil {
		o.Registry = obs.NewRegistry()
	}
	return &Collector{
		window:   o.WindowCycles,
		logger:   o.Logger,
		ring:     NewRing(o.RingSize),
		reg:      o.Registry,
		counters: make(map[string]*Counter),
		gauges:   make(map[string]*Gauge),
	}
}

// Registry returns the metrics registry backing the collector's live
// counters and gauges (nil for a nil collector).
func (c *Collector) Registry() *obs.Registry {
	if c == nil {
		return nil
	}
	return c.reg
}

// SetProgress attaches a progress tracker; each recorded window then
// advances it by the window's end cycle. Safe to leave unset.
func (c *Collector) SetProgress(p *obs.Progress) {
	if c == nil {
		return
	}
	c.mu.Lock()
	c.prog = p
	c.mu.Unlock()
}

// Progress returns the attached progress tracker (nil when none), so
// subsystems that publish through the collector — the inject stopping
// rule — can advance the same campaign progress.
func (c *Collector) Progress() *obs.Progress {
	if c == nil {
		return nil
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.prog
}

// WindowCycles returns the sampling period (DefaultWindowCycles for a nil
// collector, so disabled call sites still compute a sane next-rollover).
func (c *Collector) WindowCycles() uint64 {
	if c == nil {
		return DefaultWindowCycles
	}
	return c.window
}

// SlogLogger returns the structured logger the collector was built with
// (nil for a nil or unlogged collector). Subsystems that publish progress
// through the collector's registry use it to emit matching log lines.
func (c *Collector) SlogLogger() *slog.Logger {
	if c == nil {
		return nil
	}
	return c.logger
}

// AddExporter attaches an exporter; every subsequently recorded window is
// forwarded to it. Close closes it.
func (c *Collector) AddExporter(e Exporter) {
	if c == nil || e == nil {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.exporters = append(c.exporters, e)
}

// Record accepts one completed window: it lands in the ring buffer, every
// exporter, the live snapshot, and — when a logger is configured — one
// progress line.
func (c *Collector) Record(w Window) {
	if c == nil {
		return
	}
	if w.V == 0 {
		w.V = SchemaVersion
	}
	c.ring.push(w)
	c.mu.Lock()
	c.last = w
	c.windows++
	for _, e := range c.exporters {
		if err := e.Export(w); err != nil && c.err == nil {
			c.err = err
		}
	}
	c.cumCommit += w.Committed
	prog, cum := c.prog, c.cumCommit
	c.mu.Unlock()
	// The run phase progresses in committed instructions (matching the
	// facade's instruction-total target); the end cycle is the rate axis.
	prog.Observe(cum, w.EndCycle)
	if c.logger != nil {
		c.logger.Info("window",
			"n", w.Index,
			"cycle", w.EndCycle,
			"committed", w.Committed,
			"ipc", round4(w.IPC),
			"iq_avf", round4(w.AVF[avf.IQ.String()]),
			"rob_avf", round4(w.AVF[avf.ROB.String()]),
			"warmup", w.Warmup,
		)
	}
}

// Rebase notes that the simulator reset its measurement at the given
// cycle (end of warmup): windows recorded before it carry Warmup=true and
// cumulative values restart. The ring buffer keeps warmup windows — they
// are flagged, not hidden.
func (c *Collector) Rebase(cycle uint64) {
	if c == nil {
		return
	}
	c.mu.Lock()
	c.rebased = cycle
	c.mu.Unlock()
	if c.logger != nil {
		c.logger.Info("rebase", "cycle", cycle)
	}
}

// Last returns the most recently recorded window.
func (c *Collector) Last() (Window, bool) {
	if c == nil {
		return Window{}, false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.last, c.windows > 0
}

// Windows returns the number of windows recorded so far.
func (c *Collector) Windows() int {
	if c == nil {
		return 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.windows
}

// Ring returns the retained window series, oldest first.
func (c *Collector) Ring() []Window {
	if c == nil {
		return nil
	}
	return c.ring.Windows()
}

// Err returns the first exporter error, if any (export errors never
// interrupt a simulation; they surface here and at Close).
func (c *Collector) Err() error {
	if c == nil {
		return nil
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.err
}

// Close flushes and closes every attached exporter and returns the first
// error seen over the collector's lifetime.
func (c *Collector) Close() error {
	if c == nil {
		return nil
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	for _, e := range c.exporters {
		if err := e.Close(); err != nil && c.err == nil {
			c.err = err
		}
	}
	c.exporters = nil
	return c.err
}

// Counter returns the registered live counter with the given name,
// creating it on first use. Hot-path code holds the returned pointer and
// calls Add/Inc on it; a nil *Collector returns a nil *Counter whose
// methods are no-ops, so disabled telemetry costs one branch per event.
func (c *Collector) Counter(name string) *Counter {
	if c == nil {
		return nil
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if ctr, ok := c.counters[name]; ok {
		return ctr
	}
	// The registry owns the instrument; the collector's map is the legacy
	// dotted-name view that /debug/vars and Snapshot serve.
	ctr := c.reg.Counter(name, "")
	c.counters[name] = ctr
	return ctr
}

// Gauge returns the registered live gauge with the given name, creating
// it on first use; nil-collector semantics match Counter.
func (c *Collector) Gauge(name string) *Gauge {
	if c == nil {
		return nil
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if g, ok := c.gauges[name]; ok {
		return g
	}
	g := c.reg.Gauge(name, "")
	c.gauges[name] = g
	return g
}

// Snapshot is the live state the /telemetry endpoint and expvar publish:
// the latest window, cumulative AVF so far, and every registered
// counter/gauge.
type Snapshot struct {
	WindowCycles uint64             `json:"window_cycles"`
	Windows      int                `json:"windows"`
	RebaseCycle  uint64             `json:"rebase_cycle,omitempty"`
	Cycle        uint64             `json:"cycle"`     // end of the last window
	Committed    uint64             `json:"committed"` // within the last window
	IPC          float64            `json:"ipc"`       // of the last window
	CumAVF       map[string]float64 `json:"cum_avf,omitempty"`
	Last         *Window            `json:"last_window,omitempty"`
	Counters     map[string]uint64  `json:"counters,omitempty"`
	Gauges       map[string]float64 `json:"gauges,omitempty"`
}

// Snapshot assembles the current live state. It is safe to call from a
// different goroutine than the simulator's (the debug server does).
func (c *Collector) Snapshot() Snapshot {
	if c == nil {
		return Snapshot{}
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	s := Snapshot{
		WindowCycles: c.window,
		Windows:      c.windows,
		RebaseCycle:  c.rebased,
	}
	if c.windows > 0 {
		w := c.last
		s.Cycle = w.EndCycle
		s.Committed = w.Committed
		s.IPC = w.IPC
		s.CumAVF = w.CumAVF
		s.Last = &w
	}
	if len(c.counters) > 0 {
		s.Counters = make(map[string]uint64, len(c.counters))
		for name, ctr := range c.counters {
			s.Counters[name] = ctr.Value()
		}
	}
	if len(c.gauges) > 0 {
		s.Gauges = make(map[string]float64, len(c.gauges))
		for name, g := range c.gauges {
			s.Gauges[name] = g.Value()
		}
	}
	return s
}

// CounterNames returns the registered counter names, sorted.
func (c *Collector) CounterNames() []string {
	if c == nil {
		return nil
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	names := make([]string, 0, len(c.counters))
	for n := range c.counters {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Counter is a monotonically increasing live metric; it is the obs
// registry's counter, aliased so the packages that publish through the
// collector (inject, propagation, core) migrated to the campaign
// observability layer without a source change. The zero value is ready to
// use; a nil *Counter is a no-op, which is how disabled telemetry keeps
// hot paths branch-cheap. Updates are atomic so the debug server can read
// them mid-run.
type Counter = obs.Counter

// Gauge is a live point-in-time metric; nil-safety matches Counter.
type Gauge = obs.Gauge

// round4 trims a float for log lines (full precision stays in the
// exporters).
func round4(v float64) string { return fmt.Sprintf("%.4f", v) }
