package telemetry

import (
	"compress/gzip"
	"encoding/csv"
	"encoding/json"
	"io"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
)

func TestGzipExporterRoundTrip(t *testing.T) {
	for _, name := range []string{"run.jsonl.gz", "run.csv.gz"} {
		t.Run(name, func(t *testing.T) {
			path := filepath.Join(t.TempDir(), name)
			e, err := Create(path)
			if err != nil {
				t.Fatal(err)
			}
			for i := 0; i < 3; i++ {
				if err := e.Export(window(i)); err != nil {
					t.Fatal(err)
				}
			}
			if err := e.Close(); err != nil {
				t.Fatal(err)
			}
			f, err := os.Open(path)
			if err != nil {
				t.Fatal(err)
			}
			defer f.Close()
			zr, err := gzip.NewReader(f)
			if err != nil {
				t.Fatalf("%s is not gzip: %v", name, err)
			}
			data, err := io.ReadAll(zr)
			if err != nil {
				t.Fatal(err)
			}
			if strings.HasSuffix(name, ".csv.gz") {
				rows, err := csv.NewReader(strings.NewReader(string(data))).ReadAll()
				if err != nil {
					t.Fatal(err)
				}
				if len(rows) != 4 { // header + 3 windows
					t.Fatalf("got %d CSV rows, want 4", len(rows))
				}
			} else {
				lines := strings.Split(strings.TrimSpace(string(data)), "\n")
				if len(lines) != 3 {
					t.Fatalf("got %d JSONL lines, want 3", len(lines))
				}
				var w Window
				if err := json.Unmarshal([]byte(lines[0]), &w); err != nil {
					t.Fatal(err)
				}
			}
		})
	}
}

func TestCollectorStampsSchemaVersion(t *testing.T) {
	c := New(Options{})
	c.Record(window(0))
	last, ok := c.Last()
	if !ok || last.V != SchemaVersion {
		t.Fatalf("recorded window carries v=%d, want %d", last.V, SchemaVersion)
	}
}

// TestCSVHeaderMatchesJSONLSchema ties the CSV column set to the Window
// JSON tags by reflection: every scalar JSONL field appears as a CSV
// column in the same order, the map-valued fields expand to per-structure
// columns, and only the known slice/map fields are allowed to differ.
func TestCSVHeaderMatchesJSONLSchema(t *testing.T) {
	var buf strings.Builder
	e := NewCSV(&buf)
	if err := e.Export(window(0)); err != nil {
		t.Fatal(err)
	}
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}
	rows, err := csv.NewReader(strings.NewReader(buf.String())).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	header := rows[0]
	colIdx := map[string]int{}
	for i, c := range header {
		colIdx[c] = i
	}

	// Fields the CSV deliberately omits (variable-length per-thread slice)
	// or expands into per-structure columns.
	omitted := map[string]bool{"thread_ipc": true, "occupancy": true}
	expanded := map[string]bool{"avf": true, "cum_avf": true}

	prev := -1
	rt := reflect.TypeOf(Window{})
	for i := 0; i < rt.NumField(); i++ {
		tag := strings.Split(rt.Field(i).Tag.Get("json"), ",")[0]
		if tag == "" || tag == "-" || omitted[tag] {
			continue
		}
		if expanded[tag] {
			for _, s := range StructNames() {
				col := strings.ToLower(s) + "_avf"
				if tag == "cum_avf" {
					col = "cum_" + strings.ToLower(s) + "_avf"
				}
				if _, present := colIdx[col]; !present {
					t.Errorf("JSONL map field %q: CSV misses column %q", tag, col)
				}
			}
			continue
		}
		idx, present := colIdx[tag]
		if !present {
			t.Errorf("JSONL field %q has no CSV column", tag)
			continue
		}
		if idx <= prev {
			t.Errorf("CSV column %q out of JSONL field order (index %d after %d)", tag, idx, prev)
		}
		prev = idx
	}

	// And the reverse: every scalar CSV column maps back to a JSONL field.
	jsonTags := map[string]bool{}
	for i := 0; i < rt.NumField(); i++ {
		jsonTags[strings.Split(rt.Field(i).Tag.Get("json"), ",")[0]] = true
	}
	for _, c := range header {
		if strings.HasSuffix(c, "_avf") {
			continue // expansion of the avf / cum_avf maps
		}
		if !jsonTags[c] {
			t.Errorf("CSV column %q does not correspond to any JSONL field", c)
		}
	}
}
