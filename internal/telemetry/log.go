package telemetry

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"
	"log/slog"
	"strings"
)

// NewLogger builds the structured run logger the CLIs share: text or JSON
// handler on w at the given level, with the source location omitted (the
// interesting coordinates are simulation cycles, not file:line).
func NewLogger(w io.Writer, level slog.Level, jsonFormat bool) *slog.Logger {
	opts := &slog.HandlerOptions{Level: level}
	var h slog.Handler
	if jsonFormat {
		h = slog.NewJSONHandler(w, opts)
	} else {
		h = slog.NewTextHandler(w, opts)
	}
	return slog.New(h)
}

// ParseLevel maps a CLI flag value to a slog level.
func ParseLevel(s string) (slog.Level, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "debug":
		return slog.LevelDebug, nil
	case "info", "":
		return slog.LevelInfo, nil
	case "warn", "warning":
		return slog.LevelWarn, nil
	case "error":
		return slog.LevelError, nil
	}
	return 0, fmt.Errorf("telemetry: unknown log level %q (want debug, info, warn, error)", s)
}

// ConfigHash returns a short stable fingerprint of a configuration —
// sha256 over its JSON encoding — so run manifests and sweep series can
// be matched to the exact machine that produced them.
func ConfigHash(cfg any) string {
	data, err := json.Marshal(cfg)
	if err != nil {
		return "unhashable"
	}
	sum := sha256.Sum256(data)
	return hex.EncodeToString(sum[:6])
}

// RunManifest logs the one-line run manifest every CLI emits before
// simulating: what is about to run, under which configuration, with
// which seed — enough to reproduce the run from the log alone.
func RunManifest(logger *slog.Logger, program string, cfg any, seed uint64, workloads []string, attrs ...any) {
	if logger == nil {
		return
	}
	args := []any{
		"program", program,
		"config_hash", ConfigHash(cfg),
		"seed", seed,
		"workloads", strings.Join(workloads, ","),
	}
	args = append(args, attrs...)
	logger.Info("run manifest", args...)
}
