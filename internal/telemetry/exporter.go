package telemetry

import (
	"encoding/csv"
	"encoding/json"
	"fmt"
	"io"
	"strconv"
	"strings"
	"sync"

	"smtavf/internal/jsonlio"
)

// Exporter receives each completed window. Exporters are driven from the
// simulator's goroutine, one window at a time; they need no internal
// locking unless they are also read concurrently (the Ring is).
type Exporter interface {
	Export(w Window) error
	// Close flushes buffered output and releases the destination.
	Close() error
}

// Create opens a file exporter for path, picking the format from the
// extension: ".csv" writes CSV, everything else JSONL (one JSON object
// per window per line). A ".gz" suffix (".jsonl.gz", ".csv.gz")
// gzip-compresses the stream — long sweeps and flight recordings are
// large.
func Create(path string) (Exporter, error) {
	w, err := OpenWriter(path)
	if err != nil {
		return nil, err
	}
	if strings.HasSuffix(strings.TrimSuffix(strings.ToLower(path), ".gz"), ".csv") {
		return NewCSV(w), nil
	}
	return NewJSONL(w), nil
}

// OpenWriter creates path for writing, transparently wrapping the stream
// in gzip compression when the name ends in ".gz" — a thin delegate to the
// shared internal/jsonlio plumbing, kept here so telemetry call sites read
// naturally.
func OpenWriter(path string) (io.WriteCloser, error) {
	return jsonlio.OpenWriter(path)
}

// JSONL writes one JSON object per window per line — the schema of
// docs/telemetry.md, ready for jq or any log pipeline.
type JSONL struct {
	enc *json.Encoder
	c   io.Closer
}

// NewJSONL builds a JSONL exporter on w; if w is also an io.Closer it is
// closed by Close.
func NewJSONL(w io.Writer) *JSONL {
	j := &JSONL{enc: json.NewEncoder(w)}
	if c, ok := w.(io.Closer); ok {
		j.c = c
	}
	return j
}

// Export writes the window as one JSON line.
func (j *JSONL) Export(w Window) error { return j.enc.Encode(w) }

// Close closes the underlying writer, if it is closable.
func (j *JSONL) Close() error {
	if j.c == nil {
		return nil
	}
	return j.c.Close()
}

// CSV writes one row per window with a fixed header: scalar columns, then
// <struct>_avf and cum_<struct>_avf for every instrumented structure in
// presentation order.
type CSV struct {
	w       *csv.Writer
	c       io.Closer
	structs []string
	wroteHd bool
}

// NewCSV builds a CSV exporter on w; if w is also an io.Closer it is
// closed by Close.
func NewCSV(w io.Writer) *CSV {
	e := &CSV{w: csv.NewWriter(w), structs: StructNames()}
	if c, ok := w.(io.Closer); ok {
		e.c = c
	}
	return e
}

// Export writes the window as one CSV row (emitting the header first).
func (e *CSV) Export(w Window) error {
	if !e.wroteHd {
		hd := []string{
			"v", "window", "warmup", "final", "start_cycle", "end_cycle",
			"committed", "ipc", "fetched", "wrong_path_fetch",
			"mispredicts", "flushes", "squashed_uops", "dispatch_stalls",
		}
		for _, s := range e.structs {
			hd = append(hd, strings.ToLower(s)+"_avf")
		}
		for _, s := range e.structs {
			hd = append(hd, "cum_"+strings.ToLower(s)+"_avf")
		}
		if err := e.w.Write(hd); err != nil {
			return err
		}
		e.wroteHd = true
	}
	row := []string{
		strconv.Itoa(w.V),
		strconv.Itoa(w.Index),
		strconv.FormatBool(w.Warmup),
		strconv.FormatBool(w.Final),
		strconv.FormatUint(w.StartCycle, 10),
		strconv.FormatUint(w.EndCycle, 10),
		strconv.FormatUint(w.Committed, 10),
		formatFloat(w.IPC),
		strconv.FormatUint(w.Fetched, 10),
		strconv.FormatUint(w.WrongPathFetch, 10),
		strconv.FormatUint(w.Mispredicts, 10),
		strconv.FormatUint(w.Flushes, 10),
		strconv.FormatUint(w.SquashedUops, 10),
		strconv.FormatUint(w.DispatchStalls, 10),
	}
	for _, s := range e.structs {
		row = append(row, formatFloat(w.AVF[s]))
	}
	for _, s := range e.structs {
		row = append(row, formatFloat(w.CumAVF[s]))
	}
	if err := e.w.Write(row); err != nil {
		return err
	}
	return nil
}

// Close flushes the CSV writer and closes the destination.
func (e *CSV) Close() error {
	e.w.Flush()
	err := e.w.Error()
	if e.c != nil {
		if cerr := e.c.Close(); err == nil {
			err = cerr
		}
	}
	return err
}

func formatFloat(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }

// Ring is a fixed-capacity in-memory window buffer retaining the most
// recent windows — the zero-dependency exporter behind the /telemetry
// endpoint and the examples. It is safe for concurrent push and read.
type Ring struct {
	mu   sync.Mutex
	buf  []Window
	next int
	full bool
}

// NewRing builds a ring retaining up to n windows (n must be positive).
func NewRing(n int) *Ring {
	if n <= 0 {
		panic(fmt.Sprintf("telemetry: ring size must be positive, got %d", n))
	}
	return &Ring{buf: make([]Window, n)}
}

// Export implements Exporter.
func (r *Ring) Export(w Window) error {
	r.push(w)
	return nil
}

// Close implements Exporter; a ring has nothing to release.
func (r *Ring) Close() error { return nil }

func (r *Ring) push(w Window) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.buf[r.next] = w
	r.next++
	if r.next == len(r.buf) {
		r.next = 0
		r.full = true
	}
}

// Len returns the number of retained windows.
func (r *Ring) Len() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.full {
		return len(r.buf)
	}
	return r.next
}

// Windows returns the retained windows, oldest first.
func (r *Ring) Windows() []Window {
	r.mu.Lock()
	defer r.mu.Unlock()
	if !r.full {
		return append([]Window(nil), r.buf[:r.next]...)
	}
	out := make([]Window, 0, len(r.buf))
	out = append(out, r.buf[r.next:]...)
	out = append(out, r.buf[:r.next]...)
	return out
}
