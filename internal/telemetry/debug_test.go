package telemetry

import (
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"sync"
	"testing"

	"smtavf/internal/obs"
)

// startDebug boots a debug server on an ephemeral port and returns its
// base URL plus a cleanup.
func startDebug(t *testing.T, c *Collector) (*DebugServer, string) {
	t.Helper()
	d, err := ServeDebug("127.0.0.1:0", c, nil)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { d.Close() })
	return d, "http://" + d.Addr()
}

func get(t *testing.T, url string) (int, string, http.Header) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("GET %s: read body: %v", url, err)
	}
	return resp.StatusCode, string(body), resp.Header
}

func TestDebugServerRoutes(t *testing.T) {
	c := New(Options{WindowCycles: 10_000})
	c.Counter("inject.events").Add(3)
	c.Gauge("inject.halfwidth.IQ").Set(0.25)
	c.Record(window(0))
	_, base := startDebug(t, c)

	// Index lists every endpoint.
	code, body, _ := get(t, base+"/")
	if code != http.StatusOK || !strings.Contains(body, "/debug/metrics") ||
		!strings.Contains(body, "/debug/progress") {
		t.Fatalf("index (%d):\n%s", code, body)
	}

	// Unknown paths 404.
	if code, _, _ := get(t, base+"/nope"); code != http.StatusNotFound {
		t.Fatalf("unknown path = %d, want 404", code)
	}

	// /telemetry serves the snapshot with the dotted legacy names.
	code, body, _ = get(t, base+"/telemetry")
	var snap Snapshot
	if code != http.StatusOK {
		t.Fatalf("/telemetry = %d", code)
	}
	if err := json.Unmarshal([]byte(body), &snap); err != nil {
		t.Fatalf("/telemetry not JSON: %v", err)
	}
	if snap.Counters["inject.events"] != 3 || snap.Gauges["inject.halfwidth.IQ"] != 0.25 {
		t.Fatalf("/telemetry snapshot missing registered metrics: %s", body)
	}

	// /telemetry/ring serves the retained windows.
	code, body, _ = get(t, base+"/telemetry/ring")
	var ring []Window
	if code != http.StatusOK {
		t.Fatalf("/telemetry/ring = %d", code)
	}
	if err := json.Unmarshal([]byte(body), &ring); err != nil || len(ring) != 1 {
		t.Fatalf("/telemetry/ring: err=%v len=%d", err, len(ring))
	}

	// /debug/vars carries the smtavf expvar with the same dotted names.
	code, body, _ = get(t, base+"/debug/vars")
	if code != http.StatusOK || !strings.Contains(body, `"inject.events"`) {
		t.Fatalf("/debug/vars (%d) missing dotted names:\n%s", code, body)
	}

	// /debug/metrics serves lint-clean OpenMetrics with sanitized names.
	code, body, hdr := get(t, base+"/debug/metrics")
	if code != http.StatusOK {
		t.Fatalf("/debug/metrics = %d", code)
	}
	if ct := hdr.Get("Content-Type"); ct != obs.ContentTypeOpenMetrics {
		t.Fatalf("/debug/metrics content type = %q", ct)
	}
	if err := obs.Lint(body); err != nil {
		t.Fatalf("/debug/metrics fails the linter: %v\n%s", err, body)
	}
	for _, want := range []string{
		"smtavf_inject_events 3",
		"smtavf_inject_halfwidth_IQ 0.25",
		"smtavf_runtime_goroutines",
	} {
		if !strings.Contains(body, want) {
			t.Fatalf("/debug/metrics missing %q:\n%s", want, body)
		}
	}
}

func TestDebugServerProgress(t *testing.T) {
	c := New(Options{WindowCycles: 10_000})
	p := obs.NewProgress(obs.ProgressOptions{Heartbeat: -1, Registry: c.Registry()})
	c.SetProgress(p)
	p.Phase("run", 10_000)
	_, base := startDebug(t, c)

	c.Record(window(1)) // Committed 2000 → fraction 0.2

	code, body, _ := get(t, base+"/debug/progress")
	if code != http.StatusOK {
		t.Fatalf("/debug/progress = %d", code)
	}
	var snap obs.ProgressSnapshot
	if err := json.Unmarshal([]byte(body), &snap); err != nil {
		t.Fatalf("/debug/progress not JSON: %v\n%s", err, body)
	}
	if snap.Phase != "run" || snap.Done != 2000 || snap.Fraction != 0.2 {
		t.Fatalf("/debug/progress = %+v", snap)
	}
	if snap.Cycle != 20_000 {
		t.Fatalf("/debug/progress cycle = %d, want 20000", snap.Cycle)
	}
}

// TestDebugServerConcurrentScrape hammers every endpoint while the
// collector records windows — the race detector turns any unsynchronized
// read into a failure.
func TestDebugServerConcurrentScrape(t *testing.T) {
	c := New(Options{WindowCycles: 10_000})
	p := obs.NewProgress(obs.ProgressOptions{Heartbeat: -1, Registry: c.Registry()})
	c.SetProgress(p)
	p.Phase("run", 1_000_000)
	_, base := startDebug(t, c)

	var wg sync.WaitGroup
	stop := make(chan struct{})
	for _, path := range []string{"/telemetry", "/telemetry/ring", "/debug/metrics", "/debug/progress", "/debug/vars"} {
		wg.Add(1)
		go func(url string) {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				resp, err := http.Get(url)
				if err != nil {
					continue
				}
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
			}
		}(base + path)
	}
	events := c.Counter("inject.events")
	for i := 0; i < 50; i++ {
		events.Inc()
		c.Record(window(i))
	}
	close(stop)
	wg.Wait()
	if err := obs.Lint(func() string {
		_, body, _ := get(t, base+"/debug/metrics")
		return body
	}()); err != nil {
		t.Fatalf("post-run scrape fails linter: %v", err)
	}
}

// TestDebugServerSetCollector retargets a live server at a fresh
// collector — the sweep-driver pattern — and checks every surface moved.
func TestDebugServerSetCollector(t *testing.T) {
	c1 := New(Options{WindowCycles: 10_000})
	c1.Counter("point.first").Inc()
	d, base := startDebug(t, c1)

	c2 := New(Options{WindowCycles: 10_000})
	c2.Counter("point.second").Add(5)
	p2 := obs.NewProgress(obs.ProgressOptions{Heartbeat: -1})
	c2.SetProgress(p2)
	p2.Phase("point2", 10)
	d.SetCollector(c2)

	_, body, _ := get(t, base+"/telemetry")
	if !strings.Contains(body, "point.second") || strings.Contains(body, "point.first") {
		t.Fatalf("/telemetry did not retarget:\n%s", body)
	}
	_, body, _ = get(t, base+"/debug/metrics")
	if !strings.Contains(body, "smtavf_point_second 5") {
		t.Fatalf("/debug/metrics did not retarget:\n%s", body)
	}
	_, body, _ = get(t, base+"/debug/progress")
	if !strings.Contains(body, `"phase": "point2"`) {
		t.Fatalf("/debug/progress did not retarget:\n%s", body)
	}
}
