package telemetry

import (
	"bytes"
	"encoding/csv"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"testing"

	"smtavf/internal/avf"
)

func window(i int) Window {
	w := Window{
		Index:      i,
		StartCycle: uint64(i) * 10_000,
		EndCycle:   uint64(i+1) * 10_000,
		Committed:  uint64(1000 * (i + 1)),
		IPC:        float64(i) + 0.5,
		AVF:        map[string]float64{},
		CumAVF:     map[string]float64{},
	}
	for _, s := range StructNames() {
		w.AVF[s] = 0.01 * float64(i+1)
		w.CumAVF[s] = 0.02 * float64(i+1)
	}
	return w
}

func TestNilCollectorIsDisabled(t *testing.T) {
	var c *Collector
	// None of these may panic, and the registry hands out nil metrics
	// whose methods are no-ops.
	c.Record(window(0))
	c.Rebase(5)
	ctr := c.Counter("commits")
	ctr.Inc()
	ctr.Add(41)
	if got := ctr.Value(); got != 0 {
		t.Fatalf("nil counter value = %d, want 0", got)
	}
	g := c.Gauge("ipc")
	g.Set(3.5)
	if got := g.Value(); got != 0 {
		t.Fatalf("nil gauge value = %v, want 0", got)
	}
	if c.WindowCycles() != DefaultWindowCycles {
		t.Fatalf("nil collector window = %d", c.WindowCycles())
	}
	if ws := c.Ring(); ws != nil {
		t.Fatalf("nil collector ring = %v", ws)
	}
	if err := c.Close(); err != nil {
		t.Fatalf("nil collector close: %v", err)
	}
}

func TestCollectorRecordAndSnapshot(t *testing.T) {
	c := New(Options{WindowCycles: 10_000, RingSize: 4})
	c.Counter("sim.committed").Add(7)
	c.Gauge("sim.cycle").SetUint(42)
	for i := 0; i < 6; i++ {
		c.Record(window(i))
	}
	if got := c.Windows(); got != 6 {
		t.Fatalf("windows = %d, want 6", got)
	}
	// The ring keeps only the last 4.
	ring := c.Ring()
	if len(ring) != 4 {
		t.Fatalf("ring len = %d, want 4", len(ring))
	}
	if ring[0].Index != 2 || ring[3].Index != 5 {
		t.Fatalf("ring order wrong: first=%d last=%d", ring[0].Index, ring[3].Index)
	}
	last, ok := c.Last()
	if !ok || last.Index != 5 {
		t.Fatalf("last = %+v ok=%v", last, ok)
	}
	s := c.Snapshot()
	if s.Windows != 6 || s.Cycle != 60_000 {
		t.Fatalf("snapshot = %+v", s)
	}
	if s.Counters["sim.committed"] != 7 {
		t.Fatalf("snapshot counter = %v", s.Counters)
	}
	if s.Gauges["sim.cycle"] != 42 {
		t.Fatalf("snapshot gauge = %v", s.Gauges)
	}
	if s.CumAVF[avf.IQ.String()] != last.CumAVF[avf.IQ.String()] {
		t.Fatalf("snapshot cum AVF mismatch")
	}
}

func TestCounterRegistryReturnsSameInstance(t *testing.T) {
	c := New(Options{})
	a := c.Counter("x")
	b := c.Counter("x")
	if a != b {
		t.Fatal("registry returned distinct counters for one name")
	}
	a.Add(3)
	if b.Value() != 3 {
		t.Fatalf("shared counter value = %d", b.Value())
	}
	if names := c.CounterNames(); len(names) != 1 || names[0] != "x" {
		t.Fatalf("counter names = %v", names)
	}
}

func TestJSONLExporterRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	e := NewJSONL(&buf)
	for i := 0; i < 3; i++ {
		if err := e.Export(window(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 3 {
		t.Fatalf("got %d lines, want 3", len(lines))
	}
	var w Window
	if err := json.Unmarshal([]byte(lines[2]), &w); err != nil {
		t.Fatal(err)
	}
	if w.Index != 2 || w.EndCycle != 30_000 {
		t.Fatalf("decoded window = %+v", w)
	}
	if w.AVF[avf.ROB.String()] != 0.03 {
		t.Fatalf("decoded ROB AVF = %v", w.AVF[avf.ROB.String()])
	}
}

func TestCSVExporterShape(t *testing.T) {
	var buf bytes.Buffer
	e := NewCSV(&buf)
	for i := 0; i < 2; i++ {
		if err := e.Export(window(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}
	rows, err := csv.NewReader(&buf).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 { // header + 2 windows
		t.Fatalf("got %d rows, want 3", len(rows))
	}
	wantCols := 14 + 2*len(StructNames())
	for i, row := range rows {
		if len(row) != wantCols {
			t.Fatalf("row %d has %d columns, want %d", i, len(row), wantCols)
		}
	}
	if rows[0][0] != "v" || rows[0][1] != "window" || !strings.HasSuffix(rows[0][14], "_avf") {
		t.Fatalf("header = %v", rows[0][:15])
	}
}

type failingExporter struct{}

func (failingExporter) Export(Window) error { return fmt.Errorf("disk full") }
func (failingExporter) Close() error        { return nil }

func TestExporterErrorIsStickyNotFatal(t *testing.T) {
	c := New(Options{})
	c.AddExporter(failingExporter{})
	c.Record(window(0))
	c.Record(window(1)) // must not panic or stop
	if err := c.Err(); err == nil || !strings.Contains(err.Error(), "disk full") {
		t.Fatalf("err = %v", err)
	}
	if err := c.Close(); err == nil {
		t.Fatal("close lost the sticky error")
	}
}

func TestRingWrapAround(t *testing.T) {
	r := NewRing(3)
	for i := 0; i < 5; i++ {
		if err := r.Export(window(i)); err != nil {
			t.Fatal(err)
		}
	}
	if r.Len() != 3 {
		t.Fatalf("len = %d", r.Len())
	}
	ws := r.Windows()
	for i, w := range ws {
		if w.Index != i+2 {
			t.Fatalf("ws[%d].Index = %d, want %d", i, w.Index, i+2)
		}
	}
}

func TestDebugServerEndpoints(t *testing.T) {
	c := New(Options{WindowCycles: 1000})
	c.Record(window(0))
	d, err := ServeDebug("127.0.0.1:0", c, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()

	get := func(path string) string {
		t.Helper()
		resp, err := http.Get("http://" + d.Addr() + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: status %d", path, resp.StatusCode)
		}
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return string(body)
	}

	var snap Snapshot
	if err := json.Unmarshal([]byte(get("/telemetry")), &snap); err != nil {
		t.Fatal(err)
	}
	if snap.Windows != 1 || snap.Cycle != 10_000 {
		t.Fatalf("snapshot = %+v", snap)
	}
	var ring []Window
	if err := json.Unmarshal([]byte(get("/telemetry/ring")), &ring); err != nil {
		t.Fatal(err)
	}
	if len(ring) != 1 {
		t.Fatalf("ring = %+v", ring)
	}
	if body := get("/debug/vars"); !strings.Contains(body, "smtavf") {
		t.Fatal("/debug/vars does not publish the smtavf snapshot")
	}
	if body := get("/debug/pprof/"); !strings.Contains(body, "profile") {
		t.Fatal("/debug/pprof/ index missing")
	}
}

func TestParseLevel(t *testing.T) {
	for in, want := range map[string]string{
		"debug": "DEBUG", "info": "INFO", "WARN": "WARN", "error": "ERROR",
	} {
		lv, err := ParseLevel(in)
		if err != nil {
			t.Fatalf("ParseLevel(%q): %v", in, err)
		}
		if lv.String() != want {
			t.Fatalf("ParseLevel(%q) = %v", in, lv)
		}
	}
	if _, err := ParseLevel("loud"); err == nil {
		t.Fatal("ParseLevel accepted garbage")
	}
}

func TestConfigHashStable(t *testing.T) {
	type cfg struct{ A, B int }
	h1 := ConfigHash(cfg{1, 2})
	h2 := ConfigHash(cfg{1, 2})
	h3 := ConfigHash(cfg{1, 3})
	if h1 != h2 {
		t.Fatalf("hash unstable: %s vs %s", h1, h2)
	}
	if h1 == h3 {
		t.Fatal("hash ignores content")
	}
	if len(h1) != 12 {
		t.Fatalf("hash length = %d", len(h1))
	}
}

func TestLoggerLevels(t *testing.T) {
	warn, err := ParseLevel("warn")
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	lg := NewLogger(&buf, warn, false)
	lg.Info("hidden")
	lg.Warn("shown", "k", "v")
	out := buf.String()
	if strings.Contains(out, "hidden") || !strings.Contains(out, "shown") {
		t.Fatalf("log output = %q", out)
	}

	buf.Reset()
	info, err := ParseLevel("info")
	if err != nil {
		t.Fatal(err)
	}
	jl := NewLogger(&buf, info, true)
	jl.Info("m", "cycle", 7)
	var rec map[string]any
	if err := json.Unmarshal(buf.Bytes(), &rec); err != nil {
		t.Fatalf("JSON handler emitted non-JSON: %v", err)
	}
	if rec["cycle"] != float64(7) {
		t.Fatalf("record = %v", rec)
	}
}
