package core

import (
	"smtavf/internal/branch"
	"smtavf/internal/pipeline"
	"smtavf/internal/trace"
)

// threadSpacing separates the address spaces of the contexts. The large
// component keeps the spaces disjoint; the page-granular stagger breaks the
// set-index congruence that identical virtual layouts would otherwise have
// in the shared caches and TLBs (real systems get this de-aliasing from
// physical page placement).
const (
	threadSpacing = 1 << 40
	threadStagger = 977 * 4096
)

// threadOffset is the address-space offset of thread tid.
func threadOffset(tid int) uint64 {
	return uint64(tid)*threadSpacing + uint64(tid)*threadStagger
}

// thread is one hardware context.
type thread struct {
	id      int
	stream  *trace.Stream
	wrong   *trace.WrongPath
	profile trace.Profile
	offset  uint64 // address-space offset (id * threadSpacing)

	// Private microarchitecture state.
	rob *pipeline.ROB
	lsq *pipeline.LSQ
	ras *branch.RAS

	// Fetch state.
	fetchQ        []*pipeline.Uop // fetched, in the front-end pipe
	stallUntil    uint64          // IL1/ITLB miss or redirect penalty
	lastFetchLine uint64          // last IL1 line touched (access per line)

	// Wrong-path mode: set between fetching a mispredicted CTI and its
	// resolution; while set, fetch synthesizes wrong-path uops.
	wrongPath   bool
	wrongPathPC uint64
	wpBranch    *pipeline.Uop

	// Fetch-policy inputs.
	outL1, outL2   int // outstanding (unresolved) L1 / L2 data misses
	predL1, predL2 int // in-flight loads predicted to miss
	recentACE      float64
	vaLastACE      uint64

	// Progress.
	committed  uint64
	nextCommit uint64 // trace sequence number the next commit must carry
	quota      uint64 // per-thread instruction limit (0 = unlimited)
	finished   bool

	// Statistics.
	fetched        uint64
	wrongPathFetch uint64
	mispredicts    uint64
	branches       uint64
	flushes        uint64
	squashedUops   uint64
	loadForwards   uint64
	dl1Loads       uint64
	dl1LoadMisses  uint64
	l2LoadMisses   uint64
	renameStalls   uint64
	iqFullStalls   uint64
	robFullStalls  uint64
	lsqFullStalls  uint64
}

// icount is the ICOUNT fetch-policy metric: instructions in the front end
// and the issue queue.
func (t *thread) icount(iq *pipeline.IQ) int {
	return len(t.fetchQ) + iq.ThreadCount(t.id)
}

// done reports whether the thread has reached its quota.
func (t *thread) done() bool { return t.finished }
