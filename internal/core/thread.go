package core

import (
	"smtavf/internal/branch"
	"smtavf/internal/pipeline"
	"smtavf/internal/trace"
)

// threadSpacing separates the address spaces of the contexts. The large
// component keeps the spaces disjoint; the page-granular stagger breaks the
// set-index congruence that identical virtual layouts would otherwise have
// in the shared caches and TLBs (real systems get this de-aliasing from
// physical page placement).
const (
	threadSpacing = 1 << 40
	threadStagger = 977 * 4096
)

// threadOffset is the address-space offset of thread tid.
func threadOffset(tid int) uint64 {
	return uint64(tid)*threadSpacing + uint64(tid)*threadStagger
}

// uopQueue is a fixed-capacity ring deque holding the front-end fetch
// queue. It stores pool ids; a plain slice re-sliced from the front walks
// its backing array forward and forces a fresh allocation every few
// dispatch groups, while the ring reuses one array for the whole run.
type uopQueue struct {
	buf  []pipeline.UID
	head int
	n    int
}

func newUopQueue(capacity int) uopQueue {
	return uopQueue{buf: make([]pipeline.UID, capacity)}
}

func (q *uopQueue) len() int            { return q.n }
func (q *uopQueue) front() pipeline.UID { return q.buf[q.head] }
func (q *uopQueue) back() pipeline.UID  { return q.buf[(q.head+q.n-1)%len(q.buf)] }
func (q *uopQueue) pushBack(u pipeline.UID) {
	if q.n == len(q.buf) {
		panic("core: fetch queue overflow")
	}
	q.buf[(q.head+q.n)%len(q.buf)] = u
	q.n++
}

func (q *uopQueue) popFront() pipeline.UID {
	u := q.buf[q.head]
	q.head = (q.head + 1) % len(q.buf)
	q.n--
	return u
}

func (q *uopQueue) popBack() pipeline.UID {
	i := (q.head + q.n - 1) % len(q.buf)
	u := q.buf[i]
	q.n--
	return u
}

// thread is one hardware context.
type thread struct {
	id      int
	stream  *trace.Stream
	wrong   *trace.WrongPath
	profile trace.Profile
	offset  uint64 // address-space offset (id * threadSpacing)

	// Private microarchitecture state.
	rob *pipeline.ROB
	lsq *pipeline.LSQ
	ras *branch.RAS

	// Fetch state.
	fetchQ        uopQueue // fetched, in the front-end pipe
	stallUntil    uint64   // IL1/ITLB miss or redirect penalty
	stallICache   bool     // current stallUntil is an IL1/ITLB miss (CPI stack)
	lastFetchLine uint64   // last IL1 line touched (access per line)

	// free recycles this thread's pool slots: fetch acquires, the
	// classification sites release (docs/performance.md has the ownership
	// rule). The free list is per-thread so a thread's slots are reused in
	// a deterministic order regardless of the other threads' progress.
	free []pipeline.UID

	// Wrong-path mode: set between fetching a mispredicted CTI and its
	// resolution; while set, fetch synthesizes wrong-path uops.
	wrongPath   bool
	wrongPathPC uint64
	wpBranch    pipeline.UID // NoUID when no mispredicted branch is pending

	// Fetch-policy inputs.
	outL1, outL2   int // outstanding (unresolved) L1 / L2 data misses
	predL1, predL2 int // in-flight loads predicted to miss
	recentACE      float64
	vaLastACE      uint64

	// Progress.
	committed  uint64
	nextCommit uint64 // trace sequence number the next commit must carry
	quota      uint64 // per-thread instruction limit (0 = unlimited)
	finished   bool

	// Statistics.
	fetched        uint64
	wrongPathFetch uint64
	mispredicts    uint64
	branches       uint64
	flushes        uint64
	squashedUops   uint64
	loadForwards   uint64
	dl1Loads       uint64
	dl1LoadMisses  uint64
	l2LoadMisses   uint64
	renameStalls   uint64
	iqFullStalls   uint64
	robFullStalls  uint64
	lsqFullStalls  uint64
}

// acquireUop returns a pool slot id, recycling the thread's free list when
// possible. The caller owns it until it hands it back with releaseUop at a
// classification site; the slot's fields are stale until Pool.Reset.
func (t *thread) acquireUop(pool *pipeline.Pool) pipeline.UID {
	if n := len(t.free); n > 0 {
		u := t.free[n-1]
		t.free = t.free[:n-1]
		return u
	}
	return pool.Alloc()
}

// releaseUop returns slot u to the free list. u must have left every
// pipeline structure and waiter list, and the flight recorder must already
// have copied it; the next acquireUop may hand the same slot out again.
func (t *thread) releaseUop(u pipeline.UID) {
	t.free = append(t.free, u)
}

// icount is the ICOUNT fetch-policy metric: instructions in the front end
// and the issue queue.
func (t *thread) icount(iq *pipeline.IQ) int {
	return t.fetchQ.len() + iq.ThreadCount(t.id)
}

// done reports whether the thread has reached its quota.
func (t *thread) done() bool { return t.finished }
