package core

import (
	"math"
	"testing"

	"smtavf/internal/avf"
)

func TestPhaseSampling(t *testing.T) {
	cfg := DefaultConfig(2)
	cfg.PhaseInterval = 1_000
	proc, err := New(cfg, profilesFor(t, []string{"bzip2", "twolf"}))
	if err != nil {
		t.Fatal(err)
	}
	res, err := proc.Run(Limits{TotalInstructions: 20_000})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Phases) < 2 {
		t.Fatalf("only %d phases sampled over %d cycles", len(res.Phases), res.Cycles)
	}
	// Phases must cover the run: committed counts sum to the total, cycles
	// are strictly increasing and end at the run's end.
	var committed uint64
	prev := uint64(0)
	for _, ph := range res.Phases {
		if ph.Cycle <= prev {
			t.Fatalf("phase cycles not increasing: %d after %d", ph.Cycle, prev)
		}
		prev = ph.Cycle
		committed += ph.Committed
		for s := avf.Struct(0); s < avf.NumStructs; s++ {
			if ph.AVF[s] < 0 {
				t.Fatalf("negative phase AVF for %v", s)
			}
		}
	}
	if committed != res.Total {
		t.Fatalf("phase commits sum to %d, run total %d", committed, res.Total)
	}
	if res.Phases[len(res.Phases)-1].Cycle != res.Cycles {
		t.Fatalf("last phase ends at %d, run at %d", res.Phases[len(res.Phases)-1].Cycle, res.Cycles)
	}
	// The cycle-weighted mean of phase IPCs must equal the run IPC.
	var ipcw float64
	start := uint64(0)
	for _, ph := range res.Phases {
		ipcw += ph.IPC * float64(ph.Cycle-start)
		start = ph.Cycle
	}
	if got := ipcw / float64(res.Cycles); math.Abs(got-res.IPC()) > 1e-9 {
		t.Fatalf("phase-weighted IPC %v vs run IPC %v", got, res.IPC())
	}
}

func TestPhaseSamplingDisabledByDefault(t *testing.T) {
	res := runMix(t, []string{"bzip2"}, "ICOUNT", 5_000)
	if len(res.Phases) != 0 {
		t.Fatalf("phases sampled without PhaseInterval: %d", len(res.Phases))
	}
}

func TestProcessorAVFWeighting(t *testing.T) {
	res := runMix(t, []string{"bzip2", "mcf"}, "ICOUNT", 20_000)
	p := res.ProcessorAVF()
	if p <= 0 || p > 1 {
		t.Fatalf("processor AVF %v", p)
	}
	// The whole-processor AVF must lie between the min and max structure
	// AVFs (it is a weighted average).
	lo, hi := 1.0, 0.0
	for s := avf.Struct(0); s < avf.NumStructs; s++ {
		v := res.AVF.Total[s]
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	if p < lo || p > hi {
		t.Fatalf("processor AVF %v outside [%v, %v]", p, lo, hi)
	}
	// The DL1 data array dominates the bit budget, so the processor AVF
	// must sit close to its AVF.
	if math.Abs(p-res.AVF.Total[avf.DL1Data]) > 0.2 {
		t.Errorf("processor AVF %v far from DL1-dominated expectation %v", p, res.AVF.Total[avf.DL1Data])
	}
}

func TestFITScalesLinearly(t *testing.T) {
	res := runMix(t, []string{"bzip2"}, "ICOUNT", 5_000)
	a := res.TotalFIT(1)
	b := res.TotalFIT(10)
	if a <= 0 {
		t.Fatal("zero FIT")
	}
	if math.Abs(b-10*a) > 1e-9*b {
		t.Fatalf("FIT not linear in raw rate: %v vs %v", b, 10*a)
	}
	// Per-structure FIT sums to the total.
	sum := 0.0
	for s := avf.Struct(0); s < avf.NumStructs; s++ {
		sum += res.FIT(s, 1)
	}
	if math.Abs(sum-a) > 1e-12 {
		t.Fatalf("per-structure FIT sums to %v, total %v", sum, a)
	}
}
