package core

import (
	"reflect"
	"testing"

	"smtavf/internal/telemetry"
)

func warmProc(t *testing.T, cfg Config, names []string) *Processor {
	t.Helper()
	proc, err := New(cfg, profilesFor(t, names))
	if err != nil {
		t.Fatal(err)
	}
	return proc
}

// An all-zero skip must be a strict no-op: the run that follows is
// bit-identical to a run on an untouched processor.
func TestFunctionalWarmupZeroSkipIsNoop(t *testing.T) {
	cfg := DefaultConfig(2)
	names := []string{"gcc", "mcf"}

	plain := warmProc(t, cfg, names)
	want, err := plain.Run(Limits{PerThread: []uint64{5000, 5000}})
	if err != nil {
		t.Fatal(err)
	}

	warmed := warmProc(t, cfg, names)
	if err := warmed.FunctionalWarmup([]uint64{0, 0}, 0); err != nil {
		t.Fatal(err)
	}
	got, err := warmed.Run(Limits{PerThread: []uint64{5000, 5000}})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(want, got) {
		t.Fatal("zero-skip FunctionalWarmup changed the run")
	}
}

// After a warmup skip, the detailed run picks up mid-stream: commits stay
// contiguous (the commit-order panic would fire otherwise) and the
// measurement covers exactly the per-thread quotas.
func TestFunctionalWarmupResumesMidStream(t *testing.T) {
	cfg := DefaultConfig(2)
	proc := warmProc(t, cfg, []string{"gcc", "mcf"})
	if err := proc.FunctionalWarmup([]uint64{5000, 3000}, 0); err != nil {
		t.Fatal(err)
	}
	res, err := proc.Run(Limits{PerThread: []uint64{2000, 1000}})
	if err != nil {
		t.Fatal(err)
	}
	if res.Committed[0] != 2000 || res.Committed[1] != 1000 || res.Total != 3000 {
		t.Fatalf("measured commits %v (total %d), want [2000 1000]", res.Committed, res.Total)
	}
	for s, a := range res.AVF.Total {
		if a < 0 || a > 1 {
			t.Errorf("struct %d AVF %v out of range after functional warmup", s, a)
		}
	}
}

// Warmup must be deterministic and leave a trace: two identically warmed
// machines produce equal checkpoints, and warmed state differs from cold.
func TestFunctionalWarmupDeterministicCheckpoint(t *testing.T) {
	cfg := DefaultConfig(2)
	names := []string{"gcc", "mcf"}
	skip := []uint64{4000, 4000}

	a := warmProc(t, cfg, names)
	if err := a.FunctionalWarmup(skip, 0); err != nil {
		t.Fatal(err)
	}
	b := warmProc(t, cfg, names)
	if err := b.FunctionalWarmup(skip, 0); err != nil {
		t.Fatal(err)
	}
	cold := warmProc(t, cfg, names).Checkpoint()

	cpA, cpB := a.Checkpoint(), b.Checkpoint()
	if !reflect.DeepEqual(cpA, cpB) {
		t.Fatalf("checkpoints differ between identical warmups:\n%+v\n%+v", cpA, cpB)
	}
	if cpA.DL1 == cold.DL1 || cpA.IL1 == cold.IL1 || cpA.Gshare[0] == cold.Gshare[0] {
		t.Errorf("warmup left caches/predictors cold: %+v", cpA)
	}
	if got, want := cpA.StreamSeq, skip; !reflect.DeepEqual(got, want) {
		t.Errorf("checkpoint stream positions %v, want %v", got, want)
	}
}

func TestFunctionalWarmupErrors(t *testing.T) {
	cfg := DefaultConfig(1)
	proc := warmProc(t, cfg, []string{"gcc"})
	if err := proc.FunctionalWarmup([]uint64{1, 2}, 0); err == nil {
		t.Error("skip length mismatch accepted")
	}
	if _, err := proc.Run(Limits{PerThread: []uint64{100}}); err != nil {
		t.Fatal(err)
	}
	if err := proc.FunctionalWarmup([]uint64{10}, 0); err == nil {
		t.Error("FunctionalWarmup after Run accepted")
	}

	warm := DefaultConfig(1)
	warm.Warmup = 100
	proc = warmProc(t, warm, []string{"gcc"})
	if err := proc.FunctionalWarmup([]uint64{10}, 0); err == nil {
		t.Error("FunctionalWarmup with Config.Warmup accepted")
	}

	proc = warmProc(t, cfg, []string{"gcc"})
	proc.SetTelemetry(telemetry.New(telemetry.Options{}))
	if err := proc.FunctionalWarmup([]uint64{10}, 0); err == nil {
		t.Error("FunctionalWarmup with telemetry attached accepted")
	}
}

// A bounded window must land on the same stream position and keep the
// structures warm enough to differ from cold.
func TestFunctionalWarmupWindow(t *testing.T) {
	cfg := DefaultConfig(1)
	proc := warmProc(t, cfg, []string{"gcc"})
	if err := proc.FunctionalWarmup([]uint64{10_000}, 2048); err != nil {
		t.Fatal(err)
	}
	cp := proc.Checkpoint()
	if cp.StreamSeq[0] != 10_000 {
		t.Fatalf("stream at %d after windowed warmup, want 10000", cp.StreamSeq[0])
	}
	res, err := proc.Run(Limits{PerThread: []uint64{1000}})
	if err != nil {
		t.Fatal(err)
	}
	if res.Committed[0] != 1000 {
		t.Fatalf("committed %d, want 1000", res.Committed[0])
	}
}
