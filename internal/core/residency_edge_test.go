package core

import (
	"testing"

	"smtavf/internal/avf"
	"smtavf/internal/pipetrace"
)

// TestResidencySquashBeforeIssue drives a run long enough to squash
// dispatched-but-unissued work (branch recovery rolls the ROB back over
// entries still waiting in the IQ) and checks the side-table layout keeps
// those uops' residencies exact: the flight recorder — fed from the
// materialized observer view — reconciles bit-for-bit with the tracker,
// and the squash-before-issue records carry no FU or LSQ-data residency.
func TestResidencySquashBeforeIssue(t *testing.T) {
	_, rec := runWithPipeTrace(t, 0, pipetrace.Options{}, 20_000)
	sawSquashBeforeIssue := false
	for i := range rec.Records() {
		r := &rec.Records()[i]
		if r.Dispatch < 0 || r.Issue >= 0 {
			continue
		}
		if r.Fate != avf.FateSquashed && r.Fate != avf.FateWrongPath {
			// End-of-run accounting closes still-unissued in-flight uops
			// with their heading-for fate; only squashes are the edge case
			// under test.
			continue
		}
		sawSquashBeforeIssue = true
		if got := r.Span(avf.FU); got.Cycles != 0 || got.Start != 0 {
			t.Errorf("gseq %d: unissued uop has FU span %+v", r.GSeq, got)
		}
		if got := r.Span(avf.LSQData); got.Cycles != 0 {
			t.Errorf("gseq %d: unissued uop has LSQ-data span %+v", r.GSeq, got)
		}
	}
	if !sawSquashBeforeIssue {
		t.Fatal("run squashed no dispatched-but-unissued uops; edge case not exercised")
	}
}

// TestResidencyObserverAttachedMidRun attaches the flight recorder halfway
// through a run. Pre-attach classifications take the batched occupancy
// path; post-attach ones must switch to the positioned-interval path and
// report every uop to the observer. The recorder's totals then reconcile
// bit-for-bit with the tracker's growth since the attach point — including
// the pending batch drained at the attach-time read.
func TestResidencyObserverAttachedMidRun(t *testing.T) {
	cfg := DefaultConfig(2)
	proc, err := New(cfg, benchProfiles(t, "mcf", "gcc"))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3_000; i++ {
		proc.step()
	}
	trk := proc.Tracker()
	beforeRes := map[avf.Struct]uint64{}
	beforeACE := map[avf.Struct]uint64{}
	for _, s := range pipeStructs {
		beforeRes[s] = trk.OccupiedBitCycles(s)
		beforeACE[s] = trk.ACEBitCycles(s)
	}
	rec := pipetrace.New(pipetrace.Options{})
	proc.SetPipeTrace(rec)
	for i := 0; i < 5_000; i++ {
		proc.step()
	}
	if rec.Len() == 0 {
		t.Fatal("recorder attached mid-run saw no uops")
	}
	for _, s := range pipeStructs {
		if got, want := rec.ResidentBitCycles(s), trk.OccupiedBitCycles(s)-beforeRes[s]; got != want {
			t.Errorf("%s: recorder resident bit-cycles %d, tracker grew %d since attach", s, got, want)
		}
		if got, want := rec.ACEBitCycles(s), trk.ACEBitCycles(s)-beforeACE[s]; got != want {
			t.Errorf("%s: recorder ACE bit-cycles %d, tracker grew %d since attach", s, got, want)
		}
	}
}
