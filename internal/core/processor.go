package core

import (
	"fmt"

	"smtavf/internal/avf"
	"smtavf/internal/branch"
	"smtavf/internal/cpistack"
	"smtavf/internal/fetch"
	"smtavf/internal/mem"
	"smtavf/internal/pipeline"
	"smtavf/internal/pipetrace"
	"smtavf/internal/propagation"
	"smtavf/internal/telemetry"
	"smtavf/internal/trace"
)

// deadlockWindow is the commit-silence span, in cycles, after which a run
// is declared wedged. It comfortably exceeds the worst serialized memory
// chain (TLB miss + L2 miss + memory ≈ 420 cycles).
const deadlockWindow = 200_000

// Source supplies one thread's instruction stream.
type Source struct {
	// Gen produces the correct-path trace.
	Gen trace.Generator
	// Wrong synthesizes wrong-path instructions after a misprediction.
	Wrong *trace.WrongPath
}

// Processor is the simulated SMT machine.
type Processor struct {
	cfg        Config
	policy     fetch.Policy
	policyPure bool // policy has no per-Order state; fetch may skip idle cycles

	threads []*thread
	pool    *pipeline.Pool
	iq      *pipeline.IQ
	rf      *pipeline.RegFile
	fus     *pipeline.FUPool

	gshares    []*branch.Gshare // private per thread (paper §3)
	btbs       []*branch.BTB
	l1MissPred *branch.MissPredictor
	l2MissPred *branch.MissPredictor

	il1, dl1, l2 *mem.Cache
	itlb, dtlb   *mem.TLB

	trk *avf.Tracker

	now      uint64
	gseq     uint64
	inflight []pipeline.UID // issued, not yet written back

	// Writeback early-exit state (docs/performance.md): the earliest
	// ReadyAt among in-flight uops, and the count of squashed uops parked
	// on inflight awaiting release. When no result can land this cycle and
	// nothing is pending release, writeback skips its scan entirely.
	wbMinReady uint64
	wbSquashed int

	commitRR   int
	dispatchRR int

	totalCommitted  uint64
	lastCommitCycle uint64
	totalQuota      uint64

	// Phase sampling state (Config.PhaseInterval).
	phases      []Phase
	phaseCycle  uint64
	phaseCommit uint64
	phaseACE    [avf.NumStructs]uint64

	// Measurement window (Config.Warmup rebases these).
	measureStart  uint64
	warmCommitted uint64
	warmPerThread []uint64
	warmThread    []ThreadStats
	warmCounters  MachineCounters

	// Telemetry (SetTelemetry). tel is nil when disabled; the live
	// registry handles below are nil-receiver no-ops then.
	tel          *telemetry.Collector
	telBase      telemetrySnap
	telNext      uint64
	telIndex     int
	telCycle     *telemetry.Gauge
	telCommitted *telemetry.Counter
	telFlushes   *telemetry.Counter
	telSquashed  *telemetry.Counter

	// Pipeline flight recorder (SetPipeTrace). nil when detached; every
	// Record call below is then a nil-receiver no-op.
	rec *pipetrace.Recorder

	// Fault-propagation tracer (SetPropagation). nil when detached; fed
	// at the same sites as the flight recorder.
	prop *propagation.Tracer

	// CPI-stack observer (SetCPIStack). nil when detached: the per-cycle
	// attribution pass is skipped entirely and the Record hooks are
	// nil-receiver no-ops. cpiComps is per-cycle scratch, cpiPrev the
	// per-thread counter snapshots the attribution diffs against.
	cpi      *cpistack.Observer
	cpiComps []cpistack.Component
	cpiPrev  []cpiPrev

	// Per-cycle scratch, reused every cycle so the steady-state loop does
	// not allocate (docs/performance.md): fetchStates/fetchOrder feed the
	// fetch policy, issueBuf snapshots the IQ ready set, and flushBuf
	// collects the FLUSH-triggering loads of one issue pass.
	fetchStates []fetch.ThreadState
	fetchOrder  []int
	issueBuf    []pipeline.UID
	flushBuf    []pipeline.UID

	// anyObs is set while a pipetrace/propagation/cpistack observer is
	// attached; only then do the classification sites materialize pool
	// slots into the observer-facing obsUop scratch (the side-table rule
	// of docs/performance.md).
	anyObs bool
	obsUop pipeline.Uop
}

// New builds a processor running one synthetic benchmark per context.
// len(profiles) must equal cfg.Threads. Thread i's generators derive from
// cfg.Seed and i, so runs are exactly reproducible.
func New(cfg Config, profiles []trace.Profile) (*Processor, error) {
	srcs, err := Sources(cfg, profiles)
	if err != nil {
		return nil, err
	}
	return NewFromSources(cfg, srcs)
}

// Sources builds the per-thread instruction sources New derives from a
// profile list: thread i's generators are seeded from cfg.Seed and i, so
// any processor built from the same (cfg, profiles) pair replays the same
// program — the property sharded runs rely on to rebuild a fresh machine
// per interval.
func Sources(cfg Config, profiles []trace.Profile) ([]Source, error) {
	if len(profiles) != cfg.Threads {
		return nil, fmt.Errorf("core: %d profiles for %d threads", len(profiles), cfg.Threads)
	}
	srcs := make([]Source, len(profiles))
	for i, p := range profiles {
		seed := cfg.Seed + uint64(i)*0x9e37
		srcs[i] = Source{
			Gen:   trace.NewSynthetic(p, seed),
			Wrong: trace.NewWrongPath(p, seed),
		}
	}
	return srcs, nil
}

// NewFromSources builds a processor from explicit instruction sources,
// which lets tests drive the pipeline with scripted traces.
func NewFromSources(cfg Config, srcs []Source) (*Processor, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if len(srcs) != cfg.Threads {
		return nil, fmt.Errorf("core: %d sources for %d threads", len(srcs), cfg.Threads)
	}

	trk := avf.NewTracker(cfg.Threads, StructBits(cfg))
	// Pre-size the uop pool to the machine's worst-case in-flight
	// population: per thread the front-end queue, ROB, and a front-end
	// pipe's worth of slack (squashed uops can linger on inflight briefly).
	pool := pipeline.NewPool(cfg.Threads * (cfg.FetchQueue + cfg.ROBSize + cfg.FrontEndDepth))
	p := &Processor{
		cfg:        cfg,
		policy:     cfg.Policy,
		pool:       pool,
		iq:         pipeline.NewIQ(pool, cfg.IQSize, cfg.Threads, cfg.IQPartition),
		rf:         pipeline.NewRegFile(pool, cfg.IntPhysRegs, cfg.FPPhysRegs, cfg.Threads, trk, cfg.Bits),
		fus:        pipeline.NewFUPool(cfg.FUCounts),
		l1MissPred: branch.NewMissPredictor(cfg.MissPredEntries),
		l2MissPred: branch.NewMissPredictor(cfg.MissPredEntries),
		trk:        trk,
	}
	p.l2 = mem.New(cfg.L2, nil, cfg.MemLatency, nil, 0, 0)
	p.dl1 = mem.New(cfg.DL1, p.l2, 0, trk, avf.DL1Data, avf.DL1Tag)
	p.il1 = mem.New(cfg.IL1, p.l2, 0, nil, 0, 0)
	p.itlb = mem.NewTLB(cfg.ITLB, trk, avf.ITLB)
	p.dtlb = mem.NewTLB(cfg.DTLB, trk, avf.DTLB)

	for i, src := range srcs {
		if src.Gen == nil {
			return nil, fmt.Errorf("core: thread %d has no generator", i)
		}
		wrong := src.Wrong
		if wrong == nil {
			wrong = trace.NewWrongPath(trace.Profile{Name: src.Gen.Name()}, cfg.Seed+uint64(i))
		}
		t := &thread{
			id:       i,
			stream:   trace.NewStream(src.Gen),
			wrong:    wrong,
			offset:   threadOffset(i),
			fetchQ:   newUopQueue(cfg.FetchQueue),
			rob:      pipeline.NewROB(pool, cfg.ROBSize),
			lsq:      pipeline.NewLSQ(pool, cfg.LSQSize),
			ras:      branch.NewRAS(cfg.RASEntries),
			wpBranch: pipeline.NoUID,
		}
		p.threads = append(p.threads, t)
		p.btbs = append(p.btbs, branch.NewBTB(cfg.BTBEntries, cfg.BTBWays))
		p.gshares = append(p.gshares, branch.NewGshare(cfg.GshareEntries, cfg.GshareHistBits, 1))
	}
	// Writeback-driven wakeup: a register write that satisfies a waiting
	// IQ entry's last operand moves it to the ready set.
	p.rf.SetWake(p.iq.MarkReady)
	p.wbMinReady = ^uint64(0)
	_, stateful := cfg.Policy.(fetch.Stateful)
	p.policyPure = !stateful
	p.fetchStates = make([]fetch.ThreadState, cfg.Threads)
	p.fetchOrder = make([]int, 0, cfg.Threads)
	p.issueBuf = make([]pipeline.UID, 0, cfg.IQSize)
	p.flushBuf = make([]pipeline.UID, 0, cfg.Threads)
	return p, nil
}

// StructBits computes the AVF denominator capacities — each structure's
// total bits — from the machine configuration. Fault-injection campaigns
// (internal/inject) need the same values the tracker is built with.
func StructBits(cfg Config) [avf.NumStructs]uint64 {
	var b [avf.NumStructs]uint64
	th := uint64(cfg.Threads)
	b[avf.IQ] = uint64(cfg.IQSize) * cfg.Bits.IQEntry
	b[avf.ROB] = th * uint64(cfg.ROBSize) * cfg.Bits.ROBEntry
	units := 0
	for _, c := range cfg.FUCounts {
		units += c
	}
	b[avf.FU] = uint64(units) * cfg.Bits.FUUnit
	b[avf.Reg] = uint64(cfg.IntPhysRegs+cfg.FPPhysRegs) * cfg.Bits.RegEntry
	b[avf.LSQData] = th * uint64(cfg.LSQSize) * cfg.Bits.LSQDataEntry
	b[avf.LSQTag] = th * uint64(cfg.LSQSize) * cfg.Bits.LSQTagEntry
	b[avf.DL1Data] = uint64(cfg.DL1.Size) * 8
	b[avf.DL1Tag] = uint64(cfg.DL1.Sets()*cfg.DL1.Ways) * uint64(cfg.DL1.TagBits())
	b[avf.DTLB] = uint64(cfg.DTLB.Entries) * uint64(cfg.DTLB.EntryBits())
	b[avf.ITLB] = uint64(cfg.ITLB.Entries) * uint64(cfg.ITLB.EntryBits())
	return b
}

// Limits bounds a run. The run ends when TotalInstructions have committed
// across all threads (the paper's stop rule), or earlier if every thread
// hits its per-thread quota.
type Limits struct {
	// TotalInstructions across all threads; 0 means unlimited (some
	// PerThread quota must then be set).
	TotalInstructions uint64
	// PerThread quotas; nil or 0 entries mean unlimited. Used to replay a
	// thread's SMT progress in a single-thread run (Figures 3 and 4).
	PerThread []uint64
	// PartialTail marks the run as an interval of a longer sharded run
	// whose successor re-simulates the instructions still in flight when
	// this interval's quota is reached. The end-of-run drain then
	// classifies their residency un-ACE — the successor interval accounts
	// their ACE-ness when it actually commits them — instead of the
	// monolithic rule of classifying in-flight state with the fate it was
	// heading for. Without this, every interval boundary double-counts a
	// pipeline's worth of ACE residency.
	PartialTail bool
}

// Run simulates until the limits are reached and returns the results.
func (p *Processor) Run(lim Limits) (*Results, error) {
	if lim.TotalInstructions == 0 && lim.PerThread == nil {
		return nil, fmt.Errorf("core: Run needs a total or per-thread instruction limit")
	}
	if lim.PerThread != nil && len(lim.PerThread) != len(p.threads) {
		return nil, fmt.Errorf("core: %d per-thread limits for %d threads", len(lim.PerThread), len(p.threads))
	}
	for i, t := range p.threads {
		if lim.PerThread != nil {
			t.quota = lim.PerThread[i]
		}
	}
	p.totalQuota = lim.TotalInstructions
	maxCycles := p.cfg.MaxCycles
	if maxCycles == 0 {
		maxCycles = 1 << 40
	}
	p.lastCommitCycle = p.now

	guard := func() error {
		if p.now >= maxCycles {
			return fmt.Errorf("core: exceeded MaxCycles=%d (committed %d)", maxCycles, p.totalCommitted)
		}
		if p.now-p.lastCommitCycle > deadlockWindow {
			return fmt.Errorf("core: no commit for %d cycles at cycle %d (committed %d): pipeline wedged",
				deadlockWindow, p.now, p.totalCommitted)
		}
		return nil
	}

	if p.tel != nil {
		p.telemetryStart()
	}

	if p.cfg.Warmup > 0 {
		if lim.PerThread != nil {
			return nil, fmt.Errorf("core: Warmup cannot be combined with per-thread quotas")
		}
		for p.totalCommitted < p.cfg.Warmup {
			if err := guard(); err != nil {
				return nil, fmt.Errorf("during warmup: %w", err)
			}
			p.step()
			if p.tel != nil && p.now >= p.telNext {
				p.telemetryRoll(false)
			}
		}
		p.rebaseMeasurement()
	}

	for !p.done() {
		if err := guard(); err != nil {
			return nil, err
		}
		p.step()
		if iv := p.cfg.PhaseInterval; iv > 0 && p.now-p.phaseCycle >= iv {
			p.samplePhase()
		}
		if p.tel != nil && p.now >= p.telNext {
			p.telemetryRoll(false)
		}
	}
	p.closeAccounting(lim.PartialTail)
	if p.cfg.PhaseInterval > 0 && p.now > p.phaseCycle {
		p.samplePhase() // close the final partial phase
	}
	if p.tel != nil {
		// The final roll runs after closeAccounting so the intervals of
		// still-in-flight state land in the last window, keeping its
		// cumulative AVF identical to the end-of-run report.
		p.telemetryRoll(true)
	}
	return p.results(), nil
}

// rebaseMeasurement marks the end of warmup: all statistics reset while
// the microarchitectural state (caches, predictors, in-flight pipeline)
// stays warm.
func (p *Processor) rebaseMeasurement() {
	if p.tel != nil {
		// Close the partial warmup window before the accumulators reset,
		// so no window mixes warmup-era and measured intervals.
		p.telemetryRoll(false)
	}
	p.trk.Rebase(p.now) // also rebases the cpistack observer via its sink
	p.rec.Rebase(p.now)
	p.prop.Rebase(p.now)
	p.cpi.Rebase(p.now) // idempotent if the sink notification already ran
	p.measureStart = p.now
	p.warmCommitted = p.totalCommitted
	p.warmPerThread = make([]uint64, len(p.threads))
	p.warmThread = make([]ThreadStats, len(p.threads))
	for i, t := range p.threads {
		p.warmPerThread[i] = t.committed
		p.warmThread[i] = p.threadStats(t)
		t.vaLastACE = 0 // the tracker's counters were just zeroed
		t.recentACE = 0
	}
	p.warmCounters = p.counters()
	p.phaseCycle = p.now
	p.phaseCommit = p.totalCommitted
	p.phaseACE = [avf.NumStructs]uint64{}
	if p.tel != nil {
		p.tel.Rebase(p.now)
		p.telemetryStart() // re-baseline: the tracker was just zeroed
	}
}

// samplePhase records the IPC and per-structure AVF of the interval since
// the previous sample.
func (p *Processor) samplePhase() {
	dCycles := p.now - p.phaseCycle
	if dCycles == 0 {
		return
	}
	ph := Phase{
		Cycle:     p.now - p.measureStart, // relative to the measurement window
		Committed: p.totalCommitted - p.phaseCommit,
	}
	ph.IPC = float64(ph.Committed) / float64(dCycles)
	for s := avf.Struct(0); s < avf.NumStructs; s++ {
		ace := p.trk.ACEBitCycles(s)
		den := float64(p.trk.Bits(s)) * float64(dCycles)
		if den > 0 {
			ph.AVF[s] = float64(ace-p.phaseACE[s]) / den
		}
		p.phaseACE[s] = ace
	}
	p.phaseCycle = p.now
	p.phaseCommit = p.totalCommitted
	p.phases = append(p.phases, ph)
}

// done reports whether the run limits are satisfied. The total-instruction
// quota counts only post-warmup commits.
func (p *Processor) done() bool {
	if p.totalQuota > 0 && p.totalCommitted-p.warmCommitted >= p.totalQuota {
		return true
	}
	all := true
	for _, t := range p.threads {
		if !t.done() {
			all = false
			break
		}
	}
	return all
}

// step advances the machine one cycle. Stages run back-to-front so that
// same-cycle structural hazards resolve like hardware: commit frees
// resources, writeback wakes consumers, issue drains the IQ, dispatch
// refills it, fetch replenishes the front end.

func (p *Processor) step() {
	p.commit()
	p.writeback()
	p.issue()
	p.dispatch()
	p.fetchStage()
	if p.cpi != nil {
		p.cpiAccount()
	}
	p.now++
	p.telCycle.SetUint(p.now) // nil-receiver no-op when telemetry is off
}

// Now returns the current cycle.
func (p *Processor) Now() uint64 { return p.now }

// Tracker exposes the AVF tracker (tests and diagnostics).
func (p *Processor) Tracker() *avf.Tracker { return p.trk }

// AttachSink registers a positioned-interval observer (e.g. a fault
// injection campaign) on the AVF tracker. Call before Run.
func (p *Processor) AttachSink(s avf.Sink) { p.trk.SetSink(s) }

// SetPipeTrace attaches a pipeline flight recorder; every uop leaving the
// machine is reported to it at the same three sites that feed the AVF
// tracker, so the recorder's provenance totals reconcile with the
// tracker's bit-cycle counts exactly. Call before Run; nil detaches.
func (p *Processor) SetPipeTrace(r *pipetrace.Recorder) {
	p.rec = r
	r.SetBits(p.cfg.Bits)
	p.refreshObservers()
}

// refreshObservers recomputes the any-observer-attached flag after a
// Set* call; the classification sites skip materialization while clear.
func (p *Processor) refreshObservers() {
	p.anyObs = p.rec != nil || p.prop != nil || p.cpi != nil
}

// SetPropagation attaches a fault-propagation tracer; it observes the
// same commit/squash/end-of-run population the flight recorder and the
// AVF tracker see, so offline strike traces resolve victims against
// exactly the accounted state. Call before Run; nil detaches.
func (p *Processor) SetPropagation(t *propagation.Tracer) {
	p.prop = t
	t.Configure(p.cfg.Bits, p.cfg.DL1, p.cfg.Threads)
	p.refreshObservers()
}

// closeAccounting finalizes every open residency interval at the end of a
// run: in-flight uops are classified with the fate they were heading for
// (commit unless wrong-path), and the address structures close their
// resident entries. partialTail switches the in-flight classification to
// un-ACE (see Limits.PartialTail).
func (p *Processor) closeAccounting(partialTail bool) {
	pl := p.pool
	for _, t := range p.threads {
		for t.rob.Len() > 0 {
			u := t.rob.PopTail(p.now)
			if pl.Flags[u]&pipeline.FInIQ != 0 {
				p.iq.Remove(u, p.now)
				p.rf.Unwatch(u)
			}
			if pl.Meta[u].LSQIdx >= 0 {
				t.lsq.PopTail(p.now)
			}
			unACE := pl.Flags[u]&pipeline.FWrongPath != 0 || partialTail
			p.classifyUop(u, unACE)
			p.recordObservers(u, unACE)
		}
	}
	p.rf.CloseAccounting(p.now)
	p.dl1.CloseAccounting(p.now)
	p.itlb.CloseAccounting(p.now)
	p.dtlb.CloseAccounting(p.now)
}

// classifyUop retires slot u's residency accounting. With no interval
// sink attached it takes the batched occupancy path (Pool.ClassifyBatch →
// Tracker.AddSpan), which accumulates bit-cycle deltas and never emits
// positioned intervals; with a sink (a fault-injection campaign or the
// CPI-stack observer) it emits every interval through Pool.Classify in the
// classic order. The check is per-call, so a sink attached mid-run switches
// paths at the next classification with no pending-state handoff — the
// tracker drains its batch on first read.
func (p *Processor) classifyUop(u pipeline.UID, squashed bool) {
	if p.trk.HasSink() {
		p.pool.Classify(p.trk, p.cfg.Bits, u, squashed)
	} else {
		p.pool.ClassifyBatch(p.trk, p.cfg.Bits, u, squashed)
	}
}

// recordObservers materializes slot u into the observer-facing scratch
// view and reports it to every attached observer at a classification site.
// When nothing is attached the pool slot is never materialized — the
// side-table rule that keeps the bare hot loop free of struct traffic.
func (p *Processor) recordObservers(u pipeline.UID, squashed bool) {
	if !p.anyObs {
		return
	}
	p.pool.Materialize(u, &p.obsUop)
	p.rec.Record(&p.obsUop, p.now, squashed)
	p.prop.Record(&p.obsUop, p.now, squashed)
	p.cpi.Record(&p.obsUop, squashed)
}
