package core

import (
	"math"
	"testing"

	"smtavf/internal/avf"
	"smtavf/internal/inject"
)

// TestFaultInjectionCrossValidatesAVF runs a full simulation with a
// statistical fault-injection campaign attached and checks that the
// strike-based AVF estimate agrees with the ACE-residency computation for
// every structure — two independent derivations of the same quantity.
// It also checks that no structure is ever "overbooked" (more resident
// bits than capacity), which would reveal overlapping or double-counted
// intervals. Function units are exempt from the capacity check: pipelined
// units legitimately hold several in-flight operations, which the
// utilization-based FU accounting charges at full latency each.
func TestFaultInjectionCrossValidatesAVF(t *testing.T) {
	cfg := DefaultConfig(2)
	camp, err := inject.NewCampaign(StructBits(cfg), 1, 99) // exact: every cycle
	if err != nil {
		t.Fatal(err)
	}
	proc, err := New(cfg, profilesFor(t, []string{"gcc", "twolf"}))
	if err != nil {
		t.Fatal(err)
	}
	proc.AttachSink(camp)
	res, err := proc.Run(Limits{TotalInstructions: 20_000})
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range avf.Structs() {
		computed := res.StructAVF(s)
		estimated := camp.Estimate(s, res.Cycles)
		if math.Abs(computed-estimated) > 0.005+0.02*computed {
			t.Errorf("%v: ACE analysis %.4f vs fault injection %.4f", s, computed, estimated)
		}
		if s == avf.FU {
			continue
		}
		if n := camp.Overbooked(s); n != 0 {
			t.Errorf("%v: %d sample cycles exceed the structure's capacity (overlapping intervals)", s, n)
		}
	}
}

// TestFaultInjectionSparseSampling verifies the cheap sparse-sampling mode
// tracks the exact computation closely.
func TestFaultInjectionSparseSampling(t *testing.T) {
	cfg := DefaultConfig(2)
	camp, err := inject.NewCampaign(StructBits(cfg), 50, 3)
	if err != nil {
		t.Fatal(err)
	}
	proc, err := New(cfg, profilesFor(t, []string{"bzip2", "mcf"}))
	if err != nil {
		t.Fatal(err)
	}
	proc.AttachSink(camp)
	res, err := proc.Run(Limits{TotalInstructions: 20_000})
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range []avf.Struct{avf.IQ, avf.ROB, avf.Reg, avf.DL1Data} {
		computed := res.StructAVF(s)
		estimated := camp.Estimate(s, res.Cycles)
		if math.Abs(computed-estimated) > 0.01+0.1*computed {
			t.Errorf("%v: computed %.4f vs sparse estimate %.4f", s, computed, estimated)
		}
	}
}
