package core

import (
	"smtavf/internal/cpistack"
	"smtavf/internal/isa"
	"smtavf/internal/pipeline"
)

// cpiPrev snapshots one thread's cumulative counters so the per-cycle
// attribution pass can blame a cycle on whatever advanced (or refused to)
// since the previous cycle. The counters are cumulative and never reset,
// so deltas stay correct across a warmup rebase.
type cpiPrev struct {
	committed uint64
	robFull   uint64
	iqFull    uint64
	lsqFull   uint64
	rename    uint64
	fetched   uint64
}

// SetCPIStack attaches the CPI-stack/occupancy observer: the per-cycle
// attribution pass runs while it is set, uop residencies feed it at the
// same classification sites as the AVF tracker, and register-file
// intervals reach it through the tracker's sink (AddSink — call after any
// AttachSink so both observers see the stream). Call before Run; nil
// detaches.
func (p *Processor) SetCPIStack(o *cpistack.Observer) {
	p.cpi = o
	p.refreshObservers()
	if o == nil {
		p.cpiComps = nil
		p.cpiPrev = nil
		return
	}
	o.Configure(p.cfg.Bits, StructBits(p.cfg), p.cfg.Threads, p.now)
	p.trk.AddSink(o)
	p.cpiComps = make([]cpistack.Component, p.cfg.Threads)
	p.cpiPrev = make([]cpiPrev, p.cfg.Threads)
}

// cpiAccount attributes the cycle that just executed to one stack
// component per thread. It runs at the end of step() — after every stage
// has acted — so the counters it diffs reflect this cycle's outcome. The
// rule is a priority chain from the commit end backwards, which is what
// makes the components sum to the cycle count: exactly one clause fires.
//
//  1. finished quota                        -> idle
//  2. committed something                   -> base
//  3. ROB head is a load on an L2 miss      -> l2_miss
//  4. ROB head is a load on a DL1 miss      -> dcache_miss
//  5. wrong-path mode or a redirect bubble  -> branch_mispredict
//  6. dispatch stalled on ROB/IQ/LSQ/rename -> rob_full/iq_full/lsq_full/reg_starved
//  7. work in the ROB (execution latency)   -> base
//  8. front end stalled on an IL1/ITLB miss -> icache_miss
//  9. fetched or holding fetched work       -> base
//
// 10. runnable but fetched nothing          -> fetch_gated
//
// Memory blame outranks wrong-path mode (3-4 before 5) because commit is
// blocked by the head load whether or not the front end is off chasing a
// mispredicted path — mispredict cycles are the ones where the miss is
// NOT the bottleneck, which is what lets a memory-bound thread read as
// memory-bound.
//
// Clause 10 is the fetch policy's fingerprint: the thread could have
// fetched, and the policy gave the bandwidth elsewhere (ICOUNT priority
// loss, STALL/DG/PDG gating, FLUSH's post-squash lockout).
func (p *Processor) cpiAccount() {
	for i, t := range p.threads {
		prev := &p.cpiPrev[i]
		stalled := p.now < t.stallUntil
		var c cpistack.Component
		switch {
		case t.done():
			c = cpistack.CompIdle
		case t.committed != prev.committed:
			c = cpistack.CompBase
		default:
			c = p.cpiStall(t, prev, stalled)
		}
		p.cpiComps[i] = c
		prev.committed = t.committed
		prev.robFull = t.robFullStalls
		prev.iqFull = t.iqFullStalls
		prev.lsqFull = t.lsqFullStalls
		prev.rename = t.renameStalls
		prev.fetched = t.fetched
	}
	p.cpi.Tick(p.now, p.cpiComps)
}

// cpiStall classifies a runnable, non-committing thread — clauses 3-10 of
// the attribution chain. A not-yet-executed load at the ROB head with an
// outstanding miss is the canonical "stalled on memory" state, blamed on
// the deepest level it missed to (CountedL1/CountedL2 clear at writeback,
// so they are exactly "miss still outstanding").
func (p *Processor) cpiStall(t *thread, prev *cpiPrev, stalled bool) cpistack.Component {
	if u := t.rob.Head(); u != pipeline.NoUID &&
		p.pool.Flags[u]&pipeline.FExecuted == 0 && p.pool.Ins[u].Class == isa.Load {
		if p.pool.Flags[u]&pipeline.FCountedL2 != 0 {
			return cpistack.CompL2Miss
		}
		if p.pool.Flags[u]&pipeline.FCountedL1 != 0 {
			return cpistack.CompDCacheMiss
		}
	}
	switch {
	case t.wrongPath || (stalled && !t.stallICache):
		return cpistack.CompBranchMispredict
	case t.robFullStalls != prev.robFull:
		return cpistack.CompROBFull
	case t.iqFullStalls != prev.iqFull:
		return cpistack.CompIQFull
	case t.lsqFullStalls != prev.lsqFull:
		return cpistack.CompLSQFull
	case t.renameStalls != prev.rename:
		return cpistack.CompRegStarved
	case t.rob.Len() > 0:
		return cpistack.CompBase
	case stalled && t.stallICache:
		return cpistack.CompICacheMiss
	case t.fetchQ.len() > 0 || t.fetched != prev.fetched:
		return cpistack.CompBase
	}
	return cpistack.CompFetchGated
}
