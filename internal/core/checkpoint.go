package core

import "smtavf/internal/mem"

// Checkpoint is a lightweight architectural snapshot of the machine at an
// interval boundary: the per-thread stream positions plus digests of the
// rename maps, branch-predictor state, and cache/TLB tag arrays. Shards
// record one after functional warmup, before detailed simulation; because
// state is reconstructed deterministically rather than serialized and
// restored, a checkpoint only needs to identify the boundary state — two
// runs of the same shard plan must produce equal checkpoints, which the
// shard tests assert.
type Checkpoint struct {
	Cycle     uint64   // warmup clock at capture
	StreamSeq []uint64 // per-thread next correct-path sequence number

	RenameMap  uint64   // digest over every thread's rename table
	Gshare     []uint64 // per-thread direction-predictor digests
	BTB        []uint64 // per-thread target-buffer digests
	RAS        []uint64 // per-thread return-stack digests
	L1MissPred uint64
	L2MissPred uint64

	IL1, DL1, L2 mem.Snapshot // cache tag-array snapshots
	ITLB, DTLB   mem.Snapshot
}

// Checkpoint captures the current architectural state digests.
func (p *Processor) Checkpoint() Checkpoint {
	c := Checkpoint{
		Cycle:      p.now,
		RenameMap:  p.rf.RenameDigest(),
		L1MissPred: p.l1MissPred.Snapshot(),
		L2MissPred: p.l2MissPred.Snapshot(),
		IL1:        p.il1.Snapshot(),
		DL1:        p.dl1.Snapshot(),
		L2:         p.l2.Snapshot(),
		ITLB:       p.itlb.Snapshot(),
		DTLB:       p.dtlb.Snapshot(),
	}
	for i, t := range p.threads {
		c.StreamSeq = append(c.StreamSeq, t.nextCommit)
		c.Gshare = append(c.Gshare, p.gshares[i].Snapshot())
		c.BTB = append(c.BTB, p.btbs[i].Snapshot())
		c.RAS = append(c.RAS, t.ras.Snapshot())
	}
	return c
}
