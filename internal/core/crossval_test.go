package core

import (
	"testing"

	"smtavf/internal/avf"
	"smtavf/internal/crossval"
	"smtavf/internal/inject"
)

// runCrossVal simulates gcc+twolf with a campaign attached and returns
// the agreement report between the tracker and the strike experiment.
func runCrossVal(t *testing.T, warmup uint64, prot ProtectionModes) (*crossval.Report, *inject.Stats) {
	t.Helper()
	cfg := DefaultConfig(2)
	cfg.Warmup = warmup
	camp, err := inject.NewCampaign(StructBits(cfg), 1, 12345)
	if err != nil {
		t.Fatal(err)
	}
	camp.SetProtection(prot.Detections())
	proc, err := New(cfg, profilesFor(t, []string{"gcc", "twolf"}))
	if err != nil {
		t.Fatal(err)
	}
	proc.AttachSink(camp)
	res, err := proc.Run(Limits{TotalInstructions: 20_000})
	if err != nil {
		t.Fatal(err)
	}
	stats := camp.RunStrikes(res.Cycles, inject.StopWhen(0.02, 1<<20))
	var tracker [avf.NumStructs]float64
	for s := range tracker {
		tracker[s] = res.StructAVF(avf.Struct(s))
	}
	meta := crossval.Meta{Workload: "gcc+twolf", Policy: "ICOUNT", Seed: 12345, Seeds: 1, Every: 1, Cycles: res.Cycles}
	return crossval.Build(meta, tracker, stats), stats
}

// TestCrossValReportAgreesWithTracker is the acceptance criterion of the
// injection observatory: on a seed workload, every unprotected
// structure's tracker AVF must sit inside the strike experiment's 99%
// confidence interval — with and without a warmup rebase (the campaign
// re-anchors its grid when the tracker rebases, so the two observers
// cover the same measurement window either way).
func TestCrossValReportAgreesWithTracker(t *testing.T) {
	for _, tc := range []struct {
		name   string
		warmup uint64
	}{
		{"no-warmup", 0},
		{"warmup-rebase", 5_000},
	} {
		t.Run(tc.name, func(t *testing.T) {
			rep, stats := runCrossVal(t, tc.warmup, ProtectionModes{})
			if len(rep.Entries) != int(avf.NumStructs) {
				t.Fatalf("entries = %d, want every structure", len(rep.Entries))
			}
			if !rep.Pass() {
				t.Errorf("cross-validation failed:\n%s", rep.Table())
			}
			if !stats.StoppedEarly {
				t.Errorf("the 0.02 half-width target should stop the campaign early (ran %d strikes)", stats.TotalStrikes)
			}
			for _, e := range rep.Entries {
				if e.HalfWidth > 0.02 {
					t.Errorf("%s: half-width %.4f above the 0.02 stopping target", e.Struct, e.HalfWidth)
				}
			}
		})
	}
}

// TestCrossValProtectionTaxonomy: protected structures classify their ACE
// strikes as detected (parity → DUE) or corrected (ECC) instead of
// silent corruption — and the AVF agreement is unchanged, because
// detection reclassifies strikes without moving the estimate.
func TestCrossValProtectionTaxonomy(t *testing.T) {
	var prot ProtectionModes
	prot[avf.IQ] = ProtectParity
	prot[avf.ROB] = ProtectECC
	rep, stats := runCrossVal(t, 0, prot)
	if !rep.Pass() {
		t.Errorf("protection must not change the AVF estimates:\n%s", rep.Table())
	}
	iq := stats.PerStruct[avf.IQ]
	if iq.Outcomes[inject.SDC] != 0 || iq.Outcomes[inject.DUE] != iq.ACEStrikes() {
		t.Errorf("parity IQ: outcomes %v, want all ACE strikes as DUE", iq.Outcomes)
	}
	rob := stats.PerStruct[avf.ROB]
	if rob.Outcomes[inject.SDC] != 0 || rob.Outcomes[inject.Corrected] != rob.ACEStrikes() {
		t.Errorf("ECC ROB: outcomes %v, want all ACE strikes corrected", rob.Outcomes)
	}
	reg := stats.PerStruct[avf.Reg]
	if reg.Outcomes[inject.DUE] != 0 || reg.Outcomes[inject.Corrected] != 0 {
		t.Errorf("unprotected Reg: outcomes %v, want silent corruption only", reg.Outcomes)
	}
	for _, e := range rep.Entries {
		switch e.Struct {
		case avf.IQ.String():
			if e.Protection != "parity" {
				t.Errorf("IQ protection label = %q", e.Protection)
			}
		case avf.ROB.String():
			if e.Protection != "ecc" {
				t.Errorf("ROB protection label = %q", e.Protection)
			}
		default:
			if e.Protection != "none" {
				t.Errorf("%s protection label = %q", e.Struct, e.Protection)
			}
		}
	}
}

// TestProtectionModesDetections pins the core → inject mapping.
func TestProtectionModesDetections(t *testing.T) {
	var p ProtectionModes
	p[avf.IQ] = ProtectParity
	p[avf.ROB] = ProtectECC
	d := p.Detections()
	if d[avf.IQ] != inject.DetectOnly || d[avf.ROB] != inject.DetectCorrect || d[avf.Reg] != inject.DetectNone {
		t.Errorf("Detections() = %v", d)
	}
	if ProtectParity.String() != "parity" || ProtectECC.String() != "ecc" || ProtectNone.String() != "none" {
		t.Error("ProtectionMode strings changed")
	}
}

// TestProtectTop protects the top-k of a FIT-ranked plan.
func TestProtectTop(t *testing.T) {
	plan := []ProtectionItem{
		{Struct: avf.DL1Tag}, {Struct: avf.IQ}, {Struct: avf.ROB},
	}
	p := ProtectTop(plan, 2, ProtectECC)
	if p[avf.DL1Tag] != ProtectECC || p[avf.IQ] != ProtectECC {
		t.Errorf("top-2 not protected: %v", p)
	}
	if p[avf.ROB] != ProtectNone {
		t.Errorf("rank 3 should stay unprotected: %v", p)
	}
}
