package core

import (
	"sort"

	"smtavf/internal/avf"
	"smtavf/internal/inject"
)

// ProtectionMode is the error-protection scheme assumed on a structure
// when classifying fault-injection strike outcomes: parity detects an ACE
// hit (turning silent corruption into a detected unrecoverable error),
// ECC corrects it.
type ProtectionMode int

// Protection schemes, weakest first.
const (
	ProtectNone ProtectionMode = iota
	ProtectParity
	ProtectECC
)

func (m ProtectionMode) String() string {
	switch m {
	case ProtectParity:
		return "parity"
	case ProtectECC:
		return "ecc"
	default:
		return "none"
	}
}

// Detection maps the scheme onto the inject package's strike taxonomy.
func (m ProtectionMode) Detection() inject.Detection {
	switch m {
	case ProtectParity:
		return inject.DetectOnly
	case ProtectECC:
		return inject.DetectCorrect
	default:
		return inject.DetectNone
	}
}

// ProtectionModes assigns a scheme to every instrumented structure.
type ProtectionModes [avf.NumStructs]ProtectionMode

// Detections converts the per-structure schemes to the inject package's
// Detection levels, ready for Campaign.SetProtection.
func (p ProtectionModes) Detections() [avf.NumStructs]inject.Detection {
	var d [avf.NumStructs]inject.Detection
	for s := range p {
		d[s] = p[s].Detection()
	}
	return d
}

// ProtectTop returns the protection assignment that applies mode to the
// top-k structures of a protection plan — the paper's §5 "protect the
// biggest FIT contributors first" guidance turned into a campaign
// configuration.
func ProtectTop(plan []ProtectionItem, k int, mode ProtectionMode) ProtectionModes {
	var p ProtectionModes
	for i, item := range plan {
		if i >= k {
			break
		}
		p[item.Struct] = mode
	}
	return p
}

// ProtectionItem ranks one structure in a protection plan.
type ProtectionItem struct {
	Struct avf.Struct
	Bits   uint64  // capacity the protection must cover
	FIT    float64 // failure contribution at the given raw rate
	// CumulativeCoverage is the fraction of the whole-processor FIT
	// eliminated by protecting this structure and every one ranked above
	// it (assuming the protection — ECC/parity with recovery — removes
	// the structure's contribution entirely).
	CumulativeCoverage float64
}

// ProtectionPlan ranks the instrumented structures by their FIT
// contribution at the given raw error rate (FIT per megabit) — the
// paper's §5 guidance made actionable: "to avoid vulnerability hotspots
// in their designs, architects need to first focus on protecting those
// shared SMT microarchitecture structures". The returned list is sorted
// by descending FIT, with the cumulative fraction of chip FIT removed if
// the first k entries are protected.
func (r *Results) ProtectionPlan(rawFITPerMbit float64) []ProtectionItem {
	total := r.TotalFIT(rawFITPerMbit)
	items := make([]ProtectionItem, 0, avf.NumStructs)
	for s := avf.Struct(0); s < avf.NumStructs; s++ {
		items = append(items, ProtectionItem{
			Struct: s,
			Bits:   r.Bits[s],
			FIT:    r.FIT(s, rawFITPerMbit),
		})
	}
	sort.Slice(items, func(i, j int) bool {
		if items[i].FIT != items[j].FIT {
			return items[i].FIT > items[j].FIT
		}
		return items[i].Struct < items[j].Struct
	})
	cum := 0.0
	for i := range items {
		cum += items[i].FIT
		if total > 0 {
			items[i].CumulativeCoverage = cum / total
		}
	}
	return items
}
