package core

import (
	"encoding/json"
	"fmt"
)

// Config serializes to JSON with the fetch policy carried by name
// (policies are identified behaviourally by name; DG/PDG thresholds
// round-trip through their defaults). cmd/smtsim's -config flag and any
// experiment driver that persists machine descriptions use this.

// MarshalJSON implements json.Marshaler.
func (c Config) MarshalJSON() ([]byte, error) {
	type plain Config // strips methods, breaking the recursion
	name := ""
	if c.Policy != nil {
		name = c.Policy.Name()
	}
	cc := c
	cc.Policy = nil
	// The outer Policy field shadows the embedded interface field at a
	// shallower depth, so encoding/json uses the string.
	return json.Marshal(struct {
		plain
		Policy string
	}{plain(cc), name})
}

// UnmarshalJSON implements json.Unmarshaler, resolving the policy by
// name. An absent or empty policy name leaves the field nil (callers can
// fall back to a default).
func (c *Config) UnmarshalJSON(data []byte) error {
	type plain Config
	aux := struct {
		*plain
		Policy string
	}{plain: (*plain)(c)}
	if err := json.Unmarshal(data, &aux); err != nil {
		return err
	}
	c.Policy = nil
	if aux.Policy != "" {
		if err := c.SetPolicy(aux.Policy); err != nil {
			return fmt.Errorf("core: config: %w", err)
		}
	}
	return nil
}
