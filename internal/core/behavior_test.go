package core

import (
	"math"
	"testing"

	"smtavf/internal/avf"
	"smtavf/internal/isa"
	"smtavf/internal/trace"
)

// loopGen emits a tight loop: bodyLen independent ALU ops followed by an
// always-taken branch back to the top. Completely predictable after
// warmup.
type loopGen struct {
	bodyLen int
	i       uint64
}

func (g *loopGen) Name() string { return "loop" }
func (g *loopGen) Next() isa.Instruction {
	period := uint64(g.bodyLen + 1)
	pos := g.i % period
	in := isa.Instruction{
		Seq: g.i, PC: 0x400000 + pos*4,
		Src1: isa.RegNone, Src2: isa.RegNone, Dest: isa.RegNone,
	}
	if pos == uint64(g.bodyLen) {
		in.Class = isa.Branch
		in.Src1 = 1
		in.Taken = true
		in.Target = 0x400000
	} else {
		in.Class = isa.IntALU
		in.Src1 = isa.RegID(1 + pos%8)
		in.Dest = isa.RegID(10 + pos%8)
	}
	g.i++
	return in
}

// flipGen emits a branch whose direction is an LFSR bit — effectively
// unpredictable, so roughly half the branches mispredict.
type flipGen struct {
	i    uint64
	lfsr uint32
}

func (g *flipGen) Name() string { return "flip" }
func (g *flipGen) Next() isa.Instruction {
	const period = 4
	pos := g.i % period
	in := isa.Instruction{
		Seq: g.i, PC: 0x400000 + pos*4,
		Src1: isa.RegNone, Src2: isa.RegNone, Dest: isa.RegNone,
	}
	if pos == period-1 {
		if g.lfsr == 0 {
			g.lfsr = 0xACE1
		}
		bit := g.lfsr & 1
		g.lfsr = g.lfsr>>1 ^ (uint32(-int32(bit)) & 0xB400)
		in.Class = isa.Branch
		in.Src1 = 1
		in.Taken = bit == 1
		if in.Taken {
			in.Target = 0x400000
		}
		// Not-taken falls through to PC+4 = the loop top on the next lap
		// (PC wraps because pos resets), which the simulator never checks
		// — it is trace driven.
	} else {
		in.Class = isa.IntALU
		in.Src1 = isa.RegID(1 + pos)
		in.Dest = isa.RegID(10 + pos)
	}
	g.i++
	return in
}

func TestPredictableLoopRunsFast(t *testing.T) {
	cfg := DefaultConfig(1)
	proc, err := NewFromSources(cfg, []Source{{Gen: &loopGen{bodyLen: 7}}})
	if err != nil {
		t.Fatal(err)
	}
	res, err := proc.Run(Limits{TotalInstructions: 30_000})
	if err != nil {
		t.Fatal(err)
	}
	ts := res.Thread[0]
	if mr := ts.MispredictRate(); mr > 0.02 {
		t.Errorf("predictable loop mispredicted %.2f%% of branches", 100*mr)
	}
	if ipc := res.IPC(); ipc < 3 {
		t.Errorf("predictable loop IPC %.2f, want >= 3", ipc)
	}
}

func TestUnpredictableBranchesRecoverCorrectly(t *testing.T) {
	cfg := DefaultConfig(1)
	proc, err := NewFromSources(cfg, []Source{{Gen: &flipGen{}}})
	if err != nil {
		t.Fatal(err)
	}
	// The commit-order invariant (a panic in commit) is the real assert:
	// every mispredict recovery must resume the exact trace.
	res, err := proc.Run(Limits{TotalInstructions: 20_000})
	if err != nil {
		t.Fatal(err)
	}
	ts := res.Thread[0]
	if mr := ts.MispredictRate(); mr < 0.25 {
		t.Errorf("LFSR branches mispredicted only %.2f%%", 100*mr)
	}
	if ts.WrongPathFetch == 0 || ts.SquashedUops == 0 {
		t.Error("no wrong-path activity despite constant mispredicts")
	}
	if res.Total < 20_000 {
		t.Errorf("committed %d", res.Total)
	}
	// Mispredicting costs throughput.
	if ipc := res.IPC(); ipc > 4 {
		t.Errorf("IPC %.2f implausibly high under 50%% mispredicts", ipc)
	}
}

func TestCommitFairnessBetweenIdenticalThreads(t *testing.T) {
	cfg := DefaultConfig(2)
	proc, err := New(cfg, profilesFor(t, []string{"bzip2", "bzip2"}))
	if err != nil {
		t.Fatal(err)
	}
	res, err := proc.Run(Limits{TotalInstructions: 40_000})
	if err != nil {
		t.Fatal(err)
	}
	a, b := float64(res.Committed[0]), float64(res.Committed[1])
	if math.Abs(a-b)/(a+b) > 0.15 {
		t.Errorf("identical threads diverged: %v vs %v committed", a, b)
	}
}

func TestSingleFUBoundsThroughput(t *testing.T) {
	cfg := DefaultConfig(1)
	cfg.FUCounts[isa.FUIntALU] = 1
	pattern := []isa.Instruction{
		alu(5, 1), alu(6, 2), alu(7, 3), alu(8, 4),
	}
	proc := scriptedProc(t, cfg, pattern)
	res, err := proc.Run(Limits{TotalInstructions: 10_000})
	if err != nil {
		t.Fatal(err)
	}
	if ipc := res.IPC(); ipc > 1.01 {
		t.Errorf("one ALU sustained IPC %.2f", ipc)
	}
}

func TestNarrowFetchConfig(t *testing.T) {
	cfg := DefaultConfig(2)
	cfg.MaxFetchThreads = 1
	cfg.FetchWidth = 4
	proc, err := New(cfg, profilesFor(t, []string{"bzip2", "eon"}))
	if err != nil {
		t.Fatal(err)
	}
	res, err := proc.Run(Limits{TotalInstructions: 10_000})
	if err != nil {
		t.Fatal(err)
	}
	if res.Total < 10_000 {
		t.Fatalf("narrow front end committed %d", res.Total)
	}
}

func TestReplayDrivesProcessor(t *testing.T) {
	// Record a synthetic stream, replay it through the machine, and check
	// it behaves like the live generator (same committed work).
	gen := trace.NewSynthetic(profilesFor(t, []string{"bzip2"})[0], 1)
	rec := trace.Record(gen, 8_000)
	rep, err := trace.NewReplay("bzip2", rec)
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig(1)
	proc, err := NewFromSources(cfg, []Source{{Gen: rep}})
	if err != nil {
		t.Fatal(err)
	}
	res, err := proc.Run(Limits{TotalInstructions: 20_000}) // 2.5 laps
	if err != nil {
		t.Fatal(err)
	}
	if res.Total < 20_000 {
		t.Fatalf("replay committed %d", res.Total)
	}
}

func TestStoreTrafficReachesLSQDataAndDL1(t *testing.T) {
	res := runMix(t, []string{"swim"}, "ICOUNT", 20_000)
	if res.Thread[0].DL1Loads == 0 {
		t.Fatal("no loads")
	}
	// A streaming store-heavy workload must put data in the LSQ data
	// array and dirty the DL1.
	if res.AVF.Occ[avf.LSQData] == 0 {
		t.Error("LSQ data array never occupied despite stores")
	}
	if res.StructAVF(avf.DL1Data) == 0 {
		t.Error("DL1 data never ACE despite load/store traffic")
	}
}
