package core

import (
	"math"
	"testing"

	"smtavf/internal/avf"
	"smtavf/internal/telemetry"
	"smtavf/internal/trace"
	"smtavf/internal/workload"
)

func runWithTelemetry(t *testing.T, warmup uint64, window uint64, total uint64) (*Results, *telemetry.Collector) {
	t.Helper()
	cfg := DefaultConfig(2)
	cfg.Warmup = warmup
	proc, err := New(cfg, benchProfiles(t, "mcf", "gcc"))
	if err != nil {
		t.Fatal(err)
	}
	col := telemetry.New(telemetry.Options{WindowCycles: window})
	proc.SetTelemetry(col)
	res, err := proc.Run(Limits{TotalInstructions: total})
	if err != nil {
		t.Fatal(err)
	}
	return res, col
}

func TestTelemetryWindowsMatchFinalReport(t *testing.T) {
	res, col := runWithTelemetry(t, 0, 2_000, 30_000)
	ws := col.Ring()
	if len(ws) < 2 {
		t.Fatalf("got %d windows, want >= 2", len(ws))
	}

	// Windows tile the run: contiguous, monotonically indexed, last one
	// flagged final.
	for i := 1; i < len(ws); i++ {
		if ws[i].StartCycle != ws[i-1].EndCycle {
			t.Fatalf("window %d starts at %d, previous ended at %d",
				i, ws[i].StartCycle, ws[i-1].EndCycle)
		}
		if ws[i].Index != ws[i-1].Index+1 {
			t.Fatalf("window indices not consecutive: %d then %d", ws[i-1].Index, ws[i].Index)
		}
	}
	last := ws[len(ws)-1]
	if !last.Final {
		t.Fatal("last window not flagged final")
	}

	// The committed totals of all windows add up to the run's total.
	var committed uint64
	for _, w := range ws {
		committed += w.Committed
	}
	if committed != res.Total {
		t.Fatalf("windows commit %d instructions, run committed %d", committed, res.Total)
	}

	// Per-structure AVF varies between windows (phase behaviour): at
	// least one structure must differ between the first and some later
	// window.
	varies := false
	for _, s := range avf.Structs() {
		if math.Abs(ws[0].AVF[s.String()]-ws[len(ws)-2].AVF[s.String()]) > 1e-12 {
			varies = true
			break
		}
	}
	if !varies {
		t.Fatal("per-window AVF identical across windows — sampler not windowing")
	}

	// The final window's cumulative AVF equals the end-of-run report
	// within 1e-9 (acceptance criterion; it is the same computation).
	for _, s := range avf.Structs() {
		got := last.CumAVF[s.String()]
		want := res.AVF.AVF(s)
		if math.Abs(got-want) > 1e-9 {
			t.Fatalf("%s: final cumulative AVF %.12f, report %.12f", s, got, want)
		}
	}

	// The live registry counters track the run totals.
	snap := col.Snapshot()
	if snap.Counters["sim.committed"] != res.Total {
		t.Fatalf("live committed counter = %d, run total = %d",
			snap.Counters["sim.committed"], res.Total)
	}
	if uint64(snap.Gauges["sim.cycle"]) != res.Cycles {
		t.Fatalf("live cycle gauge = %v, run cycles = %d", snap.Gauges["sim.cycle"], res.Cycles)
	}
}

func TestTelemetryWarmupRebase(t *testing.T) {
	res, col := runWithTelemetry(t, 8_000, 2_000, 20_000)
	ws := col.Ring()
	if len(ws) < 3 {
		t.Fatalf("got %d windows, want >= 3", len(ws))
	}

	// Warmup windows are flagged, measured windows are not, and the two
	// eras never share a window: the flag flips exactly once.
	flips := 0
	for i := 1; i < len(ws); i++ {
		if ws[i].Warmup != ws[i-1].Warmup {
			flips++
			if ws[i].Warmup {
				t.Fatalf("window %d re-enters warmup", i)
			}
			// The boundary window ends exactly where measurement starts.
			if ws[i].StartCycle != ws[i-1].EndCycle {
				t.Fatalf("warmup boundary not aligned: %d vs %d", ws[i].StartCycle, ws[i-1].EndCycle)
			}
		}
	}
	if !ws[0].Warmup {
		t.Fatal("first window not flagged warmup")
	}
	if flips != 1 {
		t.Fatalf("warmup flag flipped %d times, want 1", flips)
	}

	// Measured windows alone reproduce the report.
	last := ws[len(ws)-1]
	for _, s := range avf.Structs() {
		if math.Abs(last.CumAVF[s.String()]-res.AVF.AVF(s)) > 1e-9 {
			t.Fatalf("%s: post-warmup cumulative AVF diverged from report", s)
		}
	}
	// Measured windows commit exactly the measured instruction total.
	var measured uint64
	for _, w := range ws {
		if !w.Warmup {
			measured += w.Committed
		}
	}
	if measured != res.Total {
		t.Fatalf("measured windows commit %d, run measured %d", measured, res.Total)
	}
}

func TestTelemetryDisabledIsInert(t *testing.T) {
	cfg := DefaultConfig(2)
	proc, err := New(cfg, benchProfiles(t, "mcf", "gcc"))
	if err != nil {
		t.Fatal(err)
	}
	// No SetTelemetry: the nil registry handles must not panic anywhere
	// on the hot path, and results must be identical to a telemetry run.
	res, err := proc.Run(Limits{TotalInstructions: 10_000})
	if err != nil {
		t.Fatal(err)
	}

	proc2, err := New(cfg, benchProfiles(t, "mcf", "gcc"))
	if err != nil {
		t.Fatal(err)
	}
	proc2.SetTelemetry(telemetry.New(telemetry.Options{WindowCycles: 1_000}))
	res2, err := proc2.Run(Limits{TotalInstructions: 10_000})
	if err != nil {
		t.Fatal(err)
	}
	if res.Cycles != res2.Cycles || res.Total != res2.Total {
		t.Fatalf("telemetry changed the simulation: %d/%d vs %d/%d cycles/instructions",
			res.Cycles, res.Total, res2.Cycles, res2.Total)
	}
	for _, s := range avf.Structs() {
		if res.AVF.AVF(s) != res2.AVF.AVF(s) {
			t.Fatalf("telemetry changed %s AVF: %v vs %v", s, res.AVF.AVF(s), res2.AVF.AVF(s))
		}
	}
}

// benchProfiles resolves named workload profiles, failing the test on
// unknown names.
func benchProfiles(t *testing.T, names ...string) []trace.Profile {
	t.Helper()
	out := make([]trace.Profile, 0, len(names))
	for _, n := range names {
		p, err := workload.Profile(n)
		if err != nil {
			t.Fatal(err)
		}
		out = append(out, p)
	}
	return out
}
