package core

import (
	"math"
	"strings"
	"testing"

	"smtavf/internal/avf"
	"smtavf/internal/isa"
	"smtavf/internal/trace"
	"smtavf/internal/workload"
)

// scriptGen repeats a fixed instruction pattern forever, assigning
// sequence numbers and PCs. Patterns must not contain CTIs (the PCs are
// synthesized linearly).
type scriptGen struct {
	name string
	ins  []isa.Instruction
	i    uint64
}

func (g *scriptGen) Name() string { return g.name }
func (g *scriptGen) Next() isa.Instruction {
	in := g.ins[g.i%uint64(len(g.ins))]
	in.Seq = g.i
	in.PC = 0x400000 + (g.i%uint64(len(g.ins)))*4
	g.i++
	return in
}

func alu(dest, src isa.RegID) isa.Instruction {
	return isa.Instruction{Class: isa.IntALU, Src1: src, Src2: isa.RegNone, Dest: dest}
}

func scriptedProc(t *testing.T, cfg Config, patterns ...[]isa.Instruction) *Processor {
	t.Helper()
	srcs := make([]Source, len(patterns))
	for i, p := range patterns {
		srcs[i] = Source{Gen: &scriptGen{name: "script", ins: p}}
	}
	proc, err := NewFromSources(cfg, srcs)
	if err != nil {
		t.Fatal(err)
	}
	return proc
}

func profilesFor(t *testing.T, names []string) []trace.Profile {
	t.Helper()
	var out []trace.Profile
	for _, n := range names {
		p, err := workload.Profile(n)
		if err != nil {
			t.Fatal(err)
		}
		out = append(out, p)
	}
	return out
}

func runMix(t *testing.T, names []string, policy string, instrs uint64) *Results {
	t.Helper()
	cfg := DefaultConfig(len(names))
	if err := cfg.SetPolicy(policy); err != nil {
		t.Fatal(err)
	}
	proc, err := New(cfg, profilesFor(t, names))
	if err != nil {
		t.Fatal(err)
	}
	res, err := proc.Run(Limits{TotalInstructions: instrs})
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestIndependentALUThroughput(t *testing.T) {
	// Fully independent single-source ALU ops: the 8-wide machine should
	// sustain several IPC on one thread.
	pattern := []isa.Instruction{
		alu(5, 1), alu(6, 2), alu(7, 3), alu(8, 4),
		alu(9, 1), alu(10, 2), alu(11, 3), alu(12, 4),
	}
	proc := scriptedProc(t, DefaultConfig(1), pattern)
	res, err := proc.Run(Limits{TotalInstructions: 50_000})
	if err != nil {
		t.Fatal(err)
	}
	if ipc := res.IPC(); ipc < 4 {
		t.Errorf("independent ALU IPC = %.2f, want >= 4", ipc)
	}
}

func TestDependentChainSerializes(t *testing.T) {
	// r5 = f(r5): a pure dependence chain can never exceed IPC 1.
	pattern := []isa.Instruction{alu(5, 5)}
	proc := scriptedProc(t, DefaultConfig(1), pattern)
	res, err := proc.Run(Limits{TotalInstructions: 20_000})
	if err != nil {
		t.Fatal(err)
	}
	if ipc := res.IPC(); ipc > 1.01 {
		t.Errorf("dependence chain IPC = %.2f, want <= 1", ipc)
	}
	if ipc := res.IPC(); ipc < 0.8 {
		t.Errorf("dependence chain IPC = %.2f, unexpectedly slow", ipc)
	}
}

func TestNOPsProduceNoACE(t *testing.T) {
	pattern := []isa.Instruction{{Class: isa.NOP, Src1: isa.RegNone, Src2: isa.RegNone, Dest: isa.RegNone}}
	proc := scriptedProc(t, DefaultConfig(1), pattern)
	res, err := proc.Run(Limits{TotalInstructions: 10_000})
	if err != nil {
		t.Fatal(err)
	}
	if res.StructAVF(avf.IQ) != 0 || res.StructAVF(avf.ROB) != 0 {
		t.Errorf("NOPs contributed ACE: IQ=%v ROB=%v", res.StructAVF(avf.IQ), res.StructAVF(avf.ROB))
	}
	if res.AVF.Occ[avf.ROB] == 0 {
		t.Error("NOPs should still occupy the ROB")
	}
}

func TestDeadResultsAreUnACE(t *testing.T) {
	dead := alu(isa.IntScratch, 1)
	dead.Dead = true
	proc := scriptedProc(t, DefaultConfig(1), []isa.Instruction{dead})
	res, err := proc.Run(Limits{TotalInstructions: 10_000})
	if err != nil {
		t.Fatal(err)
	}
	if res.StructAVF(avf.IQ) != 0 {
		t.Errorf("dead instructions contributed IQ ACE: %v", res.StructAVF(avf.IQ))
	}
}

func TestStoreLoadForwarding(t *testing.T) {
	st := isa.Instruction{Class: isa.Store, Src1: 1, Src2: 2, Dest: isa.RegNone, Addr: 0x1000_0000, Size: 8}
	ld := isa.Instruction{Class: isa.Load, Src1: 1, Src2: isa.RegNone, Dest: 5, Addr: 0x1000_0000, Size: 8}
	proc := scriptedProc(t, DefaultConfig(1), []isa.Instruction{st, ld})
	res, err := proc.Run(Limits{TotalInstructions: 2_000})
	if err != nil {
		t.Fatal(err)
	}
	if res.Thread[0].LoadForwards == 0 {
		t.Error("no store-to-load forwarding on a store/load pair to one address")
	}
}

func TestReproducibility(t *testing.T) {
	a := runMix(t, []string{"bzip2", "mcf"}, "ICOUNT", 20_000)
	b := runMix(t, []string{"bzip2", "mcf"}, "ICOUNT", 20_000)
	if a.Cycles != b.Cycles || a.Total != b.Total {
		t.Fatalf("runs differ: %d/%d vs %d/%d cycles/instrs", a.Cycles, a.Total, b.Cycles, b.Total)
	}
	for _, s := range avf.Structs() {
		if a.StructAVF(s) != b.StructAVF(s) {
			t.Fatalf("%v AVF differs between identical runs", s)
		}
	}
}

func TestSeedChangesRun(t *testing.T) {
	cfg := DefaultConfig(1)
	cfg.Seed = 2
	proc, err := New(cfg, profilesFor(t, []string{"bzip2"}))
	if err != nil {
		t.Fatal(err)
	}
	b, err := proc.Run(Limits{TotalInstructions: 20_000})
	if err != nil {
		t.Fatal(err)
	}
	a := runMix(t, []string{"bzip2"}, "ICOUNT", 20_000) // seed 1
	if a.Cycles == b.Cycles {
		t.Log("warning: different seeds produced identical cycle counts (possible but unlikely)")
	}
}

func TestAVFsWithinBounds(t *testing.T) {
	res := runMix(t, []string{"gcc", "mcf", "vpr", "perlbmk"}, "ICOUNT", 40_000)
	for _, s := range avf.Structs() {
		a := res.StructAVF(s)
		if a < 0 || a > 1 {
			t.Errorf("%v AVF %v out of [0,1]", s, a)
		}
		if occ := res.AVF.Occ[s]; a > occ+1e-9 {
			t.Errorf("%v AVF %v exceeds occupancy %v", s, a, occ)
		}
	}
}

func TestThreadAVFPartition(t *testing.T) {
	res := runMix(t, []string{"bzip2", "eon", "gcc", "perlbmk"}, "ICOUNT", 40_000)
	for _, s := range avf.Structs() {
		sum := 0.0
		for tid := 0; tid < res.Threads; tid++ {
			sum += res.AVF.ThreadAVF(s, tid)
		}
		if math.Abs(sum-res.StructAVF(s)) > 1e-9 {
			t.Errorf("%v: thread contributions %v != total %v", s, sum, res.StructAVF(s))
		}
	}
}

func TestSMTBeatsSingleThreadOnCPUWork(t *testing.T) {
	st := runMix(t, []string{"bzip2"}, "ICOUNT", 30_000)
	smt := runMix(t, []string{"bzip2", "eon", "gcc", "perlbmk"}, "ICOUNT", 60_000)
	if smt.IPC() <= st.IPC() {
		t.Errorf("SMT IPC %.2f <= single-thread IPC %.2f on CPU-bound work", smt.IPC(), st.IPC())
	}
}

func TestMemWorkRaisesIQAVF(t *testing.T) {
	cpu := runMix(t, []string{"bzip2", "eon", "gcc", "perlbmk"}, "ICOUNT", 60_000)
	mem := runMix(t, []string{"mcf", "equake", "vpr", "swim"}, "ICOUNT", 60_000)
	if mem.StructAVF(avf.IQ) <= cpu.StructAVF(avf.IQ) {
		t.Errorf("MEM IQ AVF %.3f <= CPU IQ AVF %.3f (paper expects higher)",
			mem.StructAVF(avf.IQ), cpu.StructAVF(avf.IQ))
	}
	if mem.StructAVF(avf.FU) >= cpu.StructAVF(avf.FU) {
		t.Errorf("MEM FU AVF %.3f >= CPU FU AVF %.3f (paper expects lower)",
			mem.StructAVF(avf.FU), cpu.StructAVF(avf.FU))
	}
}

func TestFlushSlashesIQAVFOnMemWork(t *testing.T) {
	names := []string{"mcf", "equake", "vpr", "swim"}
	base := runMix(t, names, "ICOUNT", 40_000)
	fl := runMix(t, names, "FLUSH", 40_000)
	if fl.StructAVF(avf.IQ) >= 0.5*base.StructAVF(avf.IQ) {
		t.Errorf("FLUSH IQ AVF %.3f not well below ICOUNT's %.3f",
			fl.StructAVF(avf.IQ), base.StructAVF(avf.IQ))
	}
	if fl.StructAVF(avf.ROB) >= 0.5*base.StructAVF(avf.ROB) {
		t.Errorf("FLUSH ROB AVF %.3f not well below ICOUNT's %.3f",
			fl.StructAVF(avf.ROB), base.StructAVF(avf.ROB))
	}
	if fl.Thread[0].Flushes == 0 && fl.Thread[1].Flushes == 0 {
		t.Error("FLUSH policy never flushed on a memory-bound mix")
	}
}

func TestAllPoliciesRunClean(t *testing.T) {
	names := []string{"gcc", "mcf"}
	for _, pol := range []string{"ICOUNT", "STALL", "FLUSH", "DG", "PDG", "DWarn", "STALLP"} {
		res := runMix(t, names, pol, 20_000)
		if res.Total < 20_000 {
			t.Errorf("%s committed only %d", pol, res.Total)
		}
		if res.Policy != pol {
			t.Errorf("results report policy %q", res.Policy)
		}
	}
}

func TestPerThreadQuotas(t *testing.T) {
	cfg := DefaultConfig(2)
	proc, err := New(cfg, profilesFor(t, []string{"bzip2", "eon"}))
	if err != nil {
		t.Fatal(err)
	}
	res, err := proc.Run(Limits{PerThread: []uint64{5_000, 8_000}})
	if err != nil {
		t.Fatal(err)
	}
	if res.Committed[0] != 5_000 || res.Committed[1] != 8_000 {
		t.Fatalf("committed %v, want [5000 8000]", res.Committed)
	}
}

func TestRunRequiresLimit(t *testing.T) {
	proc, err := New(DefaultConfig(1), profilesFor(t, []string{"bzip2"}))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := proc.Run(Limits{}); err == nil {
		t.Fatal("limitless run accepted")
	}
}

func TestPerThreadLimitLengthChecked(t *testing.T) {
	proc, err := New(DefaultConfig(2), profilesFor(t, []string{"bzip2", "eon"}))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := proc.Run(Limits{PerThread: []uint64{1}}); err == nil {
		t.Fatal("mismatched per-thread limits accepted")
	}
}

func TestMaxCyclesEnforced(t *testing.T) {
	cfg := DefaultConfig(1)
	cfg.MaxCycles = 100
	proc, err := New(cfg, profilesFor(t, []string{"mcf"}))
	if err != nil {
		t.Fatal(err)
	}
	_, err = proc.Run(Limits{TotalInstructions: 1 << 40})
	if err == nil || !strings.Contains(err.Error(), "MaxCycles") {
		t.Fatalf("err = %v, want MaxCycles error", err)
	}
}

func TestConfigValidation(t *testing.T) {
	bad := []func(*Config){
		func(c *Config) { c.Threads = 0 },
		func(c *Config) { c.FetchWidth = 0 },
		func(c *Config) { c.IQSize = 0 },
		func(c *Config) { c.IntPhysRegs = 10 },
		func(c *Config) { c.FPPhysRegs = 10 },
		func(c *Config) { c.Policy = nil },
		func(c *Config) { c.FrontEndDepth = 0 },
		func(c *Config) { c.MaxFetchThreads = 0 },
	}
	for i, f := range bad {
		cfg := DefaultConfig(2)
		f(&cfg)
		if err := cfg.Validate(); err == nil {
			t.Errorf("mutation %d accepted", i)
		}
	}
	good := DefaultConfig(4)
	if err := good.Validate(); err != nil {
		t.Errorf("default config rejected: %v", err)
	}
}

func TestNewErrors(t *testing.T) {
	if _, err := New(DefaultConfig(2), profilesFor(t, []string{"bzip2"})); err == nil {
		t.Error("profile/thread count mismatch accepted")
	}
	if _, err := NewFromSources(DefaultConfig(1), []Source{{}}); err == nil {
		t.Error("nil generator accepted")
	}
	cfg := DefaultConfig(1)
	cfg.Threads = 0
	if _, err := New(cfg, nil); err == nil {
		t.Error("invalid config accepted")
	}
}

func TestSetPolicy(t *testing.T) {
	cfg := DefaultConfig(1)
	if err := cfg.SetPolicy("FLUSH"); err != nil || cfg.Policy.Name() != "FLUSH" {
		t.Fatalf("SetPolicy failed: %v", err)
	}
	if err := cfg.SetPolicy("NOPE"); err == nil {
		t.Fatal("unknown policy accepted")
	}
}

func TestResultsRendering(t *testing.T) {
	res := runMix(t, []string{"bzip2", "eon"}, "ICOUNT", 10_000)
	s := res.String()
	for _, want := range []string{"policy=ICOUNT", "bzip2", "eon", "IQ", "DL1_tag", "machine:"} {
		if !strings.Contains(s, want) {
			t.Errorf("report missing %q", want)
		}
	}
	if got := res.SortedWorkloads(); len(got) != 2 || got[0] != "bzip2" {
		t.Errorf("SortedWorkloads = %v", got)
	}
}

func TestIQPartitionAblation(t *testing.T) {
	cfg := DefaultConfig(4)
	cfg.IQPartition = 24 // static quarter per thread
	proc, err := New(cfg, profilesFor(t, []string{"bzip2", "eon", "gcc", "perlbmk"}))
	if err != nil {
		t.Fatal(err)
	}
	res, err := proc.Run(Limits{TotalInstructions: 20_000})
	if err != nil {
		t.Fatal(err)
	}
	if res.Total < 20_000 {
		t.Fatalf("partitioned IQ run committed %d", res.Total)
	}
}

func TestDeadlockDetector(t *testing.T) {
	// A machine whose loads can never issue (no load/store units) wedges;
	// the detector must report it rather than spin forever.
	cfg := DefaultConfig(1)
	cfg.FUCounts[isa.FULoadStore] = 0
	proc, err := New(cfg, profilesFor(t, []string{"bzip2"}))
	if err != nil {
		t.Fatal(err)
	}
	_, err = proc.Run(Limits{TotalInstructions: 10_000})
	if err == nil || !strings.Contains(err.Error(), "wedged") {
		t.Fatalf("err = %v, want wedged-pipeline error", err)
	}
}

func TestEfficiencyHelpers(t *testing.T) {
	res := runMix(t, []string{"bzip2", "eon"}, "ICOUNT", 10_000)
	if res.Efficiency(avf.IQ) <= 0 {
		t.Error("IQ efficiency should be positive")
	}
	for tid := 0; tid < 2; tid++ {
		if res.ThreadIPC(tid) <= 0 {
			t.Errorf("thread %d IPC zero", tid)
		}
		if res.ThreadEfficiency(avf.IQ, tid) <= 0 {
			t.Errorf("thread %d IQ efficiency zero", tid)
		}
	}
	// Private structures scale per-thread AVF by thread count.
	priv := res.ThreadStructAVF(avf.ROB, 0)
	contrib := res.AVF.ThreadAVF(avf.ROB, 0)
	if math.Abs(priv-2*contrib) > 1e-12 {
		t.Errorf("private-structure scaling wrong: %v vs %v", priv, contrib)
	}
}
