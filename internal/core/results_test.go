package core

import (
	"math"
	"reflect"
	"strings"
	"testing"

	"smtavf/internal/avf"
)

// sampleResults builds a hand-crafted Results with round numbers so every
// derived metric has a closed-form expected value.
func sampleResults() *Results {
	rep := avf.Report{Cycles: 1000, Threads: 2}
	rep.PerThread = make([][avf.NumStructs]float64, 2)
	for s := avf.Struct(0); s < avf.NumStructs; s++ {
		rep.Total[s] = 0.25
		rep.PerThread[0][s] = 0.15
		rep.PerThread[1][s] = 0.10
	}
	var bits [avf.NumStructs]uint64
	for s := avf.Struct(0); s < avf.NumStructs; s++ {
		bits[s] = 1000
	}
	return &Results{
		Threads:   2,
		Policy:    "ICOUNT",
		Cycles:    1000,
		Committed: []uint64{600, 400},
		Total:     1000,
		AVF:       rep,
		Bits:      bits,
		Thread: []ThreadStats{
			{Workload: "mcf", Committed: 600, Branches: 100, Mispredicts: 10,
				DL1Loads: 200, DL1LoadMisses: 50},
			{Workload: "gcc", Committed: 400},
		},
		Machine: MachineStats{DL1MissRate: 0.25},
	}
}

func TestResultsIPC(t *testing.T) {
	r := sampleResults()
	if got := r.IPC(); got != 1.0 {
		t.Errorf("IPC = %v, want 1.0", got)
	}
	if got := r.ThreadIPC(0); got != 0.6 {
		t.Errorf("ThreadIPC(0) = %v, want 0.6", got)
	}
	if got := r.ThreadIPC(1); got != 0.4 {
		t.Errorf("ThreadIPC(1) = %v, want 0.4", got)
	}
	zero := &Results{Committed: []uint64{0}}
	if zero.IPC() != 0 || zero.ThreadIPC(0) != 0 {
		t.Error("zero-cycle Results must report IPC 0, not NaN")
	}
}

func TestThreadStructAVFScalesPrivateStructures(t *testing.T) {
	r := sampleResults()
	// Shared structures report the raw per-thread contribution.
	if got := r.ThreadStructAVF(avf.IQ, 0); got != 0.15 {
		t.Errorf("IQ thread AVF = %v, want 0.15", got)
	}
	// Private structures (per-thread ROB/LSQ copies) scale by thread count
	// so single-thread and SMT runs compare directly.
	for _, s := range []avf.Struct{avf.ROB, avf.LSQData, avf.LSQTag} {
		if got, want := r.ThreadStructAVF(s, 0), 0.15*2; math.Abs(got-want) > 1e-15 {
			t.Errorf("%s thread AVF = %v, want %v", s, got, want)
		}
	}
}

func TestProcessorAVF(t *testing.T) {
	r := sampleResults()
	// Equal bit weights: the bit-weighted mean equals the plain mean.
	if got := r.ProcessorAVF(); math.Abs(got-0.25) > 1e-15 {
		t.Errorf("ProcessorAVF = %v, want 0.25", got)
	}
	// Doubling one structure's capacity shifts the weighted mean toward it.
	r.Bits[avf.IQ] = 11000
	r.AVF.Total[avf.IQ] = 0.45
	got := r.ProcessorAVF()
	want := (0.45*11000 + 0.25*9000) / 20000
	if math.Abs(got-want) > 1e-15 {
		t.Errorf("weighted ProcessorAVF = %v, want %v", got, want)
	}
	var empty Results
	if empty.ProcessorAVF() != 0 {
		t.Error("zero-capacity Results must report ProcessorAVF 0")
	}
}

func TestFIT(t *testing.T) {
	r := sampleResults()
	// FIT = raw × bits/1e6 × AVF = 1000 × 0.001 × 0.25.
	if got := r.FIT(avf.IQ, 1000); math.Abs(got-0.25) > 1e-15 {
		t.Errorf("FIT(IQ) = %v, want 0.25", got)
	}
	want := 0.25 * float64(avf.NumStructs)
	if got := r.TotalFIT(1000); math.Abs(got-want) > 1e-12 {
		t.Errorf("TotalFIT = %v, want %v", got, want)
	}
}

func TestEfficiency(t *testing.T) {
	r := sampleResults()
	if got := r.Efficiency(avf.IQ); got != 4.0 {
		t.Errorf("Efficiency(IQ) = %v, want 4.0", got)
	}
	if got := r.ThreadEfficiency(avf.IQ, 0); got != 0.6/0.15 {
		t.Errorf("ThreadEfficiency(IQ,0) = %v, want 4.0", got)
	}
	r.AVF.Total[avf.FU] = 0
	r.AVF.PerThread[0][avf.FU] = 0
	if r.Efficiency(avf.FU) != 0 || r.ThreadEfficiency(avf.FU, 0) != 0 {
		t.Error("zero-AVF efficiency must be 0, not +Inf")
	}
}

func TestThreadStatsRates(t *testing.T) {
	ts := ThreadStats{Branches: 100, Mispredicts: 10, DL1Loads: 200, DL1LoadMisses: 50}
	if got := ts.MispredictRate(); got != 0.1 {
		t.Errorf("MispredictRate = %v, want 0.1", got)
	}
	if got := ts.DL1LoadMissRate(); got != 0.25 {
		t.Errorf("DL1LoadMissRate = %v, want 0.25", got)
	}
	var empty ThreadStats
	if empty.MispredictRate() != 0 || empty.DL1LoadMissRate() != 0 {
		t.Error("zero-denominator rates must be 0, not NaN")
	}
}

func TestRate(t *testing.T) {
	if got := rate(1, 4); got != 0.25 {
		t.Errorf("rate(1,4) = %v, want 0.25", got)
	}
	if got := rate(1, 0); got != 0 {
		t.Errorf("rate(1,0) = %v, want 0", got)
	}
}

// TestThreadStatsMinus checks the warmup-baseline subtraction covers every
// counter field: each field set to 10 in the snapshot and 3 in the baseline
// must come out as 7. Reflection guards against new fields silently being
// skipped in minus.
func TestThreadStatsMinus(t *testing.T) {
	fill := func(v uint64) ThreadStats {
		var ts ThreadStats
		rv := reflect.ValueOf(&ts).Elem()
		for i := 0; i < rv.NumField(); i++ {
			if rv.Field(i).Kind() == reflect.Uint64 {
				rv.Field(i).SetUint(v)
			}
		}
		return ts
	}
	got := fill(10).minus(fill(3))
	rv := reflect.ValueOf(got)
	for i := 0; i < rv.NumField(); i++ {
		f := rv.Field(i)
		if f.Kind() != reflect.Uint64 {
			continue
		}
		if f.Uint() != 7 {
			t.Errorf("minus left field %s = %d, want 7 (field not subtracted?)",
				rv.Type().Field(i).Name, f.Uint())
		}
	}
}

func TestResultsString(t *testing.T) {
	r := sampleResults()
	s := r.String()
	for _, want := range []string{
		"policy=ICOUNT threads=2 cycles=1000 instructions=1000 IPC=1.000",
		"thread 0 (mcf): committed=600 IPC=0.600 mispred=10.00% dl1miss=25.00%",
		"thread 1 (gcc): committed=400 IPC=0.400",
		"machine: dl1miss=25.00%",
		"structure AVFs:",
	} {
		if !strings.Contains(s, want) {
			t.Errorf("String() missing %q in:\n%s", want, s)
		}
	}
	// Every instrumented structure appears with its AVF and efficiency.
	for _, st := range avf.Structs() {
		if !strings.Contains(s, st.String()) {
			t.Errorf("String() missing structure %s", st)
		}
	}
	if n := strings.Count(s, "AVF= 25.00%"); n != avf.NumStructs {
		t.Errorf("String() shows %d structures at 25%% AVF, want %d", n, avf.NumStructs)
	}
}

func TestSortedWorkloads(t *testing.T) {
	r := &Results{Thread: []ThreadStats{
		{Workload: "vpr"}, {Workload: "gcc"}, {Workload: "vpr"}, {Workload: "mcf"},
	}}
	got := r.SortedWorkloads()
	want := []string{"gcc", "mcf", "vpr"}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("SortedWorkloads = %v, want %v", got, want)
	}
}
