package core

import (
	"fmt"
	"sort"
	"strings"

	"smtavf/internal/avf"
)

// ThreadStats summarizes one context's run.
type ThreadStats struct {
	Workload       string
	Committed      uint64
	Fetched        uint64
	WrongPathFetch uint64
	Branches       uint64
	Mispredicts    uint64
	Flushes        uint64
	SquashedUops   uint64
	LoadForwards   uint64
	DL1Loads       uint64
	DL1LoadMisses  uint64
	L2LoadMisses   uint64
	RenameStalls   uint64
	IQFullStalls   uint64
	ROBFullStalls  uint64
	LSQFullStalls  uint64
}

// MispredictRate returns mispredicted branches / branches.
func (t ThreadStats) MispredictRate() float64 {
	if t.Branches == 0 {
		return 0
	}
	return float64(t.Mispredicts) / float64(t.Branches)
}

// DL1LoadMissRate returns load misses / loads.
func (t ThreadStats) DL1LoadMissRate() float64 {
	if t.DL1Loads == 0 {
		return 0
	}
	return float64(t.DL1LoadMisses) / float64(t.DL1Loads)
}

// MachineStats summarizes shared-resource behaviour.
type MachineStats struct {
	DL1MissRate   float64
	L2MissRate    float64
	IL1MissRate   float64
	DTLBMissRate  float64
	ITLBMissRate  float64
	FUUtilization float64
}

// Phase is one sampled interval of a run (Config.PhaseInterval): the IPC
// and per-structure AVF of that interval alone.
type Phase struct {
	Cycle     uint64 // end cycle of the interval
	Committed uint64 // instructions committed within the interval
	IPC       float64
	AVF       [avf.NumStructs]float64
}

// Results is the output of one simulation run: performance, the AVF report,
// and diagnostics.
type Results struct {
	Threads   int
	Policy    string
	Cycles    uint64
	Committed []uint64
	Total     uint64
	AVF       avf.Report
	Bits      [avf.NumStructs]uint64 // structure capacities (AVF denominators)
	Thread    []ThreadStats
	Machine   MachineStats
	Counters  MachineCounters // raw counts behind Machine (mergeable)
	Phases    []Phase         // nonempty only when Config.PhaseInterval is set
}

// IPC returns aggregate committed instructions per cycle.
func (r *Results) IPC() float64 {
	if r.Cycles == 0 {
		return 0
	}
	return float64(r.Total) / float64(r.Cycles)
}

// ThreadIPC returns thread tid's committed instructions per cycle.
func (r *Results) ThreadIPC(tid int) float64 {
	if r.Cycles == 0 {
		return 0
	}
	return float64(r.Committed[tid]) / float64(r.Cycles)
}

// StructAVF returns the whole-structure AVF of s.
func (r *Results) StructAVF(s avf.Struct) float64 { return r.AVF.AVF(s) }

// ThreadStructAVF returns thread tid's AVF on structure s. For shared
// structures this is the thread's contribution to the shared array's AVF;
// for per-thread private structures (ROB, LSQ) it is the AVF of the
// thread's own copy, so single-thread and SMT runs compare directly
// (Figures 3 and 4).
func (r *Results) ThreadStructAVF(s avf.Struct, tid int) float64 {
	v := r.AVF.ThreadAVF(s, tid)
	if isPrivate(s) {
		return v * float64(r.Threads)
	}
	return v
}

func isPrivate(s avf.Struct) bool {
	switch s {
	case avf.ROB, avf.LSQData, avf.LSQTag:
		return true
	}
	return false
}

// ProcessorAVF aggregates the per-structure AVFs into a whole-processor
// estimate, weighting each structure by its bit capacity (the paper's §2:
// "add the AVF values of all of the hardware structures together by
// weighting them by the number of bits within each structure").
func (r *Results) ProcessorAVF() float64 {
	var num, den float64
	for s := avf.Struct(0); s < avf.NumStructs; s++ {
		num += r.AVF.Total[s] * float64(r.Bits[s])
		den += float64(r.Bits[s])
	}
	if den == 0 {
		return 0
	}
	return num / den
}

// FIT estimates the failure-in-time contribution of structure s given a
// raw (circuit-level) error rate in FIT per megabit: FIT = raw × bits ×
// AVF. The raw rate cancels in comparisons, which is why the paper reports
// AVF alone; FIT is offered for absolute what-if studies.
func (r *Results) FIT(s avf.Struct, rawFITPerMbit float64) float64 {
	return rawFITPerMbit * float64(r.Bits[s]) / 1e6 * r.AVF.Total[s]
}

// TotalFIT sums FIT over all instrumented structures.
func (r *Results) TotalFIT(rawFITPerMbit float64) float64 {
	sum := 0.0
	for s := avf.Struct(0); s < avf.NumStructs; s++ {
		sum += r.FIT(s, rawFITPerMbit)
	}
	return sum
}

// Efficiency returns the reliability-efficiency metric IPC/AVF for
// structure s (proportional to MITF at fixed frequency and raw error
// rate). It returns +Inf-free 0 when the AVF is zero.
func (r *Results) Efficiency(s avf.Struct) float64 {
	a := r.StructAVF(s)
	if a == 0 {
		return 0
	}
	return r.IPC() / a
}

// ThreadEfficiency returns thread tid's IPC over its AVF on structure s.
func (r *Results) ThreadEfficiency(s avf.Struct, tid int) float64 {
	a := r.ThreadStructAVF(s, tid)
	if a == 0 {
		return 0
	}
	return r.ThreadIPC(tid) / a
}

// String renders a human-readable report.
func (r *Results) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "policy=%s threads=%d cycles=%d instructions=%d IPC=%.3f\n",
		r.Policy, r.Threads, r.Cycles, r.Total, r.IPC())
	for tid, ts := range r.Thread {
		fmt.Fprintf(&b, "  thread %d (%s): committed=%d IPC=%.3f mispred=%.2f%% dl1miss=%.2f%%\n",
			tid, ts.Workload, ts.Committed, r.ThreadIPC(tid),
			100*ts.MispredictRate(), 100*ts.DL1LoadMissRate())
		fmt.Fprintf(&b, "    fetched=%d wrongpath=%d squashed=%d flushes=%d fwd=%d stalls[ren=%d iq=%d rob=%d lsq=%d]\n",
			ts.Fetched, ts.WrongPathFetch, ts.SquashedUops, ts.Flushes,
			ts.LoadForwards, ts.RenameStalls, ts.IQFullStalls, ts.ROBFullStalls, ts.LSQFullStalls)
	}
	fmt.Fprintf(&b, "  machine: dl1miss=%.2f%% l2miss=%.2f%% il1miss=%.2f%% dtlbmiss=%.2f%% itlbmiss=%.2f%% fuutil=%.2f%%\n",
		100*r.Machine.DL1MissRate, 100*r.Machine.L2MissRate, 100*r.Machine.IL1MissRate,
		100*r.Machine.DTLBMissRate, 100*r.Machine.ITLBMissRate, 100*r.Machine.FUUtilization)
	b.WriteString("  structure AVFs:\n")
	for _, s := range avf.Structs() {
		fmt.Fprintf(&b, "    %-9s AVF=%6.2f%%  IPC/AVF=%8.2f\n",
			s, 100*r.StructAVF(s), r.Efficiency(s))
	}
	return b.String()
}

// threadStats snapshots thread t's raw counters.
func (p *Processor) threadStats(t *thread) ThreadStats {
	return ThreadStats{
		Workload:       t.stream.Name(),
		Committed:      t.committed,
		Fetched:        t.fetched,
		WrongPathFetch: t.wrongPathFetch,
		Branches:       t.branches,
		Mispredicts:    t.mispredicts,
		Flushes:        t.flushes,
		SquashedUops:   t.squashedUops,
		LoadForwards:   t.loadForwards,
		DL1Loads:       t.dl1Loads,
		DL1LoadMisses:  t.dl1LoadMisses,
		L2LoadMisses:   t.l2LoadMisses,
		RenameStalls:   t.renameStalls,
		IQFullStalls:   t.iqFullStalls,
		ROBFullStalls:  t.robFullStalls,
		LSQFullStalls:  t.lsqFullStalls,
	}
}

// Plus sums two counter snapshots covering disjoint intervals of the same
// thread (sharded-run merging). The workload name is taken from a.
func (a ThreadStats) Plus(b ThreadStats) ThreadStats {
	a.Committed += b.Committed
	a.Fetched += b.Fetched
	a.WrongPathFetch += b.WrongPathFetch
	a.Branches += b.Branches
	a.Mispredicts += b.Mispredicts
	a.Flushes += b.Flushes
	a.SquashedUops += b.SquashedUops
	a.LoadForwards += b.LoadForwards
	a.DL1Loads += b.DL1Loads
	a.DL1LoadMisses += b.DL1LoadMisses
	a.L2LoadMisses += b.L2LoadMisses
	a.RenameStalls += b.RenameStalls
	a.IQFullStalls += b.IQFullStalls
	a.ROBFullStalls += b.ROBFullStalls
	a.LSQFullStalls += b.LSQFullStalls
	return a
}

// minus subtracts a warmup baseline from a counter snapshot.
func (a ThreadStats) minus(b ThreadStats) ThreadStats {
	a.Committed -= b.Committed
	a.Fetched -= b.Fetched
	a.WrongPathFetch -= b.WrongPathFetch
	a.Branches -= b.Branches
	a.Mispredicts -= b.Mispredicts
	a.Flushes -= b.Flushes
	a.SquashedUops -= b.SquashedUops
	a.LoadForwards -= b.LoadForwards
	a.DL1Loads -= b.DL1Loads
	a.DL1LoadMisses -= b.DL1LoadMisses
	a.L2LoadMisses -= b.L2LoadMisses
	a.RenameStalls -= b.RenameStalls
	a.IQFullStalls -= b.IQFullStalls
	a.ROBFullStalls -= b.ROBFullStalls
	a.LSQFullStalls -= b.LSQFullStalls
	return a
}

// MachineCounters holds the raw shared-resource event counts behind
// MachineStats. Results carries them (measurement window only) so runs
// over disjoint intervals merge exactly: counts are summed and the rates
// recomputed, instead of averaging floats.
type MachineCounters struct {
	DL1Accesses, DL1Misses   uint64
	L2Accesses, L2Misses     uint64
	IL1Accesses, IL1Misses   uint64
	DTLBAccesses, DTLBMisses uint64
	ITLBAccesses, ITLBMisses uint64
	FUBusy                   uint64 // unit-cycles any function unit was busy
	FUUnits                  uint64 // total function units (for utilization)
}

func (p *Processor) counters() MachineCounters {
	return MachineCounters{
		DL1Accesses: p.dl1.Accesses, DL1Misses: p.dl1.Misses,
		L2Accesses: p.l2.Accesses, L2Misses: p.l2.Misses,
		IL1Accesses: p.il1.Accesses, IL1Misses: p.il1.Misses,
		DTLBAccesses: p.dtlb.Accesses, DTLBMisses: p.dtlb.Misses,
		ITLBAccesses: p.itlb.Accesses, ITLBMisses: p.itlb.Misses,
		FUBusy: p.fus.BusyAll,
	}
}

// Plus sums two counter snapshots covering disjoint intervals (FUUnits is
// a capacity: it must agree, not add).
func (a MachineCounters) Plus(b MachineCounters) MachineCounters {
	a.DL1Accesses += b.DL1Accesses
	a.DL1Misses += b.DL1Misses
	a.L2Accesses += b.L2Accesses
	a.L2Misses += b.L2Misses
	a.IL1Accesses += b.IL1Accesses
	a.IL1Misses += b.IL1Misses
	a.DTLBAccesses += b.DTLBAccesses
	a.DTLBMisses += b.DTLBMisses
	a.ITLBAccesses += b.ITLBAccesses
	a.ITLBMisses += b.ITLBMisses
	a.FUBusy += b.FUBusy
	return a
}

// minus subtracts a warmup baseline (the count-valued fields only; FUUnits
// is a capacity, not a count).
func (a MachineCounters) minus(b MachineCounters) MachineCounters {
	a.DL1Accesses -= b.DL1Accesses
	a.DL1Misses -= b.DL1Misses
	a.L2Accesses -= b.L2Accesses
	a.L2Misses -= b.L2Misses
	a.IL1Accesses -= b.IL1Accesses
	a.IL1Misses -= b.IL1Misses
	a.DTLBAccesses -= b.DTLBAccesses
	a.DTLBMisses -= b.DTLBMisses
	a.ITLBAccesses -= b.ITLBAccesses
	a.ITLBMisses -= b.ITLBMisses
	a.FUBusy -= b.FUBusy
	return a
}

// Stats derives the rate view over a window of cycles.
func (c MachineCounters) Stats(cycles uint64) MachineStats {
	fu := 0.0
	if c.FUUnits > 0 && cycles > 0 {
		fu = float64(c.FUBusy) / float64(c.FUUnits*cycles)
	}
	return MachineStats{
		DL1MissRate:   rate(c.DL1Misses, c.DL1Accesses),
		L2MissRate:    rate(c.L2Misses, c.L2Accesses),
		IL1MissRate:   rate(c.IL1Misses, c.IL1Accesses),
		DTLBMissRate:  rate(c.DTLBMisses, c.DTLBAccesses),
		ITLBMissRate:  rate(c.ITLBMisses, c.ITLBAccesses),
		FUUtilization: fu,
	}
}

func rate(m, a uint64) float64 {
	if a == 0 {
		return 0
	}
	return float64(m) / float64(a)
}

// results assembles the Results after a finished run, reporting only the
// measurement window (post-warmup).
func (p *Processor) results() *Results {
	meas := p.now - p.measureStart
	r := &Results{
		Threads:   p.cfg.Threads,
		Policy:    p.policy.Name(),
		Cycles:    meas,
		Committed: make([]uint64, len(p.threads)),
		Total:     p.totalCommitted - p.warmCommitted,
		AVF:       p.trk.Snapshot(meas),
		Bits:      StructBits(p.cfg),
		Phases:    p.phases,
	}
	for i, t := range p.threads {
		ts := p.threadStats(t)
		if p.warmThread != nil {
			ts = ts.minus(p.warmThread[i])
		}
		r.Committed[i] = ts.Committed
		r.Thread = append(r.Thread, ts)
	}
	d := p.counters().minus(p.warmCounters)
	d.FUUnits = uint64(p.fus.TotalUnits())
	r.Counters = d
	r.Machine = d.Stats(meas)
	return r
}

// SortedWorkloads returns the distinct workload names in the run.
func (r *Results) SortedWorkloads() []string {
	seen := map[string]bool{}
	var out []string
	for _, t := range r.Thread {
		if !seen[t.Workload] {
			seen[t.Workload] = true
			out = append(out, t.Workload)
		}
	}
	sort.Strings(out)
	return out
}
