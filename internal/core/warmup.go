package core

import (
	"fmt"

	"smtavf/internal/isa"
	"smtavf/internal/mem"
)

// FunctionalWarmup advances every thread's instruction stream by skip[t]
// correct-path instructions without simulating pipeline timing, then
// rebases measurement so the detailed run that follows reports only its
// own interval. It is how a shard reconstructs the machine state at its
// interval boundary: each skipped instruction is replayed through the
// long-lived structures it would have touched — instruction and data
// caches, TLBs, branch direction/target predictors, the return address
// stack, and the load miss predictors — on a compressed clock of one cycle
// per round-robin round. Pipeline occupancy (IQ/ROB/LSQ/registers) is not
// reconstructed; it refills within a few hundred cycles of detailed
// simulation and is the dominant term of the shard error bound documented
// in docs/sharding.md.
//
// window, when non-zero, bounds the warmed suffix per thread: at most that
// many instructions are replayed through the structures, and the skipped
// prefix before them is fast-forwarded through the generator (O(1) for
// trace.Seekable sources). A window shorter than the structures' reuse
// distance widens the error bound; see docs/sharding.md.
//
// FunctionalWarmup must be called on a fresh processor, before Run, and is
// incompatible with attached telemetry, pipe tracing, and Config.Warmup
// (the shard plan owns the warmup split).
func (p *Processor) FunctionalWarmup(skip []uint64, window uint64) error {
	if len(skip) != len(p.threads) {
		return fmt.Errorf("core: %d warmup skips for %d threads", len(skip), len(p.threads))
	}
	if p.now != 0 || p.totalCommitted != 0 {
		return fmt.Errorf("core: FunctionalWarmup must precede Run (cycle %d)", p.now)
	}
	if p.tel != nil || p.rec != nil {
		return fmt.Errorf("core: FunctionalWarmup is incompatible with telemetry/pipetrace")
	}
	if p.cfg.Warmup > 0 {
		return fmt.Errorf("core: FunctionalWarmup cannot be combined with Config.Warmup")
	}
	any := false
	for _, n := range skip {
		if n > 0 {
			any = true
		}
	}
	if !any {
		return nil // shard 0: a cold start is exactly the monolithic prefix
	}

	rem := make([]uint64, len(p.threads))
	for i, t := range p.threads {
		start := uint64(0)
		if window > 0 && skip[i] > window {
			start = skip[i] - window
		}
		t.stream.Forward(start)
		rem[i] = skip[i] - start
	}
	for {
		active := false
		for i, t := range p.threads {
			if rem[i] == 0 {
				continue
			}
			active = true
			in := t.stream.Next()
			t.stream.Release(t.stream.Cursor())
			p.warmInstruction(t, in)
			rem[i]--
		}
		if !active {
			break
		}
		p.now++
	}
	for i, t := range p.threads {
		t.nextCommit = skip[i]
	}
	p.lastCommitCycle = p.now
	p.rebaseMeasurement()
	return nil
}

// warmInstruction replays one correct-path instruction through the
// long-lived structures, mirroring the accesses the detailed front end and
// issue stages would make (stages.go: fetchThread, predictCTI, issue,
// commit) minus timing, ports, and wrong-path effects.
func (p *Processor) warmInstruction(t *thread, in isa.Instruction) {
	pc := in.PC + t.offset
	line := pc &^ (uint64(p.cfg.IL1.LineSize) - 1)
	if line != t.lastFetchLine {
		p.itlb.Access(p.now, pc, t.id)
		p.il1.Access(p.now, pc, 4, false, t.id)
		t.lastFetchLine = line
	}
	switch {
	case in.Class.IsCTI():
		target := in.Target
		if in.Taken {
			target += t.offset
		}
		p.warmCTI(t, in.Class, pc, target, in.Taken)
	case in.Class == isa.Load:
		addr := in.Addr + t.offset
		p.dtlb.Access(p.now, addr, t.id)
		res := p.dl1.Access(p.now, addr, int(in.Size), false, t.id)
		p.l1MissPred.Update(pc, res.Kind != mem.Hit)
		p.l2MissPred.Update(pc, res.Kind == mem.L2Miss)
	case in.Class == isa.Store:
		addr := in.Addr + t.offset
		p.dtlb.Access(p.now, addr, t.id)
		p.dl1.Access(p.now, addr, int(in.Size), true, t.id)
	}
}

// warmCTI trains the front-end predictors with a correct-path control
// transfer, including the prediction-side table touches (BTB LRU, RAS
// pops) the detailed predictCTI makes.
func (p *Processor) warmCTI(t *thread, class isa.Class, pc, target uint64, taken bool) {
	btb := p.btbs[t.id]
	switch class {
	case isa.Branch:
		if p.gshares[t.id].Predict(0, pc) {
			btb.Lookup(pc) // LRU touch of the predicted target
		}
		p.gshares[t.id].Update(0, pc, taken)
	case isa.Call:
		btb.Lookup(pc)
		t.ras.Push(pc + 4)
	case isa.Return:
		t.ras.Pop()
	}
	if taken && class != isa.Return {
		btb.Insert(pc, target)
	}
}
