package core

import (
	"math"
	"testing"

	"smtavf/internal/avf"
)

func TestProtectionPlan(t *testing.T) {
	res := runMix(t, []string{"gcc", "mcf"}, "ICOUNT", 20_000)
	plan := res.ProtectionPlan(1000)
	if len(plan) != avf.NumStructs {
		t.Fatalf("plan covers %d structures", len(plan))
	}
	// Sorted by descending FIT.
	for i := 1; i < len(plan); i++ {
		if plan[i].FIT > plan[i-1].FIT {
			t.Fatalf("plan not sorted: %v after %v", plan[i], plan[i-1])
		}
	}
	// Cumulative coverage is monotone and ends at 1.
	prev := 0.0
	for _, item := range plan {
		if item.CumulativeCoverage < prev {
			t.Fatal("coverage not monotone")
		}
		prev = item.CumulativeCoverage
	}
	if math.Abs(prev-1) > 1e-9 {
		t.Fatalf("full plan covers %.4f of FIT", prev)
	}
	// FIT entries must match Results.FIT.
	for _, item := range plan {
		if math.Abs(item.FIT-res.FIT(item.Struct, 1000)) > 1e-9 {
			t.Fatalf("%v FIT mismatch", item.Struct)
		}
	}
	// The DL1 data array dominates the bit budget; with nonzero AVF it
	// should rank near the top.
	if plan[0].Struct != avf.DL1Data && plan[1].Struct != avf.DL1Data {
		t.Errorf("DL1_data not in the top two: %v, %v", plan[0].Struct, plan[1].Struct)
	}
}

func TestProtectionPlanZeroRate(t *testing.T) {
	res := runMix(t, []string{"bzip2"}, "ICOUNT", 2_000)
	plan := res.ProtectionPlan(0)
	for _, item := range plan {
		if item.FIT != 0 || item.CumulativeCoverage != 0 {
			t.Fatal("zero raw rate must zero the plan")
		}
	}
}
