package core

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"smtavf/internal/avf"
	"smtavf/internal/pipetrace"
)

func runWithPipeTrace(t *testing.T, warmup uint64, opt pipetrace.Options, total uint64) (*Processor, *pipetrace.Recorder) {
	t.Helper()
	cfg := DefaultConfig(2)
	cfg.Warmup = warmup
	proc, err := New(cfg, benchProfiles(t, "mcf", "gcc"))
	if err != nil {
		t.Fatal(err)
	}
	rec := pipetrace.New(opt)
	proc.SetPipeTrace(rec)
	if _, err := proc.Run(Limits{TotalInstructions: total}); err != nil {
		t.Fatal(err)
	}
	return proc, rec
}

// pipeStructs are the structures whose residency the flight recorder
// accounts uop by uop, mirroring the tracker.
var pipeStructs = [...]avf.Struct{avf.IQ, avf.ROB, avf.LSQTag, avf.LSQData, avf.FU}

func TestPipetraceProvenanceMatchesTracker(t *testing.T) {
	for _, tc := range []struct {
		name   string
		warmup uint64
	}{
		{"cold", 0},
		{"with-warmup", 5_000},
	} {
		t.Run(tc.name, func(t *testing.T) {
			proc, rec := runWithPipeTrace(t, tc.warmup, pipetrace.Options{}, 20_000)
			trk := proc.Tracker()
			if rec.Len() == 0 {
				t.Fatal("no records")
			}
			prov := rec.Provenance()
			for _, s := range pipeStructs {
				// The recorder replays the tracker's interval arithmetic,
				// including the warmup rebase clip, so totals match exactly.
				if got, want := rec.ACEBitCycles(s), trk.ACEBitCycles(s); got != want {
					t.Errorf("%s: recorder ACE bit-cycles %d, tracker %d", s, got, want)
				}
				if got, want := rec.ResidentBitCycles(s), trk.OccupiedBitCycles(s); got != want {
					t.Errorf("%s: recorder resident bit-cycles %d, tracker %d", s, got, want)
				}
				// And the per-PC provenance decomposes those totals exactly.
				var aceSum, resSum uint64
				for i := range prov.PCs {
					aceSum += prov.PCs[i].ACE[s]
					resSum += prov.PCs[i].Resident[s]
				}
				if aceSum != trk.ACEBitCycles(s) {
					t.Errorf("%s: per-PC ACE sum %d, tracker %d", s, aceSum, trk.ACEBitCycles(s))
				}
				if resSum != trk.OccupiedBitCycles(s) {
					t.Errorf("%s: per-PC resident sum %d, tracker %d", s, resSum, trk.OccupiedBitCycles(s))
				}
			}
		})
	}
}

func TestPipetraceWindowSampling(t *testing.T) {
	opt := pipetrace.Options{WindowStart: 2_000, WindowEnd: 4_000}
	_, rec := runWithPipeTrace(t, 0, opt, 20_000)
	if rec.Len() == 0 {
		t.Fatal("window recorded nothing")
	}
	for _, r := range rec.Records() {
		if r.Fetch < opt.WindowStart || r.Fetch >= opt.WindowEnd {
			t.Fatalf("record fetched at %d outside window [%d,%d)",
				r.Fetch, opt.WindowStart, opt.WindowEnd)
		}
	}
}

func TestPipetraceRecordsAreWellFormed(t *testing.T) {
	_, rec := runWithPipeTrace(t, 0, pipetrace.Options{}, 20_000)
	type dyn struct {
		tid int
		seq uint64
	}
	// Committing fates retire each dynamic instruction exactly once;
	// squashed correct-path work may be refetched, so only count commits.
	committedSeqs := map[dyn]bool{}
	threads := map[int]bool{}
	for i := range rec.Records() {
		r := &rec.Records()[i]
		threads[r.TID] = true
		if r.V != pipetrace.SchemaVersion {
			t.Fatalf("record schema v%d, want v%d", r.V, pipetrace.SchemaVersion)
		}
		if r.Retire < r.Fetch {
			t.Fatalf("gseq %d retires at %d before fetch at %d", r.GSeq, r.Retire, r.Fetch)
		}
		if r.Dispatch >= 0 && uint64(r.Dispatch) < r.Fetch {
			t.Fatalf("gseq %d dispatches at %d before fetch at %d", r.GSeq, r.Dispatch, r.Fetch)
		}
		if r.Issue >= 0 && r.Dispatch < 0 {
			t.Fatalf("gseq %d issued without dispatching", r.GSeq)
		}
		if r.ACE != (r.Fate == avf.FateCommitted) {
			t.Fatalf("gseq %d: ACE=%v with fate %s", r.GSeq, r.ACE, r.Fate)
		}
		if r.Fate == avf.FateCommitted || r.Fate == avf.FateDead || r.Fate == avf.FateNOP {
			k := dyn{r.TID, r.Seq}
			if committedSeqs[k] {
				t.Fatalf("thread %d seq %d committed twice", r.TID, r.Seq)
			}
			committedSeqs[k] = true
		}
	}
	if len(threads) != 2 {
		t.Fatalf("records from %d threads, want 2", len(threads))
	}
}

// TestPipetraceExportersFromSameRun drives one simulation and checks the
// Kanata and Chrome exports of the same recording both load cleanly.
func TestPipetraceExportersFromSameRun(t *testing.T) {
	_, rec := runWithPipeTrace(t, 0, pipetrace.Options{}, 10_000)

	var kanata bytes.Buffer
	if err := pipetrace.Write(&kanata, pipetrace.FormatKanata, rec.Records()); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimRight(kanata.String(), "\n"), "\n")
	if lines[0] != "Kanata\t0004" || !strings.HasPrefix(lines[1], "C=\t") {
		t.Fatalf("bad Kanata preamble: %q, %q", lines[0], lines[1])
	}
	var retires int
	for _, ln := range lines[2:] {
		kind, _, ok := strings.Cut(ln, "\t")
		if !ok {
			t.Fatalf("untabbed Kanata line %q", ln)
		}
		switch kind {
		case "C", "I", "L", "S", "R":
		default:
			t.Fatalf("unknown Kanata record type %q in %q", kind, ln)
		}
		if kind == "R" {
			retires++
		}
	}
	if retires != rec.Len() {
		t.Fatalf("Kanata retires %d uops, recorded %d", retires, rec.Len())
	}

	var chrome bytes.Buffer
	if err := pipetrace.Write(&chrome, pipetrace.FormatChrome, rec.Records()); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []struct {
			Ph   string `json:"ph"`
			Args struct {
				GSeq *uint64 `json:"gseq"`
			} `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(chrome.Bytes(), &doc); err != nil {
		t.Fatalf("chrome trace is not valid JSON: %v", err)
	}
	uops := map[uint64]bool{}
	for _, e := range doc.TraceEvents {
		if e.Ph == "X" && e.Args.GSeq != nil {
			uops[*e.Args.GSeq] = true
		}
	}
	if len(uops) != rec.Len() {
		t.Fatalf("chrome trace covers %d uops, recorded %d", len(uops), rec.Len())
	}

	var jsonl bytes.Buffer
	if err := pipetrace.Write(&jsonl, pipetrace.FormatJSONL, rec.Records()); err != nil {
		t.Fatal(err)
	}
	back, err := pipetrace.ReadJSONL(&jsonl)
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != rec.Len() {
		t.Fatalf("JSONL round trip lost records: %d != %d", len(back), rec.Len())
	}
}

// TestPipetraceDetachedRunIdentical checks attaching a recorder does not
// perturb the simulation: cycles, commits, and AVF match a detached run.
func TestPipetraceDetachedRunIdentical(t *testing.T) {
	run := func(attach bool) *Results {
		cfg := DefaultConfig(2)
		proc, err := New(cfg, benchProfiles(t, "mcf", "gcc"))
		if err != nil {
			t.Fatal(err)
		}
		if attach {
			proc.SetPipeTrace(pipetrace.New(pipetrace.Options{}))
		}
		res, err := proc.Run(Limits{TotalInstructions: 10_000})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	with, without := run(true), run(false)
	if with.Cycles != without.Cycles || with.Total != without.Total {
		t.Fatalf("recorder perturbed the run: %d/%d cycles, %d/%d commits",
			with.Cycles, without.Cycles, with.Total, without.Total)
	}
	for _, s := range pipeStructs {
		if with.StructAVF(s) != without.StructAVF(s) {
			t.Fatalf("%s AVF differs with recorder attached", s)
		}
	}
}
