package core

import (
	"testing"

	"smtavf/internal/avf"
	"smtavf/internal/cpistack"
)

func runWithCPIStack(t *testing.T, warmup uint64, opt cpistack.Options, total uint64) (*Processor, *cpistack.Observer, *Results) {
	t.Helper()
	cfg := DefaultConfig(2)
	cfg.Warmup = warmup
	proc, err := New(cfg, benchProfiles(t, "mcf", "gcc"))
	if err != nil {
		t.Fatal(err)
	}
	o := cpistack.New(opt)
	proc.SetCPIStack(o)
	res, err := proc.Run(Limits{TotalInstructions: total})
	if err != nil {
		t.Fatal(err)
	}
	return proc, o, res
}

// TestCPIStackSumsToCycles is half the reconciliation contract: every
// thread-cycle of the measurement window is attributed to exactly one
// stack component, so per-thread components sum to the simulated cycle
// count — cold and across a warmup rebase.
func TestCPIStackSumsToCycles(t *testing.T) {
	for _, tc := range []struct {
		name   string
		warmup uint64
	}{
		{"cold", 0},
		{"with-warmup", 5_000},
	} {
		t.Run(tc.name, func(t *testing.T) {
			_, o, res := runWithCPIStack(t, tc.warmup, cpistack.Options{WindowCycles: 2048}, 20_000)
			for tid := 0; tid < o.Threads(); tid++ {
				if got, want := o.CycleCount(tid), res.Cycles; got != want {
					t.Errorf("thread %d: stack components sum to %d cycles, simulated %d", tid, got, want)
				}
			}
			// The windowed view decomposes the same totals exactly: within
			// each window the per-thread stacks sum to the window span.
			wins := o.Windows()
			if len(wins) < 2 {
				t.Fatalf("only %d windows; want several", len(wins))
			}
			var winSum uint64
			for _, w := range wins {
				var sum uint64
				for _, col := range w.Stack {
					for _, v := range col {
						sum += v
					}
				}
				if want := (w.End - w.Start) * uint64(o.Threads()); sum != want {
					t.Errorf("window %d: stack sums to %d thread-cycles, span holds %d", w.Index, sum, want)
				}
				winSum += sum
			}
			if want := res.Cycles * uint64(o.Threads()); winSum != want {
				t.Errorf("windows sum to %d thread-cycles, run measured %d", winSum, want)
			}
		})
	}
}

// TestCPIStackOccupancyMatchesTracker is the other half: the
// occupancy-by-fate decomposition replays the tracker's clipped-interval
// arithmetic (uop residencies at the classification sites, register-file
// intervals through the tracker's sink), so per-structure sums match the
// tracker's ACE and occupied bit-cycle totals bit for bit.
func TestCPIStackOccupancyMatchesTracker(t *testing.T) {
	for _, tc := range []struct {
		name   string
		warmup uint64
	}{
		{"cold", 0},
		{"with-warmup", 5_000},
	} {
		t.Run(tc.name, func(t *testing.T) {
			proc, o, _ := runWithCPIStack(t, tc.warmup, cpistack.Options{WindowCycles: 2048}, 20_000)
			trk := proc.Tracker()
			for _, s := range cpistack.OccupancyStructs() {
				if got, want := o.ACEBitCycles(s), trk.ACEBitCycles(s); got != want {
					t.Errorf("%s: observer ACE bit-cycles %d, tracker %d", s, got, want)
				}
				if got, want := o.ResidentBitCycles(s), trk.OccupiedBitCycles(s); got != want {
					t.Errorf("%s: observer resident bit-cycles %d, tracker %d", s, got, want)
				}
				// And the windowed fate split decomposes those totals exactly.
				var winSum uint64
				for _, w := range o.Windows() {
					for _, v := range w.Occupancy[s.String()] {
						winSum += v
					}
				}
				if want := trk.OccupiedBitCycles(s); winSum != want {
					t.Errorf("%s: windowed fate split sums to %d bit-cycles, tracker %d", s, winSum, want)
				}
			}
		})
	}
}

// TestCPIStackDetachedRunIdentical checks the observer never perturbs the
// simulation: cycles, commits, and AVF match a detached run.
func TestCPIStackDetachedRunIdentical(t *testing.T) {
	run := func(attach bool) *Results {
		cfg := DefaultConfig(2)
		proc, err := New(cfg, benchProfiles(t, "mcf", "gcc"))
		if err != nil {
			t.Fatal(err)
		}
		if attach {
			proc.SetCPIStack(cpistack.New(cpistack.Options{}))
		}
		res, err := proc.Run(Limits{TotalInstructions: 10_000})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	with, without := run(true), run(false)
	if with.Cycles != without.Cycles || with.Total != without.Total {
		t.Fatalf("observer perturbed the run: %d/%d cycles, %d/%d commits",
			with.Cycles, without.Cycles, with.Total, without.Total)
	}
	for s := avf.Struct(0); s < avf.NumStructs; s++ {
		if with.StructAVF(s) != without.StructAVF(s) {
			t.Fatalf("%s AVF differs with observer attached", s)
		}
	}
}

// TestCPIStackComponentsPopulated sanity-checks the attribution rule on a
// memory-bound 2-thread mix: the base component exists (work committed),
// and at least one memory-stall component is charged — an all-base stack
// would mean the priority chain short-circuits.
func TestCPIStackComponentsPopulated(t *testing.T) {
	_, o, _ := runWithCPIStack(t, 0, cpistack.Options{}, 20_000)
	var base, mem uint64
	for tid := 0; tid < o.Threads(); tid++ {
		base += o.ComponentCycles(tid, cpistack.CompBase)
		mem += o.ComponentCycles(tid, cpistack.CompDCacheMiss) +
			o.ComponentCycles(tid, cpistack.CompL2Miss)
	}
	if base == 0 {
		t.Error("no cycles attributed to base on a committing run")
	}
	if mem == 0 {
		t.Error("no cycles attributed to memory stalls on an mcf mix")
	}
}
