package core

import (
	"math"
	"testing"

	"smtavf/internal/avf"
)

func TestWarmupImprovesBranchAccuracy(t *testing.T) {
	cold := runMix(t, []string{"eon"}, "ICOUNT", 30_000)

	cfg := DefaultConfig(1)
	cfg.Warmup = 100_000
	proc, err := New(cfg, profilesFor(t, []string{"eon"}))
	if err != nil {
		t.Fatal(err)
	}
	warm, err := proc.Run(Limits{TotalInstructions: 30_000})
	if err != nil {
		t.Fatal(err)
	}
	if warm.Total < 30_000 || warm.Total > 30_000+8 {
		t.Fatalf("measured %d instructions, want ~30000", warm.Total)
	}
	if warm.Thread[0].MispredictRate() >= cold.Thread[0].MispredictRate() {
		t.Errorf("warm mispredict rate %.3f not below cold %.3f",
			warm.Thread[0].MispredictRate(), cold.Thread[0].MispredictRate())
	}
	if warm.IPC() <= cold.IPC() {
		t.Errorf("warm IPC %.3f not above cold %.3f", warm.IPC(), cold.IPC())
	}
}

func TestWarmupStatsCoverOnlyMeasurement(t *testing.T) {
	cfg := DefaultConfig(2)
	cfg.Warmup = 10_000
	proc, err := New(cfg, profilesFor(t, []string{"bzip2", "eon"}))
	if err != nil {
		t.Fatal(err)
	}
	res, err := proc.Run(Limits{TotalInstructions: 10_000})
	if err != nil {
		t.Fatal(err)
	}
	var sum uint64
	for _, c := range res.Committed {
		sum += c
	}
	if sum != res.Total || res.Total < 10_000 || res.Total > 10_000+8 {
		t.Fatalf("committed %v (total %d), want ~10000 measured", res.Committed, res.Total)
	}
	// AVFs still well-formed after the rebase.
	for _, s := range avf.Structs() {
		a := res.StructAVF(s)
		if a < 0 || a > 1 {
			t.Errorf("%v AVF %v out of range after warmup", s, a)
		}
		if a > res.AVF.Occ[s]+1e-9 {
			t.Errorf("%v AVF %v exceeds occupancy %v", s, a, res.AVF.Occ[s])
		}
	}
}

func TestWarmupRejectsPerThreadQuotas(t *testing.T) {
	cfg := DefaultConfig(1)
	cfg.Warmup = 1_000
	proc, err := New(cfg, profilesFor(t, []string{"bzip2"}))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := proc.Run(Limits{PerThread: []uint64{100}}); err == nil {
		t.Fatal("warmup + per-thread quotas accepted")
	}
}

func TestWarmupReproducible(t *testing.T) {
	run := func() *Results {
		cfg := DefaultConfig(1)
		cfg.Warmup = 5_000
		proc, err := New(cfg, profilesFor(t, []string{"gcc"}))
		if err != nil {
			t.Fatal(err)
		}
		res, err := proc.Run(Limits{TotalInstructions: 5_000})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := run(), run()
	if a.Cycles != b.Cycles {
		t.Fatalf("cycles differ: %d vs %d", a.Cycles, b.Cycles)
	}
	if math.Abs(a.StructAVF(avf.IQ)-b.StructAVF(avf.IQ)) > 0 {
		t.Fatal("AVF differs between identical warm runs")
	}
}
