package core

import (
	"fmt"

	"smtavf/internal/avf"
	"smtavf/internal/fetch"
	"smtavf/internal/isa"
	"smtavf/internal/mem"
	"smtavf/internal/pipeline"
)

// commit retires up to CommitWidth instructions across threads in
// round-robin order, each thread committing in program order from its ROB
// head. Stores write the DL1 here (write-back point); committed uops free
// their previous register mapping and classify their residencies as ACE or
// un-ACE.
func (p *Processor) commit() {
	pl := p.pool
	budget := p.cfg.CommitWidth
	n := len(p.threads)
	start := p.commitRR
	p.commitRR = (p.commitRR + 1) % n
	for i := 0; i < n && budget > 0; i++ {
		t := p.threads[(start+i)%n]
		for budget > 0 && !t.finished {
			u := t.rob.Head()
			if u == pipeline.NoUID || pl.Flags[u]&pipeline.FExecuted == 0 {
				break
			}
			in := &pl.Ins[u]
			if in.Class == isa.Store {
				if !p.dl1.TryPort(p.now) {
					break // store port busy: retry next cycle
				}
				p.dl1.Access(p.now, in.Addr, int(in.Size), true, t.id)
			}
			if in.Seq != t.nextCommit || pl.Flags[u]&pipeline.FWrongPath != 0 {
				// The commit stream must be exactly the program's dynamic
				// instruction order; any gap means squash/refetch broke.
				panic(fmt.Sprintf("core: thread %d commits seq %d (wrongPath=%v), want %d",
					t.id, in.Seq, pl.Flags[u]&pipeline.FWrongPath != 0, t.nextCommit))
			}
			t.nextCommit++
			if pl.Meta[u].LSQIdx >= 0 {
				t.lsq.PopHead(u, p.now)
			}
			t.rob.PopHead(p.now)
			if pl.Meta[u].PhysDest >= 0 {
				p.rf.CommitFree(int(pl.Meta[u].OldPhysDest), p.now)
			}
			p.classifyUop(u, false)
			p.recordObservers(u, false)
			t.committed++
			p.totalCommitted++
			p.telCommitted.Inc()
			p.lastCommitCycle = p.now
			t.stream.Release(in.Seq + 1)
			t.releaseUop(u) // committed: out of every structure; recycle
			budget--
			if t.quota > 0 && t.committed >= t.quota {
				t.finished = true
				break
			}
		}
	}
}

// writeback completes executions whose results arrive this cycle: results
// become visible to consumers, outstanding-miss counters resolve, and
// mispredicted branches trigger recovery.
func (p *Processor) writeback() {
	// Event-driven skip: no in-flight result is due before wbMinReady, and
	// squashed uops awaiting release are counted, so a cycle with neither
	// touches nothing the scan below would change.
	if p.wbSquashed == 0 && p.now < p.wbMinReady {
		return
	}
	pl := p.pool
	keep := p.inflight[:0]
	minReady := ^uint64(0)
	for _, u := range p.inflight {
		if pl.Flags[u]&pipeline.FSquashed != 0 {
			// The squash classified and recorded it already, but it was
			// mid-execution then, so its release was deferred to here.
			p.threads[pl.TID[u]].releaseUop(u)
			p.wbSquashed--
			continue
		}
		if r := pl.Meta[u].ReadyAt; r > p.now {
			keep = append(keep, u)
			if r < minReady {
				minReady = r
			}
			continue
		}
		pl.Flags[u] |= pipeline.FExecuted
		t := p.threads[pl.TID[u]]
		if d := pl.Meta[u].PhysDest; d >= 0 {
			p.rf.Write(int(d), p.now)
		}
		switch pl.Ins[u].Class {
		case isa.Load:
			pl.Res[u].DataAt = p.now // datum lands in the LSQ data array
			p.resolveMissCounters(t, u)
		case isa.Store:
			p.wakeSleepers(t)
		}
		if t.wpBranch == u {
			p.recoverMispredict(t, u)
		}
	}
	p.inflight = keep
	// A recovery above may have squashed entries already kept this scan;
	// wbSquashed counts them, so the next cycle still scans and releases
	// them — minReady only has to be a lower bound on undisturbed results.
	p.wbMinReady = minReady
}

// wakeSleepers returns thread t's parked loads to the IQ ready set after a
// store execution — the only event that can clear their disambiguation
// block. Loads still blocked simply park again at their next selection;
// stale entries (squashed loads, recycled slots) are filtered by the flag
// guard, so a spurious wake costs one recheck and nothing else.
func (p *Processor) wakeSleepers(t *thread) {
	s := t.lsq.Sleepers()
	if len(s) == 0 {
		return
	}
	pl := p.pool
	for _, ld := range s {
		fl := pl.Flags[ld]
		if fl&pipeline.FSleeping != 0 && fl&pipeline.FInIQ != 0 && fl&pipeline.FInReady == 0 {
			pl.Flags[ld] = fl &^ pipeline.FSleeping
			p.iq.MarkReady(ld)
		}
	}
	t.lsq.ClearSleepers()
}

// resolveMissCounters drops the outstanding/predicted miss counts a load
// contributed, at resolution or squash.
func (p *Processor) resolveMissCounters(t *thread, u pipeline.UID) {
	fl := p.pool.Flags[u]
	if fl&pipeline.FCountedL1 != 0 {
		t.outL1--
	}
	if fl&pipeline.FCountedL2 != 0 {
		t.outL2--
	}
	if fl&pipeline.FPredL1 != 0 {
		t.predL1--
	}
	if fl&pipeline.FPredL2 != 0 {
		t.predL2--
	}
	p.pool.Flags[u] = fl &^ (pipeline.FCountedL1 | pipeline.FCountedL2 |
		pipeline.FPredL1 | pipeline.FPredL2)
}

// issue selects up to IssueWidth ready instructions from the IQ, oldest
// first, subject to function-unit and cache-port availability. Loads access
// the DL1 (or forward from an older store); the FLUSH policy's squash
// triggers here, when a load discovers an L2 miss.
func (p *Processor) issue() {
	if p.iq.ReadyLen() == 0 {
		p.flushBuf = p.flushBuf[:0]
		return
	}
	pl := p.pool
	// Snapshot the ready set (register operands available, oldest first):
	// issuing removes entries from the set mid-loop, so iterate a copy in
	// the reusable scratch buffer.
	p.issueBuf = p.iq.AppendReady(p.issueBuf[:0])
	budget := p.cfg.IssueWidth
	flushLoads := p.flushBuf[:0]
	for _, u := range p.issueBuf {
		if budget == 0 {
			break
		}
		t := p.threads[pl.TID[u]]
		class := pl.Ins[u].Class
		forwarded := false
		if class == isa.Load {
			// One disambiguation check per load per cycle: a wait keeps
			// the load in the ready set without consuming issue budget.
			// ForwardCheck only reads Executed flags and LSQ membership,
			// neither of which changes inside this loop, so checking at
			// selection time equals the old check-then-recheck.
			fwd, wait := t.lsq.ForwardCheck(u)
			if wait {
				// Older store address/data unknown. Park the load out of
				// the ready set: only a store execution in this thread can
				// unblock it, so writeback re-wakes it then instead of
				// this loop re-checking it every cycle.
				p.iq.Unready(u)
				pl.Flags[u] |= pipeline.FSleeping
				t.lsq.AddSleeper(u)
				continue
			}
			forwarded = fwd
			if !forwarded && !p.dl1.TryPort(p.now) {
				continue // no load port this cycle
			}
		}
		if !p.fus.TryIssue(class, p.now) {
			continue
		}
		p.iq.Remove(u, p.now)
		pl.Flags[u] |= pipeline.FIssued
		pl.Res[u].IssuedAt = p.now
		if pl.Flags[u]&pipeline.FWrongPath == 0 {
			p.rf.Read(int(pl.Meta[u].PhysSrc1), p.now)
			p.rf.Read(int(pl.Meta[u].PhysSrc2), p.now)
		}
		lat := uint64(class.Latency())
		switch class {
		case isa.Load:
			addr := pl.Ins[u].Addr
			pen, _ := p.dtlb.Access(p.now, addr, t.id)
			if forwarded {
				pl.Meta[u].ReadyAt = p.now + lat + uint64(pen)
				pl.Flags[u] |= pipeline.FForwarded
				t.loadForwards++
			} else {
				res := p.dl1.Access(p.now+lat+uint64(pen), addr, int(pl.Ins[u].Size), false, t.id)
				pl.Meta[u].ReadyAt = res.Ready
				pl.Meta[u].DL1Kind = int32(res.Kind)
				t.dl1Loads++
				if res.Kind != mem.Hit {
					pl.Flags[u] |= pipeline.FCountedL1
					t.outL1++
					t.dl1LoadMisses++
				}
				if res.Kind == mem.L2Miss {
					pl.Flags[u] |= pipeline.FCountedL2
					t.outL2++
					t.l2LoadMisses++
					if p.policy.FlushOnL2Miss() && pl.Flags[u]&pipeline.FWrongPath == 0 {
						flushLoads = append(flushLoads, u)
					}
				}
				pc := pl.Ins[u].PC
				p.l1MissPred.Update(pc, res.Kind != mem.Hit)
				p.l2MissPred.Update(pc, res.Kind == mem.L2Miss)
			}
		case isa.Store:
			pen, _ := p.dtlb.Access(p.now, pl.Ins[u].Addr, t.id)
			pl.Meta[u].ReadyAt = p.now + lat + uint64(pen)
			pl.Res[u].DataAt = pl.Meta[u].ReadyAt // store datum waits in the LSQ data array
		default:
			pl.Meta[u].ReadyAt = p.now + lat
		}
		pl.Res[u].FUCycles += lat
		p.inflight = append(p.inflight, u)
		if pl.Meta[u].ReadyAt < p.wbMinReady {
			p.wbMinReady = pl.Meta[u].ReadyAt
		}
		budget--
	}
	p.flushBuf = flushLoads
	// FLUSH: squash everything younger than the L2-missing load; the
	// thread refetches it when the miss returns (fetch is gated by the
	// policy while outL2 > 0). Oldest flush per thread wins.
	for _, u := range flushLoads {
		t := p.threads[pl.TID[u]]
		if pl.Flags[u]&pipeline.FSquashed != 0 {
			continue // an older flush already removed it
		}
		pl.Flags[u] |= pipeline.FFlushLoad
		t.flushes++
		p.telFlushes.Inc()
		p.squashThread(t, pl.GSeq[u])
	}
}

// dispatch renames and inserts front-end instructions into the IQ, ROB,
// and LSQ, round-robin across threads up to DispatchWidth.
func (p *Processor) dispatch() {
	pl := p.pool
	budget := p.cfg.DispatchWidth
	n := len(p.threads)
	start := p.dispatchRR
	p.dispatchRR = (p.dispatchRR + 1) % n
	for i := 0; i < n && budget > 0; i++ {
		t := p.threads[(start+i)%n]
		for budget > 0 && t.fetchQ.len() > 0 {
			u := t.fetchQ.front()
			if pl.Meta[u].FrontReady > p.now {
				break
			}
			class := pl.Ins[u].Class
			if t.rob.Full() {
				t.robFullStalls++
				break
			}
			if class.IsMem() && t.lsq.Full() {
				t.lsqFullStalls++
				break
			}
			if !p.iq.CanInsert(t.id) {
				t.iqFullStalls++
				break
			}
			if !p.rf.CanRename(pl.Ins[u].Dest) {
				t.renameStalls++
				break
			}
			p.rf.Rename(u, p.now)
			t.rob.Push(u, p.now)
			if class.IsMem() {
				t.lsq.Push(u, p.now)
			}
			p.iq.Insert(u, p.now)
			// Register on the waiter lists of any unready operands; a uop
			// with none is ready the moment it enters the queue (issue
			// precedes dispatch in step(), so it still cannot issue before
			// the next cycle — exactly the polled scheduler's behavior).
			if p.rf.WatchSources(u) == 0 {
				p.iq.MarkReady(u)
			}
			t.fetchQ.popFront()
			budget--
		}
	}
}

// fetchStage asks the policy which threads may fetch and distributes the
// fetch bandwidth over them (ICOUNT2.8: up to MaxFetchThreads threads, up
// to FetchWidth instructions in total).
func (p *Processor) fetchStage() {
	if p.now&(vulnWindow-1) == 0 {
		p.updateVulnFeedback()
	}
	// Event-driven skip: when no thread could fetch this cycle, building
	// the policy snapshot is pure overhead. Stateful policies (RR's turn
	// counter) still need their Order call every cycle.
	if p.policyPure {
		fetchable := false
		for _, t := range p.threads {
			if !t.done() && p.now >= t.stallUntil && t.fetchQ.len() < p.cfg.FetchQueue {
				fetchable = true
				break
			}
		}
		if !fetchable {
			return
		}
	}
	states := p.fetchStates
	for i, t := range p.threads {
		states[i] = fetch.ThreadState{
			Active:        !t.done(),
			InFlight:      t.icount(p.iq),
			OutstandingL1: t.outL1,
			OutstandingL2: t.outL2,
			PredictedL1:   t.predL1,
			PredictedL2:   t.predL2,
			RecentACE:     t.recentACE,
		}
	}
	p.fetchOrder = p.policy.Order(states, p.fetchOrder[:0])
	budget := p.cfg.FetchWidth
	used := 0
	for _, tid := range p.fetchOrder {
		if budget == 0 || used == p.cfg.MaxFetchThreads {
			break
		}
		t := p.threads[tid]
		if t.done() || p.now < t.stallUntil || t.fetchQ.len() >= p.cfg.FetchQueue {
			continue
		}
		n := p.fetchThread(t, budget)
		budget -= n
		used++
	}
}

// vulnWindow is the cycle period (a power of two) of the vulnerability
// feedback refresh that drives the VAware policy.
const vulnWindow = 512

// updateVulnFeedback refreshes each thread's moving-average ACE
// contribution to the shared pipeline structures. Classification happens
// at commit/squash, so the signal lags residency by the pipeline depth —
// fine for a fetch-throttling heuristic.
func (p *Processor) updateVulnFeedback() {
	for i, t := range p.threads {
		var cur uint64
		for _, s := range [...]avf.Struct{avf.IQ, avf.ROB, avf.LSQTag, avf.LSQData} {
			cur += p.trk.ThreadACEBitCycles(s, i)
		}
		delta := float64(cur - t.vaLastACE)
		t.vaLastACE = cur
		t.recentACE = 0.7*t.recentACE + 0.3*delta
	}
}

// fetchThread pulls up to max instructions for thread t, stopping at a
// predicted-taken branch, a front-end stall, or the fetch-queue limit.
func (p *Processor) fetchThread(t *thread, max int) int {
	pl := p.pool
	fetched := 0
	for fetched < max && t.fetchQ.len() < p.cfg.FetchQueue {
		// Address of the next instruction, in this thread's address space.
		var pc uint64
		if t.wrongPath {
			pc = t.wrongPathPC
		} else {
			pc = t.stream.PeekPC() + t.offset
		}

		// Instruction-fetch memory access, once per cache line.
		line := pc &^ (uint64(p.cfg.IL1.LineSize) - 1)
		if line != t.lastFetchLine {
			if !p.il1.TryPort(p.now) {
				break
			}
			pen, _ := p.itlb.Access(p.now, pc, t.id)
			res := p.il1.Access(p.now, pc, 4, false, t.id)
			t.lastFetchLine = line
			ready := res.Ready + uint64(pen)
			if ready > p.now+uint64(p.cfg.IL1.Latency) {
				t.stallUntil = ready
				t.stallICache = true
				break
			}
		}

		// Recycle a pool slot from the thread's free list and materialize
		// the instruction straight into its record; ResetState then zeroes
		// every other stale field before the new identity lands.
		u := t.acquireUop(pl)
		in := &pl.Ins[u]
		if t.wrongPath {
			t.wrong.NextInto(t.wrongPathPC, in)
			if in.Class.IsMem() {
				in.Addr += t.offset
			}
		} else {
			t.stream.NextInto(in)
			in.PC += t.offset
			if in.Class.IsMem() {
				in.Addr += t.offset
			}
			if in.Class.IsCTI() && in.Taken {
				in.Target += t.offset
			}
		}
		pl.ResetState(u, int32(t.id), p.gseq, p.now, t.wrongPath,
			p.now+uint64(p.cfg.FrontEndDepth))
		p.gseq++

		if in.Class.IsCTI() {
			p.predictCTI(t, u)
		}
		if in.Class == isa.Load && !t.wrongPath {
			if p.l1MissPred.Predict(in.PC) {
				pl.Flags[u] |= pipeline.FPredL1
				t.predL1++
			}
			if p.l2MissPred.Predict(in.PC) {
				pl.Flags[u] |= pipeline.FPredL2
				t.predL2++
			}
		}

		t.fetchQ.pushBack(u)
		t.fetched++
		if t.wrongPath {
			t.wrongPathFetch++
		}
		fetched++

		if !in.Class.IsCTI() {
			if t.wrongPath {
				t.wrongPathPC = in.PC + 4
			}
			continue
		}
		// Control transfer: steer the fetch PC and end the fetch group on
		// a predicted-taken branch.
		fl := pl.Flags[u]
		if fl&pipeline.FMispred != 0 {
			// Oracle says the prediction is wrong: everything younger is
			// wrong-path until this branch resolves.
			t.wrongPath = true
			t.wpBranch = u
			if fl&pipeline.FPredTaken != 0 && pl.Meta[u].PredTarget != 0 {
				t.wrongPathPC = pl.Meta[u].PredTarget
			} else {
				t.wrongPathPC = in.PC + 4
			}
			break
		}
		if t.wrongPath {
			if fl&pipeline.FPredTaken != 0 && pl.Meta[u].PredTarget != 0 {
				t.wrongPathPC = pl.Meta[u].PredTarget
			} else {
				t.wrongPathPC = in.PC + 4
			}
		}
		if fl&pipeline.FPredTaken != 0 {
			break // taken branch ends the fetch group
		}
	}
	return fetched
}

// predictCTI runs the front-end predictors for a control-transfer uop:
// gshare direction (conditional branches), BTB target, RAS for
// calls/returns. For correct-path uops the oracle outcome decides Mispred
// and trains the predictors; wrong-path CTIs only steer the wrong-path PC.
func (p *Processor) predictCTI(t *thread, u pipeline.UID) {
	pl := p.pool
	in := &pl.Ins[u]
	wrongPath := pl.Flags[u]&pipeline.FWrongPath != 0
	btb := p.btbs[t.id]
	switch in.Class {
	case isa.Branch:
		pred := p.gshares[t.id].Predict(0, in.PC)
		if pred {
			if tgt, ok := btb.Lookup(in.PC); ok {
				pl.Flags[u] |= pipeline.FPredTaken
				pl.Meta[u].PredTarget = tgt
			}
			// Predicted taken with no target: the front end cannot
			// redirect, so it behaves as a not-taken prediction.
		}
	case isa.Call:
		if tgt, ok := btb.Lookup(in.PC); ok {
			pl.Flags[u] |= pipeline.FPredTaken
			pl.Meta[u].PredTarget = tgt
		}
		// Wrong-path calls do not touch the RAS: hardware checkpoints the
		// stack at each branch and restores it on a squash, which this
		// models without the checkpoint bookkeeping.
		if !wrongPath {
			t.ras.Push(in.PC + 4)
		}
	case isa.Return:
		if wrongPath {
			pl.Flags[u] |= pipeline.FPredTaken
			pl.Meta[u].PredTarget = in.PC + 4 // arbitrary; the uop is squashed anyway
			break
		}
		if tgt, ok := t.ras.Pop(); ok {
			pl.Flags[u] |= pipeline.FPredTaken
			pl.Meta[u].PredTarget = tgt
		}
	}
	if wrongPath {
		return
	}
	predTaken := pl.Flags[u]&pipeline.FPredTaken != 0
	if predTaken != in.Taken || (in.Taken && pl.Meta[u].PredTarget != in.Target) {
		pl.Flags[u] |= pipeline.FMispred
		t.mispredicts++
	}
	t.branches++
	if in.Class == isa.Branch {
		p.gshares[t.id].Update(0, in.PC, in.Taken)
	}
	if in.Taken && in.Class != isa.Return {
		btb.Insert(in.PC, in.Target)
	}
}

// recoverMispredict squashes thread t's wrong path once the mispredicted
// branch u resolves and redirects fetch to the correct path.
func (p *Processor) recoverMispredict(t *thread, u pipeline.UID) {
	t.wrongPath = false
	t.wpBranch = pipeline.NoUID
	p.squashThread(t, p.pool.GSeq[u])
	if next := p.now + 1; next > t.stallUntil {
		t.stallUntil = next // redirect bubble
		t.stallICache = false
	}
}

// squashThread removes every uop of thread t younger than afterGSeq from
// the front end, IQ, ROB, and LSQ; rolls back its renames youngest-first;
// classifies its residencies un-ACE; and rewinds the trace stream so the
// squashed correct-path instructions are refetched.
func (p *Processor) squashThread(t *thread, afterGSeq uint64) {
	pl := p.pool
	// Front end: drop queued uops (no structure residency yet).
	var rewindTo uint64
	haveRewind := false
	note := func(u pipeline.UID) {
		if pl.Flags[u]&pipeline.FWrongPath == 0 &&
			(!haveRewind || pl.Ins[u].Seq < rewindTo) {
			rewindTo = pl.Ins[u].Seq
			haveRewind = true
		}
	}
	for t.fetchQ.len() > 0 {
		u := t.fetchQ.back()
		if pl.GSeq[u] <= afterGSeq {
			break
		}
		t.fetchQ.popBack()
		note(u)
		pl.Flags[u] |= pipeline.FSquashed
		p.recordObservers(u, true)
		if pl.Flags[u]&pipeline.FPredL1 != 0 {
			t.predL1--
		}
		if pl.Flags[u]&pipeline.FPredL2 != 0 {
			t.predL2--
		}
		if u == t.wpBranch {
			// The pending mispredicted branch itself was squashed (a
			// FLUSH landed underneath it); leave wrong-path mode.
			t.wrongPath = false
			t.wpBranch = pipeline.NoUID
		}
		t.releaseUop(u) // never dispatched: in no structure
	}
	// Back end: roll the ROB back from the tail.
	for t.rob.Len() > 0 && pl.GSeq[t.rob.Tail()] > afterGSeq {
		u := t.rob.PopTail(p.now)
		if pl.Flags[u]&pipeline.FInIQ != 0 {
			p.iq.Remove(u, p.now)
			p.rf.Unwatch(u)
		}
		if pl.Meta[u].LSQIdx >= 0 {
			t.lsq.PopTail(p.now)
		}
		p.rf.Rollback(u, p.now)
		p.resolveMissCounters(t, u)
		note(u)
		pl.Flags[u] |= pipeline.FSquashed
		p.classifyUop(u, true)
		p.recordObservers(u, true)
		t.squashedUops++
		p.telSquashed.Inc()
		if u == t.wpBranch {
			t.wrongPath = false
			t.wpBranch = pipeline.NoUID
		}
		if pl.Flags[u]&pipeline.FIssued == 0 || pl.Flags[u]&pipeline.FExecuted != 0 {
			t.releaseUop(u)
		} else {
			// Mid-execution uops (issued, result pending) stay on
			// p.inflight; writeback releases them when it drops them.
			p.wbSquashed++
		}
	}
	if haveRewind {
		t.stream.Rewind(rewindTo)
	}
}
