package core

import (
	"fmt"

	"smtavf/internal/avf"
	"smtavf/internal/fetch"
	"smtavf/internal/isa"
	"smtavf/internal/mem"
	"smtavf/internal/pipeline"
)

// commit retires up to CommitWidth instructions across threads in
// round-robin order, each thread committing in program order from its ROB
// head. Stores write the DL1 here (write-back point); committed uops free
// their previous register mapping and classify their residencies as ACE or
// un-ACE.
func (p *Processor) commit() {
	budget := p.cfg.CommitWidth
	n := len(p.threads)
	start := p.commitRR
	p.commitRR = (p.commitRR + 1) % n
	for i := 0; i < n && budget > 0; i++ {
		t := p.threads[(start+i)%n]
		for budget > 0 && !t.finished {
			u := t.rob.Head()
			if u == nil || !u.Executed {
				break
			}
			if u.Class == isa.Store {
				if !p.dl1.TryPort(p.now) {
					break // store port busy: retry next cycle
				}
				p.dl1.Access(p.now, u.Addr, int(u.Size), true, t.id)
			}
			if u.Seq != t.nextCommit || u.WrongPath {
				// The commit stream must be exactly the program's dynamic
				// instruction order; any gap means squash/refetch broke.
				panic(fmt.Sprintf("core: thread %d commits seq %d (wrongPath=%v), want %d",
					t.id, u.Seq, u.WrongPath, t.nextCommit))
			}
			t.nextCommit++
			if u.LSQIdx >= 0 {
				t.lsq.PopHead(u, p.now)
			}
			t.rob.PopHead(p.now)
			if u.PhysDest >= 0 {
				p.rf.CommitFree(u.OldPhysDest, p.now)
			}
			u.Classify(p.trk, p.cfg.Bits, false)
			p.rec.Record(u, p.now, false)
			p.prop.Record(u, p.now, false)
			p.cpi.Record(u, false)
			t.committed++
			p.totalCommitted++
			p.telCommitted.Inc()
			p.lastCommitCycle = p.now
			t.stream.Release(u.Seq + 1)
			t.releaseUop(u) // committed: out of every structure; recycle
			budget--
			if t.quota > 0 && t.committed >= t.quota {
				t.finished = true
				break
			}
		}
	}
}

// writeback completes executions whose results arrive this cycle: results
// become visible to consumers, outstanding-miss counters resolve, and
// mispredicted branches trigger recovery.
func (p *Processor) writeback() {
	keep := p.inflight[:0]
	for _, u := range p.inflight {
		if u.Squashed {
			// The squash classified and recorded it already, but it was
			// mid-execution then, so its release was deferred to here.
			p.threads[u.TID].releaseUop(u)
			continue
		}
		if u.ReadyAt > p.now {
			keep = append(keep, u)
			continue
		}
		u.Executed = true
		t := p.threads[u.TID]
		if u.PhysDest >= 0 {
			p.rf.Write(u.PhysDest, p.now)
		}
		if u.Class == isa.Load {
			u.DataAt = p.now // datum lands in the LSQ data array
			p.resolveMissCounters(t, u)
		}
		if t.wpBranch == u {
			p.recoverMispredict(t, u)
		}
	}
	p.inflight = keep
}

// resolveMissCounters drops the outstanding/predicted miss counts a load
// contributed, at resolution or squash.
func (p *Processor) resolveMissCounters(t *thread, u *pipeline.Uop) {
	if u.CountedL1 {
		t.outL1--
		u.CountedL1 = false
	}
	if u.CountedL2 {
		t.outL2--
		u.CountedL2 = false
	}
	if u.PredL1 {
		t.predL1--
		u.PredL1 = false
	}
	if u.PredL2 {
		t.predL2--
		u.PredL2 = false
	}
}

// issue selects up to IssueWidth ready instructions from the IQ, oldest
// first, subject to function-unit and cache-port availability. Loads access
// the DL1 (or forward from an older store); the FLUSH policy's squash
// triggers here, when a load discovers an L2 miss.
func (p *Processor) issue() {
	// Snapshot the ready set (register operands available, oldest first):
	// issuing removes entries from the set mid-loop, so iterate a copy in
	// the reusable scratch buffer.
	p.issueBuf = p.iq.AppendReady(p.issueBuf[:0])
	budget := p.cfg.IssueWidth
	flushLoads := p.flushBuf[:0]
	for _, u := range p.issueBuf {
		if budget == 0 {
			break
		}
		t := p.threads[u.TID]
		forwarded := false
		if u.Class == isa.Load {
			// One disambiguation check per load per cycle: a wait keeps
			// the load in the ready set without consuming issue budget.
			// ForwardCheck only reads Executed flags and LSQ membership,
			// neither of which changes inside this loop, so checking at
			// selection time equals the old check-then-recheck.
			fwd, wait := t.lsq.ForwardCheck(u)
			if wait {
				continue // older store address/data unknown
			}
			forwarded = fwd
			if !forwarded && !p.dl1.TryPort(p.now) {
				continue // no load port this cycle
			}
		}
		if !p.fus.TryIssue(u.Class, p.now) {
			continue
		}
		p.iq.Remove(u, p.now)
		u.Issued = true
		u.IssuedAt = p.now
		if !u.WrongPath {
			p.rf.Read(u.PhysSrc1, p.now)
			p.rf.Read(u.PhysSrc2, p.now)
		}
		lat := uint64(u.Class.Latency())
		switch u.Class {
		case isa.Load:
			pen, _ := p.dtlb.Access(p.now, u.Addr, t.id)
			if forwarded {
				u.ReadyAt = p.now + lat + uint64(pen)
				u.Forwarded = true
				t.loadForwards++
			} else {
				res := p.dl1.Access(p.now+lat+uint64(pen), u.Addr, int(u.Size), false, t.id)
				u.ReadyAt = res.Ready
				u.DL1Kind = int(res.Kind)
				t.dl1Loads++
				if res.Kind != mem.Hit {
					u.CountedL1 = true
					t.outL1++
					t.dl1LoadMisses++
				}
				if res.Kind == mem.L2Miss {
					u.CountedL2 = true
					t.outL2++
					t.l2LoadMisses++
					if p.policy.FlushOnL2Miss() && !u.WrongPath {
						flushLoads = append(flushLoads, u)
					}
				}
				p.l1MissPred.Update(u.PC, res.Kind != mem.Hit)
				p.l2MissPred.Update(u.PC, res.Kind == mem.L2Miss)
			}
		case isa.Store:
			pen, _ := p.dtlb.Access(p.now, u.Addr, t.id)
			u.ReadyAt = p.now + lat + uint64(pen)
			u.DataAt = u.ReadyAt // store datum waits in the LSQ data array
		default:
			u.ReadyAt = p.now + lat
		}
		u.FUCycles += uint64(u.Class.Latency())
		p.inflight = append(p.inflight, u)
		budget--
	}
	p.flushBuf = flushLoads
	// FLUSH: squash everything younger than the L2-missing load; the
	// thread refetches it when the miss returns (fetch is gated by the
	// policy while outL2 > 0). Oldest flush per thread wins.
	for _, u := range flushLoads {
		t := p.threads[u.TID]
		if u.Squashed {
			continue // an older flush already removed it
		}
		u.FlushLoad = true
		t.flushes++
		p.telFlushes.Inc()
		p.squashThread(t, u.GSeq)
	}
}

// dispatch renames and inserts front-end instructions into the IQ, ROB,
// and LSQ, round-robin across threads up to DispatchWidth.
func (p *Processor) dispatch() {
	budget := p.cfg.DispatchWidth
	n := len(p.threads)
	start := p.dispatchRR
	p.dispatchRR = (p.dispatchRR + 1) % n
	for i := 0; i < n && budget > 0; i++ {
		t := p.threads[(start+i)%n]
		for budget > 0 && t.fetchQ.len() > 0 {
			u := t.fetchQ.front()
			if u.FrontReady > p.now {
				break
			}
			if t.rob.Full() {
				t.robFullStalls++
				break
			}
			if u.Class.IsMem() && t.lsq.Full() {
				t.lsqFullStalls++
				break
			}
			if !p.iq.CanInsert(t.id) {
				t.iqFullStalls++
				break
			}
			if !p.rf.CanRename(u.Dest) {
				t.renameStalls++
				break
			}
			p.rf.Rename(u, p.now)
			t.rob.Push(u, p.now)
			if u.Class.IsMem() {
				t.lsq.Push(u, p.now)
			}
			p.iq.Insert(u, p.now)
			// Register on the waiter lists of any unready operands; a uop
			// with none is ready the moment it enters the queue (issue
			// precedes dispatch in step(), so it still cannot issue before
			// the next cycle — exactly the polled scheduler's behavior).
			if p.rf.WatchSources(u) == 0 {
				p.iq.MarkReady(u)
			}
			t.fetchQ.popFront()
			budget--
		}
	}
}

// fetchStage asks the policy which threads may fetch and distributes the
// fetch bandwidth over them (ICOUNT2.8: up to MaxFetchThreads threads, up
// to FetchWidth instructions in total).
func (p *Processor) fetchStage() {
	if p.now&(vulnWindow-1) == 0 {
		p.updateVulnFeedback()
	}
	states := p.fetchStates
	for i, t := range p.threads {
		states[i] = fetch.ThreadState{
			Active:        !t.done(),
			InFlight:      t.icount(p.iq),
			OutstandingL1: t.outL1,
			OutstandingL2: t.outL2,
			PredictedL1:   t.predL1,
			PredictedL2:   t.predL2,
			RecentACE:     t.recentACE,
		}
	}
	p.fetchOrder = p.policy.Order(states, p.fetchOrder[:0])
	budget := p.cfg.FetchWidth
	used := 0
	for _, tid := range p.fetchOrder {
		if budget == 0 || used == p.cfg.MaxFetchThreads {
			break
		}
		t := p.threads[tid]
		if t.done() || p.now < t.stallUntil || t.fetchQ.len() >= p.cfg.FetchQueue {
			continue
		}
		n := p.fetchThread(t, budget)
		budget -= n
		used++
	}
}

// vulnWindow is the cycle period (a power of two) of the vulnerability
// feedback refresh that drives the VAware policy.
const vulnWindow = 512

// updateVulnFeedback refreshes each thread's moving-average ACE
// contribution to the shared pipeline structures. Classification happens
// at commit/squash, so the signal lags residency by the pipeline depth —
// fine for a fetch-throttling heuristic.
func (p *Processor) updateVulnFeedback() {
	for i, t := range p.threads {
		var cur uint64
		for _, s := range [...]avf.Struct{avf.IQ, avf.ROB, avf.LSQTag, avf.LSQData} {
			cur += p.trk.ThreadACEBitCycles(s, i)
		}
		delta := float64(cur - t.vaLastACE)
		t.vaLastACE = cur
		t.recentACE = 0.7*t.recentACE + 0.3*delta
	}
}

// fetchThread pulls up to max instructions for thread t, stopping at a
// predicted-taken branch, a front-end stall, or the fetch-queue limit.
func (p *Processor) fetchThread(t *thread, max int) int {
	fetched := 0
	for fetched < max && t.fetchQ.len() < p.cfg.FetchQueue {
		// Address of the next instruction, in this thread's address space.
		var pc uint64
		if t.wrongPath {
			pc = t.wrongPathPC
		} else {
			pc = t.stream.Peek().PC + t.offset
		}

		// Instruction-fetch memory access, once per cache line.
		line := pc &^ (uint64(p.cfg.IL1.LineSize) - 1)
		if line != t.lastFetchLine {
			if !p.il1.TryPort(p.now) {
				break
			}
			pen, _ := p.itlb.Access(p.now, pc, t.id)
			res := p.il1.Access(p.now, pc, 4, false, t.id)
			t.lastFetchLine = line
			ready := res.Ready + uint64(pen)
			if ready > p.now+uint64(p.cfg.IL1.Latency) {
				t.stallUntil = ready
				t.stallICache = true
				break
			}
		}

		// Materialize the instruction.
		var in isa.Instruction
		if t.wrongPath {
			in = t.wrong.Next(t.wrongPathPC)
			if in.Class.IsMem() {
				in.Addr += t.offset
			}
		} else {
			in = t.stream.Next()
			in.PC += t.offset
			if in.Class.IsMem() {
				in.Addr += t.offset
			}
			if in.Class.IsCTI() && in.Taken {
				in.Target += t.offset
			}
		}
		// Recycle a uop from the thread's pool; the full-struct assignment
		// zeroes every stale field before the new identity lands.
		u := t.acquireUop()
		*u = pipeline.Uop{
			Instruction: in,
			TID:         t.id,
			GSeq:        p.gseq,
			FetchedAt:   p.now,
			WrongPath:   t.wrongPath,
			FrontReady:  p.now + uint64(p.cfg.FrontEndDepth),
			PhysDest:    -1,
			OldPhysDest: -1,
			IQIdx:       -1,
			LSQIdx:      -1,
		}
		p.gseq++

		if u.Class.IsCTI() {
			p.predictCTI(t, u)
		}
		if u.Class == isa.Load && !t.wrongPath {
			if p.l1MissPred.Predict(u.PC) {
				u.PredL1 = true
				t.predL1++
			}
			if p.l2MissPred.Predict(u.PC) {
				u.PredL2 = true
				t.predL2++
			}
		}

		t.fetchQ.pushBack(u)
		t.fetched++
		if u.WrongPath {
			t.wrongPathFetch++
		}
		fetched++

		if !u.Class.IsCTI() {
			if t.wrongPath {
				t.wrongPathPC = u.PC + 4
			}
			continue
		}
		// Control transfer: steer the fetch PC and end the fetch group on
		// a predicted-taken branch.
		if u.Mispred {
			// Oracle says the prediction is wrong: everything younger is
			// wrong-path until this branch resolves.
			t.wrongPath = true
			t.wpBranch = u
			if u.PredTaken && u.PredTarget != 0 {
				t.wrongPathPC = u.PredTarget
			} else {
				t.wrongPathPC = u.PC + 4
			}
			break
		}
		if t.wrongPath {
			if u.PredTaken && u.PredTarget != 0 {
				t.wrongPathPC = u.PredTarget
			} else {
				t.wrongPathPC = u.PC + 4
			}
		}
		if u.PredTaken {
			break // taken branch ends the fetch group
		}
	}
	return fetched
}

// predictCTI runs the front-end predictors for a control-transfer uop:
// gshare direction (conditional branches), BTB target, RAS for
// calls/returns. For correct-path uops the oracle outcome decides Mispred
// and trains the predictors; wrong-path CTIs only steer the wrong-path PC.
func (p *Processor) predictCTI(t *thread, u *pipeline.Uop) {
	btb := p.btbs[t.id]
	switch u.Class {
	case isa.Branch:
		pred := p.gshares[t.id].Predict(0, u.PC)
		u.PredTaken = pred
		if pred {
			if tgt, ok := btb.Lookup(u.PC); ok {
				u.PredTarget = tgt
			} else {
				// Predicted taken with no target: the front end cannot
				// redirect, so it behaves as a not-taken prediction.
				u.PredTaken = false
			}
		}
	case isa.Call:
		u.PredTaken = true
		if tgt, ok := btb.Lookup(u.PC); ok {
			u.PredTarget = tgt
		} else {
			u.PredTaken = false
		}
		// Wrong-path calls do not touch the RAS: hardware checkpoints the
		// stack at each branch and restores it on a squash, which this
		// models without the checkpoint bookkeeping.
		if !u.WrongPath {
			t.ras.Push(u.PC + 4)
		}
	case isa.Return:
		if u.WrongPath {
			u.PredTaken = true
			u.PredTarget = u.PC + 4 // arbitrary; the uop is squashed anyway
			break
		}
		if tgt, ok := t.ras.Pop(); ok {
			u.PredTaken = true
			u.PredTarget = tgt
		}
	}
	if u.WrongPath {
		return
	}
	u.Mispred = u.PredTaken != u.Taken ||
		(u.Taken && u.PredTarget != u.Target)
	t.branches++
	if u.Mispred {
		t.mispredicts++
	}
	if u.Class == isa.Branch {
		p.gshares[t.id].Update(0, u.PC, u.Taken)
	}
	if u.Taken && u.Class != isa.Return {
		btb.Insert(u.PC, u.Target)
	}
}

// recoverMispredict squashes thread t's wrong path once the mispredicted
// branch u resolves and redirects fetch to the correct path.
func (p *Processor) recoverMispredict(t *thread, u *pipeline.Uop) {
	t.wrongPath = false
	t.wpBranch = nil
	p.squashThread(t, u.GSeq)
	if next := p.now + 1; next > t.stallUntil {
		t.stallUntil = next // redirect bubble
		t.stallICache = false
	}
}

// squashThread removes every uop of thread t younger than afterGSeq from
// the front end, IQ, ROB, and LSQ; rolls back its renames youngest-first;
// classifies its residencies un-ACE; and rewinds the trace stream so the
// squashed correct-path instructions are refetched.
func (p *Processor) squashThread(t *thread, afterGSeq uint64) {
	// Front end: drop queued uops (no structure residency yet).
	var rewindTo uint64
	haveRewind := false
	note := func(u *pipeline.Uop) {
		if !u.WrongPath && (!haveRewind || u.Seq < rewindTo) {
			rewindTo = u.Seq
			haveRewind = true
		}
	}
	for t.fetchQ.len() > 0 {
		u := t.fetchQ.back()
		if u.GSeq <= afterGSeq {
			break
		}
		t.fetchQ.popBack()
		note(u)
		u.Squashed = true
		p.rec.Record(u, p.now, true)
		p.prop.Record(u, p.now, true)
		p.cpi.Record(u, true)
		if u.PredL1 {
			t.predL1--
		}
		if u.PredL2 {
			t.predL2--
		}
		if u == t.wpBranch {
			// The pending mispredicted branch itself was squashed (a
			// FLUSH landed underneath it); leave wrong-path mode.
			t.wrongPath = false
			t.wpBranch = nil
		}
		t.releaseUop(u) // never dispatched: in no structure
	}
	// Back end: roll the ROB back from the tail.
	for t.rob.Len() > 0 && t.rob.Tail().GSeq > afterGSeq {
		u := t.rob.PopTail(p.now)
		if u.InIQ {
			p.iq.Remove(u, p.now)
			p.rf.Unwatch(u)
		}
		if u.LSQIdx >= 0 {
			t.lsq.PopTail(p.now)
		}
		p.rf.Rollback(u, p.now)
		p.resolveMissCounters(t, u)
		note(u)
		u.Squashed = true
		u.Classify(p.trk, p.cfg.Bits, true)
		p.rec.Record(u, p.now, true)
		p.prop.Record(u, p.now, true)
		p.cpi.Record(u, true)
		t.squashedUops++
		p.telSquashed.Inc()
		if u == t.wpBranch {
			t.wrongPath = false
			t.wpBranch = nil
		}
		if !u.Issued || u.Executed {
			// Mid-execution uops (issued, result pending) stay on
			// p.inflight; writeback releases them when it drops them.
			t.releaseUop(u)
		}
	}
	if haveRewind {
		t.stream.Rewind(rewindTo)
	}
}
