package core

import (
	"encoding/json"
	"strings"
	"testing"
)

func TestConfigJSONRoundTrip(t *testing.T) {
	cfg := DefaultConfig(4)
	if err := cfg.SetPolicy("FLUSH"); err != nil {
		t.Fatal(err)
	}
	cfg.IQSize = 128
	cfg.Warmup = 12345
	data, err := json.Marshal(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var got Config
	if err := json.Unmarshal(data, &got); err != nil {
		t.Fatal(err)
	}
	if got.IQSize != 128 || got.Threads != 4 || got.Warmup != 12345 {
		t.Fatalf("fields lost: %+v", got)
	}
	if got.Policy == nil || got.Policy.Name() != "FLUSH" {
		t.Fatal("policy lost in round trip")
	}
	if got.DL1 != cfg.DL1 || got.DTLB != cfg.DTLB {
		t.Fatal("nested memory configuration lost")
	}
	// A round-tripped config must still drive a simulation.
	if err := got.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestConfigJSONPolicyByName(t *testing.T) {
	data, err := json.Marshal(DefaultConfig(2))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), `"Policy":"ICOUNT"`) {
		t.Fatalf("policy not serialized by name: %s", data)
	}
}

func TestConfigJSONUnknownPolicy(t *testing.T) {
	var cfg Config
	err := json.Unmarshal([]byte(`{"Threads":1,"Policy":"NOPE"}`), &cfg)
	if err == nil {
		t.Fatal("unknown policy accepted")
	}
}

func TestConfigJSONEmptyPolicy(t *testing.T) {
	var cfg Config
	if err := json.Unmarshal([]byte(`{"Threads":2}`), &cfg); err != nil {
		t.Fatal(err)
	}
	if cfg.Policy != nil {
		t.Fatal("absent policy should stay nil")
	}
	if cfg.Threads != 2 {
		t.Fatal("fields lost")
	}
}
