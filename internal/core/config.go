// Package core implements the reliability-aware SMT processor simulator:
// an out-of-order, simultaneous-multithreaded pipeline whose every
// instrumented structure feeds the ACE/un-ACE residency accounting of
// package avf. This is the paper's primary contribution — the framework
// that produces the per-structure, per-thread AVF and performance numbers
// behind Figures 1–8.
package core

import (
	"fmt"

	"smtavf/internal/fetch"
	"smtavf/internal/isa"
	"smtavf/internal/mem"
	"smtavf/internal/pipeline"
)

// Config parameterizes the simulated machine. DefaultConfig reproduces the
// paper's Table 1.
type Config struct {
	Threads int // hardware contexts (1 = superscalar baseline)

	// Pipeline widths and depth.
	FetchWidth      int // instructions fetched per cycle (8)
	MaxFetchThreads int // threads sharing fetch bandwidth per cycle (2: ICOUNT2.8)
	DispatchWidth   int
	IssueWidth      int
	CommitWidth     int
	FrontEndDepth   int // fetch→dispatch latency in cycles (pipeline depth 7)
	FetchQueue      int // per-thread fetch buffer capacity

	// Structure capacities.
	IQSize      int // shared issue queue entries
	IQPartition int // static per-thread IQ cap; 0 = fully shared (ablation)
	ROBSize     int // per-thread reorder buffer entries
	LSQSize     int // per-thread load/store queue entries
	IntPhysRegs int // shared integer physical registers
	FPPhysRegs  int // shared floating-point physical registers
	FUCounts    [isa.NumFUKinds]int

	// Predictors.
	GshareEntries   int
	GshareHistBits  uint
	BTBEntries      int
	BTBWays         int
	RASEntries      int
	MissPredEntries int // L1D / L2 miss predictor size (PDG, STALLP)

	// Memory hierarchy.
	IL1        mem.Config
	DL1        mem.Config
	L2         mem.Config
	MemLatency int
	ITLB       mem.TLBConfig
	DTLB       mem.TLBConfig

	// Policy is the instruction fetch policy (default ICOUNT).
	Policy fetch.Policy

	// Bits are the per-entry widths for AVF accounting.
	Bits pipeline.Bits

	// Seed makes runs reproducible; workload streams derive from it.
	Seed uint64

	// MaxCycles aborts a run that exceeds it (0 = 1<<40). The deadlock
	// detector fires much earlier if commit stops entirely.
	MaxCycles uint64

	// PhaseInterval, when nonzero, samples per-interval IPC and AVF every
	// PhaseInterval cycles into Results.Phases — the AVF phase-behaviour
	// view of Fu et al. (MASCOTS 2006), which the paper builds on. Note
	// that residency is booked when state *leaves* a structure, so a long
	// stall's contribution lands in the phase where it ends.
	PhaseInterval uint64

	// Warmup commits this many instructions before measurement begins,
	// then resets every statistic (AVF accounting, performance counters,
	// cache/predictor statistics — the predictors and caches themselves
	// stay warm). It plays the role of the paper's SimPoint fast-forward:
	// without it, cold predictors and caches dominate short runs. Not
	// combinable with per-thread quotas.
	Warmup uint64
}

// DefaultConfig returns the paper's Table 1 machine with the given number
// of thread contexts and the ICOUNT baseline fetch policy.
func DefaultConfig(threads int) Config {
	return Config{
		Threads:         threads,
		FetchWidth:      8,
		MaxFetchThreads: 2,
		DispatchWidth:   8,
		IssueWidth:      8,
		CommitWidth:     8,
		FrontEndDepth:   4, // 7-deep pipe: 4 front-end stages before issue
		// The fetch buffer must cover FetchWidth × FrontEndDepth in-flight
		// instructions or it throttles steady-state fetch bandwidth.
		FetchQueue:      40,
		IQSize:          96,
		ROBSize:         96,
		LSQSize:         48,
		IntPhysRegs:     448,
		FPPhysRegs:      448,
		FUCounts:        pipeline.DefaultFUCounts(),
		GshareEntries:   2048,
		GshareHistBits:  10,
		BTBEntries:      2048,
		BTBWays:         4,
		RASEntries:      32,
		MissPredEntries: 2048,
		IL1: mem.Config{
			Name: "IL1", Size: 32 << 10, Ways: 2, LineSize: 32,
			Latency: 1, Ports: 2,
		},
		DL1: mem.Config{
			Name: "DL1", Size: 64 << 10, Ways: 4, LineSize: 64,
			Latency: 1, Ports: 2,
		},
		L2: mem.Config{
			Name: "L2", Size: 2 << 20, Ways: 4, LineSize: 128,
			Latency: 12,
		},
		MemLatency: 200,
		ITLB: mem.TLBConfig{
			Name: "ITLB", Entries: 128, Ways: 4, PageSize: 4096,
			MissPenalty: 200,
		},
		DTLB: mem.TLBConfig{
			Name: "DTLB", Entries: 256, Ways: 4, PageSize: 4096,
			MissPenalty: 200,
		},
		Policy: fetch.ICount{},
		Bits:   pipeline.DefaultBits(),
		Seed:   1,
	}
}

// SetPolicy selects the fetch policy by name (ICOUNT, STALL, FLUSH, DG,
// PDG, DWarn, STALLP).
func (c *Config) SetPolicy(name string) error {
	p := fetch.ByName(name)
	if p == nil {
		return fmt.Errorf("core: unknown fetch policy %q", name)
	}
	c.Policy = p
	return nil
}

// Validate reports configuration errors before a Processor is built.
func (c *Config) Validate() error {
	switch {
	case c.Threads < 1:
		return fmt.Errorf("core: Threads must be >= 1, got %d", c.Threads)
	case c.FetchWidth < 1 || c.DispatchWidth < 1 || c.IssueWidth < 1 || c.CommitWidth < 1:
		return fmt.Errorf("core: pipeline widths must be >= 1")
	case c.IQSize < 1 || c.ROBSize < 1 || c.LSQSize < 1:
		return fmt.Errorf("core: structure sizes must be >= 1")
	case c.IntPhysRegs < c.Threads*isa.NumIntRegs:
		return fmt.Errorf("core: %d integer physical registers cannot hold %d threads of architectural state",
			c.IntPhysRegs, c.Threads)
	case c.FPPhysRegs < c.Threads*isa.NumFPRegs:
		return fmt.Errorf("core: %d FP physical registers cannot hold %d threads of architectural state",
			c.FPPhysRegs, c.Threads)
	case c.Policy == nil:
		return fmt.Errorf("core: no fetch policy configured")
	case c.FrontEndDepth < 1:
		return fmt.Errorf("core: FrontEndDepth must be >= 1")
	case c.MaxFetchThreads < 1:
		return fmt.Errorf("core: MaxFetchThreads must be >= 1")
	}
	return nil
}
