package core

import (
	"smtavf/internal/avf"
	"smtavf/internal/telemetry"
)

// SetTelemetry attaches a telemetry collector: every WindowCycles cycles
// the processor emits one telemetry.Window of per-interval IPC, AVF,
// occupancy, and event counters, and keeps a handful of live registry
// metrics current for the debug server. Call before Run; a nil collector
// leaves telemetry disabled (the hot-path hooks degrade to nil-receiver
// no-ops).
func (p *Processor) SetTelemetry(c *telemetry.Collector) {
	p.tel = c
	p.telCycle = c.Gauge("sim.cycle")
	p.telCommitted = c.Counter("sim.committed")
	p.telFlushes = c.Counter("sim.flushes")
	p.telSquashed = c.Counter("sim.squashed_uops")
}

// telemetrySnap is a baseline snapshot of every windowed quantity; the
// rollover diffs two snapshots, so the hot path never maintains separate
// per-window accumulators.
type telemetrySnap struct {
	cycle     uint64
	committed uint64
	perThread []uint64
	ace       [avf.NumStructs]uint64
	occ       [avf.NumStructs]uint64
	fetched   uint64
	wrongPath uint64
	mispred   uint64
	flushes   uint64
	squashed  uint64
	stalls    uint64
}

func (p *Processor) telemetrySnapshot() telemetrySnap {
	s := telemetrySnap{
		cycle:     p.now,
		committed: p.totalCommitted,
		perThread: make([]uint64, len(p.threads)),
	}
	for i, t := range p.threads {
		s.perThread[i] = t.committed
		s.fetched += t.fetched
		s.wrongPath += t.wrongPathFetch
		s.mispred += t.mispredicts
		s.flushes += t.flushes
		s.squashed += t.squashedUops
		s.stalls += t.renameStalls + t.iqFullStalls + t.robFullStalls + t.lsqFullStalls
	}
	for st := avf.Struct(0); st < avf.NumStructs; st++ {
		s.ace[st] = p.trk.ACEBitCycles(st)
		s.occ[st] = p.trk.OccupiedBitCycles(st)
	}
	return s
}

// telemetryStart arms the sampler at the beginning of Run (and again
// after a rebase).
func (p *Processor) telemetryStart() {
	p.telBase = p.telemetrySnapshot()
	p.telNext = p.now + p.tel.WindowCycles()
}

// telemetryRoll closes the current window and records it. The final roll
// (after closeAccounting) may cover zero cycles when the run ended
// exactly on a window boundary; it is still emitted so the last window's
// cumulative AVF always matches the end-of-run report.
func (p *Processor) telemetryRoll(final bool) {
	base := p.telBase
	d := p.now - base.cycle
	if d == 0 && !final {
		return
	}
	cur := p.telemetrySnapshot()
	w := telemetry.Window{
		Index:          p.telIndex,
		Warmup:         p.cfg.Warmup > 0 && p.warmPerThread == nil,
		Final:          final,
		StartCycle:     base.cycle,
		EndCycle:       p.now,
		Committed:      cur.committed - base.committed,
		AVF:            make(map[string]float64, avf.NumStructs),
		CumAVF:         make(map[string]float64, avf.NumStructs),
		Occupancy:      make(map[string]float64, avf.NumStructs),
		Fetched:        cur.fetched - base.fetched,
		WrongPathFetch: cur.wrongPath - base.wrongPath,
		Mispredicts:    cur.mispred - base.mispred,
		Flushes:        cur.flushes - base.flushes,
		SquashedUops:   cur.squashed - base.squashed,
		DispatchStalls: cur.stalls - base.stalls,
	}
	if d > 0 {
		w.IPC = float64(w.Committed) / float64(d)
		w.ThreadIPC = make([]float64, len(p.threads))
		for i := range p.threads {
			w.ThreadIPC[i] = float64(cur.perThread[i]-base.perThread[i]) / float64(d)
		}
	}
	meas := p.now - p.measureStart
	for st := avf.Struct(0); st < avf.NumStructs; st++ {
		name := st.String()
		if den := float64(p.trk.Bits(st)) * float64(d); den > 0 {
			w.AVF[name] = float64(cur.ace[st]-base.ace[st]) / den
			w.Occupancy[name] = float64(cur.occ[st]-base.occ[st]) / den
		}
		// Same computation as the end-of-run avf.Report, so the final
		// window agrees with it bit for bit.
		w.CumAVF[name] = p.trk.AVF(st, meas)
	}
	p.tel.Record(w)
	p.telIndex++
	p.telBase = cur
	p.telNext = p.now + p.tel.WindowCycles()
}
