package experiments

import (
	"math"
	"testing"

	"smtavf/internal/avf"
	"smtavf/internal/cpistack"
)

// TestExplainTables runs a small two-policy comparison and checks the
// shape and invariants of the figure family: stack columns sum to 1,
// occupancy fate shares sum to 1 wherever a structure is occupied, and
// the correlation table carries well-formed coefficients.
func TestExplainTables(t *testing.T) {
	r := NewRunner(Options{Base: 2_000, Seed: 1})
	ts, title, err := r.Explain(ExplainSpec{
		Benchmarks: []string{"mcf", "gcc"},
		Policies:   []string{"ICOUNT", "FLUSH"},
	})
	if err != nil {
		t.Fatal(err)
	}
	if title == "" {
		t.Fatal("empty title")
	}
	// 1 stack table + one occupancy table per policy + 1 correlation table.
	if len(ts) != 4 {
		t.Fatalf("%d tables, want 4", len(ts))
	}

	stack := ts[0]
	if len(stack.Rows) != cpistack.NumComponents {
		t.Fatalf("stack has %d rows, want %d", len(stack.Rows), cpistack.NumComponents)
	}
	if len(stack.Cols) != 2 {
		t.Fatalf("stack has %d columns, want 2", len(stack.Cols))
	}
	for j := range stack.Cols {
		var sum float64
		for i := range stack.Rows {
			v := stack.Get(i, j)
			if v < 0 || v > 1 {
				t.Errorf("stack %s/%s = %v out of [0,1]", stack.Rows[i], stack.Cols[j], v)
			}
			sum += v
		}
		if math.Abs(sum-1) > 1e-9 {
			t.Errorf("stack column %s sums to %v, want 1", stack.Cols[j], sum)
		}
	}

	for _, occ := range ts[1:3] {
		if len(occ.Rows) != len(cpistack.OccupancyStructs()) {
			t.Fatalf("%s has %d rows, want %d", occ.Title, len(occ.Rows), len(cpistack.OccupancyStructs()))
		}
		if len(occ.Cols) != 1+int(avf.NumFates) {
			t.Fatalf("%s has %d columns, want %d", occ.Title, len(occ.Cols), 1+int(avf.NumFates))
		}
		for i := range occ.Rows {
			occupied := occ.Get(i, 0)
			if occupied < 0 || occupied > 1 {
				t.Errorf("%s %s occupied = %v out of [0,1]", occ.Title, occ.Rows[i], occupied)
			}
			if occupied == 0 {
				continue
			}
			var fates float64
			for j := 1; j < len(occ.Cols); j++ {
				fates += occ.Get(i, j)
			}
			if math.Abs(fates-1) > 1e-9 {
				t.Errorf("%s %s fate shares sum to %v, want 1", occ.Title, occ.Rows[i], fates)
			}
		}
	}

	corr := ts[3]
	if got, want := len(corr.Cols), 2*2+1; got != want {
		t.Fatalf("correlation table has %d columns, want %d", got, want)
	}
	if corr.Cols[len(corr.Cols)-1] != "pearson" {
		t.Fatalf("last correlation column is %q, want pearson", corr.Cols[len(corr.Cols)-1])
	}
	iq := corr.Row("IQ")
	if iq < 0 {
		t.Fatal("correlation table has no IQ row")
	}
	for i := range corr.Rows {
		p := corr.Get(i, len(corr.Cols)-1)
		if p < -1-1e-9 || p > 1+1e-9 || math.IsNaN(p) {
			t.Errorf("%s pearson = %v out of [-1,1]", corr.Rows[i], p)
		}
	}
	// FLUSH drains the queues after a miss: IQ occupancy must drop
	// relative to ICOUNT, which is the worked example in the README.
	if ico, fl := corr.Get(iq, 0), corr.Get(iq, 2); fl >= ico {
		t.Errorf("IQ occupancy under FLUSH (%v) not below ICOUNT (%v)", fl, ico)
	}
}

func TestPearson(t *testing.T) {
	for _, tc := range []struct {
		name   string
		xs, ys []float64
		want   float64
	}{
		{"perfect positive", []float64{1, 2, 3}, []float64{2, 4, 6}, 1},
		{"perfect negative", []float64{1, 2, 3}, []float64{6, 4, 2}, -1},
		{"constant series", []float64{1, 1, 1}, []float64{1, 2, 3}, 0},
		{"too short", []float64{1}, []float64{2}, 0},
		{"mismatched", []float64{1, 2}, []float64{1}, 0},
	} {
		if got := pearson(tc.xs, tc.ys); math.Abs(got-tc.want) > 1e-12 {
			t.Errorf("%s: pearson = %v, want %v", tc.name, got, tc.want)
		}
	}
}
