package experiments

import (
	"smtavf/internal/avf"
	"smtavf/internal/core"
	"smtavf/internal/workload"
)

// extensionPolicies pits the baseline and the two best paper policies
// against the two §5 future-work proposals implemented here: STALLP
// (L2-miss-predictive gating) and VAware (vulnerability-feedback fetch
// priority).
var extensionPolicies = []string{"ICOUNT", "STALL", "FLUSH", "STALLP", "VAware"}

// Extensions evaluates the paper's §5 proposed mechanisms on the
// 4-context mixes: throughput, IQ/ROB AVF, and the IQ reliability
// efficiency, per policy (groups averaged, kinds averaged per column
// group).
func (r *Runner) Extensions() (*Table, error) {
	rows := []string{"IPC", "IQ AVF", "ROB AVF", "IQ IPC/AVF"}
	var cols []string
	for _, k := range workload.Kinds() {
		for _, p := range extensionPolicies {
			cols = append(cols, k.String()+"/"+p)
		}
	}
	t := NewTable("Extensions: the paper's §5 proposals (4 contexts)", rows, cols)
	t.Note = "STALLP and VAware are the future-work mechanisms the paper sketches"
	col := 0
	for _, k := range workload.Kinds() {
		for _, pol := range extensionPolicies {
			runs, err := r.MixAvg(4, k, pol)
			if err != nil {
				return nil, err
			}
			t.Set(0, col, meanOver(runs, func(res *core.Results) float64 { return res.IPC() }))
			t.Set(1, col, meanOver(runs, func(res *core.Results) float64 { return res.StructAVF(avf.IQ) }))
			t.Set(2, col, meanOver(runs, func(res *core.Results) float64 { return res.StructAVF(avf.ROB) }))
			t.Set(3, col, meanOver(runs, func(res *core.Results) float64 { return res.Efficiency(avf.IQ) }))
			col++
		}
	}
	return t, nil
}
