package experiments

import (
	"fmt"
	"strings"
)

// chartWidth is the bar length of the largest value, in cells.
const chartWidth = 44

// Chart renders the table as horizontal bars — a terminal-friendly
// approximation of the paper's bar figures. Bars are scaled to the
// table's maximum value.
func (t *Table) Chart() string {
	max := 0.0
	for i := range t.Rows {
		for j := range t.Cols {
			if v := t.Cells[i][j]; v > max {
				max = v
			}
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", t.Title)
	if t.Note != "" {
		fmt.Fprintf(&b, "  (%s)\n", t.Note)
	}
	if max == 0 {
		b.WriteString("  (no data)\n")
		return b.String()
	}
	rowW := 0
	for _, r := range t.Rows {
		if len(r) > rowW {
			rowW = len(r)
		}
	}
	colW := 0
	for _, c := range t.Cols {
		if len(c) > colW {
			colW = len(c)
		}
	}
	for i, r := range t.Rows {
		for j, c := range t.Cols {
			label := ""
			if j == 0 {
				label = r
			}
			v := t.Cells[i][j]
			n := int(v/max*chartWidth + 0.5)
			if n > chartWidth {
				n = chartWidth
			}
			bar := strings.Repeat("█", n)
			if n == 0 && v > 0 {
				bar = "▏"
			}
			if t.Percent {
				fmt.Fprintf(&b, "  %-*s %-*s %-*s %6.2f%%\n", rowW, label, colW, c, chartWidth, bar, 100*v)
			} else {
				fmt.Fprintf(&b, "  %-*s %-*s %-*s %8.3f\n", rowW, label, colW, c, chartWidth, bar, v)
			}
		}
		if i < len(t.Rows)-1 {
			b.WriteByte('\n')
		}
	}
	return b.String()
}
