package experiments

import (
	"smtavf/internal/campaign"
	"smtavf/internal/core"
	"smtavf/internal/crossval"
	"smtavf/internal/inject"
)

// CrossValSpec describes one ACE-vs-injection cross-validation
// experiment: a workload, a fetch policy, and the fanout of campaign
// seeds to pool.
//
// Deprecated: build a campaign.Spec with a CrossVal section instead (or
// convert with the Campaign method) and run it through Runner.Campaign;
// docs/api.md maps the fields. This type remains as a bit-identical
// adapter, pinned by TestSpecAdaptersMatch.
type CrossValSpec struct {
	// Mix is a Table 2 mix name (e.g. "4ctx-MIX-A"); alternatively list
	// Benchmarks directly.
	Mix        string
	Benchmarks []string
	Policy     string
	// Seeds are the per-campaign seeds to fan out (each also seeds its
	// simulation). Empty defaults to {1}.
	Seeds []uint64
	// Every is the campaign's sample-grid pitch (default 1: exact).
	Every uint64
	// Instructions overrides the runner's context-scaled budget.
	Instructions uint64
	// Stop is the sequential stopping rule (zero value: defaults).
	Stop inject.Stop
	// Protection classifies ACE strikes per structure (default: all
	// silent).
	Protection core.ProtectionModes
}

// Campaign converts the deprecated spec to its campaign.Spec equivalent.
func (s CrossValSpec) Campaign() campaign.Spec {
	return campaign.Spec{
		V:            campaign.SpecVersion,
		Mix:          s.Mix,
		Benchmarks:   s.Benchmarks,
		Policy:       s.Policy,
		Instructions: s.Instructions,
		Protection:   campaign.ProtectionMap(s.Protection),
		Inject:       &campaign.InjectSpec{Every: s.Every, Stop: s.Stop},
		CrossVal:     &campaign.CrossValSpec{Seeds: s.Seeds},
	}
}

// CrossVal runs the seed fanout concurrently (one simulation + campaign
// per seed, bounded by GOMAXPROCS via the shared worker pool) and pools
// the per-seed agreement reports into one: strike counts sum, tracker
// AVFs average, and the confidence interval tightens by roughly
// sqrt(len(Seeds)). Runs are not memoized — each seed is a distinct
// simulation.
//
// Deprecated: use Runner.Campaign with spec.Campaign().
func (r *Runner) CrossVal(spec CrossValSpec) (pooled *crossval.Report, perSeed []*crossval.Report, err error) {
	res, err := r.Campaign(spec.Campaign())
	if err != nil {
		return nil, nil, err
	}
	return res.CrossVal, res.CrossValSeeds, nil
}
