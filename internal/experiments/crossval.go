package experiments

import (
	"fmt"

	"smtavf/internal/avf"
	"smtavf/internal/core"
	"smtavf/internal/crossval"
	"smtavf/internal/inject"
	"smtavf/internal/trace"
	"smtavf/internal/workload"
)

// CrossValSpec describes one ACE-vs-injection cross-validation
// experiment: a workload, a fetch policy, and the fanout of campaign
// seeds to pool.
type CrossValSpec struct {
	// Mix is a Table 2 mix name (e.g. "4ctx-MIX-A"); alternatively list
	// Benchmarks directly.
	Mix        string
	Benchmarks []string
	Policy     string
	// Seeds are the per-campaign seeds to fan out (each also seeds its
	// simulation). Empty defaults to {1}.
	Seeds []uint64
	// Every is the campaign's sample-grid pitch (default 1: exact).
	Every uint64
	// Instructions overrides the runner's context-scaled budget.
	Instructions uint64
	// Stop is the sequential stopping rule (zero value: defaults).
	Stop inject.Stop
	// Protection classifies ACE strikes per structure (default: all
	// silent).
	Protection core.ProtectionModes
}

// benchmarks resolves the workload names.
func (s CrossValSpec) benchmarks() ([]string, error) {
	if s.Mix == "" {
		if len(s.Benchmarks) == 0 {
			return nil, fmt.Errorf("experiments: crossval spec needs Mix or Benchmarks")
		}
		return s.Benchmarks, nil
	}
	for _, m := range workload.Mixes() {
		if m.Name() == s.Mix {
			return m.Benchmarks, nil
		}
	}
	return nil, fmt.Errorf("experiments: unknown mix %q", s.Mix)
}

// workloadName is the label the report carries.
func (s CrossValSpec) workloadName() string {
	if s.Mix != "" {
		return s.Mix
	}
	names, _ := s.benchmarks()
	name := ""
	for i, b := range names {
		if i > 0 {
			name += "+"
		}
		name += b
	}
	return name
}

// CrossVal runs the seed fanout concurrently (one simulation + campaign
// per seed, bounded by GOMAXPROCS via the shared worker pool) and pools
// the per-seed agreement reports into one: strike counts sum, tracker
// AVFs average, and the confidence interval tightens by roughly
// sqrt(len(Seeds)). Runs are not memoized — each seed is a distinct
// simulation.
func (r *Runner) CrossVal(spec CrossValSpec) (pooled *crossval.Report, perSeed []*crossval.Report, err error) {
	names, err := spec.benchmarks()
	if err != nil {
		return nil, nil, err
	}
	if spec.Policy == "" {
		spec.Policy = "ICOUNT"
	}
	if spec.Every == 0 {
		spec.Every = 1
	}
	seeds := spec.Seeds
	if len(seeds) == 0 {
		seeds = []uint64{1}
	}
	perSeed = make([]*crossval.Report, len(seeds))
	err = forEach(len(seeds), func(i int) error {
		rep, err := r.crossValSeed(spec, names, seeds[i])
		if err != nil {
			return fmt.Errorf("seed %d: %w", seeds[i], err)
		}
		perSeed[i] = rep
		return nil
	})
	if err != nil {
		return nil, nil, err
	}
	pooled, err = crossval.Pool(perSeed)
	if err != nil {
		return nil, nil, err
	}
	return pooled, perSeed, nil
}

// crossValSeed runs one simulation with a campaign attached and builds
// its agreement report.
func (r *Runner) crossValSeed(spec CrossValSpec, names []string, seed uint64) (*crossval.Report, error) {
	cfg := core.DefaultConfig(len(names))
	cfg.Seed = seed
	cfg.Warmup = r.opts.Warmup
	if err := cfg.SetPolicy(spec.Policy); err != nil {
		return nil, err
	}
	if r.opts.Configure != nil {
		r.opts.Configure(&cfg)
	}
	profiles := make([]trace.Profile, 0, len(names))
	for _, b := range names {
		p, err := workload.Profile(b)
		if err != nil {
			return nil, err
		}
		profiles = append(profiles, p)
	}
	camp, err := inject.NewCampaign(core.StructBits(cfg), spec.Every, seed)
	if err != nil {
		return nil, err
	}
	camp.SetProtection(spec.Protection.Detections())
	proc, err := core.New(cfg, profiles)
	if err != nil {
		return nil, err
	}
	proc.AttachSink(camp)
	quota := spec.Instructions
	if quota == 0 {
		quota = r.budget(len(names))
	}
	res, err := proc.Run(core.Limits{TotalInstructions: quota})
	if err != nil {
		return nil, err
	}
	stats := camp.RunStrikes(res.Cycles, spec.Stop)
	var tracker [avf.NumStructs]float64
	for s := range tracker {
		tracker[s] = res.StructAVF(avf.Struct(s))
	}
	meta := crossval.Meta{
		Workload: spec.workloadName(),
		Policy:   spec.Policy,
		Seed:     seed,
		Seeds:    1,
		Every:    spec.Every,
		Cycles:   res.Cycles,
	}
	return crossval.Build(meta, tracker, stats), nil
}
