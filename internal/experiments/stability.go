package experiments

import (
	"fmt"
	"math"

	"smtavf/internal/core"
	"smtavf/internal/trace"
	"smtavf/internal/workload"
)

// Stability reruns the Figure 1 measurement at several seeds and reports
// the mean and relative spread of each structure's AVF — the confidence
// check behind reporting single-seed figures. Synthetic workloads
// resample their dynamic behaviour (branch outcomes, addresses) per seed,
// so the spread measures how much of each figure is signal.
func (r *Runner) Stability(seeds int) ([]*Table, error) {
	if seeds < 2 {
		return nil, fmt.Errorf("experiments: stability needs >= 2 seeds")
	}
	ss := paperStructs()
	mean := NewTable("Stability: mean AVF over seeds (4 contexts, ICOUNT, group A)",
		structNames(ss), kindNames())
	mean.Percent = true
	mean.Note = fmt.Sprintf("%d seeds", seeds)
	spread := NewTable("Stability: relative AVF spread over seeds (stddev/mean)",
		structNames(ss), kindNames())
	spread.Note = "smaller is more stable; < 0.1 means the figures are seed-robust"

	for j, k := range workload.Kinds() {
		m, err := workload.Lookup(4, k, workload.GroupA)
		if err != nil {
			return nil, err
		}
		profiles := make([]trace.Profile, 0, len(m.Benchmarks))
		for _, b := range m.Benchmarks {
			p, err := workload.Profile(b)
			if err != nil {
				return nil, err
			}
			profiles = append(profiles, p)
		}
		samples := make([][]float64, len(ss))
		for seed := uint64(1); seed <= uint64(seeds); seed++ {
			cfg := core.DefaultConfig(4)
			cfg.Seed = seed
			cfg.Warmup = r.opts.Warmup
			if r.opts.Configure != nil {
				r.opts.Configure(&cfg)
			}
			proc, err := core.New(cfg, profiles)
			if err != nil {
				return nil, err
			}
			res, err := proc.Run(core.Limits{TotalInstructions: r.budget(4)})
			if err != nil {
				return nil, fmt.Errorf("stability seed %d: %w", seed, err)
			}
			for i, s := range ss {
				samples[i] = append(samples[i], res.StructAVF(s))
			}
		}
		for i := range ss {
			mu, sd := meanStd(samples[i])
			mean.Set(i, j, mu)
			if mu > 0 {
				spread.Set(i, j, sd/mu)
			}
			samples[i] = samples[i][:0]
		}
	}
	return []*Table{mean, spread}, nil
}

func meanStd(xs []float64) (mean, std float64) {
	if len(xs) == 0 {
		return 0, 0
	}
	for _, x := range xs {
		mean += x
	}
	mean /= float64(len(xs))
	for _, x := range xs {
		std += (x - mean) * (x - mean)
	}
	std = math.Sqrt(std / float64(len(xs)))
	return mean, std
}
