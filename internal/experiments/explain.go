package experiments

import (
	"math"

	"smtavf/internal/avf"
	"smtavf/internal/campaign"
	"smtavf/internal/core"
	"smtavf/internal/cpistack"
)

// ExplainSpec describes one explainability experiment: a workload run
// under each listed fetch policy with the CPI-stack/occupancy observer
// attached, so per-policy AVF differences can be read against where the
// cycles went and how full the structures were.
//
// Deprecated: build a campaign.Spec with an Explain section instead (or
// convert with the Campaign method) and run it through Runner.Campaign;
// docs/api.md maps the fields. This type remains as a bit-identical
// adapter, pinned by TestSpecAdaptersMatch.
type ExplainSpec struct {
	// Mix is a Table 2 mix name; alternatively list Benchmarks directly.
	Mix        string
	Benchmarks []string
	// Policies lists the fetch policies to compare (default
	// ICOUNT/STALL/FLUSH — the paper's baseline and its two
	// occupancy-throttling variants).
	Policies []string
	// Seed seeds each simulation (default: runner seed).
	Seed uint64
	// Instructions overrides the runner's context-scaled budget.
	Instructions uint64
	// Window is the observer's window size in cycles (default
	// cpistack.DefaultWindowCycles).
	Window uint64
}

// Campaign converts the deprecated spec to its campaign.Spec equivalent.
func (s ExplainSpec) Campaign() campaign.Spec {
	return campaign.Spec{
		V:            campaign.SpecVersion,
		Mix:          s.Mix,
		Benchmarks:   s.Benchmarks,
		Seed:         s.Seed,
		Instructions: s.Instructions,
		Explain:      &campaign.ExplainSpec{Policies: s.Policies, Window: s.Window},
	}
}

// explainRun is one policy's worth of raw material for the tables.
type explainRun struct {
	policy string
	obs    *cpistack.Observer
	res    *core.Results
}

// Explain runs the workload once per policy with a CPI-stack observer
// attached and distills the runs into the explainability figure family:
// a stacked-CPI chart across policies, a per-policy occupancy-by-fate
// table, and an occupancy-versus-AVF correlation summary. Explain runs
// are not memoized — the observer holds windowed state, so each policy
// uses its own dedicated simulation.
//
// Deprecated: use Runner.Campaign with spec.Campaign(); the tables ride
// on Result.Tables (TablesFromCampaign converts them back) and the title
// on Result.Title.
func (r *Runner) Explain(spec ExplainSpec) ([]*Table, string, error) {
	res, err := r.Campaign(spec.Campaign())
	if err != nil {
		return nil, "", err
	}
	return TablesFromCampaign(res.Tables), res.Title, nil
}

// explainStackTable builds the stacked-CPI chart: the share of all
// thread-cycles each component absorbed, one column per policy.
func explainStackTable(title string, runs []explainRun) *Table {
	comps := cpistack.Components()
	rows := make([]string, len(comps))
	for i, c := range comps {
		rows[i] = c.String()
	}
	cols := make([]string, len(runs))
	for j, run := range runs {
		cols[j] = run.policy
	}
	t := NewTable("CPI stack by fetch policy — "+title, rows, cols)
	t.Percent = true
	t.Note = "share of all thread-cycles; each column sums to 100 because every cycle is attributed to exactly one component"
	for j, run := range runs {
		var total uint64
		for tid := 0; tid < run.obs.Threads(); tid++ {
			total += run.obs.CycleCount(tid)
		}
		for i, c := range comps {
			var cycles uint64
			for tid := 0; tid < run.obs.Threads(); tid++ {
				cycles += run.obs.ComponentCycles(tid, c)
			}
			t.Set(i, j, ratioOf(cycles, total))
		}
	}
	return t
}

// explainOccupancyTable decomposes one policy's structure occupancy:
// the occupied share of capacity, then how the occupied bit-cycles
// split across ACE fates.
func explainOccupancyTable(title string, run explainRun) *Table {
	structs := cpistack.OccupancyStructs()
	rows := make([]string, len(structs))
	for i, s := range structs {
		rows[i] = s.String()
	}
	cols := []string{"occupied"}
	for _, f := range avf.Fates() {
		cols = append(cols, f.String())
	}
	t := NewTable("occupancy by fate under "+run.policy+" — "+title, rows, cols)
	t.Percent = true
	t.Note = "occupied = resident share of capacity; fate columns split the occupied bit-cycles, so they sum to 100"
	start, end := run.obs.Span()
	span := end - start
	for i, s := range structs {
		resident := run.obs.ResidentBitCycles(s)
		t.Set(i, 0, ratioOf(resident, run.obs.Capacity(s)*span))
		for j, f := range avf.Fates() {
			t.Set(i, j+1, ratioOf(run.obs.FateBitCycles(s, f), resident))
		}
	}
	return t
}

// explainCorrelationTable joins the two measurements: per structure,
// each policy's occupancy and AVF side by side, plus the Pearson
// correlation of the (occupancy, AVF) pairs across policies. A strong
// positive coefficient is the paper's causal story made quantitative —
// the fetch policy moves AVF by moving how full the structure is.
func explainCorrelationTable(title string, runs []explainRun) *Table {
	structs := cpistack.OccupancyStructs()
	rows := make([]string, len(structs))
	for i, s := range structs {
		rows[i] = s.String()
	}
	cols := make([]string, 0, 2*len(runs)+1)
	for _, run := range runs {
		cols = append(cols, "occ:"+run.policy, "avf:"+run.policy)
	}
	cols = append(cols, "pearson")
	t := NewTable("occupancy vs AVF across policies — "+title, rows, cols)
	t.Note = "occ and avf are fractions in [0,1]; pearson correlates the per-policy (occupancy, AVF) pairs"
	for i, s := range structs {
		occ := make([]float64, len(runs))
		av := make([]float64, len(runs))
		for j, run := range runs {
			start, end := run.obs.Span()
			occ[j] = ratioOf(run.obs.ResidentBitCycles(s), run.obs.Capacity(s)*(end-start))
			av[j] = run.res.StructAVF(s)
			t.Set(i, 2*j, occ[j])
			t.Set(i, 2*j+1, av[j])
		}
		t.Set(i, len(cols)-1, pearson(occ, av))
	}
	return t
}

// ratioOf divides counters as a float, mapping 0/0 to 0 so empty
// structures render as zero rather than NaN.
func ratioOf(num, den uint64) float64 {
	if den == 0 {
		return 0
	}
	return float64(num) / float64(den)
}

// pearson computes the sample correlation coefficient of two equal-length
// series, returning 0 when either series is constant (the coefficient is
// undefined there, and "no observable relationship" is the honest render).
func pearson(xs, ys []float64) float64 {
	n := float64(len(xs))
	if len(xs) != len(ys) || len(xs) < 2 {
		return 0
	}
	var mx, my float64
	for i := range xs {
		mx += xs[i]
		my += ys[i]
	}
	mx /= n
	my /= n
	var sxy, sxx, syy float64
	for i := range xs {
		dx, dy := xs[i]-mx, ys[i]-my
		sxy += dx * dy
		sxx += dx * dx
		syy += dy * dy
	}
	if sxx == 0 || syy == 0 {
		return 0
	}
	return sxy / math.Sqrt(sxx*syy)
}
