package experiments

import (
	"fmt"
	"strings"
)

// Table is a labeled numeric grid — one figure panel or table.
type Table struct {
	Title string
	Note  string // provenance / reading instructions
	Cols  []string
	Rows  []string
	Cells [][]float64 // [row][col]
	// Percent renders cells as percentages (AVF tables).
	Percent bool
}

// NewTable allocates a zeroed grid.
func NewTable(title string, rows, cols []string) *Table {
	cells := make([][]float64, len(rows))
	for i := range cells {
		cells[i] = make([]float64, len(cols))
	}
	return &Table{Title: title, Cols: cols, Rows: rows, Cells: cells}
}

// Set stores a value by row/column index.
func (t *Table) Set(row, col int, v float64) { t.Cells[row][col] = v }

// Get returns the value at row/column index.
func (t *Table) Get(row, col int) float64 { return t.Cells[row][col] }

// Col returns the index of the named column, or -1.
func (t *Table) Col(name string) int {
	for i, c := range t.Cols {
		if c == name {
			return i
		}
	}
	return -1
}

// Row returns the index of the named row, or -1.
func (t *Table) Row(name string) int {
	for i, r := range t.Rows {
		if r == name {
			return i
		}
	}
	return -1
}

// String renders an aligned text table.
func (t *Table) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", t.Title)
	if t.Note != "" {
		fmt.Fprintf(&b, "  (%s)\n", t.Note)
	}
	rowW := len("row")
	for _, r := range t.Rows {
		if len(r) > rowW {
			rowW = len(r)
		}
	}
	colW := 9
	for _, c := range t.Cols {
		if len(c)+1 > colW {
			colW = len(c) + 1
		}
	}
	fmt.Fprintf(&b, "  %-*s", rowW, "")
	for _, c := range t.Cols {
		fmt.Fprintf(&b, "%*s", colW, c)
	}
	b.WriteByte('\n')
	for i, r := range t.Rows {
		fmt.Fprintf(&b, "  %-*s", rowW, r)
		for j := range t.Cols {
			v := t.Cells[i][j]
			if t.Percent {
				fmt.Fprintf(&b, "%*.2f", colW, 100*v)
			} else {
				fmt.Fprintf(&b, "%*.3f", colW, v)
			}
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// CSV renders the table as comma-separated values (raw, not percent).
func (t *Table) CSV() string {
	var b strings.Builder
	b.WriteString("row")
	for _, c := range t.Cols {
		b.WriteByte(',')
		b.WriteString(c)
	}
	b.WriteByte('\n')
	for i, r := range t.Rows {
		b.WriteString(r)
		for j := range t.Cols {
			fmt.Fprintf(&b, ",%g", t.Cells[i][j])
		}
		b.WriteByte('\n')
	}
	return b.String()
}
