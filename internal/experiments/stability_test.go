package experiments

import (
	"math"
	"strings"
	"testing"
)

func TestStabilityRejectsTooFewSeeds(t *testing.T) {
	r := NewRunner(Options{Base: 2_000})
	for _, n := range []int{-1, 0, 1} {
		if _, err := r.Stability(n); err == nil {
			t.Errorf("Stability(%d) should error", n)
		}
	}
}

func TestStabilityTables(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-seed simulation sweep")
	}
	r := NewRunner(Options{Base: 2_000, NoWarmup: true})
	ts, err := r.Stability(2)
	if err != nil {
		t.Fatal(err)
	}
	if len(ts) != 2 {
		t.Fatalf("tables = %d, want mean + spread", len(ts))
	}
	mean, spread := ts[0], ts[1]
	if !strings.Contains(mean.Title, "mean") || !strings.Contains(spread.Title, "spread") {
		t.Errorf("unexpected titles %q / %q", mean.Title, spread.Title)
	}
	if !mean.Percent {
		t.Error("mean table should render as percentages")
	}
	someSignal := false
	for i := range mean.Rows {
		for j := range mean.Cols {
			mu, rel := mean.Get(i, j), spread.Get(i, j)
			if mu < 0 || mu > 1 {
				t.Errorf("mean AVF %s/%s = %v out of [0,1]", mean.Rows[i], mean.Cols[j], mu)
			}
			if rel < 0 {
				t.Errorf("relative spread %s/%s = %v negative", spread.Rows[i], spread.Cols[j], rel)
			}
			if mu > 0 {
				someSignal = true
			}
		}
	}
	if !someSignal {
		t.Error("every mean AVF is zero — the sweep measured nothing")
	}
}

func TestMeanStd(t *testing.T) {
	if mu, sd := meanStd(nil); mu != 0 || sd != 0 {
		t.Errorf("meanStd(nil) = %v, %v", mu, sd)
	}
	if mu, sd := meanStd([]float64{3}); mu != 3 || sd != 0 {
		t.Errorf("meanStd({3}) = %v, %v", mu, sd)
	}
	mu, sd := meanStd([]float64{2, 4, 4, 4, 5, 5, 7, 9})
	if math.Abs(mu-5) > 1e-12 || math.Abs(sd-2) > 1e-12 {
		t.Errorf("meanStd = %v, %v, want 5, 2", mu, sd)
	}
}
