// Package experiments reproduces every table and figure of the paper's
// evaluation (§3–§4): the workload table, the 4-context AVF profile
// (Fig. 1–2), the SMT vs single-thread comparison (Fig. 3–4), the
// thread-count sweep (Fig. 5), and the fetch-policy study (Fig. 6–8).
// Each driver returns plain Tables that cmd/avfreport renders and
// bench_test.go regenerates.
package experiments

import (
	"fmt"
	"sync"

	"smtavf/internal/core"
	"smtavf/internal/shard"
	"smtavf/internal/trace"
	"smtavf/internal/workload"
)

// Options scales and seeds the experiment runs.
type Options struct {
	// Base is the instruction budget of a 2-context run; 4- and 8-context
	// runs use 2× and 4× (the paper's 50M/100M/200M ratio, scaled down —
	// synthetic workloads are stationary, so AVFs converge quickly).
	Base uint64
	// Warmup instructions committed before measurement (stands in for the
	// paper's SimPoint fast-forward). Defaults to Base/2.
	Warmup uint64
	// NoWarmup disables warmup entirely (cold-start measurement).
	NoWarmup bool
	// Seed makes the whole report reproducible.
	Seed uint64
	// Configure, if non-nil, may adjust each machine configuration before
	// a run (used by ablation benchmarks).
	Configure func(*core.Config)
	// Shards splits every run into this many deterministic intervals per
	// thread, simulated in parallel on ShardWorkers goroutines (see
	// internal/shard). 0 or 1 runs monolithically. Sharded runs keep exact
	// commit counts; AVFs carry the documented shard.DefaultTolerance.
	Shards int
	// ShardWorkers bounds the worker pool of sharded runs (0 = GOMAXPROCS).
	ShardWorkers int
}

// withDefaults fills unset options.
func (o Options) withDefaults() Options {
	if o.Base == 0 {
		o.Base = 50_000
	}
	if o.Warmup == 0 && !o.NoWarmup {
		o.Warmup = o.Base / 2
	}
	if o.NoWarmup {
		o.Warmup = 0
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	return o
}

// Runner executes and memoizes simulation runs; figures sharing a
// configuration (e.g. Figures 1 and 2) reuse results. It is safe for
// concurrent use (Preload), with per-key in-flight deduplication so a run
// requested twice executes once.
type Runner struct {
	opts    Options
	mu      sync.Mutex
	mixes   map[string]*runEntry
	singles map[string]*runEntry // single-thread runs, keyed benchmark/quota
}

type runEntry struct {
	once sync.Once
	res  *core.Results
	err  error
}

// memo returns the entry for key in m, creating it if needed.
func (r *Runner) memo(m map[string]*runEntry, key string) *runEntry {
	r.mu.Lock()
	defer r.mu.Unlock()
	e, ok := m[key]
	if !ok {
		e = &runEntry{}
		m[key] = e
	}
	return e
}

// NewRunner builds a runner with the given options.
func NewRunner(opts Options) *Runner {
	return &Runner{
		opts:    opts.withDefaults(),
		mixes:   make(map[string]*runEntry),
		singles: make(map[string]*runEntry),
	}
}

// budget returns the instruction budget for a context count.
func (r *Runner) budget(contexts int) uint64 {
	switch {
	case contexts >= 8:
		return 4 * r.opts.Base
	case contexts >= 4:
		return 2 * r.opts.Base
	default:
		return r.opts.Base
	}
}

// Mix runs (or recalls) a Table 2 mix under the named fetch policy.
func (r *Runner) Mix(contexts int, kind workload.Kind, group workload.Group, policy string) (*core.Results, error) {
	key := fmt.Sprintf("%d/%s/%s/%s", contexts, kind, group, policy)
	e := r.memo(r.mixes, key)
	e.once.Do(func() { e.res, e.err = r.runMix(contexts, kind, group, policy) })
	return e.res, e.err
}

func (r *Runner) runMix(contexts int, kind workload.Kind, group workload.Group, policy string) (*core.Results, error) {
	m, err := workload.Lookup(contexts, kind, group)
	if err != nil {
		return nil, err
	}
	cfg := core.DefaultConfig(contexts)
	cfg.Seed = r.opts.Seed
	cfg.Warmup = r.opts.Warmup
	if err := cfg.SetPolicy(policy); err != nil {
		return nil, err
	}
	if r.opts.Configure != nil {
		r.opts.Configure(&cfg)
	}
	profiles := make([]trace.Profile, 0, len(m.Benchmarks))
	for _, b := range m.Benchmarks {
		p, err := workload.Profile(b)
		if err != nil {
			return nil, err
		}
		profiles = append(profiles, p)
	}
	res, err := r.run(cfg, profiles, r.budget(contexts))
	if err != nil {
		return nil, fmt.Errorf("mix %s under %s: %w", m.Name(), policy, err)
	}
	return res, nil
}

// run executes profiles under cfg until total instructions commit —
// monolithically, or split across a shard engine when Options.Shards asks
// for parallelism. Sharded totals are divided evenly across threads (the
// engine's stop rule), so per-thread commits are exact either way.
func (r *Runner) run(cfg core.Config, profiles []trace.Profile, total uint64) (*core.Results, error) {
	if r.opts.Shards > 1 {
		eng, err := shard.New(cfg, func() ([]core.Source, error) {
			return core.Sources(cfg, profiles)
		}, shard.Options{Shards: r.opts.Shards, Workers: r.opts.ShardWorkers})
		if err != nil {
			return nil, err
		}
		return eng.Run(total)
	}
	proc, err := core.New(cfg, profiles)
	if err != nil {
		return nil, err
	}
	return proc.Run(core.Limits{TotalInstructions: total})
}

// Single runs (or recalls) benchmark bench alone for quota instructions —
// the superscalar baseline.
func (r *Runner) Single(bench string, quota uint64) (*core.Results, error) {
	key := fmt.Sprintf("%s/%d", bench, quota)
	e := r.memo(r.singles, key)
	e.once.Do(func() { e.res, e.err = r.runSingle(bench, quota) })
	return e.res, e.err
}

func (r *Runner) runSingle(bench string, quota uint64) (*core.Results, error) {
	p, err := workload.Profile(bench)
	if err != nil {
		return nil, err
	}
	cfg := core.DefaultConfig(1)
	cfg.Seed = r.opts.Seed
	cfg.Warmup = r.opts.Warmup
	if r.opts.Configure != nil {
		r.opts.Configure(&cfg)
	}
	res, err := r.run(cfg, []trace.Profile{p}, quota)
	if err != nil {
		return nil, fmt.Errorf("single %s: %w", bench, err)
	}
	return res, nil
}

// MixAvg runs a mix over every available group and returns the results
// (the paper averages groups A and B wherever both exist).
func (r *Runner) MixAvg(contexts int, kind workload.Kind, policy string) ([]*core.Results, error) {
	var out []*core.Results
	for _, g := range workload.Groups(contexts) {
		res, err := r.Mix(contexts, kind, g, policy)
		if err != nil {
			return nil, err
		}
		out = append(out, res)
	}
	return out, nil
}
