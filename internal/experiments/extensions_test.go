package experiments

import (
	"strings"
	"testing"

	"smtavf/internal/workload"
)

func TestExtensions(t *testing.T) {
	if testing.Short() {
		t.Skip("extensions table runs every 4-context mix under five policies")
	}
	r := NewRunner(Options{Base: 1_500, Seed: 1})
	tab, err := r.Extensions()
	if err != nil {
		t.Fatal(err)
	}
	wantCols := len(workload.Kinds()) * len(extensionPolicies)
	if len(tab.Cols) != wantCols {
		t.Fatalf("%d columns, want %d", len(tab.Cols), wantCols)
	}
	if len(tab.Rows) != 4 {
		t.Fatalf("%d rows, want 4", len(tab.Rows))
	}
	for _, pol := range extensionPolicies {
		found := false
		for _, c := range tab.Cols {
			if strings.HasSuffix(c, "/"+pol) {
				found = true
			}
		}
		if !found {
			t.Errorf("policy %s missing from columns %v", pol, tab.Cols)
		}
	}
	for col := range tab.Cols {
		ipc := tab.Get(0, col)
		if ipc <= 0 || ipc > 8 {
			t.Errorf("col %s: IPC %v out of range", tab.Cols[col], ipc)
		}
		for row := 1; row <= 2; row++ {
			if a := tab.Get(row, col); a < 0 || a > 1 {
				t.Errorf("col %s row %s: AVF %v out of range", tab.Cols[col], tab.Rows[row], a)
			}
		}
		if eff := tab.Get(3, col); eff <= 0 {
			t.Errorf("col %s: IQ IPC/AVF %v not positive", tab.Cols[col], eff)
		}
	}
}
