package experiments

import (
	"fmt"

	"smtavf/internal/avf"
	"smtavf/internal/core"
	"smtavf/internal/pipetrace"
	"smtavf/internal/trace"
	"smtavf/internal/workload"
)

// Provenance runs the named Table 2 mix under the given fetch policy with
// the pipeline flight recorder attached and folds the recording into AVF
// provenance tables: which static instructions the ACE bit-cycles of each
// uop-tracked structure came from, and what fate the resident state met.
// Provenance runs are not memoized — the recorder holds per-uop state, so
// they use their own (single) simulation.
func (r *Runner) Provenance(mixName, policy string, top int) ([]*Table, error) {
	var m workload.Mix
	found := false
	for _, mm := range workload.Mixes() {
		if mm.Name() == mixName {
			m, found = mm, true
			break
		}
	}
	if !found {
		return nil, fmt.Errorf("experiments: unknown mix %q", mixName)
	}
	contexts := len(m.Benchmarks)
	cfg := core.DefaultConfig(contexts)
	cfg.Seed = r.opts.Seed
	cfg.Warmup = r.opts.Warmup
	if err := cfg.SetPolicy(policy); err != nil {
		return nil, err
	}
	if r.opts.Configure != nil {
		r.opts.Configure(&cfg)
	}
	profiles := make([]trace.Profile, 0, contexts)
	for _, b := range m.Benchmarks {
		p, err := workload.Profile(b)
		if err != nil {
			return nil, err
		}
		profiles = append(profiles, p)
	}
	proc, err := core.New(cfg, profiles)
	if err != nil {
		return nil, err
	}
	rec := pipetrace.New(pipetrace.Options{})
	proc.SetPipeTrace(rec)
	if _, err := proc.Run(core.Limits{TotalInstructions: r.budget(contexts)}); err != nil {
		return nil, fmt.Errorf("provenance run %s under %s: %w", mixName, policy, err)
	}
	title := fmt.Sprintf("%s under %s", mixName, policy)
	return ProvenanceTables(rec.Provenance(), title, top), nil
}

// ProvenanceTables renders a folded flight recording as two percent grids:
// the share of each structure's ACE bit-cycles attributed to the top
// static instructions, and the share of each structure's recorded
// occupancy that met each fate.
func ProvenanceTables(prov *pipetrace.Provenance, title string, top int) []*Table {
	structs := pipetrace.RecordStructs
	cols := make([]string, len(structs))
	for i, s := range structs {
		cols[i] = s.String()
	}

	pcs := prov.PCs
	if top > 0 && len(pcs) > top {
		pcs = pcs[:top]
	}
	rows := make([]string, len(pcs))
	for i := range pcs {
		rows[i] = pcs[i].Label()
	}
	hot := NewTable("AVF provenance: "+title+", ACE bit-cycle share by PC", rows, cols)
	hot.Note = fmt.Sprintf("top %d of %d PCs; columns sum to 100%% over all PCs", len(pcs), len(prov.PCs))
	hot.Percent = true
	for i := range pcs {
		for j, s := range structs {
			if t := prov.TotalACE[s]; t > 0 {
				hot.Set(i, j, float64(pcs[i].ACE[s])/float64(t))
			}
		}
	}

	fates := avf.Fates()
	frows := make([]string, len(fates))
	for i, f := range fates {
		frows[i] = f.String()
	}
	fate := NewTable("AVF provenance: "+title+", occupancy share by fate", frows, cols)
	fate.Note = "share of each structure's recorded bit-cycle occupancy; only committed-fate state is ACE"
	fate.Percent = true
	for i := range prov.Fates {
		f := &prov.Fates[i]
		for j, s := range structs {
			if t := prov.TotalResident[s]; t > 0 {
				fate.Set(int(f.Fate), j, float64(f.Resident[s])/float64(t))
			}
		}
	}
	return []*Table{hot, fate}
}
