package experiments

import (
	"smtavf/internal/campaign"
	"smtavf/internal/core"
	"smtavf/internal/propagation"
)

// PropagationSpec describes one fault-propagation atlas experiment: a
// workload, a fetch policy, a strike campaign, and how many strikes per
// structure to taint-track.
//
// Deprecated: build a campaign.Spec with a Propagation section instead
// (or convert with the Campaign method) and run it through
// Runner.Campaign; docs/api.md maps the fields. This type remains as a
// bit-identical adapter, pinned by TestSpecAdaptersMatch.
type PropagationSpec struct {
	// Mix is a Table 2 mix name; alternatively list Benchmarks directly.
	Mix        string
	Benchmarks []string
	Policy     string
	// Seed seeds the simulation and the campaign (default: runner seed).
	Seed uint64
	// Every is the campaign's sample-grid pitch (default 1: exact).
	Every uint64
	// Strikes is the number of strikes sampled into each structure
	// (default 256).
	Strikes int
	// Instructions overrides the runner's context-scaled budget.
	Instructions uint64
	// Protection classifies ACE strikes per structure (default: all
	// silent).
	Protection core.ProtectionModes
	// Options tunes the tracer's capture and expansion bounds.
	Options propagation.Options
}

// Campaign converts the deprecated spec to its campaign.Spec equivalent.
func (s PropagationSpec) Campaign() campaign.Spec {
	return campaign.Spec{
		V:            campaign.SpecVersion,
		Mix:          s.Mix,
		Benchmarks:   s.Benchmarks,
		Policy:       s.Policy,
		Seed:         s.Seed,
		Instructions: s.Instructions,
		Protection:   campaign.ProtectionMap(s.Protection),
		Inject:       &campaign.InjectSpec{Every: s.Every},
		Propagation:  &campaign.PropagationSpec{Strikes: s.Strikes, Options: s.Options},
	}
}

// Propagation runs the workload with a fault-injection campaign and the
// propagation tracer attached, samples Strikes strikes into every
// structure, and taint-tracks each through the recorded dataflow. It
// returns the aggregated atlas and the run title. Propagation runs are
// not memoized — the tracer holds per-uop state, so they use their own
// (single) simulation.
//
// Deprecated: use Runner.Campaign with spec.Campaign(); the atlas rides
// on Result.Atlas and the title on Result.Title.
func (r *Runner) Propagation(spec PropagationSpec) (*propagation.Atlas, string, error) {
	res, err := r.Campaign(spec.Campaign())
	if err != nil {
		return nil, "", err
	}
	return res.Atlas, res.Title, nil
}
