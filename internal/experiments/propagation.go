package experiments

import (
	"fmt"

	"smtavf/internal/avf"
	"smtavf/internal/core"
	"smtavf/internal/inject"
	"smtavf/internal/propagation"
	"smtavf/internal/trace"
	"smtavf/internal/workload"
)

// PropagationSpec describes one fault-propagation atlas experiment: a
// workload, a fetch policy, a strike campaign, and how many strikes per
// structure to taint-track.
type PropagationSpec struct {
	// Mix is a Table 2 mix name; alternatively list Benchmarks directly.
	Mix        string
	Benchmarks []string
	Policy     string
	// Seed seeds the simulation and the campaign (default: runner seed).
	Seed uint64
	// Every is the campaign's sample-grid pitch (default 1: exact).
	Every uint64
	// Strikes is the number of strikes sampled into each structure
	// (default 256).
	Strikes int
	// Instructions overrides the runner's context-scaled budget.
	Instructions uint64
	// Protection classifies ACE strikes per structure (default: all
	// silent).
	Protection core.ProtectionModes
	// Options tunes the tracer's capture and expansion bounds.
	Options propagation.Options
}

// Propagation runs the workload with a fault-injection campaign and the
// propagation tracer attached, samples Strikes strikes into every
// structure, and taint-tracks each through the recorded dataflow. It
// returns the aggregated atlas and the run title. Propagation runs are
// not memoized — the tracer holds per-uop state, so they use their own
// (single) simulation.
func (r *Runner) Propagation(spec PropagationSpec) (*propagation.Atlas, string, error) {
	names, err := CrossValSpec{Mix: spec.Mix, Benchmarks: spec.Benchmarks}.benchmarks()
	if err != nil {
		return nil, "", err
	}
	if spec.Policy == "" {
		spec.Policy = "ICOUNT"
	}
	if spec.Every == 0 {
		spec.Every = 1
	}
	if spec.Strikes <= 0 {
		spec.Strikes = 256
	}
	seed := spec.Seed
	if seed == 0 {
		seed = r.opts.Seed
	}
	cfg := core.DefaultConfig(len(names))
	cfg.Seed = seed
	cfg.Warmup = r.opts.Warmup
	if err := cfg.SetPolicy(spec.Policy); err != nil {
		return nil, "", err
	}
	if r.opts.Configure != nil {
		r.opts.Configure(&cfg)
	}
	profiles := make([]trace.Profile, 0, len(names))
	for _, b := range names {
		p, err := workload.Profile(b)
		if err != nil {
			return nil, "", err
		}
		profiles = append(profiles, p)
	}
	camp, err := inject.NewCampaign(core.StructBits(cfg), spec.Every, seed)
	if err != nil {
		return nil, "", err
	}
	camp.SetProtection(spec.Protection.Detections())
	proc, err := core.New(cfg, profiles)
	if err != nil {
		return nil, "", err
	}
	proc.AttachSink(camp)
	tracer := propagation.New(spec.Options)
	proc.SetPropagation(tracer)
	quota := spec.Instructions
	if quota == 0 {
		quota = r.budget(len(names))
	}
	title := CrossValSpec{Mix: spec.Mix, Benchmarks: spec.Benchmarks}.workloadName() +
		" under " + spec.Policy
	res, err := proc.Run(core.Limits{TotalInstructions: quota})
	if err != nil {
		return nil, "", fmt.Errorf("propagation run %s: %w", title, err)
	}
	var strikes []inject.Strike
	for _, s := range avf.Structs() {
		strikes = append(strikes, camp.SampleStrikes(s, res.Cycles, spec.Strikes)...)
	}
	return tracer.Analyze(strikes), title, nil
}
