package experiments

import (
	"fmt"

	"smtavf/internal/avf"
	"smtavf/internal/core"
	"smtavf/internal/metrics"
	"smtavf/internal/workload"
)

// paperStructs is the structure set of Figures 1, 2, 5, 6, 7 and 8, in the
// paper's presentation order.
func paperStructs() []avf.Struct {
	return []avf.Struct{
		avf.IQ, avf.FU, avf.Reg, avf.DL1Data, avf.DL1Tag,
		avf.ROB, avf.LSQData, avf.LSQTag,
	}
}

func structNames(ss []avf.Struct) []string {
	out := make([]string, len(ss))
	for i, s := range ss {
		out[i] = s.String()
	}
	return out
}

func kindNames() []string {
	out := make([]string, 0, 3)
	for _, k := range workload.Kinds() {
		out = append(out, k.String())
	}
	return out
}

// policyNames is the presentation order of Figures 6–8.
var policyNames = []string{"ICOUNT", "STALL", "FLUSH", "DG", "PDG", "DWarn"}

// meanOver averages f over the given runs.
func meanOver(runs []*core.Results, f func(*core.Results) float64) float64 {
	vals := make([]float64, len(runs))
	for i, r := range runs {
		vals[i] = f(r)
	}
	return metrics.Mean(vals)
}

// Figure1 reproduces the microarchitecture vulnerability profile of the
// 4-context SMT processor across CPU-, mixed-, and memory-bound workloads
// (AVF per structure, ICOUNT baseline, groups A and B averaged).
func (r *Runner) Figure1() (*Table, error) {
	ss := paperStructs()
	t := NewTable("Figure 1: SMT microarchitecture AVF profile (4 contexts, ICOUNT)",
		structNames(ss), kindNames())
	t.Percent = true
	t.Note = "AVF %, groups A and B averaged"
	for j, k := range workload.Kinds() {
		runs, err := r.MixAvg(4, k, "ICOUNT")
		if err != nil {
			return nil, err
		}
		for i, s := range ss {
			s := s
			t.Set(i, j, meanOver(runs, func(res *core.Results) float64 {
				return res.StructAVF(s)
			}))
		}
	}
	return t, nil
}

// Figure2 reproduces the reliability-efficiency profile (IPC/AVF per
// structure) of the same runs as Figure 1.
func (r *Runner) Figure2() (*Table, error) {
	ss := paperStructs()
	t := NewTable("Figure 2: SMT reliability efficiency, IPC/AVF (4 contexts, ICOUNT)",
		structNames(ss), kindNames())
	t.Note = "higher is better; groups A and B averaged"
	for j, k := range workload.Kinds() {
		runs, err := r.MixAvg(4, k, "ICOUNT")
		if err != nil {
			return nil, err
		}
		for i, s := range ss {
			s := s
			t.Set(i, j, meanOver(runs, func(res *core.Results) float64 {
				return res.Efficiency(s)
			}))
		}
	}
	return t, nil
}

// fig3Structs is the structure set of Figures 3 and 4.
var fig3Structs = []avf.Struct{avf.IQ, avf.FU, avf.ROB}

// smtVsST runs the 4-context group-A mix of each kind under ICOUNT,
// replays each thread alone for exactly the instructions it completed in
// the SMT run, and hands both results to emit.
func (r *Runner) smtVsST(emit func(kind workload.Kind, tid int, bench string,
	st, smt *core.Results) error,
	emitAll func(kind workload.Kind, smt *core.Results, sts []*core.Results) error) error {
	for _, k := range workload.Kinds() {
		smt, err := r.Mix(4, k, workload.GroupA, "ICOUNT")
		if err != nil {
			return err
		}
		m, err := workload.Lookup(4, k, workload.GroupA)
		if err != nil {
			return err
		}
		sts := make([]*core.Results, len(m.Benchmarks))
		for tid, bench := range m.Benchmarks {
			quota := smt.Committed[tid]
			if quota == 0 {
				quota = 1 // a starved thread still needs a well-formed ST run
			}
			st, err := r.Single(bench, quota)
			if err != nil {
				return err
			}
			sts[tid] = st
			if err := emit(k, tid, bench, st, smt); err != nil {
				return err
			}
		}
		if err := emitAll(k, smt, sts); err != nil {
			return err
		}
	}
	return nil
}

// weightedSeqAVF is the AVF of sequential (single-thread) execution of all
// threads back to back: per-thread AVFs weighted by each thread's share of
// the sequential execution time.
func weightedSeqAVF(sts []*core.Results, s avf.Struct) float64 {
	var num, den float64
	for _, st := range sts {
		c := float64(st.Cycles)
		num += st.StructAVF(s) * c
		den += c
	}
	if den == 0 {
		return 0
	}
	return num / den
}

// Figure3 reproduces the per-thread AVF comparison between SMT execution
// and single-thread (superscalar) execution of the same work, for the IQ,
// FU, and ROB (4-context group-A mixes).
func (r *Runner) Figure3() (*Table, error) {
	var rows []string
	type rowKey struct {
		kind workload.Kind
		tid  int // -1 for the all-threads row
	}
	var keys []rowKey
	for _, k := range workload.Kinds() {
		m, err := workload.Lookup(4, k, workload.GroupA)
		if err != nil {
			return nil, err
		}
		for tid, b := range m.Benchmarks {
			rows = append(rows, fmt.Sprintf("%s:%s", k, b))
			keys = append(keys, rowKey{k, tid})
		}
		rows = append(rows, fmt.Sprintf("%s:all", k))
		keys = append(keys, rowKey{k, -1})
	}
	cols := []string{"IQ_ST", "FU_ST", "ROB_ST", "IQ_SMT", "FU_SMT", "ROB_SMT"}
	t := NewTable("Figure 3: per-thread AVF, SMT vs single-thread execution (4 contexts)", rows, cols)
	t.Percent = true
	t.Note = "each thread's ST run commits exactly its SMT progress"

	row := 0
	err := r.smtVsST(
		func(k workload.Kind, tid int, bench string, st, smt *core.Results) error {
			for i, s := range fig3Structs {
				t.Set(row, i, st.StructAVF(s))
				t.Set(row, i+3, smt.ThreadStructAVF(s, tid))
			}
			row++
			return nil
		},
		func(k workload.Kind, smt *core.Results, sts []*core.Results) error {
			for i, s := range fig3Structs {
				t.Set(row, i, weightedSeqAVF(sts, s))
				t.Set(row, i+3, smt.StructAVF(s))
			}
			row++
			return nil
		})
	if err != nil {
		return nil, err
	}
	return t, nil
}

// Figure4 reproduces the per-thread reliability efficiency (IPC/AVF)
// comparison between SMT and single-thread execution of the same runs as
// Figure 3.
func (r *Runner) Figure4() (*Table, error) {
	f3, err := r.Figure3() // ensures runs are cached; rows match
	if err != nil {
		return nil, err
	}
	cols := []string{"IQ_ST", "FU_ST", "ROB_ST", "IQ_SMT", "FU_SMT", "ROB_SMT"}
	t := NewTable("Figure 4: per-thread reliability efficiency (IPC/AVF), SMT vs single-thread", f3.Rows, cols)
	t.Note = "higher is better"

	row := 0
	err = r.smtVsST(
		func(k workload.Kind, tid int, bench string, st, smt *core.Results) error {
			for i, s := range fig3Structs {
				t.Set(row, i, metrics.Efficiency(st.IPC(), st.StructAVF(s)))
				t.Set(row, i+3, metrics.Efficiency(smt.ThreadIPC(tid), smt.ThreadStructAVF(s, tid)))
			}
			row++
			return nil
		},
		func(k workload.Kind, smt *core.Results, sts []*core.Results) error {
			var instr, cyc float64
			for _, st := range sts {
				instr += float64(st.Total)
				cyc += float64(st.Cycles)
			}
			seqIPC := 0.0
			if cyc > 0 {
				seqIPC = instr / cyc
			}
			for i, s := range fig3Structs {
				t.Set(row, i, metrics.Efficiency(seqIPC, weightedSeqAVF(sts, s)))
				t.Set(row, i+3, metrics.Efficiency(smt.IPC(), smt.StructAVF(s)))
			}
			row++
			return nil
		})
	if err != nil {
		return nil, err
	}
	return t, nil
}

// Figure5 reproduces the AVF trend with thread-context count (2, 4, 8) for
// each workload kind: panel (a) pipeline structures, panel (b) memory
// structures.
func (r *Runner) Figure5() ([]*Table, error) {
	panels := []struct {
		title   string
		structs []avf.Struct
	}{
		{"Figure 5(a): AVF vs number of contexts — pipeline structures",
			[]avf.Struct{avf.IQ, avf.FU, avf.ROB, avf.Reg}},
		{"Figure 5(b): AVF vs number of contexts — memory structures",
			[]avf.Struct{avf.LSQTag, avf.DL1Tag, avf.LSQData, avf.DL1Data}},
	}
	contexts := []int{2, 4, 8}
	var cols []string
	for _, k := range workload.Kinds() {
		for _, c := range contexts {
			cols = append(cols, fmt.Sprintf("%s/%d", k, c))
		}
	}
	var out []*Table
	for _, p := range panels {
		t := NewTable(p.title, structNames(p.structs), cols)
		t.Percent = true
		t.Note = "AVF %, ICOUNT, groups averaged"
		col := 0
		for _, k := range workload.Kinds() {
			for _, c := range contexts {
				runs, err := r.MixAvg(c, k, "ICOUNT")
				if err != nil {
					return nil, err
				}
				for i, s := range p.structs {
					s := s
					t.Set(i, col, meanOver(runs, func(res *core.Results) float64 {
						return res.StructAVF(s)
					}))
				}
				col++
			}
		}
		out = append(out, t)
	}
	return out, nil
}

// Figure6 reproduces the per-structure AVF under the six fetch policies,
// one table per (context count, workload kind) — the paper's panels (a)
// 4 contexts and (b) 8 contexts.
func (r *Runner) Figure6() ([]*Table, error) {
	ss := paperStructs()
	var out []*Table
	for _, contexts := range []int{4, 8} {
		for _, k := range workload.Kinds() {
			t := NewTable(
				fmt.Sprintf("Figure 6: AVF under fetch policies (%d contexts, %s)", contexts, k),
				structNames(ss), policyNames)
			t.Percent = true
			t.Note = "AVF %, groups averaged"
			for j, pol := range policyNames {
				runs, err := r.MixAvg(contexts, k, pol)
				if err != nil {
					return nil, err
				}
				for i, s := range ss {
					s := s
					t.Set(i, j, meanOver(runs, func(res *core.Results) float64 {
						return res.StructAVF(s)
					}))
				}
			}
			out = append(out, t)
		}
	}
	return out, nil
}

// Figure7 reproduces the reliability-efficiency comparison of the fetch
// policies: IPC/AVF per structure, normalized to the ICOUNT baseline and
// averaged over workload kinds and context counts (4 and 8).
func (r *Runner) Figure7() (*Table, error) {
	ss := paperStructs()
	t := NewTable("Figure 7: IPC/AVF of fetch policies, normalized to ICOUNT", structNames(ss), policyNames)
	t.Note = ">1 means a better performance/reliability tradeoff than ICOUNT"
	type cell struct{ sum, n float64 }
	acc := make([][]cell, len(ss))
	for i := range acc {
		acc[i] = make([]cell, len(policyNames))
	}
	for _, contexts := range []int{4, 8} {
		for _, k := range workload.Kinds() {
			base, err := r.MixAvg(contexts, k, "ICOUNT")
			if err != nil {
				return nil, err
			}
			for j, pol := range policyNames {
				runs, err := r.MixAvg(contexts, k, pol)
				if err != nil {
					return nil, err
				}
				for i, s := range ss {
					s := s
					b := meanOver(base, func(res *core.Results) float64 { return res.Efficiency(s) })
					v := meanOver(runs, func(res *core.Results) float64 { return res.Efficiency(s) })
					if b > 0 {
						acc[i][j].sum += v / b
						acc[i][j].n++
					}
				}
			}
		}
	}
	for i := range ss {
		for j := range policyNames {
			if acc[i][j].n > 0 {
				t.Set(i, j, acc[i][j].sum/acc[i][j].n)
			}
		}
	}
	return t, nil
}

// Figure8 reproduces the fairness-aware reliability-efficiency comparison:
// panel (a) weighted-speedup/AVF and panel (b) harmonic-IPC/AVF, each
// normalized to ICOUNT and averaged over kinds and context counts.
func (r *Runner) Figure8() ([]*Table, error) {
	ss := paperStructs()
	type perfFn func(res *core.Results, stIPC []float64) float64
	panels := []struct {
		title string
		perf  perfFn
	}{
		{"Figure 8(a): weighted-speedup/AVF, normalized to ICOUNT",
			func(res *core.Results, stIPC []float64) float64 {
				smt := make([]float64, res.Threads)
				for i := range smt {
					smt[i] = res.ThreadIPC(i)
				}
				v, err := metrics.WeightedSpeedup(smt, stIPC)
				if err != nil {
					return 0
				}
				return v
			}},
		{"Figure 8(b): harmonic-IPC/AVF, normalized to ICOUNT",
			func(res *core.Results, stIPC []float64) float64 {
				smt := make([]float64, res.Threads)
				for i := range smt {
					smt[i] = res.ThreadIPC(i)
					if smt[i] <= 0 {
						smt[i] = 1e-9 // starved thread: harmonic mean collapses
					}
				}
				v, err := metrics.HarmonicIPC(smt, stIPC)
				if err != nil {
					return 0
				}
				return v
			}},
	}

	// Standalone IPC of each thread of a mix, for the speedup weights.
	stIPCs := func(contexts int, k workload.Kind, g workload.Group) ([]float64, error) {
		m, err := workload.Lookup(contexts, k, g)
		if err != nil {
			return nil, err
		}
		out := make([]float64, len(m.Benchmarks))
		for i, b := range m.Benchmarks {
			st, err := r.Single(b, r.opts.Base)
			if err != nil {
				return nil, err
			}
			out[i] = st.IPC()
		}
		return out, nil
	}

	var out []*Table
	for _, panel := range panels {
		t := NewTable(panel.title, structNames(ss), policyNames)
		t.Note = ">1 beats ICOUNT when fairness is accounted for"
		type cell struct{ sum, n float64 }
		acc := make([][]cell, len(ss))
		for i := range acc {
			acc[i] = make([]cell, len(policyNames))
		}
		for _, contexts := range []int{4, 8} {
			for _, k := range workload.Kinds() {
				for _, g := range workload.Groups(contexts) {
					st, err := stIPCs(contexts, k, g)
					if err != nil {
						return nil, err
					}
					base, err := r.Mix(contexts, k, g, "ICOUNT")
					if err != nil {
						return nil, err
					}
					basePerf := panel.perf(base, st)
					for j, pol := range policyNames {
						res, err := r.Mix(contexts, k, g, pol)
						if err != nil {
							return nil, err
						}
						perf := panel.perf(res, st)
						for i, s := range ss {
							b := metrics.Efficiency(basePerf, base.StructAVF(s))
							v := metrics.Efficiency(perf, res.StructAVF(s))
							if b > 0 {
								acc[i][j].sum += v / b
								acc[i][j].n++
							}
						}
					}
				}
			}
		}
		for i := range ss {
			for j := range policyNames {
				if acc[i][j].n > 0 {
					t.Set(i, j, acc[i][j].sum/acc[i][j].n)
				}
			}
		}
		out = append(out, t)
	}
	return out, nil
}
