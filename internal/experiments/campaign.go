package experiments

import (
	"fmt"

	"smtavf/internal/avf"
	"smtavf/internal/campaign"
	"smtavf/internal/core"
	"smtavf/internal/cpistack"
	"smtavf/internal/crossval"
	"smtavf/internal/inject"
	"smtavf/internal/propagation"
	"smtavf/internal/shard"
)

// defaults exposes the runner's options as the spec-resolution fallbacks,
// so a campaign.Spec run through the runner behaves exactly like the
// per-kind methods it replaced.
func (r *Runner) defaults() campaign.Defaults {
	return campaign.Defaults{
		Seed:      r.opts.Seed,
		Warmup:    r.opts.Warmup,
		Budget:    r.budget,
		Configure: r.opts.Configure,
	}
}

// Campaign executes one campaign point — the single entry point the CLIs
// and the avfd service share. The spec's kind selects the experiment:
// a plain run (optionally sharded or with a strike campaign attached),
// the ACE-vs-injection cross-validation, the fault-propagation atlas, or
// the CPI-stack explainability study. Campaign runs are not memoized.
func (r *Runner) Campaign(spec campaign.Spec) (*campaign.Result, error) {
	switch spec.Kind() {
	case campaign.KindCrossVal:
		return r.campaignCrossVal(spec)
	case campaign.KindPropagation:
		return r.campaignPropagation(spec)
	case campaign.KindExplain:
		return r.campaignExplain(spec)
	default:
		return r.campaignRun(spec)
	}
}

// newResult seeds the shared Result header.
func newResult(spec campaign.Spec, title string, seed uint64) *campaign.Result {
	return &campaign.Result{
		V:        campaign.ResultVersion,
		Kind:     spec.Kind(),
		Name:     spec.Name,
		Title:    title,
		Workload: spec.WorkloadName(),
		Policy:   spec.PolicyName(),
		Seed:     seed,
		Status:   "ok",
	}
}

// campaignRun executes a plain simulation point: sharded when the spec
// asks for it, monolithic otherwise, with an optional strike campaign
// cross-validated against the tracker.
func (r *Runner) campaignRun(spec campaign.Spec) (*campaign.Result, error) {
	rv, err := spec.Resolve(r.defaults())
	if err != nil {
		return nil, err
	}
	result := newResult(spec, rv.Title, rv.Config.Seed)
	factory, err := rv.SourceFactory()
	if err != nil {
		return nil, err
	}

	// A spec that leaves its shard shape unset inherits the runner's
	// (avfd -shards); specs with a strike campaign stay monolithic, as
	// spec.Validate requires of explicitly sharded ones.
	shardsN, shardWorkers := spec.Shards, spec.ShardWorkers
	if shardsN == 0 && spec.Inject == nil {
		shardsN, shardWorkers = r.opts.Shards, r.opts.ShardWorkers
	}
	if shardsN > 1 {
		eng, err := shard.New(rv.Config, factory, shard.Options{
			Shards:       shardsN,
			Workers:      shardWorkers,
			WarmupWindow: spec.ShardWarmupWindow,
		})
		if err != nil {
			return nil, err
		}
		res, err := eng.Run(rv.Quota)
		if err != nil {
			return nil, fmt.Errorf("campaign run %s: %w", rv.Title, err)
		}
		result.FillRun(res)
		return result, nil
	}

	srcs, err := factory()
	if err != nil {
		return nil, err
	}
	proc, err := core.NewFromSources(rv.Config, srcs)
	if err != nil {
		return nil, err
	}
	var camp *inject.Campaign
	if spec.Inject != nil {
		camp, err = inject.NewCampaign(core.StructBits(rv.Config), rv.Every, rv.CampaignSeed)
		if err != nil {
			return nil, err
		}
		camp.SetProtection(rv.Protection.Detections())
		proc.AttachSink(camp)
	}
	res, err := proc.Run(core.Limits{TotalInstructions: rv.Quota})
	if err != nil {
		return nil, fmt.Errorf("campaign run %s: %w", rv.Title, err)
	}
	result.FillRun(res)
	if camp != nil {
		stats := camp.RunStrikes(res.Cycles, rv.Stop)
		result.Strikes = stats.TotalStrikes
		result.CrossVal = crossval.Build(crossval.Meta{
			Workload: rv.Title,
			Policy:   spec.PolicyName(),
			Seed:     rv.CampaignSeed,
			Seeds:    1,
			Every:    rv.Every,
			Cycles:   res.Cycles,
		}, trackerAVF(res), stats)
	}
	return result, nil
}

// campaignCrossVal runs the seed fanout concurrently (one simulation +
// campaign per seed) and pools the per-seed agreement reports into one.
// Each fanout seed seeds both the simulation and its campaign (unless
// Inject.Seed pins the campaign seed), exactly as the deprecated
// Runner.CrossVal did.
func (r *Runner) campaignCrossVal(spec campaign.Spec) (*campaign.Result, error) {
	rv0, err := spec.Resolve(r.defaults())
	if err != nil {
		return nil, err
	}
	seeds := rv0.Seeds
	perSeed := make([]*crossval.Report, len(seeds))
	err = forEach(len(seeds), func(i int) error {
		sp := spec
		sp.Seed = seeds[i]
		rv, err := sp.Resolve(r.defaults())
		if err != nil {
			return fmt.Errorf("seed %d: %w", seeds[i], err)
		}
		rep, err := r.campaignCrossValSeed(rv)
		if err != nil {
			return fmt.Errorf("seed %d: %w", seeds[i], err)
		}
		perSeed[i] = rep
		return nil
	})
	if err != nil {
		return nil, err
	}
	pooled, err := crossval.Pool(perSeed)
	if err != nil {
		return nil, err
	}
	result := newResult(spec, rv0.Title, spec.Seed)
	result.CrossVal = pooled
	result.CrossValSeeds = perSeed
	for _, e := range pooled.Entries {
		result.Strikes += e.Strikes
	}
	result.AVF = make(map[string]float64, len(pooled.Entries))
	for _, e := range pooled.Entries {
		result.AVF[e.Struct] = e.TrackerAVF
	}
	return result, nil
}

// campaignCrossValSeed runs one resolved seed's simulation with a
// campaign attached and builds its agreement report.
func (r *Runner) campaignCrossValSeed(rv *campaign.Resolved) (*crossval.Report, error) {
	camp, err := inject.NewCampaign(core.StructBits(rv.Config), rv.Every, rv.CampaignSeed)
	if err != nil {
		return nil, err
	}
	camp.SetProtection(rv.Protection.Detections())
	proc, err := core.New(rv.Config, rv.Profiles)
	if err != nil {
		return nil, err
	}
	proc.AttachSink(camp)
	res, err := proc.Run(core.Limits{TotalInstructions: rv.Quota})
	if err != nil {
		return nil, err
	}
	stats := camp.RunStrikes(res.Cycles, rv.Stop)
	meta := crossval.Meta{
		Workload: rv.Title,
		Policy:   rv.Spec.PolicyName(),
		Seed:     rv.Config.Seed,
		Seeds:    1,
		Every:    rv.Every,
		Cycles:   res.Cycles,
	}
	return crossval.Build(meta, trackerAVF(res), stats), nil
}

// campaignPropagation runs the workload with a strike campaign and the
// propagation tracer attached, then taint-tracks sampled strikes through
// the recorded dataflow.
func (r *Runner) campaignPropagation(spec campaign.Spec) (*campaign.Result, error) {
	rv, err := spec.Resolve(r.defaults())
	if err != nil {
		return nil, err
	}
	strikes := spec.Propagation.Strikes
	if strikes <= 0 {
		strikes = 256
	}
	title := rv.Title + " under " + spec.PolicyName()
	camp, err := inject.NewCampaign(core.StructBits(rv.Config), rv.Every, rv.CampaignSeed)
	if err != nil {
		return nil, err
	}
	camp.SetProtection(rv.Protection.Detections())
	proc, err := core.New(rv.Config, rv.Profiles)
	if err != nil {
		return nil, err
	}
	proc.AttachSink(camp)
	tracer := propagation.New(spec.Propagation.Options)
	proc.SetPropagation(tracer)
	res, err := proc.Run(core.Limits{TotalInstructions: rv.Quota})
	if err != nil {
		return nil, fmt.Errorf("propagation run %s: %w", title, err)
	}
	var sampled []inject.Strike
	for _, s := range avf.Structs() {
		sampled = append(sampled, camp.SampleStrikes(s, res.Cycles, strikes)...)
	}
	atlas := tracer.Analyze(sampled)
	result := newResult(spec, title, rv.Config.Seed)
	result.FillRun(res)
	result.Strikes = uint64(atlas.Strikes)
	result.Atlas = atlas
	result.Propagation = campaign.SummarizeAtlas(atlas)
	return result, nil
}

// campaignExplain runs the workload once per policy with the CPI-stack
// observer attached and distills the runs into the explainability figure
// family. Each policy re-resolves the spec so the Configure hook sees the
// final per-policy configuration, as the deprecated Runner.Explain did.
func (r *Runner) campaignExplain(spec campaign.Spec) (*campaign.Result, error) {
	rv0, err := spec.Resolve(r.defaults())
	if err != nil {
		return nil, err
	}
	policies := spec.Explain.Policies
	if len(policies) == 0 {
		policies = []string{"ICOUNT", "STALL", "FLUSH"}
	}
	window := spec.Explain.Window
	if window == 0 {
		window = cpistack.DefaultWindowCycles
	}
	runs := make([]explainRun, 0, len(policies))
	for _, policy := range policies {
		sp := spec
		sp.Policy = policy
		rv, err := sp.Resolve(r.defaults())
		if err != nil {
			return nil, err
		}
		proc, err := core.New(rv.Config, rv.Profiles)
		if err != nil {
			return nil, err
		}
		obs := cpistack.New(cpistack.Options{WindowCycles: window})
		proc.SetCPIStack(obs)
		res, err := proc.Run(core.Limits{TotalInstructions: rv.Quota})
		if err != nil {
			return nil, fmt.Errorf("explain run %s under %s: %w", rv0.Title, policy, err)
		}
		runs = append(runs, explainRun{policy: policy, obs: obs, res: res})
	}
	tables := []*Table{explainStackTable(rv0.Title, runs)}
	for _, run := range runs {
		tables = append(tables, explainOccupancyTable(rv0.Title, run))
	}
	tables = append(tables, explainCorrelationTable(rv0.Title, runs))
	result := newResult(spec, rv0.Title, rv0.Config.Seed)
	result.Tables = TablesToCampaign(tables)
	return result, nil
}

// trackerAVF extracts the per-structure tracker estimates a crossval
// report compares against.
func trackerAVF(res *core.Results) [avf.NumStructs]float64 {
	var tracker [avf.NumStructs]float64
	for s := range tracker {
		tracker[s] = res.StructAVF(avf.Struct(s))
	}
	return tracker
}

// TablesToCampaign converts renderer tables to their wire form.
func TablesToCampaign(ts []*Table) []campaign.Table {
	out := make([]campaign.Table, 0, len(ts))
	for _, t := range ts {
		out = append(out, campaign.Table{
			Title:   t.Title,
			Note:    t.Note,
			Rows:    t.Rows,
			Cols:    t.Cols,
			Cells:   t.Cells,
			Percent: t.Percent,
		})
	}
	return out
}

// TablesFromCampaign converts wire tables back for the local renderers
// (cmd/avfreport's text/CSV/chart emitters).
func TablesFromCampaign(ts []campaign.Table) []*Table {
	out := make([]*Table, 0, len(ts))
	for _, t := range ts {
		out = append(out, &Table{
			Title:   t.Title,
			Note:    t.Note,
			Rows:    t.Rows,
			Cols:    t.Cols,
			Cells:   t.Cells,
			Percent: t.Percent,
		})
	}
	return out
}
