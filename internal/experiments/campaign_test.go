package experiments

import (
	"reflect"
	"testing"

	"smtavf/internal/avf"
	"smtavf/internal/campaign"
	"smtavf/internal/core"
	"smtavf/internal/inject"
)

// adapterOpts keeps the adapter runs fast; the comparison only needs the
// two paths to agree, not to converge.
func adapterOpts() Options {
	return Options{Base: 4000, Seed: 3}
}

// TestSpecAdaptersMatch pins the deprecated per-kind specs to the unified
// campaign.Spec path: each old entry point must produce bit-identical
// results to Runner.Campaign over the adapter conversion (the same
// guarantee TestNewMatchesDeprecatedConstructors gives the facade
// constructors).
func TestSpecAdaptersMatch(t *testing.T) {
	var protection core.ProtectionModes
	protection[avf.IQ] = core.ProtectECC

	t.Run("crossval", func(t *testing.T) {
		spec := CrossValSpec{
			Benchmarks: []string{"gcc", "mcf"},
			Policy:     "STALL",
			Seeds:      []uint64{1, 2},
			Every:      4,
			Stop:       inject.Stop{MaxStrikes: 200},
			Protection: protection,
		}
		pooled, perSeed, err := NewRunner(adapterOpts()).CrossVal(spec)
		if err != nil {
			t.Fatal(err)
		}
		res, err := NewRunner(adapterOpts()).Campaign(spec.Campaign())
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(pooled, res.CrossVal) {
			t.Errorf("pooled reports diverge:\n old %+v\n new %+v", pooled, res.CrossVal)
		}
		if !reflect.DeepEqual(perSeed, res.CrossValSeeds) {
			t.Errorf("per-seed reports diverge")
		}
		if res.Kind != campaign.KindCrossVal {
			t.Errorf("kind = %s", res.Kind)
		}
	})

	t.Run("propagation", func(t *testing.T) {
		spec := PropagationSpec{
			Benchmarks: []string{"gcc", "mcf"},
			Policy:     "FLUSH",
			Seed:       5,
			Strikes:    32,
			Protection: protection,
		}
		atlas, title, err := NewRunner(adapterOpts()).Propagation(spec)
		if err != nil {
			t.Fatal(err)
		}
		res, err := NewRunner(adapterOpts()).Campaign(spec.Campaign())
		if err != nil {
			t.Fatal(err)
		}
		if title != res.Title {
			t.Errorf("title %q != %q", title, res.Title)
		}
		if !reflect.DeepEqual(atlas, res.Atlas) {
			t.Errorf("atlases diverge: old %d/%d strikes, new %d/%d",
				atlas.Strikes, atlas.Resolved, res.Atlas.Strikes, res.Atlas.Resolved)
		}
		if res.Propagation == nil || res.Propagation.Strikes != atlas.Strikes {
			t.Errorf("wire summary = %+v", res.Propagation)
		}
	})

	t.Run("explain", func(t *testing.T) {
		spec := ExplainSpec{
			Benchmarks: []string{"gcc", "mcf"},
			Policies:   []string{"ICOUNT", "STALL"},
			Window:     2048,
		}
		tables, title, err := NewRunner(adapterOpts()).Explain(spec)
		if err != nil {
			t.Fatal(err)
		}
		res, err := NewRunner(adapterOpts()).Campaign(spec.Campaign())
		if err != nil {
			t.Fatal(err)
		}
		if title != res.Title {
			t.Errorf("title %q != %q", title, res.Title)
		}
		if !reflect.DeepEqual(tables, TablesFromCampaign(res.Tables)) {
			t.Errorf("tables diverge: %d vs %d", len(tables), len(res.Tables))
		}
	})
}

// TestCampaignRunKinds covers the plain-run executor: monolithic vs
// sharded agreement within the documented tolerance, and the attached
// strike campaign.
func TestCampaignRunKinds(t *testing.T) {
	base := campaign.Spec{Benchmarks: []string{"gcc", "mcf"}, Instructions: 40_000, Seed: 2, NoWarmup: true}

	mono, err := NewRunner(adapterOpts()).Campaign(base)
	if err != nil {
		t.Fatal(err)
	}
	if mono.Kind != campaign.KindRun || mono.Status != "ok" || mono.Cycles == 0 {
		t.Fatalf("monolithic result = %+v", mono)
	}
	if mono.Instructions < base.Instructions {
		t.Errorf("committed %d, want at least the quota %d", mono.Instructions, base.Instructions)
	}

	// The documented tolerance is an engine contract: two shardings of the
	// same plan agree. (A monolithic run uses an aggregate instruction
	// limit, so its committed workload mix differs — that comparison is
	// out of scope here, as it is for smtsim.)
	sharded := base
	sharded.Shards = 4
	sh4, err := NewRunner(adapterOpts()).Campaign(sharded)
	if err != nil {
		t.Fatal(err)
	}
	sharded.Shards = 2
	sh2, err := NewRunner(adapterOpts()).Campaign(sharded)
	if err != nil {
		t.Fatal(err)
	}
	if sh4.Instructions != base.Instructions || sh2.Instructions != base.Instructions {
		t.Errorf("engine commits inexact: %d and %d, want %d", sh4.Instructions, sh2.Instructions, base.Instructions)
	}
	name, delta := campaign.MaxAVFDelta(sh2, sh4)
	if delta > 0.08 {
		t.Errorf("sharded AVF diverges: %s off by %.4f", name, delta)
	}

	injected := base
	injected.Inject = &campaign.InjectSpec{Every: 4, Stop: inject.Stop{MaxStrikes: 100}}
	inj, err := NewRunner(adapterOpts()).Campaign(injected)
	if err != nil {
		t.Fatal(err)
	}
	if inj.Strikes == 0 || inj.CrossVal == nil {
		t.Fatalf("inject run result = strikes %d, crossval %v", inj.Strikes, inj.CrossVal)
	}
	// The simulation itself must be unperturbed by the observer.
	if inj.Cycles != mono.Cycles {
		t.Errorf("inject observer perturbed the run: %d vs %d cycles", inj.Cycles, mono.Cycles)
	}
}

// TestCampaignRejectsZeroQuota: a spec with no budget and a runner with
// no budget rule must not silently run forever.
func TestCampaignErrors(t *testing.T) {
	r := NewRunner(adapterOpts())
	if _, err := r.Campaign(campaign.Spec{}); err == nil {
		t.Error("sourceless spec ran")
	}
	if _, err := r.Campaign(campaign.Spec{Mix: "no-such-mix"}); err == nil {
		t.Error("unknown mix ran")
	}
	if _, err := r.Campaign(campaign.Spec{Benchmarks: []string{"no-such-bench"}}); err == nil {
		t.Error("unknown benchmark ran")
	}
}
