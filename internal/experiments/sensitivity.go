package experiments

import (
	"fmt"

	"smtavf/internal/avf"
	"smtavf/internal/core"
	"smtavf/internal/trace"
	"smtavf/internal/workload"
)

// Sensitivity probes the paper's §5 claim that "the performance gain does
// not correlate with the scale of hardware resources in a linear manner
// [while] the increased size of a microarchitecture structure is likely to
// bring in more in-flight instructions and expose more program states to
// soft-error strikes": it sweeps the sizes of the IQ, per-thread ROB, and
// per-thread LSQ on the 4-context mixed workload and reports IPC and the
// swept structure's AVF at each point. Runs are not cached (each uses a
// non-default machine).
func (r *Runner) Sensitivity() ([]*Table, error) {
	type sweep struct {
		title     string
		sizes     []int
		apply     func(*core.Config, int)
		strct     avf.Struct
		perThread bool // sizes are per thread; exposure scales by contexts
	}
	sweeps := []sweep{
		{
			"Sensitivity: shared IQ size (4 contexts, MIX group A)",
			[]int{32, 64, 96, 128, 192},
			func(c *core.Config, n int) { c.IQSize = n },
			avf.IQ,
			false,
		},
		{
			"Sensitivity: per-thread ROB size (4 contexts, MIX group A)",
			[]int{32, 64, 96, 128, 192},
			func(c *core.Config, n int) { c.ROBSize = n },
			avf.ROB,
			true,
		},
		{
			"Sensitivity: per-thread LSQ size (4 contexts, MIX group A)",
			[]int{16, 32, 48, 64, 96},
			func(c *core.Config, n int) { c.LSQSize = n },
			avf.LSQTag,
			true,
		},
	}

	m, err := workload.Lookup(4, workload.MIX, workload.GroupA)
	if err != nil {
		return nil, err
	}
	profiles := make([]trace.Profile, 0, len(m.Benchmarks))
	for _, b := range m.Benchmarks {
		p, err := workload.Profile(b)
		if err != nil {
			return nil, err
		}
		profiles = append(profiles, p)
	}

	var out []*Table
	for _, sw := range sweeps {
		cols := make([]string, len(sw.sizes))
		for i, n := range sw.sizes {
			cols[i] = fmt.Sprintf("%d", n)
		}
		t := NewTable(sw.title, []string{"IPC", "AVF", "IPC/AVF", "ACE entries"}, cols)
		t.Note = "AVF of the swept structure; 'ACE entries' = AVF × entries, the absolute exposed state"
		for i, n := range sw.sizes {
			cfg := core.DefaultConfig(4)
			cfg.Seed = r.opts.Seed
			cfg.Warmup = r.opts.Warmup
			sw.apply(&cfg, n)
			if r.opts.Configure != nil {
				r.opts.Configure(&cfg)
			}
			proc, err := core.New(cfg, profiles)
			if err != nil {
				return nil, err
			}
			res, err := proc.Run(core.Limits{TotalInstructions: r.budget(4)})
			if err != nil {
				return nil, fmt.Errorf("sensitivity %s=%d: %w", sw.title, n, err)
			}
			t.Set(0, i, res.IPC())
			t.Set(1, i, res.StructAVF(sw.strct))
			t.Set(2, i, res.Efficiency(sw.strct))
			entries := float64(n)
			if sw.perThread {
				entries *= 4
			}
			t.Set(3, i, res.StructAVF(sw.strct)*entries)
		}
		out = append(out, t)
	}
	return out, nil
}
