package experiments

import (
	"testing"

	"smtavf/internal/core"
	"smtavf/internal/inject"
)

func TestCrossValSpecValidation(t *testing.T) {
	r := NewRunner(Options{Base: 2_000})
	if _, _, err := r.CrossVal(CrossValSpec{}); err == nil {
		t.Error("empty spec should error")
	}
	if _, _, err := r.CrossVal(CrossValSpec{Mix: "no-such-mix"}); err == nil {
		t.Error("unknown mix should error")
	}
	if _, _, err := r.CrossVal(CrossValSpec{Benchmarks: []string{"gcc", "mcf"}, Policy: "NOPE"}); err == nil {
		t.Error("unknown policy should error")
	}
}

func TestCrossValSeedFanout(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-seed simulation fanout")
	}
	r := NewRunner(Options{Base: 10_000, NoWarmup: true})
	pooled, perSeed, err := r.CrossVal(CrossValSpec{
		Benchmarks: []string{"gcc", "twolf"},
		Seeds:      []uint64{1, 2, 3},
		Stop:       inject.StopWhen(0.02, 1<<18),
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(perSeed) != 3 {
		t.Fatalf("perSeed = %d reports, want 3", len(perSeed))
	}
	var totalStrikes uint64
	for i, rep := range perSeed {
		if rep.Meta.Seed != uint64(i+1) || rep.Meta.Seeds != 1 {
			t.Errorf("report %d meta = %+v", i, rep.Meta)
		}
		if !rep.Pass() {
			t.Errorf("seed %d: tracker AVF outside the strike CI:\n%s", rep.Meta.Seed, rep.Table())
		}
		for _, e := range rep.Entries {
			totalStrikes += e.Strikes
		}
	}
	if pooled.Meta.Seeds != 3 {
		t.Errorf("pooled seeds = %d, want 3", pooled.Meta.Seeds)
	}
	if !pooled.Pass() {
		t.Errorf("pooled report fails:\n%s", pooled.Table())
	}
	var pooledStrikes uint64
	for _, e := range pooled.Entries {
		pooledStrikes += e.Strikes
		if e.Workload != "gcc+twolf" {
			t.Errorf("pooled entry workload = %q", e.Workload)
		}
	}
	if pooledStrikes != totalStrikes {
		t.Errorf("pooled strikes %d != per-seed sum %d", pooledStrikes, totalStrikes)
	}
}

// TestCrossValProtectionClassification: a parity-protected structure's
// ACE strikes classify as DUE in the per-seed taxonomy and carry the
// protection label through the report, without changing the AVF verdict.
func TestCrossValProtectionClassification(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation")
	}
	var prot core.ProtectionModes
	prot[0] = core.ProtectParity // IQ
	r := NewRunner(Options{Base: 8_000, NoWarmup: true})
	pooled, _, err := r.CrossVal(CrossValSpec{
		Benchmarks: []string{"gcc", "mcf"},
		Seeds:      []uint64{5},
		Stop:       inject.StopWhen(0.03, 1<<18),
		Protection: prot,
	})
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, e := range pooled.Entries {
		if e.Struct == "IQ" {
			found = true
			if e.Protection != "parity" {
				t.Errorf("IQ protection label = %q, want parity", e.Protection)
			}
			if !e.Pass {
				t.Errorf("protection must not move the AVF estimate out of the CI: %+v", e)
			}
		}
	}
	if !found {
		t.Fatal("no IQ entry in the report")
	}
}
