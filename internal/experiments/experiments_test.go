package experiments

import (
	"strings"
	"testing"

	"smtavf/internal/workload"
)

// smallRunner keeps test budgets tiny; the figure *shapes* asserted here
// hold even at these scales because the synthetic workloads are stationary.
func smallRunner() *Runner {
	return NewRunner(Options{Base: 4_000, Seed: 1})
}

func TestRunnerCaches(t *testing.T) {
	r := smallRunner()
	a, err := r.Mix(2, workload.CPU, workload.GroupA, "ICOUNT")
	if err != nil {
		t.Fatal(err)
	}
	b, err := r.Mix(2, workload.CPU, workload.GroupA, "ICOUNT")
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Fatal("identical mix runs not cached")
	}
	s1, err := r.Single("bzip2", 1000)
	if err != nil {
		t.Fatal(err)
	}
	s2, err := r.Single("bzip2", 1000)
	if err != nil {
		t.Fatal(err)
	}
	if s1 != s2 {
		t.Fatal("identical single runs not cached")
	}
}

func TestBudgetScalesWithContexts(t *testing.T) {
	r := NewRunner(Options{Base: 1000})
	if r.budget(2) != 1000 || r.budget(4) != 2000 || r.budget(8) != 4000 {
		t.Fatalf("budgets: %d %d %d", r.budget(2), r.budget(4), r.budget(8))
	}
}

func TestMixErrors(t *testing.T) {
	r := smallRunner()
	if _, err := r.Mix(3, workload.CPU, workload.GroupA, "ICOUNT"); err == nil {
		t.Error("unknown mix accepted")
	}
	if _, err := r.Mix(2, workload.CPU, workload.GroupA, "BOGUS"); err == nil {
		t.Error("unknown policy accepted")
	}
	if _, err := r.Single("bogus", 100); err == nil {
		t.Error("unknown benchmark accepted")
	}
}

func TestFigure1Shape(t *testing.T) {
	r := smallRunner()
	f1, err := r.Figure1()
	if err != nil {
		t.Fatal(err)
	}
	if len(f1.Rows) != 8 || len(f1.Cols) != 3 {
		t.Fatalf("figure 1 is %dx%d", len(f1.Rows), len(f1.Cols))
	}
	iq, mem := f1.Row("IQ"), f1.Col("MEM")
	cpu := f1.Col("CPU")
	if f1.Get(iq, mem) <= f1.Get(iq, cpu) {
		t.Errorf("MEM IQ AVF %.3f <= CPU IQ AVF %.3f", f1.Get(iq, mem), f1.Get(iq, cpu))
	}
	fu := f1.Row("FU")
	if f1.Get(fu, mem) >= f1.Get(fu, cpu) {
		t.Errorf("MEM FU AVF %.3f >= CPU FU AVF %.3f", f1.Get(fu, mem), f1.Get(fu, cpu))
	}
	// DL1 tag more vulnerable than DL1 data (paper §4.1).
	tag, data := f1.Row("DL1_tag"), f1.Row("DL1_data")
	for c := range f1.Cols {
		if f1.Get(tag, c) <= f1.Get(data, c) {
			t.Errorf("col %s: DL1_tag %.3f <= DL1_data %.3f",
				f1.Cols[c], f1.Get(tag, c), f1.Get(data, c))
		}
	}
}

func TestFigure2Shape(t *testing.T) {
	r := smallRunner()
	f2, err := r.Figure2()
	if err != nil {
		t.Fatal(err)
	}
	// Reliability efficiency is best on CPU-bound workloads (paper §4.1).
	iq := f2.Row("IQ")
	if f2.Get(iq, f2.Col("CPU")) <= f2.Get(iq, f2.Col("MEM")) {
		t.Errorf("CPU IQ efficiency %.2f <= MEM %.2f",
			f2.Get(iq, f2.Col("CPU")), f2.Get(iq, f2.Col("MEM")))
	}
}

func TestFigure3Shape(t *testing.T) {
	r := smallRunner()
	f3, err := r.Figure3()
	if err != nil {
		t.Fatal(err)
	}
	// 3 kinds × (4 threads + all) rows.
	if len(f3.Rows) != 15 {
		t.Fatalf("figure 3 has %d rows", len(f3.Rows))
	}
	// Per-thread AVF must be lower under SMT than standalone for most
	// threads (paper's headline result); check the majority holds.
	iqST, iqSMT := f3.Col("IQ_ST"), f3.Col("IQ_SMT")
	lower := 0
	threads := 0
	for i, name := range f3.Rows {
		if strings.HasSuffix(name, ":all") {
			continue
		}
		threads++
		if f3.Get(i, iqSMT) < f3.Get(i, iqST) {
			lower++
		}
	}
	if lower*2 < threads {
		t.Errorf("only %d/%d threads show lower IQ AVF under SMT", lower, threads)
	}
	// Aggregate SMT AVF exceeds the weighted sequential AVF.
	for i, name := range f3.Rows {
		if !strings.HasSuffix(name, ":all") {
			continue
		}
		if f3.Get(i, iqSMT) <= f3.Get(i, iqST) {
			t.Errorf("%s: aggregate SMT IQ AVF %.3f <= sequential %.3f",
				name, f3.Get(i, iqSMT), f3.Get(i, iqST))
		}
	}
}

func TestFigure4Runs(t *testing.T) {
	r := smallRunner()
	f4, err := r.Figure4()
	if err != nil {
		t.Fatal(err)
	}
	if len(f4.Rows) != 15 || len(f4.Cols) != 6 {
		t.Fatalf("figure 4 is %dx%d", len(f4.Rows), len(f4.Cols))
	}
}

func TestFigure5Shape(t *testing.T) {
	r := smallRunner()
	panels, err := r.Figure5()
	if err != nil {
		t.Fatal(err)
	}
	if len(panels) != 2 {
		t.Fatalf("%d panels", len(panels))
	}
	// IQ AVF grows with the number of contexts (paper §4.2). The trend is
	// asserted 2→8 (individual steps can wobble a point or two with the
	// instruction budget).
	p := panels[0]
	iq := p.Row("IQ")
	for _, k := range []string{"CPU", "MIX", "MEM"} {
		a := p.Get(iq, p.Col(k+"/2"))
		c := p.Get(iq, p.Col(k+"/8"))
		if c <= a {
			t.Errorf("%s IQ AVF did not grow from 2 to 8 contexts: %.3f -> %.3f", k, a, c)
		}
	}
	// Register AVF rises with contexts as well.
	reg := p.Row("Reg")
	if !(p.Get(reg, p.Col("MEM/2")) < p.Get(reg, p.Col("MEM/4"))) {
		t.Error("register AVF did not rise from 2 to 4 contexts")
	}
}

func TestFigure6Shape(t *testing.T) {
	r := smallRunner()
	tables, err := r.Figure6()
	if err != nil {
		t.Fatal(err)
	}
	if len(tables) != 6 { // {4,8} contexts × {CPU,MIX,MEM}
		t.Fatalf("%d tables", len(tables))
	}
	// On the 4-context MEM panel, FLUSH must show the lowest IQ AVF.
	var memPanel *Table
	for _, tb := range tables {
		if strings.Contains(tb.Title, "(4 contexts, MEM)") {
			memPanel = tb
		}
	}
	if memPanel == nil {
		t.Fatal("missing 4-context MEM panel")
	}
	iq := memPanel.Row("IQ")
	flush := memPanel.Get(iq, memPanel.Col("FLUSH"))
	for _, pol := range []string{"ICOUNT", "STALL", "DG", "PDG", "DWarn"} {
		if flush >= memPanel.Get(iq, memPanel.Col(pol)) {
			t.Errorf("FLUSH IQ AVF %.3f >= %s's %.3f", flush, pol, memPanel.Get(iq, memPanel.Col(pol)))
		}
	}
}

func TestFigure7Shape(t *testing.T) {
	r := smallRunner()
	f7, err := r.Figure7()
	if err != nil {
		t.Fatal(err)
	}
	iq := f7.Row("IQ")
	if got := f7.Get(iq, f7.Col("ICOUNT")); got != 1 {
		t.Errorf("ICOUNT column must be the 1.0 baseline, got %v", got)
	}
	// FLUSH yields the best IQ reliability efficiency (paper Figure 7).
	flush := f7.Get(iq, f7.Col("FLUSH"))
	if flush <= 1 {
		t.Errorf("FLUSH IQ IPC/AVF %.2f not above ICOUNT", flush)
	}
	for _, pol := range []string{"STALL", "DG", "PDG", "DWarn"} {
		if flush <= f7.Get(iq, f7.Col(pol)) {
			t.Errorf("FLUSH IQ efficiency %.2f <= %s's %.2f", flush, pol, f7.Get(iq, f7.Col(pol)))
		}
	}
}

func TestFigure8Runs(t *testing.T) {
	r := smallRunner()
	tables, err := r.Figure8()
	if err != nil {
		t.Fatal(err)
	}
	if len(tables) != 2 {
		t.Fatalf("%d tables", len(tables))
	}
	for _, tb := range tables {
		iq := tb.Row("IQ")
		if got := tb.Get(iq, tb.Col("ICOUNT")); got != 1 {
			t.Errorf("%s: ICOUNT baseline %v", tb.Title, got)
		}
	}
}

func TestPreloadParallel(t *testing.T) {
	r := NewRunner(Options{Base: 1_000, Seed: 1})
	specs := AllSpecs()
	if len(specs) != 6+36+18 {
		t.Fatalf("AllSpecs returned %d specs", len(specs))
	}
	if err := r.Preload(specs[:12]); err != nil {
		t.Fatal(err)
	}
	// Results must now come straight from the cache and be identical to a
	// sequential request.
	a, err := r.Mix(specs[0].Contexts, specs[0].Kind, specs[0].Group, specs[0].Policy)
	if err != nil {
		t.Fatal(err)
	}
	b, _ := r.Mix(specs[0].Contexts, specs[0].Kind, specs[0].Group, specs[0].Policy)
	if a != b {
		t.Fatal("preload did not populate the cache")
	}
	if err := r.PreloadSingles(); err != nil {
		t.Fatal(err)
	}
}

func TestPreloadPropagatesErrors(t *testing.T) {
	r := smallRunner()
	err := r.Preload([]MixSpec{{Contexts: 3, Kind: workload.CPU, Group: workload.GroupA, Policy: "ICOUNT"}})
	if err == nil {
		t.Fatal("bad spec accepted")
	}
}

func TestExtensionsShape(t *testing.T) {
	r := smallRunner()
	tb, err := r.Extensions()
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.Rows) != 4 || len(tb.Cols) != 15 {
		t.Fatalf("extensions table is %dx%d", len(tb.Rows), len(tb.Cols))
	}
	// VAware must reduce IQ AVF relative to ICOUNT on the mixed workload
	// (the point of vulnerability-aware fetch).
	iq := tb.Row("IQ AVF")
	if tb.Get(iq, tb.Col("MIX/VAware")) >= tb.Get(iq, tb.Col("MIX/ICOUNT")) {
		t.Errorf("VAware IQ AVF %.3f not below ICOUNT's %.3f",
			tb.Get(iq, tb.Col("MIX/VAware")), tb.Get(iq, tb.Col("MIX/ICOUNT")))
	}
}

func TestSensitivityShape(t *testing.T) {
	r := NewRunner(Options{Base: 2_000, Seed: 1})
	tables, err := r.Sensitivity()
	if err != nil {
		t.Fatal(err)
	}
	if len(tables) != 3 {
		t.Fatalf("%d sweeps", len(tables))
	}
	// The paper's §5 claim: absolute exposed ACE state grows with the
	// structure size (even as per-bit AVF falls).
	iq := tables[0]
	exp := iq.Row("ACE entries")
	first, last := iq.Get(exp, 0), iq.Get(exp, len(iq.Cols)-1)
	if last <= first {
		t.Errorf("IQ ACE exposure did not grow with size: %.1f -> %.1f", first, last)
	}
	avfRow := iq.Row("AVF")
	if iq.Get(avfRow, 0) <= iq.Get(avfRow, len(iq.Cols)-1) {
		t.Errorf("per-bit IQ AVF should fall as the structure grows")
	}
}

func TestTableRendering(t *testing.T) {
	tb := NewTable("T", []string{"r1", "r2"}, []string{"c1", "c2"})
	tb.Set(0, 0, 0.5)
	tb.Set(1, 1, 0.25)
	tb.Percent = true
	s := tb.String()
	if !strings.Contains(s, "T") || !strings.Contains(s, "50.00") || !strings.Contains(s, "25.00") {
		t.Errorf("rendering wrong:\n%s", s)
	}
	csv := tb.CSV()
	if !strings.Contains(csv, "row,c1,c2") || !strings.Contains(csv, "r1,0.5,0") {
		t.Errorf("CSV wrong:\n%s", csv)
	}
	if tb.Row("nope") != -1 || tb.Col("nope") != -1 {
		t.Error("missing lookups must return -1")
	}
}

func TestStabilityShape(t *testing.T) {
	r := NewRunner(Options{Base: 2_000, Seed: 1})
	tables, err := r.Stability(3)
	if err != nil {
		t.Fatal(err)
	}
	if len(tables) != 2 {
		t.Fatalf("%d tables", len(tables))
	}
	mean, spread := tables[0], tables[1]
	iq := mean.Row("IQ")
	for j := range mean.Cols {
		if mean.Get(iq, j) <= 0 {
			t.Errorf("mean IQ AVF zero in column %s", mean.Cols[j])
		}
		if s := spread.Get(iq, j); s < 0 || s > 1.5 {
			t.Errorf("implausible spread %v in column %s", s, spread.Cols[j])
		}
	}
	if _, err := r.Stability(1); err == nil {
		t.Error("single-seed stability accepted")
	}
}

func TestChartRendering(t *testing.T) {
	tb := NewTable("Chart", []string{"IQ", "FU"}, []string{"CPU", "MEM"})
	tb.Percent = true
	tb.Set(0, 0, 0.5)
	tb.Set(0, 1, 1.0)
	tb.Set(1, 0, 0.25)
	tb.Set(1, 1, 0.001)
	s := tb.Chart()
	if !strings.Contains(s, "Chart") || !strings.Contains(s, "█") {
		t.Fatalf("chart missing bars:\n%s", s)
	}
	if !strings.Contains(s, "100.00%") || !strings.Contains(s, "50.00%") {
		t.Fatalf("chart missing values:\n%s", s)
	}
	// Tiny nonzero values render a sliver, not an empty bar.
	if !strings.Contains(s, "▏") {
		t.Fatalf("tiny value rendered invisibly:\n%s", s)
	}
	empty := NewTable("E", []string{"r"}, []string{"c"})
	if !strings.Contains(empty.Chart(), "no data") {
		t.Fatal("empty chart not handled")
	}
}

func TestTable1And2Render(t *testing.T) {
	t1 := Table1()
	for _, want := range []string{"8-wide", "96 entries", "ICOUNT", "2048KB", "gshare"} {
		if !strings.Contains(t1, want) {
			t.Errorf("Table 1 missing %q:\n%s", want, t1)
		}
	}
	t2 := Table2()
	for _, want := range []string{"4ctx-MEM-A", "mcf", "8ctx-CPU-A"} {
		if !strings.Contains(t2, want) {
			t.Errorf("Table 2 missing %q", want)
		}
	}
}
