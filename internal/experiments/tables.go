package experiments

import (
	"fmt"
	"strings"

	"smtavf/internal/core"
	"smtavf/internal/mem"
	"smtavf/internal/workload"
)

// Table1 renders the simulated machine configuration (the paper's
// Table 1), as realized by core.DefaultConfig.
func Table1() string {
	cfg := core.DefaultConfig(4)
	var b strings.Builder
	b.WriteString("Table 1: simulated machine configuration\n")
	row := func(k, v string) { fmt.Fprintf(&b, "  %-24s %s\n", k, v) }
	row("Processor width", fmt.Sprintf("%d-wide fetch/issue/commit", cfg.FetchWidth))
	row("Baseline fetch policy", cfg.Policy.Name())
	row("Pipeline depth", fmt.Sprintf("%d", cfg.FrontEndDepth+3))
	row("Issue queue", fmt.Sprintf("%d entries, shared", cfg.IQSize))
	row("ROB size", fmt.Sprintf("%d entries per thread", cfg.ROBSize))
	row("Load/store queue", fmt.Sprintf("%d entries per thread", cfg.LSQSize))
	row("Physical registers", fmt.Sprintf("%d INT + %d FP, shared pool", cfg.IntPhysRegs, cfg.FPPhysRegs))
	row("Branch prediction", fmt.Sprintf("%d-entry gshare, %d-bit history per thread",
		cfg.GshareEntries, cfg.GshareHistBits))
	row("BTB", fmt.Sprintf("%d entries, %d-way, per thread", cfg.BTBEntries, cfg.BTBWays))
	row("Return address stack", fmt.Sprintf("%d entries per thread", cfg.RASEntries))
	row("L1 I-cache", cacheLine(cfg.IL1))
	row("L1 D-cache", cacheLine(cfg.DL1))
	row("L2 cache", cacheLine(cfg.L2))
	row("Memory latency", fmt.Sprintf("%d cycles", cfg.MemLatency))
	row("ITLB", fmt.Sprintf("%d entries, %d-way, %d-cycle miss", cfg.ITLB.Entries, cfg.ITLB.Ways, cfg.ITLB.MissPenalty))
	row("DTLB", fmt.Sprintf("%d entries, %d-way, %d-cycle miss", cfg.DTLB.Entries, cfg.DTLB.Ways, cfg.DTLB.MissPenalty))
	row("Integer FUs", fmt.Sprintf("%d ALU, %d MUL/DIV, %d load/store",
		cfg.FUCounts[0], cfg.FUCounts[1], cfg.FUCounts[2]))
	row("FP FUs", fmt.Sprintf("%d ALU, %d MUL/DIV/SQRT", cfg.FUCounts[3], cfg.FUCounts[4]))
	return b.String()
}

func cacheLine(c mem.Config) string {
	ports := ""
	if c.Ports > 0 {
		ports = fmt.Sprintf(", %d ports", c.Ports)
	}
	return fmt.Sprintf("%dKB, %d-way, %dB/line, %d-cycle access%s",
		c.Size>>10, c.Ways, c.LineSize, c.Latency, ports)
}

// Table2 renders the studied SMT workloads (the paper's Table 2).
func Table2() string {
	var b strings.Builder
	b.WriteString("Table 2: the studied SMT workloads\n")
	for _, m := range workload.Mixes() {
		fmt.Fprintf(&b, "  %-12s %s\n", m.Name(), strings.Join(m.Benchmarks, ", "))
	}
	return b.String()
}
