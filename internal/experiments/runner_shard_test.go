package experiments

import (
	"testing"

	"smtavf/internal/shard"
	"smtavf/internal/workload"
)

// A sharded Runner commits exact quotas and lands within the documented
// tolerance of the monolithic Runner's AVFs.
func TestRunnerSharded(t *testing.T) {
	const quota = 20_000
	mono := NewRunner(Options{Base: quota, Seed: 1, NoWarmup: true})
	shrd := NewRunner(Options{Base: quota, Seed: 1, NoWarmup: true, Shards: 2, ShardWorkers: 2})

	a, err := mono.Single("gcc", quota)
	if err != nil {
		t.Fatal(err)
	}
	b, err := shrd.Single("gcc", quota)
	if err != nil {
		t.Fatal(err)
	}
	if b.Total != quota {
		t.Fatalf("sharded run committed %d, want exactly %d", b.Total, quota)
	}
	if s, d := shard.MaxAVFDelta(a, b); d > shard.DefaultTolerance {
		t.Errorf("struct %v: |ΔAVF| %.4f exceeds tolerance %.3f", s, d, shard.DefaultTolerance)
	}

	// Multi-thread mixes are not tolerance-comparable against the
	// monolithic Runner: its TotalInstructions stop rule lets faster
	// threads commit more, while the shard engine splits the budget
	// evenly (the per-plan equivalence lives in internal/shard's tests).
	// Here the sharded mix must still commit the exact budget and report
	// sane AVFs.
	bm, err := shrd.Mix(2, workload.MIX, workload.GroupA, "ICOUNT")
	if err != nil {
		t.Fatal(err)
	}
	if bm.Total != quota {
		t.Fatalf("sharded mix committed %d, want %d", bm.Total, quota)
	}
	if bm.Committed[0] != quota/2 || bm.Committed[1] != quota/2 {
		t.Fatalf("sharded mix committed %v, want an even split", bm.Committed)
	}
	for s, a := range bm.AVF.Total {
		if a < 0 || a > 1 {
			t.Errorf("struct %d: AVF %v out of range", s, a)
		}
	}
}
