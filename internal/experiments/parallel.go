package experiments

import (
	"runtime"
	"sync"

	"smtavf/internal/workload"
)

// MixSpec names one simulation run of the evaluation grid.
type MixSpec struct {
	Contexts int
	Kind     workload.Kind
	Group    workload.Group
	Policy   string
}

// AllSpecs returns every mix run the eight figures need: the six paper
// policies across 4 and 8 contexts, plus the ICOUNT runs at 2 contexts
// (Figure 5), for every kind and group.
func AllSpecs() []MixSpec {
	var specs []MixSpec
	add := func(contexts int, policies []string) {
		for _, k := range workload.Kinds() {
			for _, g := range workload.Groups(contexts) {
				for _, p := range policies {
					specs = append(specs, MixSpec{contexts, k, g, p})
				}
			}
		}
	}
	add(2, []string{"ICOUNT"})
	add(4, policyNames)
	add(8, policyNames)
	return specs
}

// Preload runs the given specs concurrently (bounded by GOMAXPROCS) and
// fills the runner's cache, so the figure drivers afterwards assemble
// their tables from memoized results. Each simulation is fully
// independent — processors share no state — which is what makes this
// safe. The first error aborts the rest.
func (r *Runner) Preload(specs []MixSpec) error {
	workers := runtime.GOMAXPROCS(0)
	if workers > len(specs) {
		workers = len(specs)
	}
	if workers < 1 {
		workers = 1
	}
	jobs := make(chan MixSpec)
	errc := make(chan error, len(specs))
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for s := range jobs {
				if _, err := r.Mix(s.Contexts, s.Kind, s.Group, s.Policy); err != nil {
					errc <- err
					return
				}
			}
		}()
	}
	for _, s := range specs {
		jobs <- s
	}
	close(jobs)
	wg.Wait()
	close(errc)
	return <-errc // nil when the channel is empty
}

// PreloadSingles concurrently runs each distinct benchmark standalone for
// the runner's base budget (the Figure 8 speedup denominators).
func (r *Runner) PreloadSingles() error {
	seen := map[string]bool{}
	var names []string
	for _, m := range workload.Mixes() {
		for _, b := range m.Benchmarks {
			if !seen[b] {
				seen[b] = true
				names = append(names, b)
			}
		}
	}
	workers := runtime.GOMAXPROCS(0)
	if workers > len(names) {
		workers = len(names)
	}
	jobs := make(chan string)
	errc := make(chan error, len(names))
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for b := range jobs {
				if _, err := r.Single(b, r.opts.Base); err != nil {
					errc <- err
					return
				}
			}
		}()
	}
	for _, b := range names {
		jobs <- b
	}
	close(jobs)
	wg.Wait()
	close(errc)
	return <-errc
}
