package experiments

import (
	"runtime"
	"sync"

	"smtavf/internal/workload"
)

// MixSpec names one simulation run of the evaluation grid.
type MixSpec struct {
	Contexts int
	Kind     workload.Kind
	Group    workload.Group
	Policy   string
}

// AllSpecs returns every mix run the eight figures need: the six paper
// policies across 4 and 8 contexts, plus the ICOUNT runs at 2 contexts
// (Figure 5), for every kind and group.
func AllSpecs() []MixSpec {
	var specs []MixSpec
	add := func(contexts int, policies []string) {
		for _, k := range workload.Kinds() {
			for _, g := range workload.Groups(contexts) {
				for _, p := range policies {
					specs = append(specs, MixSpec{contexts, k, g, p})
				}
			}
		}
	}
	add(2, []string{"ICOUNT"})
	add(4, policyNames)
	add(8, policyNames)
	return specs
}

// forEach runs fn(0..n-1) concurrently on a worker pool bounded by
// GOMAXPROCS. Each job must be fully independent — simulations share no
// state — which is what makes this safe. The first error stops the
// worker that hit it and is returned; other workers finish their current
// job.
func forEach(n int, fn func(i int) error) error {
	workers := runtime.GOMAXPROCS(0)
	if workers > n {
		workers = n
	}
	if workers < 1 {
		workers = 1
	}
	jobs := make(chan int)
	errc := make(chan error, n)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range jobs {
				if err := fn(i); err != nil {
					errc <- err
					return
				}
			}
		}()
	}
	for i := 0; i < n; i++ {
		jobs <- i
	}
	close(jobs)
	wg.Wait()
	close(errc)
	return <-errc // nil when the channel is empty
}

// Preload runs the given specs concurrently (bounded by GOMAXPROCS) and
// fills the runner's cache, so the figure drivers afterwards assemble
// their tables from memoized results.
func (r *Runner) Preload(specs []MixSpec) error {
	return forEach(len(specs), func(i int) error {
		s := specs[i]
		_, err := r.Mix(s.Contexts, s.Kind, s.Group, s.Policy)
		return err
	})
}

// PreloadSingles concurrently runs each distinct benchmark standalone for
// the runner's base budget (the Figure 8 speedup denominators).
func (r *Runner) PreloadSingles() error {
	seen := map[string]bool{}
	var names []string
	for _, m := range workload.Mixes() {
		for _, b := range m.Benchmarks {
			if !seen[b] {
				seen[b] = true
				names = append(names, b)
			}
		}
	}
	return forEach(len(names), func(i int) error {
		_, err := r.Single(names[i], r.opts.Base)
		return err
	})
}
