package rng

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a, b := New(42), New(42)
	for i := 0; i < 1000; i++ {
		if got, want := a.Uint64(), b.Uint64(); got != want {
			t.Fatalf("step %d: %d != %d", i, got, want)
		}
	}
}

func TestSeedsDiverge(t *testing.T) {
	a, b := New(1), New(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("seeds 1 and 2 collided %d/100 times", same)
	}
}

func TestSeedReset(t *testing.T) {
	s := New(7)
	first := make([]uint64, 10)
	for i := range first {
		first[i] = s.Uint64()
	}
	s.Seed(7)
	for i := range first {
		if got := s.Uint64(); got != first[i] {
			t.Fatalf("after reseed, step %d: %d != %d", i, got, first[i])
		}
	}
}

func TestZeroSeedUsable(t *testing.T) {
	s := New(0)
	if s.Uint64() == 0 && s.Uint64() == 0 {
		t.Fatal("zero seed produced a stuck generator")
	}
}

func TestIntnRange(t *testing.T) {
	if err := quick.Check(func(seed uint64) bool {
		s := New(seed)
		for _, n := range []int{1, 2, 7, 100} {
			v := s.Intn(n)
			if v < 0 || v >= n {
				return false
			}
		}
		return true
	}, nil); err != nil {
		t.Fatal(err)
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	New(1).Intn(0)
}

func TestUint64nPanicsOnZero(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Uint64n(0) did not panic")
		}
	}()
	New(1).Uint64n(0)
}

func TestFloat64Range(t *testing.T) {
	s := New(3)
	for i := 0; i < 10000; i++ {
		f := s.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 out of [0,1): %v", f)
		}
	}
}

func TestFloat64Mean(t *testing.T) {
	s := New(5)
	sum := 0.0
	const n = 200000
	for i := 0; i < n; i++ {
		sum += s.Float64()
	}
	mean := sum / n
	if math.Abs(mean-0.5) > 0.01 {
		t.Fatalf("Float64 mean %v, want ~0.5", mean)
	}
}

func TestBoolEdges(t *testing.T) {
	s := New(9)
	for i := 0; i < 100; i++ {
		if s.Bool(0) {
			t.Fatal("Bool(0) returned true")
		}
		if !s.Bool(1) {
			t.Fatal("Bool(1) returned false")
		}
	}
}

func TestBoolProbability(t *testing.T) {
	s := New(11)
	hits := 0
	const n = 100000
	for i := 0; i < n; i++ {
		if s.Bool(0.3) {
			hits++
		}
	}
	p := float64(hits) / n
	if math.Abs(p-0.3) > 0.01 {
		t.Fatalf("Bool(0.3) rate %v", p)
	}
}

func TestGeometricMean(t *testing.T) {
	s := New(13)
	sum := 0
	const n = 100000
	for i := 0; i < n; i++ {
		sum += s.Geometric(8)
	}
	mean := float64(sum) / n
	if math.Abs(mean-8) > 0.3 {
		t.Fatalf("Geometric(8) mean %v, want ~8", mean)
	}
}

func TestGeometricMinimum(t *testing.T) {
	s := New(17)
	for i := 0; i < 1000; i++ {
		if v := s.Geometric(0.5); v != 1 {
			t.Fatalf("Geometric(m<=1) = %d, want 1", v)
		}
		if v := s.Geometric(4); v < 1 {
			t.Fatalf("Geometric returned %d < 1", v)
		}
	}
}

func TestUint32NotConstant(t *testing.T) {
	s := New(19)
	a := s.Uint32()
	diff := false
	for i := 0; i < 10; i++ {
		if s.Uint32() != a {
			diff = true
			break
		}
	}
	if !diff {
		t.Fatal("Uint32 appears constant")
	}
}
