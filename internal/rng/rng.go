// Package rng provides a small, fast, deterministic pseudo-random number
// generator used throughout the simulator. Simulation runs must be exactly
// reproducible across machines and Go versions, so we avoid math/rand (whose
// algorithms have changed between releases) and implement xorshift64* with
// splitmix64 seeding.
package rng

// Source is a deterministic xorshift64* generator. The zero value is not
// usable; construct with New.
type Source struct {
	state uint64
}

// New returns a Source seeded from seed via splitmix64, so that nearby seeds
// (0, 1, 2, ...) yield uncorrelated streams.
func New(seed uint64) *Source {
	s := &Source{}
	s.Seed(seed)
	return s
}

// Seed resets the generator to the stream identified by seed.
func (s *Source) Seed(seed uint64) {
	// splitmix64 step to spread low-entropy seeds across the state space.
	z := seed + 0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	z ^= z >> 31
	if z == 0 {
		z = 0x9e3779b97f4a7c15 // xorshift state must be nonzero
	}
	s.state = z
}

// Uint64 returns the next 64 pseudo-random bits.
func (s *Source) Uint64() uint64 {
	x := s.state
	x ^= x >> 12
	x ^= x << 25
	x ^= x >> 27
	s.state = x
	return x * 0x2545f4914f6cdd1d
}

// Uint32 returns the next 32 pseudo-random bits.
func (s *Source) Uint32() uint32 {
	return uint32(s.Uint64() >> 32)
}

// Intn returns a uniform value in [0, n). It panics if n <= 0.
func (s *Source) Intn(n int) int {
	if n <= 0 {
		panic("rng: Intn with non-positive n")
	}
	return int(s.Uint64() % uint64(n))
}

// Uint64n returns a uniform value in [0, n). It panics if n == 0.
func (s *Source) Uint64n(n uint64) uint64 {
	if n == 0 {
		panic("rng: Uint64n with zero n")
	}
	return s.Uint64() % n
}

// Float64 returns a uniform value in [0, 1).
func (s *Source) Float64() float64 {
	return float64(s.Uint64()>>11) / (1 << 53)
}

// Bool returns true with probability p.
func (s *Source) Bool(p float64) bool {
	if p <= 0 {
		return false
	}
	if p >= 1 {
		return true
	}
	return s.Float64() < p
}

// Geometric returns a sample from a geometric distribution with mean m
// (values >= 1). Used for run lengths such as basic-block sizes.
func (s *Source) Geometric(m float64) int {
	if m <= 1 {
		return 1
	}
	p := 1 / m
	n := 1
	for !s.Bool(p) && n < 1<<20 {
		n++
	}
	return n
}
