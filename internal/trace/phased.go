package trace

import (
	"fmt"
	"strings"

	"smtavf/internal/isa"
)

// Phased cycles through several synthetic profiles, switching every
// 'period' instructions — a program with time-varying behaviour (e.g. a
// compute phase followed by a memory-walk phase). AVF phase analysis
// (core.Config.PhaseInterval) exists to observe exactly this; the paper
// builds on Fu et al.'s phase-behaviour study (its ref [8]).
type Phased struct {
	gens   []*Synthetic
	period uint64
	seq    uint64
	name   string
}

var _ Generator = (*Phased)(nil)

// Address-space offsets keeping each phase's code and data disjoint.
const (
	phasedCodeStride = 1 << 28
	phasedDataStride = 1 << 33
)

// NewPhased builds a phased generator from the given profiles, switching
// on instruction boundaries every period instructions.
func NewPhased(profiles []Profile, period uint64, seed uint64) (*Phased, error) {
	if len(profiles) == 0 {
		return nil, fmt.Errorf("trace: phased generator needs at least one profile")
	}
	if period == 0 {
		return nil, fmt.Errorf("trace: phase period must be positive")
	}
	p := &Phased{period: period}
	names := make([]string, 0, len(profiles))
	for i, prof := range profiles {
		p.gens = append(p.gens, NewSynthetic(prof, seed+uint64(i)*0x9e37))
		names = append(names, prof.withDefaults().Name)
	}
	p.name = "phased(" + strings.Join(names, "+") + ")"
	return p, nil
}

// Name implements Generator.
func (p *Phased) Name() string { return p.name }

// Phase returns the index of the profile active at sequence number seq.
func (p *Phased) Phase(seq uint64) int {
	return int(seq/p.period) % len(p.gens)
}

// Next implements Generator.
func (p *Phased) Next() isa.Instruction {
	k := p.Phase(p.seq)
	in := p.gens[k].Next()
	// Relocate the phase's code and data so phases do not alias each
	// other in the caches and predictors.
	in.PC += uint64(k) * phasedCodeStride
	if in.Class.IsCTI() && in.Taken {
		in.Target += uint64(k) * phasedCodeStride
	}
	if in.Class.IsMem() {
		in.Addr += uint64(k) * phasedDataStride
	}
	in.Seq = p.seq
	p.seq++
	return in
}
