package trace

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"os"

	"smtavf/internal/isa"
)

// Trace file format: a fixed 8-byte magic, a length-prefixed workload
// name, a record count, then fixed-width little-endian instruction
// records. The format is versioned through the magic string.
const (
	traceMagic  = "SMTTRC01"
	recordBytes = 8 + 8 + 1 + 2 + 2 + 2 + 8 + 1 + 1 + 8 // see encode
)

// flag bits of the record's flags byte.
const (
	flagTaken = 1 << iota
	flagDead
)

// WriteTrace serializes a recorded instruction sequence.
func WriteTrace(w io.Writer, name string, ins []isa.Instruction) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString(traceMagic); err != nil {
		return err
	}
	if len(name) > 255 {
		return fmt.Errorf("trace: workload name longer than 255 bytes")
	}
	if err := bw.WriteByte(byte(len(name))); err != nil {
		return err
	}
	if _, err := bw.WriteString(name); err != nil {
		return err
	}
	var buf [recordBytes]byte
	binary.LittleEndian.PutUint64(buf[:8], uint64(len(ins)))
	if _, err := bw.Write(buf[:8]); err != nil {
		return err
	}
	for i := range ins {
		encode(&buf, &ins[i])
		if _, err := bw.Write(buf[:]); err != nil {
			return err
		}
	}
	return bw.Flush()
}

func encode(buf *[recordBytes]byte, in *isa.Instruction) {
	le := binary.LittleEndian
	le.PutUint64(buf[0:], in.Seq)
	le.PutUint64(buf[8:], in.PC)
	buf[16] = byte(in.Class)
	le.PutUint16(buf[17:], uint16(in.Src1))
	le.PutUint16(buf[19:], uint16(in.Src2))
	le.PutUint16(buf[21:], uint16(in.Dest))
	le.PutUint64(buf[23:], in.Addr)
	buf[31] = in.Size
	var flags byte
	if in.Taken {
		flags |= flagTaken
	}
	if in.Dead {
		flags |= flagDead
	}
	buf[32] = flags
	le.PutUint64(buf[33:], in.Target)
}

func decode(buf *[recordBytes]byte) isa.Instruction {
	le := binary.LittleEndian
	return isa.Instruction{
		Seq:    le.Uint64(buf[0:]),
		PC:     le.Uint64(buf[8:]),
		Class:  isa.Class(buf[16]),
		Src1:   isa.RegID(int16(le.Uint16(buf[17:]))),
		Src2:   isa.RegID(int16(le.Uint16(buf[19:]))),
		Dest:   isa.RegID(int16(le.Uint16(buf[21:]))),
		Addr:   le.Uint64(buf[23:]),
		Size:   buf[31],
		Taken:  buf[32]&flagTaken != 0,
		Dead:   buf[32]&flagDead != 0,
		Target: le.Uint64(buf[33:]),
	}
}

// ReadTrace parses a trace produced by WriteTrace.
func ReadTrace(r io.Reader) (name string, ins []isa.Instruction, err error) {
	br := bufio.NewReader(r)
	magic := make([]byte, len(traceMagic))
	if _, err := io.ReadFull(br, magic); err != nil {
		return "", nil, fmt.Errorf("trace: reading magic: %w", err)
	}
	if string(magic) != traceMagic {
		return "", nil, fmt.Errorf("trace: bad magic %q (not a trace file?)", magic)
	}
	nameLen, err := br.ReadByte()
	if err != nil {
		return "", nil, err
	}
	nameBuf := make([]byte, nameLen)
	if _, err := io.ReadFull(br, nameBuf); err != nil {
		return "", nil, err
	}
	var buf [recordBytes]byte
	if _, err := io.ReadFull(br, buf[:8]); err != nil {
		return "", nil, err
	}
	count := binary.LittleEndian.Uint64(buf[:8])
	const sanity = 1 << 32
	if count > sanity {
		return "", nil, fmt.Errorf("trace: implausible record count %d", count)
	}
	ins = make([]isa.Instruction, 0, count)
	for i := uint64(0); i < count; i++ {
		if _, err := io.ReadFull(br, buf[:]); err != nil {
			return "", nil, fmt.Errorf("trace: record %d: %w", i, err)
		}
		ins = append(ins, decode(&buf))
	}
	return string(nameBuf), ins, nil
}

// Record captures the next n instructions of a generator.
func Record(gen Generator, n int) []isa.Instruction {
	out := make([]isa.Instruction, n)
	for i := range out {
		out[i] = gen.Next()
	}
	return out
}

// Replay turns a finite recorded instruction sequence into the infinite
// stream the simulator needs: the recording repeats, with sequence numbers
// renumbered to stay continuous (the paper's SimPoint regions are loops of
// this kind anyway). The lap boundary behaves like a program's outermost
// loop back-edge.
type Replay struct {
	name string
	ins  []isa.Instruction
	next uint64
	pos  int
}

var _ Generator = (*Replay)(nil)

// NewReplay wraps a recorded sequence; it must be non-empty.
func NewReplay(name string, ins []isa.Instruction) (*Replay, error) {
	if len(ins) == 0 {
		return nil, fmt.Errorf("trace: empty recording for %q", name)
	}
	return &Replay{name: name, ins: ins}, nil
}

// Name implements Generator.
func (r *Replay) Name() string { return r.name }

// Len returns the length of one lap of the recording.
func (r *Replay) Len() int { return len(r.ins) }

// Next implements Generator.
func (r *Replay) Next() isa.Instruction {
	in := r.ins[r.pos]
	r.pos++
	if r.pos == len(r.ins) {
		r.pos = 0
	}
	in.Seq = r.next
	r.next++
	return in
}

// LoadTraceFile reads a trace file from disk and wraps it for replay.
func LoadTraceFile(path string) (*Replay, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	name, ins, err := ReadTrace(f)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return NewReplay(name, ins)
}
