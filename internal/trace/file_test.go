package trace

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestTraceRoundTrip(t *testing.T) {
	gen := NewSynthetic(testProfile(), 5)
	ins := Record(gen, 5000)
	var buf bytes.Buffer
	if err := WriteTrace(&buf, "test", ins); err != nil {
		t.Fatal(err)
	}
	name, got, err := ReadTrace(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if name != "test" {
		t.Fatalf("name %q", name)
	}
	if len(got) != len(ins) {
		t.Fatalf("%d records, want %d", len(got), len(ins))
	}
	for i := range ins {
		if got[i] != ins[i] {
			t.Fatalf("record %d differs: %+v vs %+v", i, got[i], ins[i])
		}
	}
}

func TestTraceRejectsGarbage(t *testing.T) {
	if _, _, err := ReadTrace(bytes.NewReader([]byte("not a trace file"))); err == nil {
		t.Fatal("garbage accepted")
	}
	if _, _, err := ReadTrace(bytes.NewReader(nil)); err == nil {
		t.Fatal("empty input accepted")
	}
	// Truncated record section.
	gen := NewSynthetic(testProfile(), 5)
	var buf bytes.Buffer
	if err := WriteTrace(&buf, "x", Record(gen, 10)); err != nil {
		t.Fatal(err)
	}
	trunc := buf.Bytes()[:buf.Len()-5]
	if _, _, err := ReadTrace(bytes.NewReader(trunc)); err == nil {
		t.Fatal("truncated trace accepted")
	}
}

func TestTraceNameLength(t *testing.T) {
	var buf bytes.Buffer
	long := strings.Repeat("x", 256)
	if err := WriteTrace(&buf, long, nil); err == nil {
		t.Fatal("over-long name accepted")
	}
}

func TestReplayLoopsWithContinuousSeq(t *testing.T) {
	gen := NewSynthetic(testProfile(), 7)
	ins := Record(gen, 100)
	r, err := NewReplay("loop", ins)
	if err != nil {
		t.Fatal(err)
	}
	if r.Len() != 100 {
		t.Fatalf("Len %d", r.Len())
	}
	for i := uint64(0); i < 350; i++ {
		in := r.Next()
		if in.Seq != i {
			t.Fatalf("replay seq %d at position %d", in.Seq, i)
		}
		// Laps repeat the same PCs.
		if in.PC != ins[i%100].PC {
			t.Fatalf("lap %d diverged at %d", i/100, i%100)
		}
	}
}

func TestReplayEmptyRejected(t *testing.T) {
	if _, err := NewReplay("x", nil); err == nil {
		t.Fatal("empty replay accepted")
	}
}

func TestLoadTraceFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "bzip2.trc")
	gen := NewSynthetic(testProfile(), 9)
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := WriteTrace(f, "bzip2", Record(gen, 200)); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	r, err := LoadTraceFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if r.Name() != "bzip2" || r.Len() != 200 {
		t.Fatalf("loaded %q/%d", r.Name(), r.Len())
	}
	if _, err := LoadTraceFile(filepath.Join(dir, "missing.trc")); err == nil {
		t.Fatal("missing file accepted")
	}
}
