package trace

import "testing"

func TestProfileWithDefaultsFillsZeroFields(t *testing.T) {
	p := Profile{}.withDefaults()
	if p.Name != "synthetic" {
		t.Errorf("Name %q", p.Name)
	}
	if p.WorkingSet != 32<<10 {
		t.Errorf("WorkingSet %d", p.WorkingSet)
	}
	if p.Stride != 8 {
		t.Errorf("Stride %d", p.Stride)
	}
	if p.PageLocal != 0.7 {
		t.Errorf("PageLocal %v", p.PageLocal)
	}
	if p.LoadStoreReuse != 0.12 {
		t.Errorf("LoadStoreReuse %v", p.LoadStoreReuse)
	}
	if p.CodeBlocks != 256 {
		t.Errorf("CodeBlocks %d", p.CodeBlocks)
	}
	if p.MeanBlockLen != 8 {
		t.Errorf("MeanBlockLen %d with no branches", p.MeanBlockLen)
	}
	if p.DepDist != 4 {
		t.Errorf("DepDist %d", p.DepDist)
	}
	if p.BranchPredictability != 0.9 {
		t.Errorf("BranchPredictability %v", p.BranchPredictability)
	}
	if p.HotSet != 0 {
		t.Errorf("HotSet %d without HotFrac", p.HotSet)
	}
}

func TestProfileWithDefaultsKeepsExplicitValues(t *testing.T) {
	in := Profile{
		Name:                 "custom",
		WorkingSet:           1 << 20,
		Stride:               64,
		PageLocal:            0.3,
		LoadStoreReuse:       0.5,
		CodeBlocks:           16,
		MeanBlockLen:         5,
		DepDist:              12,
		BranchPredictability: 0.99,
	}
	if got := in.withDefaults(); got != in {
		t.Errorf("explicit profile rewritten:\n in %+v\nout %+v", in, got)
	}
}

// Branches only terminate basic blocks, so MeanBlockLen is derived from
// BranchFrac to honour the requested dynamic branch fraction.
func TestProfileWithDefaultsBlockLenFromBranchFrac(t *testing.T) {
	cases := []struct {
		branchFrac float64
		want       int
	}{
		{0.10, 9},
		{0.25, 3},
		{0.50, 2}, // 1/0.5-1 = 1, clamped to the floor of 2
	}
	for _, tc := range cases {
		p := Profile{BranchFrac: tc.branchFrac}.withDefaults()
		if p.MeanBlockLen != tc.want {
			t.Errorf("BranchFrac %v: MeanBlockLen %d, want %d", tc.branchFrac, p.MeanBlockLen, tc.want)
		}
	}
}

func TestProfileWithDefaultsHotSet(t *testing.T) {
	p := Profile{HotFrac: 0.4}.withDefaults()
	if p.HotSet != 16<<10 {
		t.Errorf("HotSet %d with HotFrac set, want 16KiB default", p.HotSet)
	}
	p = Profile{HotFrac: 0.4, HotSet: 4 << 10}.withDefaults()
	if p.HotSet != 4<<10 {
		t.Errorf("explicit HotSet rewritten to %d", p.HotSet)
	}
}
