package trace

import (
	"smtavf/internal/isa"
	"smtavf/internal/rng"
)

// WrongPath synthesizes the instructions fetched down a mispredicted path.
// The correct-path trace cannot describe them (they were never part of the
// program's execution), but they still occupy pipeline resources until the
// squash — un-ACE state that the AVF model must observe. The mix loosely
// mirrors ordinary code; outcomes never matter because every wrong-path
// instruction is eventually squashed.
type WrongPath struct {
	rnd *rng.Source
	p   Profile
}

// NewWrongPath builds a wrong-path synthesizer whose mix follows p.
func NewWrongPath(p Profile, seed uint64) *WrongPath {
	return &WrongPath{rnd: rng.New(seed ^ 0xdead), p: p.withDefaults()}
}

// Next returns a wrong-path instruction at pc.
func (w *WrongPath) Next(pc uint64) isa.Instruction {
	var in isa.Instruction
	w.NextInto(pc, &in)
	return in
}

// NextInto is Next writing into dst in place, so the fetch hot path can
// synthesize directly into the pool slot's instruction record.
func (w *WrongPath) NextInto(pc uint64, dst *isa.Instruction) {
	*dst = isa.Instruction{
		PC:   pc,
		Src1: isa.RegID(w.rnd.Intn(isa.NumIntRegs)),
		Src2: isa.RegNone,
		Dest: isa.RegNone,
	}
	r := w.rnd.Float64()
	p := &w.p
	switch {
	case r < p.NopFrac:
		dst.Class = isa.NOP
		dst.Src1 = isa.RegNone
	case r < p.NopFrac+p.LoadFrac:
		dst.Class = isa.Load
		dst.Addr = w.address()
		dst.Size = 8
		dst.Dest = isa.RegID(w.rnd.Intn(isa.NumIntRegs - 1))
	case r < p.NopFrac+p.LoadFrac+p.StoreFrac:
		dst.Class = isa.Store
		dst.Addr = w.address()
		dst.Size = 8
		dst.Src2 = isa.RegID(w.rnd.Intn(isa.NumIntRegs - 1))
	case r < p.NopFrac+p.LoadFrac+p.StoreFrac+p.BranchFrac:
		// Wrong-path branches predict not-taken so the wrong path stays
		// sequential; they resolve as not taken if they ever execute.
		dst.Class = isa.Branch
		dst.Taken = false
	default:
		if w.rnd.Bool(p.FPFrac) {
			dst.Class = isa.FPALU
			dst.Src1 = isa.FirstFPReg + isa.RegID(w.rnd.Intn(isa.NumFPRegs-1))
			dst.Dest = isa.FirstFPReg + isa.RegID(w.rnd.Intn(isa.NumFPRegs-1))
		} else {
			dst.Class = isa.IntALU
			dst.Dest = isa.RegID(w.rnd.Intn(isa.NumIntRegs - 1))
		}
	}
}

// address mimics the correct path's hot/cold access split so wrong-path
// memory traffic lands in the same regions the program touches (realistic
// pollution) rather than thrashing an otherwise-untouched address range.
func (w *WrongPath) address() uint64 {
	p := &w.p
	if p.HotFrac > 0 && w.rnd.Bool(p.HotFrac) {
		return dataBase + (w.rnd.Uint64n(p.HotSet) &^ 7)
	}
	return coldBase + (w.rnd.Uint64n(p.WorkingSet) &^ 7)
}
