package trace

import (
	"smtavf/internal/isa"
	"smtavf/internal/rng"
)

// Generator produces an infinite, deterministic dynamic instruction stream.
type Generator interface {
	// Next returns the next correct-path instruction.
	Next() isa.Instruction
	// Name identifies the workload for reports.
	Name() string
}

// Address-space layout of a synthetic program. Code, the hot data region,
// and the cold data region are disjoint.
const (
	codeBase = 0x0040_0000
	dataBase = 0x1000_0000 // hot region
	coldBase = 0x5000_0000 // cold region

	numStrideStreams = 4
	maxCallDepth     = 8
	pageSize         = 4096
	pageRingSize     = 48 // recently-touched cold pages (reuse locality)
)

// Architectural register roles. Real code keeps a few registers live for
// long stretches (stack/frame/base pointers, loop-carried values); these
// long-lived registers are what gives the physical register file its ACE
// residency. Short-lived temporaries cycle through the remaining registers.
const (
	numBaseRegs = 4 // r0..r3: memory base registers, sourced by every access
	numLongInt  = 8 // r4..r11: long-lived integer values
	numLongFP   = 6 // f0..f5: long-lived FP values

	firstShortInt = numBaseRegs + numLongInt // r12..r30 temporaries
	baseRewrite   = 150                      // mean instructions between base-reg updates
	longRewriteP  = 0.05                     // P(compute dest is a long-lived reg)
	longSourceP   = 0.30                     // P(compute Src2 reads a long-lived reg)
)

type block struct {
	start uint64 // PC of first instruction
	n     int    // instruction count, excluding the terminating CTI
	// terminator behaviour, fixed per static block:
	kind      isa.Class // Branch, Call, or Return
	bias      bool      // home direction for Branch
	target    int       // target block index for Branch/Call
	loopTrips int       // >0: backward loop branch with this mean trip count
}

// Synthetic generates instructions from a Profile. It models a program as a
// static set of basic blocks walked dynamically: loops with geometric trip
// counts, occasional calls/returns (exercising the RAS), per-block fixed
// terminators (so identical PCs behave consistently, as real code does),
// and a register dataflow with tunable dependence distance plus long-lived
// base registers.
type Synthetic struct {
	p   Profile
	rnd *rng.Source

	blocks []block
	cur    int // current block index
	off    int // next instruction offset within block body

	seq       uint64
	callStack []int    // return-to block indices
	retPC     []uint64 // return addresses (PC after the call)
	trips     map[int]int

	// Register dataflow.
	recentInt []isa.RegID // ring of recently written short-lived int regs
	recentFP  []isa.RegID
	riPos     int
	rfPos     int
	nextInt   isa.RegID
	nextFP    isa.RegID
	longIntRR int
	longFPRR  int
	baseRR    int

	// Data streams.
	streamPtr  [numStrideStreams]uint64
	hotPtr     uint64
	pageRing   [pageRingSize]uint64
	pageN      int
	storeRing  [8]uint64 // recent store addresses (load-after-store reuse)
	storeRingN int
}

var _ Generator = (*Synthetic)(nil)

// NewSynthetic builds a generator for profile p. Streams built from the
// same profile and seed are identical instruction-for-instruction.
func NewSynthetic(p Profile, seed uint64) *Synthetic {
	p = p.withDefaults()
	g := &Synthetic{
		p:         p,
		rnd:       rng.New(seed ^ hashName(p.Name)),
		trips:     make(map[int]int),
		recentInt: make([]isa.RegID, 8),
		recentFP:  make([]isa.RegID, 8),
		nextInt:   firstShortInt,
		nextFP:    isa.FirstFPReg + numLongFP,
	}
	for i := range g.recentInt {
		g.recentInt[i] = firstShortInt + isa.RegID(i)
	}
	for i := range g.recentFP {
		g.recentFP[i] = isa.FirstFPReg + numLongFP + isa.RegID(i)
	}
	g.buildCode()
	for i := range g.streamPtr {
		g.streamPtr[i] = g.rnd.Uint64n(p.WorkingSet)
	}
	return g
}

func hashName(s string) uint64 {
	// FNV-1a, so different benchmarks from one seed diverge.
	h := uint64(0xcbf29ce484222325)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 0x100000001b3
	}
	return h
}

// buildCode lays out the static basic blocks and their terminators.
func (g *Synthetic) buildCode() {
	p := g.p
	g.blocks = make([]block, p.CodeBlocks)
	pc := uint64(codeBase)
	for i := range g.blocks {
		// Block lengths cluster tightly around the mean so that the
		// dynamic branch fraction tracks Profile.BranchFrac: execution
		// time spent in a block scales with its length, so a heavy-tailed
		// length distribution would bias the dynamic mix toward long
		// blocks.
		n := p.MeanBlockLen + g.rnd.Intn(7) - 3
		if n < 2 {
			n = 2
		}
		g.blocks[i] = block{start: pc, n: n}
		pc += uint64(n+1) * 4 // +1 for the terminator
	}
	// Non-loop jump targets are local and strictly forward: locality gives
	// the instruction cache and BTB realistic behaviour, and forward-only
	// jumps keep the block walk ergodic (backward edges come only from
	// trip-counted loops, which always terminate), so every block —
	// including call sites — is eventually visited.
	forward := func(i, span int) int {
		return (i + 1 + g.rnd.Intn(span)) % len(g.blocks)
	}
	for i := range g.blocks {
		b := &g.blocks[i]
		switch {
		case g.rnd.Bool(p.CallFrac):
			b.kind = isa.Call
			b.target = forward(i, 64)
		case g.rnd.Bool(0.50):
			// Tight loop: the block branches back to its own start for a
			// trip-counted number of iterations. Self-loops (rather than
			// multi-block backward spans) keep the walk's forward progress
			// linear — chained backward loops would re-arm each other and
			// trap execution in a region for exponentially long.
			b.kind = isa.Branch
			b.target = i
			// Mostly short loops (learnable within the 10-bit history),
			// occasionally long ones (rare exits, so cheap anyway).
			if g.rnd.Bool(0.8) {
				b.loopTrips = 3 + g.rnd.Intn(7)
			} else {
				b.loopTrips = 10 + g.rnd.Intn(40)
			}
			b.bias = true // loop branches are taken while looping
		default:
			b.kind = isa.Branch
			b.target = forward(i, 24)
			b.bias = g.rnd.Bool(0.5)
		}
	}
	// Sprinkle Returns so the call stack drains.
	if p.CallFrac > 0 {
		for i := range g.blocks {
			if g.blocks[i].kind == isa.Branch && g.rnd.Bool(p.CallFrac*1.5) {
				g.blocks[i].kind = isa.Return
			}
		}
	}
}

// Name implements Generator.
func (g *Synthetic) Name() string { return g.p.Name }

// Next implements Generator.
func (g *Synthetic) Next() isa.Instruction {
	b := &g.blocks[g.cur]
	var in isa.Instruction
	if g.off < b.n {
		in = g.body(b.start + uint64(g.off)*4)
		g.off++
	} else {
		in = g.terminator(b)
		g.off = 0
	}
	in.Seq = g.seq
	g.seq++
	return in
}

// body emits one non-CTI instruction at pc.
func (g *Synthetic) body(pc uint64) isa.Instruction {
	p := &g.p
	in := isa.Instruction{PC: pc, Src1: isa.RegNone, Src2: isa.RegNone, Dest: isa.RegNone}
	r := g.rnd.Float64()
	switch {
	case r < p.NopFrac:
		in.Class = isa.NOP
		return in
	case r < p.NopFrac+p.LoadFrac:
		in.Class = isa.Load
		if g.storeRingN > 0 && g.rnd.Bool(p.LoadStoreReuse) {
			// Reload a recently stored address (register spill/reload).
			in.Addr = g.storeRing[g.rnd.Intn(min(g.storeRingN, len(g.storeRing)))]
			in.Size = 8
		} else {
			in.Addr, in.Size = g.address()
		}
		in.Src1 = g.pickBase()
		g.setDest(&in, p.FPFrac > 0.5)
		return in
	case r < p.NopFrac+p.LoadFrac+p.StoreFrac:
		in.Class = isa.Store
		in.Addr, in.Size = g.address()
		in.Src1 = g.pickBase()
		in.Src2 = g.pickSrc(p.FPFrac > 0.5)
		g.storeRing[g.storeRingN%len(g.storeRing)] = in.Addr
		g.storeRingN++
		return in
	}
	// Compute op.
	fp := g.rnd.Bool(p.FPFrac)
	switch {
	case g.rnd.Bool(p.DivFrac):
		if fp {
			in.Class = isa.FPDiv
		} else {
			in.Class = isa.IntDiv
		}
	case g.rnd.Bool(p.MulFrac):
		if fp {
			in.Class = isa.FPMul
		} else {
			in.Class = isa.IntMul
		}
	default:
		if fp {
			in.Class = isa.FPALU
		} else {
			in.Class = isa.IntALU
		}
	}
	in.Src1 = g.pickSrc(fp)
	switch {
	case g.rnd.Bool(longSourceP):
		in.Src2 = g.pickLong(fp)
	case g.rnd.Bool(0.7):
		in.Src2 = g.pickSrc(fp)
	default:
		in.Src2 = isa.RegNone
	}
	g.setDest(&in, fp)
	return in
}

// terminator emits the CTI ending block b and advances the block walk.
func (g *Synthetic) terminator(b *block) isa.Instruction {
	p := &g.p
	pc := b.start + uint64(b.n)*4
	in := isa.Instruction{PC: pc, Class: b.kind, Src1: g.pickSrc(false), Src2: isa.RegNone, Dest: isa.RegNone}
	idx := g.cur
	switch b.kind {
	case isa.Call:
		if len(g.callStack) >= maxCallDepth {
			// Too deep: degrade to a fall-through branch.
			in.Class = isa.Branch
			in.Taken = false
			g.cur = g.nextSequential(idx)
			return in
		}
		in.Taken = true
		in.Target = g.blocks[b.target].start
		g.callStack = append(g.callStack, g.nextSequential(idx))
		g.retPC = append(g.retPC, in.PC+4)
		g.cur = b.target
		return in
	case isa.Return:
		if len(g.callStack) == 0 {
			in.Class = isa.Branch
			in.Taken = false
			g.cur = g.nextSequential(idx)
			return in
		}
		in.Taken = true
		n := len(g.callStack) - 1
		g.cur = g.callStack[n]
		in.Target = g.retPC[n]
		g.callStack = g.callStack[:n]
		g.retPC = g.retPC[:n]
		return in
	}
	// Conditional branch. Loop branches follow a trip counter; others
	// follow their static bias with probability BranchPredictability.
	taken := false
	if b.loopTrips > 0 {
		t, ok := g.trips[idx]
		if !ok {
			// Real loop bounds are stable across entries, which is what
			// makes their exits learnable; BranchPredictability controls
			// the occasional data-dependent jitter.
			t = b.loopTrips
			if !g.rnd.Bool(p.BranchPredictability) {
				t += g.rnd.Intn(5) - 2
				if t < 1 {
					t = 1
				}
			}
		}
		t--
		if t > 0 {
			taken = true
			g.trips[idx] = t
		} else {
			delete(g.trips, idx)
		}
	} else {
		taken = b.bias
		if !g.rnd.Bool(p.BranchPredictability) {
			taken = !taken
		}
	}
	in.Taken = taken
	if taken {
		in.Target = g.blocks[b.target].start
		g.cur = b.target
	} else {
		g.cur = g.nextSequential(idx)
	}
	return in
}

func (g *Synthetic) nextSequential(idx int) int {
	if idx+1 < len(g.blocks) {
		return idx + 1
	}
	return 0
}

// address returns the effective address and size of the next memory
// access: the hot region with probability HotFrac, else the cold region,
// which is walked by strided streams or random accesses with page reuse.
func (g *Synthetic) address() (uint64, uint8) {
	p := &g.p
	if p.HotFrac > 0 && g.rnd.Bool(p.HotFrac) {
		var off uint64
		if g.rnd.Bool(0.7) {
			g.hotPtr = (g.hotPtr + 8) % p.HotSet
			off = g.hotPtr
		} else {
			off = g.rnd.Uint64n(p.HotSet)
		}
		return dataBase + (off &^ 7), 8
	}
	var off uint64
	if g.rnd.Bool(p.StrideFrac) {
		s := g.rnd.Intn(numStrideStreams)
		g.streamPtr[s] = (g.streamPtr[s] + p.Stride) % p.WorkingSet
		off = g.streamPtr[s]
	} else {
		pages := p.WorkingSet / pageSize
		if pages == 0 {
			pages = 1
		}
		var page uint64
		if g.pageN > 0 && g.rnd.Bool(p.PageLocal) {
			page = g.pageRing[g.rnd.Intn(min(g.pageN, pageRingSize))]
		} else {
			page = g.rnd.Uint64n(pages)
			g.pageRing[g.pageN%pageRingSize] = page
			g.pageN++
		}
		off = page*pageSize + g.rnd.Uint64n(pageSize)
	}
	return coldBase + (off &^ 7), 8
}

// pickBase returns one of the memory base registers.
func (g *Synthetic) pickBase() isa.RegID {
	return isa.RegID(g.rnd.Intn(numBaseRegs))
}

// pickLong returns a long-lived register of the selected bank.
func (g *Synthetic) pickLong(fp bool) isa.RegID {
	if fp {
		return isa.FirstFPReg + isa.RegID(g.rnd.Intn(numLongFP))
	}
	return isa.RegID(numBaseRegs + g.rnd.Intn(numLongInt))
}

// pickSrc chooses a short-lived source register at roughly DepDist
// instructions behind the current point.
func (g *Synthetic) pickSrc(fp bool) isa.RegID {
	d := g.rnd.Geometric(float64(g.p.DepDist))
	if fp {
		if d > len(g.recentFP) {
			d = len(g.recentFP)
		}
		return g.recentFP[(g.rfPos-d+len(g.recentFP)*2)%len(g.recentFP)]
	}
	if d > len(g.recentInt) {
		d = len(g.recentInt)
	}
	return g.recentInt[(g.riPos-d+len(g.recentInt)*2)%len(g.recentInt)]
}

// setDest assigns a destination register: the scratch register for
// dynamically dead results, occasionally a base or long-lived register,
// otherwise the next short-lived temporary.
func (g *Synthetic) setDest(in *isa.Instruction, fp bool) {
	if g.rnd.Bool(g.p.DeadFrac) {
		in.Dead = true
		if fp {
			in.Dest = isa.FPScratch
		} else {
			in.Dest = isa.IntScratch
		}
		return
	}
	if !fp {
		if g.rnd.Bool(1.0 / baseRewrite) {
			in.Dest = isa.RegID(g.baseRR % numBaseRegs)
			g.baseRR++
			return
		}
		if g.rnd.Bool(longRewriteP) {
			in.Dest = isa.RegID(numBaseRegs + g.longIntRR%numLongInt)
			g.longIntRR++
			return
		}
		g.nextInt++
		if g.nextInt >= isa.IntScratch {
			g.nextInt = firstShortInt
		}
		in.Dest = g.nextInt
		g.recentInt[g.riPos%len(g.recentInt)] = in.Dest
		g.riPos++
		return
	}
	if g.rnd.Bool(longRewriteP) {
		in.Dest = isa.FirstFPReg + isa.RegID(g.longFPRR%numLongFP)
		g.longFPRR++
		return
	}
	g.nextFP++
	if g.nextFP >= isa.FPScratch {
		g.nextFP = isa.FirstFPReg + numLongFP
	}
	in.Dest = g.nextFP
	g.recentFP[g.rfPos%len(g.recentFP)] = in.Dest
	g.rfPos++
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
