package trace

import (
	"testing"

	"smtavf/internal/isa"
)

func TestWrongPathDeterministic(t *testing.T) {
	p := Profile{Name: "wp", LoadFrac: 0.25, StoreFrac: 0.1, BranchFrac: 0.1, NopFrac: 0.05}
	a := NewWrongPath(p, 7)
	b := NewWrongPath(p, 7)
	for i := 0; i < 1000; i++ {
		pc := uint64(0x1000 + 4*i)
		if ia, ib := a.Next(pc), b.Next(pc); ia != ib {
			t.Fatalf("instruction %d diverged under one seed: %+v != %+v", i, ia, ib)
		}
	}
	c := NewWrongPath(p, 8)
	same := 0
	for i := 0; i < 1000; i++ {
		pc := uint64(0x1000 + 4*i)
		if a.Next(pc) == c.Next(pc) {
			same++
		}
	}
	if same == 1000 {
		t.Fatal("different seeds produced identical streams")
	}
}

func TestWrongPathInstructionShape(t *testing.T) {
	p := Profile{Name: "wp", LoadFrac: 0.3, StoreFrac: 0.15, BranchFrac: 0.15, NopFrac: 0.05, FPFrac: 0.3,
		WorkingSet: 32 << 10, HotSet: 16 << 10, HotFrac: 0.5}
	w := NewWrongPath(p, 1)
	counts := map[isa.Class]int{}
	const n = 20_000
	for i := 0; i < n; i++ {
		pc := uint64(0x4000 + 4*i)
		in := w.Next(pc)
		counts[in.Class]++
		if in.PC != pc {
			t.Fatalf("instruction PC %#x, requested %#x", in.PC, pc)
		}
		switch in.Class {
		case isa.Load, isa.Store:
			if in.Size != 8 {
				t.Fatalf("memory op size %d, want 8", in.Size)
			}
			if in.Addr%8 != 0 {
				t.Fatalf("unaligned wrong-path address %#x", in.Addr)
			}
		case isa.Branch:
			// Wrong-path branches stay sequential: never taken.
			if in.Taken {
				t.Fatal("wrong-path branch marked taken")
			}
		case isa.NOP:
			if in.Src1 != isa.RegNone {
				t.Fatal("NOP reads a register")
			}
		case isa.FPALU:
			if in.Dest < isa.FirstFPReg || in.Src1 < isa.FirstFPReg {
				t.Fatalf("FP op uses integer registers: dest=%d src=%d", in.Dest, in.Src1)
			}
		case isa.IntALU:
			if in.Dest == isa.RegNone || !in.Dest.Valid() {
				t.Fatalf("ALU op writes invalid register %d", in.Dest)
			}
		default:
			t.Fatalf("unexpected wrong-path class %s", in.Class)
		}
	}
	// The mix should roughly honour the profile fractions (loose 40%
	// relative tolerance; the stream is pseudo-random, not exact).
	check := func(class isa.Class, frac float64) {
		got := float64(counts[class]) / n
		if got < 0.6*frac || got > 1.4*frac {
			t.Errorf("%s fraction = %.3f, profile asks %.3f", class, got, frac)
		}
	}
	check(isa.Load, p.LoadFrac)
	check(isa.Store, p.StoreFrac)
	check(isa.Branch, p.BranchFrac)
	check(isa.NOP, p.NopFrac)
}

func TestWrongPathAddressesLandInProfileRegions(t *testing.T) {
	p := Profile{Name: "wp", LoadFrac: 1, WorkingSet: 8 << 10, HotSet: 1 << 10, HotFrac: 0.5}
	w := NewWrongPath(p, 3)
	hot, cold := 0, 0
	for i := 0; i < 5_000; i++ {
		in := w.Next(uint64(4 * i))
		if in.Class != isa.Load {
			t.Fatalf("LoadFrac 1 produced %s", in.Class)
		}
		switch {
		case in.Addr >= dataBase && in.Addr < dataBase+p.HotSet:
			hot++
		case in.Addr >= coldBase && in.Addr < coldBase+p.WorkingSet:
			cold++
		default:
			t.Fatalf("address %#x outside both the hot and cold regions", in.Addr)
		}
	}
	if hot == 0 || cold == 0 {
		t.Fatalf("hot/cold split degenerate: hot=%d cold=%d", hot, cold)
	}
}
