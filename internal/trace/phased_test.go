package trace

import (
	"testing"
)

func TestPhasedAlternates(t *testing.T) {
	cpu := testProfile()
	mem := testProfile()
	mem.Name = "memphase"
	mem.WorkingSet = 16 << 20
	mem.HotFrac = 0.3
	mem.HotSet = 8 << 10
	p, err := NewPhased([]Profile{cpu, mem}, 1000, 1)
	if err != nil {
		t.Fatal(err)
	}
	if p.Name() != "phased(test+memphase)" {
		t.Fatalf("name %q", p.Name())
	}
	// Sequence numbers continuous; addresses relocate per phase.
	memAddrsPhase0, memAddrsPhase1 := 0, 0
	for i := uint64(0); i < 10_000; i++ {
		in := p.Next()
		if in.Seq != i {
			t.Fatalf("seq %d at %d", in.Seq, i)
		}
		if !in.Class.IsMem() {
			continue
		}
		switch p.Phase(i) {
		case 0:
			if in.Addr >= phasedDataStride {
				t.Fatalf("phase-0 address %#x relocated", in.Addr)
			}
			memAddrsPhase0++
		case 1:
			if in.Addr < phasedDataStride {
				t.Fatalf("phase-1 address %#x not relocated", in.Addr)
			}
			memAddrsPhase1++
		}
	}
	if memAddrsPhase0 == 0 || memAddrsPhase1 == 0 {
		t.Fatal("phases did not both run")
	}
}

func TestPhasedValidation(t *testing.T) {
	if _, err := NewPhased(nil, 10, 1); err == nil {
		t.Error("empty profile list accepted")
	}
	if _, err := NewPhased([]Profile{testProfile()}, 0, 1); err == nil {
		t.Error("zero period accepted")
	}
}

func TestPhasedCTIRelocation(t *testing.T) {
	p, err := NewPhased([]Profile{testProfile(), testProfile()}, 500, 3)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5_000; i++ {
		in := p.Next()
		if in.Class.IsCTI() && in.Taken && p.Phase(in.Seq) == 1 {
			if in.Target < phasedCodeStride {
				t.Fatalf("phase-1 branch target %#x not relocated", in.Target)
			}
		}
		if p.Phase(in.Seq) == 1 && in.PC < phasedCodeStride {
			t.Fatalf("phase-1 PC %#x not relocated", in.PC)
		}
	}
}
