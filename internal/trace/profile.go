// Package trace produces the dynamic instruction streams consumed by the
// simulator.
//
// The paper drives its simulator with SimPoint regions of SPEC CPU 2000
// binaries. Those binaries (and an Alpha front end) are not available here,
// so this package substitutes deterministic synthetic generators: each
// benchmark name maps to a Profile whose knobs (instruction mix, working-set
// size, access pattern, branch predictability, dependence distance) are
// calibrated to reproduce the benchmark's first-order behaviour — its ILP
// and its cache-miss profile — which are the properties the paper's AVF
// analysis actually depends on. See DESIGN.md §4 for the substitution
// argument.
package trace

// Profile parameterizes a synthetic benchmark. All fractions are in [0,1].
type Profile struct {
	// Name is the benchmark name (e.g. "mcf").
	Name string
	// MemBound records the paper's CPU-intensive vs memory-intensive
	// classification (Table 2 groups).
	MemBound bool

	// Instruction mix. LoadFrac + StoreFrac + BranchFrac + NopFrac must be
	// < 1; the remainder is compute, split between the integer and FP
	// pipelines by FPFrac and into long-latency ops by MulFrac/DivFrac.
	LoadFrac   float64
	StoreFrac  float64
	BranchFrac float64
	NopFrac    float64
	FPFrac     float64 // fraction of compute ops that are floating point
	MulFrac    float64 // fraction of compute ops that are multiplies
	DivFrac    float64 // fraction of compute ops that are divides

	// DeadFrac is the fraction of result-producing instructions whose
	// results are never consumed (dynamically dead — un-ACE state).
	DeadFrac float64

	// Data-memory behaviour. Accesses split between a small hot region
	// (HotSet bytes, hit with probability HotFrac — the benchmark's stack,
	// locks, and hot globals) and the cold WorkingSet. Cold accesses
	// follow sequential streams with probability StrideFrac, otherwise
	// they are random with page-level reuse (PageLocal).
	WorkingSet uint64  // bytes of the cold region
	HotSet     uint64  // bytes of the hot region (0 = no hot region)
	HotFrac    float64 // fraction of accesses landing in the hot region
	StrideFrac float64 // fraction of cold accesses following streams
	Stride     uint64  // stream stride in bytes (0 means 8)
	PageLocal  float64 // fraction of random cold accesses reusing a recent page

	// LoadStoreReuse is the fraction of loads that re-read a recently
	// stored address (spills/reloads), exercising store-to-load
	// forwarding in the LSQ. Defaults to 0.12.
	LoadStoreReuse float64

	// Control behaviour.
	BranchPredictability float64 // probability a branch follows its bias
	CallFrac             float64 // fraction of CTIs that are call/return pairs
	CodeBlocks           int     // static basic blocks (code footprint)
	MeanBlockLen         int     // mean instructions per basic block

	// Dependence structure: mean distance (in instructions) between a
	// consumer and its producer. Small values serialize execution (low
	// ILP); large values expose parallelism.
	DepDist int
}

// withDefaults fills zero-valued fields with sane defaults so that tests can
// build partial profiles.
func (p Profile) withDefaults() Profile {
	if p.Name == "" {
		p.Name = "synthetic"
	}
	if p.WorkingSet == 0 {
		p.WorkingSet = 32 << 10
	}
	if p.HotFrac > 0 && p.HotSet == 0 {
		p.HotSet = 16 << 10
	}
	if p.Stride == 0 {
		p.Stride = 8
	}
	if p.PageLocal == 0 {
		p.PageLocal = 0.7
	}
	if p.LoadStoreReuse == 0 {
		p.LoadStoreReuse = 0.12
	}
	if p.CodeBlocks == 0 {
		p.CodeBlocks = 256
	}
	if p.MeanBlockLen == 0 {
		// Branches appear only as basic-block terminators, so the dynamic
		// branch fraction is 1/(MeanBlockLen+1); honour BranchFrac by
		// sizing blocks accordingly.
		if p.BranchFrac > 0 {
			p.MeanBlockLen = int(1/p.BranchFrac) - 1
			if p.MeanBlockLen < 2 {
				p.MeanBlockLen = 2
			}
		} else {
			p.MeanBlockLen = 8
		}
	}
	if p.DepDist == 0 {
		p.DepDist = 4
	}
	if p.BranchPredictability == 0 {
		p.BranchPredictability = 0.9
	}
	return p
}
