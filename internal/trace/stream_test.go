package trace

import (
	"testing"
	"testing/quick"

	"smtavf/internal/isa"
)

// countGen emits IntALU instructions with Seq == PC/4 for easy checking.
type countGen struct{ n uint64 }

func (g *countGen) Name() string { return "count" }
func (g *countGen) Next() isa.Instruction {
	in := isa.Instruction{
		Seq: g.n, PC: g.n * 4, Class: isa.IntALU,
		Src1: isa.RegNone, Src2: isa.RegNone, Dest: isa.RegNone,
	}
	g.n++
	return in
}

func TestStreamSequential(t *testing.T) {
	s := NewStream(&countGen{})
	for i := uint64(0); i < 100; i++ {
		if in := s.Next(); in.Seq != i {
			t.Fatalf("got seq %d, want %d", in.Seq, i)
		}
	}
}

func TestStreamPeek(t *testing.T) {
	s := NewStream(&countGen{})
	if s.Peek().Seq != 0 || s.Peek().Seq != 0 {
		t.Fatal("Peek consumed the instruction")
	}
	if s.Next().Seq != 0 {
		t.Fatal("Next after Peek skipped")
	}
	if s.Cursor() != 1 {
		t.Fatalf("cursor %d, want 1", s.Cursor())
	}
}

func TestStreamRewindReplays(t *testing.T) {
	s := NewStream(&countGen{})
	first := make([]isa.Instruction, 50)
	for i := range first {
		first[i] = s.Next()
	}
	s.Rewind(10)
	for i := 10; i < 50; i++ {
		if in := s.Next(); in != first[i] {
			t.Fatalf("replayed seq %d differs", i)
		}
	}
}

func TestStreamReleaseShrinksBuffer(t *testing.T) {
	s := NewStream(&countGen{})
	for i := 0; i < 100; i++ {
		s.Next()
	}
	if s.Buffered() != 100 {
		t.Fatalf("buffered %d, want 100", s.Buffered())
	}
	s.Release(60)
	if s.Buffered() != 40 {
		t.Fatalf("buffered %d after release, want 40", s.Buffered())
	}
	// Rewind to the release point still works…
	s.Rewind(60)
	if s.Next().Seq != 60 {
		t.Fatal("rewind to release boundary broken")
	}
}

func TestStreamRewindBelowReleasePanics(t *testing.T) {
	s := NewStream(&countGen{})
	for i := 0; i < 20; i++ {
		s.Next()
	}
	s.Release(10)
	defer func() {
		if recover() == nil {
			t.Fatal("rewind below release did not panic")
		}
	}()
	s.Rewind(5)
}

func TestStreamRewindForwardPanics(t *testing.T) {
	s := NewStream(&countGen{})
	s.Next()
	defer func() {
		if recover() == nil {
			t.Fatal("forward rewind did not panic")
		}
	}()
	s.Rewind(5)
}

func TestStreamReleaseBeyondCursorPanics(t *testing.T) {
	s := NewStream(&countGen{})
	s.Next()
	defer func() {
		if recover() == nil {
			t.Fatal("release beyond cursor did not panic")
		}
	}()
	s.Release(10)
}

func TestStreamReleaseIdempotent(t *testing.T) {
	s := NewStream(&countGen{})
	for i := 0; i < 30; i++ {
		s.Next()
	}
	s.Release(20)
	s.Release(20)
	s.Release(5) // below head: no-op
	if s.Buffered() != 10 {
		t.Fatalf("buffered %d, want 10", s.Buffered())
	}
}

// TestStreamRandomOps drives the stream with random next/rewind/release
// sequences against a model cursor and checks every delivered instruction
// carries exactly the model's expected sequence number.
func TestStreamRandomOps(t *testing.T) {
	f := func(ops []byte) bool {
		s := NewStream(&countGen{})
		cursor, released := uint64(0), uint64(0)
		for _, op := range ops {
			switch op % 3 {
			case 0: // next
				if got := s.Next().Seq; got != cursor {
					return false
				}
				cursor++
			case 1: // rewind somewhere in [released, cursor]
				span := cursor - released + 1
				to := released + uint64(op/3)%span
				s.Rewind(to)
				cursor = to
			case 2: // release up to somewhere in [released, cursor]
				span := cursor - released + 1
				released += uint64(op/3) % span
				s.Release(released)
			}
			if s.Cursor() != cursor {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
