package trace

import (
	"testing"

	"smtavf/internal/isa"
)

func recordedReplay(t *testing.T, n int) *Replay {
	t.Helper()
	gen := NewSynthetic(Profile{Name: "seekbench"}.withDefaults(), 42)
	r, err := NewReplay("seekbench", Record(gen, n))
	if err != nil {
		t.Fatal(err)
	}
	return r
}

// Seeking must land exactly where draining would have.
func TestReplaySeekMatchesDrain(t *testing.T) {
	const lap = 100
	for _, seq := range []uint64{0, 1, lap - 1, lap, lap + 7, 5 * lap, 5*lap + 3} {
		drained := recordedReplay(t, lap)
		seeked := recordedReplay(t, lap)
		Forward(drainOnly{drained}, seq)
		seeked.Seek(seq)
		for i := 0; i < 5; i++ {
			a, b := drained.Next(), seeked.Next()
			if a != b {
				t.Fatalf("seek(%d): instruction %d differs: drained %+v, seeked %+v", seq, i, a, b)
			}
			if i == 0 && a.Seq != seq {
				t.Fatalf("seek(%d): first instruction carries seq %d", seq, a.Seq)
			}
		}
	}
}

// drainOnly hides the Seekable implementation so Forward takes the
// generic drain path.
type drainOnly struct{ gen Generator }

func (d drainOnly) Next() isa.Instruction { return d.gen.Next() }
func (d drainOnly) Name() string          { return d.gen.Name() }

func TestForwardSeekableIsO1(t *testing.T) {
	r := recordedReplay(t, 50)
	Forward(r, 1<<40) // would take forever if drained
	if in := r.Next(); in.Seq != 1<<40 {
		t.Fatalf("after Forward, Seq = %d, want %d", in.Seq, uint64(1)<<40)
	}
}

func TestForwardDrainsNonSeekable(t *testing.T) {
	gen := NewSynthetic(Profile{Name: "fwd"}.withDefaults(), 7)
	Forward(gen, 0) // must not consume anything
	if in := gen.Next(); in.Seq != 0 {
		t.Fatalf("Forward(0) consumed instructions: next Seq = %d", in.Seq)
	}
	Forward(gen, 123)
	if in := gen.Next(); in.Seq != 123 {
		t.Fatalf("after Forward(123), Seq = %d", in.Seq)
	}
}

func TestStreamForward(t *testing.T) {
	s := NewStream(recordedReplay(t, 64))
	s.Forward(1000)
	if s.Cursor() != 1000 {
		t.Fatalf("cursor %d, want 1000", s.Cursor())
	}
	if in := s.Next(); in.Seq != 1000 {
		t.Fatalf("Seq %d, want 1000", in.Seq)
	}
	// Backwards forward is a no-op.
	s.Forward(10)
	if in := s.Next(); in.Seq != 1001 {
		t.Fatalf("Seq %d after no-op Forward, want 1001", in.Seq)
	}
	// With replay state buffered, Forward falls back to draining but
	// still lands on the target.
	s.Rewind(1001)
	s.Forward(1010)
	if in := s.Next(); in.Seq != 1010 {
		t.Fatalf("Seq %d after buffered Forward, want 1010", in.Seq)
	}
	if s.Buffered() != 1 {
		t.Fatalf("%d instructions still buffered, want 1", s.Buffered())
	}
}

func TestStreamForwardNonSeekable(t *testing.T) {
	s := NewStream(NewSynthetic(Profile{Name: "fwd2"}.withDefaults(), 9))
	s.Forward(500)
	if in := s.Next(); in.Seq != 500 {
		t.Fatalf("Seq %d, want 500", in.Seq)
	}
}
